(* Whole-pipeline property tests: randomised design configurations pushed
   through Design.evaluate and the memory stack, checking global
   invariants that must hold regardless of parameters. *)

open Nanodec_codes
open Nanodec_numerics
open Nanodec_crossbar
open Nanodec

let config_gen =
  QCheck.Gen.(
    int_range 0 4 >>= fun family ->
    let code_type = List.nth Codebook.all_types family in
    int_range 1 6 >>= fun half_m ->
    let code_length =
      match code_type with
      | Codebook.Tree | Codebook.Gray | Codebook.Balanced_gray -> 2 * half_m
      | Codebook.Hot | Codebook.Arranged_hot -> 2 * Stdlib.max 2 half_m
    in
    int_range 4 30 >>= fun n_wires ->
    float_range 0.01 0.10 >>= fun sigma_t ->
    float_range 0.0 0.15 >>= fun sigma_base ->
    float_range 0.15 0.5 >|= fun margin_fraction ->
    {
      Cave.default_config with
      Cave.code_type;
      code_length;
      n_wires;
      sigma_t;
      sigma_base;
      margin_fraction;
    })

let print_config c =
  Printf.sprintf "%s M=%d N=%d sigma_t=%.3f sigma_0=%.3f margin=%.2f"
    (Codebook.name c.Cave.code_type)
    c.Cave.code_length c.Cave.n_wires c.Cave.sigma_t c.Cave.sigma_base
    c.Cave.margin_fraction

let arbitrary_config = QCheck.make ~print:print_config config_gen

(* Balanced-Gray spaces above the exact-search limit are a documented
   exception, not a property failure. *)
let tractable c =
  match c.Cave.code_type with
  | Codebook.Balanced_gray -> c.Cave.code_length <= 12
  | Codebook.Tree | Codebook.Gray | Codebook.Hot | Codebook.Arranged_hot ->
    true

let evaluate c =
  Design.evaluate { Design.cave = c; raw_bits = 16 * 1024 * 8 }

let prop_report_invariants =
  QCheck.Test.make ~name:"design report invariants" ~count:120
    arbitrary_config (fun c ->
      QCheck.assume (tractable c);
      let r = evaluate c in
      r.Design.omega >= 1
      && r.Design.phi >= 0
      && r.Design.cave_yield >= 0.
      && r.Design.cave_yield <= 1.
      && Float.abs
           (r.Design.crossbar_yield
           -. (r.Design.cave_yield *. r.Design.cave_yield))
         < 1e-9
      && r.Design.bit_area > 0.
      && r.Design.area > 0.
      && r.Design.n_pads >= 1
      && r.Design.removed_wires >= 0
      && r.Design.removed_wires <= c.Cave.n_wires)

let prop_phi_binary_constant =
  QCheck.Test.make ~name:"binary Phi = 2N for every family and length"
    ~count:100 arbitrary_config (fun c ->
      QCheck.assume (tractable c);
      let r = evaluate c in
      r.Design.phi = 2 * c.Cave.n_wires)

let prop_sigma_norm_consistent =
  QCheck.Test.make ~name:"||Sigma||_1 = sigma_t^2 * sum nu" ~count:100
    arbitrary_config (fun c ->
      QCheck.assume (tractable c);
      let r = evaluate c in
      let pattern =
        Nanodec_mspt.Pattern.of_codebook ~radix:c.Cave.radix
          ~length:c.Cave.code_length ~n_wires:c.Cave.n_wires c.Cave.code_type
      in
      let expected =
        c.Cave.sigma_t *. c.Cave.sigma_t
        *. float_of_int
             (Imatrix.sum (Nanodec_mspt.Variability.nu_matrix pattern))
      in
      Float.abs (r.Design.sigma_norm1 -. expected) < 1e-9)

let prop_yield_monotone_in_margin =
  QCheck.Test.make ~name:"yield monotone in window margin" ~count:60
    arbitrary_config (fun c ->
      QCheck.assume (tractable c);
      QCheck.assume (c.Cave.margin_fraction <= 0.4);
      let tight = (Cave.analyze c).Cave.yield in
      let loose =
        (Cave.analyze
           { c with Cave.margin_fraction = c.Cave.margin_fraction +. 0.1 })
          .Cave.yield
      in
      loose >= tight -. 1e-12)

let prop_memory_capacity_consistent =
  QCheck.Test.make ~name:"memory capacity = usable crosspoints" ~count:40
    (QCheck.pair arbitrary_config (QCheck.int_range 0 10_000))
    (fun (c, seed) ->
      QCheck.assume (tractable c);
      let memory =
        Memory.create (Rng.create ~seed)
          { Array_sim.cave = c; raw_bits = 1024 }
      in
      let remap = Remap.build memory in
      Remap.capacity_bits remap = Memory.usable_crosspoints memory)

let prop_address_book_bijective =
  QCheck.Test.make ~name:"address book is a partial bijection" ~count:40
    arbitrary_config (fun c ->
      QCheck.assume (tractable c);
      let analysis = Cave.analyze c in
      let book = Address_space.build analysis ~wires:(3 * c.Cave.n_wires) in
      List.for_all
        (fun w ->
          match Address_space.address_of_wire book w with
          | None -> false
          | Some address -> Address_space.wire_of_address book address = Some w)
        (Address_space.addressable_wires book))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_report_invariants;
    QCheck_alcotest.to_alcotest prop_phi_binary_constant;
    QCheck_alcotest.to_alcotest prop_sigma_norm_consistent;
    QCheck_alcotest.to_alcotest prop_yield_monotone_in_margin;
    QCheck_alcotest.to_alcotest prop_memory_capacity_consistent;
    QCheck_alcotest.to_alcotest prop_address_book_bijective;
  ]
