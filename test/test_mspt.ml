(* Tests for the MSPT fabrication model: pattern, doping, complexity,
   variability and the process simulator. *)

open Nanodec_codes
open Nanodec_numerics
open Nanodec_mspt

let pattern_of ~radix rows =
  Pattern.of_words (List.map (Word.of_string ~radix) rows)

let small = pattern_of ~radix:3 [ "0121"; "0220"; "1012" ]

(* --- pattern --- *)

let test_pattern_accessors () =
  Alcotest.(check int) "N" 3 (Pattern.n_wires small);
  Alcotest.(check int) "M" 4 (Pattern.n_regions small);
  Alcotest.(check int) "radix" 3 (Pattern.radix small);
  Alcotest.(check int) "digit" 2 (Pattern.digit small ~wire:1 ~region:1);
  Alcotest.(check string) "word" "1012"
    (Word.to_string (Pattern.word small ~wire:2))

let test_pattern_rejects_heterogeneous () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Pattern.of_words: heterogeneous words") (fun () ->
      ignore
        (Pattern.of_words
           [ Word.of_string ~radix:2 "01"; Word.of_string ~radix:2 "010" ]));
  Alcotest.check_raises "empty" (Invalid_argument "Pattern.of_words: empty pattern")
    (fun () -> ignore (Pattern.of_words []))

let test_pattern_matrix_roundtrip () =
  let m = Pattern.to_matrix small in
  let back = Pattern.of_matrix ~radix:3 m in
  Alcotest.(check bool) "roundtrip" true
    (List.for_all2 Word.equal (Pattern.words small) (Pattern.words back))

let test_pattern_transitions () =
  Alcotest.(check (array int)) "row transitions" [| 2; 4 |]
    (Pattern.transitions_between_rows small);
  Alcotest.(check int) "total" 6 (Pattern.total_transitions small)

let test_pattern_of_codebook_cycles () =
  let p = Pattern.of_codebook ~radix:2 ~length:4 ~n_wires:7 Codebook.Tree in
  (* Omega = 4: wires 4..6 repeat words 0..2. *)
  Alcotest.(check string) "wire 4 = wire 0"
    (Word.to_string (Pattern.word p ~wire:0))
    (Word.to_string (Pattern.word p ~wire:4))

(* --- doping matrices --- *)

let h = Doping.paper_example_h

let test_final_matrix_paper () =
  let d = Doping.final_matrix ~h small in
  let expected =
    Fmatrix.of_arrays
      [| [| 2.; 4.; 9.; 4. |]; [| 2.; 9.; 9.; 2. |]; [| 4.; 2.; 4.; 9. |] |]
  in
  Alcotest.(check bool) "Example 1" true (Fmatrix.equal d expected)

let test_step_matrix_paper () =
  let _, s = Doping.of_pattern ~h small in
  let expected =
    Fmatrix.of_arrays
      [| [| 0.; -5.; 0.; 2. |]; [| -2.; 7.; 5.; -7. |]; [| 4.; 2.; 4.; 9. |] |]
  in
  Alcotest.(check bool) "Example 2" true (Fmatrix.equal s expected)

let test_step_final_inverse () =
  let d, s = Doping.of_pattern ~h small in
  Alcotest.(check bool) "suffix sums recover D" true
    (Fmatrix.approx_equal ~eps:1e-12 d (Doping.final_of_step s))

let test_paper_example_h_guard () =
  Alcotest.check_raises "digit 3" (Invalid_argument "Doping.paper_example_h: digit 3")
    (fun () -> ignore (Doping.paper_example_h 3))

(* --- complexity --- *)

let test_phi_paper_example () =
  Alcotest.(check (array int)) "phi per step (Example 3)" [| 2; 4; 3 |]
    (Complexity.phi_per_step small);
  Alcotest.(check int) "Phi = 9" 9 (Complexity.total small)

let test_phi_gray_variant () =
  (* Example 6: replacing the last word by 1210 drops Phi to 7. *)
  let gray = pattern_of ~radix:3 [ "0121"; "0220"; "1210" ] in
  Alcotest.(check int) "Phi = 7" 7 (Complexity.total gray)

let test_phi_matches_dose_computation () =
  let _, s = Doping.of_pattern ~h small in
  Alcotest.(check int) "pair-based = dose-based" (Complexity.total small)
    (Complexity.total_of_doses s)

let test_phi_single_wire () =
  let p = pattern_of ~radix:3 [ "0120" ] in
  (* Only the last (single) wire: one dose per distinct digit. *)
  Alcotest.(check int) "distinct digits" 3 (Complexity.total p)

let test_phi_identical_rows () =
  let p = pattern_of ~radix:2 [ "0101"; "0101"; "0101" ] in
  (* No transitions: only the final wire costs steps. *)
  Alcotest.(check (array int)) "only last row" [| 0; 0; 2 |]
    (Complexity.phi_per_step p)

let test_phi_binary_is_2n () =
  (* Paper, Fig. 5: every binary code costs exactly 2N steps. *)
  List.iter
    (fun ct ->
      let p = Pattern.of_codebook ~radix:2 ~length:8 ~n_wires:10 ct in
      Alcotest.(check int)
        (Printf.sprintf "binary %s" (Codebook.name ct))
        20 (Complexity.total p))
    Codebook.all_types

(* --- variability --- *)

let test_nu_paper_example () =
  let expected =
    Imatrix.of_arrays [| [| 2; 3; 2; 3 |]; [| 2; 2; 2; 2 |]; [| 1; 1; 1; 1 |] |]
  in
  Alcotest.(check bool) "Example 4" true
    (Imatrix.equal (Variability.nu_matrix small) expected)

let test_sigma_norm_paper_examples () =
  Alcotest.(check (float 1e-9)) "Example 4: 22 sigma^2" 22.
    (Variability.sigma_norm1 ~sigma_t:1. small);
  let gray = pattern_of ~radix:3 [ "0121"; "0220"; "1210" ] in
  Alcotest.(check (float 1e-9)) "Example 5: 18 sigma^2" 18.
    (Variability.sigma_norm1 ~sigma_t:1. gray)

let test_sigma_scales_with_sigma_t () =
  Alcotest.(check (float 1e-12)) "sigma_t scaling" (22. *. 0.05 *. 0.05)
    (Variability.sigma_norm1 ~sigma_t:0.05 small)

let test_nu_last_row_ones () =
  let p = Pattern.of_codebook ~radix:2 ~length:6 ~n_wires:12 Codebook.Gray in
  let nu = Variability.nu_matrix p in
  for j = 0 to 5 do
    Alcotest.(check int) "last wire" 1 (Imatrix.get nu 11 j)
  done

let test_nu_monotone_up_the_cave () =
  (* nu can only grow toward earlier wires (they receive more steps). *)
  let p = Pattern.of_codebook ~radix:2 ~length:8 ~n_wires:20 Codebook.Tree in
  let nu = Variability.nu_matrix p in
  for i = 0 to 18 do
    for j = 0 to 7 do
      if Imatrix.get nu i j < Imatrix.get nu (i + 1) j then
        Alcotest.failf "nu decreased at (%d,%d)" i j
    done
  done

let test_normalized_std () =
  let m = Variability.normalized_std_matrix small in
  Alcotest.(check (float 1e-9)) "sqrt 3" (sqrt 3.) (Fmatrix.get m 0 1);
  Alcotest.(check (float 1e-9)) "sqrt 1" 1. (Fmatrix.get m 2 0)

let test_average_nu () =
  Alcotest.(check (float 1e-9)) "22/12" (22. /. 12.)
    (Variability.average_nu small)

let test_region_std () =
  Alcotest.(check (float 1e-12)) "sigma sqrt nu" (0.05 *. sqrt 3.)
    (Variability.region_std ~sigma_t:0.05 small ~wire:0 ~region:1)

(* --- process simulator --- *)

let test_passes_count_equals_phi () =
  let _, s = Doping.of_pattern ~h small in
  Alcotest.(check int) "Phi passes" 9
    (List.length (Process.passes_of_step_matrix s))

let test_process_closes_loop () =
  let d, s = Doping.of_pattern ~h small in
  let passes = Process.passes_of_step_matrix s in
  let wafer = Process.run ~n_wires:3 ~n_regions:4 passes in
  Alcotest.(check bool) "wafer = D" true (Fmatrix.approx_equal ~eps:1e-9 d wafer)

let test_process_hits_equal_nu () =
  let _, s = Doping.of_pattern ~h small in
  let passes = Process.passes_of_step_matrix s in
  Alcotest.(check bool) "hits = nu" true
    (Imatrix.equal
       (Process.hit_counts ~n_wires:3 ~n_regions:4 passes)
       (Variability.nu_matrix small))

let test_process_noise_statistics () =
  let _, s = Doping.of_pattern ~h small in
  let passes = Process.passes_of_step_matrix s in
  let rng = Rng.create ~seed:5 in
  let sigma_t = 0.05 in
  (* Region (0,1) receives nu=3 implants: std should be sigma_t*sqrt(3). *)
  let n = 4000 in
  let draws =
    Array.init n (fun _ ->
        let noise =
          Process.sample_vt_noise rng ~sigma_t ~n_wires:3 ~n_regions:4 passes
        in
        Fmatrix.get noise 0 1)
  in
  let s = Descriptive.summarize draws in
  Alcotest.(check (float 0.01)) "mean 0" 0. s.Descriptive.mean;
  Alcotest.(check (float 0.008)) "std sigma sqrt nu" (sigma_t *. sqrt 3.)
    s.Descriptive.std

let test_process_geometry_guards () =
  let pass = { Process.after_wire = 5; dose = 1.; mask = [| true |] } in
  Alcotest.check_raises "pass outside cave"
    (Invalid_argument "Process.run: pass outside cave") (fun () ->
      ignore (Process.run ~n_wires:3 ~n_regions:1 [ pass ]))

(* --- property tests --- *)

let pattern_gen =
  QCheck.Gen.(
    int_range 2 4 >>= fun radix ->
    int_range 2 8 >>= fun n_wires ->
    int_range 1 6 >>= fun n_regions ->
    list_size (return n_wires)
      (array_size (return n_regions) (int_range 0 (radix - 1)))
    >|= fun rows ->
    Pattern.of_words (List.map (Word.make ~radix) rows))

let arbitrary_pattern =
  QCheck.make
    ~print:(fun p -> Format.asprintf "%a" Pattern.pp p)
    pattern_gen

(* An injective h with incommensurable values: distinct digit pairs map to
   distinct differences, so the dose-based and pair-based Phi agree. *)
let generic_h d = sqrt (float_of_int ((d + 2) * (d + 2) * (d + 3)))

let prop_phi_pair_equals_dose =
  QCheck.Test.make ~name:"pair-based Phi = dose-based Phi" ~count:300
    arbitrary_pattern (fun p ->
      let _, s = Doping.of_pattern ~h:generic_h p in
      Complexity.total p = Complexity.total_of_doses s)

let prop_process_closure =
  QCheck.Test.make ~name:"process run rebuilds D" ~count:200 arbitrary_pattern
    (fun p ->
      let d, s = Doping.of_pattern ~h:generic_h p in
      let passes = Process.passes_of_step_matrix s in
      let wafer =
        Process.run ~n_wires:(Pattern.n_wires p)
          ~n_regions:(Pattern.n_regions p) passes
      in
      Fmatrix.approx_equal ~eps:1e-6 d wafer)

let prop_hits_equal_nu =
  QCheck.Test.make ~name:"process hit counts = nu" ~count:200
    arbitrary_pattern (fun p ->
      let _, s = Doping.of_pattern ~h:generic_h p in
      let passes = Process.passes_of_step_matrix s in
      Imatrix.equal
        (Process.hit_counts ~n_wires:(Pattern.n_wires p)
           ~n_regions:(Pattern.n_regions p) passes)
        (Variability.nu_matrix p))

let prop_sigma_norm_counts_transitions =
  (* ||Sigma||_1 / sigma^2 = sum nu = N*M base + weighted transitions. *)
  QCheck.Test.make ~name:"sum nu >= N*M with equality iff no transitions"
    ~count:200 arbitrary_pattern (fun p ->
      let total = Imatrix.sum (Variability.nu_matrix p) in
      let base = Pattern.n_wires p * Pattern.n_regions p in
      if Pattern.total_transitions p = 0 then total = base else total > base)

let suite =
  [
    Alcotest.test_case "pattern accessors" `Quick test_pattern_accessors;
    Alcotest.test_case "pattern validation" `Quick
      test_pattern_rejects_heterogeneous;
    Alcotest.test_case "pattern matrix roundtrip" `Quick
      test_pattern_matrix_roundtrip;
    Alcotest.test_case "pattern transitions" `Quick test_pattern_transitions;
    Alcotest.test_case "codebook pattern cycles" `Quick
      test_pattern_of_codebook_cycles;
    Alcotest.test_case "final matrix (Example 1)" `Quick test_final_matrix_paper;
    Alcotest.test_case "step matrix (Example 2)" `Quick test_step_matrix_paper;
    Alcotest.test_case "D<->S inverse" `Quick test_step_final_inverse;
    Alcotest.test_case "paper h guard" `Quick test_paper_example_h_guard;
    Alcotest.test_case "Phi (Example 3)" `Quick test_phi_paper_example;
    Alcotest.test_case "Phi Gray variant (Example 6)" `Quick
      test_phi_gray_variant;
    Alcotest.test_case "Phi pair = dose" `Quick test_phi_matches_dose_computation;
    Alcotest.test_case "Phi single wire" `Quick test_phi_single_wire;
    Alcotest.test_case "Phi identical rows" `Quick test_phi_identical_rows;
    Alcotest.test_case "Phi binary = 2N (Fig 5)" `Quick test_phi_binary_is_2n;
    Alcotest.test_case "nu (Example 4)" `Quick test_nu_paper_example;
    Alcotest.test_case "||Sigma||_1 (Examples 4-5)" `Quick
      test_sigma_norm_paper_examples;
    Alcotest.test_case "Sigma scales with sigma_t" `Quick
      test_sigma_scales_with_sigma_t;
    Alcotest.test_case "nu last row" `Quick test_nu_last_row_ones;
    Alcotest.test_case "nu monotone" `Quick test_nu_monotone_up_the_cave;
    Alcotest.test_case "normalized std" `Quick test_normalized_std;
    Alcotest.test_case "average nu" `Quick test_average_nu;
    Alcotest.test_case "region std" `Quick test_region_std;
    Alcotest.test_case "passes = Phi" `Quick test_passes_count_equals_phi;
    Alcotest.test_case "process closes loop" `Quick test_process_closes_loop;
    Alcotest.test_case "process hits = nu" `Quick test_process_hits_equal_nu;
    Alcotest.test_case "process noise stats" `Slow test_process_noise_statistics;
    Alcotest.test_case "process guards" `Quick test_process_geometry_guards;
    QCheck_alcotest.to_alcotest prop_phi_pair_equals_dose;
    QCheck_alcotest.to_alcotest prop_process_closure;
    QCheck_alcotest.to_alcotest prop_hits_equal_nu;
    QCheck_alcotest.to_alcotest prop_sigma_norm_counts_transitions;
  ]
