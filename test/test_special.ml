(* Unit and property tests for Nanodec_numerics.Special. *)

open Nanodec_numerics

let check_float = Alcotest.(check (float 1e-6))
let check_close eps = Alcotest.(check (float eps))

let test_erf_known_values () =
  check_float "erf 0" 0. (Special.erf 0.);
  check_close 2e-7 "erf 1" 0.8427007929 (Special.erf 1.);
  check_close 2e-7 "erf 2" 0.9953222650 (Special.erf 2.);
  check_close 2e-7 "erf 0.5" 0.5204998778 (Special.erf 0.5);
  check_float "erf inf ~ 1" 1. (Special.erf 10.)

let test_erf_odd () =
  List.iter
    (fun x ->
      check_float
        (Printf.sprintf "erf(-%g) = -erf(%g)" x x)
        (-.Special.erf x) (Special.erf (-.x)))
    [ 0.1; 0.5; 1.; 2.; 5. ]

let test_erfc_complement () =
  List.iter
    (fun x ->
      check_close 1e-6
        (Printf.sprintf "erf + erfc = 1 at %g" x)
        1.
        (Special.erf x +. Special.erfc x))
    [ -3.; -1.; 0.; 0.3; 1.; 2.5 ]

let test_erfc_large_argument () =
  (* Direct computation must not collapse to zero where 1 - erf would. *)
  let v = Special.erfc 4. in
  Alcotest.(check bool) "erfc 4 positive" true (v > 0.);
  check_close 1e-9 "erfc 4" 1.5417257900280018e-8 v

let test_erf_inv_roundtrip () =
  List.iter
    (fun y ->
      check_close 1e-9
        (Printf.sprintf "erf (erf_inv %g)" y)
        y
        (Special.erf (Special.erf_inv y)))
    [ -0.999; -0.7; -0.1; 0.001; 0.3; 0.9; 0.9999 ]

let test_erf_inv_domain () =
  Alcotest.check_raises "erf_inv 1" (Invalid_argument "Special.erf_inv: argument outside (-1, 1)")
    (fun () -> ignore (Special.erf_inv 1.))

let test_normal_cdf_known () =
  check_close 1e-7 "cdf 0" 0.5 (Special.normal_cdf 0.);
  check_close 1e-6 "cdf 1.96" 0.9750021 (Special.normal_cdf 1.96);
  check_close 1e-6 "cdf -1.96" 0.0249979 (Special.normal_cdf (-1.96));
  check_close 1e-7 "cdf mu sigma" 0.5 (Special.normal_cdf ~mu:3. ~sigma:2. 3.)

let test_normal_pdf_known () =
  check_close 1e-9 "pdf 0" 0.3989422804014327 (Special.normal_pdf 0.);
  check_close 1e-9 "pdf symmetric" (Special.normal_pdf 1.3)
    (Special.normal_pdf (-1.3))

let test_normal_quantile_roundtrip () =
  List.iter
    (fun p ->
      check_close 1e-6
        (Printf.sprintf "cdf (quantile %g)" p)
        p
        (Special.normal_cdf (Special.normal_quantile p)))
    [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99 ]

let test_interval_probability () =
  (* P(|X| < sigma) = erf(1/sqrt 2) ~ 0.6827. *)
  check_close 1e-6 "one sigma" 0.6826894
    (Special.normal_interval_probability ~sigma:1. ~half_width:1.);
  check_close 1e-6 "two sigma" 0.9544997
    (Special.normal_interval_probability ~sigma:0.5 ~half_width:1.);
  check_float "zero width" 0.
    (Special.normal_interval_probability ~sigma:1. ~half_width:0.)

let test_log_gamma_known () =
  check_close 1e-9 "gamma 1" 0. (Special.log_gamma 1.);
  check_close 1e-9 "gamma 2" 0. (Special.log_gamma 2.);
  check_close 1e-8 "gamma 5 = 24" (log 24.) (Special.log_gamma 5.);
  check_close 1e-8 "gamma 0.5 = sqrt pi"
    (log (sqrt Float.pi))
    (Special.log_gamma 0.5)

let test_log_factorial_matches_gamma () =
  for n = 0 to 30 do
    check_close 1e-8
      (Printf.sprintf "log %d!" n)
      (Special.log_gamma (float_of_int (n + 1)))
      (Special.log_factorial n)
  done

let test_choose_known () =
  check_float "C(4,2)" 6. (Special.choose 4 2);
  check_float "C(8,4)" 70. (Special.choose 8 4);
  check_float "C(10,5)" 252. (Special.choose 10 5);
  check_float "C(5,0)" 1. (Special.choose 5 0);
  check_float "C(5,6)" 0. (Special.choose 5 6);
  check_float "C(52,5)" 2598960. (Special.choose 52 5)

let test_multinomial_known () =
  (* Hot-code space sizes from the paper's families. *)
  check_float "binary (4,2)" 6. (Special.multinomial [ 2; 2 ]);
  check_float "binary (6,3)" 20. (Special.multinomial [ 3; 3 ]);
  check_float "binary (8,4)" 70. (Special.multinomial [ 4; 4 ]);
  check_float "ternary (6,2)" 90. (Special.multinomial [ 2; 2; 2 ]);
  check_float "degenerate" 1. (Special.multinomial [ 5 ])

let prop_erf_monotone =
  QCheck.Test.make ~name:"erf is monotone increasing" ~count:200
    QCheck.(pair (float_bound_exclusive 5.) (float_bound_exclusive 5.))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      QCheck.assume (hi -. lo > 1e-9);
      Special.erf lo <= Special.erf hi)

let prop_cdf_bounds =
  QCheck.Test.make ~name:"normal_cdf in [0,1]" ~count:200
    QCheck.(float_range (-50.) 50.)
    (fun x ->
      let p = Special.normal_cdf x in
      p >= 0. && p <= 1.)

let prop_interval_monotone_in_width =
  QCheck.Test.make ~name:"interval probability monotone in width" ~count:200
    QCheck.(pair (float_range 0.01 3.) (float_range 0.01 3.))
    (fun (w1, w2) ->
      let lo = Float.min w1 w2 and hi = Float.max w1 w2 in
      Special.normal_interval_probability ~sigma:1. ~half_width:lo
      <= Special.normal_interval_probability ~sigma:1. ~half_width:hi)

let suite =
  [
    Alcotest.test_case "erf known values" `Quick test_erf_known_values;
    Alcotest.test_case "erf odd symmetry" `Quick test_erf_odd;
    Alcotest.test_case "erfc complements erf" `Quick test_erfc_complement;
    Alcotest.test_case "erfc large argument" `Quick test_erfc_large_argument;
    Alcotest.test_case "erf_inv round trip" `Quick test_erf_inv_roundtrip;
    Alcotest.test_case "erf_inv domain check" `Quick test_erf_inv_domain;
    Alcotest.test_case "normal cdf known values" `Quick test_normal_cdf_known;
    Alcotest.test_case "normal pdf known values" `Quick test_normal_pdf_known;
    Alcotest.test_case "quantile round trip" `Quick
      test_normal_quantile_roundtrip;
    Alcotest.test_case "interval probability" `Quick test_interval_probability;
    Alcotest.test_case "log_gamma known values" `Quick test_log_gamma_known;
    Alcotest.test_case "log_factorial vs gamma" `Quick
      test_log_factorial_matches_gamma;
    Alcotest.test_case "binomial coefficients" `Quick test_choose_known;
    Alcotest.test_case "multinomial coefficients" `Quick test_multinomial_known;
    QCheck_alcotest.to_alcotest prop_erf_monotone;
    QCheck_alcotest.to_alcotest prop_cdf_bounds;
    QCheck_alcotest.to_alcotest prop_interval_monotone_in_width;
  ]
