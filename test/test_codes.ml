(* Tests for the five code families: tree, Gray, balanced Gray, hot and
   arranged hot codes. *)

open Nanodec_codes

let strings words = List.map Word.to_string words

(* --- tree codes --- *)

let test_tree_size () =
  Alcotest.(check int) "2^4" 16 (Tree_code.size ~radix:2 ~base_len:4);
  Alcotest.(check int) "3^3" 27 (Tree_code.size ~radix:3 ~base_len:3);
  Alcotest.(check int) "4^2" 16 (Tree_code.size ~radix:4 ~base_len:2)

let test_tree_counting_order () =
  Alcotest.(check (list string)) "ternary counting"
    [ "000"; "001"; "002"; "010"; "011" ]
    (strings (Tree_code.words ~radix:3 ~base_len:3 ~count:5))

let test_tree_cycles_past_size () =
  let words = Tree_code.words ~radix:2 ~base_len:1 ~count:5 in
  Alcotest.(check (list string)) "cycling" [ "0"; "1"; "0"; "1"; "0" ]
    (strings words)

let test_tree_reflected () =
  Alcotest.(check (list string)) "paper reflections"
    [ "00002222"; "00012221"; "00022220"; "00102212" ]
    (strings (Tree_code.reflected_words ~radix:3 ~base_len:4 ~count:4))

let test_tree_word_at_bounds () =
  Alcotest.check_raises "index too large"
    (Invalid_argument "Tree_code.word_at: index 16 outside [0, 16)") (fun () ->
      ignore (Tree_code.word_at ~radix:2 ~base_len:4 16))

(* --- Gray codes --- *)

let test_gray_ternary_sequence () =
  Alcotest.(check (list string)) "ternary Gray"
    [ "00"; "01"; "02"; "12"; "11"; "10"; "20"; "21"; "22" ]
    (strings (Gray_code.words ~radix:3 ~base_len:2 ~count:9))

let test_gray_binary_standard () =
  Alcotest.(check (list string)) "binary reflected Gray"
    [ "000"; "001"; "011"; "010"; "110"; "111"; "101"; "100" ]
    (strings (Gray_code.words ~radix:2 ~base_len:3 ~count:8))

let test_gray_adjacency_all_radices () =
  List.iter
    (fun (radix, base_len) ->
      let words =
        Gray_code.words ~radix ~base_len
          ~count:(Tree_code.size ~radix ~base_len)
      in
      Alcotest.(check bool)
        (Printf.sprintf "gray property n=%d m=%d" radix base_len)
        true
        (Gray_code.is_gray_sequence words))
    [ (2, 5); (3, 3); (4, 2); (5, 2) ]

let test_gray_is_permutation_of_tree () =
  let sort ws = List.sort Word.compare ws in
  let gray = Gray_code.words ~radix:3 ~base_len:3 ~count:27 in
  let tree = Tree_code.words ~radix:3 ~base_len:3 ~count:27 in
  Alcotest.(check (list string)) "same code space" (strings (sort tree))
    (strings (sort gray))

let test_gray_rank_inverts () =
  for i = 0 to 26 do
    let w = Gray_code.word_at ~radix:3 ~base_len:3 i in
    Alcotest.(check int) (Printf.sprintf "rank %d" i) i (Gray_code.rank w)
  done

let test_gray_reflected_transitions () =
  (* Reflected Gray words differ in exactly 2 digits (base + mirror). *)
  let words = Gray_code.reflected_words ~radix:2 ~base_len:4 ~count:16 in
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check int) "two transitions" 2 (Word.hamming_distance a b);
      check rest
    | [ _ ] | [] -> ()
  in
  check words

let test_non_gray_sequence_detected () =
  let words = Tree_code.words ~radix:3 ~base_len:4 ~count:4 in
  (* 0002 => 0010 differs in two digits: counting order is not Gray. *)
  Alcotest.(check bool) "counting not gray" false
    (Gray_code.is_gray_sequence words)

(* --- balanced Gray codes --- *)

let test_balanced_gray_is_gray_cycle () =
  List.iter
    (fun (radix, base_len) ->
      let cycle = Balanced_gray.cycle ~radix ~base_len in
      Alcotest.(check int)
        (Printf.sprintf "full space n=%d m=%d" radix base_len)
        (Tree_code.size ~radix ~base_len)
        (List.length cycle);
      Alcotest.(check bool) "path is gray" true
        (Gray_code.is_gray_sequence cycle);
      (match (List.rev cycle, cycle) with
      | last :: _, first :: _ ->
        Alcotest.(check int) "cycle closes" 1 (Word.hamming_distance last first)
      | _, _ -> Alcotest.fail "empty cycle");
      Alcotest.(check bool) "balanced" true
        (Balanced_gray.is_balanced ~cyclic:true cycle))
    [ (2, 3); (2, 4); (2, 5); (3, 2); (3, 3); (4, 2) ]

let test_balanced_gray_visits_each_word_once () =
  let cycle = Balanced_gray.cycle ~radix:2 ~base_len:4 in
  let sorted = List.sort Word.compare cycle in
  let tree = List.sort Word.compare (Tree_code.words ~radix:2 ~base_len:4 ~count:16) in
  Alcotest.(check (list string)) "permutation of space" (strings tree)
    (strings sorted)

let test_balanced_spectrum_base4 () =
  let cycle = Balanced_gray.cycle ~radix:2 ~base_len:4 in
  let spectrum = Balanced_gray.transition_spectrum ~cyclic:true cycle in
  Alcotest.(check (array int)) "perfectly balanced" [| 4; 4; 4; 4 |] spectrum

let test_spectrum_sums_to_transitions () =
  let cycle = Balanced_gray.cycle ~radix:2 ~base_len:5 in
  let spectrum = Balanced_gray.transition_spectrum ~cyclic:true cycle in
  Alcotest.(check int) "32 cyclic transitions" 32
    (Array.fold_left ( + ) 0 spectrum)

let test_tree_code_is_not_balanced () =
  let words = Tree_code.words ~radix:2 ~base_len:4 ~count:16 in
  Alcotest.(check bool) "counting order unbalanced" false
    (Balanced_gray.is_balanced ~cyclic:true words)

let test_spectrum_empty_inputs () =
  Alcotest.(check (array int)) "empty" [||]
    (Balanced_gray.transition_spectrum ~cyclic:false []);
  Alcotest.(check bool) "singleton balanced" true
    (Balanced_gray.is_balanced ~cyclic:true [ Word.of_string ~radix:2 "01" ])

(* --- hot codes --- *)

let test_hot_size () =
  Alcotest.(check int) "binary (4,2)" 6 (Hot_code.size ~radix:2 ~length:4);
  Alcotest.(check int) "binary (6,3)" 20 (Hot_code.size ~radix:2 ~length:6);
  Alcotest.(check int) "binary (8,4)" 70 (Hot_code.size ~radix:2 ~length:8);
  Alcotest.(check int) "ternary (6,2)" 90 (Hot_code.size ~radix:3 ~length:6);
  Alcotest.(check int) "ternary (3,1)" 6 (Hot_code.size ~radix:3 ~length:3)

let test_hot_length_validation () =
  Alcotest.check_raises "odd binary length"
    (Invalid_argument "Hot_code: length 5 is not a multiple of radix 2")
    (fun () -> ignore (Hot_code.size ~radix:2 ~length:5))

let test_hot_membership () =
  (* Paper example: 001122 and 012120 are in the (6,2) ternary space,
     000121 is not. *)
  Alcotest.(check bool) "001122 member" true
    (Hot_code.is_member (Word.of_string ~radix:3 "001122"));
  Alcotest.(check bool) "012120 member" true
    (Hot_code.is_member (Word.of_string ~radix:3 "012120"));
  Alcotest.(check bool) "000121 not member" false
    (Hot_code.is_member (Word.of_string ~radix:3 "000121"))

let test_hot_enumeration () =
  let words = Hot_code.all ~radix:2 ~length:4 in
  Alcotest.(check (list string)) "lexicographic (4,2)"
    [ "0011"; "0101"; "0110"; "1001"; "1010"; "1100" ]
    (strings words)

let test_hot_all_members () =
  List.iter
    (fun (radix, length) ->
      let words = Hot_code.all ~radix ~length in
      Alcotest.(check int)
        (Printf.sprintf "count n=%d M=%d" radix length)
        (Hot_code.size ~radix ~length)
        (List.length words);
      List.iter
        (fun w ->
          if not (Hot_code.is_member w) then
            Alcotest.failf "non-member %s" (Word.to_string w))
        words)
    [ (2, 6); (2, 8); (3, 6); (4, 4) ]

(* --- arranged hot codes --- *)

let test_arranged_is_permutation () =
  List.iter
    (fun (radix, length) ->
      let arranged = List.sort Word.compare (Arranged_hot.all ~radix ~length) in
      let space = List.sort Word.compare (Hot_code.all ~radix ~length) in
      Alcotest.(check (list string))
        (Printf.sprintf "permutation n=%d M=%d" radix length)
        (strings space) (strings arranged))
    [ (2, 4); (2, 6); (2, 8); (3, 3); (3, 6) ]

let test_arranged_distance_two () =
  List.iter
    (fun (radix, length) ->
      Alcotest.(check bool)
        (Printf.sprintf "arranged n=%d M=%d" radix length)
        true
        (Arranged_hot.is_arranged (Arranged_hot.all ~radix ~length)))
    [ (2, 4); (2, 6); (2, 8); (2, 10); (3, 3); (3, 6) ]

let test_plain_hot_not_arranged () =
  Alcotest.(check bool) "lexicographic order exceeds distance 2" false
    (Arranged_hot.is_arranged (Hot_code.all ~radix:2 ~length:6))

let test_arranged_words_cycle () =
  let words = Arranged_hot.words ~radix:2 ~length:4 ~count:8 in
  Alcotest.(check int) "count" 8 (List.length words);
  match (List.nth_opt words 0, List.nth_opt words 6) with
  | Some a, Some b ->
    Alcotest.(check string) "wraps to start" (Word.to_string a)
      (Word.to_string b)
  | _, _ -> Alcotest.fail "missing words"

let test_hot_to_seq_matches_all () =
  List.iter
    (fun (radix, length) ->
      let eager = Hot_code.all ~radix ~length in
      let lazy_list = List.of_seq (Hot_code.to_seq ~radix ~length) in
      Alcotest.(check (list string))
        (Printf.sprintf "seq = all (n=%d M=%d)" radix length)
        (strings eager) (strings lazy_list))
    [ (2, 4); (2, 6); (3, 3); (3, 6) ]

let test_hot_to_seq_streams_large_space () =
  (* Binary M=16: 12870 words; take a prefix without materialising. *)
  let prefix = List.of_seq (Seq.take 5 (Hot_code.to_seq ~radix:2 ~length:16)) in
  Alcotest.(check int) "five words" 5 (List.length prefix);
  List.iter
    (fun w -> Alcotest.(check bool) "member" true (Hot_code.is_member w))
    prefix

let test_codebook_to_seq_cycles () =
  let words =
    List.of_seq (Seq.take 6 (Codebook.to_seq ~radix:2 ~length:4 Codebook.Gray))
  in
  Alcotest.(check int) "six" 6 (List.length words);
  (* Omega = 4: element 4 repeats element 0. *)
  Alcotest.(check string) "cycles"
    (Word.to_string (List.nth words 0))
    (Word.to_string (List.nth words 4))

let test_revolving_door_scales () =
  (* Binary M=16: 12870 words; the revolving-door order must stay at
     Hamming distance 2 throughout. *)
  let words = Arranged_hot.all ~radix:2 ~length:16 in
  Alcotest.(check int) "full space" 12870 (List.length words);
  Alcotest.(check bool) "arranged" true (Arranged_hot.is_arranged words)

(* --- codebook --- *)

let test_codebook_names () =
  List.iter
    (fun ct ->
      match Codebook.of_name (Codebook.name ct) with
      | Some ct' ->
        Alcotest.(check string) "roundtrip" (Codebook.name ct) (Codebook.name ct')
      | None -> Alcotest.failf "cannot parse %s" (Codebook.name ct))
    Codebook.all_types;
  Alcotest.(check bool) "unknown" true (Codebook.of_name "xyz" = None);
  Alcotest.(check bool) "long name" true
    (Codebook.of_name "balanced gray code" = Some Codebook.Balanced_gray)

let test_codebook_space_sizes () =
  Alcotest.(check int) "TC M=8" 16
    (Codebook.space_size ~radix:2 ~length:8 Codebook.Tree);
  Alcotest.(check int) "GC M=10" 32
    (Codebook.space_size ~radix:2 ~length:10 Codebook.Gray);
  Alcotest.(check int) "HC M=8" 70
    (Codebook.space_size ~radix:2 ~length:8 Codebook.Hot)

let test_codebook_validation () =
  Alcotest.(check bool) "odd reflected invalid" true
    (Result.is_error (Codebook.validate_length ~radix:2 ~length:7 Codebook.Tree));
  Alcotest.(check bool) "hot needs divisibility" true
    (Result.is_error (Codebook.validate_length ~radix:3 ~length:8 Codebook.Hot));
  Alcotest.(check bool) "valid" true
    (Result.is_ok (Codebook.validate_length ~radix:2 ~length:8 Codebook.Gray))

let test_codebook_sequences_respect_length () =
  List.iter
    (fun ct ->
      let length = if Codebook.uses_reflection ct then 8 else 6 in
      let words = Codebook.sequence ~radix:2 ~length ~count:10 ct in
      Alcotest.(check int) "count" 10 (List.length words);
      List.iter
        (fun w ->
          Alcotest.(check int)
            (Printf.sprintf "%s word length" (Codebook.name ct))
            length (Word.length w))
        words)
    Codebook.all_types

let test_codebook_reflected_families () =
  List.iter
    (fun ct ->
      let words = Codebook.sequence ~radix:2 ~length:8 ~count:16 ct in
      List.iter
        (fun w ->
          Alcotest.(check bool)
            (Printf.sprintf "%s reflected" (Codebook.name ct))
            true (Word.is_reflected w))
        words)
    [ Codebook.Tree; Codebook.Gray; Codebook.Balanced_gray ]

let test_minimal_length () =
  Alcotest.(check int) "TC needs M=8 for 10 wires" 8
    (Codebook.minimal_length ~radix:2 ~min_size:10 Codebook.Tree);
  Alcotest.(check int) "ternary TC needs M=6 for 10" 6
    (Codebook.minimal_length ~radix:3 ~min_size:10 Codebook.Tree);
  Alcotest.(check int) "quaternary TC needs M=4 for 10" 4
    (Codebook.minimal_length ~radix:4 ~min_size:10 Codebook.Tree);
  Alcotest.(check int) "HC needs M=6 for 10" 6
    (Codebook.minimal_length ~radix:2 ~min_size:10 Codebook.Hot)

(* --- cross-family properties --- *)

let prop_gray_words_adjacent =
  QCheck.Test.make ~name:"gray neighbours differ in one digit" ~count:200
    QCheck.(pair (int_range 2 4) (int_range 1 4))
    (fun (radix, base_len) ->
      let omega = Tree_code.size ~radix ~base_len in
      let i = (radix * 7) mod (Stdlib.max 1 (omega - 1)) in
      let a = Gray_code.word_at ~radix ~base_len i in
      let b = Gray_code.word_at ~radix ~base_len (i + 1) in
      Word.hamming_distance a b = 1)

let prop_gray_rank_bijective =
  QCheck.Test.make ~name:"gray rank inverts word_at at every radix" ~count:100
    QCheck.(triple (int_range 2 5) (int_range 1 3) (int_range 0 10_000))
    (fun (radix, base_len, i) ->
      let omega = Tree_code.size ~radix ~base_len in
      let i = i mod omega in
      Gray_code.rank (Gray_code.word_at ~radix ~base_len i) = i)

let test_balanced_gray_rejects_huge_space () =
  Alcotest.check_raises "space guard" Balanced_gray.Search_exhausted
    (fun () -> ignore (Balanced_gray.cycle ~radix:2 ~base_len:13))

let test_minimal_length_guard () =
  Alcotest.(check bool) "unreachable size raises" true
    (try
       ignore (Codebook.minimal_length ~radix:2 ~min_size:max_int Codebook.Tree);
       false
     with Invalid_argument _ -> true)

let prop_hot_counts_fixed =
  QCheck.Test.make ~name:"hot words have equal digit counts" ~count:50
    QCheck.(pair (int_range 2 3) (int_range 1 3))
    (fun (radix, k) ->
      let length = radix * k in
      List.for_all Hot_code.is_member (Hot_code.all ~radix ~length))

let suite =
  [
    Alcotest.test_case "tree size" `Quick test_tree_size;
    Alcotest.test_case "tree counting order" `Quick test_tree_counting_order;
    Alcotest.test_case "tree cycling" `Quick test_tree_cycles_past_size;
    Alcotest.test_case "tree reflected (paper)" `Quick test_tree_reflected;
    Alcotest.test_case "tree bounds" `Quick test_tree_word_at_bounds;
    Alcotest.test_case "gray ternary (paper)" `Quick test_gray_ternary_sequence;
    Alcotest.test_case "gray binary standard" `Quick test_gray_binary_standard;
    Alcotest.test_case "gray adjacency" `Quick test_gray_adjacency_all_radices;
    Alcotest.test_case "gray permutes tree space" `Quick
      test_gray_is_permutation_of_tree;
    Alcotest.test_case "gray rank inverse" `Quick test_gray_rank_inverts;
    Alcotest.test_case "gray reflected transitions" `Quick
      test_gray_reflected_transitions;
    Alcotest.test_case "counting order is not gray" `Quick
      test_non_gray_sequence_detected;
    Alcotest.test_case "balanced gray cycles" `Quick
      test_balanced_gray_is_gray_cycle;
    Alcotest.test_case "balanced gray permutation" `Quick
      test_balanced_gray_visits_each_word_once;
    Alcotest.test_case "balanced spectrum base4" `Quick
      test_balanced_spectrum_base4;
    Alcotest.test_case "spectrum sums" `Quick test_spectrum_sums_to_transitions;
    Alcotest.test_case "tree code unbalanced" `Quick
      test_tree_code_is_not_balanced;
    Alcotest.test_case "spectrum edge cases" `Quick test_spectrum_empty_inputs;
    Alcotest.test_case "hot size" `Quick test_hot_size;
    Alcotest.test_case "hot length validation" `Quick test_hot_length_validation;
    Alcotest.test_case "hot membership (paper)" `Quick test_hot_membership;
    Alcotest.test_case "hot enumeration" `Quick test_hot_enumeration;
    Alcotest.test_case "hot all members" `Quick test_hot_all_members;
    Alcotest.test_case "arranged is permutation" `Quick
      test_arranged_is_permutation;
    Alcotest.test_case "arranged distance 2" `Quick test_arranged_distance_two;
    Alcotest.test_case "plain hot not arranged" `Quick
      test_plain_hot_not_arranged;
    Alcotest.test_case "arranged cycling" `Quick test_arranged_words_cycle;
    Alcotest.test_case "revolving door at M=16" `Slow
      test_revolving_door_scales;
    Alcotest.test_case "hot to_seq = all" `Quick test_hot_to_seq_matches_all;
    Alcotest.test_case "hot to_seq streams" `Quick
      test_hot_to_seq_streams_large_space;
    Alcotest.test_case "codebook to_seq cycles" `Quick
      test_codebook_to_seq_cycles;
    Alcotest.test_case "codebook names" `Quick test_codebook_names;
    Alcotest.test_case "codebook sizes" `Quick test_codebook_space_sizes;
    Alcotest.test_case "codebook validation" `Quick test_codebook_validation;
    Alcotest.test_case "codebook sequence lengths" `Quick
      test_codebook_sequences_respect_length;
    Alcotest.test_case "codebook reflection" `Quick
      test_codebook_reflected_families;
    Alcotest.test_case "minimal length" `Quick test_minimal_length;
    QCheck_alcotest.to_alcotest prop_gray_words_adjacent;
    QCheck_alcotest.to_alcotest prop_gray_rank_bijective;
    Alcotest.test_case "balanced gray space guard" `Quick
      test_balanced_gray_rejects_huge_space;
    Alcotest.test_case "minimal length guard" `Quick test_minimal_length_guard;
    QCheck_alcotest.to_alcotest prop_hot_counts_fixed;
  ]
