#!/bin/sh
# Crash-safety battery for the hardened daemon (the CI chaos-serve job).
#
# Phase 1  boot `nanodec serve` with a cache file and a 1 s snapshot
#          interval, capture the cold bytes of a Monte-Carlo battery.
# Phase 2  hammer the same battery through 4 parallel clients — every
#          client must read back the cold bytes with "cached":true.
# Phase 3  start background load clients and `kill -9` the daemon mid
#          load: no graceful drain, no shutdown snapshot — whatever the
#          periodic snapshotter last renamed into place is all we keep.
# Phase 4  restart on the same --cache-file: the battery must come back
#          warm ("cached":true) and bit-identical to the pre-crash
#          bytes.
# Phase 5  truncate the snapshot and restart once more: the daemon must
#          come up cold (never crash-loop) and recompute the exact cold
#          bytes.
set -eu

NANODEC="${NANODEC:-_build/default/bin/nanodec_cli.exe}"
SOCK="${TMPDIR:-/tmp}/nanodec-chaos-$$.sock"
CACHE="${TMPDIR:-/tmp}/nanodec-chaos-$$.snapshot"
OUT="${TMPDIR:-/tmp}/nanodec-chaos-$$"
DAEMON=""

cleanup() {
  [ -n "$DAEMON" ] && kill -9 "$DAEMON" 2>/dev/null || true
  rm -f "$OUT".* "$CACHE" "$CACHE.tmp" "$SOCK"
}
trap cleanup EXIT

start_daemon() {
  # Batch fusion explicitly on (the CLI default, pinned here so this
  # battery keeps exercising the fused dispatch path if the default
  # ever moves): crash-safety must hold with coalescing active.
  "$NANODEC" serve --socket "$SOCK" --domains 2 --batch-window-ms 2 \
    --cache-file "$CACHE" --snapshot-interval 1 &
  DAEMON=$!
}

battery() { # $1 = output file
  "$NANODEC" client --socket "$SOCK" --timeout 30 \
    '{"id":1,"verb":"evaluate","params":{"code":"BGC","length":8},"exec":{"seed":11,"mc_samples":300}}' \
    '{"id":2,"verb":"yield","params":{"code":"TC","length":6},"exec":{"seed":11,"mc_samples":300}}' \
    '{"id":3,"verb":"evaluate","params":{"code":"AHC","length":6},"exec":{"seed":7,"mc_samples":300}}' \
    '{"id":4,"verb":"yield","params":{"code":"BGC","length":8},"exec":{"seed":31,"mc_samples":200}}' \
    > "$1"
}

shutdown_daemon() {
  "$NANODEC" client --socket "$SOCK" --timeout 30 '{"verb":"shutdown"}' \
    > /dev/null
  wait "$DAEMON"
  DAEMON=""
}

echo "phase 1: cold battery"
start_daemon
battery "$OUT.cold"
grep -q '"id":1,"status":"ok","verb":"evaluate","cached":false' "$OUT.cold"
sed 's/"cached":false/"cached":true/' "$OUT.cold" > "$OUT.expect"

echo "phase 2: 4 parallel clients, all warm, all bit-identical"
pids=""
for i in 1 2 3 4; do battery "$OUT.par$i" & pids="$pids $!"; done
for pid in $pids; do wait "$pid"; done
for i in 1 2 3 4; do diff -u "$OUT.expect" "$OUT.par$i"; done

echo "phase 3: kill -9 mid-load"
# Two snapshot intervals so the periodic snapshotter has renamed a
# snapshot covering the battery into place before the crash.
sleep 2.5
[ -s "$CACHE" ]
"$NANODEC" client --socket "$SOCK" \
  '{"verb":"evaluate","params":{"code":"BGC","length":8},"exec":{"seed":101,"mc_samples":4000}}' \
  '{"verb":"evaluate","params":{"code":"BGC","length":8},"exec":{"seed":102,"mc_samples":4000}}' \
  > /dev/null 2>&1 &
load1=$!
"$NANODEC" client --socket "$SOCK" \
  '{"verb":"yield","params":{"code":"TC","length":6},"exec":{"seed":201,"mc_samples":4000}}' \
  '{"verb":"yield","params":{"code":"TC","length":6},"exec":{"seed":202,"mc_samples":4000}}' \
  > /dev/null 2>&1 &
load2=$!
sleep 0.3
kill -9 "$DAEMON"
wait "$DAEMON" 2>/dev/null || true
DAEMON=""
wait "$load1" 2>/dev/null || true
wait "$load2" 2>/dev/null || true

echo "phase 4: restart on the same cache file serves the warm bytes"
start_daemon
battery "$OUT.warm"
diff -u "$OUT.expect" "$OUT.warm"
shutdown_daemon

echo "phase 5: corrupted snapshot degrades to a cold cache"
size=$(wc -c < "$CACHE")
dd if="$CACHE" of="$CACHE.tmp" bs=1 count=$((size / 2)) 2>/dev/null
mv "$CACHE.tmp" "$CACHE"
start_daemon
battery "$OUT.cold2"
diff -u "$OUT.cold" "$OUT.cold2"
"$NANODEC" client --socket "$SOCK" --timeout 30 '{"id":9,"verb":"ping"}' \
  | grep -q '"id":9,"status":"ok"'
shutdown_daemon

echo "chaos serve: OK"
