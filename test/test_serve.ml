(* The serve daemon's test battery.

   Three layers:
   - protocol round trips through [Protocol.handle_line] directly (no
     sockets): every verb, the cached flag, per-request seed isolation,
     bit-for-bit agreement with standalone sequential runs, and the
     timeout / no-degrade / fault-plan error mapping onto the same
     taxonomy kinds the CLI turns into exit codes;
   - a protocol fuzz battery: malformed JSON, truncated documents,
     hostile nesting, wrong-typed and out-of-range numerics — every one
     must come back as a parseable [invalid-input] error response and
     leave the daemon answering;
   - real sockets: a server thread serving Unix-domain and TCP clients,
     oversized-line resync, partial-line EOF, shutdown draining
     pipelined requests, and the 8-client soak whose responses must be
     byte-identical across clients and across domain counts 1 and 4. *)

open Nanodec_serve
module Run_ctx = Nanodec_parallel.Run_ctx
module Telemetry = Nanodec_telemetry.Telemetry
module Fault = Nanodec_fault.Fault
module E = Nanodec_error

let with_state ?cache_enabled ?(domains = 2) f =
  Run_ctx.with_ctx ~domains @@ fun ctx ->
  f (Protocol.make_state ?cache_enabled ~base:ctx ())

let parse_response line =
  match Json.parse line with
  | Ok v -> v
  | Error msg -> Alcotest.failf "unparsable response %S: %s" line msg

let member name json =
  match Json.member name json with
  | Some v -> v
  | None -> Alcotest.failf "response lacks field %S: %s" name (Json.to_string json)

let string_member name json =
  match Json.to_string_opt (member name json) with
  | Some s -> s
  | None -> Alcotest.failf "field %S is not a string" name

let int_member name json =
  match Json.to_int_opt (member name json) with
  | Some i -> i
  | None -> Alcotest.failf "field %S is not an int" name

let float_member name json =
  match Json.to_float_opt (member name json) with
  | Some f -> f
  | None -> Alcotest.failf "field %S is not a number" name

let bool_member name json =
  match Json.to_bool_opt (member name json) with
  | Some b -> b
  | None -> Alcotest.failf "field %S is not a bool" name

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let ask state line = parse_response (Protocol.handle_line state line)

let expect_ok response =
  Alcotest.(check string)
    ("status of " ^ Json.to_string response)
    "ok"
    (string_member "status" response);
  member "result" response

let expect_error ~kind ~exit_code response =
  Alcotest.(check string) "status" "error" (string_member "status" response);
  Alcotest.(check string) "kind" kind (string_member "kind" response);
  Alcotest.(check int) "exit_code" exit_code (int_member "exit_code" response)

(* --- protocol round trips --- *)

let test_ping () =
  with_state @@ fun state ->
  let r = ask state {|{"id":"abc","verb":"ping"}|} in
  Alcotest.(check string) "id echoed" "abc" (string_member "id" r);
  Alcotest.(check string) "verb echoed" "ping" (string_member "verb" r);
  Alcotest.(check bool) "pong" true (bool_member "pong" (expect_ok r))

let test_evaluate_matches_direct () =
  with_state @@ fun state ->
  let r =
    ask state {|{"verb":"evaluate","params":{"code":"BGC","length":10}}|}
  in
  let result = expect_ok r in
  let direct =
    Nanodec.Design.evaluate
      (Nanodec.Design.spec ~code_type:Nanodec_codes.Codebook.Balanced_gray
         ~code_length:10 ())
  in
  Alcotest.(check int) "phi" direct.Nanodec.Design.phi (int_member "phi" result);
  Alcotest.(check (float 0.)) "crossbar_yield"
    direct.Nanodec.Design.crossbar_yield
    (float_member "crossbar_yield" result);
  Alcotest.(check (float 0.)) "bit_area" direct.Nanodec.Design.bit_area
    (float_member "bit_area" result)

let test_evaluate_mc_matches_direct () =
  with_state @@ fun state ->
  let r =
    ask state
      {|{"verb":"evaluate","params":{"code":"BGC","length":8},"exec":{"seed":11,"mc_samples":300}}|}
  in
  let mc = member "mc" (expect_ok r) in
  let direct =
    Run_ctx.with_ctx ~domains:2 @@ fun ctx ->
    let spec =
      Nanodec.Design.spec ~code_type:Nanodec_codes.Codebook.Balanced_gray
        ~code_length:8 ()
    in
    Nanodec_crossbar.Cave.mc_yield_window_par ~ctx
      (Nanodec_numerics.Rng.create ~seed:11)
      ~samples:300
      (Nanodec_crossbar.Cave.analyze spec.Nanodec.Design.cave)
  in
  Alcotest.(check (float 0.)) "mc mean is bit-for-bit the direct estimate"
    direct.Nanodec_numerics.Montecarlo.mean
    (float_member "mean" mc);
  Alcotest.(check int) "samples" 300 (int_member "samples" mc);
  Alcotest.(check int) "seed" 11 (int_member "seed" mc)

let test_cached_flag_and_identical_result () =
  with_state @@ fun state ->
  let line =
    {|{"verb":"evaluate","params":{"code":"TC","length":8},"exec":{"seed":3,"mc_samples":200}}|}
  in
  let r1 = ask state line in
  let r2 = ask state line in
  Alcotest.(check bool) "first is cold" false (bool_member "cached" r1);
  Alcotest.(check bool) "second is cached" true (bool_member "cached" r2);
  Alcotest.(check string) "hit result is byte-identical to the cold result"
    (Json.to_string (member "result" r1))
    (Json.to_string (member "result" r2))

let test_yield_defaults () =
  with_state @@ fun state ->
  let r = ask state {|{"verb":"yield","params":{"code":"TC","length":6}}|} in
  let mc = member "mc" (expect_ok r) in
  Alcotest.(check int) "default samples" 1000 (int_member "samples" mc);
  Alcotest.(check int) "default seed" Run_ctx.default_seed
    (int_member "seed" mc)

let test_seed_isolation () =
  with_state @@ fun state ->
  let line seed =
    Printf.sprintf
      {|{"verb":"yield","params":{"code":"TC","length":6},"exec":{"seed":%d,"mc_samples":200}}|}
      seed
  in
  let r1 = ask state (line 1) in
  let r2 = ask state (line 2) in
  let r3 = ask state (line 1) in
  Alcotest.(check string) "same seed reproduces across interleaved requests"
    (Json.to_string (member "result" r1))
    (Json.to_string (member "result" r3));
  Alcotest.(check bool) "different seeds draw different noise" false
    (String.equal
       (Json.to_string (member "result" r1))
       (Json.to_string (member "result" r2)))

let test_matches_standalone_sequential_run () =
  (* A daemon request must return exactly what a one-shot sequential
     CLI-style run of the same parameters computes. *)
  let direct =
    Run_ctx.with_ctx ~domains:1 @@ fun ctx ->
    let spec =
      Nanodec.Design.spec ~code_type:Nanodec_codes.Codebook.Gray
        ~code_length:8 ()
    in
    Nanodec_crossbar.Cave.mc_yield_window_par ~ctx
      (Nanodec_numerics.Rng.create ~seed:21)
      ~samples:400
      (Nanodec_crossbar.Cave.analyze spec.Nanodec.Design.cave)
  in
  with_state ~domains:4 @@ fun state ->
  let r =
    ask state
      {|{"verb":"yield","params":{"code":"GC","length":8},"exec":{"seed":21,"mc_samples":400}}|}
  in
  let mc = member "mc" (expect_ok r) in
  Alcotest.(check (float 0.)) "daemon(4 domains) = standalone(1 domain)"
    direct.Nanodec_numerics.Montecarlo.mean
    (float_member "mean" mc)

let test_codes_round_trip () =
  with_state @@ fun state ->
  let r =
    ask state {|{"verb":"codes","params":{"code":"AHC","length":6,"count":5}}|}
  in
  let result = expect_ok r in
  let words =
    match Json.to_list_opt (member "words" result) with
    | Some l -> List.filter_map Json.to_string_opt l
    | None -> Alcotest.fail "words is not a list"
  in
  let direct =
    List.map Nanodec_codes.Word.to_string
      (Nanodec_codes.Codebook.sequence ~radix:2 ~length:6 ~count:5
         Nanodec_codes.Codebook.Arranged_hot)
  in
  Alcotest.(check (list string)) "word sequence" direct words

let test_sweep_round_trip () =
  with_state @@ fun state ->
  let line = {|{"verb":"sweep","params":{"radix":2,"wires":20}}|} in
  let r1 = ask state line in
  let rows =
    match Json.to_list_opt (member "rows" (expect_ok r1)) with
    | Some l -> l
    | None -> Alcotest.fail "rows is not a list"
  in
  let direct = Nanodec.Optimizer.sweep () in
  Alcotest.(check int) "row count matches Optimizer.sweep"
    (List.length direct) (List.length rows);
  let r2 = ask state line in
  Alcotest.(check bool) "sweep result cached on repeat" true
    (bool_member "cached" r2)

let test_check_verb () =
  with_state @@ fun state ->
  let r = ask state {|{"verb":"check","params":{"count":2,"seed":5}}|} in
  let result = expect_ok r in
  Alcotest.(check int) "runs every oracle"
    (List.length Nanodec_proptest.Oracles.all)
    (int_member "properties" result);
  Alcotest.(check int) "no failures" 0 (int_member "failed" result);
  Alcotest.(check int) "echoes the seed" 5 (int_member "seed" result)

let test_stats_counts () =
  with_state @@ fun state ->
  ignore (ask state {|{"verb":"ping"}|});
  ignore (ask state {|not json|});
  ignore (ask state {|{"verb":"evaluate"}|});
  let r = ask state {|{"verb":"stats"}|} in
  let result = expect_ok r in
  Alcotest.(check int) "requests counted" 4 (int_member "requests" result);
  Alcotest.(check int) "errors counted" 1 (int_member "errors" result);
  let cache = member "cache" result in
  Alcotest.(check bool) "evaluate populated the cache" true
    (int_member "entries" cache > 0);
  (* Without a server attached the scheduler view is the serial
     picture: this very request in flight, nothing queued or shed. *)
  let serve = member "serve" result in
  Alcotest.(check int) "serial inflight" 1 (int_member "inflight" serve);
  Alcotest.(check int) "serial queued" 0 (int_member "queued" serve);
  Alcotest.(check int) "serial shed" 0 (int_member "shed" serve)

let test_shutdown_flag () =
  with_state @@ fun state ->
  Alcotest.(check bool) "not stopping initially" false
    (Protocol.stopping state);
  let r = ask state {|{"verb":"shutdown"}|} in
  Alcotest.(check bool) "stopping acknowledged" true
    (bool_member "stopping" (expect_ok r));
  Alcotest.(check bool) "state marked stopping" true (Protocol.stopping state)

(* --- error mapping --- *)

let test_unknown_verb () =
  with_state @@ fun state ->
  let r = ask state {|{"id":7,"verb":"frobnicate"}|} in
  expect_error ~kind:"invalid-input" ~exit_code:2 r;
  Alcotest.(check int) "id still echoed" 7 (int_member "id" r);
  let hint = string_member "hint" r in
  Alcotest.(check bool) "hint lists the verbs" true
    (List.for_all (fun v -> contains ~needle:v hint) Protocol.known_verbs)

let test_malformed_json_then_alive () =
  with_state @@ fun state ->
  let r = ask state "{" in
  expect_error ~kind:"invalid-input" ~exit_code:2 r;
  let r2 = ask state {|{"verb":"ping"}|} in
  Alcotest.(check bool) "daemon still answers" true
    (bool_member "pong" (expect_ok r2))

let test_non_object_request () =
  with_state @@ fun state ->
  expect_error ~kind:"invalid-input" ~exit_code:2 (ask state "[1,2,3]");
  expect_error ~kind:"invalid-input" ~exit_code:2 (ask state "42")

let test_invalid_numerics () =
  with_state @@ fun state ->
  let cases =
    [
      {|{"verb":"yield","exec":{"mc_samples":0}}|};
      {|{"verb":"yield","exec":{"mc_samples":-5}}|};
      {|{"verb":"yield","exec":{"mc_samples":1}}|};
      {|{"verb":"yield","exec":{"seed":-1}}|};
      {|{"verb":"yield","exec":{"seed":1.5}}|};
      {|{"verb":"yield","exec":{"timeout":-1}}|};
      {|{"verb":"yield","exec":{"timeout":0}}|};
      {|{"verb":"yield","exec":{"chunks":0}}|};
      {|{"verb":"yield","exec":{"chunks":"minus one"}}|};
      {|{"verb":"evaluate","params":{"radix":1}}|};
      {|{"verb":"evaluate","params":{"radix":-2}}|};
      {|{"verb":"evaluate","params":{"length":0}}|};
      {|{"verb":"evaluate","params":{"wires":0}}|};
      {|{"verb":"evaluate","params":{"raw_bits":0}}|};
      {|{"verb":"codes","params":{"count":0}}|};
      {|{"verb":"check","params":{"count":0}}|};
      {|{"verb":"check","params":{"count":1000000}}|};
      {|{"verb":"evaluate","params":{"code":"XYZ"}}|};
    ]
  in
  List.iter
    (fun line -> expect_error ~kind:"invalid-input" ~exit_code:2 (ask state line))
    cases;
  Alcotest.(check bool) "daemon still answers after the battery" true
    (bool_member "pong" (expect_ok (ask state {|{"verb":"ping"}|})))

let test_fuzz_battery () =
  with_state @@ fun state ->
  let deep = String.concat "" (List.init 100 (fun _ -> "[")) in
  let hostile =
    [
      "";
      "   ";
      "{";
      "[";
      "\"just a string\"";
      "null";
      "true";
      "{\"verb\":\"ping\"";
      "{\"verb\": }";
      "{\"verb\":42}";
      "{\"verb\":[\"ping\"]}";
      "{\"verb\":\"ping\",\"id\":}";
      "{\"verb\":\"ping\"}garbage";
      deep;
      "{\"verb\":\"evaluate\",\"params\":{\"length\":\"ten\"}}";
      "{\"verb\":\"evaluate\",\"params\":42}";
      "{\"verb\":\"evaluate\",\"exec\":[]}";
      "{\"verb\":\"yield\",\"exec\":{\"seed\":99999999999999999999999999}}";
      "{\"verb\":\"yield\",\"exec\":{\"timeout\":NaN}}";
      "{\"verb\":\"yield\",\"exec\":{\"timeout\":Infinity}}";
      "{\"verb\":\"ping\",\"id\":\"\\u0000 raw \x01 control\"}";
    ]
  in
  List.iter
    (fun line ->
      let r = ask state line in
      Alcotest.(check string)
        (Printf.sprintf "hostile line %S maps to an error" line)
        "error"
        (string_member "status" r);
      Alcotest.(check string)
        (Printf.sprintf "hostile line %S is invalid-input" line)
        "invalid-input"
        (string_member "kind" r))
    hostile;
  Alcotest.(check bool) "daemon survives the fuzz battery" true
    (bool_member "pong" (expect_ok (ask state {|{"verb":"ping"}|})))

let test_timeout_mapping () =
  with_state @@ fun state ->
  let r =
    ask state
      {|{"verb":"yield","params":{"code":"BGC","length":10},"exec":{"mc_samples":50000,"timeout":1e-06}}|}
  in
  expect_error ~kind:"timeout" ~exit_code:3 r;
  Alcotest.(check bool) "shared pool still serves after the timeout" true
    (bool_member "pong" (expect_ok (ask state {|{"verb":"ping"}|})))

let test_no_degrade_mapping () =
  with_state @@ fun state ->
  let baseline =
    ask state
      {|{"verb":"yield","params":{"code":"TC","length":6},"exec":{"seed":9,"mc_samples":200}}|}
  in
  let r =
    ask state
      {|{"verb":"yield","params":{"code":"TC","length":6},"exec":{"seed":9,"mc_samples":200,"fault_plan":"seed=1;pool.chunk:crash:p=1","no_degrade":true}}|}
  in
  expect_error ~kind:"degraded" ~exit_code:5 r;
  (* With degradation allowed the same chaos plan must recover to the
     exact uninjected result — on a private pool, leaving the shared
     one untouched. *)
  let recovered =
    ask state
      {|{"verb":"yield","params":{"code":"TC","length":6},"exec":{"seed":9,"mc_samples":200,"fault_plan":"seed=1;pool.chunk:crash:p=0.4:max=20"}}|}
  in
  Alcotest.(check string) "chaos run recovers the uninjected bytes"
    (Json.to_string (member "result" baseline))
    (Json.to_string (member "result" recovered));
  let after =
    ask state
      {|{"verb":"yield","params":{"code":"TC","length":6},"exec":{"seed":9,"mc_samples":200}}|}
  in
  Alcotest.(check string) "shared pool unpoisoned, result unchanged"
    (Json.to_string (member "result" baseline))
    (Json.to_string (member "result" after))

(* --- sockets --- *)

let serve_in_thread ?max_line_bytes ?max_inflight ?max_queue ?batch_window_s
    ?max_batch ?idle_timeout_s ?cache_file ?snapshot_interval_s ?sink ?fault
    ?(domains = 2) ?cache_enabled address k =
  Run_ctx.with_ctx ?telemetry:sink ?fault ~domains @@ fun ctx ->
  let state = Protocol.make_state ?cache_enabled ~base:ctx () in
  let server =
    Server.create ?max_line_bytes ?max_inflight ?max_queue ?batch_window_s
      ?max_batch ?idle_timeout_s ?cache_file ?snapshot_interval_s ~state
      address
  in
  let thread = Thread.create Server.serve server in
  Fun.protect
    ~finally:(fun () ->
      (* Belt and braces: if the test failed before shutting down. *)
      Server.close server;
      Thread.join thread)
    (fun () -> k (Server.address server))

(* One daemon lifetime, joined to completion: create, run one client
   session, shut down over the wire and wait for the graceful drain to
   finish — so anything the drain promises (the final cache snapshot
   in particular) is on disk before this returns. *)
let daemon_session ?cache_file ?snapshot_interval_s ?(domains = 2) k =
  Run_ctx.with_ctx ~domains @@ fun ctx ->
  let state = Protocol.make_state ~base:ctx () in
  let server = Server.create ?cache_file ?snapshot_interval_s ~state (`Tcp 0) in
  let thread = Thread.create Server.serve server in
  match
    Client.with_connection (Server.address server) @@ fun conn ->
    let result = k conn in
    ignore (Client.request conn {|{"verb":"shutdown"}|});
    result
  with
  | result ->
    Thread.join thread;
    result
  | exception exn ->
    Server.close server;
    Thread.join thread;
    raise exn

let tmp_socket_path () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "nanodec-test-%d.sock" (Unix.getpid ()))

let test_unix_socket_end_to_end () =
  let path = tmp_socket_path () in
  serve_in_thread (`Unix path) @@ fun address ->
  Client.with_connection address @@ fun conn ->
  let ping = parse_response (Client.request conn {|{"verb":"ping"}|}) in
  Alcotest.(check bool) "pong over the socket" true
    (bool_member "pong" (expect_ok ping));
  let eval =
    parse_response
      (Client.request conn {|{"verb":"evaluate","params":{"length":8}}|})
  in
  ignore (expect_ok eval);
  let bye = parse_response (Client.request conn {|{"verb":"shutdown"}|}) in
  Alcotest.(check bool) "shutdown acknowledged" true
    (bool_member "stopping" (expect_ok bye));
  (* The server loop exits and unlinks its socket. *)
  let rec wait n =
    if Sys.file_exists path && n > 0 then (Unix.sleepf 0.05; wait (n - 1))
  in
  wait 40;
  Alcotest.(check bool) "socket path unlinked" false (Sys.file_exists path)

let test_tcp_end_to_end () =
  serve_in_thread (`Tcp 0) @@ fun address ->
  (match address with
  | `Tcp port -> Alcotest.(check bool) "kernel picked a port" true (port > 0)
  | `Unix _ -> Alcotest.fail "expected a TCP address");
  Client.with_connection address @@ fun conn ->
  let ping = parse_response (Client.request conn {|{"verb":"ping"}|}) in
  Alcotest.(check bool) "pong over TCP" true (bool_member "pong" (expect_ok ping));
  ignore (Client.request conn {|{"verb":"shutdown"}|})

let test_shutdown_drains_pipelined_requests () =
  serve_in_thread (`Tcp 0) @@ fun address ->
  let conn = Client.connect address in
  (* Both lines land in one write: the ping is already buffered when
     the shutdown executes, so the drain must still answer it. *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match address with
  | `Tcp port ->
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  | `Unix path -> Unix.connect fd (Unix.ADDR_UNIX path));
  let payload = {|{"id":1,"verb":"shutdown"}|} ^ "\n" ^ {|{"id":2,"verb":"ping"}|} ^ "\n" in
  ignore (Unix.write_substring fd payload 0 (String.length payload));
  let ic = Unix.in_channel_of_descr fd in
  let l1 = parse_response (input_line ic) in
  let l2 = parse_response (input_line ic) in
  Alcotest.(check bool) "shutdown answered" true
    (bool_member "stopping" (expect_ok l1));
  Alcotest.(check bool) "pipelined ping drained" true
    (bool_member "pong" (expect_ok l2));
  Unix.close fd;
  Client.close conn

let test_oversized_line_resync () =
  serve_in_thread ~max_line_bytes:1024 (`Tcp 0) @@ fun address ->
  Client.with_connection address @@ fun conn ->
  let flood = String.make 5000 'x' in
  let r1 = parse_response (Client.request conn flood) in
  expect_error ~kind:"invalid-input" ~exit_code:2 r1;
  Alcotest.(check bool) "error names the limit" true
    (contains ~needle:"exceeds" (string_member "message" r1));
  let r2 = parse_response (Client.request conn {|{"verb":"ping"}|}) in
  Alcotest.(check bool) "connection resynchronised" true
    (bool_member "pong" (expect_ok r2));
  ignore (Client.request conn {|{"verb":"shutdown"}|})

let test_partial_line_eof_dropped () =
  serve_in_thread (`Tcp 0) @@ fun address ->
  (* First client sends half a request and hangs up. *)
  (Client.with_connection address @@ fun conn ->
   ignore conn);
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match address with
  | `Tcp port ->
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  | `Unix path -> Unix.connect fd (Unix.ADDR_UNIX path));
  let partial = {|{"verb":"pi|} in
  ignore (Unix.write_substring fd partial 0 (String.length partial));
  Unix.close fd;
  Unix.sleepf 0.1;
  (* Second client: the daemon is still alive and well. *)
  Client.with_connection address @@ fun conn ->
  let r = parse_response (Client.request conn {|{"verb":"ping"}|}) in
  Alcotest.(check bool) "daemon alive after partial-line EOF" true
    (bool_member "pong" (expect_ok r));
  ignore (Client.request conn {|{"verb":"shutdown"}|})

(* --- admission control --- *)

let raw_connect address =
  match address with
  | `Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    fd
  | `Unix path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd

let test_overload_sheds_deterministically () =
  (* Capacity max_inflight + max_queue = 2.  The injected stall parks
     the single worker on the first request for 400 ms, so of five
     lines landing in one write exactly two are admitted (one
     executing, one queued) and three are shed — no matter how the
     threads are scheduled, because admission counts submissions minus
     completions and nothing can complete while the worker stalls. *)
  let sink = Telemetry.create () in
  let fault = Fault.create (Fault.parse_exn "seed=1;serve.dispatch:stall=400ms:key=0") in
  serve_in_thread ~sink ~fault ~max_inflight:1 ~max_queue:1 (`Tcp 0)
  @@ fun address ->
  let fd = raw_connect address in
  let payload =
    String.concat ""
      (List.init 5 (fun i ->
           Printf.sprintf {|{"id":%d,"verb":"ping"}|} i ^ "\n"))
  in
  ignore (Unix.write_substring fd payload 0 (String.length payload));
  let ic = Unix.in_channel_of_descr fd in
  let responses = List.init 5 (fun _ -> parse_response (input_line ic)) in
  Unix.close fd;
  (* Responses come back in arrival order: the stalled ping, the queued
     ping, then the three rejects. *)
  List.iteri
    (fun i r ->
      Alcotest.(check int)
        (Printf.sprintf "response %d is for request %d" i i)
        i (int_member "id" r))
    (List.filteri (fun i _ -> i < 2) responses);
  List.iteri
    (fun i r ->
      if i < 2 then
        Alcotest.(check bool)
          (Printf.sprintf "request %d admitted" i)
          true
          (bool_member "pong" (expect_ok r))
      else begin
        expect_error ~kind:"overloaded" ~exit_code:6 r;
        Alcotest.(check bool)
          (Printf.sprintf "request %d names the limit" i)
          true
          (contains ~needle:"(limit 2)" (string_member "message" r))
      end)
    responses;
  (* The scheduler view and the telemetry counter agree with the wire:
     exactly three sheds. *)
  Client.with_connection address @@ fun conn ->
  let stats = parse_response (Client.request conn {|{"verb":"stats"}|}) in
  let serve = member "serve" (expect_ok stats) in
  Alcotest.(check int) "stats shed count" 3 (int_member "shed" serve);
  Alcotest.(check int) "stats max_inflight" 1 (int_member "max_inflight" serve);
  Alcotest.(check int) "stats max_queue" 1 (int_member "max_queue" serve);
  Alcotest.(check (option int)) "serve.shed telemetry matches exactly"
    (Some 3)
    (List.assoc_opt "serve.shed" (Telemetry.counters sink));
  let bye = parse_response (Client.request conn {|{"verb":"shutdown"}|}) in
  let payload = expect_ok bye in
  Alcotest.(check int) "shutdown reports the shed split" 3
    (int_member "shed" payload);
  Alcotest.(check bool) "shutdown reports a drain count" true
    (int_member "draining" payload >= 0)

let test_dispatch_fault_classified () =
  (* An injected serve.dispatch crash (keyed by global arrival index,
     so exactly the second request) must come back as a classified
     worker-crash response and leave the daemon serving. *)
  let fault = Fault.create (Fault.parse_exn "seed=1;serve.dispatch:crash:key=1") in
  serve_in_thread ~fault (`Tcp 0) @@ fun address ->
  Client.with_connection address @@ fun conn ->
  let r0 = parse_response (Client.request conn {|{"verb":"ping"}|}) in
  Alcotest.(check bool) "first request clean" true
    (bool_member "pong" (expect_ok r0));
  let r1 = parse_response (Client.request conn {|{"verb":"ping"}|}) in
  expect_error ~kind:"worker-crash" ~exit_code:4 r1;
  Alcotest.(check bool) "error names the site" true
    (contains ~needle:"serve.dispatch" (string_member "message" r1));
  let r2 = parse_response (Client.request conn {|{"verb":"ping"}|}) in
  Alcotest.(check bool) "daemon survives the injected crash" true
    (bool_member "pong" (expect_ok r2));
  ignore (Client.request conn {|{"verb":"shutdown"}|})

(* --- client deadlines & idle reaping --- *)

let test_client_timeout_on_wedged_daemon () =
  (* A listener that accepts and never answers: the pre-hardening
     client would block forever; with a deadline it must raise the
     taxonomy Timeout (exit 3). *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen fd 1;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  Client.with_connection ~timeout_s:0.2 (`Tcp port) @@ fun conn ->
  match Client.request conn {|{"verb":"ping"}|} with
  | (_ : string) -> Alcotest.fail "expected the client deadline to fire"
  | exception E.Error (E.Timeout { site; seconds } as err) ->
    Alcotest.(check string) "timeout site" "client.read" site;
    Alcotest.(check (option (float 0.))) "timeout carries the deadline"
      (Some 0.2) seconds;
    Alcotest.(check int) "timeout exit code" 3 (E.exit_code err)

let test_idle_and_slowloris_reaped () =
  serve_in_thread ~idle_timeout_s:0.2 (`Tcp 0) @@ fun address ->
  (* A silent connection and one drip-feeding half a line both get
     reaped once the deadline passes: the daemon closes them (read
     returns EOF) instead of holding the fd forever. *)
  let silent = raw_connect address in
  let drip = raw_connect address in
  let partial = {|{"verb":"pi|} in
  ignore (Unix.write_substring drip partial 0 (String.length partial));
  let eof fd what =
    let b = Bytes.create 16 in
    match Unix.read fd b 0 16 with
    | 0 -> ()
    | n -> Alcotest.failf "%s: expected EOF, got %d bytes" what n
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  in
  eof silent "silent connection";
  eof drip "slow-read connection";
  Unix.close silent;
  Unix.close drip;
  (* An active client is untouched and the daemon still answers. *)
  Client.with_connection address @@ fun conn ->
  let r = parse_response (Client.request conn {|{"verb":"ping"}|}) in
  Alcotest.(check bool) "daemon alive after reaping idlers" true
    (bool_member "pong" (expect_ok r));
  ignore (Client.request conn {|{"verb":"shutdown"}|})

(* --- crash-safe cache persistence --- *)

let persist_line =
  {|{"verb":"yield","params":{"code":"BGC","length":8},"exec":{"seed":31,"mc_samples":200}}|}

let with_cache_file k =
  let path = Filename.temp_file "nanodec-test-snap" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> k path)

(* One daemon lifetime answering [persist_line]; the graceful drain
   writes the snapshot before [daemon_session] returns. *)
let persist_once ~cache_file =
  daemon_session ~cache_file @@ fun conn ->
  parse_response (Client.request conn persist_line)

let test_snapshot_survives_restart () =
  with_cache_file @@ fun cache_file ->
  let cold = persist_once ~cache_file in
  Alcotest.(check bool) "first daemon computes cold" false
    (bool_member "cached" cold);
  let warm = persist_once ~cache_file in
  Alcotest.(check bool) "restarted daemon serves from the snapshot" true
    (bool_member "cached" warm);
  Alcotest.(check string) "warm result ≡ pre-restart bytes"
    (Json.to_string (member "result" cold))
    (Json.to_string (member "result" warm))

let test_corrupt_snapshot_starts_cold () =
  (* Truncation, bit flips and zero fill: every mutilation must cost
     exactly the warm cache — the daemon starts cold, answers the same
     bytes, and never crashes. *)
  let corruptions =
    [
      ("truncated", fun bytes -> String.sub bytes 0 (String.length bytes / 2));
      ( "bit-flipped",
        fun bytes ->
          let b = Bytes.of_string bytes in
          let i = Bytes.length b / 2 in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
          Bytes.to_string b );
      ("zero-filled", fun bytes -> String.make (String.length bytes) '\000');
    ]
  in
  with_cache_file @@ fun cache_file ->
  let reference = persist_once ~cache_file in
  let reference_result = Json.to_string (member "result" reference) in
  List.iter
    (fun (what, mutilate) ->
      (* Re-seed a valid snapshot, then mutilate it. *)
      ignore (persist_once ~cache_file);
      let ic = open_in_bin cache_file in
      let bytes = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin cache_file in
      output_string oc (mutilate bytes);
      close_out oc;
      let r = persist_once ~cache_file in
      Alcotest.(check bool) (what ^ ": daemon starts cold") false
        (bool_member "cached" r);
      Alcotest.(check string) (what ^ ": cold recompute ≡ reference bytes")
        reference_result
        (Json.to_string (member "result" r)))
    corruptions

(* --- the 8-client soak ---

   Every client sends the same request list; the daemon executes
   serially, so after a warmup pass primes the cache every response is
   a hit and must be byte-identical across clients — and across domain
   counts, by the Monte-Carlo determinism contract. *)

let soak_requests =
  List.map
    (fun seed ->
      Printf.sprintf
        {|{"verb":"yield","params":{"code":"BGC","length":8},"exec":{"seed":%d,"mc_samples":200}}|}
        seed)
    [ 1; 2; 3; 4 ]
  @ [
      (* An active fault plan bypasses the result cache, so all eight
         clients execute this concurrently on private pools.  Injected
         delays are byte-neutral by the transparency contract but
         scramble chunk completion timing — the hardest regime for the
         server's arrival-order response writer, which must keep the
         concurrency invisible on the wire regardless. *)
      {|{"verb":"yield","params":{"code":"BGC","length":8},"exec":{"seed":5,"mc_samples":200,"fault_plan":"seed=2009;pool.chunk:delay=2ms:p=0.5;mc.sample_batch:delay=1ms:p=0.3"}}|};
    ]

let run_soak ?batch_window_s ?cache_enabled ?(warmup = true) ~domains () =
  serve_in_thread ?batch_window_s ?cache_enabled ~domains (`Tcp 0)
  @@ fun address ->
  (* Warmup: prime the cache so the soak responses all carry
     cached=true and are therefore byte-comparable.  Skipped for the
     cache-disabled soaks, where every response is a fresh build and
     byte-comparable by the determinism contract alone. *)
  if warmup then
    Client.with_connection address (fun conn ->
        List.iter (fun line -> ignore (Client.request conn line)) soak_requests);
  let results = Array.make 8 [] in
  let clients =
    List.init 8 (fun i ->
        Thread.create
          (fun () ->
            Client.with_connection address @@ fun conn ->
            results.(i) <-
              List.map (fun line -> Client.request conn line) soak_requests)
          ())
  in
  List.iter Thread.join clients;
  (Client.with_connection address @@ fun conn ->
   ignore (Client.request conn {|{"verb":"shutdown"}|}));
  Array.to_list results

let test_concurrent_soak_deterministic () =
  let soak1 = run_soak ~domains:1 () in
  let soak4 = run_soak ~domains:4 () in
  let reference = List.hd soak1 in
  List.iteri
    (fun i responses ->
      Alcotest.(check (list string))
        (Printf.sprintf "domains=1 client %d matches client 0" i)
        reference responses)
    soak1;
  List.iteri
    (fun i responses ->
      Alcotest.(check (list string))
        (Printf.sprintf "domains=4 client %d matches the domains=1 bytes" i)
        reference responses)
    soak4

(* Batch fusion is pure scheduling: the same soak (including its
   fault-plan request, which is unfusable and rides the Single path
   through a batching daemon) with a 2 ms window must produce the same
   bytes as the unbatched daemon, at domains 1 and 4 alike. *)
let test_batched_soak_identical () =
  let reference = List.hd (run_soak ~domains:1 ()) in
  List.iter
    (fun domains ->
      List.iteri
        (fun i responses ->
          Alcotest.(check (list string))
            (Printf.sprintf "domains=%d batched client %d = unbatched bytes"
               domains i)
            reference responses)
        (run_soak ~batch_window_s:0.002 ~domains ()))
    [ 1; 4 ]

(* With the result cache disabled every request is a fresh cold build,
   so concurrent duplicates actually fuse — and the bytes still cannot
   move. *)
let test_batched_soak_uncached_identical () =
  let reference = List.hd (run_soak ~cache_enabled:false ~warmup:false ~domains:1 ()) in
  List.iteri
    (fun i responses ->
      Alcotest.(check (list string))
        (Printf.sprintf "uncached batched client %d = uncached unbatched bytes" i)
        reference responses)
    (run_soak ~batch_window_s:0.002 ~cache_enabled:false ~warmup:false
       ~domains:4 ())

(* An injected serve.batch crash (or an active delay plan) during the
   soak: every fused batch that hits it falls back to per-request
   execution — responses must not move a byte. *)
let test_batched_soak_under_fault_identical () =
  let reference =
    List.hd (run_soak ~cache_enabled:false ~warmup:false ~domains:1 ())
  in
  List.iter
    (fun plan ->
      let fault = Fault.create (Fault.parse_exn plan) in
      serve_in_thread ~fault ~batch_window_s:0.002 ~cache_enabled:false
        ~domains:4 (`Tcp 0)
      @@ fun address ->
      let results = Array.make 4 [] in
      let clients =
        List.init 4 (fun i ->
            Thread.create
              (fun () ->
                Client.with_connection address @@ fun conn ->
                results.(i) <-
                  List.map (fun line -> Client.request conn line) soak_requests)
              ())
      in
      List.iter Thread.join clients;
      (Client.with_connection address @@ fun conn ->
       ignore (Client.request conn {|{"verb":"shutdown"}|}));
      Array.iteri
        (fun i responses ->
          Alcotest.(check (list string))
            (Printf.sprintf "client %d under %s = fault-free bytes" i plan)
            reference responses)
        results)
    [
      "seed=3;serve.batch:crash:p=1";
      "seed=4;serve.batch:delay=1ms:p=1;mc.sample_batch:delay=1ms:p=0.2";
    ]

(* --- the batcher itself --- *)

let test_batcher_mechanics () =
  let b = Batcher.create ~window_s:0.005 ~max_batch:3 in
  Alcotest.(check int) "empty" 0 (Batcher.length b);
  Alcotest.(check bool) "deadline unarmed" true (Batcher.deadline b = None);
  Batcher.add b "a" ~now:1.0;
  Alcotest.(check (option (float 1e-9))) "first add arms the deadline"
    (Some 1.005) (Batcher.deadline b);
  Batcher.add b "b" ~now:1.002;
  Alcotest.(check (option (float 1e-9))) "later adds leave it"
    (Some 1.005) (Batcher.deadline b);
  Batcher.add b "c" ~now:1.004;
  Alcotest.(check int) "buffered" 3 (Batcher.length b);
  let xs, ord0 = Batcher.take b ~reason:`Full in
  Alcotest.(check (list string)) "arrival order" [ "a"; "b"; "c" ] xs;
  Alcotest.(check int) "first fused ordinal" 0 ord0;
  Alcotest.(check int) "drained" 0 (Batcher.length b);
  Alcotest.(check bool) "deadline disarmed" true (Batcher.deadline b = None);
  Batcher.add b "d" ~now:2.0;
  let xs, ord1 = Batcher.take b ~reason:`Window in
  Alcotest.(check (list string)) "singleton flush" [ "d" ] xs;
  Alcotest.(check int) "singleton sees the next ordinal" 1 ord1;
  Batcher.add b "e" ~now:3.0;
  Batcher.add b "f" ~now:3.001;
  let xs, ord2 = Batcher.take b ~reason:`Drain in
  Alcotest.(check (list string)) "drain order" [ "e"; "f" ] xs;
  Alcotest.(check int) "singleton did not advance the ordinal" 1 ord2;
  let v = Batcher.view b in
  Alcotest.(check int) "fused batches" 2 v.Protocol.batches;
  Alcotest.(check int) "fused requests" 5 v.Protocol.fused_requests;
  Alcotest.(check int) "window flushes" 1 v.Protocol.flush_window;
  Alcotest.(check int) "full flushes" 1 v.Protocol.flush_full;
  Alcotest.(check int) "drain flushes" 1 v.Protocol.flush_drain;
  Alcotest.(check int) "p50 size" 2 v.Protocol.size_p50;
  Alcotest.(check int) "max size" 3 v.Protocol.size_max;
  Alcotest.check_raises "window_s must be positive"
    (Invalid_argument "Batcher.create: window_s must be > 0") (fun () ->
      ignore (Batcher.create ~window_s:0. ~max_batch:4));
  Alcotest.check_raises "max_batch must be >= 2"
    (Invalid_argument "Batcher.create: max_batch must be >= 2") (fun () ->
      ignore (Batcher.create ~window_s:0.001 ~max_batch:1))

(* The permutation oracle: fusing ANY arrival order of K queued fusable
   requests — classify, one [Batcher.prepare] mega-run, then per-request
   execution against the overlay — answers every request byte-identically
   to a fresh unfused daemon handling it.  Order must be invisible
   because each item keeps its own seed-derived stream family. *)
let test_fusion_permutation_oracle () =
  let lines =
    [
      {|{"verb":"evaluate","params":{"code":"BGC","length":8},"exec":{"seed":21,"mc_samples":60}}|};
      {|{"verb":"evaluate","params":{"code":"TC","length":8},"exec":{"seed":22,"mc_samples":80}}|};
      {|{"verb":"yield","params":{"code":"HC","length":6},"exec":{"seed":23,"mc_samples":60}}|};
      {|{"verb":"yield","params":{"code":"BGC","length":8},"exec":{"seed":24,"mc_samples":100,"method":"stratified:4"}}|};
    ]
  in
  let reference =
    with_state @@ fun state ->
    List.map (fun l -> (l, Protocol.handle_line state l)) lines
  in
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
      List.concat_map
        (fun x ->
          List.map
            (fun p -> x :: p)
            (permutations (List.filter (fun y -> y != x) l)))
        l
  in
  List.iter
    (fun perm ->
      with_state @@ fun state ->
      let plans =
        List.map
          (fun l ->
            match Protocol.classify_fusable state l with
            | Some p -> p
            | None -> Alcotest.failf "request unexpectedly unfusable: %s" l)
          perm
      in
      let overlay =
        match Batcher.prepare ~state ~ordinal:0 plans with
        | Some o -> o
        | None -> Alcotest.fail "prepare fell back without a fault"
      in
      List.iter
        (fun line ->
          Alcotest.(check string)
            ("fused response to " ^ line)
            (List.assoc line reference)
            (Protocol.handle_line ~overlay state line))
        perm)
    (permutations lines)

(* And with an injected serve.batch crash, [prepare] must decline (the
   server then re-executes each request unfused) — same bytes. *)
let test_prepare_crash_falls_back () =
  let fault = Fault.create (Fault.parse_exn "seed=1;serve.batch:crash:p=1") in
  let reference =
    with_state @@ fun state ->
    Protocol.handle_line state
      {|{"verb":"yield","params":{"code":"BGC","length":8},"exec":{"seed":31,"mc_samples":80}}|}
  in
  Run_ctx.with_ctx ~domains:2 ~fault @@ fun ctx ->
  let state = Protocol.make_state ~base:ctx () in
  let line =
    {|{"verb":"yield","params":{"code":"BGC","length":8},"exec":{"seed":31,"mc_samples":80}}|}
  in
  let plan =
    match Protocol.classify_fusable state line with
    | Some p -> p
    | None -> Alcotest.fail "request unexpectedly unfusable"
  in
  (match Batcher.prepare ~state ~ordinal:0 [ plan; plan ] with
  | None -> ()
  | Some _ -> Alcotest.fail "prepare survived a p=1 serve.batch crash");
  Alcotest.(check string) "fallback answers the unfused bytes" reference
    (Protocol.handle_line state line)

let test_stats_batch_view () =
  (* Unbatched daemon: the stats verb reports batch = null. *)
  (serve_in_thread (`Tcp 0) @@ fun address ->
   Client.with_connection address @@ fun conn ->
   let r = parse_response (Client.request conn {|{"verb":"stats"}|}) in
   let serve = member "serve" (expect_ok r) in
   Alcotest.(check bool) "batch null when fusion is off" true
     (member "batch" serve = Json.Null));
  (* Batched daemon: knobs echoed, counters coherent after traffic. *)
  serve_in_thread ~batch_window_s:0.002 ~max_batch:7 (`Tcp 0)
  @@ fun address ->
  Client.with_connection address @@ fun conn ->
  ignore
    (Client.request conn
       {|{"verb":"yield","params":{"code":"BGC","length":8},"exec":{"seed":41,"mc_samples":60}}|});
  let r = parse_response (Client.request conn {|{"verb":"stats"}|}) in
  let serve = member "serve" (expect_ok r) in
  let batch = member "batch" serve in
  Alcotest.(check (float 1e-9)) "window_ms" 2.0 (float_member "window_ms" batch);
  Alcotest.(check int) "max_batch" 7 (int_member "max_batch" batch);
  Alcotest.(check int) "nothing buffered at rest" 0
    (int_member "buffered" batch);
  (* A single serial client never fuses: its requests flush eagerly as
     singletons the moment they are the only outstanding work. *)
  Alcotest.(check int) "no fused batches from a serial client" 0
    (int_member "batches" batch);
  Alcotest.(check bool) "the cold request flushed through the window path"
    true
    (int_member "flush_window" batch >= 1)

let suite =
  [
    Alcotest.test_case "ping round trip" `Quick test_ping;
    Alcotest.test_case "evaluate matches Design.evaluate" `Quick
      test_evaluate_matches_direct;
    Alcotest.test_case "evaluate mc matches the direct estimate" `Quick
      test_evaluate_mc_matches_direct;
    Alcotest.test_case "cached flag, hit ≡ cold bytes" `Quick
      test_cached_flag_and_identical_result;
    Alcotest.test_case "yield defaults" `Quick test_yield_defaults;
    Alcotest.test_case "per-request seed isolation" `Quick test_seed_isolation;
    Alcotest.test_case "daemon = standalone sequential run" `Quick
      test_matches_standalone_sequential_run;
    Alcotest.test_case "codes round trip" `Quick test_codes_round_trip;
    Alcotest.test_case "sweep round trip" `Quick test_sweep_round_trip;
    Alcotest.test_case "check verb" `Quick test_check_verb;
    Alcotest.test_case "stats counters" `Quick test_stats_counts;
    Alcotest.test_case "shutdown flag" `Quick test_shutdown_flag;
    Alcotest.test_case "unknown verb" `Quick test_unknown_verb;
    Alcotest.test_case "malformed JSON leaves the daemon alive" `Quick
      test_malformed_json_then_alive;
    Alcotest.test_case "non-object requests rejected" `Quick
      test_non_object_request;
    Alcotest.test_case "invalid numerics rejected uniformly" `Quick
      test_invalid_numerics;
    Alcotest.test_case "protocol fuzz battery" `Quick test_fuzz_battery;
    Alcotest.test_case "timeout maps to kind=timeout" `Quick
      test_timeout_mapping;
    Alcotest.test_case "no-degrade maps to kind=degraded" `Quick
      test_no_degrade_mapping;
    Alcotest.test_case "unix socket end to end" `Quick
      test_unix_socket_end_to_end;
    Alcotest.test_case "tcp end to end" `Quick test_tcp_end_to_end;
    Alcotest.test_case "shutdown drains pipelined requests" `Quick
      test_shutdown_drains_pipelined_requests;
    Alcotest.test_case "oversized line resync" `Quick
      test_oversized_line_resync;
    Alcotest.test_case "partial line at EOF dropped" `Quick
      test_partial_line_eof_dropped;
    Alcotest.test_case "overload sheds deterministically" `Quick
      test_overload_sheds_deterministically;
    Alcotest.test_case "serve.dispatch fault classified, daemon survives"
      `Quick test_dispatch_fault_classified;
    Alcotest.test_case "client deadline on a wedged daemon" `Quick
      test_client_timeout_on_wedged_daemon;
    Alcotest.test_case "idle and slow-read connections reaped" `Quick
      test_idle_and_slowloris_reaped;
    Alcotest.test_case "snapshot survives a restart" `Quick
      test_snapshot_survives_restart;
    Alcotest.test_case "corrupt snapshot starts cold, never crashes" `Quick
      test_corrupt_snapshot_starts_cold;
    Alcotest.test_case "8-client soak, domains 1 = domains 4" `Quick
      test_concurrent_soak_deterministic;
    Alcotest.test_case "batcher buffer mechanics and stats" `Quick
      test_batcher_mechanics;
    Alcotest.test_case "fusion permutation oracle (24 orders)" `Quick
      test_fusion_permutation_oracle;
    Alcotest.test_case "serve.batch crash falls back to unfused bytes" `Quick
      test_prepare_crash_falls_back;
    Alcotest.test_case "stats reports the batch view" `Quick
      test_stats_batch_view;
    Alcotest.test_case "batched soak = unbatched bytes, domains 1 and 4"
      `Quick test_batched_soak_identical;
    Alcotest.test_case "uncached batched soak = unbatched bytes" `Quick
      test_batched_soak_uncached_identical;
    Alcotest.test_case "batched soak under fault plans = fault-free bytes"
      `Quick test_batched_soak_under_fault_identical;
  ]
