(* The serve daemon's content-addressed LRU cache, proven correct two
   ways: unit tests of the LRU mechanics (eviction order, recency
   refresh, disabled pass-through, failure safety) and two
   property-based oracles on the lib/proptest engine —

   - [cache_hit ≡ cache_miss]: an arbitrary request sequence through an
     enabled cache (any capacity, including the eviction-heavy
     capacity-1 case) returns exactly the values the disabled
     (always-cold) cache returns, and

   - [cache_key injective on params]: distinct design parameters never
     collide in [Cave.config_key] / [Pattern.cache_key] /
     [Codebook.cache_key], which is what makes serving from the cache
     provably safe.

   These live here rather than in [Oracles.all] because the proptest
   library sits below the serve/crossbar layers in the dependency
   order; the engine is used directly. *)

open Nanodec_codes
open Nanodec_crossbar
open Nanodec_mspt
open Nanodec_serve
open Nanodec_proptest

let check_outcome = function
  | Property.Pass _ -> ()
  | Property.Fail f ->
    Alcotest.failf "%s" (Format.asprintf "%a" Property.pp_failure f)

(* --- LRU mechanics --- *)

let test_miss_then_hit () =
  let cache = Artifact_cache.create ~capacity:4 () in
  let builds = ref 0 in
  let build () = incr builds; 42 in
  let v1, hit1 = Artifact_cache.find_or_build cache ~key:"a" build in
  let v2, hit2 = Artifact_cache.find_or_build cache ~key:"a" build in
  Alcotest.(check int) "same value" v1 v2;
  Alcotest.(check bool) "first is a miss" false hit1;
  Alcotest.(check bool) "second is a hit" true hit2;
  Alcotest.(check int) "built exactly once" 1 !builds

let test_lru_eviction_order () =
  let cache = Artifact_cache.create ~capacity:2 () in
  let get k = Artifact_cache.find_or_build cache ~key:k (fun () -> k) in
  ignore (get "a");
  ignore (get "b");
  ignore (get "c");
  (* a was least recently used *)
  Alcotest.(check bool) "a evicted" false (Artifact_cache.mem cache "a");
  Alcotest.(check bool) "b survives" true (Artifact_cache.mem cache "b");
  Alcotest.(check bool) "c survives" true (Artifact_cache.mem cache "c");
  Alcotest.(check int) "one eviction" 1
    (Artifact_cache.stats cache).Artifact_cache.evictions

let test_recency_refresh () =
  let cache = Artifact_cache.create ~capacity:2 () in
  let get k = Artifact_cache.find_or_build cache ~key:k (fun () -> k) in
  ignore (get "a");
  ignore (get "b");
  ignore (get "a");
  (* refresh: b is now the LRU *)
  ignore (get "c");
  Alcotest.(check bool) "a survives (refreshed)" true
    (Artifact_cache.mem cache "a");
  Alcotest.(check bool) "b evicted" false (Artifact_cache.mem cache "b");
  Alcotest.(check (list string)) "MRU order" [ "c"; "a" ]
    (Artifact_cache.keys cache)

let test_disabled_passthrough () =
  let cache = Artifact_cache.create ~enabled:false ~capacity:8 () in
  let builds = ref 0 in
  let get () =
    Artifact_cache.find_or_build cache ~key:"k" (fun () -> incr builds; !builds)
  in
  let v1, h1 = get () in
  let v2, h2 = get () in
  Alcotest.(check bool) "never a hit" false (h1 || h2);
  Alcotest.(check (pair int int)) "every call builds" (1, 2) (v1, v2);
  Alcotest.(check int) "stores nothing" 0 (Artifact_cache.length cache);
  Alcotest.(check int) "counts misses" 2
    (Artifact_cache.stats cache).Artifact_cache.misses

let test_capacity_validated () =
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Artifact_cache.create: capacity must be >= 1")
    (fun () -> ignore (Artifact_cache.create ~capacity:0 ()))

let test_failed_build_stores_nothing () =
  let cache = Artifact_cache.create ~capacity:4 () in
  (try
     ignore
       (Artifact_cache.find_or_build cache ~key:"boom" (fun () ->
            failwith "builder exploded"))
   with Failure _ -> ());
  Alcotest.(check bool) "nothing stored" false
    (Artifact_cache.mem cache "boom");
  let v, hit =
    Artifact_cache.find_or_build cache ~key:"boom" (fun () -> 7)
  in
  Alcotest.(check (pair int bool)) "recovers on retry" (7, false) (v, hit)

let test_stats_accounting () =
  let cache = Artifact_cache.create ~capacity:2 () in
  let get k = Artifact_cache.find_or_build cache ~key:k (fun () -> k) in
  ignore (get "a");
  ignore (get "a");
  ignore (get "b");
  ignore (get "c");
  let s = Artifact_cache.stats cache in
  Alcotest.(check int) "hits" 1 s.Artifact_cache.hits;
  Alcotest.(check int) "misses" 3 s.Artifact_cache.misses;
  Alcotest.(check int) "entries" 2 s.Artifact_cache.entries;
  Alcotest.(check int) "capacity" 2 s.Artifact_cache.capacity;
  Alcotest.(check bool) "saved_s is a sum of non-negative costs" true
    (s.Artifact_cache.saved_s >= 0.)

let test_clear () =
  let cache = Artifact_cache.create ~capacity:4 () in
  ignore (Artifact_cache.find_or_build cache ~key:"a" (fun () -> 1));
  Artifact_cache.clear cache;
  Alcotest.(check int) "empty" 0 (Artifact_cache.length cache);
  Alcotest.(check (list string)) "no keys" [] (Artifact_cache.keys cache)

(* --- oracle: cache_hit ≡ cache_miss ---

   A request sequence is a list of keys over a small alphabet (so
   repeats and evictions actually happen).  The builder is a pure
   function of the key; the enabled cache (capacity drawn from 1..4,
   capacity 1 being the all-eviction degenerate case) must return
   exactly what the disabled cache returns at every step. *)

let hit_equiv_miss_prop =
  let gen =
    let open Gen in
    let* capacity = int_range 1 4 in
    let+ keys = list (elements [ "a"; "b"; "c"; "d"; "e"; "f" ]) in
    (capacity, keys)
  in
  let print (capacity, keys) =
    Printf.sprintf "capacity=%d keys=[%s]" capacity (String.concat ";" keys)
  in
  Property.make ~name:"serve: cache_hit = cache_miss (incl. capacity 1)"
    ~print gen (fun (capacity, keys) ->
      let build k = String.uppercase_ascii k ^ string_of_int (String.length k) in
      let hot = Artifact_cache.create ~capacity () in
      let cold = Artifact_cache.create ~enabled:false ~capacity () in
      List.for_all
        (fun k ->
          let vh, _ = Artifact_cache.find_or_build hot ~key:k (fun () -> build k) in
          let vc, hit_cold =
            Artifact_cache.find_or_build cold ~key:k (fun () -> build k)
          in
          vh = vc && not hit_cold)
        keys)

let test_hit_equiv_miss_oracle () =
  check_outcome (Property.run ~seed:2009 ~count:200 hit_equiv_miss_prop)

(* ... and the same invariant on the real artifact layer: a report and
   an estimate served twice through [Artifacts] are bit-for-bit the
   value the cold path computes. *)

let test_artifacts_hit_equiv_cold () =
  let open Nanodec in
  Nanodec_parallel.Run_ctx.with_ctx ~domains:2 @@ fun ctx ->
  let cache = Artifacts.create ~capacity:8 () in
  let spec =
    Design.spec ~code_type:Codebook.Balanced_gray ~code_length:8 ()
  in
  let cold_report = Design.evaluate spec in
  let r1, h1 = Artifacts.report cache spec in
  let r2, h2 = Artifacts.report cache spec in
  Alcotest.(check (pair bool bool)) "miss then hit" (false, true) (h1, h2);
  Alcotest.(check bool) "cached report ≡ cold report" true
    (r1 = cold_report && r2 = cold_report);
  let config = spec.Design.cave in
  let cold_analysis = Cave.analyze config in
  let cold_estimate =
    Cave.mc_yield_window_par ~ctx
      (Nanodec_numerics.Rng.create ~seed:7)
      ~samples:400 cold_analysis
  in
  let e1, eh1 = Artifacts.estimate cache ~ctx ~seed:7 ~samples:400 config in
  let e2, eh2 = Artifacts.estimate cache ~ctx ~seed:7 ~samples:400 config in
  Alcotest.(check (pair bool bool)) "estimate miss then hit" (false, true)
    (eh1, eh2);
  Alcotest.(check bool) "cached estimate ≡ cold estimate" true
    (e1 = cold_estimate && e2 = cold_estimate)

(* --- dump/restore + snapshot persistence --- *)

let test_dump_restore_roundtrip () =
  let cache = Artifact_cache.create ~capacity:4 () in
  let get k = Artifact_cache.find_or_build cache ~key:k (fun () -> k ^ "!") in
  ignore (get "a");
  ignore (get "b");
  ignore (get "c");
  ignore (get "a");
  (* recency now: a (MRU), c, b (LRU) — dump is LRU-first *)
  let dumped = List.map (fun (k, _, v) -> (k, v)) (Artifact_cache.dump cache) in
  Alcotest.(check (list (pair string string)))
    "dump is LRU-first with the stored values"
    [ ("b", "b!"); ("c", "c!"); ("a", "a!") ]
    dumped;
  let fresh = Artifact_cache.create ~capacity:4 () in
  Artifact_cache.restore fresh (Artifact_cache.dump cache);
  Alcotest.(check (list string)) "restore reproduces the recency chain"
    (Artifact_cache.keys cache) (Artifact_cache.keys fresh);
  let s = Artifact_cache.stats fresh in
  Alcotest.(check (pair int int)) "restore is not a workload" (0, 0)
    (s.Artifact_cache.hits, s.Artifact_cache.misses);
  (* The restored chain behaves: one more insert evicts the restored
     LRU, not anything recent. *)
  let tight = Artifact_cache.create ~capacity:3 () in
  Artifact_cache.restore tight (Artifact_cache.dump cache);
  ignore (Artifact_cache.find_or_build tight ~key:"d" (fun () -> "d!"));
  Alcotest.(check bool) "restored LRU evicted first" false
    (Artifact_cache.mem tight "b")

let test_restore_into_smaller_cache_keeps_mru () =
  let cache = Artifact_cache.create ~capacity:4 () in
  let get k = Artifact_cache.find_or_build cache ~key:k (fun () -> k) in
  List.iter (fun k -> ignore (get k)) [ "a"; "b"; "c"; "d" ];
  let small = Artifact_cache.create ~capacity:2 () in
  Artifact_cache.restore small (Artifact_cache.dump cache);
  Alcotest.(check (list string)) "keeps the most recently used tail"
    [ "d"; "c" ] (Artifact_cache.keys small)

let with_tmp_snapshot k =
  let path = Filename.temp_file "nanodec-test-snapshot" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> k path)

let entries_testable =
  Alcotest.(list (triple string (float 0.) string))

let test_snapshot_save_load_roundtrip () =
  with_tmp_snapshot @@ fun path ->
  let entries =
    [ ("alpha", 0.5, "payload one"); ("beta\nwith newline", 0., "\x00binary\xff") ]
  in
  (match Snapshot.save ~path ~schema:"test-v1" entries with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "save failed: %s" msg);
  (match Snapshot.load ~path ~schema:"test-v1" with
  | Ok got -> Alcotest.check entries_testable "load ≡ save" entries got
  | Error msg -> Alcotest.failf "load failed: %s" msg);
  match Snapshot.load ~path ~schema:"test-v2" with
  | Ok (_ : (string * float * string) list) ->
    Alcotest.fail "schema mismatch must not load"
  | Error msg ->
    Alcotest.(check bool) "schema mismatch is reported" true
      (String.length msg > 0)

let test_snapshot_missing_file_is_cold () =
  match Snapshot.load ~path:"/nonexistent/nanodec.snap" ~schema:"test-v1" with
  | Ok ([] : (string * float * string) list) -> ()
  | Ok _ -> Alcotest.fail "a missing file cannot hold entries"
  | Error msg -> Alcotest.failf "missing file must be a cold start, got: %s" msg

let test_snapshot_rejects_every_corruption () =
  (* Exhaustive single-byte battery: whatever byte is mutilated —
     header, count, lengths, keys, payload, checksum — the loader must
     return [Error], never entries and never a crash.  Plus the whole-
     file mutilations the daemon test exercises end to end. *)
  with_tmp_snapshot @@ fun path ->
  let entries = [ ("key-a", 1.5, "value-a"); ("key-b", 0.25, "value-b") ] in
  (match Snapshot.save ~path ~schema:"test-v1" entries with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "save failed: %s" msg);
  let ic = open_in_bin path in
  let pristine = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let reload bytes =
    let oc = open_out_bin path in
    output_string oc bytes;
    close_out oc;
    (Snapshot.load ~path ~schema:"test-v1"
      : ((string * float * string) list, string) result)
  in
  String.iteri
    (fun i c ->
      let mutated = Bytes.of_string pristine in
      Bytes.set mutated i (Char.chr (Char.code c lxor 0x01));
      match reload (Bytes.to_string mutated) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "bit flip at byte %d went undetected" i)
    pristine;
  List.iter
    (fun (what, bytes) ->
      match reload bytes with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s went undetected" what)
    [
      ("truncation", String.sub pristine 0 (String.length pristine / 2));
      ("zero fill", String.make (String.length pristine) '\000');
      ("trailing garbage", pristine ^ "x");
      ("empty file", "");
    ];
  (* And the pristine bytes still load after all that. *)
  match reload pristine with
  | Ok got -> Alcotest.check entries_testable "pristine still loads" entries got
  | Error msg -> Alcotest.failf "pristine bytes rejected: %s" msg

(* --- oracle: snapshot save→load ≡ identity --- *)

let snapshot_roundtrip_prop =
  let gen =
    let open Gen in
    let key =
      let+ chars = list (elements [ 'a'; 'b'; 'z'; '0'; '\n'; '\000'; '|' ]) in
      String.init (List.length chars) (List.nth chars)
    in
    (* Exactly representable costs, so structural equality is exact. *)
    let cost = elements [ 0.; 0.5; 1.25; 1e9 ] in
    let value =
      let+ words = list (elements [ "yield"; "\x00\xff"; ""; "mspt" ]) in
      String.concat "/" words
    in
    list (triple key cost value)
  in
  let print entries =
    String.concat ";"
      (List.map (fun (k, c, v) -> Printf.sprintf "(%S,%g,%S)" k c v) entries)
  in
  Property.make ~name:"serve: snapshot save→load ≡ identity" ~print gen
    (fun entries ->
      let path = Filename.temp_file "nanodec-prop-snapshot" ".bin" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          match Snapshot.save ~path ~schema:"prop-v1" entries with
          | Error _ -> false
          | Ok () -> (
            match Snapshot.load ~path ~schema:"prop-v1" with
            | Ok got -> got = entries
            | Error _ -> false)))

let test_snapshot_roundtrip_oracle () =
  check_outcome (Property.run ~seed:2009 ~count:100 snapshot_roundtrip_prop)

(* --- oracle: cache keys are injective on design parameters --- *)

let config_gen =
  let open Gen in
  let* radix = elements [ 2; 3 ] in
  let* code_type =
    elements
      (if radix = 2 then [ Codebook.Tree; Codebook.Gray; Codebook.Hot ]
       else [ Codebook.Tree; Codebook.Gray ])
  in
  let* code_length = int_range 2 8 in
  let* n_wires = int_range 2 12 in
  let* sigma_t = elements [ 0.03; 0.05; 0.07 ] in
  let* margin_fraction = elements [ 0.3; 0.42 ] in
  let+ supply_voltage = elements [ 0.9; 1.0 ] in
  {
    Cave.default_config with
    Cave.radix;
    code_type;
    code_length;
    n_wires;
    sigma_t;
    margin_fraction;
    supply_voltage;
  }

let key_injective_prop =
  let gen = Gen.pair config_gen config_gen in
  let print (a, b) =
    Printf.sprintf "%s\nvs\n%s" (Cave.config_key a) (Cave.config_key b)
  in
  Property.make ~name:"serve: cache_key injective on design params" ~print gen
    (fun (a, b) ->
      let keys_equal = String.equal (Cave.config_key a) (Cave.config_key b) in
      keys_equal = (a = b))

let test_key_injective_oracle () =
  check_outcome (Property.run ~seed:2009 ~count:300 key_injective_prop)

let test_component_keys_injective () =
  (* The pattern and codebook keys the artifact layer composes from
     must distinguish every parameter they claim to cover. *)
  let p1 = Pattern.of_codebook ~radix:2 ~length:6 ~n_wires:4 Codebook.Gray in
  let p2 = Pattern.of_codebook ~radix:2 ~length:6 ~n_wires:5 Codebook.Gray in
  let p3 =
    Pattern.of_codebook ~radix:2 ~length:6 ~n_wires:4 Codebook.Tree
  in
  Alcotest.(check bool) "pattern keys differ across wires" false
    (String.equal (Pattern.cache_key p1) (Pattern.cache_key p2));
  Alcotest.(check bool) "pattern keys differ across families" false
    (String.equal (Pattern.cache_key p1) (Pattern.cache_key p3));
  Alcotest.(check bool) "pattern key stable on equal params" true
    (String.equal (Pattern.cache_key p1)
       (Pattern.cache_key
          (Pattern.of_codebook ~radix:2 ~length:6 ~n_wires:4 Codebook.Gray)));
  let ck = Codebook.cache_key in
  Alcotest.(check bool) "codebook keys differ across lengths" false
    (String.equal
       (ck ~radix:2 ~length:6 Codebook.Gray)
       (ck ~radix:2 ~length:7 Codebook.Gray));
  Alcotest.(check bool) "codebook keys differ across radix" false
    (String.equal
       (ck ~radix:2 ~length:6 Codebook.Tree)
       (ck ~radix:3 ~length:6 Codebook.Tree))

let suite =
  [
    Alcotest.test_case "miss then hit" `Quick test_miss_then_hit;
    Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "recency refresh" `Quick test_recency_refresh;
    Alcotest.test_case "disabled cache is a counted pass-through" `Quick
      test_disabled_passthrough;
    Alcotest.test_case "capacity < 1 rejected" `Quick test_capacity_validated;
    Alcotest.test_case "failed build stores nothing" `Quick
      test_failed_build_stores_nothing;
    Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "oracle: cache_hit = cache_miss" `Quick
      test_hit_equiv_miss_oracle;
    Alcotest.test_case "artifacts: hit = cold, bit for bit" `Quick
      test_artifacts_hit_equiv_cold;
    Alcotest.test_case "dump/restore round trip" `Quick
      test_dump_restore_roundtrip;
    Alcotest.test_case "restore into a smaller cache keeps the MRU tail"
      `Quick test_restore_into_smaller_cache_keeps_mru;
    Alcotest.test_case "snapshot save/load round trip" `Quick
      test_snapshot_save_load_roundtrip;
    Alcotest.test_case "snapshot: missing file is a cold start" `Quick
      test_snapshot_missing_file_is_cold;
    Alcotest.test_case "snapshot rejects every corruption" `Quick
      test_snapshot_rejects_every_corruption;
    Alcotest.test_case "oracle: snapshot save→load ≡ identity" `Quick
      test_snapshot_roundtrip_oracle;
    Alcotest.test_case "oracle: config_key injective" `Quick
      test_key_injective_oracle;
    Alcotest.test_case "component keys injective" `Quick
      test_component_keys_injective;
  ]
