(* Tests for code words. *)

open Nanodec_codes

let word radix s = Word.of_string ~radix s

let test_make_validation () =
  Alcotest.check_raises "bad radix" (Invalid_argument "Word.make: radix must be >= 2")
    (fun () -> ignore (Word.make ~radix:1 [| 0 |]));
  Alcotest.check_raises "empty" (Invalid_argument "Word.make: empty word")
    (fun () -> ignore (Word.make ~radix:2 [||]));
  Alcotest.check_raises "digit too large"
    (Invalid_argument "Word.make: digit 2 outside [0, 2)") (fun () ->
      ignore (Word.make ~radix:2 [| 0; 2 |]))

let test_make_copies_input () =
  let digits = [| 0; 1 |] in
  let w = Word.make ~radix:2 digits in
  digits.(0) <- 1;
  Alcotest.(check int) "immutable" 0 (Word.get w 0)

let test_accessors () =
  let w = word 3 "0212" in
  Alcotest.(check int) "radix" 3 (Word.radix w);
  Alcotest.(check int) "length" 4 (Word.length w);
  Alcotest.(check int) "get" 2 (Word.get w 1);
  Alcotest.(check (array int)) "digits" [| 0; 2; 1; 2 |] (Word.digits w)

let test_complement () =
  Alcotest.(check string) "ternary complement" "2101"
    (Word.to_string (Word.complement (word 3 "0121")));
  Alcotest.(check string) "binary complement" "10"
    (Word.to_string (Word.complement (word 2 "01")))

let test_complement_involution () =
  let w = word 4 "0312" in
  Alcotest.(check bool) "involution" true
    (Word.equal w (Word.complement (Word.complement w)))

let test_reflect () =
  (* Paper example: 0010 reflects to 00102212 in ternary. *)
  Alcotest.(check string) "paper reflection" "00102212"
    (Word.to_string (Word.reflect (word 3 "0010")));
  Alcotest.(check string) "0000 -> 00002222" "00002222"
    (Word.to_string (Word.reflect (word 3 "0000")));
  Alcotest.(check string) "0001 -> 00012221" "00012221"
    (Word.to_string (Word.reflect (word 3 "0001")))

let test_is_reflected () =
  Alcotest.(check bool) "reflected word" true
    (Word.is_reflected (Word.reflect (word 3 "0121")));
  Alcotest.(check bool) "odd length" false (Word.is_reflected (word 2 "010"));
  Alcotest.(check bool) "non-reflected" false (Word.is_reflected (word 2 "0100"))

let test_base_part () =
  let w = Word.reflect (word 3 "012") in
  Alcotest.(check string) "base part" "012" (Word.to_string (Word.base_part w));
  Alcotest.check_raises "odd" (Invalid_argument "Word.base_part: odd-length word")
    (fun () -> ignore (Word.base_part (word 2 "010")))

let test_hamming () =
  Alcotest.(check int) "distance 0" 0
    (Word.hamming_distance (word 2 "0101") (word 2 "0101"));
  Alcotest.(check int) "distance 2" 2
    (Word.hamming_distance (word 2 "0101") (word 2 "1100"));
  (* Paper: 0002 => 0010 differ in two digits. *)
  Alcotest.(check int) "paper pair" 2
    (Word.hamming_distance (word 3 "0002") (word 3 "0010"));
  Alcotest.check_raises "incompatible"
    (Invalid_argument "Word.hamming_distance: incompatible words") (fun () ->
      ignore (Word.hamming_distance (word 2 "01") (word 2 "010")))

let test_changed_pairs () =
  let pairs = Word.changed_pairs (word 3 "0121") (word 3 "0220") in
  Alcotest.(check (list (pair int int))) "pairs in position order"
    [ (1, 2); (1, 0) ] pairs;
  Alcotest.(check (list (pair int int))) "no change" []
    (Word.changed_pairs (word 3 "012") (word 3 "012"))

let test_dominates () =
  Alcotest.(check bool) "equal dominates" true
    (Word.dominates (word 3 "012") (word 3 "012"));
  Alcotest.(check bool) "greater dominates" true
    (Word.dominates (word 3 "212") (word 3 "011"));
  Alcotest.(check bool) "incomparable" false
    (Word.dominates (word 3 "021") (word 3 "012"))

let test_counts () =
  Alcotest.(check (array int)) "counts" [| 1; 2; 1 |]
    (Word.counts (word 3 "1210"));
  Alcotest.(check (array int)) "missing value" [| 2; 0 |]
    (Word.counts (word 2 "00"))

let test_string_roundtrip () =
  List.iter
    (fun (radix, s) ->
      Alcotest.(check string) ("roundtrip " ^ s) s
        (Word.to_string (Word.of_string ~radix s)))
    [ (2, "0110"); (3, "0212"); (16, "0af9") ]

let test_of_string_rejects_garbage () =
  Alcotest.check_raises "bad digit"
    (Invalid_argument "Word.of_string: bad digit '?'") (fun () ->
      ignore (Word.of_string ~radix:2 "0?1"))

let test_compare_consistent_with_equal () =
  let a = word 2 "0101" and b = word 2 "0101" and c = word 2 "0110" in
  Alcotest.(check bool) "equal" true (Word.equal a b);
  Alcotest.(check int) "compare equal" 0 (Word.compare a b);
  Alcotest.(check bool) "not equal" false (Word.equal a c);
  Alcotest.(check bool) "compare orders" true (Word.compare a c <> 0)

let word_gen =
  QCheck.Gen.(
    int_range 2 5 >>= fun radix ->
    int_range 1 10 >>= fun len ->
    array_size (return len) (int_range 0 (radix - 1)) >|= fun digits ->
    Word.make ~radix digits)

let arbitrary_word = QCheck.make ~print:Word.to_string word_gen

let prop_reflection_is_reflected =
  QCheck.Test.make ~name:"reflect produces reflected words" ~count:200
    arbitrary_word (fun w -> Word.is_reflected (Word.reflect w))

let prop_reflection_base =
  QCheck.Test.make ~name:"base_part inverts reflect" ~count:200 arbitrary_word
    (fun w -> Word.equal w (Word.base_part (Word.reflect w)))

let prop_hamming_symmetric =
  QCheck.Test.make ~name:"hamming distance symmetric" ~count:200
    (QCheck.pair arbitrary_word arbitrary_word) (fun (a, b) ->
      QCheck.assume
        (Word.radix a = Word.radix b && Word.length a = Word.length b);
      Word.hamming_distance a b = Word.hamming_distance b a)

let prop_changed_pairs_length =
  QCheck.Test.make ~name:"changed_pairs count = hamming distance" ~count:200
    (QCheck.pair arbitrary_word arbitrary_word) (fun (a, b) ->
      QCheck.assume
        (Word.radix a = Word.radix b && Word.length a = Word.length b);
      List.length (Word.changed_pairs a b) = Word.hamming_distance a b)

let prop_counts_sum =
  QCheck.Test.make ~name:"counts sum to length" ~count:200 arbitrary_word
    (fun w -> Array.fold_left ( + ) 0 (Word.counts w) = Word.length w)

let prop_mutual_domination_is_equality =
  QCheck.Test.make ~name:"mutual domination implies equality" ~count:200
    (QCheck.pair arbitrary_word arbitrary_word) (fun (a, b) ->
      QCheck.assume
        (Word.radix a = Word.radix b && Word.length a = Word.length b);
      if Word.dominates a b && Word.dominates b a then Word.equal a b else true)

let suite =
  [
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "make copies input" `Quick test_make_copies_input;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "complement" `Quick test_complement;
    Alcotest.test_case "complement involution" `Quick
      test_complement_involution;
    Alcotest.test_case "reflect (paper example)" `Quick test_reflect;
    Alcotest.test_case "is_reflected" `Quick test_is_reflected;
    Alcotest.test_case "base_part" `Quick test_base_part;
    Alcotest.test_case "hamming distance" `Quick test_hamming;
    Alcotest.test_case "changed pairs" `Quick test_changed_pairs;
    Alcotest.test_case "domination" `Quick test_dominates;
    Alcotest.test_case "digit counts" `Quick test_counts;
    Alcotest.test_case "string round trip" `Quick test_string_roundtrip;
    Alcotest.test_case "of_string guards" `Quick test_of_string_rejects_garbage;
    Alcotest.test_case "compare vs equal" `Quick
      test_compare_consistent_with_equal;
    QCheck_alcotest.to_alcotest prop_reflection_is_reflected;
    QCheck_alcotest.to_alcotest prop_reflection_base;
    QCheck_alcotest.to_alcotest prop_hamming_symmetric;
    QCheck_alcotest.to_alcotest prop_changed_pairs_length;
    QCheck_alcotest.to_alcotest prop_counts_sum;
    QCheck_alcotest.to_alcotest prop_mutual_domination_is_equality;
  ]
