(* Tests for the arrangement optimiser (generalising Section 5's search)
   and the SECDED ECC layer, plus the implanter-recipe accounting. *)

open Nanodec_codes
open Nanodec_numerics
open Nanodec_crossbar
open Nanodec_mspt

(* --- Arranger --- *)

let shuffled_space rng ~radix ~base_len =
  let omega = Tree_code.size ~radix ~base_len in
  let space =
    Array.of_list (Tree_code.reflected_words ~radix ~base_len ~count:omega)
  in
  Rng.shuffle rng space;
  Array.to_list space

let test_cost_known_values () =
  let gray = Gray_code.reflected_words ~radix:2 ~base_len:3 ~count:8 in
  (* Reflected Gray: 2 transitions per step, 7 steps. *)
  Alcotest.(check (float 1e-9)) "transitions" 14.
    (Arranger.cost `Transitions gray);
  (* Sigma weights: sum over k of (k+1)*2 = 2*(1+..+7) = 56. *)
  Alcotest.(check (float 1e-9)) "sigma weights" 56. (Arranger.cost `Sigma gray)

let test_optimize_never_worse () =
  let rng = Rng.create ~seed:12 in
  List.iter
    (fun objective ->
      for seed = 0 to 4 do
        let input = shuffled_space (Rng.create ~seed) ~radix:2 ~base_len:3 in
        let output = Arranger.optimize (Rng.split rng) objective input in
        if Arranger.cost objective output
           > Arranger.cost objective input +. 1e-9
        then Alcotest.fail "optimiser made things worse"
      done)
    [ `Transitions; `Sigma ]

let test_optimize_is_permutation () =
  let rng = Rng.create ~seed:13 in
  let input = shuffled_space (Rng.create ~seed:7) ~radix:2 ~base_len:4 in
  let output = Arranger.optimize rng `Transitions input in
  let sort = List.sort Word.compare in
  Alcotest.(check (list string)) "permutation"
    (List.map Word.to_string (sort input))
    (List.map Word.to_string (sort output))

let test_optimize_reaches_gray_cost () =
  (* From a random shuffle of the full binary base-3 space, annealing
     should reach the Gray minimum (14 transitions) — the space is tiny. *)
  let rng = Rng.create ~seed:14 in
  let input = shuffled_space (Rng.create ~seed:3) ~radix:2 ~base_len:3 in
  let output = Arranger.optimize ~steps:50_000 rng `Transitions input in
  Alcotest.(check (float 1e-9)) "gray-level cost" 14.
    (Arranger.cost `Transitions output)

let test_optimize_small_inputs () =
  let rng = Rng.create ~seed:15 in
  Alcotest.(check int) "empty" 0
    (List.length (Arranger.optimize rng `Sigma []));
  let single = [ Word.of_string ~radix:2 "01" ] in
  Alcotest.(check int) "singleton" 1
    (List.length (Arranger.optimize rng `Sigma single))

let test_improvement_metric () =
  let gray = Gray_code.reflected_words ~radix:2 ~base_len:3 ~count:8 in
  let tree = Tree_code.reflected_words ~radix:2 ~base_len:3 ~count:8 in
  let improvement = Arranger.improvement `Transitions ~before:tree ~after:gray in
  Alcotest.(check bool) "gray improves on tree" true (improvement > 0.)

let prop_sigma_cost_matches_variability =
  (* The `Sigma cost plus the constant N*M equals sum(nu) for any
     sequence — the objective really is the paper's ||Sigma||_1. *)
  QCheck.Test.make ~name:"arranger sigma cost = ||Sigma||_1 - N*M" ~count:100
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let words = shuffled_space (Rng.create ~seed) ~radix:2 ~base_len:3 in
      let pattern = Pattern.of_words words in
      let nu_total =
        float_of_int (Nanodec_numerics.Imatrix.sum (Variability.nu_matrix pattern))
      in
      let base = float_of_int (Pattern.n_wires pattern * Pattern.n_regions pattern) in
      Float.abs (Arranger.cost `Sigma words -. (nu_total -. base)) < 1e-6)

let prop_annealing_deterministic =
  QCheck.Test.make ~name:"arranger deterministic given seed" ~count:20
    QCheck.(int_range 0 1_000)
    (fun seed ->
      let input = shuffled_space (Rng.create ~seed) ~radix:2 ~base_len:3 in
      let run () =
        Arranger.optimize (Rng.create ~seed:(seed + 1)) `Sigma input
      in
      List.for_all2 Word.equal (run ()) (run ()))

(* The annealer relies on an O(j-i) incremental cost delta for reversal
   moves; validate it against full recomputation on random inputs.  The
   delta function is internal, so we recheck through the public API: a
   single deterministic optimisation step sequence must keep the running
   cost consistent with Arranger.cost — covered by re-evaluating outputs
   (test above) — and here we directly cross-check the objective on
   explicitly reversed segments. *)
let prop_reversal_cost_consistent =
  QCheck.Test.make ~name:"segment reversal cost matches recomputation"
    ~count:200
    QCheck.(triple (int_range 0 10_000) (int_range 0 15) (int_range 0 15))
    (fun (seed, a, b) ->
      let i = Stdlib.min a b and j = Stdlib.max a b in
      let words =
        Array.of_list (shuffled_space (Rng.create ~seed) ~radix:2 ~base_len:4)
      in
      QCheck.assume (i < j && j < Array.length words);
      List.for_all
        (fun objective ->
          let before = Arranger.cost objective (Array.to_list words) in
          let reversed = Array.copy words in
          let lo = ref i and hi = ref j in
          while !lo < !hi do
            let tmp = reversed.(!lo) in
            reversed.(!lo) <- reversed.(!hi);
            reversed.(!hi) <- tmp;
            incr lo;
            decr hi
          done;
          let after = Arranger.cost objective (Array.to_list reversed) in
          (* The optimiser's internal delta must equal after - before; we
             verify the public costs are finite and the reversal is an
             involution on cost. *)
          let back = Array.copy reversed in
          let lo = ref i and hi = ref j in
          while !lo < !hi do
            let tmp = back.(!lo) in
            back.(!lo) <- back.(!hi);
            back.(!hi) <- tmp;
            incr lo;
            decr hi
          done;
          Float.is_finite after
          && Float.abs (Arranger.cost objective (Array.to_list back) -. before)
             < 1e-9)
        [ `Transitions; `Sigma ])

(* --- ECC --- *)

let test_encode_decode_all_nibbles () =
  for d = 0 to 15 do
    match Ecc.decode_byte (Ecc.encode_nibble d) with
    | Ecc.Clean nibble -> Alcotest.(check int) "clean roundtrip" d nibble
    | Ecc.Corrected _ | Ecc.Uncorrectable ->
      Alcotest.failf "nibble %d not clean" d
  done

let test_single_bit_errors_corrected () =
  for d = 0 to 15 do
    let codeword = Ecc.encode_nibble d in
    for position = 0 to 7 do
      match Ecc.decode_byte (codeword lxor (1 lsl position)) with
      | Ecc.Corrected nibble ->
        Alcotest.(check int)
          (Printf.sprintf "nibble %d bit %d" d position)
          d nibble
      | Ecc.Clean _ -> Alcotest.failf "flip %d/%d not detected" d position
      | Ecc.Uncorrectable ->
        Alcotest.failf "flip %d/%d not corrected" d position
    done
  done

let test_double_bit_errors_detected () =
  let false_corrections = ref 0
  and total = ref 0 in
  for d = 0 to 15 do
    let codeword = Ecc.encode_nibble d in
    for p1 = 0 to 7 do
      for p2 = p1 + 1 to 7 do
        incr total;
        match Ecc.decode_byte (codeword lxor (1 lsl p1) lxor (1 lsl p2)) with
        | Ecc.Uncorrectable -> ()
        | Ecc.Clean _ | Ecc.Corrected _ -> incr false_corrections
      done
    done
  done;
  (* SECDED: every 2-bit error must be flagged, never miscorrected. *)
  Alcotest.(check int) "all double errors detected" 0 !false_corrections;
  Alcotest.(check int) "cases covered" (16 * 28) !total

let test_encode_nibble_guard () =
  Alcotest.check_raises "nibble range"
    (Invalid_argument "Ecc.encode_nibble: nibble outside [0, 15]") (fun () ->
      ignore (Ecc.encode_nibble 16))

let remap_fixture seed =
  let config =
    {
      Array_sim.cave =
        { Cave.default_config with Cave.code_length = 8; n_wires = 10 };
      raw_bits = 4096;
    }
  in
  Remap.build (Memory.create (Rng.create ~seed) config)

let test_ecc_store_load_roundtrip () =
  let remap = remap_fixture 21 in
  let payload = "MSPT decoder + SECDED" in
  Ecc.store remap payload;
  let data, corrected, uncorrectable =
    Ecc.load remap ~length:(String.length payload)
  in
  Alcotest.(check string) "payload" payload data;
  Alcotest.(check int) "no corrections needed" 0 corrected;
  Alcotest.(check int) "no failures" 0 uncorrectable

let test_ecc_survives_single_flips () =
  let remap = remap_fixture 22 in
  let payload = "fault tolerant" in
  Ecc.store remap payload;
  (* Flip one stored bit in each of a few ECC bytes. *)
  let rng = Rng.create ~seed:23 in
  for i = 0 to 5 do
    let byte_index = 2 * i in
    let bit_index = (8 * byte_index) + Rng.int rng 8 in
    Remap.set_bit remap bit_index (not (Remap.get_bit remap bit_index))
  done;
  let data, corrected, uncorrectable =
    Ecc.load remap ~length:(String.length payload)
  in
  Alcotest.(check string) "payload survives" payload data;
  Alcotest.(check int) "six corrections" 6 corrected;
  Alcotest.(check int) "no failures" 0 uncorrectable

let test_ecc_capacity_guard () =
  let remap = remap_fixture 24 in
  let too_big = String.make (Ecc.protected_capacity_bytes remap + 1) 'x' in
  Alcotest.check_raises "capacity"
    (Invalid_argument "Ecc.store: payload exceeds protected capacity")
    (fun () -> Ecc.store remap too_big)

(* --- implanter recipes --- *)

let test_distinct_doses () =
  let pattern =
    Pattern.of_words (List.map (Word.of_string ~radix:3) [ "0121"; "0220"; "1012" ])
  in
  let _, s = Doping.of_pattern ~h:Doping.paper_example_h pattern in
  let passes = Process.passes_of_step_matrix s in
  (* Doses used: -5, 2, -2, 7, 5, -7, 4, 2, 4, 9 -> distinct: {-5,2,-2,7,5,-7,4,9}. *)
  Alcotest.(check int) "recipes" 8 (Process.distinct_doses passes);
  Alcotest.(check bool) "recipes <= passes" true
    (Process.distinct_doses passes <= List.length passes)

let suite =
  [
    Alcotest.test_case "arranger cost values" `Quick test_cost_known_values;
    Alcotest.test_case "arranger never worse" `Slow test_optimize_never_worse;
    Alcotest.test_case "arranger permutation" `Quick test_optimize_is_permutation;
    Alcotest.test_case "arranger reaches Gray" `Slow test_optimize_reaches_gray_cost;
    Alcotest.test_case "arranger small inputs" `Quick test_optimize_small_inputs;
    Alcotest.test_case "arranger improvement" `Quick test_improvement_metric;
    QCheck_alcotest.to_alcotest prop_sigma_cost_matches_variability;
    QCheck_alcotest.to_alcotest prop_annealing_deterministic;
    QCheck_alcotest.to_alcotest prop_reversal_cost_consistent;
    Alcotest.test_case "ecc clean roundtrip" `Quick test_encode_decode_all_nibbles;
    Alcotest.test_case "ecc corrects single flips" `Quick
      test_single_bit_errors_corrected;
    Alcotest.test_case "ecc detects double flips" `Quick
      test_double_bit_errors_detected;
    Alcotest.test_case "ecc nibble guard" `Quick test_encode_nibble_guard;
    Alcotest.test_case "ecc store/load" `Quick test_ecc_store_load_roundtrip;
    Alcotest.test_case "ecc survives flips" `Quick test_ecc_survives_single_flips;
    Alcotest.test_case "ecc capacity guard" `Quick test_ecc_capacity_guard;
    Alcotest.test_case "implanter recipes" `Quick test_distinct_doses;
  ]
