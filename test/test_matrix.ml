(* Tests for the dense matrix modules. *)

open Nanodec_numerics

let test_make_get_set () =
  let m = Fmatrix.make ~rows:2 ~cols:3 1.5 in
  Alcotest.(check int) "rows" 2 (Fmatrix.rows m);
  Alcotest.(check int) "cols" 3 (Fmatrix.cols m);
  Alcotest.(check (float 0.)) "initial" 1.5 (Fmatrix.get m 1 2);
  Fmatrix.set m 1 2 9.;
  Alcotest.(check (float 0.)) "set" 9. (Fmatrix.get m 1 2);
  Alcotest.(check (float 0.)) "others untouched" 1.5 (Fmatrix.get m 0 2)

let test_bad_dimensions () =
  Alcotest.check_raises "zero rows"
    (Invalid_argument "Dense.make: dimensions must be positive") (fun () ->
      ignore (Fmatrix.make ~rows:0 ~cols:3 0.))

let test_out_of_range () =
  let m = Fmatrix.make ~rows:2 ~cols:2 0. in
  Alcotest.check_raises "bad get"
    (Invalid_argument "Dense.get: index (2, 0) outside 2x2") (fun () ->
      ignore (Fmatrix.get m 2 0))

let test_init_layout () =
  let m = Fmatrix.init ~rows:3 ~cols:2 (fun i j -> float_of_int ((10 * i) + j)) in
  Alcotest.(check (float 0.)) "(0,0)" 0. (Fmatrix.get m 0 0);
  Alcotest.(check (float 0.)) "(2,1)" 21. (Fmatrix.get m 2 1);
  Alcotest.(check (float 0.)) "(1,0)" 10. (Fmatrix.get m 1 0)

let test_row_col () =
  let m = Fmatrix.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check (array (float 0.))) "row 1" [| 3.; 4. |] (Fmatrix.row m 1);
  Alcotest.(check (array (float 0.))) "col 0" [| 1.; 3. |] (Fmatrix.col m 0)

let test_row_is_copy () =
  let m = Fmatrix.of_arrays [| [| 1.; 2. |] |] in
  let r = Fmatrix.row m 0 in
  r.(0) <- 99.;
  Alcotest.(check (float 0.)) "matrix unchanged" 1. (Fmatrix.get m 0 0)

let test_of_arrays_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Dense.of_arrays: ragged rows")
    (fun () -> ignore (Fmatrix.of_arrays [| [| 1. |]; [| 1.; 2. |] |]))

let test_transpose () =
  let m = Fmatrix.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let t = Fmatrix.transpose m in
  Alcotest.(check int) "rows" 3 (Fmatrix.rows t);
  Alcotest.(check (float 0.)) "(2,1)" 6. (Fmatrix.get t 2 1);
  Alcotest.(check bool) "involution" true
    (Fmatrix.equal m (Fmatrix.transpose t))

let test_map_fold () =
  let m = Fmatrix.of_arrays [| [| 1.; -2. |]; [| 3.; -4. |] |] in
  let doubled = Fmatrix.map (fun x -> 2. *. x) m in
  Alcotest.(check (float 0.)) "map" (-8.) (Fmatrix.get doubled 1 1);
  Alcotest.(check (float 0.)) "sum" (-2.) (Fmatrix.sum m);
  Alcotest.(check (float 0.)) "norm l1" 10. (Fmatrix.norm_l1 m);
  Alcotest.(check (float 0.)) "average" (-0.5) (Fmatrix.average m);
  Alcotest.(check (float 0.)) "max" 3. (Fmatrix.max_entry m);
  Alcotest.(check (float 0.)) "min" (-4.) (Fmatrix.min_entry m)

let test_mapi () =
  let m = Fmatrix.make ~rows:2 ~cols:2 0. in
  let indexed = Fmatrix.mapi (fun i j _ -> float_of_int ((i * 10) + j)) m in
  Alcotest.(check (float 0.)) "(1,1)" 11. (Fmatrix.get indexed 1 1)

let test_add_sub_scale () =
  let a = Fmatrix.of_arrays [| [| 1.; 2. |] |] in
  let b = Fmatrix.of_arrays [| [| 10.; 20. |] |] in
  Alcotest.(check (float 0.)) "add" 22. (Fmatrix.get (Fmatrix.add a b) 0 1);
  Alcotest.(check (float 0.)) "sub" 9. (Fmatrix.get (Fmatrix.sub b a) 0 0);
  Alcotest.(check (float 0.)) "scale" 5. (Fmatrix.get (Fmatrix.scale 5. a) 0 0);
  let c = Fmatrix.make ~rows:2 ~cols:2 0. in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Fmatrix.add: dimension mismatch") (fun () ->
      ignore (Fmatrix.add a c))

let test_approx_equal () =
  let a = Fmatrix.of_arrays [| [| 1.; 2. |] |] in
  let b = Fmatrix.of_arrays [| [| 1.0005; 2. |] |] in
  Alcotest.(check bool) "within eps" true (Fmatrix.approx_equal ~eps:1e-3 a b);
  Alcotest.(check bool) "outside eps" false (Fmatrix.approx_equal ~eps:1e-4 a b)

let test_distinct_nonzero () =
  Alcotest.(check int) "paper row 1" 2
    (Fmatrix.distinct_nonzero ~eps:1e-9 [| 0.; -5.; 0.; 2. |]);
  Alcotest.(check int) "paper row 2" 4
    (Fmatrix.distinct_nonzero ~eps:1e-9 [| -2.; 7.; 5.; -7. |]);
  Alcotest.(check int) "paper row 3" 3
    (Fmatrix.distinct_nonzero ~eps:1e-9 [| 4.; 2.; 4.; 9. |]);
  Alcotest.(check int) "all zero" 0
    (Fmatrix.distinct_nonzero ~eps:1e-9 [| 0.; 0. |]);
  Alcotest.(check int) "tolerance merges" 1
    (Fmatrix.distinct_nonzero ~eps:0.1 [| 1.; 1.05 |])

let test_imatrix_basics () =
  let m = Imatrix.of_arrays [| [| 1; 2 |]; [| 3; 4 |] |] in
  Alcotest.(check int) "sum" 10 (Imatrix.sum m);
  Alcotest.(check int) "max" 4 (Imatrix.max_entry m);
  Alcotest.(check int) "min" 1 (Imatrix.min_entry m);
  Alcotest.(check int) "count even" 2 (Imatrix.count (fun x -> x mod 2 = 0) m)

let test_imatrix_to_fmatrix () =
  let m = Imatrix.of_arrays [| [| 0; 1; 2 |] |] in
  let f = Imatrix.map_to_fmatrix (fun d -> float_of_int (d * d)) m in
  Alcotest.(check (float 0.)) "h applied" 4. (Fmatrix.get f 0 2);
  let plain = Imatrix.to_fmatrix m in
  Alcotest.(check (float 0.)) "identity embed" 1. (Fmatrix.get plain 0 1)

let prop_transpose_involution =
  let matrix_gen =
    QCheck.Gen.(
      int_range 1 8 >>= fun rows ->
      int_range 1 8 >>= fun cols ->
      array_size (return (rows * cols)) (float_range (-5.) 5.) >|= fun data ->
      Fmatrix.init ~rows ~cols (fun i j -> data.((i * cols) + j)))
  in
  QCheck.Test.make ~name:"transpose involution" ~count:100
    (QCheck.make matrix_gen) (fun m ->
      Fmatrix.equal m (Fmatrix.transpose (Fmatrix.transpose m)))

let prop_norm_triangle =
  QCheck.Test.make ~name:"norm_l1 triangle inequality" ~count:100
    QCheck.(
      pair
        (array_of_size (Gen.return 6) (float_range (-5.) 5.))
        (array_of_size (Gen.return 6) (float_range (-5.) 5.)))
    (fun (xs, ys) ->
      let a = Fmatrix.init ~rows:2 ~cols:3 (fun i j -> xs.((i * 3) + j)) in
      let b = Fmatrix.init ~rows:2 ~cols:3 (fun i j -> ys.((i * 3) + j)) in
      Fmatrix.norm_l1 (Fmatrix.add a b)
      <= Fmatrix.norm_l1 a +. Fmatrix.norm_l1 b +. 1e-9)

let suite =
  [
    Alcotest.test_case "make/get/set" `Quick test_make_get_set;
    Alcotest.test_case "dimension guard" `Quick test_bad_dimensions;
    Alcotest.test_case "index guard" `Quick test_out_of_range;
    Alcotest.test_case "init layout" `Quick test_init_layout;
    Alcotest.test_case "row/col" `Quick test_row_col;
    Alcotest.test_case "row is a copy" `Quick test_row_is_copy;
    Alcotest.test_case "ragged input" `Quick test_of_arrays_ragged;
    Alcotest.test_case "transpose" `Quick test_transpose;
    Alcotest.test_case "map/fold/norms" `Quick test_map_fold;
    Alcotest.test_case "mapi" `Quick test_mapi;
    Alcotest.test_case "add/sub/scale" `Quick test_add_sub_scale;
    Alcotest.test_case "approx_equal" `Quick test_approx_equal;
    Alcotest.test_case "distinct_nonzero (phi rows)" `Quick
      test_distinct_nonzero;
    Alcotest.test_case "imatrix basics" `Quick test_imatrix_basics;
    Alcotest.test_case "imatrix conversion" `Quick test_imatrix_to_fmatrix;
    QCheck_alcotest.to_alcotest prop_transpose_involution;
    QCheck_alcotest.to_alcotest prop_norm_triangle;
  ]
