(* Batched-scheduler stress suite.

   The scheduling plan — chunk count, batch size, autotuned or fixed —
   is supposed to be invisible in the results: every sample owns its
   own split stream and result slot, so the estimate is a pure function
   of (seed, samples, f).  These tests drive the scheduler through the
   adversarial corners of that contract: degenerate chunkings, batches
   larger than the job, active fault plans at every domain count, and a
   starvation check that every domain of a pool actually claims work on
   a job big enough to share. *)

open Nanodec_numerics
open Nanodec_parallel
module Fault = Nanodec_fault.Fault
module Telemetry = Nanodec_telemetry.Telemetry

let estimate : Montecarlo.estimate Alcotest.testable =
  Alcotest.testable Montecarlo.pp ( = )

let integrand rng =
  let a = Rng.float rng in
  let b = Rng.gaussian rng in
  (a *. b) +. sin (5. *. a)

let predicate rng = Rng.float rng < 0.41

(* --- adversarial chunk/batch combinations --- *)

let ctx_fixed ?pool ?batch chunks =
  Run_ctx.make ?pool ~chunking:(Run_ctx.Fixed chunks) ?batch ()

let test_adversarial_chunking () =
  let samples = 97 in
  (* One pool-less, fixed-chunk reference per estimator; every
     scheduling shape must reproduce it bit-for-bit. *)
  let baseline =
    Montecarlo.estimate_par ~ctx:(ctx_fixed 8) (Rng.create ~seed:2009)
      ~samples integrand
  in
  let baseline_prop =
    Montecarlo.estimate_proportion_par ~ctx:(ctx_fixed 8)
      (Rng.create ~seed:2009) ~samples predicate
  in
  let combos =
    [
      (1, 1);  (* single chunk: the whole job is one inline claim *)
      (2, 1);  (* fewer chunks than a 4-domain pool *)
      (2, 8);  (* batch larger than the whole job *)
      (samples, 1);  (* one sample per chunk, claimed one at a time *)
      (samples, 13);  (* one sample per chunk, ragged batches *)
      (300, 1);  (* chunks >> samples: most chunks are empty *)
      (300, 64);  (* empty chunks in big batches *)
      (7, 64);  (* batch much larger than the chunk count *)
      (64, 7);
    ]
  in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          List.iter
            (fun (chunks, batch) ->
              let what =
                Printf.sprintf "domains=%d chunks=%d batch=%d" domains chunks
                  batch
              in
              let ctx = ctx_fixed ~pool ~batch chunks in
              Alcotest.check estimate ("estimate " ^ what) baseline
                (Montecarlo.estimate_par ~ctx (Rng.create ~seed:2009)
                   ~samples integrand);
              Alcotest.check estimate ("proportion " ^ what) baseline_prop
                (Montecarlo.estimate_proportion_par ~ctx
                   (Rng.create ~seed:2009) ~samples predicate))
            combos))
    [ 1; 4 ]

(* --- determinism under active fault plans, every domain count --- *)

let fault_spec = "seed=7;pool.chunk:crash:p=0.2;mc.sample_batch:crash:p=0.15"

let test_determinism_under_faults () =
  let samples = 300 in
  let baseline =
    Montecarlo.estimate_par ~ctx:(ctx_fixed 16) (Rng.create ~seed:2009)
      ~samples integrand
  in
  List.iter
    (fun domains ->
      List.iter
        (fun batch ->
          (* A fresh engine per run: the plan's decision streams restart
             so every (domains, batch) shape faces the same faults. *)
          let fault = Fault.create (Fault.parse_exn fault_spec) in
          let e =
            Run_ctx.with_ctx ~domains ~fault ~warn:false
              ~chunking:(Run_ctx.Fixed 16) ~batch (fun ctx ->
                Montecarlo.estimate_par ~ctx (Rng.create ~seed:2009) ~samples
                  integrand)
          in
          Alcotest.check estimate
            (Printf.sprintf "faulted run, domains=%d batch=%d" domains batch)
            baseline e)
        [ 1; 3; 16 ])
    [ 1; 2; 4; 8 ]

(* --- no domain starves on a job big enough to share --- *)

let test_no_starvation () =
  let domains = 4 in
  let chunks = 96 in
  Pool.with_pool ~domains (fun pool ->
      let owner = Array.make chunks (-1) in
      (* Sleeping bodies release the CPU, so even a single-core host
         schedules every worker domain into the claim loop. *)
      Pool.parallel_for ~batch:2 pool ~chunks (fun i ->
          Unix.sleepf 0.002;
          owner.(i) <- (Domain.self () :> int));
      Alcotest.(check bool) "every chunk ran" true
        (Array.for_all (fun d -> d >= 0) owner);
      let distinct =
        List.length (List.sort_uniq compare (Array.to_list owner))
      in
      Alcotest.(check int)
        (Printf.sprintf "all %d domains claimed batches" domains)
        domains distinct)

(* --- batch accounting: claims are disjoint and exactly cover the job --- *)

let test_batch_accounting () =
  let sink = Telemetry.create () in
  Pool.with_pool ~domains:4 ~telemetry:sink (fun pool ->
      Pool.parallel_for ~batch:4 pool ~chunks:42 ignore);
  let counters = Telemetry.counters sink in
  let value name = Option.value ~default:0 (List.assoc_opt name counters) in
  (* ceil(42 / 4) = 11 claims, regardless of which domain won each. *)
  Alcotest.(check int) "pool.batches counts claims" 11 (value "pool.batches");
  Alcotest.(check int) "every chunk counted once" 42
    (value "pool.chunks.submitter" + value "pool.chunks.worker")

(* --- the autotuner's plans are always runnable --- *)

let test_autotune_plans () =
  let check_plan what ~samples (p : Autotune.plan) =
    Alcotest.(check bool)
      (what ^ ": 1 <= chunks <= samples")
      true
      (p.Autotune.chunks >= 1 && p.Autotune.chunks <= max 1 samples);
    Alcotest.(check bool) (what ^ ": batch >= 1") true (p.Autotune.batch >= 1)
  in
  (* Deterministic fallback across adversarial shapes. *)
  List.iter
    (fun (domains, samples) ->
      check_plan
        (Printf.sprintf "fallback domains=%d samples=%d" domains samples)
        ~samples
        (Autotune.plan ~domains ~samples ()))
    [ (1, 1); (1, 2); (64, 2); (64, 1_000_000); (0, 0); (-3, -7); (8, 4000) ];
  (* Measured path: calibrate a sink with a real instrumented estimate,
     then plan against its history. *)
  let sink = Telemetry.create () in
  Run_ctx.with_ctx ~telemetry:sink (fun ctx ->
      ignore
        (Montecarlo.estimate_par ~ctx (Rng.create ~seed:2009) ~samples:2000
           integrand));
  List.iter
    (fun samples ->
      let p = Autotune.plan ~telemetry:sink ~domains:4 ~samples () in
      check_plan
        (Printf.sprintf "measured samples=%d" samples)
        ~samples p;
      Alcotest.(check bool) "measured plans carry the cost" true
        (p.Autotune.per_sample_ns <> None))
    [ 2; 17; 4000; 1_000_000 ]

(* --- auto vs fixed: the Run_ctx chunking policy is value-invariant --- *)

let test_auto_equals_fixed () =
  let samples = 400 in
  let fixed =
    Run_ctx.with_ctx ~domains:4 ~chunking:(Run_ctx.Fixed 11) (fun ctx ->
        Montecarlo.estimate_par ~ctx (Rng.create ~seed:2009) ~samples
          integrand)
  in
  (* Auto, telemetry off (deterministic fallback)... *)
  let auto_cold =
    Run_ctx.with_ctx ~domains:4 (fun ctx ->
        Montecarlo.estimate_par ~ctx (Rng.create ~seed:2009) ~samples
          integrand)
  in
  (* ... and auto with a warm sink, where the measured cost model picks
     a machine-dependent plan — still the same bits. *)
  let sink = Telemetry.create () in
  let auto_warm =
    Run_ctx.with_ctx ~domains:4 ~telemetry:sink (fun ctx ->
        ignore
          (Montecarlo.estimate_par ~ctx (Rng.create ~seed:1) ~samples
             integrand);
        Montecarlo.estimate_par ~ctx (Rng.create ~seed:2009) ~samples
          integrand)
  in
  Alcotest.check estimate "auto (fallback) = fixed" fixed auto_cold;
  Alcotest.check estimate "auto (measured) = fixed" fixed auto_warm;
  let counters = Telemetry.counters sink in
  let value name = Option.value ~default:0 (List.assoc_opt name counters) in
  Alcotest.(check bool) "autotune decisions were recorded" true
    (value "pool.autotune.jobs" >= 2)

let suite =
  [
    Alcotest.test_case "adversarial chunk/batch combinations" `Quick
      test_adversarial_chunking;
    Alcotest.test_case "determinism under fault plans, domains 1/2/4/8"
      `Quick test_determinism_under_faults;
    Alcotest.test_case "no domain starves on a large job" `Quick
      test_no_starvation;
    Alcotest.test_case "batch claims exactly cover the job" `Quick
      test_batch_accounting;
    Alcotest.test_case "autotune plans are always runnable" `Quick
      test_autotune_plans;
    Alcotest.test_case "auto and fixed chunking are bit-identical" `Quick
      test_auto_equals_fixed;
  ]
