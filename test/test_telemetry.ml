(* Telemetry sink: spans, counters, histograms, export, and the
   Run_ctx execution-context API built on top of it.

   The headline properties: recording is domain-safe and exception-safe,
   exported span trees are always well-formed (even under a
   non-monotonic wall clock), the JSON export is syntactically valid,
   and a context never changes numeric results — the bitwise
   telemetry-on/off oracle lives in lib/proptest/oracles.ml; here we
   test the machinery itself. *)

open Nanodec_parallel
module Telemetry = Nanodec_telemetry.Telemetry

(* --- counters --- *)

let test_counters () =
  let sink = Telemetry.create () in
  let c = Telemetry.counter sink "alpha" in
  Telemetry.incr c;
  Telemetry.add c 41;
  Alcotest.(check int) "handle value" 42 (Telemetry.counter_value c);
  Alcotest.(check string) "handle name" "alpha" (Telemetry.counter_name c);
  let c' = Telemetry.counter sink "alpha" in
  Telemetry.incr c';
  Alcotest.(check int) "same name, same cell" 43 (Telemetry.counter_value c);
  Telemetry.count (Some sink) "beta" 7;
  Telemetry.count None "ignored" 99;
  Alcotest.(check (list (pair string int)))
    "export, sorted by name"
    [ ("alpha", 43); ("beta", 7) ]
    (List.sort compare (Telemetry.counters sink))

(* --- histograms --- *)

let test_histograms () =
  let sink = Telemetry.create () in
  let h = Telemetry.histogram sink "lat" in
  Telemetry.observe h 0.001;
  Telemetry.observe h 0.004;
  Telemetry.observe h (-1.0) (* clamps to 0 *);
  Telemetry.record (Some sink) "lat" 0.002;
  Telemetry.record None "ignored" 1.0;
  match Telemetry.histograms sink with
  | [ hs ] ->
    Alcotest.(check string) "name" "lat" hs.Telemetry.hs_name;
    Alcotest.(check int) "count" 4 hs.Telemetry.hs_count;
    Alcotest.(check (float 1e-9)) "sum" 0.007 hs.Telemetry.hs_sum_s;
    Alcotest.(check (float 1e-12)) "min clamped to 0" 0. hs.Telemetry.hs_min_s;
    Alcotest.(check (float 1e-9)) "max" 0.004 hs.Telemetry.hs_max_s;
    let bucketed =
      List.fold_left (fun acc (_, n) -> acc + n) 0 hs.Telemetry.hs_buckets
    in
    Alcotest.(check int) "every observation bucketed" 4 bucketed;
    List.iter
      (fun (upper, _) ->
        Alcotest.(check bool) "bucket bounds positive" true (upper > 0.))
      hs.Telemetry.hs_buckets
  | other ->
    Alcotest.failf "expected exactly one histogram, got %d" (List.length other)

(* --- spans --- *)

let test_span_nesting () =
  let sink = Telemetry.create () in
  let tel = Some sink in
  Telemetry.with_span tel "outer" (fun () ->
      Telemetry.with_span tel "inner-1" (fun () -> ());
      Telemetry.with_span tel "inner-2" (fun () -> ()));
  Telemetry.with_span tel "second-root" (fun () -> ());
  Alcotest.(check bool) "well-formed" true (Telemetry.well_formed sink);
  match Telemetry.span_trees sink with
  | [ outer; second ] ->
    Alcotest.(check string) "root 1" "outer" outer.Telemetry.span_name;
    Alcotest.(check string) "root 2" "second-root" second.Telemetry.span_name;
    Alcotest.(check (list string))
      "children in start order" [ "inner-1"; "inner-2" ]
      (List.map
         (fun s -> s.Telemetry.span_name)
         outer.Telemetry.children);
    Alcotest.(check (list string)) "no grandchildren" []
      (List.concat_map
         (fun s -> List.map (fun c -> c.Telemetry.span_name) s.Telemetry.children)
         outer.Telemetry.children)
  | other -> Alcotest.failf "expected 2 roots, got %d" (List.length other)

let test_span_exception_safe () =
  let sink = Telemetry.create () in
  (try
     Telemetry.with_span (Some sink) "explodes" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "well-formed after exception" true
    (Telemetry.well_formed sink);
  Alcotest.(check (list (pair string (pair int (float 1e9)))))
    "span closed and exported"
    [ ("explodes", (1, 0.)) ]
    (List.map
       (fun (n, (c, _)) -> (n, (c, 0.)))
       (Telemetry.span_totals sink))

let test_span_none_passthrough () =
  Alcotest.(check int) "with_span None is f ()" 42
    (Telemetry.with_span None "nothing" (fun () -> 42))

let test_non_monotonic_clock () =
  (* A wall clock stepping backwards (NTP) must not produce negative
     durations or ill-formed trees: the per-domain clamp holds time
     still until the clock catches up. *)
  let times = ref [ 0.0; 10.0; 5.0; 6.0; 20.0 ] in
  let clock () =
    match !times with
    | [ last ] -> last
    | t :: rest ->
      times := rest;
      t
    | [] -> assert false
  in
  let sink = Telemetry.create ~clock () in
  Telemetry.with_span (Some sink) "outer" (fun () ->
      Telemetry.with_span (Some sink) "inner" (fun () -> ()));
  Alcotest.(check bool) "well-formed despite clock step" true
    (Telemetry.well_formed sink)

let test_spans_across_domains () =
  let sink = Telemetry.create () in
  Pool.with_pool ~domains:4 ~telemetry:sink (fun pool ->
      let got =
        Pool.map pool
          (fun i ->
            Telemetry.with_span (Some sink) "chunk" (fun () -> i * i))
          (Array.init 32 Fun.id)
      in
      Alcotest.(check (array int)) "results unchanged"
        (Array.init 32 (fun i -> i * i))
        got);
  Alcotest.(check bool) "well-formed across domains" true
    (Telemetry.well_formed sink);
  let totals = Telemetry.span_totals sink in
  (match List.assoc_opt "chunk" totals with
  | Some (count, seconds) ->
    Alcotest.(check int) "every chunk span recorded" 32 count;
    Alcotest.(check bool) "non-negative total" true (seconds >= 0.)
  | None -> Alcotest.fail "chunk spans missing from totals");
  Alcotest.(check int) "nothing dropped" 0 (Telemetry.dropped_spans sink)

(* --- JSON export: a minimal recursive-descent validator --- *)

exception Bad_json of string

let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal word =
    String.iter expect word
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done
        | _ -> fail "bad escape");
        go ()
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  let number () =
    let digits () =
      let start = !pos in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = start then fail "expected digit"
    in
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then (advance (); digits ());
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ())
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else
        let rec members () =
          skip_ws ();
          string_lit ();
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or } in object"
        in
        members ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else
        let rec elements () =
          value ();
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ] in array"
        in
        elements ()
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "expected a JSON value"
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let test_json_export () =
  let sink = Telemetry.create () in
  Telemetry.with_span (Some sink) "needs \"escaping\"\n" (fun () ->
      Telemetry.with_span (Some sink) "child" (fun () -> ()));
  Telemetry.count (Some sink) "c\\slash" 3;
  Telemetry.record (Some sink) "h" 0.001;
  let json = Telemetry.to_json sink in
  (try validate_json json
   with Bad_json msg -> Alcotest.failf "invalid JSON (%s):\n%s" msg json);
  let contains needle =
    let nl = String.length needle and jl = String.length json in
    let rec at i =
      i + nl <= jl && (String.sub json i nl = needle || at (i + 1))
    in
    at 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "export mentions %S" needle)
        true (contains needle))
    [ "\"version\": 1"; "\"spans\""; "\"counters\""; "\"histograms\"" ]

let test_json_export_empty () =
  let sink = Telemetry.create () in
  try validate_json (Telemetry.to_json sink)
  with Bad_json msg -> Alcotest.failf "empty sink export invalid (%s)" msg

(* --- Run_ctx --- *)

let test_run_ctx_builder () =
  (* Sequential by default. *)
  Run_ctx.with_ctx (fun ctx ->
      Alcotest.(check bool) "no pool" true (Run_ctx.pool ctx = None);
      Alcotest.(check int) "default seed" Run_ctx.default_seed
        (Run_ctx.seed ctx);
      Alcotest.(check int) "default samples" Run_ctx.default_mc_samples
        (Run_ctx.mc_samples ctx);
      Alcotest.(check bool) "no sink" true (Run_ctx.telemetry ctx = None));
  (* ~domains spawns an owned pool and shutdown joins it. *)
  let escaped =
    Run_ctx.with_ctx ~domains:2 ~seed:7 ~mc_samples:10 (fun ctx ->
        match Run_ctx.pool ctx with
        | None -> Alcotest.fail "expected a pool"
        | Some pool ->
          Alcotest.(check int) "pool size" 2 (Pool.domains pool);
          Alcotest.(check int) "seed carried" 7 (Run_ctx.seed ctx);
          Alcotest.(check int) "samples carried" 10 (Run_ctx.mc_samples ctx);
          pool)
  in
  Alcotest.check_raises "owned pool joined on exit"
    (Invalid_argument "Pool: used after shutdown") (fun () ->
      ignore (Pool.map escaped Fun.id [| 1 |]))

(* Physical identity through an option (a fresh [Some] defeats [==]). *)
let is_same x = function Some y -> x == y | None -> false

let test_run_ctx_borrowed_pool () =
  Pool.with_pool ~domains:2 (fun pool ->
      let sink = Telemetry.create () in
      Run_ctx.with_ctx ~pool ~telemetry:sink (fun ctx ->
          Alcotest.(check bool) "same pool" true
            (is_same pool (Run_ctx.pool ctx));
          Alcotest.(check bool) "sink attached to borrowed pool" true
            (is_same sink (Pool.telemetry pool)));
      (* Borrowed pools survive the context. *)
      Alcotest.(check (array int)) "pool still usable" [| 1; 4; 9 |]
        (Pool.map pool (fun x -> x * x) [| 1; 2; 3 |]))

let test_run_ctx_validation () =
  Pool.with_pool ~domains:2 (fun pool ->
      Alcotest.check_raises "domains and pool are exclusive"
        (Invalid_argument
           "Run_ctx.make: ~domains and ~pool are mutually exclusive")
        (fun () -> ignore (Run_ctx.make ~domains:2 ~pool ())));
  Alcotest.check_raises "negative mc_samples"
    (Invalid_argument "Run_ctx.make: mc_samples must be >= 0") (fun () ->
      ignore (Run_ctx.make ~mc_samples:(-1) ()))

let test_run_ctx_resolve () =
  (* Bare pool, no ctx: wrapped into a default context. *)
  Pool.with_pool ~domains:2 (fun pool ->
      let r = Run_ctx.resolve ~pool () in
      Alcotest.(check bool) "pool adopted" true (is_same pool (Run_ctx.pool r));
      Alcotest.(check int) "default seed" Run_ctx.default_seed (Run_ctx.seed r);
      (* ctx with its own pool wins over the bare pool. *)
      Run_ctx.with_ctx ~domains:2 ~seed:5 (fun ctx ->
          let ctx_pool = Option.get (Run_ctx.pool ctx) in
          let r = Run_ctx.resolve ~ctx ~pool () in
          Alcotest.(check bool) "ctx pool wins" true
            (is_same ctx_pool (Run_ctx.pool r));
          Alcotest.(check int) "ctx fields kept" 5 (Run_ctx.seed r));
      (* ctx without a pool adopts the bare pool, keeping its fields. *)
      let ctx = Run_ctx.make ~seed:9 () in
      let r = Run_ctx.resolve ~ctx ~pool () in
      Alcotest.(check bool) "bare pool fills empty slot" true
        (is_same pool (Run_ctx.pool r));
      Alcotest.(check int) "ctx fields kept" 9 (Run_ctx.seed r));
  let r = Run_ctx.resolve () in
  Alcotest.(check bool) "nothing given: sequential default" true
    (Run_ctx.pool r = None)

let suite =
  [
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "histograms" `Quick test_histograms;
    Alcotest.test_case "span nesting and order" `Quick test_span_nesting;
    Alcotest.test_case "spans close on exception" `Quick
      test_span_exception_safe;
    Alcotest.test_case "with_span None is identity" `Quick
      test_span_none_passthrough;
    Alcotest.test_case "non-monotonic clock stays well-formed" `Quick
      test_non_monotonic_clock;
    Alcotest.test_case "spans record across pool domains" `Quick
      test_spans_across_domains;
    Alcotest.test_case "JSON export is valid JSON" `Quick test_json_export;
    Alcotest.test_case "empty sink exports valid JSON" `Quick
      test_json_export_empty;
    Alcotest.test_case "Run_ctx builder and ownership" `Quick
      test_run_ctx_builder;
    Alcotest.test_case "Run_ctx borrows without owning" `Quick
      test_run_ctx_borrowed_pool;
    Alcotest.test_case "Run_ctx validates arguments" `Quick
      test_run_ctx_validation;
    Alcotest.test_case "Run_ctx.resolve precedence" `Quick
      test_run_ctx_resolve;
  ]
