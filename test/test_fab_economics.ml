(* Tests for the fabrication cost model and the dose-feasibility check. *)

open Nanodec_codes
open Nanodec_numerics
open Nanodec_mspt

let h = Doping.paper_example_h

let paper_pattern =
  Pattern.of_words
    (List.map (Word.of_string ~radix:3) [ "0121"; "0220"; "1012" ])

let gray_pattern =
  Pattern.of_words
    (List.map (Word.of_string ~radix:3) [ "0121"; "0220"; "1210" ])

(* --- cost model --- *)

let test_cost_counts_match_paper_example () =
  let e = Cost_model.of_pattern ~h paper_pattern in
  Alcotest.(check int) "spacers" 3 e.Cost_model.n_spacers;
  Alcotest.(check int) "passes = Phi = 9" 9 e.Cost_model.n_passes;
  Alcotest.(check int) "recipes" 8 e.Cost_model.n_recipes

let test_cost_arithmetic () =
  let params =
    {
      Cost_model.spacer_minutes = 10.;
      pass_minutes = 5.;
      recipe_minutes = 1.;
      hour_cost = 60.;
    }
  in
  let e = Cost_model.of_pattern ~params ~h paper_pattern in
  (* 3*10 + 9*5 + 8*1 = 83 minutes = 83 cost units at 60/hour. *)
  Alcotest.(check (float 1e-9)) "minutes" 83. e.Cost_model.total_minutes;
  Alcotest.(check (float 1e-9)) "cost" 83. e.Cost_model.total_cost

let test_gray_saves_fab_time () =
  let saving = Cost_model.compare_patterns ~h paper_pattern gray_pattern in
  Alcotest.(check bool) "gray cheaper" true (saving > 0.);
  (* Phi drops 9 -> 7 and recipes 8 -> 7: ~2 passes of 45 min + 1 recipe
     out of ~315 min. *)
  Alcotest.(check bool) "saving plausible" true (saving < 0.5)

let test_cost_monotone_in_phi () =
  (* Adding transitions can only increase the estimate. *)
  let quiet =
    Pattern.of_words
      (List.map (Word.of_string ~radix:3) [ "0121"; "0121"; "0121" ])
  in
  let quiet_cost = (Cost_model.of_pattern ~h quiet).Cost_model.total_minutes in
  let busy_cost =
    (Cost_model.of_pattern ~h paper_pattern).Cost_model.total_minutes
  in
  Alcotest.(check bool) "fewer transitions cheaper" true (quiet_cost < busy_cost)

(* --- feasibility --- *)

let step_matrix pattern = snd (Doping.of_pattern ~h pattern)

let test_paper_example_feasible () =
  (* Doses are in units of 1e18; against the default 1e19 limits they are
     fine once expressed in cm^-3. *)
  let s = Fmatrix.scale 1e18 (step_matrix paper_pattern) in
  match Feasibility.check s with
  | Ok () -> ()
  | Error vs ->
    Alcotest.failf "unexpected violations: %d" (List.length vs)

let test_step_dose_violation_detected () =
  let s = Fmatrix.scale 5e18 (step_matrix paper_pattern) in
  (* Largest |dose| is 9 -> 4.5e19 > 1e19 per-pass limit. *)
  match Feasibility.check s with
  | Ok () -> Alcotest.fail "expected violations"
  | Error vs ->
    Alcotest.(check bool) "has step violation" true
      (List.exists
         (function
           | Feasibility.Step_dose_exceeded _ -> true
           | Feasibility.Accumulation_exceeded _ -> false)
         vs)

let test_accumulation_violation_detected () =
  (* Alternating large doses: each pass is within the per-pass limit but
     wire 0 accumulates 5 * 0.9e19 = 4.5e19 > 3e19. *)
  let s =
    Fmatrix.init ~rows:5 ~cols:1 (fun i _ ->
        if i mod 2 = 0 then 0.9e19 else -0.9e19)
  in
  match Feasibility.check s with
  | Ok () -> Alcotest.fail "expected accumulation violation"
  | Error vs ->
    Alcotest.(check bool) "has accumulation violation" true
      (List.exists
         (function
           | Feasibility.Accumulation_exceeded { wire; _ } -> wire = 0
           | Feasibility.Step_dose_exceeded _ -> false)
         vs)

let test_total_implanted_suffix_sums () =
  let s = Fmatrix.of_arrays [| [| 1.; -2. |]; [| 3.; 4. |] |] in
  let t = Feasibility.total_implanted s in
  Alcotest.(check (float 1e-12)) "wire 0 col 0" 4. (Fmatrix.get t 0 0);
  Alcotest.(check (float 1e-12)) "wire 0 col 1" 6. (Fmatrix.get t 0 1);
  Alcotest.(check (float 1e-12)) "wire 1 col 0" 3. (Fmatrix.get t 1 0)

let test_violations_ordered_and_exhaustive () =
  let s = Fmatrix.make ~rows:2 ~cols:2 2e19 in
  match Feasibility.check s with
  | Ok () -> Alcotest.fail "expected violations"
  | Error vs ->
    (* Every entry breaks the per-pass limit (4 violations); only wire 0
       accumulates both steps (2*2e19 > 3e19): 2 more. *)
    Alcotest.(check int) "exhaustive" 6 (List.length vs)

let prop_compensation_never_negative =
  QCheck.Test.make ~name:"total implanted is nonnegative and monotone up"
    ~count:100
    QCheck.(
      list_of_size (Gen.int_range 1 6)
        (array_of_size (Gen.return 3) (float_range (-5.) 5.)))
    (fun rows ->
      QCheck.assume (rows <> []);
      let s = Fmatrix.of_arrays (Array.of_list rows) in
      let t = Feasibility.total_implanted s in
      let ok = ref true in
      for i = 0 to Fmatrix.rows t - 1 do
        for j = 0 to Fmatrix.cols t - 1 do
          if Fmatrix.get t i j < -.1e-12 then ok := false;
          if i < Fmatrix.rows t - 1 && Fmatrix.get t i j < Fmatrix.get t (i + 1) j -. 1e-12
          then ok := false
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "cost counts (paper example)" `Quick
      test_cost_counts_match_paper_example;
    Alcotest.test_case "cost arithmetic" `Quick test_cost_arithmetic;
    Alcotest.test_case "gray saves fab time" `Quick test_gray_saves_fab_time;
    Alcotest.test_case "cost monotone in Phi" `Quick test_cost_monotone_in_phi;
    Alcotest.test_case "paper example feasible" `Quick
      test_paper_example_feasible;
    Alcotest.test_case "step dose violation" `Quick
      test_step_dose_violation_detected;
    Alcotest.test_case "accumulation violation" `Quick
      test_accumulation_violation_detected;
    Alcotest.test_case "total implanted" `Quick test_total_implanted_suffix_sums;
    Alcotest.test_case "violations exhaustive" `Quick
      test_violations_ordered_and_exhaustive;
    QCheck_alcotest.to_alcotest prop_compensation_never_negative;
  ]
