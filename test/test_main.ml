let () =
  Alcotest.run "nanodec"
    [
      ("special functions", Test_special.suite);
      ("random generation", Test_rng.suite);
      ("descriptive stats / monte carlo", Test_descriptive.suite);
      ("dense matrices", Test_matrix.suite);
      ("code words", Test_word.suite);
      ("code families", Test_codes.suite);
      ("device physics", Test_physics.suite);
      ("mspt fabrication model", Test_mspt.suite);
      ("paper propositions", Test_propositions.suite);
      ("crossbar and decoder", Test_crossbar.suite);
      ("design flow", Test_core.suite);
      ("extensions", Test_extensions.suite);
      ("arranger and ecc", Test_arranger_ecc.suite);
      ("circuit extensions", Test_circuits.suite);
      ("fabrication economics", Test_fab_economics.suite);
      ("pipeline properties", Test_pipeline.suite);
      ("degenerate dimensions", Test_edge_cases.suite);
      ("exhaustive arrangements", Test_exhaustive.suite);
      ("parallel engine", Test_parallel.suite);
      ("scheduler", Test_scheduler.suite);
      ("telemetry and run context", Test_telemetry.suite);
      ("fault injection and error taxonomy", Test_fault.suite);
      ("proptest oracles", Test_properties.suite);
      ("compiled kernels", Test_kernel.suite);
      ("variance-reduced monte carlo", Test_montecarlo_vr.suite);
      ("artifact cache", Test_artifact_cache.suite);
      ("serve protocol and daemon", Test_serve.suite);
    ]
