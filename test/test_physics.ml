(* Tests for the device-physics substrate. *)

open Nanodec_physics

let p = Mosfet.default_params

let test_constants_sane () =
  Alcotest.(check (float 1e-3)) "thermal voltage 300K" 0.02585
    (Constants.thermal_voltage ~temperature:300.);
  Alcotest.(check (float 0.)) "cm3 conversion" 1e6 (Constants.cm3_to_m3 1.);
  Alcotest.(check bool) "permittivities ordered" true
    (Constants.silicon_permittivity > Constants.oxide_permittivity)

let test_bulk_potential () =
  (* psi_B = kT/q ln(Na/ni): 1e18 over 1e10 gives ~0.477 V at 300 K. *)
  Alcotest.(check (float 1e-3)) "psi_B at 1e18" 0.4767
    (Mosfet.bulk_potential p ~doping:1e18);
  Alcotest.check_raises "doping below n_i"
    (Invalid_argument "Mosfet.bulk_potential: doping must exceed n_i")
    (fun () -> ignore (Mosfet.bulk_potential p ~doping:1e9))

let test_vt_monotone_in_doping () =
  let dopings = [ 1e15; 1e16; 1e17; 1e18; 1e19; 1e20 ] in
  let vts = List.map (fun doping -> Mosfet.vt_of_doping p ~doping) dopings in
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "strictly increasing" true (a < b);
      check rest
    | [ _ ] | [] -> ()
  in
  check vts

let test_doping_of_vt_roundtrip () =
  List.iter
    (fun doping ->
      let vt = Mosfet.vt_of_doping p ~doping in
      let recovered = Mosfet.doping_of_vt p ~vt in
      let relative = Float.abs (recovered -. doping) /. doping in
      if relative > 1e-6 then
        Alcotest.failf "roundtrip at %g: got %g" doping recovered)
    [ 1e14; 1e16; 2e18; 4e18; 9e18; 5e19 ]

let test_doping_of_vt_domain () =
  let vt_low, vt_high = Mosfet.doping_range p in
  Alcotest.(check bool) "range ordered" true (vt_low < vt_high);
  Alcotest.check_raises "below range"
    (Invalid_argument
       (Printf.sprintf
          "Mosfet.doping_of_vt: V_T %.3f outside achievable [%.3f, %.3f]"
          (vt_low -. 1.) vt_low vt_high)) (fun () ->
      ignore (Mosfet.doping_of_vt p ~vt:(vt_low -. 1.)))

let test_oxide_capacitance_scaling () =
  let thin = Mosfet.oxide_capacitance { p with Mosfet.oxide_thickness = 1e-9 } in
  let thick = Mosfet.oxide_capacitance { p with Mosfet.oxide_thickness = 4e-9 } in
  Alcotest.(check (float 1e-6)) "inverse thickness" 4. (thin /. thick)

let levels = Vt_levels.make ~radix:2 ()

let test_levels_spread_placement () =
  (* Spread 0.1 on 1 V: binary levels at 0.1 and 0.9 V. *)
  Alcotest.(check (float 1e-9)) "level 0" 0.1 (Vt_levels.vt_of_digit levels 0);
  Alcotest.(check (float 1e-9)) "level 1" 0.9 (Vt_levels.vt_of_digit levels 1);
  Alcotest.(check (float 1e-9)) "separation" 0.8 (Vt_levels.separation levels)

let test_levels_centered_placement () =
  let centered =
    Vt_levels.make ~placement:Vt_levels.Centered ~radix:4 ()
  in
  Alcotest.(check (float 1e-9)) "level 0" 0.125
    (Vt_levels.vt_of_digit centered 0);
  Alcotest.(check (float 1e-9)) "level 3" 0.875
    (Vt_levels.vt_of_digit centered 3);
  Alcotest.(check (float 1e-9)) "separation" 0.25
    (Vt_levels.separation centered)

let test_levels_ternary_spread () =
  let t = Vt_levels.make ~radix:3 () in
  Alcotest.(check (float 1e-9)) "middle level" 0.5 (Vt_levels.vt_of_digit t 1);
  Alcotest.(check (float 1e-9)) "separation" 0.4 (Vt_levels.separation t)

let test_digit_of_vt_nearest () =
  Alcotest.(check int) "near 0.1" 0 (Vt_levels.digit_of_vt levels 0.2);
  Alcotest.(check int) "near 0.9" 1 (Vt_levels.digit_of_vt levels 0.8);
  let t = Vt_levels.make ~radix:3 () in
  Alcotest.(check int) "ternary middle" 1 (Vt_levels.digit_of_vt t 0.55)

let test_digit_roundtrip () =
  List.iter
    (fun radix ->
      let l = Vt_levels.make ~radix () in
      for d = 0 to radix - 1 do
        Alcotest.(check int)
          (Printf.sprintf "digit %d radix %d" d radix)
          d
          (Vt_levels.digit_of_vt l (Vt_levels.vt_of_digit l d))
      done)
    [ 2; 3; 4; 5 ]

let test_doping_of_digit_monotone () =
  List.iter
    (fun radix ->
      let l = Vt_levels.make ~radix () in
      for d = 0 to radix - 2 do
        let low = Vt_levels.doping_of_digit l d in
        let high = Vt_levels.doping_of_digit l (d + 1) in
        Alcotest.(check bool)
          (Printf.sprintf "doping increases d=%d" d)
          true (low < high)
      done)
    [ 2; 3; 4 ]

let test_digit_of_doping_inverts () =
  let l = Vt_levels.make ~radix:3 () in
  for d = 0 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "h inverse at %d" d)
      d
      (Vt_levels.digit_of_doping l (Vt_levels.doping_of_digit l d))
  done

let test_address_window () =
  Alcotest.(check (float 1e-9)) "window" 0.32
    (Vt_levels.address_window levels ~margin_fraction:0.4);
  Alcotest.check_raises "margin guard"
    (Invalid_argument "Vt_levels.address_window: margin_fraction outside (0, 0.5]")
    (fun () -> ignore (Vt_levels.address_window levels ~margin_fraction:0.6))

let test_levels_array () =
  let l = Vt_levels.make ~radix:3 () in
  Alcotest.(check int) "count" 3 (Array.length (Vt_levels.levels l));
  Alcotest.(check (float 1e-9)) "first" 0.1 (Vt_levels.levels l).(0)

let prop_vt_monotone =
  QCheck.Test.make ~name:"V_T(N_A) monotone (f bijection premise)" ~count:100
    QCheck.(pair (float_range 14. 20.) (float_range 14. 20.))
    (fun (a, b) ->
      let lo = 10. ** Float.min a b and hi = 10. ** Float.max a b in
      QCheck.assume (hi /. lo > 1.0001);
      Mosfet.vt_of_doping p ~doping:lo < Mosfet.vt_of_doping p ~doping:hi)

let prop_h_injective =
  QCheck.Test.make ~name:"h = f^-1 . g injective on digits" ~count:20
    (QCheck.int_range 2 6) (fun radix ->
      let l = Vt_levels.make ~radix () in
      let dopings = List.init radix (Vt_levels.doping_of_digit l) in
      List.length (List.sort_uniq Float.compare dopings) = radix)

let suite =
  [
    Alcotest.test_case "constants" `Quick test_constants_sane;
    Alcotest.test_case "bulk potential" `Quick test_bulk_potential;
    Alcotest.test_case "V_T monotone" `Quick test_vt_monotone_in_doping;
    Alcotest.test_case "doping_of_vt roundtrip" `Quick
      test_doping_of_vt_roundtrip;
    Alcotest.test_case "doping_of_vt domain" `Quick test_doping_of_vt_domain;
    Alcotest.test_case "oxide capacitance" `Quick test_oxide_capacitance_scaling;
    Alcotest.test_case "spread placement" `Quick test_levels_spread_placement;
    Alcotest.test_case "centered placement" `Quick test_levels_centered_placement;
    Alcotest.test_case "ternary spread" `Quick test_levels_ternary_spread;
    Alcotest.test_case "digit_of_vt nearest" `Quick test_digit_of_vt_nearest;
    Alcotest.test_case "digit roundtrip" `Quick test_digit_roundtrip;
    Alcotest.test_case "doping monotone in digit" `Quick
      test_doping_of_digit_monotone;
    Alcotest.test_case "digit_of_doping inverts" `Quick
      test_digit_of_doping_inverts;
    Alcotest.test_case "address window" `Quick test_address_window;
    Alcotest.test_case "levels array" `Quick test_levels_array;
    QCheck_alcotest.to_alcotest prop_vt_monotone;
    QCheck_alcotest.to_alcotest prop_h_injective;
  ]
