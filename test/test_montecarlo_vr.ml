(* The redesigned Monte-Carlo entry point: [Montecarlo.spec] (strategy
   x stopping rule) behind [Montecarlo.run].

   Four layers:
   - determinism: every strategy and the adaptive stopping rule are
     bit-for-bit invariant in domain count, chunking policy, batch size
     and injected (recovered) faults — the same contract the plain
     estimators have always carried;
   - analytic fixtures: evaluators with closed-form answers (an exact
     antithetic pair, the even-predicate kernel identity, importance
     sampling's variance collapse on a high-yield design);
   - spec validation: every malformed spec is rejected with the
     documented [Invalid_argument] message, and strategies a target
     cannot evaluate raise the error-taxonomy [Invalid_input];
   - shared validators: the CLI and the daemon reject malformed
     [mc-method] / [rel-error] knobs through the same
     [Nanodec_error] parsers, so their messages agree verbatim. *)

open Nanodec_numerics
open Nanodec_codes
open Nanodec_crossbar
open Nanodec_serve
module Run_ctx = Nanodec_parallel.Run_ctx
module Fault = Nanodec_fault.Fault
module E = Nanodec_error

let estimate : Montecarlo.estimate Alcotest.testable =
  Alcotest.testable Montecarlo.pp (fun a b -> a = b)

let analysis_of ?(n_wires = 20) ct m =
  Cave.analyze
    { Cave.default_config with Cave.code_type = ct; code_length = m; n_wires }

let strategies =
  [
    Montecarlo.Plain;
    Montecarlo.Antithetic;
    Montecarlo.Stratified 8;
    Montecarlo.Importance 1.0;
  ]

let fault_plan () =
  Fault.create
    (Fault.parse_exn
       "seed=17;pool.chunk:crash:p=0.3;mc.sample_batch:crash:p=0.2")

(* --- determinism: strategies across domains, chunking and faults --- *)

let test_strategy_determinism () =
  let a = analysis_of Codebook.Balanced_gray 10 in
  let kernel = Cave.kernel_of_analysis a in
  let target = Kernel.target kernel in
  List.iter
    (fun strategy ->
      let spec = Montecarlo.spec ~strategy (Montecarlo.fixed 384) in
      let name = Montecarlo.strategy_name strategy in
      let baseline = Montecarlo.run spec (Rng.create ~seed:2009) target in
      List.iter
        (fun domains ->
          List.iter
            (fun fault ->
              Run_ctx.with_ctx ~domains ?fault
                ~chunking:(Run_ctx.Fixed 7) ~warn:false (fun ctx ->
                  Alcotest.check estimate
                    (Printf.sprintf "%s, domains=%d, faults=%b" name domains
                       (fault <> None))
                    baseline
                    (Montecarlo.run ~ctx spec (Rng.create ~seed:2009) target)))
            [ None; Some (fault_plan ()) ])
        [ 1; 4 ])
    strategies

let test_adaptive_schedule_invariance () =
  let a = analysis_of Codebook.Tree 8 in
  let kernel = Cave.kernel_of_analysis a in
  let target = Kernel.target kernel in
  let spec =
    Montecarlo.spec
      (Montecarlo.until_rel_error ~min_samples:32 ~max_samples:2048 0.02)
  in
  let baseline = Montecarlo.run spec (Rng.create ~seed:5) target in
  List.iter
    (fun (domains, chunks, batch) ->
      Run_ctx.with_ctx ~domains ~chunking:(Run_ctx.Fixed chunks) ~batch
        ~warn:false (fun ctx ->
          Alcotest.check estimate
            (Printf.sprintf "domains=%d chunks=%d batch=%d" domains chunks
               batch)
            baseline
            (Montecarlo.run ~ctx spec (Rng.create ~seed:5) target)))
    [ (1, 3, 1); (1, 16, 4); (4, 3, 2); (4, 16, 1); (4, 5, 8) ];
  Run_ctx.with_ctx ~domains:4 ~fault:(fault_plan ()) ~warn:false (fun ctx ->
      Alcotest.check estimate "adaptive under injected faults" baseline
        (Montecarlo.run ~ctx spec (Rng.create ~seed:5) target))

(* --- analytic fixtures --- *)

(* An antithetic evaluator whose pair average is the constant 1/2:
   the estimate must be exactly (0.5, se 0) at any sample count. *)
let test_antithetic_exact_pair () =
  let target =
    Montecarlo.target
      ~antithetic:(fun g ->
        let u = Rng.float g in
        (u +. (1. -. u)) /. 2.)
      Rng.float
  in
  let e =
    Montecarlo.run
      (Montecarlo.spec ~strategy:Montecarlo.Antithetic (Montecarlo.fixed 100))
      (Rng.create ~seed:1) target
  in
  Alcotest.(check (float 0.)) "mean exactly 1/2" 0.5 e.Montecarlo.mean;
  Alcotest.(check (float 0.)) "zero variance" 0. e.Montecarlo.std_error;
  Alcotest.(check int) "all samples spent" 100 e.Montecarlo.samples

(* The window predicate is even in the noise vector, so the kernel's
   antithetic pair average equals the plain draw on the same streams:
   antithetic is a draw-cost optimization, bit-equal to plain. *)
let test_kernel_antithetic_equals_plain () =
  let a = analysis_of Codebook.Hot 4 in
  let kernel = Cave.kernel_of_analysis a in
  let target = Kernel.target kernel in
  let run strategy =
    Montecarlo.run
      (Montecarlo.spec ~strategy (Montecarlo.fixed 256))
      (Rng.create ~seed:42) target
  in
  Alcotest.check estimate "antithetic == plain on even predicate"
    (run Montecarlo.Plain)
    (run Montecarlo.Antithetic)

(* On a high-yield design the plain estimator mostly sees all-pass
   samples; importance sampling aims every sample at the failure
   boundary and reweights, so its interval must still bracket the
   analytic yield while being strictly tighter. *)
let test_importance_tightens_high_yield () =
  let a =
    Cave.analyze
      {
        Cave.default_config with
        Cave.code_type = Codebook.Balanced_gray;
        code_length = 10;
        n_wires = 20;
        sigma_t = 0.02;
      }
  in
  let kernel = Cave.kernel_of_analysis a in
  let target = Kernel.target kernel in
  let run strategy =
    Montecarlo.run
      (Montecarlo.spec ~strategy (Montecarlo.fixed 2000))
      (Rng.create ~seed:2009) target
  in
  let plain = run Montecarlo.Plain in
  let imp = run (Montecarlo.Importance 1.0) in
  Alcotest.(check bool)
    (Printf.sprintf "importance brackets analytic yield (%g vs %g +/- %g)"
       a.Cave.yield imp.Montecarlo.mean imp.Montecarlo.std_error)
    true
    (Float.abs (imp.Montecarlo.mean -. a.Cave.yield)
    <= (6. *. imp.Montecarlo.std_error) +. 1e-9);
  Alcotest.(check bool)
    (Printf.sprintf "importance se %g < plain se %g" imp.Montecarlo.std_error
       plain.Montecarlo.std_error)
    true
    (imp.Montecarlo.std_error < plain.Montecarlo.std_error)

(* Stratifying the dominant cell keeps the estimator unbiased: the
   stratified mean agrees with the analytic yield, and the stratified
   SE never exceeds the plain SE by more than noise. *)
let test_stratified_brackets_exact () =
  let a = analysis_of Codebook.Balanced_gray 10 in
  let kernel = Cave.kernel_of_analysis a in
  let target = Kernel.target kernel in
  let e =
    Montecarlo.run
      (Montecarlo.spec ~strategy:(Montecarlo.Stratified 16)
         (Montecarlo.fixed 1600))
      (Rng.create ~seed:7) target
  in
  Alcotest.(check bool)
    (Printf.sprintf "stratified brackets analytic yield (%g vs %g +/- %g)"
       a.Cave.yield e.Montecarlo.mean e.Montecarlo.std_error)
    true
    (Float.abs (e.Montecarlo.mean -. a.Cave.yield)
    <= (6. *. e.Montecarlo.std_error) +. 1e-2);
  (* sample count aligned up to a multiple of the strata count *)
  Alcotest.(check int) "aligned samples" 1600 e.Montecarlo.samples

(* Adaptive stopping on a near-deterministic integrand stops at the
   minimum round; on a noisy one it keeps doubling until the CI target
   or the cap. *)
let test_adaptive_stops () =
  let quiet = Montecarlo.target (fun g -> 10. +. (1e-12 *. Rng.float g)) in
  let noisy = Montecarlo.target Rng.gaussian in
  let spec rel =
    Montecarlo.spec
      (Montecarlo.until_rel_error ~min_samples:16 ~max_samples:256 rel)
  in
  let e = Montecarlo.run (spec 0.01) (Rng.create ~seed:3) quiet in
  Alcotest.(check int) "quiet integrand stops at min_samples" 16
    e.Montecarlo.samples;
  (* gaussian mean ~ 0: the relative-error target is unreachable, so
     the round doubling runs to the cap *)
  let e = Montecarlo.run (spec 0.01) (Rng.create ~seed:3) noisy in
  Alcotest.(check int) "noisy integrand runs to max_samples" 256
    e.Montecarlo.samples

(* --- spec validation --- *)

let test_spec_validation () =
  let target = Montecarlo.target Rng.float in
  let run s = ignore (Montecarlo.run s (Rng.create ~seed:1) target) in
  let raises msg s =
    Alcotest.check_raises msg (Invalid_argument ("Montecarlo.run" ^ msg))
      (fun () -> run s)
  in
  raises ": need >= 2 samples" (Montecarlo.spec (Montecarlo.fixed 1));
  raises ": stratified needs >= 2 strata"
    (Montecarlo.spec ~strategy:(Montecarlo.Stratified 1)
       (Montecarlo.fixed 10));
  raises ": importance shift must be positive and finite"
    (Montecarlo.spec ~strategy:(Montecarlo.Importance 0.)
       (Montecarlo.fixed 10));
  raises ": importance shift must be positive and finite"
    (Montecarlo.spec ~strategy:(Montecarlo.Importance infinity)
       (Montecarlo.fixed 10));
  raises ": rel_error must be in (0, 0.5]"
    (Montecarlo.spec (Montecarlo.until_rel_error 0.9));
  raises ": max_samples must be >= min_samples"
    (Montecarlo.spec
       (Montecarlo.until_rel_error ~min_samples:100 ~max_samples:50 0.1))

let test_unsupported_strategy () =
  (* a bare target carries only the plain integrand; asking for a
     variance-reduced strategy is a taxonomy error, not a crash *)
  let target = Montecarlo.target Rng.float in
  List.iter
    (fun strategy ->
      let spec = Montecarlo.spec ~strategy (Montecarlo.fixed 10) in
      match Montecarlo.run spec (Rng.create ~seed:1) target with
      | _ -> Alcotest.failf "%s ran" (Montecarlo.strategy_name strategy)
      | exception E.Error (E.Invalid_input _) -> ())
    [ Montecarlo.Antithetic; Montecarlo.Stratified 4;
      Montecarlo.Importance 1.0 ]

(* --- spec keys are injective over the knob grid --- *)

let test_spec_key_injective () =
  let specs =
    List.concat_map
      (fun strategy ->
        [
          Montecarlo.spec ~strategy (Montecarlo.fixed 100);
          Montecarlo.spec ~strategy (Montecarlo.fixed 200);
          Montecarlo.spec ~strategy (Montecarlo.until_rel_error 0.05);
          Montecarlo.spec ~strategy
            (Montecarlo.until_rel_error ~min_samples:64 0.05);
          Montecarlo.spec ~strategy (Montecarlo.until_rel_error 0.01);
        ])
      (strategies
      @ [ Montecarlo.Stratified 16; Montecarlo.Importance 1.5 ])
  in
  let keys = List.map Montecarlo.spec_key specs in
  let sorted = List.sort_uniq compare keys in
  Alcotest.(check int) "all spec keys distinct" (List.length specs)
    (List.length sorted)

(* --- CLI and daemon share the knob validators verbatim --- *)

let invalid_message f =
  match f () with
  | _ -> Alcotest.fail "expected Invalid_input"
  | exception E.Error (E.Invalid_input { what; _ }) -> what

let test_shared_method_validator () =
  (match E.parse_mc_method "stratified:32" with
  | `Stratified 32 -> ()
  | _ -> Alcotest.fail "stratified:32 parsed wrong");
  (match E.parse_mc_method "importance:2.5" with
  | `Importance s -> Alcotest.(check (float 0.)) "shift" 2.5 s
  | _ -> Alcotest.fail "importance:2.5 parsed wrong");
  (* the daemon rejects a bad method with the very message the shared
     validator produces — one grammar, two front ends *)
  let expected =
    invalid_message (fun () -> E.parse_mc_method ~what:"method" "bogus")
  in
  Run_ctx.with_ctx ~domains:1 ~warn:false @@ fun ctx ->
  let state = Protocol.make_state ~base:ctx () in
  let response =
    Protocol.handle_line state
      {|{"verb":"yield","params":{"code":"TC","length":6},"exec":{"seed":1,"mc_samples":100,"method":"bogus"}}|}
  in
  let json =
    match Json.parse response with
    | Ok v -> v
    | Error m -> Alcotest.failf "unparsable response: %s" m
  in
  let field name =
    match Json.member name json with
    | Some (Json.String s) -> s
    | _ -> Alcotest.failf "missing field %s" name
  in
  Alcotest.(check string) "status" "error" (field "status");
  Alcotest.(check string) "kind" "invalid-input" (field "kind");
  Alcotest.(check string) "daemon message == shared validator message"
    expected (field "message")

let test_shared_rel_error_validator () =
  let expected =
    invalid_message (fun () -> E.check_rel_error ~what:"rel_error" 0.9)
  in
  Run_ctx.with_ctx ~domains:1 ~warn:false @@ fun ctx ->
  let state = Protocol.make_state ~base:ctx () in
  let response =
    Protocol.handle_line state
      {|{"verb":"yield","params":{"code":"TC","length":6},"exec":{"seed":1,"mc_samples":100,"rel_error":0.9}}|}
  in
  match Json.parse response with
  | Error m -> Alcotest.failf "unparsable response: %s" m
  | Ok json -> (
    match Json.member "message" json with
    | Some (Json.String got) ->
      Alcotest.(check string) "daemon message == shared validator message"
        expected got
    | _ -> Alcotest.fail "missing message field")

(* --- the context carries the knobs end to end --- *)

let test_ctx_carries_spec () =
  let a = analysis_of Codebook.Balanced_gray 10 in
  let direct =
    let spec =
      Montecarlo.spec ~strategy:(Montecarlo.Importance 1.0)
        (Montecarlo.fixed 300)
    in
    Cave.mc_yield_window ~spec (Rng.create ~seed:9) ~samples:300 a
  in
  Run_ctx.with_ctx ~domains:2 ~mc_method:(Run_ctx.Importance 1.0) ~warn:false
    (fun ctx ->
      Alcotest.check estimate "ctx mc_method == explicit spec" direct
        (Cave.mc_yield_window_par ~ctx (Rng.create ~seed:9) ~samples:300 a))

let suite =
  [
    Alcotest.test_case "strategies: domain/chunk/fault invariance" `Slow
      test_strategy_determinism;
    Alcotest.test_case "adaptive stopping: schedule invariance" `Slow
      test_adaptive_schedule_invariance;
    Alcotest.test_case "antithetic: exact pair fixture" `Quick
      test_antithetic_exact_pair;
    Alcotest.test_case "kernel antithetic == plain (even predicate)" `Quick
      test_kernel_antithetic_equals_plain;
    Alcotest.test_case "importance: brackets yield, tighter CI" `Slow
      test_importance_tightens_high_yield;
    Alcotest.test_case "stratified: unbiased, aligned samples" `Slow
      test_stratified_brackets_exact;
    Alcotest.test_case "adaptive stopping: min and cap" `Quick
      test_adaptive_stops;
    Alcotest.test_case "spec validation messages" `Quick test_spec_validation;
    Alcotest.test_case "unsupported strategies raise Invalid_input" `Quick
      test_unsupported_strategy;
    Alcotest.test_case "spec keys injective" `Quick test_spec_key_injective;
    Alcotest.test_case "shared --mc-method validator (CLI == daemon)" `Quick
      test_shared_method_validator;
    Alcotest.test_case "shared --rel-error validator (CLI == daemon)" `Quick
      test_shared_rel_error_validator;
    Alcotest.test_case "Run_ctx carries strategy to the estimators" `Quick
      test_ctx_carries_spec;
  ]
