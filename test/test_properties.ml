(* The paper-proposition oracles run through the lib/proptest engine,
   plus self-tests of the engine itself: shrinking reaches (locally)
   minimal counterexamples, runs are deterministic in the seed, and a
   deliberately injected bug — the classic wrong sign in
   S_i = D_i - D_{i+1} — is caught, shrunk and reported with a seed that
   reproduces it. *)

open Nanodec_numerics
open Nanodec_mspt
open Nanodec_proptest

(* --- every oracle as an alcotest case (respects PROPTEST_SEED/COUNT) --- *)

let oracle_case p =
  Alcotest.test_case ("oracle: " ^ Property.name p) `Quick (fun () ->
      match Property.run p with
      | Property.Pass _ -> ()
      | Property.Fail f ->
        Alcotest.failf "%s" (Format.asprintf "%a" Property.pp_failure f))

(* --- engine: integrated shrinking finds the exact minimum --- *)

let test_shrink_int_to_minimum () =
  let prop =
    Property.make ~name:"x < 10" ~print:string_of_int
      (Gen.int_range 0 1000)
      (fun x -> x < 10)
  in
  match Property.run ~seed:7 ~count:200 prop with
  | Property.Pass _ -> Alcotest.fail "x < 10 should fail on [0,1000]"
  | Property.Fail f ->
    Alcotest.(check string) "shrinks to the boundary" "10" f.counterexample;
    Alcotest.(check bool) "took shrink steps" true (f.shrink_steps > 0)

let test_shrink_list_to_minimum () =
  let print l = "[" ^ String.concat "; " (List.map string_of_int l) ^ "]" in
  let prop =
    Property.make ~name:"all elements < 5" ~print
      (Gen.list (Gen.int_range 0 100))
      (List.for_all (fun x -> x < 5))
  in
  match Property.run ~seed:11 ~count:200 prop with
  | Property.Pass _ -> Alcotest.fail "should find an element >= 5"
  | Property.Fail f ->
    Alcotest.(check string) "shrinks to the single boundary element" "[5]"
      f.counterexample

let test_runner_deterministic () =
  let outcome () = Property.run ~seed:99 ~count:50 Oracles.gray_not_beaten_phi in
  Alcotest.(check bool) "same seed, same outcome" true (outcome () = outcome ())

let test_case_seed_replays_as_case_zero () =
  Alcotest.(check int) "case 0 is the master seed" 123
    (Property.case_seed ~master:123 0);
  Alcotest.(check bool) "later cases are mixed" true
    (Property.case_seed ~master:123 1 <> 124)

(* --- the injected bug of the acceptance criteria --- *)

let wrong_sign_property =
  (* Claims S_i = D_{i+1} - D_i: true only when consecutive wires carry
     identical digits, so any pattern with a changing region refutes it. *)
  Property.make ~name:"INJECTED BUG: S_i = D_{i+1} - D_i"
    ~print:Generators.string_of_pattern_with_h Generators.pattern_with_h
    (fun (p, h) ->
      let d, s = Doping.of_pattern ~h p in
      let n = Fmatrix.rows d in
      let ok = ref true in
      for i = 0 to n - 2 do
        for j = 0 to Fmatrix.cols d - 1 do
          if Fmatrix.get s i j <> Fmatrix.get d (i + 1) j -. Fmatrix.get d i j
          then ok := false
        done
      done;
      !ok)

let test_injected_bug_is_caught_and_shrunk () =
  match Property.run ~seed:Property.default_seed ~count:300 wrong_sign_property with
  | Property.Pass _ -> Alcotest.fail "wrong-sign bug escaped the oracle"
  | Property.Fail f ->
    (* The counterexample shrank to a near-minimal pattern (the true
       minimum is 2 wires x 1 region). *)
    let wires, regions =
      Scanf.sscanf f.counterexample "radix %d, %dx%d" (fun _ w r -> (w, r))
    in
    Alcotest.(check bool)
      (Printf.sprintf "shrunk to a small pattern (%dx%d)" wires regions)
      true
      (wires <= 3 && regions <= 2);
    (* The reported seed reproduces the same minimal counterexample as
       case 0 of a fresh run — the PROPTEST_SEED=<n> contract. *)
    (match Property.run ~seed:f.seed ~count:1 wrong_sign_property with
    | Property.Pass _ -> Alcotest.fail "reported seed did not reproduce"
    | Property.Fail f' ->
      Alcotest.(check int) "replays as case 0" 0 f'.case_index;
      Alcotest.(check string) "same minimal counterexample" f.counterexample
        f'.counterexample)

let test_injected_bug_in_nu_is_caught () =
  (* Second injected fault: nu computed with a strict k > i (missing the
     step that defines the wire itself). *)
  let broken =
    Property.make ~name:"INJECTED BUG: nu counts only k > i"
      ~print:Generators.string_of_pattern_with_h Generators.pattern_with_h
      (fun (p, h) ->
        let _, s = Doping.of_pattern ~h p in
        let nu = Variability.nu_matrix p in
        let n = Fmatrix.rows s in
        let ok = ref true in
        for i = 0 to n - 1 do
          for j = 0 to Fmatrix.cols s - 1 do
            let brute = ref 0 in
            for k = i + 1 to n - 1 do
              if Fmatrix.get s k j <> 0. then incr brute
            done;
            if Imatrix.get nu i j <> !brute then ok := false
          done
        done;
        !ok)
  in
  match Property.run ~seed:Property.default_seed ~count:100 broken with
  | Property.Pass _ -> Alcotest.fail "nu off-by-one bug escaped the oracle"
  | Property.Fail _ -> ()

let suite =
  List.map oracle_case Oracles.all
  @ [
      Alcotest.test_case "engine: int shrinks to exact minimum" `Quick
        test_shrink_int_to_minimum;
      Alcotest.test_case "engine: list shrinks to exact minimum" `Quick
        test_shrink_list_to_minimum;
      Alcotest.test_case "engine: deterministic in the seed" `Quick
        test_runner_deterministic;
      Alcotest.test_case "engine: case 0 replays the master seed" `Quick
        test_case_seed_replays_as_case_zero;
      Alcotest.test_case "engine: injected wrong-sign bug caught + shrunk"
        `Quick test_injected_bug_is_caught_and_shrunk;
      Alcotest.test_case "engine: injected nu off-by-one caught" `Quick
        test_injected_bug_in_nu_is_caught;
    ]
