(* Tests for descriptive statistics and the Monte-Carlo estimator. *)

open Nanodec_numerics

let check_float = Alcotest.(check (float 1e-9))

let test_mean () =
  check_float "mean" 2.5 (Descriptive.mean [| 1.; 2.; 3.; 4. |]);
  check_float "singleton" 7. (Descriptive.mean [| 7. |]);
  Alcotest.check_raises "empty" (Invalid_argument "Descriptive.mean: empty array")
    (fun () -> ignore (Descriptive.mean [||]))

let test_variance () =
  check_float "variance" (14. /. 3.) (Descriptive.variance [| 1.; 2.; 3.; 6. |]);
  check_float "singleton variance" 0. (Descriptive.variance [| 5. |]);
  check_float "constant" 0. (Descriptive.variance [| 2.; 2.; 2. |])

let test_std () =
  check_float "std" (sqrt 2.5) (Descriptive.std [| 1.; 2.; 3.; 4.; 5. |])

let test_min_max () =
  let lo, hi = Descriptive.min_max [| 3.; -1.; 7.; 0. |] in
  check_float "min" (-1.) lo;
  check_float "max" 7. hi

let test_quantile () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "median" 3. (Descriptive.quantile xs 0.5);
  check_float "q0" 1. (Descriptive.quantile xs 0.);
  check_float "q1" 5. (Descriptive.quantile xs 1.);
  check_float "q25" 2. (Descriptive.quantile xs 0.25);
  (* Interpolation between order statistics. *)
  check_float "q interpolated" 1.4 (Descriptive.quantile [| 1.; 2. |] 0.4)

let test_quantile_does_not_mutate () =
  let xs = [| 3.; 1.; 2. |] in
  ignore (Descriptive.quantile xs 0.5);
  Alcotest.(check (array (float 0.))) "untouched" [| 3.; 1.; 2. |] xs

let test_median_unsorted () =
  check_float "median unsorted" 2. (Descriptive.median [| 3.; 1.; 2. |])

let test_summary () =
  let s = Descriptive.summarize [| 2.; 4.; 6. |] in
  Alcotest.(check int) "count" 3 s.Descriptive.count;
  check_float "mean" 4. s.Descriptive.mean;
  check_float "min" 2. s.Descriptive.min;
  check_float "max" 6. s.Descriptive.max

let test_histogram () =
  let bins = Descriptive.histogram ~bins:2 [| 0.; 1.; 2.; 3. |] in
  Alcotest.(check int) "two bins" 2 (Array.length bins);
  let _, _, c0 = bins.(0) and _, _, c1 = bins.(1) in
  Alcotest.(check int) "total count" 4 (c0 + c1);
  Alcotest.(check int) "lower bin" 2 c0

let test_histogram_constant_data () =
  let bins = Descriptive.histogram ~bins:3 [| 5.; 5.; 5. |] in
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 bins in
  Alcotest.(check int) "all counted" 3 total

let test_mc_estimate_constant () =
  let rng = Rng.create ~seed:1 in
  let e = Montecarlo.estimate rng ~samples:100 (fun _ -> 3.) in
  check_float "mean" 3. e.Montecarlo.mean;
  check_float "stderr" 0. e.Montecarlo.std_error;
  Alcotest.(check bool) "within" true (Montecarlo.within e 3.)

let test_mc_estimate_uniform () =
  let rng = Rng.create ~seed:2 in
  let e = Montecarlo.estimate rng ~samples:10_000 Rng.float in
  Alcotest.(check bool) "CI contains 0.5" true (Montecarlo.within e 0.5);
  Alcotest.(check bool) "CI reasonably tight" true
    (e.Montecarlo.ci95_high -. e.Montecarlo.ci95_low < 0.02)

let test_mc_proportion () =
  let rng = Rng.create ~seed:3 in
  let e =
    Montecarlo.estimate_proportion rng ~samples:10_000 (fun rng ->
        Rng.float rng < 0.3)
  in
  Alcotest.(check bool) "CI contains 0.3" true (Montecarlo.within e 0.3)

let test_mc_rejects_tiny_sample () =
  let rng = Rng.create ~seed:4 in
  Alcotest.check_raises "one sample"
    (Invalid_argument "Montecarlo.estimate: need >= 2 samples") (fun () ->
      ignore (Montecarlo.estimate rng ~samples:1 (fun _ -> 0.)))

let prop_mean_bounds =
  QCheck.Test.make ~name:"mean within [min, max]" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 40) (float_range (-100.) 100.))
    (fun xs ->
      let m = Descriptive.mean xs in
      let lo, hi = Descriptive.min_max xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let prop_variance_nonnegative =
  QCheck.Test.make ~name:"variance >= 0" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 40) (float_range (-100.) 100.))
    (fun xs -> Descriptive.variance xs >= 0.)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile monotone in p" ~count:200
    QCheck.(
      triple
        (array_of_size Gen.(int_range 1 30) (float_range (-10.) 10.))
        (float_bound_inclusive 1.) (float_bound_inclusive 1.))
    (fun (xs, p1, p2) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Descriptive.quantile xs lo <= Descriptive.quantile xs hi +. 1e-9)

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "variance" `Quick test_variance;
    Alcotest.test_case "std" `Quick test_std;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "quantile" `Quick test_quantile;
    Alcotest.test_case "quantile purity" `Quick test_quantile_does_not_mutate;
    Alcotest.test_case "median" `Quick test_median_unsorted;
    Alcotest.test_case "summary" `Quick test_summary;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "histogram constant" `Quick test_histogram_constant_data;
    Alcotest.test_case "MC constant" `Quick test_mc_estimate_constant;
    Alcotest.test_case "MC uniform" `Quick test_mc_estimate_uniform;
    Alcotest.test_case "MC proportion" `Quick test_mc_proportion;
    Alcotest.test_case "MC sample guard" `Quick test_mc_rejects_tiny_sample;
    QCheck_alcotest.to_alcotest prop_mean_bounds;
    QCheck_alcotest.to_alcotest prop_variance_nonnegative;
    QCheck_alcotest.to_alcotest prop_quantile_monotone;
  ]
