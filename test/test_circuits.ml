(* Tests for the circuit-level extensions: address book, analog sensing
   and the NOR-NOR PLA. *)

open Nanodec_codes
open Nanodec_numerics
open Nanodec_physics
open Nanodec_crossbar

(* --- Address_space --- *)

let analysis = Cave.analyze Cave.default_config

let book = Address_space.build analysis ~wires:100

let test_address_book_coverage () =
  Alcotest.(check int) "wires" 100 (Address_space.n_wires book);
  (* Default config: omega 32 >= 20 wires per half cave, single pad, no
     removals: every wire addressable. *)
  Alcotest.(check int) "all addressable" 100
    (List.length (Address_space.addressable_wires book))

let test_address_roundtrip () =
  List.iter
    (fun w ->
      match Address_space.address_of_wire book w with
      | None -> Alcotest.failf "wire %d has no address" w
      | Some address ->
        (match Address_space.wire_of_address book address with
        | Some w' -> Alcotest.(check int) "inverse" w w'
        | None -> Alcotest.failf "address of wire %d not found" w))
    (Address_space.addressable_wires book)

let test_address_structure () =
  (* Wire 0 is in cave 0 half 0; wire 20 in cave 0 half 1; wire 40 in
     cave 1 half 0 (20 wires per half cave). *)
  let expect w cave half =
    match Address_space.address_of_wire book w with
    | Some a ->
      Alcotest.(check int) "cave" cave a.Address_space.cave;
      Alcotest.(check int) "half" half a.Address_space.half
    | None -> Alcotest.failf "wire %d missing" w
  in
  expect 0 0 0;
  expect 20 0 1;
  expect 40 1 0;
  expect 99 2 0

let test_addresses_unique () =
  let texts =
    List.filter_map
      (fun w ->
        Option.map
          (fun a -> Format.asprintf "%a" Address_space.pp_address a)
          (Address_space.address_of_wire book w))
      (Address_space.addressable_wires book)
  in
  Alcotest.(check int) "distinct addresses"
    (List.length texts)
    (List.length (List.sort_uniq String.compare texts))

let test_removed_wires_have_no_address () =
  let config = { Cave.default_config with Cave.code_type = Codebook.Tree; code_length = 6 } in
  let a = Cave.analyze config in
  let b = Address_space.build a ~wires:40 in
  let expected =
    2 * Geometry.n_addressable a.Cave.layout
  in
  Alcotest.(check int) "layout losses excluded" expected
    (List.length (Address_space.addressable_wires b))

let test_mesowire_voltages () =
  let levels = Vt_levels.make ~radix:2 () in
  match Address_space.address_of_wire book 0 with
  | None -> Alcotest.fail "wire 0"
  | Some address ->
    let voltages = Address_space.mesowire_voltages levels address in
    Alcotest.(check int) "M voltages" 10 (Array.length voltages);
    Array.iteri
      (fun j v ->
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "voltage %d" j)
          (Addressing.applied_voltage levels (Word.get address.Address_space.word j))
          v)
      voltages

(* --- Sensing --- *)

let sp = Sensing.default_params
let levels = Vt_levels.make ~radix:2 ()

let test_region_conductance_regimes () =
  let on =
    Sensing.region_conductance sp ~gate_voltage:1.3 ~threshold_voltage:0.9
  in
  let off =
    Sensing.region_conductance sp ~gate_voltage:0.5 ~threshold_voltage:0.9
  in
  Alcotest.(check (float 1e-12)) "linear region" (1e-6 *. 0.4) on;
  Alcotest.(check bool) "off is positive but tiny" true (off > 0. && off < on /. 100.)

let test_conductance_continuous_at_threshold () =
  let just_above =
    Sensing.region_conductance sp ~gate_voltage:0.900001 ~threshold_voltage:0.9
  in
  let just_below =
    Sensing.region_conductance sp ~gate_voltage:0.899999 ~threshold_voltage:0.9
  in
  Alcotest.(check bool) "no big jump" true
    (Float.abs (just_above -. just_below) < 2. *. 1e-6 *. sp.Sensing.subthreshold_swing)

let test_wire_conductance_series () =
  let word = Word.of_string ~radix:2 "01" in
  let g =
    Sensing.wire_conductance sp levels ~address:word ~vt_offsets:[| 0.; 0. |]
      word
  in
  (* Two series regions each with overdrive sep/2 = 0.4 V. *)
  let per_region = 1e-6 *. 0.4 in
  Alcotest.(check (float 1e-12)) "series halves" (per_region /. 2.) g

let test_sense_ratio_nominal () =
  let group =
    List.map
      (fun w -> (w, [| 0.; 0.; 0.; 0.; 0.; 0. |]))
      (Codebook.sequence ~radix:2 ~length:6 ~count:8 Codebook.Gray)
  in
  let target = List.nth (List.map fst group) 3 in
  let ratio = Sensing.sense_ratio sp levels ~group ~target in
  Alcotest.(check bool) "nominal ratio is large" true (ratio > 100.)

let test_sense_ratio_degrades_with_noise () =
  (* Give every competitor a large negative V_T shift: sneak conduction
     rises, ratio falls. *)
  let words = Codebook.sequence ~radix:2 ~length:6 ~count:8 Codebook.Gray in
  let clean = List.map (fun w -> (w, Array.make 6 0.)) words in
  let target = List.nth words 3 in
  let noisy =
    List.map
      (fun w ->
        if Word.equal w target then (w, Array.make 6 0.)
        else (w, Array.make 6 (-0.6)))
      words
  in
  let clean_ratio = Sensing.sense_ratio sp levels ~group:clean ~target in
  let noisy_ratio = Sensing.sense_ratio sp levels ~group:noisy ~target in
  Alcotest.(check bool) "noise hurts" true (noisy_ratio < clean_ratio /. 10.)

let test_sense_ratio_guards () =
  let group = [ (Word.of_string ~radix:2 "01", [| 0.; 0. |]) ] in
  Alcotest.(check bool) "single wire: infinite" true
    (Sensing.sense_ratio sp levels ~group
       ~target:(Word.of_string ~radix:2 "01")
    = infinity);
  Alcotest.check_raises "missing target"
    (Invalid_argument "Sensing.sense_ratio: target not in group") (fun () ->
      ignore
        (Sensing.sense_ratio sp levels ~group
           ~target:(Word.of_string ~radix:2 "10")))

let test_mc_sense_yield_tracks_window_model () =
  let a =
    Cave.analyze { Cave.default_config with Cave.n_wires = 12; code_length = 8 }
  in
  let rng = Rng.create ~seed:31 in
  let sense = Sensing.mc_sense_yield rng ~samples:150 a in
  (* The analog criterion is an independent model; it should land within
     ~15 points of the analytic window yield on the default platform. *)
  Alcotest.(check bool) "same ballpark" true
    (Float.abs (sense.Montecarlo.mean -. a.Cave.yield) < 0.15)

(* --- PLA --- *)

let fresh_memory seed =
  let config =
    {
      Array_sim.cave = { Cave.default_config with Cave.n_wires = 10 };
      raw_bits = 4096;
    }
  in
  Memory.create (Rng.create ~seed) config

let v i = { Pla.input = i; positive = true }
let nv i = { Pla.input = i; positive = false }

let program_exn memory ~inputs ~outputs =
  match Pla.program memory ~inputs ~outputs with
  | Ok pla -> pla
  | Error (`Not_enough_rows (need, have)) ->
    Alcotest.failf "rows: need %d have %d" need have
  | Error (`Not_enough_columns (need, have)) ->
    Alcotest.failf "cols: need %d have %d" need have

let test_pla_xor () =
  let memory = fresh_memory 41 in
  (* xor = a.!b + !a.b *)
  let pla =
    program_exn memory ~inputs:2
      ~outputs:[ [ [ v 0; nv 1 ]; [ nv 0; v 1 ] ] ]
  in
  Alcotest.(check int) "two terms" 2 (Pla.n_terms pla);
  List.iteri
    (fun bits row ->
      let a = bits land 1 = 1
      and b = bits land 2 = 2 in
      Alcotest.(check bool)
        (Printf.sprintf "xor %b %b" a b)
        (a <> b) row.(0))
    (Pla.truth_table pla)

let test_pla_majority_and_parity_share_terms () =
  let memory = fresh_memory 42 in
  let maj = [ [ v 0; v 1 ]; [ v 0; v 2 ]; [ v 1; v 2 ] ] in
  let all_ones = [ [ v 0; v 1; v 2 ] ] in
  let pla = program_exn memory ~inputs:3 ~outputs:[ maj; all_ones ] in
  Alcotest.(check int) "4 shared terms" 4 (Pla.n_terms pla);
  List.iteri
    (fun bits row ->
      let x = Array.init 3 (fun i -> bits land (1 lsl i) <> 0) in
      let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 x in
      Alcotest.(check bool) "majority" (ones >= 2) row.(0);
      Alcotest.(check bool) "and3" (ones = 3) row.(1))
    (Pla.truth_table pla)

let test_pla_constants () =
  let memory = fresh_memory 43 in
  (* Empty product = true; empty sum = false. *)
  let pla = program_exn memory ~inputs:1 ~outputs:[ [ [] ]; [] ] in
  List.iter
    (fun row ->
      Alcotest.(check bool) "true output" true row.(0);
      Alcotest.(check bool) "false output" false row.(1))
    (Pla.truth_table pla)

let test_pla_contradiction_is_false () =
  let memory = fresh_memory 44 in
  let pla = program_exn memory ~inputs:1 ~outputs:[ [ [ v 0; nv 0 ] ] ] in
  List.iter
    (fun row -> Alcotest.(check bool) "x and not x" false row.(0))
    (Pla.truth_table pla)

let test_pla_resource_errors () =
  let memory = fresh_memory 45 in
  let rows = Array.length (Defect_map.usable_indices (Memory.row_states memory)) in
  let too_many_terms =
    List.init (rows + 1) (fun t -> [ v (t mod 2) ])
  in
  (* Distinct single-literal products over 2 inputs collapse to <= 4, so
     build genuinely distinct ones over many inputs instead. *)
  ignore too_many_terms;
  let inputs = 40 in
  let distinct_terms = List.init (rows + 1) (fun t -> [ v (t mod inputs); v ((t + 1) mod inputs) ]) in
  (match Pla.program memory ~inputs:2 ~outputs:[] with
  | Ok pla -> Alcotest.(check int) "no terms" 0 (Pla.n_terms pla)
  | Error _ -> Alcotest.fail "trivial program must fit");
  match Pla.program memory ~inputs ~outputs:[ distinct_terms ] with
  | Error (`Not_enough_rows _ | `Not_enough_columns _) -> ()
  | Ok _ -> Alcotest.fail "expected a resource error"

let test_pla_evaluate_arity () =
  let memory = fresh_memory 46 in
  let pla = program_exn memory ~inputs:2 ~outputs:[ [ [ v 0 ] ] ] in
  Alcotest.check_raises "arity" (Invalid_argument "Pla.evaluate: input arity mismatch")
    (fun () -> ignore (Pla.evaluate pla [| true |]))

let prop_pla_matches_direct_evaluation =
  (* Random 3-input sums of products evaluated on-fabric match direct
     boolean evaluation. *)
  let gen_literal =
    QCheck.Gen.(map2 (fun input positive -> { Pla.input; positive }) (int_range 0 2) bool)
  in
  let gen_product = QCheck.Gen.(list_size (int_range 0 3) gen_literal) in
  let gen_sop = QCheck.Gen.(list_size (int_range 0 4) gen_product) in
  QCheck.Test.make ~name:"pla matches direct SoP evaluation" ~count:60
    (QCheck.make QCheck.Gen.(pair gen_sop (int_range 0 10_000)))
    (fun (sop, seed) ->
      let memory = fresh_memory seed in
      match Pla.program memory ~inputs:3 ~outputs:[ sop ] with
      | Error _ -> QCheck.assume_fail ()
      | Ok pla ->
        List.for_all
          (fun bits ->
            let x = Array.init 3 (fun i -> bits land (1 lsl i) <> 0) in
            let direct =
              List.exists
                (fun product ->
                  List.for_all
                    (fun l ->
                      if l.Pla.positive then x.(l.Pla.input)
                      else not x.(l.Pla.input))
                    product)
                sop
            in
            (Pla.evaluate pla x).(0) = direct)
          (List.init 8 Fun.id))

let suite =
  [
    Alcotest.test_case "address book coverage" `Quick test_address_book_coverage;
    Alcotest.test_case "address roundtrip" `Quick test_address_roundtrip;
    Alcotest.test_case "address structure" `Quick test_address_structure;
    Alcotest.test_case "addresses unique" `Quick test_addresses_unique;
    Alcotest.test_case "removed wires unaddressed" `Quick
      test_removed_wires_have_no_address;
    Alcotest.test_case "mesowire voltages" `Quick test_mesowire_voltages;
    Alcotest.test_case "conductance regimes" `Quick
      test_region_conductance_regimes;
    Alcotest.test_case "conductance continuity" `Quick
      test_conductance_continuous_at_threshold;
    Alcotest.test_case "series conductance" `Quick test_wire_conductance_series;
    Alcotest.test_case "sense ratio nominal" `Quick test_sense_ratio_nominal;
    Alcotest.test_case "sense ratio vs noise" `Quick
      test_sense_ratio_degrades_with_noise;
    Alcotest.test_case "sense ratio guards" `Quick test_sense_ratio_guards;
    Alcotest.test_case "sense yield ~ window yield" `Slow
      test_mc_sense_yield_tracks_window_model;
    Alcotest.test_case "pla xor" `Quick test_pla_xor;
    Alcotest.test_case "pla majority + and3" `Quick
      test_pla_majority_and_parity_share_terms;
    Alcotest.test_case "pla constants" `Quick test_pla_constants;
    Alcotest.test_case "pla contradiction" `Quick test_pla_contradiction_is_false;
    Alcotest.test_case "pla resource errors" `Quick test_pla_resource_errors;
    Alcotest.test_case "pla arity guard" `Quick test_pla_evaluate_arity;
    QCheck_alcotest.to_alcotest prop_pla_matches_direct_evaluation;
  ]
