(* Tests for the top-level design flow: Design, Figures, Optimizer —
   including the paper's qualitative results as assertions. *)

open Nanodec_codes
open Nanodec

let design ct m = Design.evaluate (Design.spec ~code_type:ct ~code_length:m ())

let test_design_report_fields () =
  let r = design Codebook.Balanced_gray 10 in
  Alcotest.(check int) "omega" 32 r.Design.omega;
  Alcotest.(check int) "phi = 2N for binary" 40 r.Design.phi;
  Alcotest.(check (float 1e-9)) "phi per wire" 2. r.Design.phi_per_wire;
  Alcotest.(check bool) "yield in range" true
    (r.Design.crossbar_yield > 0. && r.Design.crossbar_yield < 1.);
  Alcotest.(check bool) "bit area positive" true (r.Design.bit_area > 0.);
  Alcotest.(check bool) "sigma norm positive" true (r.Design.sigma_norm1 > 0.)

let test_design_spec_overrides () =
  let s =
    Design.spec ~radix:3 ~n_wires:12 ~code_type:Codebook.Gray ~code_length:6 ()
  in
  let r = Design.evaluate s in
  Alcotest.(check int) "ternary omega" 27 r.Design.omega;
  Alcotest.(check int) "n_wires honoured" 12
    r.Design.spec.Design.cave.Nanodec_crossbar.Cave.n_wires

let test_report_row_renders () =
  let r = design Codebook.Tree 8 in
  let row = Design.report_row r in
  Alcotest.(check bool) "mentions TC" true
    (String.length row > 10 && String.sub row 0 2 = "TC");
  Alcotest.(check bool) "header non-empty" true
    (String.length Design.report_header > 10)

(* --- Fig. 5 --- *)

let test_fig5_shape () =
  let points = Figures.fig5 () in
  Alcotest.(check int) "6 points" 6 (List.length points);
  let phi radix ct =
    match
      List.find_opt
        (fun (p : Figures.fig5_point) -> p.radix = radix && p.code_type = ct)
        points
    with
    | Some p -> p.phi
    | None -> Alcotest.failf "missing point n=%d" radix
  in
  (* Binary codes cost exactly 2N regardless of family. *)
  Alcotest.(check int) "binary TC" 20 (phi 2 Codebook.Tree);
  Alcotest.(check int) "binary GC" 20 (phi 2 Codebook.Gray);
  (* Multi-valued logic costs extra for tree codes; Gray recovers most. *)
  Alcotest.(check bool) "ternary TC above binary" true
    (phi 3 Codebook.Tree > 20);
  Alcotest.(check bool) "quaternary TC above binary" true
    (phi 4 Codebook.Tree > 20);
  Alcotest.(check bool) "GC below TC (ternary)" true
    (phi 3 Codebook.Gray < phi 3 Codebook.Tree);
  Alcotest.(check bool) "GC below TC (quaternary)" true
    (phi 4 Codebook.Gray < phi 4 Codebook.Tree)

(* --- Fig. 6 --- *)

let test_fig6_shape () =
  let surfaces = Figures.fig6 () in
  Alcotest.(check int) "6 surfaces" 6 (List.length surfaces);
  let find ct len =
    match
      List.find_opt
        (fun (s : Figures.fig6_surface) ->
          s.code_type = ct && s.code_length = len)
        surfaces
    with
    | Some s -> s
    | None -> Alcotest.failf "missing surface %s %d" (Codebook.name ct) len
  in
  (* BGC flattens the variability: lower mean and max than TC. *)
  let tc8 = find Codebook.Tree 8 and bgc8 = find Codebook.Balanced_gray 8 in
  Alcotest.(check bool) "BGC mean below TC" true
    (bgc8.Figures.mean_nu < tc8.Figures.mean_nu);
  Alcotest.(check bool) "BGC max below TC" true
    (bgc8.Figures.max_std < tc8.Figures.max_std);
  (* TC's worst wire accumulates ~N operations: sqrt(20) ~ 4.5 as in the
     paper's plots. *)
  Alcotest.(check bool) "TC max ~ sqrt(20)" true
    (tc8.Figures.max_std >= sqrt 19. && tc8.Figures.max_std <= sqrt 22.);
  (* Longer codes reduce the average variability. *)
  let tc10 = find Codebook.Tree 10 in
  Alcotest.(check bool) "TC L=10 below L=8" true
    (tc10.Figures.mean_nu < tc8.Figures.mean_nu)

(* --- Fig. 7 --- *)

let fig7 = lazy (Figures.fig7 ())

let yield_of ct m =
  match
    List.find_opt
      (fun (p : Figures.fig7_point) -> p.code_type = ct && p.code_length = m)
      (Lazy.force fig7)
  with
  | Some p -> p.Figures.crossbar_yield
  | None -> Alcotest.failf "missing fig7 point %s %d" (Codebook.name ct) m

let test_fig7_tc_improves_with_length () =
  Alcotest.(check bool) "TC 6<8<10" true
    (yield_of Codebook.Tree 6 < yield_of Codebook.Tree 8
    && yield_of Codebook.Tree 8 < yield_of Codebook.Tree 10)

let test_fig7_bgc_beats_tc () =
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Printf.sprintf "BGC > TC at %d" m)
        true
        (yield_of Codebook.Balanced_gray m > yield_of Codebook.Tree m))
    [ 6; 8; 10 ]

let test_fig7_ahc_beats_hc () =
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Printf.sprintf "AHC > HC at %d" m)
        true
        (yield_of Codebook.Arranged_hot m > yield_of Codebook.Hot m))
    [ 4; 6; 8 ]

let test_fig7_hc_peaks_early () =
  (* The paper: HC yield peaks around M = 6 and decays only slightly. *)
  Alcotest.(check bool) "HC 6 >> HC 4" true
    (yield_of Codebook.Hot 6 > 2. *. yield_of Codebook.Hot 4);
  let h6 = yield_of Codebook.Hot 6 and h8 = yield_of Codebook.Hot 8 in
  Alcotest.(check bool) "HC flat past 6" true
    (Float.abs (h8 -. h6) /. h6 < 0.15)

(* --- Fig. 8 --- *)

let fig8 = lazy (Figures.fig8 ())

let bit_area_of ct m =
  match
    List.find_opt
      (fun (p : Figures.fig8_point) -> p.code_type = ct && p.code_length = m)
      (Lazy.force fig8)
  with
  | Some p -> p.Figures.bit_area
  | None -> Alcotest.failf "missing fig8 point %s %d" (Codebook.name ct) m

let test_fig8_tc_area_shrinks_with_length () =
  Alcotest.(check bool) "TC 10 < 8 < 6" true
    (bit_area_of Codebook.Tree 10 < bit_area_of Codebook.Tree 8
    && bit_area_of Codebook.Tree 8 < bit_area_of Codebook.Tree 6)

let test_fig8_bgc_densest_of_tree_family () =
  List.iter
    (fun m ->
      let tc = bit_area_of Codebook.Tree m
      and gc = bit_area_of Codebook.Gray m
      and bgc = bit_area_of Codebook.Balanced_gray m in
      Alcotest.(check bool) (Printf.sprintf "BGC < GC < TC at %d" m) true
        (bgc < gc && gc < tc))
    [ 6; 8; 10 ]

let test_fig8_minimum_near_paper () =
  (* Paper: best bit area ~169 nm^2 (BGC M=10), AHC close behind. *)
  let best =
    List.fold_left
      (fun acc (p : Figures.fig8_point) -> Float.min acc p.Figures.bit_area)
      infinity (Lazy.force fig8)
  in
  Alcotest.(check bool) "minimum within [140, 220] nm^2" true
    (best > 140. && best < 220.)

(* --- extension: multi-valued designs --- *)

let test_multivalued_gray_wins_everywhere () =
  let points = Figures.multivalued_designs () in
  List.iter
    (fun radix ->
      List.iter
        (fun m ->
          let find ct =
            List.find_opt
              (fun (p : Figures.multivalued_point) ->
                p.radix = radix && p.code_type = ct && p.code_length = m)
              points
          in
          match (find Codebook.Tree, find Codebook.Gray) with
          | Some tc, Some gc ->
            Alcotest.(check bool)
              (Printf.sprintf "GC yield >= TC at n=%d M=%d" radix m)
              true
              (gc.Figures.crossbar_yield >= tc.Figures.crossbar_yield -. 1e-12);
            Alcotest.(check bool)
              (Printf.sprintf "GC Phi <= TC at n=%d M=%d" radix m)
              true
              (gc.Figures.phi <= tc.Figures.phi)
          | _, _ -> ())
        [ 4; 6; 8; 10; 12 ])
    [ 2; 3; 4 ]

let test_multivalued_binary_wins_at_paper_noise () =
  let points = Figures.multivalued_designs () in
  let best_bit radix =
    List.fold_left
      (fun acc (p : Figures.multivalued_point) ->
        if p.radix = radix then Float.min acc p.bit_area else acc)
      infinity points
  in
  Alcotest.(check bool) "binary beats ternary" true (best_bit 2 < best_bit 3);
  Alcotest.(check bool) "ternary beats quaternary" true
    (best_bit 3 < best_bit 4)

(* --- headlines --- *)

let headlines = lazy (Figures.headlines ())

let between name lo hi x =
  if x < lo || x > hi then
    Alcotest.failf "%s = %.3f outside [%g, %g]" name x lo hi

let test_headlines_in_paper_bands () =
  let h = Lazy.force headlines in
  between "gray step saving (paper 17%)" 0.10 0.30 h.Figures.gray_step_saving_ternary;
  between "multivalued overhead (paper ~20%)" 0.10 0.50
    h.Figures.tree_multivalued_overhead;
  between "variability saving (paper 18%)" 0.10 0.50 h.Figures.variability_saving;
  between "yield gain length (paper ~40pt)" 0.20 0.50 h.Figures.yield_gain_length_tc;
  between "BGC vs TC (paper 42%)" 0.20 0.60 h.Figures.yield_gain_bgc_vs_tc;
  between "AHC vs HC (paper 19%)" 0.05 0.30 h.Figures.yield_gain_ahc_vs_hc;
  between "area saving length (paper 51%)" 0.40 0.70 h.Figures.area_saving_tc_length;
  between "BGC density (paper ~30%)" 0.15 0.45 h.Figures.density_gain_bgc_vs_tc;
  between "AHC area (paper 13%)" 0.05 0.25 h.Figures.area_saving_ahc_vs_hc;
  let area, _, _ = h.Figures.best_bit_area in
  between "best bit area (paper 169)" 140. 220. area

let test_headline_winner_is_optimized_code () =
  let _, ct, _ = (Lazy.force headlines).Figures.best_bit_area in
  Alcotest.(check bool) "BGC or AHC wins" true
    (ct = Codebook.Balanced_gray || ct = Codebook.Arranged_hot)

(* --- optimizer --- *)

let test_optimizer_best_yield_is_bgc () =
  let r = Optimizer.best Optimizer.Max_yield in
  Alcotest.(check string) "BGC wins yield" "BGC"
    (Codebook.name r.Design.spec.Design.cave.Nanodec_crossbar.Cave.code_type)

let test_optimizer_best_area_is_optimized () =
  let r = Optimizer.best Optimizer.Min_bit_area in
  let ct = r.Design.spec.Design.cave.Nanodec_crossbar.Cave.code_type in
  Alcotest.(check bool) "optimized family wins area" true
    (ct = Codebook.Balanced_gray || ct = Codebook.Arranged_hot)

let test_optimizer_min_fabrication_prefers_low_phi () =
  let r = Optimizer.best Optimizer.Min_fabrication in
  (* Binary codes all have Phi = 2N = 40: the winner must achieve it. *)
  Alcotest.(check int) "Phi minimal" 40 r.Design.phi

let test_optimizer_sweep_covers_valid_candidates () =
  let reports = Optimizer.sweep () in
  (* 5 families x lengths {4,6,8,10,12}; length 4 invalid for reflected
     families? (4 is even so valid) -> all 25 valid for binary. *)
  Alcotest.(check int) "25 designs" 25 (List.length reports)

let test_optimizer_ternary_sweep_robust () =
  (* Regression: ternary candidates include balanced-Gray and arranged-hot
     spaces beyond the exact searches; the sweep must skip them instead of
     raising. *)
  let spec =
    Design.spec ~radix:3 ~code_type:Codebook.Gray ~code_length:6 ()
  in
  let reports = Optimizer.sweep ~spec () in
  Alcotest.(check bool) "some designs survive" true (List.length reports >= 10);
  List.iter
    (fun (r : Design.report) ->
      Alcotest.(check int) "ternary radix" 3
        r.Design.spec.Design.cave.Nanodec_crossbar.Cave.radix)
    reports;
  let winner = Optimizer.best ~spec Optimizer.Max_yield in
  (* Gray-family codes dominate the ternary space too. *)
  let ct = winner.Design.spec.Design.cave.Nanodec_crossbar.Cave.code_type in
  Alcotest.(check bool) "gray-ish winner" true
    (ct = Codebook.Gray || ct = Codebook.Balanced_gray
    || ct = Codebook.Arranged_hot)

let test_optimizer_scores_order () =
  let a = design Codebook.Balanced_gray 10 in
  let b = design Codebook.Tree 6 in
  Alcotest.(check bool) "yield score orders" true
    (Optimizer.score Optimizer.Max_yield a < Optimizer.score Optimizer.Max_yield b);
  Alcotest.(check bool) "area score orders" true
    (Optimizer.score Optimizer.Min_bit_area a
    < Optimizer.score Optimizer.Min_bit_area b)

let test_pareto_front () =
  let reports = Optimizer.sweep () in
  let front = Optimizer.pareto_yield_area reports in
  Alcotest.(check bool) "front non-empty" true (List.length front > 0);
  Alcotest.(check bool) "front no larger than sweep" true
    (List.length front <= List.length reports);
  (* No front member dominates another. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if
            a != b
            && a.Design.crossbar_yield >= b.Design.crossbar_yield
            && a.Design.bit_area < b.Design.bit_area
          then Alcotest.fail "dominated design on front")
        front)
    front

let suite =
  [
    Alcotest.test_case "design report fields" `Quick test_design_report_fields;
    Alcotest.test_case "spec overrides" `Quick test_design_spec_overrides;
    Alcotest.test_case "report row renders" `Quick test_report_row_renders;
    Alcotest.test_case "Fig 5 shape" `Quick test_fig5_shape;
    Alcotest.test_case "Fig 6 shape" `Quick test_fig6_shape;
    Alcotest.test_case "Fig 7: TC grows with M" `Quick
      test_fig7_tc_improves_with_length;
    Alcotest.test_case "Fig 7: BGC > TC" `Quick test_fig7_bgc_beats_tc;
    Alcotest.test_case "Fig 7: AHC > HC" `Quick test_fig7_ahc_beats_hc;
    Alcotest.test_case "Fig 7: HC peaks early" `Quick test_fig7_hc_peaks_early;
    Alcotest.test_case "Fig 8: TC area shrinks" `Quick
      test_fig8_tc_area_shrinks_with_length;
    Alcotest.test_case "Fig 8: BGC densest" `Quick
      test_fig8_bgc_densest_of_tree_family;
    Alcotest.test_case "Fig 8: minimum near paper" `Quick
      test_fig8_minimum_near_paper;
    Alcotest.test_case "multivalued: Gray wins" `Slow
      test_multivalued_gray_wins_everywhere;
    Alcotest.test_case "multivalued: binary wins" `Slow
      test_multivalued_binary_wins_at_paper_noise;
    Alcotest.test_case "headlines in paper bands" `Slow
      test_headlines_in_paper_bands;
    Alcotest.test_case "headline winner optimized" `Slow
      test_headline_winner_is_optimized_code;
    Alcotest.test_case "optimizer: yield -> BGC" `Slow
      test_optimizer_best_yield_is_bgc;
    Alcotest.test_case "optimizer: area -> optimized" `Slow
      test_optimizer_best_area_is_optimized;
    Alcotest.test_case "optimizer: min fabrication" `Slow
      test_optimizer_min_fabrication_prefers_low_phi;
    Alcotest.test_case "optimizer sweep size" `Slow
      test_optimizer_sweep_covers_valid_candidates;
    Alcotest.test_case "optimizer: ternary sweep robust" `Slow
      test_optimizer_ternary_sweep_robust;
    Alcotest.test_case "optimizer scores" `Quick test_optimizer_scores_order;
    Alcotest.test_case "pareto front" `Slow test_pareto_front;
  ]
