(* The compiled MC kernel layer (Kernel / Rng.Fast / Workspace) and the
   satellite fast paths of the same PR: sort-based pass extraction,
   sorted-array code metrics, precomputed-nu variability.  The central
   claim everywhere is bit-for-bit equivalence with the slower reference
   implementation. *)

open Nanodec_numerics
open Nanodec_codes
open Nanodec_mspt
open Nanodec_crossbar
module Run_ctx = Nanodec_parallel.Run_ctx
module Fault = Nanodec_fault.Fault

let estimate : Montecarlo.estimate Alcotest.testable =
  Alcotest.testable Montecarlo.pp (fun a b -> a = b)

let analysis_of ?(n_wires = 20) ct m =
  Cave.analyze
    { Cave.default_config with Cave.code_type = ct; code_length = m; n_wires }

let families = [ (Codebook.Tree, 8); (Codebook.Balanced_gray, 10);
                 (Codebook.Hot, 4); (Codebook.Arranged_hot, 6) ]

(* --- kernel == reference draw, bit for bit --- *)

let test_kernel_equals_reference () =
  List.iter
    (fun (ct, m) ->
      let a = analysis_of ct m in
      List.iter
        (fun domains ->
          Run_ctx.with_ctx ~domains ~warn:false (fun ctx ->
              let kernel =
                Cave.mc_yield_window_par ~ctx (Rng.create ~seed:2009)
                  ~samples:300 a
              in
              let reference =
                Cave.mc_yield_window_reference ~ctx (Rng.create ~seed:2009)
                  ~samples:300 a
              in
              Alcotest.check estimate
                (Printf.sprintf "%s M=%d, domains=%d" (Codebook.name ct) m
                   domains)
                reference kernel))
        [ 1; 4 ])
    families

let test_kernel_equals_reference_under_faults () =
  let a = analysis_of Codebook.Balanced_gray 10 in
  let plan () =
    Fault.create
      (Fault.parse_exn
         "seed=7;pool.chunk:crash:p=0.3;mc.sample_batch:crash:p=0.2")
  in
  List.iter
    (fun domains ->
      let run ?fault estimator =
        Run_ctx.with_ctx ~domains ?fault ~warn:false (fun ctx ->
            estimator ctx (Rng.create ~seed:11) a)
      in
      let kernelized ctx rng a =
        Cave.mc_yield_window_par ~ctx rng ~samples:250 a
      in
      let reference ctx rng a =
        Cave.mc_yield_window_reference ~ctx rng ~samples:250 a
      in
      let clean = run kernelized in
      Alcotest.check estimate
        (Printf.sprintf "inert engine, domains=%d" domains)
        clean
        (run ~fault:(Fault.inert ()) kernelized);
      Alcotest.check estimate
        (Printf.sprintf "crash plan, domains=%d" domains)
        clean
        (run ~fault:(plan ()) kernelized);
      Alcotest.check estimate
        (Printf.sprintf "crash plan vs reference, domains=%d" domains)
        (run reference)
        (run ~fault:(plan ()) kernelized))
    [ 1; 4 ]

let test_sequential_kernel_path () =
  (* mc_yield_window now runs the kernel on the single-stream estimator;
     drawing through the kernel by hand must reproduce it exactly. *)
  let a = analysis_of Codebook.Tree 8 in
  let k = Cave.kernel_of_analysis a in
  let direct = Cave.mc_yield_window (Rng.create ~seed:5) ~samples:150 a in
  let manual =
    Montecarlo.estimate (Rng.create ~seed:5) ~samples:150 (Kernel.draw k)
  in
  Alcotest.check estimate "sequential path" direct manual

let test_kernel_draw_accounting () =
  (* For a cave analysis every implant draw maps to one doping operation,
     so the compiled program size must equal sum(nu) plus (sigma_base <>
     0) one draw per cell of the N x M plane. *)
  List.iter
    (fun (ct, m) ->
      let a = analysis_of ct m in
      let k = Cave.kernel_of_analysis a in
      let cells = a.Cave.config.Cave.n_wires * a.Cave.config.Cave.code_length in
      Alcotest.(check int)
        (Printf.sprintf "%s M=%d draws" (Codebook.name ct) m)
        (Imatrix.sum a.Cave.nu
        + if a.Cave.config.Cave.sigma_base <> 0. then cells else 0)
        (Kernel.draws_per_sample k))
    families

let test_fast_mirror_stream () =
  (* Rng.Fast must replay the generator's exact Gaussian stream through
     load/draw/store cycles of every length, including the polar spare
     cached across a store/load boundary. *)
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  let fast = Rng.Fast.create () in
  for k = 0 to 16 do
    let xs = Array.init k (fun _ -> Rng.gaussian ~sigma:0.05 a) in
    Rng.Fast.load fast b;
    let ys = Array.init k (fun _ -> 0.05 *. Rng.Fast.gaussian_std fast) in
    Rng.Fast.store fast b;
    Alcotest.(check bool)
      (Printf.sprintf "gaussian run of %d" k)
      true (xs = ys);
    Alcotest.(check bool)
      (Printf.sprintf "uniform draw after run of %d" k)
      true
      (Rng.float a = Rng.float b)
  done

(* --- satellite: sort-based pass extraction pins the historical order --- *)

let test_pass_order_regression () =
  (* Hand-built step matrix; the pass list (order included!) is part of
     the MC draw order, so it is pinned exactly: rows ascending, and
     within a row the distinct doses in reverse first-occurrence order —
     what the historical kept-list scan produced. *)
  let s =
    Fmatrix.init ~rows:3 ~cols:4 (fun i j ->
        [|
          [| 2.; 3.; 2.; 0. |];
          [| 0.; 7.; 7.; 2. |];
          [| 5.; 5.; 5.; 5. |];
        |].(i).(j))
  in
  let expected =
    [
      { Process.after_wire = 0; dose = 3.; mask = [| false; true; false; false |] };
      { Process.after_wire = 0; dose = 2.; mask = [| true; false; true; false |] };
      { Process.after_wire = 1; dose = 2.; mask = [| false; false; false; true |] };
      { Process.after_wire = 1; dose = 7.; mask = [| false; true; true; false |] };
      { Process.after_wire = 2; dose = 5.; mask = [| true; true; true; true |] };
    ]
  in
  Alcotest.(check bool)
    "pinned pass list" true
    (Process.passes_of_step_matrix s = expected);
  Alcotest.(check int) "distinct doses" 4
    (Process.distinct_doses (Process.passes_of_step_matrix s))

let test_pass_eps_merge () =
  (* Values within eps of an earlier dose merge into it: the pass carries
     the first-occurrence value and a mask covering both columns. *)
  let s =
    Fmatrix.init ~rows:1 ~cols:3 (fun _ j -> [| 1.0; 1.0 +. 5e-10; 2.0 |].(j))
  in
  match Process.passes_of_step_matrix s with
  | [ p2; p1 ] ->
    (* reverse first-occurrence order within the row: 2.0 before 1.0 *)
    Alcotest.(check (float 0.)) "distinct dose" 2.0 p2.Process.dose;
    Alcotest.(check (float 0.)) "merged dose" 1.0 p1.Process.dose;
    Alcotest.(check bool) "merged mask" true
      (p1.Process.mask = [| true; true; false |])
  | passes -> Alcotest.failf "expected 2 passes, got %d" (List.length passes)

(* --- satellite: metrics from one sorted array --- *)

let test_metrics_duplicates () =
  let w digits = Word.make ~radix:2 digits in
  let m =
    Metrics.of_words [ w [| 0; 0 |]; w [| 0; 1 |]; w [| 0; 0 |]; w [| 1; 1 |] ]
  in
  Alcotest.(check int) "n_words" 4 m.Metrics.n_words;
  Alcotest.(check int) "distinct" 3 m.Metrics.distinct_words;
  Alcotest.(check int) "min pairwise" 1 m.Metrics.min_pairwise_distance;
  let far = Metrics.of_words [ w [| 0; 0 |]; w [| 1; 1 |] ] in
  Alcotest.(check int) "distance-2 pair" 2 far.Metrics.min_pairwise_distance;
  let single = Metrics.of_words [ w [| 1; 0 |]; w [| 1; 0 |] ] in
  Alcotest.(check int) "all equal: distinct" 1 single.Metrics.distinct_words;
  Alcotest.(check int) "all equal: min pairwise" 0
    single.Metrics.min_pairwise_distance

let test_metrics_matches_bruteforce () =
  (* The sorted-array computation equals the quadratic definition on a
     real codebook with duplicates appended. *)
  let words =
    Codebook.sequence ~radix:2 ~length:6 ~count:12 Codebook.Balanced_gray
  in
  let words = words @ List.filteri (fun i _ -> i mod 3 = 0) words in
  let m = Metrics.of_words words in
  let arr = Array.of_list words in
  let n = Array.length arr in
  let distinct = List.length (List.sort_uniq Word.compare words) in
  let best = ref (Word.length arr.(0)) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (Word.equal arr.(i) arr.(j)) then
        best := Stdlib.min !best (Word.hamming_distance arr.(i) arr.(j))
    done
  done;
  Alcotest.(check int) "distinct" distinct m.Metrics.distinct_words;
  Alcotest.(check int) "min pairwise" !best m.Metrics.min_pairwise_distance

(* --- satellite: precomputed-nu fast paths --- *)

let test_variability_nu_passthrough () =
  let p =
    Pattern.of_codebook ~radix:2 ~length:8 ~n_wires:12 Codebook.Balanced_gray
  in
  let nu = Variability.nu_matrix p in
  Alcotest.(check (float 0.)) "average_nu" (Variability.average_nu p)
    (Variability.average_nu ~nu p);
  Alcotest.(check (float 0.)) "region_std"
    (Variability.region_std ~sigma_t:0.05 p ~wire:3 ~region:5)
    (Variability.region_std ~nu ~sigma_t:0.05 p ~wire:3 ~region:5);
  Alcotest.(check (float 0.)) "sigma_norm1"
    (Variability.sigma_norm1 ~sigma_t:0.05 p)
    (Variability.sigma_norm1 ~nu ~sigma_t:0.05 p);
  Alcotest.(check bool) "normalized_std_matrix" true
    (Fmatrix.equal
       (Variability.normalized_std_matrix p)
       (Variability.normalized_std_matrix ~nu p))

let suite =
  [
    Alcotest.test_case "kernel equals reference (domains 1/4)" `Quick
      test_kernel_equals_reference;
    Alcotest.test_case "kernel equals reference under fault plans" `Quick
      test_kernel_equals_reference_under_faults;
    Alcotest.test_case "sequential estimator runs the kernel" `Quick
      test_sequential_kernel_path;
    Alcotest.test_case "compiled program size equals sum(nu)" `Quick
      test_kernel_draw_accounting;
    Alcotest.test_case "Rng.Fast mirrors the gaussian stream" `Quick
      test_fast_mirror_stream;
    Alcotest.test_case "pass order regression (sort-based dedup)" `Quick
      test_pass_order_regression;
    Alcotest.test_case "pass eps merge keeps first occurrence" `Quick
      test_pass_eps_merge;
    Alcotest.test_case "metrics with duplicate words" `Quick
      test_metrics_duplicates;
    Alcotest.test_case "metrics equal brute force" `Quick
      test_metrics_matches_bruteforce;
    Alcotest.test_case "variability accepts precomputed nu" `Quick
      test_variability_nu_passthrough;
  ]
