(* Tests for the crossbar/decoder simulator: geometry, addressing
   semantics, cave yield and the full array model. *)

open Nanodec_codes
open Nanodec_numerics
open Nanodec_physics
open Nanodec_crossbar

let rules = Geometry.default_rules

(* --- geometry --- *)

let test_wire_positions () =
  Alcotest.(check (float 1e-9)) "wire 0" 5. (Geometry.wire_position rules 0);
  Alcotest.(check (float 1e-9)) "wire 3" 35. (Geometry.wire_position rules 3)

let test_pad_width_clamps () =
  (* min(Omega, N) * PN clamped to [1.5 PL, Omega * PN]. *)
  Alcotest.(check (float 1e-9)) "small omega hits litho floor" 48.
    (Geometry.pad_width rules ~omega:3 ~n_wires:20);
  Alcotest.(check (float 1e-9)) "nominal" 160.
    (Geometry.pad_width rules ~omega:16 ~n_wires:20);
  Alcotest.(check (float 1e-9)) "capped by cave size" 200.
    (Geometry.pad_width rules ~omega:32 ~n_wires:20)

let test_every_wire_classified_once () =
  List.iter
    (fun (omega, n_wires) ->
      let layout = Geometry.place rules ~omega ~n_wires in
      Alcotest.(check int)
        (Printf.sprintf "omega=%d N=%d partitions" omega n_wires)
        n_wires
        (Geometry.n_addressable layout + Geometry.n_shared layout
        + Geometry.n_excess layout))
    [ (8, 20); (16, 20); (32, 20); (6, 20); (4, 40); (70, 20) ]

let test_single_pad_when_omega_large () =
  let layout = Geometry.place rules ~omega:64 ~n_wires:20 in
  Alcotest.(check int) "one pad" 1 layout.Geometry.n_pads;
  Alcotest.(check int) "no shared" 0 (Geometry.n_shared layout);
  Alcotest.(check int) "all addressable" 20 (Geometry.n_addressable layout)

let test_pads_respect_omega_capacity () =
  List.iter
    (fun (omega, n_wires) ->
      let layout = Geometry.place rules ~omega ~n_wires in
      let per_pad = Array.make layout.Geometry.n_pads 0 in
      Array.iter
        (fun status ->
          match status with
          | Geometry.Addressable k -> per_pad.(k) <- per_pad.(k) + 1
          | Geometry.Shared_between_pads _ | Geometry.Excess_in_pad _ -> ())
        layout.Geometry.statuses;
      Array.iteri
        (fun k count ->
          if count > omega then
            Alcotest.failf "pad %d holds %d > omega %d" k count omega)
        per_pad)
    [ (3, 20); (6, 20); (8, 20); (16, 40); (4, 30) ]

let test_excess_appears_when_omega_small () =
  (* Omega = 2 with a small overlay: the 48 nm minimum pad solely owns
     ~4 wires, of which only 2 can carry distinct codes. *)
  let tight = { rules with Geometry.pad_overlap = 4. } in
  let layout = Geometry.place tight ~omega:2 ~n_wires:20 in
  Alcotest.(check bool) "some excess" true (Geometry.n_excess layout > 0)

let test_shared_wires_under_overlap () =
  let layout = Geometry.place rules ~omega:8 ~n_wires:20 in
  Alcotest.(check bool) "pads overlap => shared wires" true
    (Geometry.n_shared layout > 0)

let test_overlap_guard () =
  let bad = { rules with Geometry.pad_overlap = 40. } in
  Alcotest.check_raises "overlap >= PL"
    (Invalid_argument "Geometry.place: overlap must be in [0, PL)") (fun () ->
      ignore (Geometry.place bad ~omega:8 ~n_wires:20))

let test_decoder_extent () =
  Alcotest.(check (float 1e-9)) "M=10" ((10. *. 32.) +. 96.)
    (Geometry.decoder_extent rules ~code_length:10)

(* --- addressing --- *)

let levels = Vt_levels.make ~radix:2 ()

let test_applied_voltage_headroom () =
  let va0 = Addressing.applied_voltage levels 0 in
  Alcotest.(check (float 1e-9)) "digit 0" (0.1 +. 0.4) va0;
  Alcotest.(check bool) "digit 1 higher" true
    (Addressing.applied_voltage levels 1 > va0)

let word s = Word.of_string ~radix:2 s
let word3 s = Word.of_string ~radix:3 s

let test_conducts_nominal () =
  Alcotest.(check bool) "self address" true
    (Addressing.conducts_nominal ~address:(word "0110") (word "0110"));
  Alcotest.(check bool) "dominated pattern conducts" true
    (Addressing.conducts_nominal ~address:(word "0110") (word "0100"));
  Alcotest.(check bool) "blocked" false
    (Addressing.conducts_nominal ~address:(word "0110") (word "1110"))

let test_reflected_tree_uniquely_addressable () =
  List.iter
    (fun ct ->
      let group = Codebook.sequence ~radix:2 ~length:8 ~count:16 ct in
      Alcotest.(check bool)
        (Printf.sprintf "%s unique" (Codebook.name ct))
        true
        (Addressing.uniquely_addressable group))
    Codebook.all_types

let test_reflected_ternary_uniquely_addressable () =
  let group = Codebook.sequence ~radix:3 ~length:6 ~count:27 Codebook.Gray in
  Alcotest.(check bool) "ternary Gray unique" true
    (Addressing.uniquely_addressable group)

let test_unreflected_tree_is_not_uniquely_addressable () =
  (* The motivating counter-example: without reflection, 00 dominates
     nothing but is dominated by every other word's address. *)
  let group = Tree_code.words ~radix:2 ~base_len:4 ~count:16 in
  Alcotest.(check bool) "raw counting code fails" false
    (Addressing.uniquely_addressable group)

let test_hot_code_unique_without_reflection () =
  let group = Hot_code.all ~radix:3 ~length:6 in
  Alcotest.(check bool) "ternary hot unique" true
    (Addressing.uniquely_addressable group)

let test_addressed_nominal_identifies_wire () =
  let group = Codebook.sequence ~radix:2 ~length:6 ~count:8 Codebook.Gray in
  List.iter
    (fun target ->
      match Addressing.addressed_nominal ~group ~address:target with
      | Some w ->
        Alcotest.(check string) "addressed itself" (Word.to_string target)
          (Word.to_string w)
      | None -> Alcotest.failf "no wire for %s" (Word.to_string target))
    group

let test_conducts_with_noise () =
  let target = word "01" in
  let address = word "01" in
  (* Nominal: conducts; +0.5 V on a region blocks it. *)
  Alcotest.(check bool) "no noise" true
    (Addressing.conducts levels ~address ~vt_offsets:[| 0.; 0. |] target);
  Alcotest.(check bool) "large upward shift blocks" false
    (Addressing.conducts levels ~address ~vt_offsets:[| 0.; 0.5 |] target)

let test_noise_can_unblock_other_wire () =
  (* Word 10 does not conduct under address 01 nominally; a large negative
     V_T shift on its first region turns it on and destroys uniqueness. *)
  let group_noisy =
    [ (word "01", [| 0.; 0. |]); (word "10", [| -0.9; 0. |]) ]
  in
  Alcotest.(check bool) "uniqueness destroyed" false
    (Addressing.addressed_with_noise levels ~group:group_noisy
       ~address:(word "01") ~target:(word "01"));
  let group_clean = [ (word "01", [| 0.; 0. |]); (word "10", [| 0.; 0. |]) ] in
  Alcotest.(check bool) "clean case addressed" true
    (Addressing.addressed_with_noise levels ~group:group_clean
       ~address:(word "01") ~target:(word "01"))

let test_paper_reflection_example_addressing () =
  (* The reflected words from the paper's Section 2.3 are mutually
     non-dominating. *)
  let ws = List.map word3 [ "00002222"; "00012221"; "00102212" ] in
  Alcotest.(check bool) "unique" true (Addressing.uniquely_addressable ws)

(* --- cave --- *)

let config = Cave.default_config

let test_cave_analysis_basics () =
  let a = Cave.analyze config in
  Alcotest.(check int) "omega" 32 a.Cave.omega;
  Alcotest.(check int) "probabilities per wire" 20
    (Array.length a.Cave.wire_probability);
  Alcotest.(check bool) "yield in (0,1]" true
    (a.Cave.yield > 0. && a.Cave.yield <= 1.);
  Array.iter
    (fun p ->
      if p < 0. || p > 1. then Alcotest.failf "probability %g out of range" p)
    a.Cave.wire_probability

let test_cave_removed_wires_probability_zero () =
  let small_code = { config with Cave.code_type = Codebook.Tree; code_length = 6 } in
  let a = Cave.analyze small_code in
  Array.iteri
    (fun i status ->
      match status with
      | Geometry.Shared_between_pads _ | Geometry.Excess_in_pad _ ->
        Alcotest.(check (float 0.))
          (Printf.sprintf "removed wire %d" i)
          0.
          a.Cave.wire_probability.(i)
      | Geometry.Addressable _ -> ())
    a.Cave.layout.Geometry.statuses

let test_cave_yield_decreases_with_sigma () =
  let yield_at sigma_t =
    (Cave.analyze { config with Cave.sigma_t = sigma_t }).Cave.yield
  in
  Alcotest.(check bool) "monotone" true (yield_at 0.02 > yield_at 0.10)

let test_cave_yield_increases_with_margin () =
  let yield_at margin_fraction =
    (Cave.analyze { config with Cave.margin_fraction }).Cave.yield
  in
  Alcotest.(check bool) "monotone" true (yield_at 0.45 > yield_at 0.2)

let test_cave_bgc_beats_tree () =
  let yield_of code_type =
    (Cave.analyze { config with Cave.code_type; code_length = 8 }).Cave.yield
  in
  Alcotest.(check bool) "BGC > GC" true
    (yield_of Codebook.Balanced_gray > yield_of Codebook.Gray);
  Alcotest.(check bool) "GC > TC" true
    (yield_of Codebook.Gray > yield_of Codebook.Tree)

let test_wire_window_probability () =
  Alcotest.(check (float 1e-9)) "empty product" 1.
    (Cave.wire_window_probability ~sigma_t:0.05 ~sigma_base:0. ~window:0.1
       ~nu_row:[||]);
  let single =
    Cave.wire_window_probability ~sigma_t:0.05 ~sigma_base:0. ~window:0.1
      ~nu_row:[| 4 |]
  in
  Alcotest.(check (float 1e-9)) "matches erf"
    (Special.normal_interval_probability ~sigma:0.1 ~half_width:0.1)
    single;
  let with_base =
    Cave.wire_window_probability ~sigma_t:0.05 ~sigma_base:0.1 ~window:0.1
      ~nu_row:[| 4 |]
  in
  Alcotest.(check bool) "base variance lowers probability" true
    (with_base < single)

let test_cave_invalid_configs () =
  Alcotest.check_raises "bad sigma" (Invalid_argument "Cave: sigma_t must be positive")
    (fun () -> ignore (Cave.analyze { config with Cave.sigma_t = 0. }));
  Alcotest.check_raises "bad length"
    (Invalid_argument "Cave: reflected codes need an even length >= 2, got 7")
    (fun () -> ignore (Cave.analyze { config with Cave.code_length = 7 }))

let test_mc_window_agrees_with_analytic () =
  (* The analytic yield must fall within the Monte-Carlo 99.99% band for
     every code family; 6-sigma slack keeps the test robust. *)
  let rng = Rng.create ~seed:7 in
  List.iter
    (fun (code_type, code_length) ->
      let a =
        Cave.analyze { config with Cave.n_wires = 12; code_type; code_length }
      in
      let e = Cave.mc_yield_window (Rng.split rng) ~samples:400 a in
      let slack = 6. *. e.Montecarlo.std_error in
      if
        a.Cave.yield < e.Montecarlo.mean -. slack
        || a.Cave.yield > e.Montecarlo.mean +. slack
      then
        Alcotest.failf "%s M=%d: analytic %g vs MC %g +/- %g"
          (Codebook.name code_type) code_length a.Cave.yield
          e.Montecarlo.mean e.Montecarlo.std_error)
    [
      (Codebook.Tree, 8);
      (Codebook.Gray, 8);
      (Codebook.Balanced_gray, 10);
      (Codebook.Hot, 6);
      (Codebook.Arranged_hot, 6);
    ]

let test_mc_functional_close_to_window () =
  (* The electrical-uniqueness yield should track the window model within
     a few points (the window test is the paper's conservative proxy). *)
  let a = Cave.analyze { config with Cave.n_wires = 12; code_length = 8 } in
  let rng = Rng.create ~seed:11 in
  let w = Cave.mc_yield_window rng ~samples:200 a in
  let f = Cave.mc_yield_functional rng ~samples:200 a in
  Alcotest.(check bool) "within 10 points" true
    (Float.abs (w.Montecarlo.mean -. f.Montecarlo.mean) < 0.10)

let test_spread_placement_beats_centered () =
  (* The paper spreads V_T levels over the full 0-1 V range; the wider
     separation gives a wider addressability window and a better yield
     than centred-in-bin placement. *)
  let yield_with placement =
    (Cave.analyze { config with Cave.placement }).Cave.yield
  in
  Alcotest.(check bool) "spread wins" true
    (yield_with (Vt_levels.Spread 0.1) > yield_with Vt_levels.Centered)

(* --- array sim --- *)

let test_array_report_consistency () =
  let r = Array_sim.evaluate Array_sim.default_config in
  Alcotest.(check int) "wires per layer" 363 r.Array_sim.wires_per_layer;
  Alcotest.(check int) "caves" 10 r.Array_sim.caves_per_layer;
  Alcotest.(check (float 1e-9)) "Y^2"
    (r.Array_sim.cave_yield *. r.Array_sim.cave_yield)
    r.Array_sim.crossbar_yield;
  Alcotest.(check (float 1e-6)) "D_EFF"
    (float_of_int 131072 *. r.Array_sim.crossbar_yield)
    r.Array_sim.effective_bits;
  Alcotest.(check (float 1e-6)) "bit area"
    (r.Array_sim.area /. r.Array_sim.effective_bits)
    r.Array_sim.bit_area;
  Alcotest.(check bool) "side sane" true
    (r.Array_sim.side > 3000. && r.Array_sim.side < 10000.)

let test_array_larger_memory_larger_side () =
  let small = Array_sim.evaluate Array_sim.default_config in
  let big =
    Array_sim.evaluate { Array_sim.default_config with raw_bits = 4 * 131072 }
  in
  Alcotest.(check bool) "side grows" true
    (big.Array_sim.side > small.Array_sim.side);
  (* Bit area improves with scale: decoder overhead amortises. *)
  Alcotest.(check bool) "bit area amortises" true
    (big.Array_sim.bit_area < small.Array_sim.bit_area)

let test_array_guard () =
  Alcotest.check_raises "raw_bits guard"
    (Invalid_argument "Array_sim.evaluate: raw_bits must be positive")
    (fun () ->
      ignore (Array_sim.evaluate { Array_sim.default_config with raw_bits = 0 }))

let prop_geometry_partition =
  QCheck.Test.make ~name:"geometry classifies each wire exactly once"
    ~count:100
    QCheck.(pair (int_range 1 80) (int_range 4 60))
    (fun (omega, n_wires) ->
      let layout = Geometry.place rules ~omega ~n_wires in
      Geometry.n_addressable layout + Geometry.n_shared layout
      + Geometry.n_excess layout
      = n_wires)

let prop_yield_bounds =
  QCheck.Test.make ~name:"cave yield within [0,1]" ~count:50
    QCheck.(pair (int_range 2 6) (int_range 5 30))
    (fun (half_m, n_wires) ->
      let c =
        { config with Cave.code_length = 2 * half_m; n_wires }
      in
      let y = (Cave.analyze c).Cave.yield in
      y >= 0. && y <= 1.)

let suite =
  [
    Alcotest.test_case "wire positions" `Quick test_wire_positions;
    Alcotest.test_case "pad width clamps" `Quick test_pad_width_clamps;
    Alcotest.test_case "wires classified once" `Quick
      test_every_wire_classified_once;
    Alcotest.test_case "single pad large omega" `Quick
      test_single_pad_when_omega_large;
    Alcotest.test_case "pads respect omega" `Quick
      test_pads_respect_omega_capacity;
    Alcotest.test_case "excess wires small omega" `Quick
      test_excess_appears_when_omega_small;
    Alcotest.test_case "shared wires exist" `Quick
      test_shared_wires_under_overlap;
    Alcotest.test_case "overlap guard" `Quick test_overlap_guard;
    Alcotest.test_case "decoder extent" `Quick test_decoder_extent;
    Alcotest.test_case "applied voltage" `Quick test_applied_voltage_headroom;
    Alcotest.test_case "nominal conduction" `Quick test_conducts_nominal;
    Alcotest.test_case "reflected families unique" `Quick
      test_reflected_tree_uniquely_addressable;
    Alcotest.test_case "ternary reflected unique" `Quick
      test_reflected_ternary_uniquely_addressable;
    Alcotest.test_case "unreflected tree fails" `Quick
      test_unreflected_tree_is_not_uniquely_addressable;
    Alcotest.test_case "hot codes unique unreflected" `Quick
      test_hot_code_unique_without_reflection;
    Alcotest.test_case "addressed_nominal" `Quick
      test_addressed_nominal_identifies_wire;
    Alcotest.test_case "conduction with noise" `Quick test_conducts_with_noise;
    Alcotest.test_case "noise destroys uniqueness" `Quick
      test_noise_can_unblock_other_wire;
    Alcotest.test_case "paper reflection addressing" `Quick
      test_paper_reflection_example_addressing;
    Alcotest.test_case "cave analysis basics" `Quick test_cave_analysis_basics;
    Alcotest.test_case "removed wires get zero" `Quick
      test_cave_removed_wires_probability_zero;
    Alcotest.test_case "yield vs sigma" `Quick test_cave_yield_decreases_with_sigma;
    Alcotest.test_case "yield vs margin" `Quick
      test_cave_yield_increases_with_margin;
    Alcotest.test_case "code ordering BGC>GC>TC" `Quick test_cave_bgc_beats_tree;
    Alcotest.test_case "wire window probability" `Quick
      test_wire_window_probability;
    Alcotest.test_case "config guards" `Quick test_cave_invalid_configs;
    Alcotest.test_case "MC window = analytic" `Slow
      test_mc_window_agrees_with_analytic;
    Alcotest.test_case "MC functional ~ window" `Slow
      test_mc_functional_close_to_window;
    Alcotest.test_case "spread beats centered placement" `Quick
      test_spread_placement_beats_centered;
    Alcotest.test_case "array report consistency" `Quick
      test_array_report_consistency;
    Alcotest.test_case "array scaling" `Quick test_array_larger_memory_larger_side;
    Alcotest.test_case "array guard" `Quick test_array_guard;
    QCheck_alcotest.to_alcotest prop_geometry_partition;
    QCheck_alcotest.to_alcotest prop_yield_bounds;
  ]
