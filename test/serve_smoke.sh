#!/bin/sh
# Serve daemon smoke battery (the CI serve-smoke job).
#
# Boots `nanodec serve` three times (1 and 4 domains with the default
# 2 ms batch-fusion window, then 4 domains with --batch-window-ms 0)
# and drives the same request batteries through `nanodec client`:
#   - a stable battery (no floating-point payloads: happy-path ping and
#     codes, malformed JSON, an unknown verb, two validation failures)
#     diffed against the committed golden bytes;
#   - a numeric battery (cold + repeated Monte-Carlo evaluates and a
#     chaos-plan yield) diffed across the two domain counts AND across
#     batching on/off — the daemon's answers must be byte-identical
#     on 1 and 4 domains, fused or not.
# On top of the diffs: the repeated evaluate must be served from the
# cache, bit-identical to its cold bytes, and the chaos request must
# recover the exact bytes of its uninjected twin.
set -eu

NANODEC="${NANODEC:-_build/default/bin/nanodec_cli.exe}"
GOLDEN="${GOLDEN:-test/golden/serve_smoke.golden}"
SOCK="${TMPDIR:-/tmp}/nanodec-smoke-$$.sock"
OUT="${TMPDIR:-/tmp}/nanodec-smoke-$$"

run_battery() { # $1 = domains, $2 = output prefix, $3 = extra daemon flags
  # shellcheck disable=SC2086 — $3 is intentionally word-split flags
  "$NANODEC" serve --socket "$SOCK" --domains "$1" ${3:-} &
  pid=$!
  "$NANODEC" client --socket "$SOCK" \
    '{"id":1,"verb":"ping"}' \
    '{"id":2,"verb":"codes","params":{"code":"AHC","length":6,"count":4}}' \
    'this is not json' \
    '{"id":3,"verb":"frobnicate"}' \
    '{"id":4,"verb":"yield","exec":{"mc_samples":0}}' \
    '{"id":5,"verb":"evaluate","params":{"radix":1}}' \
    > "$2.stable"
  "$NANODEC" client --socket "$SOCK" \
    '{"id":6,"verb":"evaluate","params":{"code":"BGC","length":8},"exec":{"seed":11,"mc_samples":300}}' \
    '{"id":7,"verb":"evaluate","params":{"code":"BGC","length":8},"exec":{"seed":11,"mc_samples":300}}' \
    '{"id":8,"verb":"yield","params":{"code":"TC","length":6},"exec":{"seed":11,"mc_samples":300,"fault_plan":"seed=2009;pool.chunk:crash:p=0.3:max=10"}}' \
    '{"id":9,"verb":"yield","params":{"code":"TC","length":6},"exec":{"seed":11,"mc_samples":300}}' \
    > "$2.numeric"
  "$NANODEC" client --socket "$SOCK" '{"verb":"shutdown"}' > /dev/null
  wait "$pid"
}

run_battery 1 "$OUT-d1"
run_battery 4 "$OUT-d4"
run_battery 4 "$OUT-nobatch" "--batch-window-ms 0"

echo "diff: stable battery vs committed golden"
diff -u "$GOLDEN" "$OUT-d1.stable"
echo "diff: stable battery, 1 vs 4 domains"
diff -u "$OUT-d1.stable" "$OUT-d4.stable"
echo "diff: numeric battery, 1 vs 4 domains"
diff -u "$OUT-d1.numeric" "$OUT-d4.numeric"
echo "diff: stable battery, batch fusion on vs off"
diff -u "$OUT-d4.stable" "$OUT-nobatch.stable"
echo "diff: numeric battery, batch fusion on vs off"
diff -u "$OUT-d4.numeric" "$OUT-nobatch.numeric"

echo "check: repeated evaluate is a cache hit with the cold bytes"
grep -q '"id":6,"status":"ok","verb":"evaluate","cached":false' "$OUT-d1.numeric"
grep -q '"id":7,"status":"ok","verb":"evaluate","cached":true' "$OUT-d1.numeric"
cold=$(sed -n '1p' "$OUT-d1.numeric" | sed 's/"id":6/"id":7/; s/"cached":false/"cached":true/')
warm=$(sed -n '2p' "$OUT-d1.numeric")
[ "$cold" = "$warm" ]

echo "check: chaos plan recovers the exact uninjected bytes"
chaos=$(sed -n '3p' "$OUT-d1.numeric" | sed 's/"id":8/"id":9/')
clean=$(sed -n '4p' "$OUT-d1.numeric")
[ "$chaos" = "$clean" ]

rm -f "$OUT-d1.stable" "$OUT-d1.numeric" "$OUT-d4.stable" "$OUT-d4.numeric" \
  "$OUT-nobatch.stable" "$OUT-nobatch.numeric"
echo "serve smoke: OK"
