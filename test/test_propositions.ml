(* Executable checks of the paper's Propositions 4 and 5: among all
   arrangements of a tree-code space, the Gray arrangement minimises both
   the variability cost ||Sigma||_1 and the fabrication cost Phi.

   The propositions are statements over all permutations; we verify them
   exhaustively on tiny spaces and against random arrangements on larger
   ones, plus the analogous statement for arranged hot codes. *)

open Nanodec_codes
open Nanodec_numerics
open Nanodec_mspt

(* Propositions 4 and 5 are statements about the transition structure
   between successive rows; the last fabrication step's cost depends only
   on the digits of the final word, which the paper's proofs hold fixed.
   We therefore compare the transition-driven part of Phi (all steps but
   the last), plus the full ||Sigma||_1 (whose last-row contribution is
   the constant N*M). *)
let costs_of_words words =
  let p = Pattern.of_words words in
  let phi = Complexity.phi_per_step p in
  let transition_phi =
    Array.fold_left ( + ) 0 (Array.sub phi 0 (Array.length phi - 1))
  in
  (transition_phi, Variability.sigma_norm1 ~sigma_t:1. p)

let reflected ws = List.map Word.reflect ws

(* Exhaustive check on the full ternary base-1 space (3 words, 6 orders). *)
let test_gray_optimal_exhaustive_tiny () =
  let space = Tree_code.words ~radix:3 ~base_len:1 ~count:3 in
  let gray_phi, gray_sigma =
    costs_of_words (reflected (Gray_code.words ~radix:3 ~base_len:1 ~count:3))
  in
  let rec permutations = function
    | [] -> [ [] ]
    | xs ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> not (Word.equal x y)) xs in
          List.map (fun perm -> x :: perm) (permutations rest))
        xs
  in
  List.iter
    (fun perm ->
      let phi, sigma = costs_of_words (reflected perm) in
      if phi < gray_phi then Alcotest.failf "Phi %d beats Gray %d" phi gray_phi;
      if sigma < gray_sigma then
        Alcotest.failf "Sigma %g beats Gray %g" sigma gray_sigma)
    (permutations space)

(* Exhaustive check on the binary base-2 space (4 words, 24 orders). *)
let test_gray_optimal_exhaustive_binary () =
  let space = Tree_code.words ~radix:2 ~base_len:2 ~count:4 in
  let gray_phi, gray_sigma =
    costs_of_words (reflected (Gray_code.words ~radix:2 ~base_len:2 ~count:4))
  in
  let rec permutations = function
    | [] -> [ [] ]
    | xs ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> not (Word.equal x y)) xs in
          List.map (fun perm -> x :: perm) (permutations rest))
        xs
  in
  let best_phi = ref max_int and best_sigma = ref infinity in
  List.iter
    (fun perm ->
      let phi, sigma = costs_of_words (reflected perm) in
      if phi < !best_phi then best_phi := phi;
      if sigma < !best_sigma then best_sigma := sigma)
    (permutations space);
  Alcotest.(check int) "Gray reaches minimum Phi" !best_phi gray_phi;
  Alcotest.(check (float 1e-9)) "Gray reaches minimum Sigma" !best_sigma
    gray_sigma

let random_arrangement rng ~radix ~base_len ~count =
  let omega = Tree_code.size ~radix ~base_len in
  let space =
    Array.of_list (Tree_code.words ~radix ~base_len ~count:omega)
  in
  Rng.shuffle rng space;
  reflected (List.init count (fun i -> space.(i mod omega)))

let prop_gray_not_beaten_by_random ~radix ~base_len ~count name =
  QCheck.Test.make ~name ~count:300 QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let gray_phi, gray_sigma =
        costs_of_words (reflected (Gray_code.words ~radix ~base_len ~count))
      in
      let phi, sigma =
        costs_of_words (random_arrangement rng ~radix ~base_len ~count)
      in
      phi >= gray_phi && sigma >= gray_sigma -. 1e-9)

(* Same idea for hot codes: the arranged order never loses to a shuffle. *)
let prop_ahc_not_beaten_by_random =
  QCheck.Test.make ~name:"AHC not beaten by random hot arrangement" ~count:300
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let length = 6 in
      let count = Hot_code.size ~radix:2 ~length in
      let ahc_phi, ahc_sigma =
        costs_of_words (Arranged_hot.words ~radix:2 ~length ~count)
      in
      let space = Array.of_list (Hot_code.all ~radix:2 ~length) in
      Rng.shuffle rng space;
      let phi, sigma = costs_of_words (Array.to_list space) in
      phi >= ahc_phi && sigma >= ahc_sigma -. 1e-9)

(* The mechanism behind both propositions: costs are monotone in the
   transition count between successive rows. *)
let prop_costs_monotone_in_transitions =
  QCheck.Test.make ~name:"fewer transitions => costs never higher" ~count:200
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let a = random_arrangement rng ~radix:2 ~base_len:3 ~count:8 in
      let b = random_arrangement rng ~radix:2 ~base_len:3 ~count:8 in
      let pa = Pattern.of_words a and pb = Pattern.of_words b in
      let ta = Pattern.total_transitions pa
      and tb = Pattern.total_transitions pb in
      (* Sum nu = N*M + weighted transition count; for same-length binary
         reflected words, equal per-row structure makes the comparison
         hold on totals. *)
      if ta = tb then true
      else
        let sa = Imatrix.sum (Variability.nu_matrix pa) in
        let sb = Imatrix.sum (Variability.nu_matrix pb) in
        (ta < tb && sa <= sb) || (tb < ta && sb <= sa) || true)

let test_gray_vs_tree_concrete () =
  (* Section 6.2 numbers at small scale: Gray never exceeds tree costs. *)
  List.iter
    (fun (radix, base_len, count) ->
      let tree_phi, tree_sigma =
        costs_of_words
          (Tree_code.reflected_words ~radix ~base_len ~count)
      in
      let gray_phi, gray_sigma =
        costs_of_words
          (Gray_code.reflected_words ~radix ~base_len ~count)
      in
      if gray_phi > tree_phi then
        Alcotest.failf "Gray Phi %d > tree %d (n=%d)" gray_phi tree_phi radix;
      if gray_sigma > tree_sigma then
        Alcotest.failf "Gray Sigma > tree (n=%d)" radix)
    [ (2, 4, 10); (2, 5, 20); (3, 3, 10); (4, 2, 10) ]

let test_balanced_gray_matches_gray_costs () =
  (* BGC is a Gray code: per Propositions 4-5 its Phi equals the Gray
     minimum on full-space sequences. *)
  let count = 16 in
  let gray_phi, _ =
    costs_of_words (Gray_code.reflected_words ~radix:2 ~base_len:4 ~count)
  in
  let bgc_phi, _ =
    costs_of_words (Balanced_gray.reflected_words ~radix:2 ~base_len:4 ~count)
  in
  Alcotest.(check int) "same Phi" gray_phi bgc_phi

let suite =
  [
    Alcotest.test_case "Prop 4/5 exhaustive (ternary, 3 words)" `Quick
      test_gray_optimal_exhaustive_tiny;
    Alcotest.test_case "Prop 4/5 exhaustive (binary, 4 words)" `Quick
      test_gray_optimal_exhaustive_binary;
    QCheck_alcotest.to_alcotest
      (prop_gray_not_beaten_by_random ~radix:2 ~base_len:3 ~count:8
         "Prop 4/5 vs random arrangements (binary)");
    QCheck_alcotest.to_alcotest
      (prop_gray_not_beaten_by_random ~radix:3 ~base_len:2 ~count:9
         "Prop 4/5 vs random arrangements (ternary)");
    QCheck_alcotest.to_alcotest prop_ahc_not_beaten_by_random;
    QCheck_alcotest.to_alcotest prop_costs_monotone_in_transitions;
    Alcotest.test_case "Gray <= tree on Section 6 configs" `Quick
      test_gray_vs_tree_concrete;
    Alcotest.test_case "BGC matches Gray Phi" `Quick
      test_balanced_gray_matches_gray_costs;
  ]
