(* Domain-parallel engine: the bit-for-bit determinism contract and the
   pool's failure/robustness guarantees.

   The headline property: every parallel entry point returns a value
   structurally identical to its sequential counterpart for every domain
   count — the chunk structure, not the scheduling, decides the result. *)

open Nanodec_numerics
open Nanodec_parallel

let domain_counts = [ 1; 2; 4; 8 ]
let seeds = [ 1; 2009; 424242 ]

let estimate : Montecarlo.estimate Alcotest.testable =
  Alcotest.testable Montecarlo.pp ( = )

(* --- NANODEC_DOMAINS parsing --- *)

let test_parse_domains () =
  let some = [ ("1", 1); ("2", 2); ("16", 16); ("0007", 7) ] in
  List.iter
    (fun (s, n) ->
      Alcotest.(check (option int)) s (Some n) (Pool.parse_domains s))
    some;
  List.iter
    (fun s ->
      Alcotest.(check (option int)) ("reject " ^ s) None (Pool.parse_domains s))
    [ ""; "0"; "-3"; "four"; "2.5"; " 2"; "2 "; "0x2" ]

(* --- Monte-Carlo equivalence: parallel = sequential, all domain counts --- *)

(* A deterministic integrand with enough structure to expose any chunk
   or stream mix-up: mean of a few uniforms, squashed nonlinearly. *)
let integrand rng =
  let a = Rng.float rng in
  let b = Rng.float rng in
  sin (3.0 *. a) *. cos (2.0 *. b) +. (a *. b)

let predicate rng = Rng.float rng < 0.37

let check_estimate_invariance ~samples ~chunks () =
  let chunking = Run_ctx.Fixed chunks in
  List.iter
    (fun seed ->
      let seq_ctx = Run_ctx.make ~chunking () in
      let baseline =
        Montecarlo.estimate_par ~ctx:seq_ctx (Rng.create ~seed) ~samples
          integrand
      in
      let baseline_prop =
        Montecarlo.estimate_proportion_par ~ctx:seq_ctx (Rng.create ~seed)
          ~samples predicate
      in
      List.iter
        (fun domains ->
          Pool.with_pool ~domains (fun pool ->
              let ctx = Run_ctx.make ~pool ~chunking () in
              let e =
                Montecarlo.estimate_par ~ctx (Rng.create ~seed) ~samples
                  integrand
              in
              Alcotest.check estimate
                (Printf.sprintf "estimate seed=%d domains=%d" seed domains)
                baseline e;
              let p =
                Montecarlo.estimate_proportion_par ~ctx (Rng.create ~seed)
                  ~samples predicate
              in
              Alcotest.check estimate
                (Printf.sprintf "proportion seed=%d domains=%d" seed domains)
                baseline_prop p))
        domain_counts)
    seeds

let test_estimate_invariance () =
  check_estimate_invariance ~samples:1000 ~chunks:Montecarlo.default_chunks ()

let test_estimate_degenerate () =
  (* chunks > samples: most chunks are empty and must contribute nothing. *)
  check_estimate_invariance ~samples:2 ~chunks:64 ();
  (* ragged split: 3 samples over 7 chunks. *)
  check_estimate_invariance ~samples:3 ~chunks:7 ();
  (* single chunk: the parallel path is one sequential run. *)
  check_estimate_invariance ~samples:50 ~chunks:1 ()

let test_estimate_agrees_with_plain () =
  (* The chunked estimator draws from split sub-streams, so it is a
     different (equally valid) sample than the plain estimator — the two
     must agree statistically, not bitwise: means within a few combined
     standard errors, standard errors of similar magnitude. *)
  List.iter
    (fun seed ->
      let samples = 4000 in
      let plain = Montecarlo.estimate (Rng.create ~seed) ~samples integrand in
      let chunked =
        Montecarlo.estimate_par (Rng.create ~seed) ~samples integrand
      in
      let gap = Float.abs (plain.Montecarlo.mean -. chunked.Montecarlo.mean) in
      let combined_se =
        sqrt
          ((plain.Montecarlo.std_error ** 2.)
          +. (chunked.Montecarlo.std_error ** 2.))
      in
      Alcotest.(check bool)
        (Printf.sprintf "means agree within 5 SE, seed %d" seed)
        true
        (gap <= 5. *. combined_se);
      Alcotest.(check bool)
        (Printf.sprintf "std errors comparable, seed %d" seed)
        true
        (chunked.Montecarlo.std_error < 2. *. plain.Montecarlo.std_error
        && plain.Montecarlo.std_error < 2. *. chunked.Montecarlo.std_error))
    seeds

let test_estimate_validation () =
  Alcotest.check_raises "samples < 2"
    (Invalid_argument "Montecarlo.estimate_par: need >= 2 samples")
    (fun () ->
      ignore (Montecarlo.estimate_par (Rng.create ~seed:1) ~samples:1 integrand));
  (* Chunk counts now arrive through the context and are validated
     there, uniformly for every estimator. *)
  Alcotest.check_raises "chunks < 1"
    (Invalid_argument "Run_ctx.make: Fixed chunking must be >= 1")
    (fun () -> ignore (Run_ctx.make ~chunking:(Run_ctx.Fixed 0) ()))

(* --- crossbar Monte-Carlo yield --- *)

let test_mc_yield_window_invariance () =
  let spec =
    Nanodec.Design.spec ~code_type:Nanodec_codes.Codebook.Tree ~code_length:8 ()
  in
  let analysis = Nanodec_crossbar.Cave.analyze spec.Nanodec.Design.cave in
  let samples = 200 in
  let baseline =
    Nanodec_crossbar.Cave.mc_yield_window_par (Rng.create ~seed:2009) ~samples
      analysis
  in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let ctx = Run_ctx.make ~pool () in
          let e =
            Nanodec_crossbar.Cave.mc_yield_window_par ~ctx
              (Rng.create ~seed:2009) ~samples analysis
          in
          Alcotest.check estimate
            (Printf.sprintf "mc yield, domains=%d" domains)
            baseline e))
    domain_counts

(* --- sweep / figures / scaling / ablation equivalence --- *)

let small_candidates =
  Nanodec.Optimizer.
    [
      { code_type = Nanodec_codes.Codebook.Tree; code_length = 6 };
      { code_type = Nanodec_codes.Codebook.Gray; code_length = 6 };
      { code_type = Nanodec_codes.Codebook.Balanced_gray; code_length = 6 };
      { code_type = Nanodec_codes.Codebook.Hot; code_length = 4 };
      { code_type = Nanodec_codes.Codebook.Arranged_hot; code_length = 4 };
    ]

let test_sweep_invariance () =
  let baseline = Nanodec.Optimizer.sweep ~candidates:small_candidates () in
  Alcotest.(check int) "baseline size" 5 (List.length baseline);
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let ctx = Run_ctx.make ~pool () in
          let reports =
            Nanodec.Optimizer.sweep ~ctx ~candidates:small_candidates ()
          in
          Alcotest.(check bool)
            (Printf.sprintf "sweep identical, domains=%d" domains)
            true
            (reports = baseline)))
    domain_counts

let test_figures_invariance () =
  let fig7 = Nanodec.Figures.fig7 () in
  let fig8 = Nanodec.Figures.fig8 () in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let ctx = Run_ctx.make ~pool () in
          Alcotest.(check bool)
            (Printf.sprintf "fig7 identical, domains=%d" domains)
            true
            (Nanodec.Figures.fig7 ~ctx () = fig7);
          Alcotest.(check bool)
            (Printf.sprintf "fig8 identical, domains=%d" domains)
            true
            (Nanodec.Figures.fig8 ~ctx () = fig8)))
    [ 1; 4 ]

let test_scaling_ablation_invariance () =
  let nodes = Nanodec.Scaling.sweep_nodes () in
  let ablation = Nanodec.Ablation.sigma_t () in
  Pool.with_pool ~domains:4 (fun pool ->
      let ctx = Run_ctx.make ~pool () in
      Alcotest.(check bool)
        "scaling nodes identical" true
        (Nanodec.Scaling.sweep_nodes ~ctx () = nodes);
      Alcotest.(check bool)
        "sigma_t ablation identical" true
        (Nanodec.Ablation.sigma_t ~ctx () = ablation))

(* --- pool robustness --- *)

let test_exception_propagates () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          Alcotest.check_raises
            (Printf.sprintf "failure re-raised, domains=%d" domains)
            (Failure "boom")
            (fun () ->
              ignore
                (Pool.map pool
                   (fun i -> if i = 5 then failwith "boom" else i)
                   (Array.init 32 Fun.id)))))
    [ 1; 4 ]

let test_lowest_failure_wins () =
  (* Every chunk fails; the sequential loop would have raised chunk 0's
     exception first, so the pool must report exactly that one. *)
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.check_raises "lowest index wins" (Failure "chunk 0") (fun () ->
          Pool.parallel_for pool ~chunks:16 (fun i ->
              failwith (Printf.sprintf "chunk %d" i))))

let test_pool_reusable_after_failure () =
  Pool.with_pool ~domains:4 (fun pool ->
      (try
         ignore
           (Pool.map pool
              (fun i -> if i mod 3 = 0 then failwith "flaky" else i)
              (Array.init 24 Fun.id))
       with Failure _ -> ());
      let xs = Array.init 100 Fun.id in
      let doubled = Pool.map pool (fun x -> 2 * x) xs in
      Alcotest.(check (array int))
        "pool still works after a failed job"
        (Array.map (fun x -> 2 * x) xs)
        doubled)

let test_nested_submission_inline () =
  (* A job submitted from inside a running chunk must complete inline
     with the same result, not deadlock — with a telemetry sink
     attached (the probes run inside the scheduler's lock-sensitive
     paths, so this doubles as a no-deadlock regression test) and with
     every inline submission showing up in the counter. *)
  let sink = Nanodec_telemetry.Telemetry.create () in
  Pool.with_pool ~domains:2 ~telemetry:sink (fun pool ->
      Alcotest.(check int) "no inline submissions yet" 0
        (Pool.inline_submissions pool);
      let outer =
        Pool.map pool
          (fun i ->
            let inner = Pool.map pool (fun j -> i + j) (Array.init 4 Fun.id) in
            Array.fold_left ( + ) 0 inner)
          (Array.init 8 Fun.id)
      in
      let expected = Array.init 8 (fun i -> (4 * i) + 6) in
      Alcotest.(check (array int)) "nested jobs" expected outer;
      (* Every one of the 8 inner jobs was submitted while the outer job
         held the pool busy. *)
      Alcotest.(check int) "inline submissions counted" 8
        (Pool.inline_submissions pool));
  Alcotest.(check bool) "span trees well-formed under nesting" true
    (Nanodec_telemetry.Telemetry.well_formed sink)

let test_many_successive_jobs () =
  Pool.with_pool ~domains:4 (fun pool ->
      for round = 1 to 60 do
        let xs = Array.init (1 + (round mod 17)) Fun.id in
        let got = Pool.map pool (fun x -> x * x) xs in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          (Array.map (fun x -> x * x) xs)
          got
      done)

let test_map_reduce_order () =
  (* String concatenation is non-commutative: any out-of-order reduction
     changes the answer. *)
  let xs = Array.init 26 (fun i -> String.make 1 (Char.chr (Char.code 'a' + i))) in
  let expected = String.concat "" (Array.to_list xs) in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let got =
            Pool.map_reduce pool ~map:Fun.id ~reduce:( ^ ) ~init:"" xs
          in
          Alcotest.(check string)
            (Printf.sprintf "in-order reduce, domains=%d" domains)
            expected got))
    domain_counts

let test_timeout_mid_batch () =
  (* The deadline check runs inside the batch loop, so a deadline that
     expires while a domain is mid-way through a claimed batch must
     still surface as a structured timeout — and leave the pool usable. *)
  let module E = Nanodec_error in
  Pool.with_pool ~domains:2 (fun pool ->
      Alcotest.check_raises "deadline trips mid-batch"
        (E.Error (E.Timeout { site = "pool.job"; seconds = Some 0.05 }))
        (fun () ->
          (* Two claims of 64 chunks each: ~128 ms of sleeping per
             claim, so the 50 ms deadline always expires inside a
             batch, never between claims. *)
          Pool.parallel_for ~timeout_s:0.05 ~batch:64 pool ~chunks:128
            (fun _ -> Unix.sleepf 0.002));
      let xs = Array.init 50 Fun.id in
      Alcotest.(check (array int))
        "pool reusable after mid-batch timeout" (Array.map succ xs)
        (Pool.map pool succ xs))

let test_shutdown () =
  let pool = Pool.create ~domains:4 () in
  Alcotest.(check int) "domains" 4 (Pool.domains pool);
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "use after shutdown"
    (Invalid_argument "Pool: used after shutdown") (fun () ->
      Pool.parallel_for pool ~chunks:2 ignore)

let test_create_validation () =
  Alcotest.check_raises "domains < 1"
    (Invalid_argument "Pool.create: domains must be >= 1")
    (fun () -> ignore (Pool.create ~domains:0 ()))

let suite =
  [
    Alcotest.test_case "NANODEC_DOMAINS parsing" `Quick test_parse_domains;
    Alcotest.test_case "MC estimate invariant across domain counts" `Quick
      test_estimate_invariance;
    Alcotest.test_case "MC estimate degenerate chunkings" `Quick
      test_estimate_degenerate;
    Alcotest.test_case "chunked estimator agrees with plain statistically"
      `Quick test_estimate_agrees_with_plain;
    Alcotest.test_case "estimator argument validation" `Quick
      test_estimate_validation;
    Alcotest.test_case "crossbar MC yield invariant" `Quick
      test_mc_yield_window_invariance;
    Alcotest.test_case "optimizer sweep invariant" `Quick test_sweep_invariance;
    Alcotest.test_case "figures 7/8 invariant" `Quick test_figures_invariance;
    Alcotest.test_case "scaling and ablation invariant" `Quick
      test_scaling_ablation_invariance;
    Alcotest.test_case "chunk exception re-raised at join" `Quick
      test_exception_propagates;
    Alcotest.test_case "lowest-index failure wins" `Quick
      test_lowest_failure_wins;
    Alcotest.test_case "pool reusable after a failed job" `Quick
      test_pool_reusable_after_failure;
    Alcotest.test_case "nested submission runs inline" `Quick
      test_nested_submission_inline;
    Alcotest.test_case "many successive jobs" `Quick test_many_successive_jobs;
    Alcotest.test_case "map_reduce folds in index order" `Quick
      test_map_reduce_order;
    Alcotest.test_case "deadline expiring mid-batch times out cleanly" `Quick
      test_timeout_mid_batch;
    Alcotest.test_case "shutdown is idempotent and final" `Quick test_shutdown;
    Alcotest.test_case "create validates domain count" `Quick
      test_create_validation;
  ]
