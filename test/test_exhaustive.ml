(* Exhaustive verification of Propositions 4-5: for EVERY tree-code
   space with at most 8 words, brute-force all Omega! arrangements and
   assert the Gray arrangement attains the minimum of both the
   fabrication complexity Phi (its transition-driven part — the last
   step's cost depends only on the final word, which the paper's proofs
   hold fixed) and the variability cost ||Sigma||_1.

   The largest spaces are 8! = 40320 arrangements; Heap's algorithm
   enumerates them without materialising the permutation list. *)

open Nanodec_codes
open Nanodec_proptest

let iter_permutations arr f =
  let a = Array.copy arr in
  let n = Array.length a in
  let swap i j =
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  in
  let rec heap k =
    if k = 1 then f a
    else
      for i = 0 to k - 1 do
        heap (k - 1);
        if i < k - 1 then if k mod 2 = 0 then swap i (k - 1) else swap 0 (k - 1)
      done
  in
  if n = 0 then () else heap n

(* All (radix, base_len) with radix^base_len <= 8. *)
let small_spaces =
  [ (2, 1); (2, 2); (2, 3); (3, 1); (4, 1); (5, 1); (6, 1); (7, 1); (8, 1) ]

let check_space (radix, base_len) =
  let omega = Tree_code.size ~radix ~base_len in
  let space = Array.of_list (Tree_code.words ~radix ~base_len ~count:omega) in
  let gray_phi, gray_sigma =
    Oracles.costs_of_words
      (List.map Word.reflect (Gray_code.words ~radix ~base_len ~count:omega))
  in
  let min_phi = ref max_int and min_sigma = ref infinity in
  let arrangements = ref 0 in
  iter_permutations space (fun perm ->
      incr arrangements;
      let words = List.map Word.reflect (Array.to_list perm) in
      let phi, sigma = Oracles.costs_of_words words in
      if phi < !min_phi then min_phi := phi;
      if sigma < !min_sigma then min_sigma := sigma);
  let fact =
    let rec go acc k = if k <= 1 then acc else go (acc * k) (k - 1) in
    go 1 omega
  in
  Alcotest.(check int)
    (Printf.sprintf "n=%d base=%d: enumerated all arrangements" radix base_len)
    fact !arrangements;
  Alcotest.(check int)
    (Printf.sprintf "n=%d base=%d: Gray minimises Phi over %d arrangements"
       radix base_len fact)
    !min_phi gray_phi;
  Alcotest.(check (float 1e-9))
    (Printf.sprintf "n=%d base=%d: Gray minimises ||Sigma||_1" radix base_len)
    !min_sigma gray_sigma

let test_small_spaces () = List.iter check_space small_spaces

(* Same exhaustive claim for the arranged hot code on the smallest
   interesting space: binary M = 4 (6 words, 720 arrangements).  AHC is
   optimal among arrangements that exist within the hot space. *)
let test_hot_space_exhaustive () =
  let space = Array.of_list (Hot_code.all ~radix:2 ~length:4) in
  let ahc_phi, ahc_sigma =
    Oracles.costs_of_words (Arranged_hot.all ~radix:2 ~length:4)
  in
  let min_phi = ref max_int and min_sigma = ref infinity in
  iter_permutations space (fun perm ->
      let phi, sigma = Oracles.costs_of_words (Array.to_list perm) in
      if phi < !min_phi then min_phi := phi;
      if sigma < !min_sigma then min_sigma := sigma);
  Alcotest.(check int) "AHC minimises Phi (binary M=4)" !min_phi ahc_phi;
  Alcotest.(check (float 1e-9)) "AHC minimises ||Sigma||_1 (binary M=4)"
    !min_sigma ahc_sigma

let suite =
  [
    Alcotest.test_case "Props 4-5 exhaustive: all tree spaces with <= 8 words"
      `Quick test_small_spaces;
    Alcotest.test_case "AHC exhaustive: binary hot space M=4" `Quick
      test_hot_space_exhaustive;
  ]
