(* Fault injection and the error taxonomy: the chaos suite.

   The contract under test, end to end: a deterministic fault plan
   crashes/delays/stalls work at the named sites; the supervised pool
   retries injected crashes and degrades to sequential execution when
   they persist; every run that completes — injected or not — computes
   bit-for-bit the same results; and every failure that does surface is
   a structured [Nanodec_error.t] with a stable exit code. *)

open Nanodec_numerics
open Nanodec_parallel
module Fault = Nanodec_fault.Fault
module E = Nanodec_error

let plan_of_string s = Fault.parse_exn s
let engine s = Fault.create (plan_of_string s)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* The reference workload: a chunked Monte-Carlo estimate, the library's
   canonical restartable fan-out. *)
let estimate ~ctx () =
  (* The fixed chunk count rides on a derived context now that the
     estimators take all scheduling through [Run_ctx]. *)
  Run_ctx.with_request ~base:ctx ~chunking:(Run_ctx.Fixed 8) ~warn:false
    (fun ctx ->
      Montecarlo.estimate_par ~ctx (Rng.create ~seed:2009) ~samples:400
        (fun rng -> Rng.gaussian rng +. Rng.float rng))

let workload ?fault ?timeout_s ?cancel ~domains () =
  Run_ctx.with_ctx ~domains ?fault ?timeout_s ?cancel (fun ctx ->
      estimate ~ctx ())

let baseline = lazy (workload ~domains:1 ())

let check_equals_baseline what e =
  Alcotest.(check bool) what true (e = Lazy.force baseline)

(* --- plan grammar --- *)

let test_parse_round_trip () =
  let specs =
    [
      "seed=7;pool.chunk:crash:p=0.05:max=3";
      "seed=2009;mc.sample_batch:delay=2ms:p=0.1";
      "seed=2009;cave.window:stall=500ms:key=3:after=2";
      "seed=2009;telemetry.flush:crash";
      "seed=2009";
    ]
  in
  List.iter
    (fun s ->
      Alcotest.(check string) s s (Fault.plan_to_string (plan_of_string s)))
    specs;
  (* Defaults fill in: a bare rule gets seed 2009, p=1, no budget. *)
  let p = plan_of_string "pool.chunk:crash" in
  Alcotest.(check int) "default seed" Fault.default_seed p.Fault.seed;
  match p.Fault.rules with
  | [ r ] ->
    Alcotest.(check (float 0.)) "default p" 1. r.Fault.prob;
    Alcotest.(check bool) "no budget" true (r.Fault.max_fires = None)
  | _ -> Alcotest.fail "expected exactly one rule"

let test_parse_rejects () =
  List.iter
    (fun s ->
      match Fault.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s))
    [
      "bogus.site:crash";
      "pool.chunk:explode";
      "pool.chunk:crash:p=1.5";
      "pool.chunk:delay=2";
      "pool.chunk:crash:max=-1";
      "seed=abc";
      "seed";
    ];
  (* ... and parse_exn surfaces them as Invalid_input with the grammar
     as hint. *)
  match Fault.parse_exn "pool.chunk:explode" with
  | exception E.Error (E.Invalid_input { hint = Some _; _ }) -> ()
  | exception _ -> Alcotest.fail "wrong exception"
  | _ -> Alcotest.fail "parse_exn accepted a bad plan"

let test_empty_plan () =
  let p = plan_of_string "" in
  Alcotest.(check int) "no rules" 0 (List.length p.Fault.rules);
  (* hit on None and on an inert engine are both no-ops *)
  Fault.hit None "pool.chunk";
  let inert = Fault.inert () in
  for key = 0 to 99 do
    Fault.hit (Some inert) ~key "pool.chunk"
  done;
  Alcotest.(check int) "inert never fires" 0 (Fault.total_fired inert)

let test_decision_determinism () =
  (* Two engines from the same plan make identical decisions; a
     different plan seed makes different ones (for a non-trivial p). *)
  let spec = "seed=5;pool.chunk:crash:p=0.4" in
  let fires e =
    List.init 64 (fun key ->
        match Fault.hit (Some e) ~key "pool.chunk" with
        | () -> false
        | exception Fault.Injected _ -> true)
  in
  let a = fires (engine spec) and b = fires (engine spec) in
  Alcotest.(check (list bool)) "same plan, same decisions" a b;
  let c = fires (engine "seed=6;pool.chunk:crash:p=0.4") in
  Alcotest.(check bool) "different seed differs somewhere" true (a <> c)

(* --- recovery: retries and degradation --- *)

let test_crash_first_and_last_chunk () =
  (* One crash on a single key: the retry's fresh decision is blocked
     by max=1, so the chunk succeeds in place and nothing degrades. *)
  List.iter
    (fun key ->
      List.iter
        (fun domains ->
          let f =
            engine (Printf.sprintf "pool.chunk:crash:key=%d:max=1" key)
          in
          let e = workload ~fault:f ~domains () in
          check_equals_baseline
            (Printf.sprintf "crash key %d on %d domains" key domains)
            e;
          Alcotest.(check int)
            "fired exactly once" 1 (Fault.total_fired f))
        [ 1; 4 ])
    [ 0; 7 ]

let test_crash_everywhere_degrades () =
  (* p=1, no budget: every attempt of every chunk dies; the pool must
     degrade and still produce the baseline bits. *)
  let f = engine "pool.chunk:crash:p=1" in
  Run_ctx.with_ctx ~domains:4 ~fault:f (fun ctx ->
      check_equals_baseline "degraded run" (estimate ~ctx ());
      match Run_ctx.pool ctx with
      | None -> Alcotest.fail "expected a pool"
      | Some pool ->
        Alcotest.(check bool) "pool degraded" true (Pool.degraded pool);
        Alcotest.(check bool) "degraded jobs counted" true
          (Pool.degraded_jobs pool >= 1);
        Alcotest.(check bool) "retries counted" true (Pool.retries pool > 0);
        (* A degraded pool keeps completing work (sequentially). *)
        check_equals_baseline "post-degradation job" (estimate ~ctx ()))

let test_no_degrade_fails_closed () =
  (* [with_ctx ~degrade:false] plumbing, fanned and inline paths. *)
  List.iter
    (fun domains ->
      match
        Run_ctx.with_ctx ~domains ~degrade:false
          ~fault:(engine "pool.chunk:crash:p=1") (fun ctx ->
            estimate ~ctx ())
      with
      | _ -> Alcotest.fail "expected Degraded"
      | exception E.Error (E.Degraded { site; _ }) ->
        Alcotest.(check string) "site" "pool.chunk" site)
    [ 1; 4 ]

let test_retry_clears_transient () =
  (* max=2 with p=1: the first two attempts of chunk 0 die, the third
     (last allowed retry) finds the budget exhausted and succeeds. *)
  let f = engine "pool.chunk:crash:p=1:key=0:max=2" in
  let e = workload ~fault:f ~domains:4 () in
  check_equals_baseline "transient crash retried" e;
  Alcotest.(check int) "fired twice" 2 (Fault.total_fired f)

let test_delay_is_transparent () =
  let f = engine "mc.sample_batch:delay=1ms:p=0.5" in
  let e = workload ~fault:f ~domains:4 () in
  check_equals_baseline "delays change nothing" e;
  Alcotest.(check bool) "some delays fired" true (Fault.total_fired f > 0)

let test_poolless_ctx_recovers () =
  (* No pool in the context at all: the Monte-Carlo fallback path does
     its own bounded retries and suppressed re-execution. *)
  let f = engine "mc.sample_batch:crash:p=1" in
  let e = Run_ctx.with_ctx ~fault:f (fun ctx -> estimate ~ctx ()) in
  check_equals_baseline "pool-less recovery" e

(* --- deadlines and cancellation --- *)

let test_timeout_mid_job () =
  List.iter
    (fun domains ->
      match
        Run_ctx.with_ctx ~domains ~timeout_s:0.02 (fun ctx ->
            match Run_ctx.pool ctx with
            | None -> Alcotest.fail "expected a pool"
            | Some pool ->
              Pool.parallel_for ?timeout_s:(Run_ctx.timeout_s ctx) pool
                ~chunks:8 (fun _ -> Unix.sleepf 0.05))
      with
      | () -> Alcotest.fail "expected Timeout"
      | exception E.Error (E.Timeout { seconds = Some s; _ }) ->
        Alcotest.(check (float 1e-9)) "deadline surfaced" 0.02 s)
    [ 1; 4 ]

let test_stall_plus_timeout () =
  (* A stall plan driving the deadline over: the injected stall is the
     cause, the timeout is the symptom the taxonomy reports. *)
  let f = engine "mc.sample_batch:stall=50ms" in
  match workload ~fault:f ~timeout_s:0.02 ~domains:4 () with
  | _ -> Alcotest.fail "expected Timeout"
  | exception E.Error (E.Timeout _) -> ()

let test_cancellation () =
  List.iter
    (fun domains ->
      let cancel = Pool.Cancel.create () in
      Alcotest.(check bool) "fresh token" false
        (Pool.Cancel.is_cancelled cancel);
      Pool.with_pool ~domains (fun pool ->
          (* The first chunk cancels the job; later claim boundaries
             observe the token. *)
          match
            Pool.parallel_for ~cancel pool ~chunks:64 (fun i ->
                if i = 0 then Pool.Cancel.cancel cancel)
          with
          | () -> Alcotest.fail "expected cancellation"
          | exception E.Error (E.Timeout { seconds = None; _ }) -> ()))
    [ 1; 4 ]

let test_organic_exceptions_not_retried () =
  (* Real bugs must not be retried or degraded away, even with an
     engine installed. *)
  Pool.with_pool ~domains:4 ~fault:(engine "seed=2009") (fun pool ->
      match
        Pool.parallel_for pool ~chunks:8 (fun i ->
            if i = 3 then failwith "organic")
      with
      | () -> Alcotest.fail "expected Failure"
      | exception Failure msg ->
        Alcotest.(check string) "organic" "organic" msg)

(* --- taxonomy --- *)

let test_exit_codes_distinct () =
  let all =
    [
      E.Invalid_input { what = "w"; hint = None };
      E.Timeout { site = "s"; seconds = Some 1. };
      E.Worker_crash { site = "s"; detail = "d"; injected = true };
      E.Degraded { site = "s"; reason = "r" };
      E.Internal { detail = "d" };
    ]
  in
  let codes = List.map E.exit_code all in
  Alcotest.(check (list int)) "documented codes" [ 2; 3; 4; 5; 70 ] codes;
  Alcotest.(check int) "all distinct"
    (List.length codes)
    (List.length (List.sort_uniq compare codes));
  List.iter
    (fun t ->
      let s = E.to_string t in
      Alcotest.(check bool)
        (E.label t ^ " rendered with label")
        true
        (String.length s > 0 && s.[0] = '[' && contains s (E.label t)))
    all

let test_classify () =
  let open Nanodec in
  (match Errors.classify Nanodec_codes.Balanced_gray.Search_exhausted with
  | Some (E.Invalid_input { hint = Some h; _ }) ->
    Alcotest.(check bool) "hint names the BGC bound" true (contains h "4096")
  | _ -> Alcotest.fail "BGC Search_exhausted should be Invalid_input");
  (match Errors.classify Nanodec_codes.Arranged_hot.Search_exhausted with
  | Some (E.Invalid_input { hint = Some h; _ }) ->
    Alcotest.(check bool) "hint names the AHC bound" true (contains h "2048")
  | _ -> Alcotest.fail "AHC Search_exhausted should be Invalid_input");
  (match
     Errors.classify (Fault.Injected { site = "cave.window"; key = 1 })
   with
  | Some (E.Worker_crash { injected = true; site; _ }) ->
    Alcotest.(check string) "site kept" "cave.window" site
  | _ -> Alcotest.fail "escaped Injected should be Worker_crash");
  (match Errors.classify (Invalid_argument "nope") with
  | Some (E.Invalid_input { what = "nope"; _ }) -> ()
  | _ -> Alcotest.fail "Invalid_argument should be Invalid_input");
  (match Errors.classify (E.Error (E.Internal { detail = "x" })) with
  | Some (E.Internal _) -> ()
  | _ -> Alcotest.fail "Error payload should unwrap");
  match Errors.classify Not_found with
  | None -> ()
  | Some _ -> Alcotest.fail "unknown exceptions must stay unclassified"

let test_guard () =
  let open Nanodec in
  Alcotest.(check int) "guard passes values through" 42
    (Errors.guard (fun () -> 42));
  (match
     Errors.guard (fun () ->
         raise Nanodec_codes.Balanced_gray.Search_exhausted)
   with
  | exception E.Error (E.Invalid_input _) -> ()
  | _ -> Alcotest.fail "guard should classify");
  match Errors.guard (fun () -> raise Not_found) with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "guard must re-raise unclassified exceptions"

let test_check_int_range () =
  E.check_int_range ~what:"x" ~min:1 ~max:64 1;
  E.check_int_range ~what:"x" ~min:1 ~max:64 64;
  match E.check_int_range ~what:"--domains" ~min:1 ~max:64 65 with
  | exception E.Error (E.Invalid_input { what; _ }) ->
    Alcotest.(check bool) "names the flag" true (contains what "--domains")
  | () -> Alcotest.fail "expected Invalid_input"

let test_of_env () =
  let with_env value f =
    let prev = Sys.getenv_opt Fault.env_var in
    Unix.putenv Fault.env_var value;
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv Fault.env_var (Option.value ~default:"" prev))
      f
  in
  with_env "" (fun () ->
      Alcotest.(check bool) "empty is None" true (Fault.of_env () = None));
  with_env "pool.chunk:crash:max=1" (fun () ->
      match Fault.of_env () with
      | Some e ->
        Alcotest.(check int) "one rule" 1
          (List.length (Fault.plan e).Fault.rules)
      | None -> Alcotest.fail "expected an engine");
  with_env "garbage" (fun () ->
      match Fault.of_env () with
      | exception E.Error (E.Invalid_input _) -> ()
      | _ -> Alcotest.fail "malformed env plan must be Invalid_input")

let test_telemetry_records_faults () =
  let f = engine "pool.chunk:crash:key=0:max=1" in
  let sink = Nanodec_telemetry.Telemetry.create () in
  Fault.set_telemetry f (Some sink);
  let e =
    Run_ctx.with_ctx ~domains:2 ~fault:f (fun ctx -> estimate ~ctx ())
  in
  check_equals_baseline "instrumented chaos run" e;
  Alcotest.(check (list (pair string int)))
    "fired counts by site"
    [ ("pool.chunk", 1) ]
    (Fault.fired f);
  let path = Filename.temp_file "nanodec-fault" ".json" in
  Nanodec_telemetry.Telemetry.write_json sink ~path;
  let ic = open_in path in
  let json = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "sink saw the injection" true
    (contains json "fault.fired.pool.chunk"
    && contains json "fault.injected.crash")

let suite =
  [
    Alcotest.test_case "plan spec round-trips" `Quick test_parse_round_trip;
    Alcotest.test_case "plan spec rejects malformed input" `Quick
      test_parse_rejects;
    Alcotest.test_case "empty/inert plans are no-ops" `Quick test_empty_plan;
    Alcotest.test_case "decisions are a pure function of the plan" `Quick
      test_decision_determinism;
    Alcotest.test_case "crash in first/last chunk is retried" `Quick
      test_crash_first_and_last_chunk;
    Alcotest.test_case "persistent crashes degrade to sequential" `Quick
      test_crash_everywhere_degrades;
    Alcotest.test_case "no-degrade fails closed with Degraded" `Quick
      test_no_degrade_fails_closed;
    Alcotest.test_case "bounded retries clear transient crashes" `Quick
      test_retry_clears_transient;
    Alcotest.test_case "delays never change results" `Quick
      test_delay_is_transparent;
    Alcotest.test_case "pool-less contexts recover too" `Quick
      test_poolless_ctx_recovers;
    Alcotest.test_case "deadline expiry raises Timeout" `Quick
      test_timeout_mid_job;
    Alcotest.test_case "injected stall trips the deadline" `Quick
      test_stall_plus_timeout;
    Alcotest.test_case "cancellation tokens stop the job" `Quick
      test_cancellation;
    Alcotest.test_case "organic exceptions are never retried" `Quick
      test_organic_exceptions_not_retried;
    Alcotest.test_case "exit codes are documented and distinct" `Quick
      test_exit_codes_distinct;
    Alcotest.test_case "classify maps every failure family" `Quick
      test_classify;
    Alcotest.test_case "guard re-raises through the taxonomy" `Quick
      test_guard;
    Alcotest.test_case "check_int_range validates bounds" `Quick
      test_check_int_range;
    Alcotest.test_case "NANODEC_FAULT_PLAN environment activation" `Quick
      test_of_env;
    Alcotest.test_case "telemetry records every injected fault" `Quick
      test_telemetry_records_faults;
  ]
