(* Tests for the PCG32/SplitMix64 generator. *)

open Nanodec_numerics

let test_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for i = 0 to 99 do
    Alcotest.(check int)
      (Printf.sprintf "draw %d" i)
      (Rng.uint32 a) (Rng.uint32 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.uint32 a = Rng.uint32 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_copy_independent () =
  let a = Rng.create ~seed:7 in
  ignore (Rng.uint32 a);
  let b = Rng.copy a in
  let from_a = Rng.uint32 a in
  let from_b = Rng.uint32 b in
  Alcotest.(check int) "copy continues identically" from_a from_b;
  (* Drawing twice from b must not disturb a: a's next draw equals what b
     produced first after the divergence point. *)
  let b_second = Rng.uint32 b in
  ignore (Rng.uint32 b);
  let a_second = Rng.uint32 a in
  Alcotest.(check int) "copies evolve independently" b_second a_second

let test_split_independence () =
  let parent = Rng.create ~seed:3 in
  let child = Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.uint32 parent = Rng.uint32 child then incr same
  done;
  Alcotest.(check bool) "split stream differs" true (!same < 4)

(* Golden values pin the generator's output across runs, builds and
   refactors: any change to the seeding or output function (which would
   silently invalidate every recorded proptest reproduction seed) fails
   here.  Values recorded from the reference implementation. *)
let test_golden_stream () =
  let expected =
    [|
      0x3225c1b3; 0x9452cd8f; 0x46c42e2c; 0xe4c06705;
      0x6f26c3bc; 0xef94f07a; 0x05a7e525; 0xc52da243;
    |]
  in
  let rng = Rng.create ~seed:42 in
  Array.iteri
    (fun i want ->
      Alcotest.(check int)
        (Printf.sprintf "seed 42 draw %d" i)
        want (Rng.uint32 rng))
    expected

let test_golden_split_stream () =
  let expected = [| 0xfaebf702; 0x78e55972; 0x1d4c4737; 0x6f04cf5a |] in
  let child = Rng.split (Rng.create ~seed:2009) in
  Array.iteri
    (fun i want ->
      Alcotest.(check int)
        (Printf.sprintf "split draw %d" i)
        want (Rng.uint32 child))
    expected

let test_golden_mix_seed () =
  Alcotest.(check int) "mix_seed 2009 1" 3586226593598957013
    (Rng.mix_seed 2009 1);
  Alcotest.(check int) "mix_seed 2009 2" 3749792766342769158
    (Rng.mix_seed 2009 2);
  Alcotest.(check int) "mix_seed 0 0" 3348600503766967796 (Rng.mix_seed 0 0);
  for i = 0 to 100 do
    Alcotest.(check bool) "non-negative" true (Rng.mix_seed 2009 i >= 0)
  done

let test_of_seed_and_of_int64_agree () =
  let a = Rng.of_seed 777 and b = Rng.create ~seed:777 in
  let c = Rng.of_int64 777L in
  for _ = 1 to 32 do
    let x = Rng.uint32 a in
    Alcotest.(check int) "of_seed = create" x (Rng.uint32 b);
    Alcotest.(check int) "of_int64 = create on int seeds" x (Rng.uint32 c)
  done

let test_split_n_deterministic_and_distinct () =
  let streams seed =
    Array.map
      (fun r -> List.init 16 (fun _ -> Rng.uint32 r))
      (Rng.split_n (Rng.create ~seed) 8)
  in
  (* Same seed => identical family of split streams across two runs. *)
  Alcotest.(check bool) "two runs agree" true (streams 99 = streams 99);
  let s = streams 99 in
  Array.iteri
    (fun i si ->
      Array.iteri
        (fun j sj ->
          if i < j && si = sj then
            Alcotest.failf "split streams %d and %d identical" i j)
        s)
    s

let test_uint32_range () =
  let rng = Rng.create ~seed:11 in
  for _ = 1 to 1000 do
    let x = Rng.uint32 rng in
    Alcotest.(check bool) "in [0, 2^32)" true (x >= 0 && x < 1 lsl 32)
  done

let test_int_bounds () =
  let rng = Rng.create ~seed:13 in
  List.iter
    (fun bound ->
      for _ = 1 to 500 do
        let x = Rng.int rng bound in
        if x < 0 || x >= bound then
          Alcotest.failf "Rng.int %d produced %d" bound x
      done)
    [ 1; 2; 3; 7; 10; 100; 1 lsl 20 ];
  Alcotest.check_raises "zero bound rejected"
    (Invalid_argument "Rng.int: bound must be in [1, 2^32]") (fun () ->
      ignore (Rng.int rng 0))

let test_int_covers_all_values () =
  let rng = Rng.create ~seed:17 in
  let seen = Array.make 6 false in
  for _ = 1 to 600 do
    seen.(Rng.int rng 6) <- true
  done;
  Alcotest.(check bool) "all residues reached" true (Array.for_all Fun.id seen)

let test_float_range () =
  let rng = Rng.create ~seed:19 in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done;
  for _ = 1 to 100 do
    let x = Rng.float_range rng ~min:(-2.) ~max:3. in
    Alcotest.(check bool) "in [-2,3)" true (x >= -2. && x < 3.)
  done

let test_uniform_mean () =
  let rng = Rng.create ~seed:23 in
  let n = 20_000 in
  let total = ref 0. in
  for _ = 1 to n do
    total := !total +. Rng.float rng
  done;
  let mean = !total /. float_of_int n in
  (* Standard error ~ 0.29/sqrt(20000) ~ 0.002; allow 5 sigma. *)
  Alcotest.(check (float 0.011)) "uniform mean near 0.5" 0.5 mean

let test_gaussian_moments () =
  let rng = Rng.create ~seed:29 in
  let n = 20_000 in
  let draws = Array.init n (fun _ -> Rng.gaussian ~mu:2. ~sigma:3. rng) in
  let s = Descriptive.summarize draws in
  Alcotest.(check (float 0.12)) "gaussian mean" 2. s.Descriptive.mean;
  Alcotest.(check (float 0.15)) "gaussian std" 3. s.Descriptive.std

let test_shuffle_is_permutation () =
  let rng = Rng.create ~seed:31 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_shuffle_list_preserves_elements () =
  let rng = Rng.create ~seed:37 in
  let xs = [ 1; 2; 3; 4; 5; 6; 7 ] in
  let shuffled = Rng.shuffle_list rng xs in
  Alcotest.(check (list int)) "same multiset" xs (List.sort Int.compare shuffled)

let test_pick () =
  let rng = Rng.create ~seed:41 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let x = Rng.pick rng a in
    Alcotest.(check bool) "picked element" true (Array.mem x a)
  done;
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick rng [||]))

let prop_int_unbiased_small =
  (* Chi-square-ish check on a small modulus: each bucket within 3x of
     expectation would be far too lax; use +/- 25 %. *)
  QCheck.Test.make ~name:"Rng.int roughly uniform" ~count:5
    QCheck.(int_range 2 9)
    (fun bound ->
      let rng = Rng.create ~seed:(bound * 1009) in
      let counts = Array.make bound 0 in
      let n = 4000 * bound in
      for _ = 1 to n do
        let x = Rng.int rng bound in
        counts.(x) <- counts.(x) + 1
      done;
      let expected = float_of_int n /. float_of_int bound in
      Array.for_all
        (fun c ->
          let ratio = float_of_int c /. expected in
          ratio > 0.75 && ratio < 1.25)
        counts)

let suite =
  [
    Alcotest.test_case "same seed, same stream" `Quick test_determinism;
    Alcotest.test_case "different seeds differ" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy is independent" `Quick test_copy_independent;
    Alcotest.test_case "split is independent" `Quick test_split_independence;
    Alcotest.test_case "golden stream (cross-run determinism)" `Quick
      test_golden_stream;
    Alcotest.test_case "golden split stream" `Quick test_golden_split_stream;
    Alcotest.test_case "golden mix_seed" `Quick test_golden_mix_seed;
    Alcotest.test_case "of_seed/of_int64 agree with create" `Quick
      test_of_seed_and_of_int64_agree;
    Alcotest.test_case "split_n deterministic and distinct" `Quick
      test_split_n_deterministic_and_distinct;
    Alcotest.test_case "uint32 range" `Quick test_uint32_range;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int covers residues" `Quick test_int_covers_all_values;
    Alcotest.test_case "float ranges" `Quick test_float_range;
    Alcotest.test_case "uniform mean" `Quick test_uniform_mean;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "shuffle_list preserves" `Quick
      test_shuffle_list_preserves_elements;
    Alcotest.test_case "pick" `Quick test_pick;
    QCheck_alcotest.to_alcotest prop_int_unbiased_small;
  ]
