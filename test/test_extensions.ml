(* Tests for the extension modules: code metrics, the stochastic-assembly
   baseline, defect maps, the crossbar memory + remap layer, CSV export
   and the ablation framework. *)

open Nanodec_codes
open Nanodec_numerics
open Nanodec_crossbar
open Nanodec

(* --- Metrics --- *)

let test_metrics_gray () =
  let m = Metrics.of_codebook ~radix:2 ~length:8 Codebook.Gray in
  Alcotest.(check int) "words" 16 m.Metrics.n_words;
  Alcotest.(check int) "distinct" 16 m.Metrics.distinct_words;
  Alcotest.(check int) "per-step transitions" 2 m.Metrics.max_step_transitions;
  Alcotest.(check int) "min = max" 2 m.Metrics.min_step_transitions;
  Alcotest.(check int) "total = 2*(omega-1)" 30 m.Metrics.total_transitions;
  Alcotest.(check int) "min pairwise distance" 2 m.Metrics.min_pairwise_distance

let test_metrics_tree_not_gray () =
  let m = Metrics.of_codebook ~radix:2 ~length:8 Codebook.Tree in
  Alcotest.(check bool) "not gray" false m.Metrics.is_gray;
  Alcotest.(check bool) "not balanced" false m.Metrics.is_balanced;
  Alcotest.(check bool) "more transitions than Gray" true
    (m.Metrics.total_transitions > 30)

let test_metrics_bgc_balanced () =
  let m = Metrics.of_codebook ~radix:2 ~length:10 Codebook.Balanced_gray in
  (* The cycle is balanced (spread <= 2); the open path loses the closing
     edge, so its spectrum spread can be one larger. *)
  Alcotest.(check bool) "path spread <= 3" true (m.Metrics.spectrum_spread <= 3);
  let m8 = Metrics.of_codebook ~radix:2 ~length:8 Codebook.Balanced_gray in
  (* The base-4 cycle is perfectly balanced (4,4,4,4): even as a path the
     spread stays within 2. *)
  Alcotest.(check bool) "M=8 path balanced" true m8.Metrics.is_balanced

let test_metrics_unreflected_gray_property () =
  (* The base (unreflected) Gray sequence is a genuine Gray code. *)
  let m = Metrics.of_words (Gray_code.words ~radix:3 ~base_len:3 ~count:27) in
  Alcotest.(check bool) "gray" true m.Metrics.is_gray;
  Alcotest.(check int) "one digit per step" 1 m.Metrics.max_step_transitions

let test_metrics_duplicates_counted () =
  let w = Word.of_string ~radix:2 "01" in
  let m = Metrics.of_words [ w; w; w ] in
  Alcotest.(check int) "three words" 3 m.Metrics.n_words;
  Alcotest.(check int) "one distinct" 1 m.Metrics.distinct_words;
  Alcotest.(check int) "no transitions" 0 m.Metrics.total_transitions;
  Alcotest.(check int) "pairwise distance degenerate" 0
    m.Metrics.min_pairwise_distance

let test_metrics_guards () =
  Alcotest.check_raises "empty" (Invalid_argument "Metrics.of_words: empty sequence")
    (fun () -> ignore (Metrics.of_words []))

(* --- Stochastic baseline --- *)

let test_stochastic_closed_forms () =
  let a = Stochastic.analyze ~omega:16 ~group_size:16 in
  Alcotest.(check (float 1e-9)) "p unique" ((15. /. 16.) ** 15.)
    a.Stochastic.p_wire_unique;
  Alcotest.(check (float 1e-9)) "expected unique"
    (16. *. ((15. /. 16.) ** 15.))
    a.Stochastic.expected_unique_wires;
  Alcotest.(check int) "deterministic" 16 a.Stochastic.deterministic_unique_wires

let test_stochastic_all_distinct_degenerate () =
  let a = Stochastic.analyze ~omega:4 ~group_size:5 in
  Alcotest.(check (float 0.)) "pigeonhole" 0. a.Stochastic.p_all_distinct;
  let b = Stochastic.analyze ~omega:4 ~group_size:1 in
  Alcotest.(check (float 1e-9)) "single wire trivially distinct" 1.
    b.Stochastic.p_all_distinct;
  Alcotest.(check (float 1e-9)) "single wire unique" 1.
    b.Stochastic.p_wire_unique

let test_stochastic_all_distinct_small_case () =
  (* Omega=2, g=2: P(distinct) = 2!/0!/2^2 = 0.5. *)
  let a = Stochastic.analyze ~omega:2 ~group_size:2 in
  Alcotest.(check (float 1e-9)) "half" 0.5 a.Stochastic.p_all_distinct

let test_stochastic_loss_positive () =
  Alcotest.(check bool) "loss in (0,1)" true
    (let loss = Stochastic.stochastic_loss ~omega:16 ~group_size:16 in
     loss > 0.5 && loss < 0.7)

let test_stochastic_mc_agrees () =
  let rng = Rng.create ~seed:99 in
  let e = Stochastic.mc_unique_fraction rng ~samples:2000 ~omega:16 ~group_size:16 in
  let analytic = (Stochastic.analyze ~omega:16 ~group_size:16).Stochastic.p_wire_unique in
  let slack = 6. *. e.Montecarlo.std_error in
  if Float.abs (e.Montecarlo.mean -. analytic) > slack then
    Alcotest.failf "MC %g vs analytic %g" e.Montecarlo.mean analytic

let prop_stochastic_unique_decreases_in_group =
  QCheck.Test.make ~name:"unique probability decreases with group size"
    ~count:100
    QCheck.(triple (int_range 2 64) (int_range 1 40) (int_range 1 40))
    (fun (omega, g1, g2) ->
      let lo = Stdlib.min g1 g2 and hi = Stdlib.max g1 g2 in
      (Stochastic.analyze ~omega ~group_size:lo).Stochastic.p_wire_unique
      >= (Stochastic.analyze ~omega ~group_size:hi).Stochastic.p_wire_unique
         -. 1e-12)

(* --- Defect map / Memory / Remap --- *)

let small_config =
  {
    Array_sim.cave =
      { Cave.default_config with Cave.code_length = 8; n_wires = 10 };
    raw_bits = 1024;
  }

let test_defect_map_statistics () =
  let analysis = Cave.analyze small_config.Array_sim.cave in
  let rng = Rng.create ~seed:4 in
  (* Average realized layer yield over many samples ~ analytic yield. *)
  let samples = 300 in
  let total = ref 0. in
  for _ = 1 to samples do
    let states = Defect_map.sample_layer rng analysis ~wires:100 in
    total := !total +. Defect_map.layer_yield states
  done;
  let mean = !total /. float_of_int samples in
  Alcotest.(check (float 0.03)) "realized ~ analytic" analysis.Cave.yield mean

let test_defect_map_layout_wires_always_dead () =
  let analysis = Cave.analyze small_config.Array_sim.cave in
  let rng = Rng.create ~seed:5 in
  let n = analysis.Cave.config.Cave.n_wires in
  let states = Defect_map.sample_layer rng analysis ~wires:(3 * n) in
  Array.iteri
    (fun w state ->
      match analysis.Cave.layout.Geometry.statuses.(w mod n) with
      | Geometry.Shared_between_pads _ | Geometry.Excess_in_pad _ ->
        if state <> Defect_map.Removed_by_layout then
          Alcotest.failf "wire %d should be layout-removed" w
      | Geometry.Addressable _ ->
        if state = Defect_map.Removed_by_layout then
          Alcotest.failf "wire %d wrongly layout-removed" w)
    states

let test_memory_dimensions () =
  let rng = Rng.create ~seed:6 in
  let memory = Memory.create rng small_config in
  Alcotest.(check int) "rows" 32 (Memory.n_rows memory);
  Alcotest.(check int) "cols" 32 (Memory.n_cols memory);
  Alcotest.(check bool) "usable <= raw" true
    (Memory.usable_crosspoints memory <= 32 * 32)

let find_wire states p =
  let rec go i =
    if i >= Array.length states then None
    else if p states.(i) then Some i
    else go (i + 1)
  in
  go 0

let test_memory_read_write_roundtrip () =
  let rng = Rng.create ~seed:7 in
  let memory = Memory.create rng small_config in
  let good s = s = Defect_map.Working in
  match
    ( find_wire (Memory.row_states memory) good,
      find_wire (Memory.col_states memory) good )
  with
  | Some row, Some col ->
    Alcotest.(check bool) "usable" true (Memory.crosspoint_usable memory ~row ~col);
    Alcotest.(check bool) "initially 0" true
      (Memory.read memory ~row ~col = Ok false);
    Alcotest.(check bool) "write ok" true (Memory.write memory ~row ~col true = Ok ());
    Alcotest.(check bool) "reads back" true (Memory.read memory ~row ~col = Ok true);
    Alcotest.(check bool) "write 0" true (Memory.write memory ~row ~col false = Ok ());
    Alcotest.(check bool) "cleared" true (Memory.read memory ~row ~col = Ok false)
  | _, _ -> Alcotest.fail "no working wires in sample"

let test_memory_faults () =
  let rng = Rng.create ~seed:8 in
  let memory = Memory.create rng small_config in
  let bad s = s <> Defect_map.Working in
  (match find_wire (Memory.row_states memory) bad with
  | Some row ->
    Alcotest.(check bool) "defective row" true
      (Memory.write memory ~row ~col:0 true = Error `Defective_row)
  | None -> ());
  Alcotest.(check bool) "out of range" true
    (Memory.read memory ~row:(-1) ~col:0 = Error `Out_of_range);
  Alcotest.(check bool) "out of range col" true
    (Memory.read memory ~row:0 ~col:99 = Error `Out_of_range)

let test_remap_capacity_and_roundtrip () =
  let rng = Rng.create ~seed:9 in
  let memory = Memory.create rng small_config in
  let remap = Remap.build memory in
  Alcotest.(check int) "capacity = usable crosspoints"
    (Memory.usable_crosspoints memory)
    (Remap.capacity_bits remap);
  let payload = "nanodec" in
  Remap.store_string remap payload;
  Alcotest.(check string) "string roundtrip" payload
    (Remap.load_string remap ~length:(String.length payload));
  (* Bit-level access. *)
  Remap.set_bit remap 0 true;
  Alcotest.(check bool) "bit set" true (Remap.get_bit remap 0);
  Remap.set_bit remap 0 false;
  Alcotest.(check bool) "bit cleared" false (Remap.get_bit remap 0)

let test_remap_physical_targets_working_wires () =
  let rng = Rng.create ~seed:10 in
  let memory = Memory.create rng small_config in
  let remap = Remap.build memory in
  for k = 0 to Stdlib.min 200 (Remap.capacity_bits remap) - 1 do
    let row, col = Remap.physical_of_logical remap k in
    if not (Memory.crosspoint_usable memory ~row ~col) then
      Alcotest.failf "logical %d maps to dead crosspoint (%d,%d)" k row col
  done

let test_remap_guards () =
  let rng = Rng.create ~seed:11 in
  let memory = Memory.create rng small_config in
  let remap = Remap.build memory in
  Alcotest.(check bool) "negative logical" true
    (try
       ignore (Remap.physical_of_logical remap (-1));
       false
     with Invalid_argument _ -> true)

let prop_remap_bits_independent =
  QCheck.Test.make ~name:"remap bits are independent cells" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let memory = Memory.create rng small_config in
      let remap = Remap.build memory in
      let n = Stdlib.min 64 (Remap.capacity_bits remap) in
      (* Write a pattern, then verify nothing leaked between cells. *)
      for k = 0 to n - 1 do
        Remap.set_bit remap k (k mod 3 = 0)
      done;
      let ok = ref true in
      for k = 0 to n - 1 do
        if Remap.get_bit remap k <> (k mod 3 = 0) then ok := false
      done;
      !ok)

(* --- Export --- *)

let lines s = String.split_on_char '\n' (String.trim s)

let test_csv_shapes () =
  Alcotest.(check int) "fig5 rows" 7 (List.length (lines (Export.fig5_csv ())));
  Alcotest.(check int) "fig7 rows" 13 (List.length (lines (Export.fig7_csv ())));
  Alcotest.(check int) "fig8 rows" 16 (List.length (lines (Export.fig8_csv ())));
  (* fig6: header + 6 surfaces x 20 wires x (8 or 10) digits. *)
  Alcotest.(check int) "fig6 rows"
    (1 + (20 * 8 * 2) + (20 * 10 * 2) + (20 * 8) + (20 * 10))
    (List.length (lines (Export.fig6_csv ())))

let test_csv_headers () =
  let first s = List.hd (lines s) in
  Alcotest.(check string) "fig5 header" "radix,code,length,phi"
    (first (Export.fig5_csv ()));
  Alcotest.(check string) "fig7 header" "code,length,crossbar_yield"
    (first (Export.fig7_csv ()))

let test_export_writes_files () =
  let dir = Filename.temp_file "nanodec" "" in
  Sys.remove dir;
  Export.write_all ~dir;
  List.iter
    (fun name ->
      let path = Filename.concat dir name in
      Alcotest.(check bool) (name ^ " exists") true (Sys.file_exists path))
    [ "fig5.csv"; "fig6.csv"; "fig7.csv"; "fig8.csv"; "sweep.csv";
      "fig5.gp"; "fig7.gp"; "fig8.gp" ]

let test_gnuplot_scripts_reference_csvs () =
  let contains needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
    scan 0
  in
  List.iter
    (fun (figure, csv) ->
      let script = Export.gnuplot_script figure in
      Alcotest.(check bool) (csv ^ " referenced") true (contains csv script))
    [ (`Fig5, "fig5.csv"); (`Fig7, "fig7.csv"); (`Fig8, "fig8.csv") ]

(* --- Ablation --- *)

let test_ablation_conclusion_robust () =
  List.iter
    (fun series ->
      Alcotest.(check bool)
        (series.Ablation.parameter ^ ": BGC >= TC everywhere")
        true
        (Ablation.conclusion_holds series))
    (Ablation.all ())

let test_ablation_points_populated () =
  let series = Ablation.sigma_t () in
  Alcotest.(check int) "5 points" 5 (List.length series.Ablation.points);
  List.iter
    (fun p ->
      Alcotest.(check bool) "yields in [0,1]" true
        (p.Ablation.tree_yield >= 0. && p.Ablation.tree_yield <= 1.
        && p.Ablation.bgc_yield >= 0. && p.Ablation.bgc_yield <= 1.))
    series.Ablation.points

let test_ablation_sigma_monotone () =
  let series = Ablation.sigma_t () in
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "yield falls with noise" true
        (b.Ablation.bgc_yield <= a.Ablation.bgc_yield +. 1e-9);
      check rest
    | [ _ ] | [] -> ()
  in
  check series.Ablation.points

(* --- scaling study --- *)

let test_scaling_nodes_monotone () =
  let points = Scaling.sweep_nodes () in
  Alcotest.(check int) "four nodes" 4 (List.length points);
  (* Finer lithography never makes the best bit area worse. *)
  let rec check = function
    | (a : Scaling.point) :: (b :: _ as rest) ->
      Alcotest.(check bool) "bit area improves with scaling" true
        (b.Scaling.best_bit_area <= a.Scaling.best_bit_area +. 1e-9);
      check rest
    | [ _ ] | [] -> ()
  in
  check points

let test_scaling_memory_amortises () =
  let points = Scaling.sweep_memory_sizes () in
  let first = List.nth points 0
  and last = List.nth points (List.length points - 1) in
  Alcotest.(check bool) "bigger memory, denser bits" true
    (last.Scaling.best_bit_area < first.Scaling.best_bit_area);
  (* Large arrays favour the longer optimized code. *)
  Alcotest.(check string) "BGC wins at scale" "BGC"
    (Codebook.name last.Scaling.best_code)

let test_mc_realized_yield_matches_analytic () =
  let config =
    { Array_sim.cave = { Cave.default_config with Cave.code_length = 8 };
      raw_bits = 4096 }
  in
  let analytic = (Array_sim.evaluate config).Array_sim.crossbar_yield in
  let rng = Rng.create ~seed:55 in
  let estimate = Memory.mc_realized_yield rng ~samples:200 config in
  let slack = 6. *. estimate.Montecarlo.std_error in
  if Float.abs (estimate.Montecarlo.mean -. analytic) > slack then
    Alcotest.failf "MC %g vs analytic %g" estimate.Montecarlo.mean analytic

(* --- multi-valued Fig. 6 extension --- *)

let test_fig6_multivalued_ternary () =
  let surfaces = Figures.fig6_multivalued ~radix:3 () in
  (* Ternary minimal M has Omega = 27 <= 32: BGC included. *)
  Alcotest.(check int) "three families" 3 (List.length surfaces);
  let find ct =
    List.find (fun (s : Figures.fig6_surface) -> s.code_type = ct) surfaces
  in
  let tc = find Codebook.Tree and gc = find Codebook.Gray in
  Alcotest.(check bool) "GC flattens at radix 3" true
    (gc.Figures.mean_nu < tc.Figures.mean_nu)

let test_fig6_multivalued_quaternary () =
  let surfaces = Figures.fig6_multivalued ~radix:4 () in
  Alcotest.(check bool) "at least TC and GC" true (List.length surfaces >= 2);
  let find ct =
    List.find (fun (s : Figures.fig6_surface) -> s.code_type = ct) surfaces
  in
  Alcotest.(check bool) "GC flattens at radix 4" true
    ((find Codebook.Gray).Figures.mean_nu
    < (find Codebook.Tree).Figures.mean_nu)

(* --- printer smoke tests --- *)

let test_printers_render () =
  let non_empty name s =
    Alcotest.(check bool) (name ^ " renders") true (String.length s > 0)
  in
  let r = Design.evaluate (Design.spec ~code_type:Codebook.Tree ~code_length:8 ()) in
  non_empty "design" (Format.asprintf "%a" Design.pp_report r);
  non_empty "metrics"
    (Format.asprintf "%a" Metrics.pp
       (Metrics.of_codebook ~radix:2 ~length:8 Codebook.Gray));
  non_empty "stochastic"
    (Format.asprintf "%a" Stochastic.pp (Stochastic.analyze ~omega:8 ~group_size:8));
  non_empty "ablation"
    (Format.asprintf "%a" Ablation.pp (Ablation.margin ()));
  non_empty "scaling"
    (Format.asprintf "%a" Scaling.pp_point
       (List.hd (Scaling.sweep_memory_sizes ~sizes:[ 4 ] ())));
  let estimate =
    Nanodec_mspt.Cost_model.of_pattern ~h:Nanodec_mspt.Doping.paper_example_h
      (Nanodec_mspt.Pattern.of_codebook ~radix:2 ~length:6 ~n_wires:4
         Codebook.Gray)
  in
  non_empty "cost" (Format.asprintf "%a" Nanodec_mspt.Cost_model.pp estimate)

let test_margin_guard () =
  Alcotest.check_raises "margin > 0.5"
    (Invalid_argument "Cave: margin_fraction outside (0, 0.5]") (fun () ->
      ignore (Cave.analyze { Cave.default_config with Cave.margin_fraction = 0.7 }))

let suite =
  [
    Alcotest.test_case "metrics: gray" `Quick test_metrics_gray;
    Alcotest.test_case "metrics: tree" `Quick test_metrics_tree_not_gray;
    Alcotest.test_case "metrics: bgc" `Quick test_metrics_bgc_balanced;
    Alcotest.test_case "metrics: unreflected gray" `Quick
      test_metrics_unreflected_gray_property;
    Alcotest.test_case "metrics: duplicates" `Quick test_metrics_duplicates_counted;
    Alcotest.test_case "metrics: guards" `Quick test_metrics_guards;
    Alcotest.test_case "stochastic: closed forms" `Quick
      test_stochastic_closed_forms;
    Alcotest.test_case "stochastic: degenerate cases" `Quick
      test_stochastic_all_distinct_degenerate;
    Alcotest.test_case "stochastic: small case" `Quick
      test_stochastic_all_distinct_small_case;
    Alcotest.test_case "stochastic: loss magnitude" `Quick
      test_stochastic_loss_positive;
    Alcotest.test_case "stochastic: MC agrees" `Slow test_stochastic_mc_agrees;
    QCheck_alcotest.to_alcotest prop_stochastic_unique_decreases_in_group;
    Alcotest.test_case "defect map statistics" `Slow test_defect_map_statistics;
    Alcotest.test_case "defect map layout wires" `Quick
      test_defect_map_layout_wires_always_dead;
    Alcotest.test_case "memory dimensions" `Quick test_memory_dimensions;
    Alcotest.test_case "memory read/write" `Quick test_memory_read_write_roundtrip;
    Alcotest.test_case "memory faults" `Quick test_memory_faults;
    Alcotest.test_case "remap capacity/roundtrip" `Quick
      test_remap_capacity_and_roundtrip;
    Alcotest.test_case "remap targets working wires" `Quick
      test_remap_physical_targets_working_wires;
    Alcotest.test_case "remap guards" `Quick test_remap_guards;
    QCheck_alcotest.to_alcotest prop_remap_bits_independent;
    Alcotest.test_case "csv shapes" `Quick test_csv_shapes;
    Alcotest.test_case "csv headers" `Quick test_csv_headers;
    Alcotest.test_case "export writes files" `Slow test_export_writes_files;
    Alcotest.test_case "gnuplot scripts" `Quick
      test_gnuplot_scripts_reference_csvs;
    Alcotest.test_case "ablation conclusion robust" `Slow
      test_ablation_conclusion_robust;
    Alcotest.test_case "ablation points" `Slow test_ablation_points_populated;
    Alcotest.test_case "ablation monotone in sigma" `Slow
      test_ablation_sigma_monotone;
    Alcotest.test_case "printers render" `Slow test_printers_render;
    Alcotest.test_case "margin guard" `Quick test_margin_guard;
    Alcotest.test_case "scaling: nodes monotone" `Slow
      test_scaling_nodes_monotone;
    Alcotest.test_case "scaling: memory amortises" `Slow
      test_scaling_memory_amortises;
    Alcotest.test_case "MC realized yield" `Slow
      test_mc_realized_yield_matches_analytic;
    Alcotest.test_case "fig6 multivalued ternary" `Quick
      test_fig6_multivalued_ternary;
    Alcotest.test_case "fig6 multivalued quaternary" `Quick
      test_fig6_multivalued_quaternary;
  ]
