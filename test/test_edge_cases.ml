(* Degenerate-dimension behaviour that had no coverage: one-wire caves,
   zero-region words/matrices and empty codebooks, across Imatrix,
   Mspt.Doping and Codes.Metrics.  Degenerate inputs must either work
   (N = 1 is a legal half cave) or fail loudly with Invalid_argument —
   never return garbage. *)

open Nanodec_numerics
open Nanodec_codes
open Nanodec_mspt
open Nanodec_crossbar

let raises_invalid f =
  match f () with
  | _ -> false
  | exception Invalid_argument _ -> true

(* --- Imatrix / Fmatrix: zero dimensions are rejected, 1x1 works --- *)

let test_imatrix_zero_dims_rejected () =
  Alcotest.(check bool) "0 rows" true
    (raises_invalid (fun () -> Imatrix.make ~rows:0 ~cols:3 0));
  Alcotest.(check bool) "0 cols" true
    (raises_invalid (fun () -> Imatrix.make ~rows:3 ~cols:0 0));
  Alcotest.(check bool) "init 0x0" true
    (raises_invalid (fun () -> Imatrix.init ~rows:0 ~cols:0 (fun _ _ -> 0)));
  Alcotest.(check bool) "of_arrays [||]" true
    (raises_invalid (fun () -> Imatrix.of_arrays [||]));
  Alcotest.(check bool) "of_arrays [| [||] |]" true
    (raises_invalid (fun () -> Imatrix.of_arrays [| [||] |]))

let test_imatrix_1x1 () =
  let m = Imatrix.make ~rows:1 ~cols:1 7 in
  Alcotest.(check int) "sum" 7 (Imatrix.sum m);
  Alcotest.(check int) "max" 7 (Imatrix.max_entry m);
  Alcotest.(check int) "min" 7 (Imatrix.min_entry m);
  let t = Imatrix.transpose m in
  Alcotest.(check bool) "transpose identity" true (Imatrix.equal m t);
  Alcotest.(check int) "count" 1 (Imatrix.count (fun x -> x = 7) m)

let test_imatrix_single_row_transpose () =
  let m = Imatrix.of_arrays [| [| 1; 2; 3 |] |] in
  let t = Imatrix.transpose m in
  Alcotest.(check int) "rows" 3 (Imatrix.rows t);
  Alcotest.(check int) "cols" 1 (Imatrix.cols t);
  Alcotest.(check int) "entry" 3 (Imatrix.get t 2 0)

(* --- M = 0 regions: empty words and patterns are rejected --- *)

let test_empty_word_rejected () =
  Alcotest.(check bool) "Word.make [||]" true
    (raises_invalid (fun () -> Word.make ~radix:2 [||]));
  Alcotest.(check bool) "Word.of_string \"\"" true
    (raises_invalid (fun () -> Word.of_string ~radix:2 ""))

let test_empty_pattern_rejected () =
  Alcotest.(check bool) "Pattern.of_words []" true
    (raises_invalid (fun () -> Pattern.of_words []));
  Alcotest.(check bool) "Pattern.of_codebook ~n_wires:0" true
    (raises_invalid (fun () ->
         Pattern.of_codebook ~radix:2 ~length:4 ~n_wires:0 Codebook.Gray))

(* --- N = 1: a single-wire cave is legal and self-consistent --- *)

let test_single_wire_doping () =
  let w = Word.of_string ~radix:3 "0212" in
  let p = Pattern.of_words [ w ] in
  let d, s = Doping.of_pattern ~h:Doping.paper_example_h p in
  (* With one wire the only fabrication step deposits the full dose:
     S = D. *)
  Alcotest.(check bool) "S = D for N = 1" true (Fmatrix.equal s d);
  Alcotest.(check bool) "round trip" true
    (Fmatrix.equal (Doping.final_of_step s) d);
  (* phi of the single step = distinct digit values of the word. *)
  Alcotest.(check (array int)) "phi = distinct digits" [| 3 |]
    (Complexity.phi_per_step p);
  Alcotest.(check int) "Phi total" 3 (Complexity.total p);
  (* Every region is doped exactly once. *)
  let nu = Variability.nu_matrix p in
  Alcotest.(check int) "nu all ones" (Word.length w) (Imatrix.sum nu);
  Alcotest.(check (float 1e-12)) "||Sigma||_1 = M * sigma^2"
    (4. *. 0.05 *. 0.05)
    (Variability.sigma_norm1 ~sigma_t:0.05 p)

let test_single_wire_cave_analysis () =
  let config =
    { Cave.default_config with Cave.code_length = 4; n_wires = 1 }
  in
  let analysis = Cave.analyze config in
  Alcotest.(check int) "one wire probability" 1
    (Array.length analysis.Cave.wire_probability);
  Alcotest.(check bool) "yield in [0,1]" true
    (analysis.Cave.yield >= 0. && analysis.Cave.yield <= 1.);
  let map =
    Defect_map.sample_layer (Rng.create ~seed:1) analysis ~wires:1
  in
  Alcotest.(check int) "one-wire defect map" 1 (Array.length map)

(* --- Codes.Metrics: empty and single-word sequences --- *)

let test_metrics_empty_rejected () =
  Alcotest.(check bool) "of_words []" true
    (raises_invalid (fun () -> Metrics.of_words []));
  Alcotest.(check bool) "of_codebook ~count:0" true
    (raises_invalid (fun () ->
         Metrics.of_codebook ~radix:2 ~length:4 ~count:0 Codebook.Tree))

let test_metrics_single_word () =
  let m = Metrics.of_words [ Word.of_string ~radix:2 "0110" ] in
  Alcotest.(check int) "n_words" 1 m.Metrics.n_words;
  Alcotest.(check int) "no transitions" 0 m.Metrics.total_transitions;
  Alcotest.(check int) "min step" 0 m.Metrics.min_step_transitions;
  Alcotest.(check int) "max step" 0 m.Metrics.max_step_transitions;
  Alcotest.(check int) "distinct" 1 m.Metrics.distinct_words;
  Alcotest.(check int) "pairwise distance degenerate" 0
    m.Metrics.min_pairwise_distance

let test_metrics_duplicate_words () =
  let w = Word.of_string ~radix:2 "01" in
  let m = Metrics.of_words [ w; w; w ] in
  Alcotest.(check int) "distinct" 1 m.Metrics.distinct_words;
  Alcotest.(check int) "transitions" 0 m.Metrics.total_transitions;
  Alcotest.(check int) "duplicates at distance 0" 0
    m.Metrics.min_pairwise_distance

(* --- empty codebook requests --- *)

let test_codebook_count_zero () =
  List.iter
    (fun family ->
      let length = if Codebook.uses_reflection family then 4 else 4 in
      let words = Codebook.sequence ~radix:2 ~length ~count:0 family in
      Alcotest.(check int)
        (Codebook.name family ^ " count 0")
        0 (List.length words))
    Codebook.all_types

let suite =
  [
    Alcotest.test_case "Imatrix: zero dimensions rejected" `Quick
      test_imatrix_zero_dims_rejected;
    Alcotest.test_case "Imatrix: 1x1" `Quick test_imatrix_1x1;
    Alcotest.test_case "Imatrix: single-row transpose" `Quick
      test_imatrix_single_row_transpose;
    Alcotest.test_case "Word: empty rejected" `Quick test_empty_word_rejected;
    Alcotest.test_case "Pattern: empty rejected" `Quick
      test_empty_pattern_rejected;
    Alcotest.test_case "Doping: single wire (N=1)" `Quick
      test_single_wire_doping;
    Alcotest.test_case "Cave: single wire analysis" `Quick
      test_single_wire_cave_analysis;
    Alcotest.test_case "Metrics: empty rejected" `Quick
      test_metrics_empty_rejected;
    Alcotest.test_case "Metrics: single word" `Quick test_metrics_single_word;
    Alcotest.test_case "Metrics: duplicate words" `Quick
      test_metrics_duplicate_words;
    Alcotest.test_case "Codebook: count 0 is empty" `Quick
      test_codebook_count_zero;
  ]
