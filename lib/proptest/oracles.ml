open Nanodec_codes
open Nanodec_numerics
open Nanodec_mspt
open Nanodec_crossbar
open Gen

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

(* Balanced-Gray and arranged-hot constructions are search-based with a
   node budget; exhaustion on a large space is a documented limitation,
   not a proposition violation, so those cases pass vacuously. *)
let sequence_opt ~radix ~length ~count family =
  match Codebook.sequence ~radix ~length ~count family with
  | words -> Some words
  | exception (Arranged_hot.Search_exhausted | Balanced_gray.Search_exhausted)
    ->
    None

(* Transition-driven part of Phi plus full ||Sigma||_1, the quantities
   Propositions 4-5 compare across arrangements (the last step's phi
   depends only on the final word, which the proofs hold fixed). *)
let costs_of_words words =
  let p = Pattern.of_words words in
  let phi = Complexity.phi_per_step p in
  let transition_phi =
    Array.fold_left ( + ) 0 (Array.sub phi 0 (Array.length phi - 1))
  in
  (transition_phi, Variability.sigma_norm1 ~sigma_t:1. p)

(* --- Proposition 1: D = h(P) with h an elementwise bijection --- *)

let h_bijectivity =
  Property.make ~name:"Prop 1: h = f.g is a bijection digit<->doping"
    ~print:(fun (r, rail) ->
      Printf.sprintf "radix %d, placement Spread %.2f" r rail)
    (pair (int_range ~origin:2 2 6) (float_range 0.05 0.3))
    (fun (r, rail) ->
      let levels =
        Nanodec_physics.Vt_levels.make ~radix:r
          ~placement:(Nanodec_physics.Vt_levels.Spread rail) ()
      in
      let dopings =
        List.init r (fun d -> Nanodec_physics.Vt_levels.doping_of_digit levels d)
      in
      (* strictly monotone => injective; the inverse recovers the digit *)
      let monotone =
        List.for_all2
          (fun a b -> a < b)
          (List.filteri (fun i _ -> i < r - 1) dopings)
          (List.tl dopings)
      in
      monotone
      && List.for_all
           (fun d ->
             Nanodec_physics.Vt_levels.digit_of_doping levels
               (Nanodec_physics.Vt_levels.doping_of_digit levels d)
             = d)
           (List.init r Fun.id))

let final_matrix_is_elementwise_h =
  Property.make ~name:"Def 2: D_i^j = h(P_i^j) elementwise"
    ~print:Generators.string_of_pattern_with_h Generators.pattern_with_h
    (fun (p, h) ->
      let d = Doping.final_matrix ~h p in
      let ok = ref true in
      for i = 0 to Pattern.n_wires p - 1 do
        for j = 0 to Pattern.n_regions p - 1 do
          if Fmatrix.get d i j <> h (Pattern.digit p ~wire:i ~region:j) then
            ok := false
        done
      done;
      !ok)

(* --- Proposition 2 / Definition 3: S and D determine each other --- *)

let step_matrix_definition =
  Property.make ~name:"Def 3: S_i = D_i - D_{i+1}, S_{N-1} = D_{N-1}"
    ~print:Generators.string_of_pattern_with_h Generators.pattern_with_h
    (fun (p, h) ->
      let d, s = Doping.of_pattern ~h p in
      let n = Fmatrix.rows d and m = Fmatrix.cols d in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to m - 1 do
          let expected =
            if i = n - 1 then Fmatrix.get d i j
            else Fmatrix.get d i j -. Fmatrix.get d (i + 1) j
          in
          if Fmatrix.get s i j <> expected then ok := false
        done
      done;
      !ok)

let step_final_round_trip =
  Property.make ~name:"Prop 2: D -> S -> D round-trips (suffix sums)"
    ~print:Generators.string_of_pattern_with_h Generators.pattern_with_h
    (fun (p, h) ->
      let d, s = Doping.of_pattern ~h p in
      let d' = Doping.final_of_step s in
      Fmatrix.rows d' = Fmatrix.rows d
      && Fmatrix.cols d' = Fmatrix.cols d
      &&
      let ok = ref true in
      for i = 0 to Fmatrix.rows d - 1 do
        for j = 0 to Fmatrix.cols d - 1 do
          if not (approx (Fmatrix.get d' i j) (Fmatrix.get d i j)) then
            ok := false
        done
      done;
      !ok)

(* --- Definition 4 / Proposition 5: phi_i = distinct non-zero doses --- *)

let phi_dose_pattern_equivalence =
  Property.make
    ~name:"Def 4: phi from pattern = distinct non-zero doses of S"
    ~print:Generators.string_of_pattern_with_h Generators.pattern_with_h
    (fun (p, h) ->
      let _, s = Doping.of_pattern ~h p in
      Complexity.phi_per_step p = Complexity.phi_per_step_of_doses s)

(* --- Definition 5 / Proposition 4 mechanism: nu counts doping hits --- *)

let nu_counts_operations =
  Property.make ~name:"Def 5: nu_i^j = #{k >= i | S_k^j <> 0}"
    ~print:Generators.string_of_pattern_with_h Generators.pattern_with_h
    (fun (p, h) ->
      let _, s = Doping.of_pattern ~h p in
      let nu = Variability.nu_matrix p in
      let n = Fmatrix.rows s and m = Fmatrix.cols s in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to m - 1 do
          let brute = ref 0 in
          for k = i to n - 1 do
            if Fmatrix.get s k j <> 0. then incr brute
          done;
          if Imatrix.get nu i j <> !brute then ok := false
        done
      done;
      !ok)

let sigma_consistency =
  Property.make
    ~name:"Prop 3: nu >= 1 and ||Sigma||_1 = sigma_T^2 * sum(nu)"
    ~print:Generators.string_of_pattern Generators.pattern
    (fun p ->
      let nu = Variability.nu_matrix p in
      Imatrix.min_entry nu >= 1
      && approx ~eps:1e-6
           (Variability.sigma_norm1 ~sigma_t:0.05 p)
           (0.05 *. 0.05 *. float_of_int (Imatrix.sum nu)))

(* --- Gray structure and Propositions 4-5 (arrangement optimality) --- *)

let gray_adjacency =
  Property.make
    ~name:"Gray words: distance 1 unreflected, 2 reflected, rank inverts"
    ~print:(fun (r, b) -> Printf.sprintf "radix %d, base_len %d" r b)
    (Generators.tree_space ~max_size:64 ())
    (fun (radix, base_len) ->
      let count = Tree_code.size ~radix ~base_len in
      let words = Gray_code.words ~radix ~base_len ~count in
      Gray_code.is_gray_sequence words
      && Arranged_hot.is_arranged (List.map Word.reflect words)
      && List.for_all2
           (fun i w -> Gray_code.rank w = i)
           (List.init count Fun.id) words)

let gray_not_beaten_phi =
  Property.make
    ~name:"Prop 5: no arrangement beats Gray on fabrication complexity Phi"
    ~print:(fun ((r, b), words) ->
      Printf.sprintf "radix %d base_len %d, order %s" r b
        (Generators.string_of_words words))
    (let* ((radix, base_len) as space) = Generators.tree_space ~max_size:9 () in
     let+ words = Generators.arrangement ~radix ~base_len in
     (space, words))
    (fun ((radix, base_len), words) ->
      let count = Tree_code.size ~radix ~base_len in
      let gray_phi, _ =
        costs_of_words
          (List.map Word.reflect (Gray_code.words ~radix ~base_len ~count))
      in
      let phi, _ = costs_of_words words in
      phi >= gray_phi)

let gray_not_beaten_sigma =
  Property.make
    ~name:"Prop 4: no arrangement beats Gray on variability ||Sigma||_1"
    ~print:(fun ((r, b), words) ->
      Printf.sprintf "radix %d base_len %d, order %s" r b
        (Generators.string_of_words words))
    (let* ((radix, base_len) as space) = Generators.tree_space ~max_size:9 () in
     let+ words = Generators.arrangement ~radix ~base_len in
     (space, words))
    (fun ((radix, base_len), words) ->
      let count = Tree_code.size ~radix ~base_len in
      let _, gray_sigma =
        costs_of_words
          (List.map Word.reflect (Gray_code.words ~radix ~base_len ~count))
      in
      let _, sigma = costs_of_words words in
      sigma >= gray_sigma -. 1e-9)

(* --- Hot codes (Section 5): membership and arranged adjacency = 2 --- *)

let hot_code_structure =
  Property.make
    ~name:"Hot codes: balanced digit counts, size = multinomial"
    ~print:(fun (r, k) -> Printf.sprintf "radix %d, k %d" r k)
    (pair (int_range ~origin:2 2 3) (int_range ~origin:1 1 2))
    (fun (r, k) ->
      let length = r * k in
      let all = Hot_code.all ~radix:r ~length in
      List.length all = Hot_code.size ~radix:r ~length
      && List.for_all Hot_code.is_member all
      && List.length (List.sort_uniq Word.compare all) = List.length all)

let arranged_hot_adjacency =
  Property.make
    ~name:"Section 5.2: arranged hot codes step at Hamming distance 2"
    ~print:(fun (r, k) -> Printf.sprintf "radix %d, k %d" r k)
    (pair (int_range ~origin:2 2 3) (int_range ~origin:1 1 3))
    (fun (r, k) ->
      let length = r * k in
      if r = 3 && k = 3 then true (* space > AHC search budget *)
      else
        let arranged = Arranged_hot.all ~radix:r ~length in
        Arranged_hot.is_arranged arranged
        && List.sort Word.compare arranged
           = List.sort Word.compare (Hot_code.all ~radix:r ~length))

(* --- Word algebra used throughout Section 2 --- *)

let word_involutions =
  Property.make ~name:"Words: complement involutive, reflect splits back"
    ~print:(fun w -> Word.to_string w) Generators.word_sized
    (fun w ->
      Word.equal (Word.complement (Word.complement w)) w
      && Word.equal (Word.base_part (Word.reflect w)) w
      && Word.is_reflected (Word.reflect w)
      && Word.hamming_distance w w = 0)

let reflection_unique_addressability =
  Property.make
    ~name:"Section 2.2: reflected tree words never dominate each other"
    ~print:(fun (r, b) -> Printf.sprintf "radix %d, base_len %d" r b)
    (Generators.tree_space ~max_size:27 ())
    (fun (radix, base_len) ->
      let count = Tree_code.size ~radix ~base_len in
      let words = Tree_code.reflected_words ~radix ~base_len ~count in
      List.for_all
        (fun a ->
          List.for_all
            (fun b -> Word.equal a b || not (Word.dominates a b))
            words)
        words)

(* --- Codebook and metrics coherence --- *)

let codebook_space_coverage =
  Property.make
    ~name:"Codebook: canonical sequence covers the space exactly once"
    ~print:Generators.string_of_code_config Generators.code_config
    (fun (family, radix, length) ->
      match Codebook.validate_length ~radix ~length family with
      | Error _ -> false
      | Ok () -> (
        let omega = Codebook.space_size ~radix ~length family in
        match sequence_opt ~radix ~length ~count:omega family with
        | None -> true
        | Some words ->
          List.length words = omega
          && List.length (List.sort_uniq Word.compare words) = omega
          && List.for_all
               (fun w -> Word.length w = length && Word.radix w = radix)
               words))

let metrics_consistency =
  Property.make
    ~name:"Metrics: transitions, spectrum and gray flag agree with words"
    ~print:Generators.string_of_code_config Generators.code_config
    (fun (family, radix, length) ->
      let omega = Codebook.space_size ~radix ~length family in
      match sequence_opt ~radix ~length ~count:omega family with
      | None -> true
      | Some words ->
        let m = Metrics.of_words words in
        let steps =
          let rec pairs = function
            | a :: (b :: _ as rest) -> Word.hamming_distance a b :: pairs rest
            | _ -> []
          in
          pairs words
        in
        m.Metrics.total_transitions = List.fold_left ( + ) 0 steps
        && m.Metrics.spectrum |> Array.fold_left ( + ) 0
           = m.Metrics.total_transitions
        && m.Metrics.is_gray = List.for_all (fun d -> d = 1) steps
        && m.Metrics.n_words = omega)

let pattern_transitions =
  Property.make
    ~name:"Pattern: row transitions equal word Hamming distances"
    ~print:Generators.string_of_pattern Generators.pattern
    (fun p ->
      let words = Array.of_list (Pattern.words p) in
      let t = Pattern.transitions_between_rows p in
      Array.length t = Array.length words - 1
      && Array.for_all Fun.id
           (Array.mapi
              (fun i d -> d = Word.hamming_distance words.(i) words.(i + 1))
              t)
      && Pattern.total_transitions p = Array.fold_left ( + ) 0 t)

(* --- Decoder sampling determinism (Section 6 infrastructure) --- *)

let defect_map_determinism =
  Property.make
    ~name:"Defect maps: same seed => identical layer, usable subset"
    ~print:(fun (c, seed) ->
      Printf.sprintf "%s, seed %d" (Generators.string_of_cave_config c) seed)
    (pair Generators.cave_config Generators.sample_seed)
    (fun (config, seed) ->
      let analysis = Cave.analyze config in
      let wires = (2 * config.Cave.n_wires) + 1 in
      let a = Defect_map.sample_layer (Rng.create ~seed) analysis ~wires in
      let b = Defect_map.sample_layer (Rng.create ~seed) analysis ~wires in
      a = b
      && Array.for_all
           (fun i -> a.(i) = Defect_map.Working)
           (Defect_map.usable_indices a))

(* --- Domain-parallel engine (bit-for-bit determinism contract) --- *)

let pool_map_sequential_equivalence =
  Property.make
    ~name:"Pool.map equals the in-order sequential map"
    ~print:(fun (xs, domains) ->
      Printf.sprintf "[%s] on %d domains"
        (String.concat "; " (List.map string_of_int xs))
        domains)
    (pair (list (int_range (-1000) 1000)) (int_range 1 4))
    (fun (xs, domains) ->
      (* A pure but order-sensitive function: any chunk mix-up or
         reordering of the fan-in changes the output. *)
      let f x = (x * 2654435761) lxor (x lsr 3) in
      let expected = List.map f xs in
      Nanodec_parallel.Pool.with_pool ~domains (fun pool ->
          Nanodec_parallel.Pool.map_list pool f xs = expected))

let chunked_mc_domain_invariance =
  Property.make
    ~name:"Chunked MC estimates are domain-count invariant"
    ~print:(fun (seed, (samples, chunks), domains) ->
      Printf.sprintf "seed %d, %d samples / %d chunks, %d domains" seed samples
        chunks domains)
    (triple Generators.sample_seed
       (pair (int_range 2 200) (int_range 1 32))
       (int_range 1 4))
    (fun (seed, (samples, chunks), domains) ->
      let f rng = Rng.gaussian rng +. Rng.float rng in
      let p rng = Rng.float rng < 0.5 in
      let chunking = Nanodec_parallel.Run_ctx.Fixed chunks in
      let seq_ctx = Nanodec_parallel.Run_ctx.make ~chunking () in
      let sequential =
        Montecarlo.estimate_par ~ctx:seq_ctx (Rng.create ~seed) ~samples f
      in
      let sequential_prop =
        Montecarlo.estimate_proportion_par ~ctx:seq_ctx (Rng.create ~seed)
          ~samples p
      in
      Nanodec_parallel.Pool.with_pool ~domains (fun pool ->
          let ctx = Nanodec_parallel.Run_ctx.make ~pool ~chunking () in
          Montecarlo.estimate_par ~ctx (Rng.create ~seed) ~samples f
          = sequential
          && Montecarlo.estimate_proportion_par ~ctx (Rng.create ~seed)
               ~samples p
             = sequential_prop))

(* --- Telemetry (pure-observer contract) --- *)

module Telemetry = Nanodec_telemetry.Telemetry
module Run_ctx = Nanodec_parallel.Run_ctx

let telemetry_transparency =
  Property.make
    ~name:"Telemetry-on runs are bit-for-bit identical to telemetry-off"
    ~print:(fun (seed, (samples, chunks), dexp) ->
      Printf.sprintf "seed %d, %d samples / %d chunks, %d domains" seed samples
        chunks (1 lsl dexp))
    (triple Generators.sample_seed
       (pair (int_range 2 200) (int_range 1 32))
       (int_range 0 3))
    (fun (seed, (samples, chunks), dexp) ->
      let domains = 1 lsl dexp (* 1, 2, 4 or 8 *) in
      let f rng = Rng.gaussian rng +. Rng.float rng in
      let p rng = Rng.float rng < 0.5 in
      let run ?telemetry () =
        Run_ctx.with_ctx ~domains ?telemetry
          ~chunking:(Run_ctx.Fixed chunks) (fun ctx ->
            ( Montecarlo.estimate_par ~ctx (Rng.create ~seed) ~samples f,
              Montecarlo.estimate_proportion_par ~ctx (Rng.create ~seed)
                ~samples p ))
      in
      let bare = run () in
      let sink = Telemetry.create () in
      let instrumented = run ~telemetry:sink () in
      instrumented = bare)

(* The batched scheduler's licensing property: chunk count and batch
   size are pure scheduling knobs, so an auto-tuned run (fallback plan
   when cold, measured cost model when the sink is warm) computes
   exactly the bits of any fixed-chunk run — and the tuner never emits
   an unrunnable plan (batch or chunks below 1). *)
let autotune_value_invariance =
  Property.make
    ~name:"Auto-tuned and fixed-chunk estimates are bit-identical"
    ~print:(fun (seed, (samples, chunks), (domains, batch)) ->
      Printf.sprintf "seed %d, %d samples / %d chunks / batch %d, %d domains"
        seed samples chunks batch domains)
    (triple Generators.sample_seed
       (pair (int_range 2 200) (int_range 1 32))
       (pair (int_range 1 4) (int_range 1 48)))
    (fun (seed, (samples, chunks), (domains, batch)) ->
      let f rng = Rng.gaussian rng +. Rng.float rng in
      let fixed =
        let ctx = Run_ctx.make ~chunking:(Run_ctx.Fixed chunks) ~batch () in
        Montecarlo.estimate_par ~ctx (Rng.create ~seed) ~samples f
      in
      let module Autotune = Nanodec_parallel.Autotune in
      let runnable (p : Autotune.plan) = p.chunks >= 1 && p.batch >= 1 in
      runnable (Autotune.plan ~domains ~samples ())
      && Run_ctx.with_ctx ~domains (fun ctx ->
             Montecarlo.estimate_par ~ctx (Rng.create ~seed) ~samples f
             = fixed)
      &&
      let sink = Telemetry.create () in
      Run_ctx.with_ctx ~domains ~telemetry:sink (fun ctx ->
          (* Warm the sink so the second estimate plans from measured
             cost, then re-check plan sanity and value identity. *)
          ignore
            (Montecarlo.estimate_par ~ctx (Rng.create ~seed) ~samples f);
          runnable (Autotune.plan ~telemetry:sink ~domains ~samples ())
          && Montecarlo.estimate_par ~ctx (Rng.create ~seed) ~samples f
             = fixed))

let telemetry_span_well_formedness =
  Property.make
    ~name:"Exported span trees are well-formed (children inside parents)"
    ~print:(fun (depths, domains) ->
      Printf.sprintf "nesting depths [%s] on %d domains"
        (String.concat "; " (List.map string_of_int depths))
        domains)
    (pair (list (int_range 0 5)) (int_range 1 4))
    (fun (depths, domains) ->
      let sink = Telemetry.create () in
      let tel = Some sink in
      Run_ctx.with_ctx ~domains ~telemetry:sink (fun ctx ->
          match Run_ctx.pool ctx with
          | None -> ()
          | Some pool ->
            ignore
              (Nanodec_parallel.Pool.map pool
                 (fun depth ->
                   let rec nest k =
                     if k <= 0 then 0
                     else
                       Telemetry.with_span tel "nest" (fun () -> 1 + nest (k - 1))
                   in
                   nest depth)
                 (Array.of_list depths)));
      (* Re-derive the invariant from the exported trees rather than
         trusting the library's own [well_formed]. *)
      let rec ok parent (s : Telemetry.span) =
        s.Telemetry.stop_s >= s.Telemetry.start_s
        && (match parent with
           | None -> true
           | Some (p : Telemetry.span) ->
             s.Telemetry.start_s >= p.Telemetry.start_s
             && s.Telemetry.stop_s <= p.Telemetry.stop_s
             && s.Telemetry.domain = p.Telemetry.domain)
        && List.for_all (ok (Some s)) s.Telemetry.children
      in
      List.for_all (ok None) (Telemetry.span_trees sink)
      && Telemetry.well_formed sink)

(* --- fault-injection transparency --- *)

module Fault = Nanodec_fault.Fault

(* A compiled-in but rule-free engine is invisible: same bits as no
   engine at all.  This is the probe-cost analogue of telemetry
   transparency, and what licenses shipping the probes always-on. *)
let fault_probes_inert =
  Property.make
    ~name:"Inert fault engine leaves results bit-for-bit unchanged"
    ~print:(fun (seed, (samples, chunks), dexp) ->
      Printf.sprintf "seed %d, %d samples / %d chunks, %d domains" seed
        samples chunks (1 lsl dexp))
    (triple Generators.sample_seed
       (pair (int_range 2 200) (int_range 1 32))
       (int_range 0 3))
    (fun (seed, (samples, chunks), dexp) ->
      let domains = 1 lsl dexp in
      let f rng = Rng.gaussian rng +. Rng.float rng in
      let run ?fault () =
        Run_ctx.with_ctx ~domains ?fault ~warn:false
          ~chunking:(Run_ctx.Fixed chunks) (fun ctx ->
            Montecarlo.estimate_par ~ctx (Rng.create ~seed) ~samples f)
      in
      let engine = Fault.inert () in
      let r = run () = run ~fault:engine () in
      r && Fault.total_fired engine = 0)

(* Injected crashes are recovered (retry, then degraded sequential
   re-execution), and a recovered run computes exactly the bits the
   uninjected run does — the tentpole guarantee of the robustness
   layer.  [~warn:false]: this oracle degrades pools on purpose,
   hundreds of times per run — the stderr announcement is for users
   whose pool got poisoned unexpectedly, not for the chaos harness. *)
let fault_injection_transparency =
  Property.make
    ~name:"Recovered fault-injected runs equal the uninjected run"
    ~print:(fun ((seed, plan_seed), (samples, chunks), dexp) ->
      Printf.sprintf "seed %d, plan seed %d, %d samples / %d chunks, %d domains"
        seed plan_seed samples chunks (1 lsl dexp))
    (triple
       (pair Generators.sample_seed (int_range 0 10_000))
       (pair (int_range 2 200) (int_range 1 16))
       (int_range 0 2))
    (fun ((seed, plan_seed), (samples, chunks), dexp) ->
      let domains = 1 lsl dexp in
      let f rng = Rng.gaussian rng +. Rng.float rng in
      let run ?fault () =
        Run_ctx.with_ctx ~domains ?fault ~warn:false
          ~chunking:(Run_ctx.Fixed chunks) (fun ctx ->
            Montecarlo.estimate_par ~ctx (Rng.create ~seed) ~samples f)
      in
      let plan =
        Fault.parse_exn
          (Printf.sprintf
             "seed=%d;pool.chunk:crash:p=0.3;mc.sample_batch:crash:p=0.2"
             plan_seed)
      in
      run ~fault:(Fault.create plan) () = run ())

(* The compiled MC kernel is an optimisation, not a model change: for
   any cave configuration and seed, the kernelized estimator computes
   exactly the bits of the allocating reference draw — across domain
   counts, and whether a fault plan is injecting crashes or the engine
   is inert.  This is the executable statement of the kernel's
   bit-for-bit contract (the bench gate only checks speed). *)
let kernel_reference_equivalence =
  Property.make
    ~name:"Compiled yield kernel equals the reference draw bit-for-bit"
    ~print:(fun ((config, seed), (samples, plan_seed)) ->
      Printf.sprintf "%s, seed %d, %d samples, plan seed %d"
        (Generators.string_of_cave_config config)
        seed samples plan_seed)
    (pair
       (pair Generators.cave_config Generators.sample_seed)
       (pair (int_range 2 120) (int_range 0 10_000)))
    (fun ((config, seed), (samples, plan_seed)) ->
      let analysis = Cave.analyze config in
      let run ~domains ?fault estimator =
        Run_ctx.with_ctx ~domains ?fault ~warn:false (fun ctx ->
            estimator ~ctx (Rng.create ~seed) ~samples analysis)
      in
      let plan () =
        Fault.create
          (Fault.parse_exn
             (Printf.sprintf
                "seed=%d;pool.chunk:crash:p=0.3;mc.sample_batch:crash:p=0.2"
                plan_seed))
      in
      let agree ~domains ?fault () =
        let kernel =
          run ~domains ?fault:(Option.map (fun f -> f ()) fault)
            (fun ~ctx rng ~samples a ->
              Cave.mc_yield_window_par ~ctx rng ~samples a)
        in
        let reference =
          run ~domains ?fault:(Option.map (fun f -> f ()) fault)
            (fun ~ctx rng ~samples a ->
              Cave.mc_yield_window_reference ~ctx rng ~samples a)
        in
        kernel = reference
      in
      agree ~domains:1 ()
      && agree ~domains:4 ()
      && agree ~domains:1 ~fault:(fun () -> Fault.inert ()) ()
      && agree ~domains:4 ~fault:plan ()
      && agree ~domains:1 ~fault:plan ())

(* --- the unified Monte-Carlo entry point --- *)

(* [estimate]/[estimate_par] are documented as thin wrappers over
   [Montecarlo.run] with the plain/fixed spec; this is the executable
   form of that claim, at bit precision, sequential and pooled. *)
let montecarlo_wrapper_spec_equivalence =
  Property.make
    ~name:"estimate/estimate_par are bit-equal to Montecarlo.run plain/fixed"
    ~print:(fun (seed, (samples, chunks), dexp) ->
      Printf.sprintf "seed %d, %d samples / %d chunks, %d domains" seed
        samples chunks (1 lsl dexp))
    (triple Generators.sample_seed
       (pair (int_range 2 300) (int_range 1 16))
       (int_range 0 2))
    (fun (seed, (samples, chunks), dexp) ->
      let f rng = Rng.gaussian rng +. Rng.float rng in
      let spec = Montecarlo.spec (Montecarlo.fixed samples) in
      let target = Montecarlo.target f in
      Montecarlo.estimate (Rng.create ~seed) ~samples f
      = Montecarlo.run spec (Rng.create ~seed) target
      && Run_ctx.with_ctx ~domains:(1 lsl dexp)
           ~chunking:(Run_ctx.Fixed chunks) ~warn:false (fun ctx ->
             Montecarlo.estimate_par ~ctx (Rng.create ~seed) ~samples f
             = Montecarlo.run ~ctx spec (Rng.create ~seed) target))

(* Every sampling strategy is an equally unbiased estimator of the same
   yield: on a cave whose exact answer is known in closed form (the
   per-wire erf products of [analysis.wire_probability]), each
   strategy's 95 % interval — widened to 6 combined standard errors,
   with the {e exact} plain standard error added for the degenerate
   all-ones cases where the empirical SE collapses to zero — brackets
   the analytic mean.  Antithetic is checked at bit precision: the
   window predicate is even, so the pair average equals the plain draw
   on the same streams. *)
let montecarlo_strategy_unbiasedness =
  Property.make
    ~name:"MC strategies bracket the analytic yield (antithetic bit-equal)"
    ~print:(fun (config, seed) ->
      Printf.sprintf "%s, seed %d"
        (Generators.string_of_cave_config config)
        seed)
    (pair Generators.cave_config Generators.sample_seed)
    (fun (config, seed) ->
      let analysis = Cave.analyze config in
      let kernel = Cave.kernel_of_analysis analysis in
      let target = Kernel.target kernel in
      let samples = 400 in
      let run strategy =
        Montecarlo.run
          (Montecarlo.spec ~strategy (Montecarlo.fixed samples))
          (Rng.create ~seed) target
      in
      let exact = analysis.Cave.yield in
      let exact_se =
        let n = float_of_int config.Cave.n_wires in
        let v =
          Array.fold_left
            (fun acc p -> acc +. (p *. (1. -. p)))
            0. analysis.Cave.wire_probability
        in
        sqrt (v /. float_of_int samples) /. n
      in
      let brackets (e : Montecarlo.estimate) =
        Float.abs (e.Montecarlo.mean -. exact)
        <= 6. *. (e.Montecarlo.std_error +. exact_se)
      in
      let plain = run Montecarlo.Plain in
      brackets plain
      && run Montecarlo.Antithetic = plain
      && brackets (run (Montecarlo.Stratified 8))
      && brackets (run (Montecarlo.Importance 1.0)))

(* Adaptive stopping keeps the scheduling-invariance contract: the
   batch-doubling rounds derive their streams from sequential splits of
   the root, so the (estimate, spent samples) pair is a pure function
   of (seed, spec) at every domain count, chunking and under injected
   faults. *)
let montecarlo_adaptive_determinism =
  Property.make
    ~name:"Adaptive-stopping estimates are schedule and fault invariant"
    ~print:(fun ((seed, plan_seed), (chunks, dexp)) ->
      Printf.sprintf "seed %d, plan seed %d, %d chunks, %d domains" seed
        plan_seed chunks (1 lsl dexp))
    (pair
       (pair Generators.sample_seed (int_range 0 10_000))
       (pair (int_range 1 16) (int_range 0 2)))
    (fun ((seed, plan_seed), (chunks, dexp)) ->
      let f rng = Rng.gaussian rng +. Rng.float rng in
      let spec =
        Montecarlo.spec
          (Montecarlo.until_rel_error ~min_samples:16 ~max_samples:512 0.05)
      in
      let target = Montecarlo.target f in
      let baseline = Montecarlo.run spec (Rng.create ~seed) target in
      let fault =
        Fault.create
          (Fault.parse_exn
             (Printf.sprintf
                "seed=%d;pool.chunk:crash:p=0.2;mc.sample_batch:crash:p=0.15"
                plan_seed))
      in
      Run_ctx.with_ctx ~domains:(1 lsl dexp)
        ~chunking:(Run_ctx.Fixed chunks) ~warn:false (fun ctx ->
          Montecarlo.run ~ctx spec (Rng.create ~seed) target = baseline)
      && Run_ctx.with_ctx ~domains:(1 lsl dexp) ~fault ~warn:false
           (fun ctx ->
             Montecarlo.run ~ctx spec (Rng.create ~seed) target = baseline))

let all =
  [
    h_bijectivity;
    final_matrix_is_elementwise_h;
    step_matrix_definition;
    step_final_round_trip;
    phi_dose_pattern_equivalence;
    nu_counts_operations;
    sigma_consistency;
    gray_adjacency;
    gray_not_beaten_phi;
    gray_not_beaten_sigma;
    hot_code_structure;
    arranged_hot_adjacency;
    word_involutions;
    reflection_unique_addressability;
    codebook_space_coverage;
    metrics_consistency;
    pattern_transitions;
    defect_map_determinism;
    pool_map_sequential_equivalence;
    chunked_mc_domain_invariance;
    autotune_value_invariance;
    telemetry_transparency;
    telemetry_span_well_formedness;
    fault_probes_inert;
    fault_injection_transparency;
    kernel_reference_equivalence;
    montecarlo_wrapper_spec_equivalence;
    montecarlo_strategy_unbiasedness;
    montecarlo_adaptive_determinism;
  ]
