open Nanodec_numerics

type 'a t = { gen : size:int -> Rng.t -> 'a Shrink_tree.t }

let make gen = { gen }
let run t ~size rng = t.gen ~size rng
let generate t ~size rng = Shrink_tree.root (t.gen ~size rng)

let pure x = { gen = (fun ~size:_ _ -> Shrink_tree.pure x) }

let map f t = { gen = (fun ~size rng -> Shrink_tree.map f (t.gen ~size rng)) }

let map2 f a b =
  {
    gen =
      (fun ~size rng ->
        let ta = a.gen ~size rng in
        let tb = b.gen ~size rng in
        Shrink_tree.map2 f ta tb);
  }

let map3 f a b c = map2 (fun f c -> f c) (map2 f a b) c
let pair a b = map2 (fun x y -> (x, y)) a b
let triple a b c = map3 (fun x y z -> (x, y, z)) a b c

let bind t f =
  {
    gen =
      (fun ~size rng ->
        (* The dependent generator must redraw from the same stream
           deterministically when the outer tree re-binds a shrunk root,
           so it runs on a split captured once per generation. *)
        let outer = t.gen ~size rng in
        let inner_rng = Rng.split rng in
        Shrink_tree.bind outer (fun x ->
            (f x).gen ~size (Rng.copy inner_rng)));
  }

let ( let* ) t f = bind t f
let ( let+ ) t f = map f t
let ( and+ ) a b = pair a b

let sized f = { gen = (fun ~size rng -> (f size).gen ~size rng) }
let resize size t = { gen = (fun ~size:_ rng -> t.gen ~size rng) }
let scale f t = { gen = (fun ~size rng -> t.gen ~size:(f size) rng) }

(* Halving shrinker: origin first, then points closing half the distance
   from each side towards the failing value. *)
let shrink_int ~origin x =
  if x = origin then Seq.empty
  else
    let rec halves delta () =
      if delta = 0 then Seq.Nil
      else Seq.Cons (x - delta, halves (delta / 2))
    in
    fun () -> Seq.Cons (origin, halves ((x - origin) / 2))

let int_range ?origin lo hi =
  if lo > hi then invalid_arg "Gen.int_range: empty range";
  let origin = match origin with Some o -> o | None -> lo in
  let origin = max lo (min hi origin) in
  {
    gen =
      (fun ~size:_ rng ->
        let x = lo + Rng.int rng (hi - lo + 1) in
        Shrink_tree.unfold (shrink_int ~origin) x);
  }

let small_nat = sized (fun size -> int_range 0 (max 0 size))

let bool =
  {
    gen =
      (fun ~size:_ rng ->
        let b = Rng.bool rng in
        if b then Shrink_tree.make true (Seq.return (Shrink_tree.pure false))
        else Shrink_tree.pure false);
  }

let float_range lo hi =
  let shrink x () =
    if x = lo then Seq.Nil
    else
      let mid = lo +. ((x -. lo) /. 2.) in
      if mid = x || x -. lo < 1e-12 then Seq.Cons (lo, Seq.empty)
      else Seq.Cons (lo, fun () -> Seq.Cons (mid, Seq.empty))
  in
  {
    gen =
      (fun ~size:_ rng ->
        let x = Rng.float_range rng ~min:lo ~max:hi in
        Shrink_tree.unfold shrink x);
  }

let elements xs =
  match xs with
  | [] -> invalid_arg "Gen.elements: empty list"
  | _ ->
    let arr = Array.of_list xs in
    map (Array.get arr) (int_range 0 (Array.length arr - 1))

let oneof gens =
  match gens with
  | [] -> invalid_arg "Gen.oneof: empty list"
  | _ ->
    let arr = Array.of_list gens in
    {
      gen =
        (fun ~size rng ->
          let g = arr.(Rng.int rng (Array.length arr)) in
          g.gen ~size rng);
    }

let frequency weighted =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
  if total <= 0 || List.exists (fun (w, _) -> w < 0) weighted then
    invalid_arg "Gen.frequency: weights must be non-negative, sum positive";
  {
    gen =
      (fun ~size rng ->
        let roll = Rng.int rng total in
        let rec pick acc = function
          | [] -> assert false
          | (w, g) :: rest ->
            if roll < acc + w then g.gen ~size rng else pick (acc + w) rest
        in
        pick 0 weighted);
  }

let list_of_length n elt =
  if n < 0 then invalid_arg "Gen.list_of_length: negative length";
  {
    gen =
      (fun ~size rng ->
        let trees = List.init n (fun _ -> elt.gen ~size rng) in
        Shrink_tree.sequence_fixed trees);
  }

let list_shrinkable elt ~min_length ~max_length =
  if min_length < 0 || max_length < min_length then
    invalid_arg "Gen.list_shrinkable: bad bounds";
  {
    gen =
      (fun ~size rng ->
        let n = min_length + Rng.int rng (max_length - min_length + 1) in
        let trees = List.init n (fun _ -> elt.gen ~size rng) in
        if min_length = 0 then Shrink_tree.sequence_list trees
        else
          (* Prune structural shrinks below the floor. *)
          let full = Shrink_tree.sequence_list trees in
          let rec prune t =
            Shrink_tree.make (Shrink_tree.root t)
              (Seq.filter_map
                 (fun c ->
                   if List.length (Shrink_tree.root c) >= min_length then
                     Some (prune c)
                   else None)
                 (Shrink_tree.children t))
          in
          prune full);
  }

let list elt =
  sized (fun size -> list_shrinkable elt ~min_length:0 ~max_length:(max 0 size))

let array_of_length n elt = map Array.of_list (list_of_length n elt)

let shuffle xs =
  let n = List.length xs in
  if n <= 1 then pure xs
  else
    (* Draw the Fisher–Yates swap targets explicitly so the permutation
       lives in shrinkable space: shrinking a target towards [i] undoes
       that swap, and the all-identity draw is the original order. *)
    let swaps =
      List.init (n - 1) (fun k ->
          let i = n - 1 - k in
          int_range ~origin:i 0 i)
    in
    map
      (fun targets ->
        let a = Array.of_list xs in
        List.iteri
          (fun k j ->
            let i = Array.length a - 1 - k in
            let tmp = a.(i) in
            a.(i) <- a.(j);
            a.(j) <- tmp)
          targets;
        Array.to_list a)
      (List.fold_right (map2 (fun x acc -> x :: acc)) swaps (pure []))

let such_that ?(max_tries = 100) pred t =
  {
    gen =
      (fun ~size rng ->
        let rec attempt tries size =
          if tries > max_tries then
            failwith "Gen.such_that: too many rejected candidates"
          else
            let tree = t.gen ~size rng in
            if pred (Shrink_tree.root tree) then tree
            else attempt (tries + 1) (size + 1)
        in
        let tree = attempt 1 size in
        (* Shrinks that violate the predicate are cut off (their own
           children might satisfy it, but greedy pruning keeps the walk
           cheap and sound). *)
        let rec prune tr =
          Shrink_tree.make (Shrink_tree.root tr)
            (Seq.filter_map
               (fun c ->
                 if pred (Shrink_tree.root c) then Some (prune c) else None)
               (Shrink_tree.children tr))
        in
        prune tree);
  }

let no_shrink t =
  { gen = (fun ~size rng -> Shrink_tree.pure (generate t ~size rng)) }
