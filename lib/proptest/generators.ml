open Nanodec_codes
open Nanodec_mspt
open Nanodec_crossbar

let radix = Gen.int_range ~origin:2 2 4

let digit ~radix = Gen.int_range 0 (radix - 1)

let word ~radix ~length =
  Gen.map
    (fun digits -> Word.make ~radix (Array.of_list digits))
    (Gen.list_of_length length (digit ~radix))

let word_sized =
  let open Gen in
  let* r = radix in
  let* length = int_range ~origin:1 1 8 in
  map (fun w -> w) (word ~radix:r ~length)

(* A (family, radix, length) triple that Codebook.validate_length accepts,
   with spaces small enough for exhaustive-ish properties. *)
let code_config =
  let open Gen in
  let* family = elements Codebook.all_types in
  match family with
  | Codebook.Tree | Codebook.Gray | Codebook.Balanced_gray ->
    let* r = radix in
    let* base = int_range ~origin:1 1 3 in
    pure (family, r, 2 * base)
  | Codebook.Hot | Codebook.Arranged_hot ->
    let* r = Gen.int_range ~origin:2 2 3 in
    let* k = int_range ~origin:1 1 (if r = 2 then 3 else 2) in
    pure (family, r, r * k)

(* Random pattern matrix: N wires of independent digits (not necessarily a
   code sequence) — the fabrication-model identities hold for any P. *)
let pattern =
  let open Gen in
  let* r = radix in
  let* n_regions = int_range ~origin:1 1 6 in
  let* n_wires = int_range ~origin:1 1 8 in
  map
    (fun words -> Pattern.of_words words)
    (list_of_length n_wires (word ~radix:r ~length:n_regions))

(* Pattern drawn from a code family's canonical sequence. *)
let codebook_pattern =
  let open Gen in
  let* family, r, length = code_config in
  let* n_wires = int_range ~origin:2 2 10 in
  pure (Pattern.of_codebook ~radix:r ~length ~n_wires family)

(* Generic injective digit→dose mapping with (almost surely) pairwise
   distinct differences — the "incommensurable" h of Proposition 5's
   dose/pattern equivalence.  Strictly increasing positive floats. *)
let injective_h ~radix =
  let open Gen in
  map
    (fun gaps ->
      let levels = Array.make radix 0. in
      List.iteri
        (fun i gap ->
          levels.(i) <- (if i = 0 then gap else levels.(i - 1) +. gap))
        gaps;
      fun d -> levels.(d))
    (no_shrink (list_of_length radix (float_range 0.5 3.0)))

let pattern_with_h =
  let open Gen in
  let* p = pattern in
  let* h = injective_h ~radix:(Pattern.radix p) in
  pure (p, h)

(* Tree-code space descriptors.  [small] keeps the space size within
   [max_size] so properties may enumerate all arrangements. *)
let tree_space ?(max_size = 8) () =
  let open Gen in
  let configs =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun base_len ->
            let rec pow acc i = if i = 0 then acc else pow (acc * r) (i - 1) in
            let size = pow 1 base_len in
            if size <= max_size then Some (r, base_len) else None)
          [ 1; 2; 3 ])
      [ 2; 3; 4; 5; 6; 7; 8 ]
  in
  elements configs

(* A random arrangement (permutation) of the full tree-code space,
   reflected — shrinks towards the identity (counting) order. *)
let arrangement ~radix ~base_len =
  let space = Tree_code.words ~radix ~base_len ~count:(Tree_code.size ~radix ~base_len) in
  Gen.map (List.map Word.reflect) (Gen.shuffle space)

(* Small half-cave configurations for decoder-level properties.  Binary
   balanced-Gray platform of the paper with reduced dimensions. *)
let cave_config =
  let open Gen in
  let* length = elements [ 4; 6; 8 ] in
  let* n_wires = int_range ~origin:2 2 12 in
  pure
    {
      Cave.default_config with
      Cave.code_type = Codebook.Balanced_gray;
      code_length = length;
      n_wires;
    }

(* Seeds for defect-map sampling; kept as plain ints so the counterexample
   printout is directly replayable. *)
let sample_seed = Gen.int_range 0 1_000_000

(* --- printers for counterexample reports --- *)

let string_of_words words =
  String.concat " " (List.map Word.to_string words)

let string_of_pattern p =
  Format.asprintf "radix %d, %dx%d:@ %a" (Pattern.radix p) (Pattern.n_wires p)
    (Pattern.n_regions p) Pattern.pp p

let string_of_code_config (family, r, length) =
  Printf.sprintf "%s n=%d M=%d" (Codebook.name family) r length

let string_of_pattern_with_h (p, h) =
  let doses =
    String.concat ", "
      (List.init (Pattern.radix p) (fun d -> Printf.sprintf "%d->%.4f" d (h d)))
  in
  Printf.sprintf "%s with h = {%s}" (string_of_pattern p) doses

let string_of_cave_config (c : Cave.config) =
  Printf.sprintf "%s n=%d M=%d N=%d" (Codebook.name c.Cave.code_type)
    c.Cave.radix c.Cave.code_length c.Cave.n_wires
