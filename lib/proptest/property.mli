(** Properties and the shrinking runner.

    A property is a named predicate over a generated value.  The runner
    evaluates it on [count] cases of growing size, each case seeded
    deterministically from a master seed; on failure it walks the case's
    shrink tree greedily to a (locally) minimal counterexample and
    reports the {e case seed} — rerunning the suite with
    [PROPTEST_SEED=<that seed>] makes the failing case the first one, so
    every failure reproduces as [PROPTEST_SEED=<n> dune runtest].

    Environment overrides, read by {!run}:
    {ul
    {- [PROPTEST_SEED] — master seed (decimal int);}
    {- [PROPTEST_COUNT] — cases per property.}} *)

type t

val make :
  ?count:int ->
  ?max_shrink_steps:int ->
  name:string ->
  print:('a -> string) ->
  'a Gen.t ->
  ('a -> bool) ->
  t
(** [make ~name ~print gen pred].  [pred] may also signal failure by
    raising; the exception text becomes the failure message.  [count]
    defaults to the runner's (100 unless overridden); [max_shrink_steps]
    bounds the number of {e accepted} shrink steps (default 200). *)

type failure = {
  seed : int;  (** reproduces the case when passed as the master seed *)
  case_index : int;  (** which case of the run failed *)
  size : int;  (** size hint of the failing case *)
  shrink_steps : int;  (** accepted shrinks on the way down *)
  counterexample : string;  (** printed minimal counterexample *)
  message : string option;  (** exception text, when the predicate raised *)
}

type outcome =
  | Pass of { cases : int }
  | Fail of failure

val name : t -> string

val default_seed : int
(** 2009 — the paper's year; fixed so bare [dune runtest] is
    deterministic. *)

val run : ?seed:int -> ?count:int -> t -> outcome
(** Run one property.  [seed]/[count] fall back to the environment
    overrides, then to [default_seed] / the property's own count. *)

val effective_seed : int option -> int
(** The master seed {!run} would use: the argument if given, else
    [PROPTEST_SEED], else {!default_seed}.  For reporting. *)

val case_seed : master:int -> int -> int
(** Seed of case [i] under [master]; [case_seed ~master 0 = master], so a
    reported failing seed replays immediately.  Exposed for tests. *)

val pp_outcome : Format.formatter -> outcome -> unit

val pp_failure : Format.formatter -> failure -> unit
(** Multi-line report with the reproduction command line. *)

(** {1 Suites} *)

type report = { property : t; outcome : outcome }

val run_suite : ?seed:int -> ?count:int -> t list -> report list

val all_passed : report list -> bool

val pp_report : Format.formatter -> report -> unit
(** One line per pass, full failure block per fail. *)
