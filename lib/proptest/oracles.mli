(** The paper's propositions as executable property oracles.

    Each oracle states one claim of Ben Jamaa–Leblebici–De Micheli
    (DAC 2009) over randomly generated instances: the bijectivity of the
    pattern→doping mapping [h] (Prop 1), the [S]/[D] inter-derivability
    (Prop 2 and Definition 3), the dose/pattern characterisations of the
    fabrication complexity [φ] (Definition 4) and the hit counts [ν]
    (Definition 5), the Gray arrangement's optimality of both [Φ] and
    [‖Σ‖₁] (Props 4–5, against random arrangements of small spaces), the
    hot-code structure and distance-2 arrangement of Section 5, and the
    supporting word/codebook/metrics algebra.

    These run both under [dune runtest] (via [test/test_properties.ml])
    and standalone as [nanodec check]. *)

val costs_of_words : Nanodec_codes.Word.t list -> int * float
(** Transition-driven [Φ] and full [‖Σ‖₁] (σ_T = 1) of an arrangement —
    the comparison functional of Propositions 4–5.  Shared with the
    exhaustive tests. *)

val h_bijectivity : Property.t
val final_matrix_is_elementwise_h : Property.t
val step_matrix_definition : Property.t
val step_final_round_trip : Property.t
val phi_dose_pattern_equivalence : Property.t
val nu_counts_operations : Property.t
val sigma_consistency : Property.t
val gray_adjacency : Property.t
val gray_not_beaten_phi : Property.t
val gray_not_beaten_sigma : Property.t
val hot_code_structure : Property.t
val arranged_hot_adjacency : Property.t
val word_involutions : Property.t
val reflection_unique_addressability : Property.t
val codebook_space_coverage : Property.t
val metrics_consistency : Property.t
val pattern_transitions : Property.t
val defect_map_determinism : Property.t
val pool_map_sequential_equivalence : Property.t
val chunked_mc_domain_invariance : Property.t
val telemetry_transparency : Property.t
val telemetry_span_well_formedness : Property.t

val all : Property.t list
(** Every oracle, in paper order. *)
