(** Seeded generators with integrated shrinking.

    A generator maps a size hint and a {!Nanodec_numerics.Rng.t} to a
    whole {!Shrink_tree.t} of candidates; the root is the generated value
    and the children are its shrinks.  All combinators compose both the
    generation and the shrinking, so domain generators built from these
    primitives shrink to minimal counterexamples with no extra code.

    Generation is deterministic: the same seed and size always produce
    the same tree, which is what makes every failure reproducible from
    the seed printed by {!Property}. *)

open Nanodec_numerics

type 'a t

val run : 'a t -> size:int -> Rng.t -> 'a Shrink_tree.t
(** Generate the full shrink tree. *)

val generate : 'a t -> size:int -> Rng.t -> 'a
(** Root of {!run} — generation without shrinking. *)

val make : (size:int -> Rng.t -> 'a Shrink_tree.t) -> 'a t

(** {1 Monadic core} *)

val pure : 'a -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
val map3 : ('a -> 'b -> 'c -> 'd) -> 'a t -> 'b t -> 'c t -> 'd t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
val ( and+ ) : 'a t -> 'b t -> ('a * 'b) t

(** {1 Size} *)

val sized : (int -> 'a t) -> 'a t
(** Read the runner's current size hint (grows over a run, so early cases
    are small). *)

val resize : int -> 'a t -> 'a t
val scale : (int -> int) -> 'a t -> 'a t

(** {1 Primitives} *)

val int_range : ?origin:int -> int -> int -> int t
(** [int_range lo hi] draws uniformly from [[lo, hi]] and shrinks by
    halving towards [origin] (default [lo]).  Raises [Invalid_argument]
    when the range is empty. *)

val small_nat : int t
(** [int_range 0 size] — scales with the run. *)

val bool : bool t
(** Shrinks towards [false]. *)

val float_range : float -> float -> float t
(** Uniform in [[lo, hi)]; shrinks by halving towards [lo]. *)

val elements : 'a list -> 'a t
(** Uniform choice; shrinks towards earlier elements of the list. *)

val oneof : 'a t list -> 'a t
(** Uniform choice of generator. *)

val frequency : (int * 'a t) list -> 'a t
(** Weighted choice; weights must be non-negative with a positive sum. *)

val list : 'a t -> 'a list t
(** Length uniform in [[0, size]]; shrinks both the length (dropping
    chunks) and the elements. *)

val list_of_length : int -> 'a t -> 'a list t
(** Fixed length; shrinks elements only. *)

val list_shrinkable : 'a t -> min_length:int -> max_length:int -> 'a list t
(** Length uniform in [[min_length, max_length]]; drops elements down to
    [min_length] and shrinks the survivors. *)

val array_of_length : int -> 'a t -> 'a array t

val shuffle : 'a list -> 'a list t
(** Uniform permutation (Fisher–Yates).  Shrinks towards the original
    order by undoing swaps from the end. *)

val such_that : ?max_tries:int -> ('a -> bool) -> 'a t -> 'a t
(** Retry (growing the size) until the predicate holds; shrink candidates
    violating it are pruned.  Raises [Failure] after [max_tries]
    (default 100) rejections. *)

val no_shrink : 'a t -> 'a t

(** {1 Shrink helpers} *)

val shrink_int : origin:int -> int -> int Seq.t
(** One-step candidates of the halving shrinker, exposed for reuse in
    custom generators. *)
