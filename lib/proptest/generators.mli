(** Domain generators for the nanodec code spaces and fabrication model.

    Everything shrinks: patterns lose wires and regions, arrangements
    move back towards counting order, dimensions halve towards their
    minima — so a failing paper proposition reports a near-minimal
    instance. *)

open Nanodec_codes
open Nanodec_mspt
open Nanodec_crossbar

val radix : int Gen.t
(** 2–4, shrinking to binary. *)

val digit : radix:int -> int Gen.t

val word : radix:int -> length:int -> Word.t Gen.t

val word_sized : Word.t Gen.t
(** Random radix (2–4) and length (1–8). *)

val code_config : (Codebook.t * int * int) Gen.t
(** [(family, radix, length)] accepted by {!Codebook.validate_length},
    small enough to enumerate. *)

val pattern : Pattern.t Gen.t
(** Arbitrary digit matrix — up to 8 wires × 6 regions, radix 2–4. *)

val codebook_pattern : Pattern.t Gen.t
(** Pattern encoded with a random family's canonical sequence. *)

val injective_h : radix:int -> (int -> float) Gen.t
(** Strictly increasing random dose mapping (generic/incommensurable). *)

val pattern_with_h : (Pattern.t * (int -> float)) Gen.t

val tree_space : ?max_size:int -> unit -> (int * int) Gen.t
(** [(radix, base_len)] with space size at most [max_size] (default 8). *)

val arrangement : radix:int -> base_len:int -> Word.t list Gen.t
(** Random permutation of the full reflected tree-code space. *)

val cave_config : Cave.config Gen.t
(** Small paper-platform half caves (binary BGC, M ∈ {4,6,8}, N ≤ 12). *)

val sample_seed : int Gen.t

(** {1 Counterexample printers} *)

val string_of_words : Word.t list -> string
val string_of_pattern : Pattern.t -> string
val string_of_code_config : Codebook.t * int * int -> string
val string_of_pattern_with_h : Pattern.t * (int -> float) -> string
val string_of_cave_config : Cave.config -> string
