open Nanodec_numerics

type 'a pred = 'a -> bool

type t =
  | Prop : {
      name : string;
      count : int option;
      max_shrink_steps : int;
      gen : 'a Gen.t;
      print : 'a -> string;
      pred : 'a pred;
    }
      -> t

let make ?count ?(max_shrink_steps = 200) ~name ~print gen pred =
  Prop { name; count; max_shrink_steps; gen; print; pred }

type failure = {
  seed : int;
  case_index : int;
  size : int;
  shrink_steps : int;
  counterexample : string;
  message : string option;
}

type outcome = Pass of { cases : int } | Fail of failure

let name (Prop p) = p.name
let default_seed = 2009
let default_count = 100
let max_size = 30

let case_seed ~master i = if i = 0 then master else Rng.mix_seed master i

(* The size hint is derived from the case seed — not the case index — so
   that one integer reproduces a failing case exactly. *)
let size_of_seed seed = Rng.mix_seed seed 0x5152 mod (max_size + 1)

let warned : (string, unit) Hashtbl.t = Hashtbl.create 4

let env_int var =
  match Sys.getenv_opt var with
  | None -> None
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n -> Some n
    | None ->
      if not (Hashtbl.mem warned var) then (
        Hashtbl.add warned var ();
        Printf.eprintf "proptest: ignoring non-integer %s=%S\n%!" var s);
      None)

(* true = property holds; false/exception = counterexample. *)
let eval pred x =
  match pred x with
  | true -> Ok ()
  | false -> Error None
  | exception exn -> Error (Some (Printexc.to_string exn))

let max_shrink_evals = 10_000

let minimize pred tree ~max_steps =
  let evals = ref 0 in
  let rec go tree steps message =
    if steps >= max_steps then (tree, steps, message)
    else
      let rec first_failing seq =
        if !evals >= max_shrink_evals then None
        else
          match seq () with
          | Seq.Nil -> None
          | Seq.Cons (child, rest) -> (
            incr evals;
            match eval pred (Shrink_tree.root child) with
            | Ok () -> first_failing rest
            | Error msg -> Some (child, msg))
      in
      match first_failing (Shrink_tree.children tree) with
      | Some (child, msg) -> go child (steps + 1) msg
      | None -> (tree, steps, message)
  in
  go tree 0

let effective_seed seed =
  match seed with
  | Some s -> s
  | None -> (
    match env_int "PROPTEST_SEED" with
    | Some s -> s
    | None -> default_seed)

let run ?seed ?count (Prop p) =
  let master = effective_seed seed in
  let count =
    match count with
    | Some c -> c
    | None -> (
      match env_int "PROPTEST_COUNT" with
      | Some c -> c
      | None -> ( match p.count with Some c -> c | None -> default_count))
  in
  let rec cases i =
    if i >= count then Pass { cases = count }
    else
      let seed = case_seed ~master i in
      let size = size_of_seed seed in
      let rng = Rng.create ~seed in
      let tree = Gen.run p.gen ~size rng in
      match eval p.pred (Shrink_tree.root tree) with
      | Ok () -> cases (i + 1)
      | Error message ->
        let minimal, steps, message =
          minimize p.pred tree ~max_steps:p.max_shrink_steps message
        in
        Fail
          {
            seed;
            case_index = i;
            size;
            shrink_steps = steps;
            counterexample = p.print (Shrink_tree.root minimal);
            message;
          }
  in
  cases 0

let pp_failure ppf f =
  Format.fprintf ppf
    "@[<v 2>counterexample (after %d shrink step%s):@,%s@]" f.shrink_steps
    (if f.shrink_steps = 1 then "" else "s")
    f.counterexample;
  (match f.message with
  | Some m -> Format.fprintf ppf "@,raised: %s" m
  | None -> ());
  Format.fprintf ppf
    "@,failing case %d (size %d)@,reproduce: PROPTEST_SEED=%d dune runtest"
    f.case_index f.size f.seed

let pp_outcome ppf = function
  | Pass { cases } -> Format.fprintf ppf "pass (%d cases)" cases
  | Fail f -> Format.fprintf ppf "@[<v>FAIL@,%a@]" pp_failure f

type report = { property : t; outcome : outcome }

let run_suite ?seed ?count props =
  List.map (fun p -> { property = p; outcome = run ?seed ?count p }) props

let all_passed reports =
  List.for_all
    (fun r -> match r.outcome with Pass _ -> true | Fail _ -> false)
    reports

let pp_report ppf { property; outcome } =
  match outcome with
  | Pass { cases } ->
    Format.fprintf ppf "  ok    %-58s %4d cases" (name property) cases
  | Fail f ->
    Format.fprintf ppf "@[<v 2>  FAIL  %s@,%a@]" (name property) pp_failure f
