type 'a t = { root : 'a; children : 'a t Seq.t }

let make root children = { root; children }
let pure x = { root = x; children = Seq.empty }
let root t = t.root
let children t = t.children

let rec map f t =
  { root = f t.root; children = Seq.map (map f) t.children }

let rec bind t f =
  let bound = f t.root in
  {
    root = bound.root;
    children =
      Seq.append
        (Seq.map (fun shrunk -> bind shrunk f) t.children)
        bound.children;
  }

let rec unfold step x =
  { root = x; children = Seq.map (unfold step) (step x) }

let rec map2 f a b =
  {
    root = f a.root b.root;
    children =
      Seq.append
        (Seq.map (fun a' -> map2 f a' b) a.children)
        (Seq.map (fun b' -> map2 f a b') b.children);
  }

(* One-element-at-a-time shrinks of a list of trees, leftmost first.
   Laziness matters: [shrink_elements] of a long list must not force the
   whole suffix up front. *)
let rec shrink_elements trees () =
  match trees with
  | [] -> Seq.Nil
  | t :: rest ->
    let here = Seq.map (fun t' -> t' :: rest) t.children in
    let there = Seq.map (fun rest' -> t :: rest') (shrink_elements rest) in
    Seq.append here there ()

let rec sequence_fixed trees =
  {
    root = List.map root trees;
    children = Seq.map sequence_fixed (shrink_elements trees);
  }

(* Structural list shrinks: remove chunks of k consecutive elements for
   k = n, n/2, ..., 1 — the classic QuickCheck list shrinker, which
   reaches [] in O(log n) steps when the property ignores the tail. *)
let removals trees =
  let n = List.length trees in
  let drop_chunk k xs () =
    if k <= 0 || k > List.length xs then Seq.Nil
    else
      let rec at i prefix rest () =
        match rest with
        | [] -> Seq.Nil
        | _ when i + k > List.length xs -> Seq.Nil
        | x :: tail ->
          let without =
            List.rev_append prefix
              (List.filteri (fun j _ -> j >= k) rest)
          in
          Seq.Cons (without, at (i + 1) (x :: prefix) tail)
      in
      at 0 [] xs ()
  in
  let rec sizes k () =
    if k < 1 then Seq.Nil else Seq.Cons (k, sizes (k / 2))
  in
  Seq.concat_map (fun k -> drop_chunk k trees) (sizes n)

let rec sequence_list trees =
  {
    root = List.map root trees;
    children =
      Seq.append
        (Seq.map sequence_list (removals trees))
        (Seq.map sequence_list (shrink_elements trees));
  }
