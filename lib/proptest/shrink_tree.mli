(** Lazy rose trees of shrink candidates.

    A generated value carries its whole shrink space: the root is the
    value itself and every child is a smaller candidate, itself carrying
    further shrinks.  Trees compose through {!map} and {!bind}, so
    shrinking is {e integrated}: derived generators shrink for free, and
    the runner only ever walks a tree greedily towards a minimal failing
    value.  Children are [Seq.t]s and therefore fully lazy — trees over
    unbounded shrink spaces cost nothing until a failure forces them. *)

type 'a t

val make : 'a -> 'a t Seq.t -> 'a t
val pure : 'a -> 'a t
(** Leaf: a value with no shrinks. *)

val root : 'a t -> 'a
val children : 'a t -> 'a t Seq.t

val map : ('a -> 'b) -> 'a t -> 'b t

val bind : 'a t -> ('a -> 'b t) -> 'b t
(** Monadic composition: shrinks of the first argument are re-bound (the
    dependent tree is regenerated from each shrunk root), then the second
    tree's own shrinks follow. *)

val unfold : ('a -> 'a Seq.t) -> 'a -> 'a t
(** [unfold step x] grows the full tree of iterated shrink candidates
    from a one-step shrink function. *)

val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
(** Product tree: shrinks the first component first, then the second —
    without regenerating the other side (unlike {!bind}). *)

val sequence_fixed : 'a t list -> 'a list t
(** Fixed-length list of trees: children shrink one element at a time,
    leftmost first; the length never changes. *)

val sequence_list : 'a t list -> 'a list t
(** Like {!sequence_fixed} but the list may also shrink structurally:
    dropping whole elements (largest chunks first) is tried before
    shrinking individual elements. *)
