(** The structured error taxonomy of the nanodec runtime.

    Every failure a user (or a supervising service) can observe is one
    of six shapes, each with its own process exit code, so scripts and
    orchestrators can react to {e what kind} of failure happened rather
    than parsing message text:

    {ul
    {- {!Invalid_input} (exit {!exit_invalid_input}) — a malformed or
       out-of-range argument, environment variable or derived
       configuration.  The run never started; fix the input.}
    {- {!Timeout} (exit {!exit_timeout}) — a job exceeded its deadline
       or was cooperatively cancelled.  [seconds = None] means
       cancellation rather than deadline expiry.}
    {- {!Worker_crash} (exit {!exit_worker_crash}) — a chunk of parallel
       work died and the supervisor could not (or was not allowed to)
       recover it.  [injected] distinguishes faults planted by the
       fault-injection engine from organic crashes.}
    {- {!Degraded} (exit {!exit_degraded}) — the pool was poisoned and
       degradation to sequential execution was disabled, so the run
       refused to continue.}
    {- {!Overloaded} (exit {!exit_overloaded}) — the daemon's admission
       control shed the request because its bounded work queue was
       full.  The work was never started; retry after a drain.}
    {- {!Internal} (exit {!exit_internal}) — an invariant violation; a
       bug in nanodec itself, never the user's fault.}}

    Layers raise {!Error}; the CLI renders it with {!pp} and exits with
    {!exit_code}.  Raising sites should prefer the smart constructors
    ({!invalid_inputf}, {!fail}) so messages stay uniform. *)

type t =
  | Invalid_input of { what : string; hint : string option }
  | Timeout of { site : string; seconds : float option }
  | Worker_crash of { site : string; detail : string; injected : bool }
  | Degraded of { site : string; reason : string }
  | Overloaded of { site : string; pending : int; limit : int }
  | Internal of { detail : string }

exception Error of t
(** The one exception the public entry points let escape on failure. *)

val exit_invalid_input : int  (** 2 *)

val exit_timeout : int  (** 3 *)

val exit_worker_crash : int  (** 4 *)

val exit_degraded : int  (** 5 *)

val exit_overloaded : int  (** 6 *)

val exit_internal : int  (** 70, sysexits' EX_SOFTWARE *)

val exit_code : t -> int
(** The documented, stable exit code of each constructor. *)

val label : t -> string
(** Short kebab-case tag ([invalid-input], [timeout], [worker-crash],
    [degraded], [overloaded], [internal]) used in rendered messages and
    logs. *)

val pp : Format.formatter -> t -> unit
(** One-line message followed by an indented [hint:] line when the
    error carries one. *)

val to_string : t -> string

val fail : t -> 'a
(** [fail t] raises [Error t]. *)

val invalid_inputf :
  ?hint:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [invalid_inputf ?hint fmt ...] formats the message and raises
    [Error (Invalid_input _)]. *)

val check_int_range : what:string -> ?hint:string -> min:int -> max:int -> int -> unit
(** [check_int_range ~what ~min ~max n] raises [Invalid_input] naming
    [what], the offending value and the accepted range unless
    [min <= n <= max]. *)

val internal : string -> t
(** [Internal] from a detail string (typically [Printexc.to_string]). *)

(** {1 Shared execution-knob validators}

    One definition of what the common numeric knobs accept, shared
    between the CLI flags and the serve protocol so both surfaces
    reject bad values identically ([Invalid_input], exit code 2 / JSON
    kind [invalid-input]).  [?what] carries the surface-specific
    spelling of the knob ("--mc-samples" vs "mc_samples"). *)

val check_seed : ?what:string -> int -> unit
(** Seeds are non-negative. *)

val check_mc_samples : ?what:string -> int -> unit
(** Monte-Carlo draw counts are in [2, 100_000_000]: estimates need at
    least two draws, so an explicit 0 (or 1, or any negative value) is
    rejected — a surface that wants "disabled" must omit the knob
    entirely rather than pass 0. *)

val check_timeout_s : ?what:string -> float -> unit
(** Deadlines are strictly positive and finite; NaN is rejected. *)

val parse_chunks : ?what:string -> string -> [ `Auto | `Fixed of int ]
(** Parse a chunking spec: ["auto"] or a positive decimal integer;
    anything else (including ["0"] and negatives) is [Invalid_input]. *)

val check_rel_error : ?what:string -> float -> unit
(** Adaptive-stopping relative-error targets lie in (0, 0.5]; NaN,
    zero, negatives and anything above 0.5 are [Invalid_input]. *)

val parse_mc_method :
  ?what:string ->
  string ->
  [ `Plain | `Antithetic | `Stratified of int | `Importance of float ]
(** Parse a Monte-Carlo sampling strategy: [plain], [antithetic],
    [stratified] (16 strata), [stratified:K] with K in [2, 4096],
    [importance] (shift 1.0) or [importance:S] with S in (0, 8].
    Anything else is [Invalid_input]. *)
