type t =
  | Invalid_input of { what : string; hint : string option }
  | Timeout of { site : string; seconds : float option }
  | Worker_crash of { site : string; detail : string; injected : bool }
  | Degraded of { site : string; reason : string }
  | Internal of { detail : string }

exception Error of t

(* 2..5 are free below the shells' 126/127 and cmdliner's 124/125;
   70 is sysexits' EX_SOFTWARE, the conventional "internal error". *)
let exit_invalid_input = 2
let exit_timeout = 3
let exit_worker_crash = 4
let exit_degraded = 5
let exit_internal = 70

let exit_code = function
  | Invalid_input _ -> exit_invalid_input
  | Timeout _ -> exit_timeout
  | Worker_crash _ -> exit_worker_crash
  | Degraded _ -> exit_degraded
  | Internal _ -> exit_internal

let label = function
  | Invalid_input _ -> "invalid-input"
  | Timeout _ -> "timeout"
  | Worker_crash _ -> "worker-crash"
  | Degraded _ -> "degraded"
  | Internal _ -> "internal"

let pp ppf t =
  (match t with
  | Invalid_input { what; _ } ->
    Format.fprintf ppf "[%s] %s" (label t) what
  | Timeout { site; seconds = Some s } ->
    Format.fprintf ppf "[%s] %s exceeded its %gs deadline" (label t) site s
  | Timeout { site; seconds = None } ->
    Format.fprintf ppf "[%s] %s was cancelled" (label t) site
  | Worker_crash { site; detail; injected } ->
    if injected then
      Format.fprintf ppf "[%s] injected fault killed %s: %s" (label t) site
        detail
    else
      Format.fprintf ppf "[%s] worker crashed at %s: %s" (label t) site
        detail
  | Degraded { site; reason } ->
    Format.fprintf ppf
      "[%s] %s was poisoned and degradation is disabled: %s" (label t) site
      reason
  | Internal { detail } ->
    Format.fprintf ppf "[%s] %s (this is a bug in nanodec)" (label t) detail);
  match t with
  | Invalid_input { hint = Some h; _ } ->
    Format.fprintf ppf "@.  hint: %s" h
  | _ -> ()

let to_string t = Format.asprintf "%a" pp t

let fail t = raise (Error t)

let invalid_inputf ?hint fmt =
  Format.kasprintf (fun what -> fail (Invalid_input { what; hint })) fmt

let check_int_range ~what ?hint ~min ~max n =
  if n < min || n > max then
    invalid_inputf ?hint "%s must be between %d and %d (got %d)" what min max
      n

let internal detail = Internal { detail }
