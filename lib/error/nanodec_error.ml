type t =
  | Invalid_input of { what : string; hint : string option }
  | Timeout of { site : string; seconds : float option }
  | Worker_crash of { site : string; detail : string; injected : bool }
  | Degraded of { site : string; reason : string }
  | Overloaded of { site : string; pending : int; limit : int }
  | Internal of { detail : string }

exception Error of t

(* 2..6 are free below the shells' 126/127 and cmdliner's 124/125;
   70 is sysexits' EX_SOFTWARE, the conventional "internal error". *)
let exit_invalid_input = 2
let exit_timeout = 3
let exit_worker_crash = 4
let exit_degraded = 5
let exit_overloaded = 6
let exit_internal = 70

let exit_code = function
  | Invalid_input _ -> exit_invalid_input
  | Timeout _ -> exit_timeout
  | Worker_crash _ -> exit_worker_crash
  | Degraded _ -> exit_degraded
  | Overloaded _ -> exit_overloaded
  | Internal _ -> exit_internal

let label = function
  | Invalid_input _ -> "invalid-input"
  | Timeout _ -> "timeout"
  | Worker_crash _ -> "worker-crash"
  | Degraded _ -> "degraded"
  | Overloaded _ -> "overloaded"
  | Internal _ -> "internal"

let pp ppf t =
  (match t with
  | Invalid_input { what; _ } ->
    Format.fprintf ppf "[%s] %s" (label t) what
  | Timeout { site; seconds = Some s } ->
    Format.fprintf ppf "[%s] %s exceeded its %gs deadline" (label t) site s
  | Timeout { site; seconds = None } ->
    Format.fprintf ppf "[%s] %s was cancelled" (label t) site
  | Worker_crash { site; detail; injected } ->
    if injected then
      Format.fprintf ppf "[%s] injected fault killed %s: %s" (label t) site
        detail
    else
      Format.fprintf ppf "[%s] worker crashed at %s: %s" (label t) site
        detail
  | Degraded { site; reason } ->
    Format.fprintf ppf
      "[%s] %s was poisoned and degradation is disabled: %s" (label t) site
      reason
  | Overloaded { site; pending; limit } ->
    Format.fprintf ppf
      "[%s] %s shed the request: %d already pending (limit %d) — retry \
       once the daemon drains"
      (label t) site pending limit
  | Internal { detail } ->
    Format.fprintf ppf "[%s] %s (this is a bug in nanodec)" (label t) detail);
  match t with
  | Invalid_input { hint = Some h; _ } ->
    Format.fprintf ppf "@.  hint: %s" h
  | _ -> ()

let to_string t = Format.asprintf "%a" pp t

let fail t = raise (Error t)

let invalid_inputf ?hint fmt =
  Format.kasprintf (fun what -> fail (Invalid_input { what; hint })) fmt

let check_int_range ~what ?hint ~min ~max n =
  if n < min || n > max then
    invalid_inputf ?hint "%s must be between %d and %d (got %d)" what min max
      n

let internal detail = Internal { detail }

(* --- shared numeric-knob validators ---

   The CLI flags and the serve protocol accept the same execution knobs
   (seed, mc-samples, timeout, chunks); these are the one definition of
   what each accepts, so both surfaces reject bad values with the same
   taxonomy error and the same message.  [what] carries the
   surface-specific spelling ("--mc-samples" vs "mc_samples"). *)

let check_seed ?(what = "seed") seed =
  check_int_range ~what ~min:0 ~max:max_int seed

let check_mc_samples ?(what = "mc-samples") n =
  check_int_range ~what ~min:2 ~max:100_000_000
    ~hint:"Monte-Carlo estimates need at least 2 draws; omit the field to \
           disable the check"
    n

let check_timeout_s ?(what = "timeout") s =
  (* [not (s > 0.)] also catches NaN, which compares false to
     everything. *)
  if not (s > 0.) || s = infinity then
    invalid_inputf "%s must be a positive finite number of seconds (got %h)"
      what s

let parse_chunks ?(what = "chunks") = function
  | "auto" -> `Auto
  | s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> `Fixed n
    | Some _ | None ->
      invalid_inputf
        ~hint:(Printf.sprintf "got %S" s)
        "%s must be 'auto' or a positive integer" what)

let check_rel_error ?(what = "rel-error") r =
  (* [not (r > 0.)] also catches NaN. *)
  if (not (r > 0.)) || r > 0.5 then
    invalid_inputf
      ~hint:
        "the adaptive stopping rule targets z95*SE <= rel-error*|mean|; \
         values above 0.5 would stop before the estimate means anything"
      "%s must be in (0, 0.5] (got %g)" what r

let parse_mc_method ?(what = "mc-method") s =
  let bad () =
    invalid_inputf
      ~hint:(Printf.sprintf "got %S" s)
      "%s must be plain, antithetic, stratified[:STRATA] or \
       importance[:SHIFT]"
      what
  in
  match String.index_opt s ':' with
  | None -> (
    match s with
    | "plain" -> `Plain
    | "antithetic" -> `Antithetic
    | "stratified" -> `Stratified 16
    | "importance" -> `Importance 1.0
    | _ -> bad ())
  | Some i -> (
    let name = String.sub s 0 i in
    let arg = String.sub s (i + 1) (String.length s - i - 1) in
    match name with
    | "stratified" -> (
      match int_of_string_opt arg with
      | Some k when k >= 2 && k <= 4096 -> `Stratified k
      | Some _ | None ->
        invalid_inputf
          ~hint:(Printf.sprintf "got %S" s)
          "%s: stratified strata count must be an integer in [2, 4096]"
          what)
    | "importance" -> (
      match float_of_string_opt arg with
      | Some f when f > 0. && f <= 8. -> `Importance f
      | Some _ | None ->
        invalid_inputf
          ~hint:(Printf.sprintf "got %S" s)
          "%s: importance shift must be a number in (0, 8]" what)
    | _ -> bad ())
