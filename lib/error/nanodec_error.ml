type t =
  | Invalid_input of { what : string; hint : string option }
  | Timeout of { site : string; seconds : float option }
  | Worker_crash of { site : string; detail : string; injected : bool }
  | Degraded of { site : string; reason : string }
  | Internal of { detail : string }

exception Error of t

(* 2..5 are free below the shells' 126/127 and cmdliner's 124/125;
   70 is sysexits' EX_SOFTWARE, the conventional "internal error". *)
let exit_invalid_input = 2
let exit_timeout = 3
let exit_worker_crash = 4
let exit_degraded = 5
let exit_internal = 70

let exit_code = function
  | Invalid_input _ -> exit_invalid_input
  | Timeout _ -> exit_timeout
  | Worker_crash _ -> exit_worker_crash
  | Degraded _ -> exit_degraded
  | Internal _ -> exit_internal

let label = function
  | Invalid_input _ -> "invalid-input"
  | Timeout _ -> "timeout"
  | Worker_crash _ -> "worker-crash"
  | Degraded _ -> "degraded"
  | Internal _ -> "internal"

let pp ppf t =
  (match t with
  | Invalid_input { what; _ } ->
    Format.fprintf ppf "[%s] %s" (label t) what
  | Timeout { site; seconds = Some s } ->
    Format.fprintf ppf "[%s] %s exceeded its %gs deadline" (label t) site s
  | Timeout { site; seconds = None } ->
    Format.fprintf ppf "[%s] %s was cancelled" (label t) site
  | Worker_crash { site; detail; injected } ->
    if injected then
      Format.fprintf ppf "[%s] injected fault killed %s: %s" (label t) site
        detail
    else
      Format.fprintf ppf "[%s] worker crashed at %s: %s" (label t) site
        detail
  | Degraded { site; reason } ->
    Format.fprintf ppf
      "[%s] %s was poisoned and degradation is disabled: %s" (label t) site
      reason
  | Internal { detail } ->
    Format.fprintf ppf "[%s] %s (this is a bug in nanodec)" (label t) detail);
  match t with
  | Invalid_input { hint = Some h; _ } ->
    Format.fprintf ppf "@.  hint: %s" h
  | _ -> ()

let to_string t = Format.asprintf "%a" pp t

let fail t = raise (Error t)

let invalid_inputf ?hint fmt =
  Format.kasprintf (fun what -> fail (Invalid_input { what; hint })) fmt

let check_int_range ~what ?hint ~min ~max n =
  if n < min || n > max then
    invalid_inputf ?hint "%s must be between %d and %d (got %d)" what min max
      n

let internal detail = Internal { detail }

(* --- shared numeric-knob validators ---

   The CLI flags and the serve protocol accept the same execution knobs
   (seed, mc-samples, timeout, chunks); these are the one definition of
   what each accepts, so both surfaces reject bad values with the same
   taxonomy error and the same message.  [what] carries the
   surface-specific spelling ("--mc-samples" vs "mc_samples"). *)

let check_seed ?(what = "seed") seed =
  check_int_range ~what ~min:0 ~max:max_int seed

let check_mc_samples ?(what = "mc-samples") n =
  check_int_range ~what ~min:2 ~max:100_000_000
    ~hint:"Monte-Carlo estimates need at least 2 draws; omit the field to \
           disable the check"
    n

let check_timeout_s ?(what = "timeout") s =
  (* [not (s > 0.)] also catches NaN, which compares false to
     everything. *)
  if not (s > 0.) || s = infinity then
    invalid_inputf "%s must be a positive finite number of seconds (got %h)"
      what s

let parse_chunks ?(what = "chunks") = function
  | "auto" -> `Auto
  | s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> `Fixed n
    | Some _ | None ->
      invalid_inputf
        ~hint:(Printf.sprintf "got %S" s)
        "%s must be 'auto' or a positive integer" what)
