(** Summary metrics of a code-word sequence.

    One record capturing everything the paper cares about when comparing
    encoding schemes: space coverage, transition structure (what Gray
    arrangements minimise), per-digit balance (what balanced Gray codes
    equalise) and pairwise-distance extremes. *)

type t = {
  n_words : int;
  radix : int;
  length : int;
  distinct_words : int;
  total_transitions : int;
      (** sum of Hamming distances between successive words *)
  max_step_transitions : int;
  min_step_transitions : int;
  spectrum : int array;  (** per-digit transition counts (non-cyclic) *)
  spectrum_spread : int;  (** max - min of [spectrum] *)
  min_pairwise_distance : int;
      (** smallest Hamming distance over all distinct pairs *)
  is_gray : bool;  (** successive words differ in exactly one digit *)
  is_balanced : bool;  (** spectrum spread at most 2 *)
}

val of_words : Word.t list -> t
(** Raises [Invalid_argument] on an empty or heterogeneous list.
    Pairwise distance is O(k²·M): intended for code spaces, not bulk
    data. *)

val of_codebook : radix:int -> length:int -> ?count:int -> Codebook.t -> t
(** Metrics of a family's canonical sequence; [count] defaults to the
    space size. *)

val pp : Format.formatter -> t -> unit
