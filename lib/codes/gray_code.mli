(** n-ary reflected Gray codes (paper, Section 2.3 and Propositions 4–5).

    A Gray code is an arrangement of the tree-code space in which
    successive words differ in exactly one digit.  The construction here is
    the classical reflected one: digit [j] of the [i]-th word is the [j]-th
    base-[n] digit of [i], complemented whenever the sum of the more
    significant digits is odd.  Successive (unreflected) words then differ
    in one digit by ±1; reflected words differ in exactly two digits. *)

val word_at : radix:int -> base_len:int -> int -> Word.t
(** [i]-th unreflected Gray word, [0 ≤ i <] {!Tree_code.size}. *)

val words : radix:int -> base_len:int -> count:int -> Word.t list
(** First [count] unreflected Gray words, cycling past the space size. *)

val reflected_words : radix:int -> base_len:int -> count:int -> Word.t list

val rank : Word.t -> int
(** Inverse of {!word_at} on unreflected words: position of the word in the
    Gray sequence. *)

val is_gray_sequence : Word.t list -> bool
(** Whether all successive pairs differ in exactly one digit (unreflected
    sequences) — the defining property. *)
