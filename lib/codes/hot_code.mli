(** Hot codes (paper, Section 2.3).

    A hot code over the [n]-valued logic with parameters [(M, k)],
    [M = k·n], is the set of all words of [M] digits in which every value
    [0..n-1] appears exactly [k] times.  Hot codes need no reflection: the
    fixed digit counts already guarantee unique addressability (no word
    dominates another).  For [n = 2] this is the classical k-hot /
    constant-weight code. *)

val size : radix:int -> length:int -> int
(** Multinomial {m M! / (k!)^n} with [k = length / radix]; raises
    [Invalid_argument] if [radix] does not divide [length]. *)

val multiplicity : radix:int -> length:int -> int
(** [k = length / radix]. *)

val is_member : Word.t -> bool
(** Whether every value of the word's radix occurs equally often. *)

val all : radix:int -> length:int -> Word.t list
(** The full code space in lexicographic order. *)

val words : radix:int -> length:int -> count:int -> Word.t list
(** First [count] words in lexicographic order, cycling past the space
    size. *)

val to_seq : radix:int -> length:int -> Word.t Seq.t
(** Lazy lexicographic enumeration — the space grows as
    {m M!/(k!)^n} (e.g. 12870 words at binary M = 16), so streaming
    avoids materialising it. *)
