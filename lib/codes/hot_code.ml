let multiplicity ~radix ~length =
  if radix < 2 then invalid_arg "Hot_code: radix must be >= 2";
  if length < radix || length mod radix <> 0 then
    invalid_arg
      (Printf.sprintf "Hot_code: length %d is not a multiple of radix %d"
         length radix);
  length / radix

let size ~radix ~length =
  let k = multiplicity ~radix ~length in
  let value =
    Nanodec_numerics.Special.multinomial (List.init radix (fun _ -> k))
  in
  if value > float_of_int max_int then
    invalid_arg "Hot_code.size: code space exceeds max_int";
  int_of_float value

let is_member w =
  let counts = Word.counts w in
  Array.for_all (fun c -> c = counts.(0)) counts

(* Lexicographic enumeration of multiset permutations by recursive descent
   on remaining per-value budgets. *)
let all ~radix ~length =
  let k = multiplicity ~radix ~length in
  let budget = Array.make radix k in
  let word = Array.make length 0 in
  let acc = ref [] in
  let rec fill position =
    if position = length then acc := Word.make ~radix word :: !acc
    else
      for v = radix - 1 downto 0 do
        if budget.(v) > 0 then begin
          budget.(v) <- budget.(v) - 1;
          word.(position) <- v;
          fill (position + 1);
          budget.(v) <- budget.(v) + 1
        end
      done
  in
  (* Descending value loop + list prepend yields ascending lexicographic
     order without a final reverse. *)
  fill 0;
  !acc

let words ~radix ~length ~count =
  if count < 0 then invalid_arg "Hot_code.words: negative count";
  let space = Array.of_list (all ~radix ~length) in
  let omega = Array.length space in
  List.init count (fun i -> space.(i mod omega))

(* Lazy enumeration: successor-based. [next_word] finds the next multiset
   permutation in lexicographic order (standard next-permutation on the
   digit array). *)
let next_word digits =
  let n = Array.length digits in
  let a = Array.copy digits in
  (* Find the rightmost ascent. *)
  let rec find_ascent i = if i < 0 then None else if a.(i) < a.(i + 1) then Some i else find_ascent (i - 1) in
  match find_ascent (n - 2) with
  | None -> None
  | Some i ->
    (* Smallest element greater than a.(i) to its right (rightmost works
       because the suffix is non-increasing). *)
    let rec find_swap j = if a.(j) > a.(i) then j else find_swap (j - 1) in
    let j = find_swap (n - 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp;
    (* Reverse the suffix. *)
    let lo = ref (i + 1) and hi = ref (n - 1) in
    while !lo < !hi do
      let tmp = a.(!lo) in
      a.(!lo) <- a.(!hi);
      a.(!hi) <- tmp;
      incr lo;
      decr hi
    done;
    Some a

let to_seq ~radix ~length =
  let k = multiplicity ~radix ~length in
  let first = Array.init length (fun i -> i / k) in
  let rec from digits () =
    Seq.Cons
      ( Word.make ~radix digits,
        match next_word digits with None -> Seq.empty | Some a -> from a )
  in
  from first
