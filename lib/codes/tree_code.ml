let size ~radix ~base_len =
  if radix < 2 then invalid_arg "Tree_code.size: radix must be >= 2";
  if base_len < 1 then invalid_arg "Tree_code.size: base_len must be >= 1";
  let rec power acc k =
    if k = 0 then acc
    else if acc > max_int / radix then
      invalid_arg "Tree_code.size: code space exceeds max_int"
    else power (acc * radix) (k - 1)
  in
  power 1 base_len

(* Base-[radix] digits of [i], most significant first. *)
let base_digits ~radix ~base_len i =
  let digits = Array.make base_len 0 in
  let rec fill j rest =
    if j >= 0 then begin
      digits.(j) <- rest mod radix;
      fill (j - 1) (rest / radix)
    end
  in
  fill (base_len - 1) i;
  digits

let word_at ~radix ~base_len i =
  let omega = size ~radix ~base_len in
  if i < 0 || i >= omega then
    invalid_arg
      (Printf.sprintf "Tree_code.word_at: index %d outside [0, %d)" i omega);
  Word.make ~radix (base_digits ~radix ~base_len i)

let words ~radix ~base_len ~count =
  if count < 0 then invalid_arg "Tree_code.words: negative count";
  let omega = size ~radix ~base_len in
  List.init count (fun i -> word_at ~radix ~base_len (i mod omega))

let reflected_words ~radix ~base_len ~count =
  List.map Word.reflect (words ~radix ~base_len ~count)
