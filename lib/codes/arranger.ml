open Nanodec_numerics

type objective = [ `Transitions | `Sigma ]

let cost_of_array objective words =
  let n = Array.length words in
  let total = ref 0. in
  for k = 0 to n - 2 do
    let t = float_of_int (Word.hamming_distance words.(k) words.(k + 1)) in
    let weight =
      match objective with
      | `Transitions -> 1.
      (* A transition at step k adds one doping hit to wires 0..k. *)
      | `Sigma -> float_of_int (k + 1)
    in
    total := !total +. (weight *. t)
  done;
  !total

let cost objective words = cost_of_array objective (Array.of_list words)

(* Cost delta of reversing the segment [i..j] (2-opt move): only the two
   boundary transitions change. *)
let reversal_delta objective words i j =
  let n = Array.length words in
  let edge a b weight_index =
    if a < 0 || b >= n then 0.
    else
      let weight =
        match objective with
        | `Transitions -> 1.
        | `Sigma -> float_of_int (weight_index + 1)
      in
      weight *. float_of_int (Word.hamming_distance words.(a) words.(b))
  in
  let before = edge (i - 1) i (i - 1) +. edge j (j + 1) j in
  let after = edge (i - 1) j (i - 1) +. edge i (j + 1) j in
  (* For `Sigma, reversing the interior also reweights interior
     transitions; recompute those exactly. *)
  match objective with
  | `Transitions -> after -. before
  | `Sigma ->
    let interior_before = ref 0.
    and interior_after = ref 0. in
    for k = i to j - 1 do
      let t = float_of_int (Word.hamming_distance words.(k) words.(k + 1)) in
      interior_before := !interior_before +. (float_of_int (k + 1) *. t);
      (* After reversal, the transition between original positions k, k+1
         sits between new positions (i + j - k - 1) and (i + j - k). *)
      interior_after := !interior_after +. (float_of_int (i + j - k) *. t)
    done;
    after -. before +. !interior_after -. !interior_before

let reverse_segment words i j =
  let lo = ref i
  and hi = ref j in
  while !lo < !hi do
    let tmp = words.(!lo) in
    words.(!lo) <- words.(!hi);
    words.(!hi) <- tmp;
    incr lo;
    decr hi
  done

let optimize ?(steps = 20_000) ?(initial_temperature = 2.) rng objective words =
  match words with
  | [] | [ _ ] -> words
  | _ ->
    let current = Array.of_list words in
    let n = Array.length current in
    let best = Array.copy current in
    let current_cost = ref (cost_of_array objective current) in
    let best_cost = ref !current_cost in
    for step = 0 to steps - 1 do
      let i = Rng.int rng n in
      let j = Rng.int rng n in
      let i, j = (Stdlib.min i j, Stdlib.max i j) in
      if i < j then begin
        let delta = reversal_delta objective current i j in
        let temperature =
          initial_temperature
          *. (1. -. (float_of_int step /. float_of_int steps))
          +. 1e-9
        in
        let accept =
          delta <= 0. || Rng.float rng < exp (-.delta /. temperature)
        in
        if accept then begin
          reverse_segment current i j;
          current_cost := !current_cost +. delta;
          if !current_cost < !best_cost then begin
            best_cost := !current_cost;
            Array.blit current 0 best 0 n
          end
        end
      end
    done;
    Array.to_list best

let improvement objective ~before ~after =
  let b = cost objective before in
  if b = 0. then 0. else (b -. cost objective after) /. b
