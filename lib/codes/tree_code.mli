(** Tree codes (paper, Section 2.3).

    A tree code with parameter [base_len] over radix [n] is the set of all
    {m n^{base\_len}} words, taken in counting (lexicographic) order.  For
    nanowire addressing tree codes are always used {e reflected}: each word
    is extended by its complement, so the full code length is
    [M = 2 * base_len]. *)

val size : radix:int -> base_len:int -> int
(** {m n^{base\_len}}; raises [Invalid_argument] on overflow or
    non-positive [base_len]. *)

val word_at : radix:int -> base_len:int -> int -> Word.t
(** [word_at ~radix ~base_len i] is the [i]-th unreflected word in counting
    order, [0 ≤ i < size]. *)

val words : radix:int -> base_len:int -> count:int -> Word.t list
(** First [count] unreflected words; [count] may exceed [size], in which
    case the enumeration cycles (a half cave can hold more nanowires than
    one code space — contact groups reuse the codes). *)

val reflected_words : radix:int -> base_len:int -> count:int -> Word.t list
(** Same sequence with every word reflected (length [2 * base_len]). *)
