(** Balanced Gray codes (paper, Section 2.3; Bhat & Savage 1996).

    A balanced Gray code is a cyclic Gray code whose per-digit transition
    counts are as equal as possible — in the Bhat–Savage sense, any two
    digits' counts differ by at most 2.  Spreading the transitions evenly
    across digit positions is what flattens the variability map of the
    decoder (paper, Fig. 6).

    The construction is an exact backtracking search for a balanced
    Hamiltonian cycle of the [radix]-ary hypercube, with per-digit caps as
    pruning.  It is intended for the small code spaces the decoder needs
    (at most a few hundred words); results are memoised per
    [(radix, base_len)]. *)

exception Search_exhausted
(** Raised when the space is beyond the exact search's reach — either too
    large outright or exceeding the backtracking budget.  Never observed
    for the spaces the paper uses (binary up to M = 12 reflected). *)

val cycle : radix:int -> base_len:int -> Word.t list
(** A full balanced Gray cycle visiting every word of the space exactly
    once; the last word is adjacent to the first.  Deterministic. *)

val words : radix:int -> base_len:int -> count:int -> Word.t list
(** First [count] words of {!cycle}, cycling past the space size. *)

val reflected_words : radix:int -> base_len:int -> count:int -> Word.t list

val transition_spectrum : cyclic:bool -> Word.t list -> int array
(** [transition_spectrum ~cyclic ws] counts, per digit position, how many
    successive pairs (including last→first when [cyclic]) differ at that
    position. *)

val is_balanced : cyclic:bool -> Word.t list -> bool
(** Whether the spectrum's spread (max − min) is at most 2. *)
