(** Arranged hot codes (paper, Section 5.2).

    An arranged hot code (AHC) is a hot-code space reordered so that
    successive words differ in the minimum possible number of digits — two,
    since digit counts are fixed (one position gains the value another
    loses).  The paper finds such arrangements by exhaustive search on
    spaces of up to ~100 words; here:

    {ul
    {- for [radix = 2] we use the revolving-door combination Gray code
       (Nijenhuis–Wilf), which is exact, O(Ω) and works for any length;}
    {- for larger radices we run a backtracking Hamiltonian-path search on
       the distance-2 graph of the space, with a node budget.}} *)

exception Search_exhausted
(** Raised when the general-radix search cannot cover the space (budget
    exceeded, or more than ~2000 words).  The binary revolving-door path
    never raises. *)

val all : radix:int -> length:int -> Word.t list
(** The full hot-code space in arranged order: a permutation of
    {!Hot_code.all} in which successive words are at Hamming distance 2. *)

val words : radix:int -> length:int -> count:int -> Word.t list
(** First [count] arranged words, cycling past the space size. *)

val is_arranged : Word.t list -> bool
(** Whether all successive pairs are at Hamming distance exactly 2. *)
