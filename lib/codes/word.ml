type t = { radix : int; digits : int array }

let make ~radix digits =
  if radix < 2 then invalid_arg "Word.make: radix must be >= 2";
  if Array.length digits = 0 then invalid_arg "Word.make: empty word";
  Array.iter
    (fun d ->
      if d < 0 || d >= radix then
        invalid_arg
          (Printf.sprintf "Word.make: digit %d outside [0, %d)" d radix))
    digits;
  { radix; digits = Array.copy digits }

let radix w = w.radix
let length w = Array.length w.digits

let get w j =
  if j < 0 || j >= Array.length w.digits then
    invalid_arg "Word.get: position out of range";
  w.digits.(j)

let digits w = Array.copy w.digits

let equal a b = a.radix = b.radix && a.digits = b.digits

let compare a b =
  let c = Int.compare a.radix b.radix in
  if c <> 0 then c else Stdlib.compare a.digits b.digits

let complement w =
  { w with digits = Array.map (fun d -> w.radix - 1 - d) w.digits }

let reflect w =
  { w with digits = Array.append w.digits (complement w).digits }

let is_reflected w =
  let len = Array.length w.digits in
  len mod 2 = 0
  &&
  let half = len / 2 in
  let ok = ref true in
  for j = 0 to half - 1 do
    if w.digits.(half + j) <> w.radix - 1 - w.digits.(j) then ok := false
  done;
  !ok

let base_part w =
  let len = Array.length w.digits in
  if len mod 2 <> 0 then invalid_arg "Word.base_part: odd-length word";
  { w with digits = Array.sub w.digits 0 (len / 2) }

let check_compatible ~fn a b =
  if a.radix <> b.radix || Array.length a.digits <> Array.length b.digits then
    invalid_arg (Printf.sprintf "Word.%s: incompatible words" fn)

let hamming_distance a b =
  check_compatible ~fn:"hamming_distance" a b;
  let d = ref 0 in
  for j = 0 to Array.length a.digits - 1 do
    if a.digits.(j) <> b.digits.(j) then incr d
  done;
  !d

let changed_pairs a b =
  check_compatible ~fn:"changed_pairs" a b;
  let pairs = ref [] in
  for j = Array.length a.digits - 1 downto 0 do
    if a.digits.(j) <> b.digits.(j) then
      pairs := (a.digits.(j), b.digits.(j)) :: !pairs
  done;
  !pairs

let dominates a b =
  check_compatible ~fn:"dominates" a b;
  let ok = ref true in
  for j = 0 to Array.length a.digits - 1 do
    if b.digits.(j) > a.digits.(j) then ok := false
  done;
  !ok

let counts w =
  let c = Array.make w.radix 0 in
  Array.iter (fun d -> c.(d) <- c.(d) + 1) w.digits;
  c

let char_of_digit d =
  if d < 10 then Char.chr (Char.code '0' + d)
  else Char.chr (Char.code 'a' + d - 10)

let digit_of_char ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'z' -> Char.code ch - Char.code 'a' + 10
  | _ -> invalid_arg (Printf.sprintf "Word.of_string: bad digit %C" ch)

let to_string w = String.init (length w) (fun j -> char_of_digit w.digits.(j))

let of_string ~radix s =
  if String.length s = 0 then invalid_arg "Word.of_string: empty string";
  make ~radix (Array.init (String.length s) (fun j -> digit_of_char s.[j]))

let pp ppf w = Format.pp_print_string ppf (to_string w)
