(** Multi-valued code words.

    A code word is a fixed-length sequence of digits over the [n]-valued
    logic {m \{0, …, n-1\}} (paper, Section 2.3).  Words carry their radix
    so that complementation and validation need no external context. *)

type t
(** Immutable code word. *)

val make : radix:int -> int array -> t
(** [make ~radix digits] validates every digit against [radix] (which must
    be at least 2) and copies the array.  Raises [Invalid_argument] on an
    empty array or an out-of-range digit. *)

val radix : t -> int
val length : t -> int
val get : t -> int -> int

val digits : t -> int array
(** Fresh copy of the digit array. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val complement : t -> t
(** Digitwise complement {m d ↦ n-1-d} — the paper's subtraction of the
    word from the largest word of the code space. *)

val reflect : t -> t
(** [reflect w] appends {!complement}[ w] to [w], doubling the length —
    the reflected form every tree/Gray code is used in (Section 2.3). *)

val is_reflected : t -> bool
(** Whether the second half is the complement of the first half. *)

val base_part : t -> t
(** First half of a reflected word; raises [Invalid_argument] on words of
    odd length. *)

val hamming_distance : t -> t -> int
(** Number of digit positions at which the two words differ.  This is the
    paper's "number of transitions" between successive code words. *)

val changed_pairs : t -> t -> (int * int) list
(** [(a, b)] for every position where the first word holds [a] and the
    second holds [b ≠ a], in position order.  The distinct members of this
    list determine the distinct doping doses of a fabrication step. *)

val dominates : t -> t -> bool
(** [dominates a b] is true when {m bⱼ ≤ aⱼ} at every position — word [b]'s
    transistors all conduct under the voltage pattern that addresses [a]
    (decoder semantics of Section 2.2). *)

val counts : t -> int array
(** [counts w] maps each digit value to its number of occurrences (array of
    length [radix w]); used by the hot-code membership test. *)

val to_string : t -> string
(** Digits as characters, e.g. ["0212"]; digits above 9 print as
    ['a'], ['b'], … *)

val of_string : radix:int -> string -> t

val pp : Format.formatter -> t -> unit
