type t = Tree | Gray | Balanced_gray | Hot | Arranged_hot

let all_types = [ Tree; Gray; Balanced_gray; Hot; Arranged_hot ]

let name = function
  | Tree -> "TC"
  | Gray -> "GC"
  | Balanced_gray -> "BGC"
  | Hot -> "HC"
  | Arranged_hot -> "AHC"

let long_name = function
  | Tree -> "tree code"
  | Gray -> "Gray code"
  | Balanced_gray -> "balanced Gray code"
  | Hot -> "hot code"
  | Arranged_hot -> "arranged hot code"

let of_name s =
  match String.lowercase_ascii (String.trim s) with
  | "tc" | "tree" | "tree code" -> Some Tree
  | "gc" | "gray" | "gray code" -> Some Gray
  | "bgc" | "balanced gray" | "balanced gray code" -> Some Balanced_gray
  | "hc" | "hot" | "hot code" -> Some Hot
  | "ahc" | "arranged hot" | "arranged hot code" -> Some Arranged_hot
  | _ -> None

let pp ppf ct = Format.pp_print_string ppf (name ct)

let uses_reflection = function
  | Tree | Gray | Balanced_gray -> true
  | Hot | Arranged_hot -> false

let validate_length ~radix ~length = function
  | Tree | Gray | Balanced_gray ->
    if length < 2 || length mod 2 <> 0 then
      Error
        (Printf.sprintf
           "reflected codes need an even length >= 2, got %d" length)
    else Ok ()
  | Hot | Arranged_hot ->
    if length < radix || length mod radix <> 0 then
      Error
        (Printf.sprintf "hot codes need radix (%d) to divide length (%d)"
           radix length)
    else Ok ()

let check ~radix ~length ct =
  match validate_length ~radix ~length ct with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Codebook: " ^ msg)

let space_size ~radix ~length ct =
  check ~radix ~length ct;
  match ct with
  | Tree | Gray | Balanced_gray ->
    Tree_code.size ~radix ~base_len:(length / 2)
  | Hot | Arranged_hot -> Hot_code.size ~radix ~length

let sequence ~radix ~length ~count ct =
  check ~radix ~length ct;
  match ct with
  | Tree -> Tree_code.reflected_words ~radix ~base_len:(length / 2) ~count
  | Gray -> Gray_code.reflected_words ~radix ~base_len:(length / 2) ~count
  | Balanced_gray ->
    Balanced_gray.reflected_words ~radix ~base_len:(length / 2) ~count
  | Hot -> Hot_code.words ~radix ~length ~count
  | Arranged_hot -> Arranged_hot.words ~radix ~length ~count

let to_seq ~radix ~length ct =
  check ~radix ~length ct;
  let omega = space_size ~radix ~length ct in
  let block = Array.of_list (sequence ~radix ~length ~count:omega ct) in
  let rec from i () = Seq.Cons (block.(i mod omega), from (i + 1)) in
  from 0

let minimal_length ~radix ~min_size ct =
  if min_size < 1 then invalid_arg "Codebook.minimal_length: min_size < 1";
  let step = match ct with
    | Tree | Gray | Balanced_gray -> 2
    | Hot | Arranged_hot -> radix
  in
  let rec grow length =
    if length > 64 then
      invalid_arg "Codebook.minimal_length: no valid length below 64"
    else if space_size ~radix ~length ct >= min_size then length
    else grow (length + step)
  in
  grow step

let cache_key ~radix ~length ct =
  Printf.sprintf "codebook/v1|%s|n=%d|M=%d" (name ct) radix length
