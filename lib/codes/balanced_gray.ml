exception Search_exhausted

(* Documented search reach: binary spaces to 64 words (base length 6) and
   a safety margin beyond; higher radices to 32 words.  Larger spaces were
   measured to exhaust the budget, so they fail fast instead of burning
   restarts * node_budget expansions. *)
let max_space ~radix = if radix = 2 then 4096 else 32
let node_budget = 2_000_000
let restarts = 4

(* Digits of [index] in base [radix], msd first. *)
let digits_of_index ~radix ~base_len index =
  let digits = Array.make base_len 0 in
  let rec fill j rest =
    if j >= 0 then begin
      digits.(j) <- rest mod radix;
      fill (j - 1) (rest / radix)
    end
  in
  fill (base_len - 1) index;
  digits

(* Per-digit transition-count cap that still allows a balanced cycle.  In
   the binary hypercube every digit's cycle count is even, so the cap is
   the even ceiling of t/m; otherwise ceil(t/m) + 1. *)
let transition_cap ~radix ~base_len ~space =
  let per_digit = float_of_int space /. float_of_int base_len in
  if radix = 2 then begin
    let cap = int_of_float (ceil per_digit) in
    let cap = if cap mod 2 = 0 then cap else cap + 1 in
    (* The even cap must leave room for the remaining digits to stay within
       spread 2; widen by 2 when the even rounding is exact but the total
       does not divide evenly. *)
    if cap * base_len < space then cap + 2 else cap
  end
  else int_of_float (ceil per_digit) + 1

let spread counts =
  Array.fold_left Stdlib.max counts.(0) counts
  - Array.fold_left Stdlib.min counts.(0) counts

(* Exact backtracking search for a balanced Gray (Hamiltonian) cycle.
   [salt] perturbs the tie-breaking between equally-balanced digit
   positions, so exhausted attempts can be retried on a different part of
   the search tree. *)
let search_once ~radix ~base_len ~salt =
  let space = Tree_code.size ~radix ~base_len in
  if space > max_space ~radix then raise Search_exhausted;
  let places =
    Array.init base_len (fun j ->
        let rec pow acc k = if k = 0 then acc else pow (acc * radix) (k - 1) in
        pow 1 (base_len - 1 - j))
  in
  let cap = transition_cap ~radix ~base_len ~space in
  let visited = Array.make space false in
  let path = Array.make space 0 in
  let counts = Array.make base_len 0 in
  let expansions = ref 0 in
  let digit_at index j = index / places.(j) mod radix in
  (* Move ordering: balance first (lowest transition count), then a
     salt-dependent tie break. *)
  let tie j = (j + salt) * 2654435761 mod 104729 in
  let candidate_positions () =
    let order = Array.init base_len (fun j -> j) in
    Array.sort
      (fun a b -> Stdlib.compare (counts.(a), tie a) (counts.(b), tie b))
      order;
    order
  in
  let rec extend depth current =
    incr expansions;
    if !expansions > node_budget then raise Search_exhausted;
    if depth = space then begin
      (* Close the cycle back to word 0: the closing edge must change one
         digit and keep the spectrum balanced. *)
      let closing = ref None in
      for j = 0 to base_len - 1 do
        if digit_at current j <> 0 then
          closing := (match !closing with None -> Some j | Some _ -> Some (-1))
      done;
      match !closing with
      | Some j when j >= 0 && counts.(j) < cap ->
        counts.(j) <- counts.(j) + 1;
        let ok = spread counts <= 2 in
        if not ok then counts.(j) <- counts.(j) - 1;
        ok
      | Some _ | None -> false
    end
    else begin
      let order = candidate_positions () in
      let found = ref false in
      let i = ref 0 in
      while (not !found) && !i < base_len do
        let j = order.(!i) in
        if counts.(j) < cap then begin
          let d = digit_at current j in
          let v = ref 0 in
          while (not !found) && !v < radix do
            if !v <> d then begin
              let next = current + ((!v - d) * places.(j)) in
              if not visited.(next) then begin
                visited.(next) <- true;
                counts.(j) <- counts.(j) + 1;
                path.(depth) <- next;
                if extend (depth + 1) next then found := true
                else begin
                  visited.(next) <- false;
                  counts.(j) <- counts.(j) - 1
                end
              end
            end;
            incr v
          done
        end;
        incr i
      done;
      !found
    end
  in
  visited.(0) <- true;
  path.(0) <- 0;
  if not (extend 1 0) then raise Search_exhausted;
  Array.map (fun index -> digits_of_index ~radix ~base_len index) path

let search ~radix ~base_len =
  let rec attempt salt =
    if salt >= restarts then raise Search_exhausted
    else
      match search_once ~radix ~base_len ~salt with
      | cycle -> cycle
      | exception Search_exhausted -> attempt (salt + 1)
  in
  attempt 0

(* Exhausted searches are as expensive as successful ones (the full
   backtracking budget); memoise both outcomes.  Accesses are
   mutex-guarded for domain-parallel sweeps; the search runs outside
   the lock (pure in the key, so a concurrent duplicate recomputes the
   same entry and [replace] keeps the table consistent). *)
let memo : (int * int, int array array option) Hashtbl.t = Hashtbl.create 8
let memo_mutex = Mutex.create ()

let memo_find key =
  Mutex.lock memo_mutex;
  let r = Hashtbl.find_opt memo key in
  Mutex.unlock memo_mutex;
  r

let memo_store key v =
  Mutex.lock memo_mutex;
  Hashtbl.replace memo key v;
  Mutex.unlock memo_mutex

let cycle_digits ~radix ~base_len =
  if radix < 2 then invalid_arg "Balanced_gray.cycle: radix must be >= 2";
  if base_len < 1 then invalid_arg "Balanced_gray.cycle: base_len must be >= 1";
  match memo_find (radix, base_len) with
  | Some (Some c) -> c
  | Some None -> raise Search_exhausted
  | None ->
    (match search ~radix ~base_len with
    | c ->
      memo_store (radix, base_len) (Some c);
      c
    | exception Search_exhausted ->
      memo_store (radix, base_len) None;
      raise Search_exhausted)

let cycle ~radix ~base_len =
  Array.to_list
    (Array.map (fun digits -> Word.make ~radix digits)
       (cycle_digits ~radix ~base_len))

let words ~radix ~base_len ~count =
  if count < 0 then invalid_arg "Balanced_gray.words: negative count";
  let c = cycle_digits ~radix ~base_len in
  let omega = Array.length c in
  List.init count (fun i -> Word.make ~radix c.(i mod omega))

let reflected_words ~radix ~base_len ~count =
  List.map Word.reflect (words ~radix ~base_len ~count)

let transition_spectrum ~cyclic ws =
  match ws with
  | [] | [ _ ] -> [||]
  | first :: _ ->
    let spectrum = Array.make (Word.length first) 0 in
    let record a b =
      List.iter (fun j ->
          if Word.get a j <> Word.get b j then
            spectrum.(j) <- spectrum.(j) + 1)
        (List.init (Word.length a) (fun j -> j))
    in
    let rec walk = function
      | a :: (b :: _ as rest) ->
        record a b;
        walk rest
      | [ last ] -> if cyclic then record last first
      | [] -> ()
    in
    walk ws;
    spectrum

let is_balanced ~cyclic ws =
  match transition_spectrum ~cyclic ws with
  | [||] -> true
  | spectrum -> spread spectrum <= 2
