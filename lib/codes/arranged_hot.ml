exception Search_exhausted

let node_budget = 5_000_000
let max_search_space = 2048

(* Revolving-door order on k-subsets of {0..n-1} (Nijenhuis & Wilf):
   R(n,k) = R(n-1,k) followed by the reverse of R(n-1,k-1) with element
   n-1 added; consecutive subsets differ by exactly one exchange. *)
let rec revolving_door n k =
  if k = 0 then [ [] ]
  else if k = n then [ List.init n (fun i -> i) ]
  else
    let keep = revolving_door (n - 1) k in
    let extend =
      List.rev_map (fun subset -> subset @ [ n - 1 ]) (revolving_door (n - 1) (k - 1))
    in
    keep @ extend

let binary_arranged ~length =
  let k = Hot_code.multiplicity ~radix:2 ~length in
  let word_of_subset subset =
    let digits = Array.make length 0 in
    List.iter (fun position -> digits.(position) <- 1) subset;
    Word.make ~radix:2 digits
  in
  List.map word_of_subset (revolving_door length k)

(* General radix: Hamiltonian path on the distance-2 graph, Warnsdorff
   ordering (fewest onward moves first). *)
let searched_arranged ~radix ~length =
  let space = Array.of_list (Hot_code.all ~radix ~length) in
  let omega = Array.length space in
  if omega > max_search_space then raise Search_exhausted;
  let adjacent = Array.make_matrix omega omega false in
  for a = 0 to omega - 1 do
    for b = a + 1 to omega - 1 do
      if Word.hamming_distance space.(a) space.(b) = 2 then begin
        adjacent.(a).(b) <- true;
        adjacent.(b).(a) <- true
      end
    done
  done;
  let neighbours = Array.init omega (fun a ->
      Array.of_list
        (List.filter (fun b -> adjacent.(a).(b)) (List.init omega (fun b -> b))))
  in
  let visited = Array.make omega false in
  let path = Array.make omega 0 in
  let expansions = ref 0 in
  let free_degree v =
    Array.fold_left
      (fun acc u -> if visited.(u) then acc else acc + 1)
      0 neighbours.(v)
  in
  let rec extend depth current =
    incr expansions;
    if !expansions > node_budget then raise Search_exhausted;
    if depth = omega then true
    else begin
      let candidates =
        Array.of_list
          (List.filter (fun v -> not visited.(v))
             (Array.to_list neighbours.(current)))
      in
      let keyed = Array.map (fun v -> (free_degree v, v)) candidates in
      Array.sort Stdlib.compare keyed;
      let found = ref false in
      let i = ref 0 in
      while (not !found) && !i < Array.length keyed do
        let _, v = keyed.(!i) in
        visited.(v) <- true;
        path.(depth) <- v;
        if extend (depth + 1) v then found := true else visited.(v) <- false;
        incr i
      done;
      !found
    end
  in
  visited.(0) <- true;
  path.(0) <- 0;
  if not (extend 1 0) then raise Search_exhausted;
  Array.to_list (Array.map (fun i -> space.(i)) path)

(* Both outcomes are memoised: a failed search burns its whole budget and
   would otherwise be re-run on every sweep.  The table is shared by
   every domain of a parallel sweep, so accesses go through a mutex; the
   search itself runs outside the lock (it is a pure function of the
   key, so a concurrent duplicate computes the same entry and [replace]
   keeps the table consistent). *)
let memo : (int * int, Word.t array option) Hashtbl.t = Hashtbl.create 8
let memo_mutex = Mutex.create ()

let memo_find key =
  Mutex.lock memo_mutex;
  let r = Hashtbl.find_opt memo key in
  Mutex.unlock memo_mutex;
  r

let memo_store key v =
  Mutex.lock memo_mutex;
  Hashtbl.replace memo key v;
  Mutex.unlock memo_mutex

let all_array ~radix ~length =
  match memo_find (radix, length) with
  | Some (Some a) -> a
  | Some None -> raise Search_exhausted
  | None ->
    (match
       if radix = 2 then binary_arranged ~length
       else searched_arranged ~radix ~length
     with
    | sequence ->
      let a = Array.of_list sequence in
      memo_store (radix, length) (Some a);
      a
    | exception Search_exhausted ->
      memo_store (radix, length) None;
      raise Search_exhausted)

let all ~radix ~length = Array.to_list (all_array ~radix ~length)

let words ~radix ~length ~count =
  if count < 0 then invalid_arg "Arranged_hot.words: negative count";
  let a = all_array ~radix ~length in
  let omega = Array.length a in
  List.init count (fun i -> a.(i mod omega))

let is_arranged ws =
  let rec check = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> Word.hamming_distance a b = 2 && check rest
  in
  check ws
