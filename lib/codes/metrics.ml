type t = {
  n_words : int;
  radix : int;
  length : int;
  distinct_words : int;
  total_transitions : int;
  max_step_transitions : int;
  min_step_transitions : int;
  spectrum : int array;
  spectrum_spread : int;
  min_pairwise_distance : int;
  is_gray : bool;
  is_balanced : bool;
}

let of_words words =
  match words with
  | [] -> invalid_arg "Metrics.of_words: empty sequence"
  | first :: _ ->
    let radix = Word.radix first
    and length = Word.length first in
    List.iter
      (fun w ->
        if Word.radix w <> radix || Word.length w <> length then
          invalid_arg "Metrics.of_words: heterogeneous words")
      words;
    let arr = Array.of_list words in
    let n_words = Array.length arr in
    let steps =
      Array.init (n_words - 1) (fun i ->
          Word.hamming_distance arr.(i) arr.(i + 1))
    in
    let total_transitions = Array.fold_left ( + ) 0 steps in
    let max_step = Array.fold_left Stdlib.max 0 steps in
    let min_step =
      if Array.length steps = 0 then 0
      else Array.fold_left Stdlib.min steps.(0) steps
    in
    let spectrum = Balanced_gray.transition_spectrum ~cyclic:false words in
    let spread =
      match spectrum with
      | [||] -> 0
      | _ ->
        Array.fold_left Stdlib.max spectrum.(0) spectrum
        - Array.fold_left Stdlib.min spectrum.(0) spectrum
    in
    (* One sorted copy serves both distinct-word counting and pairwise
       distance: duplicates land adjacent, so the unique representatives
       are the cluster heads, and the quadratic distance scan then runs
       over those representatives only (instead of all n² pairs,
       re-comparing every duplicate). *)
    let sorted = Array.copy arr in
    Array.sort Word.compare sorted;
    let uniq = Array.make n_words sorted.(0) in
    let n_uniq = ref 1 in
    for i = 1 to n_words - 1 do
      if Word.compare sorted.(i - 1) sorted.(i) <> 0 then begin
        uniq.(!n_uniq) <- sorted.(i);
        incr n_uniq
      end
    done;
    let distinct_words = !n_uniq in
    let min_pairwise =
      (* Guard the O(d²) scan: skip it outright for fewer than two
         distinct words, and stop as soon as the distance floor for
         distinct words (1) is reached — full codebooks of adjacent Gray
         words exit on the first pair. *)
      if distinct_words < 2 then 0
      else begin
        let best = ref length in
        (try
           for i = 0 to distinct_words - 1 do
             for j = i + 1 to distinct_words - 1 do
               let d = Word.hamming_distance uniq.(i) uniq.(j) in
               if d < !best then begin
                 best := d;
                 if d <= 1 then raise Exit
               end
             done
           done
         with Exit -> ());
        !best
      end
    in
    {
      n_words;
      radix;
      length;
      distinct_words;
      total_transitions;
      max_step_transitions = max_step;
      min_step_transitions = min_step;
      spectrum;
      spectrum_spread = spread;
      min_pairwise_distance = min_pairwise;
      is_gray = Gray_code.is_gray_sequence words;
      is_balanced = spread <= 2;
    }

let of_codebook ~radix ~length ?count code_type =
  let count =
    match count with
    | Some c -> c
    | None -> Codebook.space_size ~radix ~length code_type
  in
  of_words (Codebook.sequence ~radix ~length ~count code_type)

let pp ppf m =
  Format.fprintf ppf
    "@[<v>%d words (%d distinct), radix %d, length %d@,\
     transitions: total %d, per step %d..%d@,\
     spectrum spread %d (balanced: %b), gray: %b@,\
     min pairwise distance %d@]"
    m.n_words m.distinct_words m.radix m.length m.total_transitions
    m.min_step_transitions m.max_step_transitions m.spectrum_spread
    m.is_balanced m.is_gray m.min_pairwise_distance
