type t = {
  n_words : int;
  radix : int;
  length : int;
  distinct_words : int;
  total_transitions : int;
  max_step_transitions : int;
  min_step_transitions : int;
  spectrum : int array;
  spectrum_spread : int;
  min_pairwise_distance : int;
  is_gray : bool;
  is_balanced : bool;
}

let of_words words =
  match words with
  | [] -> invalid_arg "Metrics.of_words: empty sequence"
  | first :: _ ->
    let radix = Word.radix first
    and length = Word.length first in
    List.iter
      (fun w ->
        if Word.radix w <> radix || Word.length w <> length then
          invalid_arg "Metrics.of_words: heterogeneous words")
      words;
    let arr = Array.of_list words in
    let n_words = Array.length arr in
    let steps =
      Array.init (n_words - 1) (fun i ->
          Word.hamming_distance arr.(i) arr.(i + 1))
    in
    let total_transitions = Array.fold_left ( + ) 0 steps in
    let max_step = Array.fold_left Stdlib.max 0 steps in
    let min_step =
      if Array.length steps = 0 then 0
      else Array.fold_left Stdlib.min steps.(0) steps
    in
    let spectrum = Balanced_gray.transition_spectrum ~cyclic:false words in
    let spread =
      match spectrum with
      | [||] -> 0
      | _ ->
        Array.fold_left Stdlib.max spectrum.(0) spectrum
        - Array.fold_left Stdlib.min spectrum.(0) spectrum
    in
    let distinct_words =
      List.length (List.sort_uniq Word.compare words)
    in
    let min_pairwise =
      let best = ref length in
      for i = 0 to n_words - 1 do
        for j = i + 1 to n_words - 1 do
          if not (Word.equal arr.(i) arr.(j)) then
            best := Stdlib.min !best (Word.hamming_distance arr.(i) arr.(j))
        done
      done;
      if distinct_words < 2 then 0 else !best
    in
    {
      n_words;
      radix;
      length;
      distinct_words;
      total_transitions;
      max_step_transitions = max_step;
      min_step_transitions = min_step;
      spectrum;
      spectrum_spread = spread;
      min_pairwise_distance = min_pairwise;
      is_gray = Gray_code.is_gray_sequence words;
      is_balanced = spread <= 2;
    }

let of_codebook ~radix ~length ?count code_type =
  let count =
    match count with
    | Some c -> c
    | None -> Codebook.space_size ~radix ~length code_type
  in
  of_words (Codebook.sequence ~radix ~length ~count code_type)

let pp ppf m =
  Format.fprintf ppf
    "@[<v>%d words (%d distinct), radix %d, length %d@,\
     transitions: total %d, per step %d..%d@,\
     spectrum spread %d (balanced: %b), gray: %b@,\
     min pairwise distance %d@]"
    m.n_words m.distinct_words m.radix m.length m.total_transitions
    m.min_step_transitions m.max_step_transitions m.spectrum_spread
    m.is_balanced m.is_gray m.min_pairwise_distance
