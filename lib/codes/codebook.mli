(** Unified interface over the five code families of the paper.

    Tree, Gray and balanced-Gray codes are always delivered in reflected
    form (the decoder needs reflection for unique addressability); hot and
    arranged-hot codes are delivered as-is.  [length] is always the full
    code length [M] — the number of doping regions per nanowire. *)

type t = Tree | Gray | Balanced_gray | Hot | Arranged_hot

val all_types : t list
(** [Tree; Gray; Balanced_gray; Hot; Arranged_hot]. *)

val name : t -> string
(** Paper abbreviation: "TC", "GC", "BGC", "HC", "AHC". *)

val long_name : t -> string

val of_name : string -> t option
(** Parses both abbreviations and long names, case-insensitively. *)

val pp : Format.formatter -> t -> unit

val uses_reflection : t -> bool

val validate_length : radix:int -> length:int -> t -> (unit, string) result
(** Reflected families need an even [length] with positive half; hot
    families need [radix | length]. *)

val space_size : radix:int -> length:int -> t -> int
(** Number of distinct code words Ω.  Raises [Invalid_argument] when the
    length is invalid for the family. *)

val sequence : radix:int -> length:int -> count:int -> t -> Word.t list
(** The family's canonical word sequence — counting order for tree and hot
    codes, minimum-transition arrangements for the other three — cycling
    once [count] exceeds Ω. *)

val to_seq : radix:int -> length:int -> t -> Word.t Seq.t
(** Lazy, endless (cycling) stream of the family's sequence — equivalent
    to {!sequence} without choosing [count] up front. *)

val minimal_length : radix:int -> min_size:int -> t -> int
(** Smallest valid [length] whose space size is at least [min_size]. *)

val cache_key : radix:int -> length:int -> t -> string
(** Canonical, injective content key of the family's construction
    parameters — the artifact-cache key of the word sequence this
    triple determines.  Stable across processes ("codebook/v1|..."). *)
