(* Reflected n-ary Gray code.  Recursive definition: the space splits into
   n blocks by leading digit d; block d holds the (m-1)-digit code, reversed
   whenever d is odd.  Iteratively: emit the leading digit of the remaining
   index and mirror the remainder inside its block when that digit is odd.
   Successive words then differ in exactly one digit (by ±1). *)

let gray_digits ~radix ~base_len i =
  let digits = Array.make base_len 0 in
  let place = ref (Tree_code.size ~radix ~base_len) in
  let rest = ref i in
  for j = 0 to base_len - 1 do
    place := !place / radix;
    let d = !rest / !place in
    let inner = !rest mod !place in
    digits.(j) <- d;
    rest := (if d mod 2 = 1 then !place - 1 - inner else inner)
  done;
  digits

let word_at ~radix ~base_len i =
  let omega = Tree_code.size ~radix ~base_len in
  if i < 0 || i >= omega then
    invalid_arg
      (Printf.sprintf "Gray_code.word_at: index %d outside [0, %d)" i omega);
  Word.make ~radix (gray_digits ~radix ~base_len i)

let words ~radix ~base_len ~count =
  if count < 0 then invalid_arg "Gray_code.words: negative count";
  let omega = Tree_code.size ~radix ~base_len in
  List.init count (fun i -> word_at ~radix ~base_len (i mod omega))

let reflected_words ~radix ~base_len ~count =
  List.map Word.reflect (words ~radix ~base_len ~count)

(* Inverse: rebuild the index bottom-up, undoing the mirroring of each
   level whose digit is odd. *)
let rank w =
  let radix = Word.radix w in
  let inner = ref 0 in
  let place = ref 1 in
  for j = Word.length w - 1 downto 0 do
    let d = Word.get w j in
    let unmirrored = if d mod 2 = 1 then !place - 1 - !inner else !inner in
    inner := (d * !place) + unmirrored;
    place := !place * radix
  done;
  !inner

let is_gray_sequence words =
  let rec check = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) ->
      Word.hamming_distance a b = 1 && check rest
  in
  check words
