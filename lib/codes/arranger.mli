(** Heuristic code-space arrangement optimiser.

    Section 5 of the paper derives optimal arrangements analytically for
    tree codes (the Gray code) and finds them exhaustively for hot codes
    (the AHC).  This module generalises both: given {e any} set of code
    words, local search (simulated annealing over reversal moves, i.e.
    2-opt) minimises one of the paper's fabrication costs:

    {ul
    {- [`Transitions] — the plain digit-transition count Φ is monotone in
       (Proposition 5);}
    {- [`Sigma] — the exact variability objective
       {m ‖Σ‖₁/σ_T² = N·M + Σ_k (k+1)·t_k}, which weights early
       transitions more (they hit every wire below them).}}

    The search only permutes the given words; it never invents new ones. *)

type objective = [ `Transitions | `Sigma ]

val cost : objective -> Word.t list -> float
(** The optimised quantity; [`Transitions] is the integer transition count,
    [`Sigma] the weighted sum above (excluding the constant [N·M]). *)

val optimize :
  ?steps:int ->
  ?initial_temperature:float ->
  Nanodec_numerics.Rng.t ->
  objective ->
  Word.t list ->
  Word.t list
(** [optimize rng objective words] returns a permutation of [words] whose
    cost is never above the input's.  Deterministic given the generator.
    Default 20 000 annealing steps. *)

val improvement : objective -> before:Word.t list -> after:Word.t list -> float
(** Relative cost reduction, in [0, 1). *)
