(* Zero-dependency observability: spans, counters and log-scale latency
   histograms behind one [sink] value.

   Domain-safety model.  Counters and histograms are arrays of atomics —
   any domain may hit them concurrently.  Spans are recorded into
   per-domain buffers: each domain appends to a buffer only it writes
   (found through a domain-local cache, registered into the sink under
   its mutex on first use), and the buffers are merged at export time.
   The export functions must therefore run after the parallel work has
   joined — which every pool join in this code base guarantees — and the
   pool's own join mutex provides the happens-before that publishes the
   worker buffers to the exporting domain.

   Clock.  OCaml's stdlib has no monotonic clock, so the default clock
   is [Unix.gettimeofday] made monotonic per recording domain: each
   span buffer clamps time to never run backwards, which keeps every
   exported span tree well-formed (children inside parents) even across
   an NTP step.  A custom [clock] can be injected for tests. *)

(* --- counters --- *)

type counter = { c_name : string; cell : int Atomic.t }

(* --- histograms ---

   Bucket [b] counts observations whose duration in nanoseconds lies in
   [2^b, 2^(b+1)); bucket 0 also absorbs sub-nanosecond values.  64
   power-of-two buckets span 1 ns .. ~584 years, so no observation is
   ever out of range. *)

let hist_buckets = 64

type histogram = {
  h_name : string;
  counts : int Atomic.t array;
  observations : int Atomic.t;
  sum_ns : int Atomic.t;
  min_ns : int Atomic.t;
  max_ns : int Atomic.t;
}

(* --- spans: per-domain buffers --- *)

type raw_span = {
  r_name : string;
  r_id : int;  (* unique within its buffer *)
  r_parent : int;  (* r_id of the enclosing span, -1 for a root *)
  r_start : float;  (* seconds since the sink epoch *)
  r_stop : float;
}

type dbuf = {
  dom : int;  (* Domain.self of the owning domain *)
  mutable last_t : float;  (* per-domain monotonic clamp *)
  mutable open_spans : (int * string * float) list;  (* id, name, start *)
  mutable next_id : int;
  mutable closed : raw_span list;  (* latest first *)
  mutable n_closed : int;
}

(* Memory bound: a runaway span loop cannot grow a buffer without
   limit; beyond the cap spans are dropped and the drop is counted. *)
let max_spans_per_domain = 200_000

type sink = {
  sink_id : int;
  clock : unit -> float;
  epoch : float;
  mutex : Mutex.t;
  by_domain : (int, dbuf) Hashtbl.t;
  counter_tbl : (string, counter) Hashtbl.t;
  histogram_tbl : (string, histogram) Hashtbl.t;
  dropped_spans : int Atomic.t;
}

let next_sink_id = Atomic.make 0

let create ?(clock = Unix.gettimeofday) () =
  {
    sink_id = Atomic.fetch_and_add next_sink_id 1;
    clock;
    epoch = clock ();
    mutex = Mutex.create ();
    by_domain = Hashtbl.create 8;
    counter_tbl = Hashtbl.create 16;
    histogram_tbl = Hashtbl.create 16;
    dropped_spans = Atomic.make 0;
  }

(* Each domain caches its buffer for the sink it used last; switching
   sinks falls back to the registry lookup under the sink mutex.  The
   cache holds (sink_id, buffer) so a stale entry from another sink can
   never be confused for this one's. *)
let dbuf_cache : (int * dbuf) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let dbuf_for t =
  let cache = Domain.DLS.get dbuf_cache in
  match !cache with
  | Some (id, b) when id = t.sink_id -> b
  | _ ->
    let dom = (Domain.self () :> int) in
    Mutex.lock t.mutex;
    let b =
      match Hashtbl.find_opt t.by_domain dom with
      | Some b -> b
      | None ->
        let b =
          {
            dom;
            last_t = 0.;
            open_spans = [];
            next_id = 0;
            closed = [];
            n_closed = 0;
          }
        in
        Hashtbl.add t.by_domain dom b;
        b
    in
    Mutex.unlock t.mutex;
    cache := Some (t.sink_id, b);
    b

let now t = t.clock () -. t.epoch

(* Monotonic within one buffer: never before the previous timestamp
   taken on this domain. *)
let now_mono t b =
  let x = now t in
  let x = if x < b.last_t then b.last_t else x in
  b.last_t <- x;
  x

let span_begin t name =
  let b = dbuf_for t in
  let id = b.next_id in
  b.next_id <- id + 1;
  b.open_spans <- (id, name, now_mono t b) :: b.open_spans;
  b

let span_end t b =
  match b.open_spans with
  | [] -> ()  (* impossible through [with_span]; ignore defensively *)
  | (id, name, start) :: rest ->
    b.open_spans <- rest;
    let parent = match rest with (pid, _, _) :: _ -> pid | [] -> -1 in
    if b.n_closed >= max_spans_per_domain then
      Atomic.incr t.dropped_spans
    else begin
      b.closed <-
        {
          r_name = name;
          r_id = id;
          r_parent = parent;
          r_start = start;
          r_stop = now_mono t b;
        }
        :: b.closed;
      b.n_closed <- b.n_closed + 1
    end

let with_span sink name f =
  match sink with
  | None -> f ()
  | Some t ->
    let b = span_begin t name in
    Fun.protect ~finally:(fun () -> span_end t b) f

(* --- counters --- *)

let counter t name =
  Mutex.lock t.mutex;
  let c =
    match Hashtbl.find_opt t.counter_tbl name with
    | Some c -> c
    | None ->
      let c = { c_name = name; cell = Atomic.make 0 } in
      Hashtbl.add t.counter_tbl name c;
      c
  in
  Mutex.unlock t.mutex;
  c

let add c n = ignore (Atomic.fetch_and_add c.cell n)
let incr c = add c 1
let counter_name c = c.c_name
let counter_value c = Atomic.get c.cell

let count sink name n =
  match sink with None -> () | Some t -> add (counter t name) n

(* --- histograms --- *)

let histogram t name =
  Mutex.lock t.mutex;
  let h =
    match Hashtbl.find_opt t.histogram_tbl name with
    | Some h -> h
    | None ->
      let h =
        {
          h_name = name;
          counts = Array.init hist_buckets (fun _ -> Atomic.make 0);
          observations = Atomic.make 0;
          sum_ns = Atomic.make 0;
          min_ns = Atomic.make max_int;
          max_ns = Atomic.make min_int;
        }
      in
      Hashtbl.add t.histogram_tbl name h;
      h
  in
  Mutex.unlock t.mutex;
  h

let bucket_of_ns ns =
  if ns <= 1 then 0
  else begin
    let b = ref 0 and n = ref (ns lsr 1) in
    while !n > 0 do
      Stdlib.incr b;
      n := !n lsr 1
    done;
    if !b >= hist_buckets then hist_buckets - 1 else !b
  end

let rec atomic_min cell x =
  let cur = Atomic.get cell in
  if x < cur && not (Atomic.compare_and_set cell cur x) then atomic_min cell x

let rec atomic_max cell x =
  let cur = Atomic.get cell in
  if x > cur && not (Atomic.compare_and_set cell cur x) then atomic_max cell x

let observe h seconds =
  let s = if seconds > 0. then seconds else 0. in
  let ns = int_of_float (s *. 1e9) in
  ignore (Atomic.fetch_and_add (h.counts.(bucket_of_ns ns)) 1);
  ignore (Atomic.fetch_and_add h.observations 1);
  ignore (Atomic.fetch_and_add h.sum_ns ns);
  atomic_min h.min_ns ns;
  atomic_max h.max_ns ns

let record sink name seconds =
  match sink with None -> () | Some t -> observe (histogram t name) seconds

(* --- export: span trees --- *)

type span = {
  span_name : string;
  domain : int;
  start_s : float;
  stop_s : float;
  children : span list;
}

let buffers t =
  Mutex.lock t.mutex;
  let bs = Hashtbl.fold (fun _ b acc -> b :: acc) t.by_domain [] in
  Mutex.unlock t.mutex;
  List.sort (fun a b -> compare a.dom b.dom) bs

let tree_of_buffer b =
  (* children keyed by parent id, rebuilt oldest-first *)
  let by_parent = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let siblings =
        Option.value ~default:[] (Hashtbl.find_opt by_parent r.r_parent)
      in
      Hashtbl.replace by_parent r.r_parent (r :: siblings))
    b.closed;
  (* [closed] is latest-first, so the fold above leaves each sibling
     list oldest-first already; sort by start for determinism anyway. *)
  let rec build r =
    let kids =
      Option.value ~default:[] (Hashtbl.find_opt by_parent r.r_id)
    in
    {
      span_name = r.r_name;
      domain = b.dom;
      start_s = r.r_start;
      stop_s = r.r_stop;
      children =
        List.sort
          (fun a b -> Float.compare a.start_s b.start_s)
          (List.map build kids);
    }
  in
  let roots = Option.value ~default:[] (Hashtbl.find_opt by_parent (-1)) in
  List.sort
    (fun a b -> Float.compare a.start_s b.start_s)
    (List.map build roots)

let span_trees t = List.concat_map tree_of_buffer (buffers t)

let rec span_well_formed parent_lo parent_hi s =
  parent_lo <= s.start_s
  && s.start_s <= s.stop_s
  && s.stop_s <= parent_hi
  && List.for_all (span_well_formed s.start_s s.stop_s) s.children

let well_formed t =
  List.for_all (span_well_formed neg_infinity infinity) (span_trees t)

let dropped_spans t = Atomic.get t.dropped_spans

(* --- export: counters and histograms --- *)

let counters t =
  Mutex.lock t.mutex;
  let cs =
    Hashtbl.fold (fun name c acc -> (name, Atomic.get c.cell) :: acc)
      t.counter_tbl []
  in
  Mutex.unlock t.mutex;
  List.sort compare cs

type hist_stats = {
  hs_name : string;
  hs_count : int;
  hs_sum_s : float;
  hs_min_s : float;
  hs_max_s : float;
  hs_buckets : (float * int) list;  (* non-empty only: (upper bound s, n) *)
}

let stats_of_histogram h =
  let n = Atomic.get h.observations in
  let buckets = ref [] in
  for b = hist_buckets - 1 downto 0 do
    let c = Atomic.get h.counts.(b) in
    if c > 0 then
      buckets := (Float.of_int (1 lsl (b + 1)) *. 1e-9, c) :: !buckets
  done;
  {
    hs_name = h.h_name;
    hs_count = n;
    hs_sum_s = float_of_int (Atomic.get h.sum_ns) *. 1e-9;
    hs_min_s = (if n = 0 then 0. else float_of_int (Atomic.get h.min_ns) *. 1e-9);
    hs_max_s = (if n = 0 then 0. else float_of_int (Atomic.get h.max_ns) *. 1e-9);
    hs_buckets = !buckets;
  }

let histograms t =
  Mutex.lock t.mutex;
  let hs = Hashtbl.fold (fun _ h acc -> h :: acc) t.histogram_tbl [] in
  Mutex.unlock t.mutex;
  List.sort compare (List.map stats_of_histogram hs)

let span_totals t =
  let tbl = Hashtbl.create 16 in
  let rec visit s =
    let n, total =
      Option.value ~default:(0, 0.) (Hashtbl.find_opt tbl s.span_name)
    in
    Hashtbl.replace tbl s.span_name (n + 1, total +. (s.stop_s -. s.start_s));
    List.iter visit s.children
  in
  List.iter visit (span_trees t);
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* --- JSON export ---

   Hand-rolled writer: the repo deliberately has no JSON dependency.
   The schema is stable and documented in TUTORIAL.md §10. *)

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec json_span buf indent s =
  let pad = String.make indent ' ' in
  Buffer.add_string buf (Printf.sprintf "%s{\"name\": \"" pad);
  json_escape buf s.span_name;
  Buffer.add_string buf
    (Printf.sprintf "\", \"domain\": %d, \"start_s\": %.9f, \"dur_s\": %.9f"
       s.domain s.start_s (s.stop_s -. s.start_s));
  (match s.children with
  | [] -> ()
  | kids ->
    Buffer.add_string buf ", \"children\": [\n";
    List.iteri
      (fun i k ->
        if i > 0 then Buffer.add_string buf ",\n";
        json_span buf (indent + 2) k)
      kids;
    Buffer.add_string buf (Printf.sprintf "\n%s]" pad));
  Buffer.add_string buf "}"

let to_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"version\": 1,\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"dropped_spans\": %d,\n" (dropped_spans t));
  Buffer.add_string buf "  \"spans\": [\n";
  let trees = span_trees t in
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf ",\n";
      json_span buf 4 s)
    trees;
  Buffer.add_string buf "\n  ],\n  \"counters\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf "\"";
      json_escape buf name;
      Buffer.add_string buf (Printf.sprintf "\": %d" v))
    (counters t);
  Buffer.add_string buf "},\n  \"histograms\": {\n";
  let hs = histograms t in
  List.iteri
    (fun i h ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf "    \"";
      json_escape buf h.hs_name;
      Buffer.add_string buf
        (Printf.sprintf
           "\": {\"count\": %d, \"sum_s\": %.9f, \"min_s\": %.9f, \
            \"max_s\": %.9f, \"buckets\": ["
           h.hs_count h.hs_sum_s h.hs_min_s h.hs_max_s);
      List.iteri
        (fun j (le, n) ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf "{\"le_s\": %.9g, \"count\": %d}" le n))
        h.hs_buckets;
      Buffer.add_string buf "]}")
    hs;
  Buffer.add_string buf "\n  }\n}\n";
  Buffer.contents buf

let write_json t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json t))

(* --- human-readable summary --- *)

let pp_duration ppf s =
  if s >= 1. then Format.fprintf ppf "%8.3f s " s
  else if s >= 1e-3 then Format.fprintf ppf "%8.3f ms" (s *. 1e3)
  else Format.fprintf ppf "%8.3f us" (s *. 1e6)

let pp_summary ppf t =
  let trees = span_trees t in
  let wall =
    List.fold_left
      (fun acc s -> Float.max acc (s.stop_s -. s.start_s))
      0. trees
  in
  Format.fprintf ppf "@[<v>-- telemetry profile %s@,"
    (String.make 40 '-');
  (match span_totals t with
  | [] -> Format.fprintf ppf "spans: none recorded@,"
  | totals ->
    Format.fprintf ppf "%-36s %8s %11s %11s %7s@," "span" "count" "total"
      "mean" "%wall";
    List.iter
      (fun (name, (n, total)) ->
        Format.fprintf ppf "  %-34s %8d %a %a %6.1f%%@," name n pp_duration
          total pp_duration
          (total /. float_of_int n)
          (if wall > 0. then 100. *. total /. wall else 0.))
      totals);
  (match counters t with
  | [] -> ()
  | cs ->
    Format.fprintf ppf "%-36s %8s@," "counter" "value";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-34s %8d@," name v)
      cs);
  (match histograms t with
  | [] -> ()
  | hs ->
    Format.fprintf ppf "%-36s %8s %11s %11s %11s@," "histogram" "count"
      "mean" "min" "max";
    List.iter
      (fun h ->
        if h.hs_count > 0 then
          Format.fprintf ppf "  %-34s %8d %a %a %a@," h.hs_name h.hs_count
            pp_duration
            (h.hs_sum_s /. float_of_int h.hs_count)
            pp_duration h.hs_min_s pp_duration h.hs_max_s)
      hs);
  if dropped_spans t > 0 then
    Format.fprintf ppf "  (%d spans dropped past the per-domain cap)@,"
      (dropped_spans t);
  Format.fprintf ppf "@]"
