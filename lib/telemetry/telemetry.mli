(** Zero-dependency observability: monotonic-clock spans, counters and
    log-scale latency histograms behind one {!sink}.

    The library instruments its hot paths through optional sinks — a
    [None] sink short-circuits to the bare computation, so the cost of
    shipping instrumentation is one branch per probe.  All probes are
    domain-safe: counters and histograms are atomics, spans land in
    per-domain buffers (each written by exactly one domain) that the
    export functions merge.  Export must happen after the parallel work
    has joined; every pool join in this code base provides exactly that.

    The recorded numbers never feed back into any computation: a
    telemetry-on run is bit-for-bit identical to a telemetry-off run —
    a contract enforced by [nanodec check] oracles and
    [test/test_telemetry.ml]. *)

type sink

val create : ?clock:(unit -> float) -> unit -> sink
(** A fresh, empty sink.  [clock] (seconds; defaults to
    [Unix.gettimeofday]) is made monotonic per recording domain, so
    exported span trees are always well-formed.  Injectable for tests. *)

val now : sink -> float
(** Seconds since the sink was created, by the sink's clock. *)

(** {1 Spans}

    Nestable regions of wall-clock time.  Nesting is tracked per domain:
    a span opened inside a pool chunk body becomes a root (or child) of
    {e that worker domain's} tree, so recording never synchronises
    between domains. *)

val with_span : sink option -> string -> (unit -> 'a) -> 'a
(** [with_span sink name f] times [f ()] as a span named [name]; the
    span closes on normal return and on exception.  [with_span None]
    is [f ()]. *)

(** {1 Counters} *)

type counter

val counter : sink -> string -> counter
(** Find-or-create the named counter (handle is cheap to reuse on hot
    paths; creation takes the sink mutex once). *)

val add : counter -> int -> unit
val incr : counter -> unit
val counter_name : counter -> string
val counter_value : counter -> int

val count : sink option -> string -> int -> unit
(** One-shot convenience: [count sink name n] adds [n] to the named
    counter; no-op on [None].  Looks the counter up each call — prefer
    a {!counter} handle inside loops. *)

(** {1 Histograms}

    Log-scale latency histograms: 64 power-of-two buckets over
    nanoseconds (bucket [b] counts durations in [2^b, 2^(b+1)) ns),
    plus exact count, sum, min and max. *)

type histogram

val histogram : sink -> string -> histogram
val observe : histogram -> float -> unit
(** [observe h seconds] records one duration (negative values clamp
    to 0). *)

val record : sink option -> string -> float -> unit
(** One-shot convenience, as {!count} is for counters. *)

(** {1 Export}

    Call after the instrumented work has joined. *)

type span = {
  span_name : string;
  domain : int;  (** the recording domain's id *)
  start_s : float;  (** seconds since the sink epoch *)
  stop_s : float;
  children : span list;  (** sorted by start time *)
}

val span_trees : sink -> span list
(** Every domain's span forest, merged; roots sorted by domain then
    start time. *)

val span_totals : sink -> (string * (int * float)) list
(** Aggregate (count, total seconds) per span name, sorted by name. *)

val well_formed : sink -> bool
(** Every child interval lies inside its parent and no span has a
    negative duration.  True by construction; exposed for the proptest
    oracle. *)

val dropped_spans : sink -> int
(** Spans discarded past the per-domain buffer cap (200k). *)

val counters : sink -> (string * int) list

type hist_stats = {
  hs_name : string;
  hs_count : int;
  hs_sum_s : float;
  hs_min_s : float;
  hs_max_s : float;
  hs_buckets : (float * int) list;
      (** non-empty buckets only, as (upper bound in seconds, count) *)
}

val histograms : sink -> hist_stats list

val to_json : sink -> string
(** The whole sink as a JSON document:
    [{"version": 1, "dropped_spans": n, "spans": [span-trees],
      "counters": {...}, "histograms": {...}}].
    Self-contained writer — no JSON dependency. *)

val write_json : sink -> path:string -> unit

val pp_summary : Format.formatter -> sink -> unit
(** The human-readable profile behind the CLI's [--profile]: spans
    aggregated by name with %-of-wall, counters, histogram
    count/mean/min/max. *)
