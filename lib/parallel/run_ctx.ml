module Telemetry = Nanodec_telemetry.Telemetry

type t = {
  pool : Pool.t option;
  seed : int;
  mc_samples : int;
  telemetry : Telemetry.sink option;
  owns_pool : bool;  (* [make ~domains] spawned it, [shutdown] joins it *)
}

let default_seed = 2009
let default_mc_samples = 4000

let make ?domains ?pool ?(seed = default_seed)
    ?(mc_samples = default_mc_samples) ?telemetry () =
  if mc_samples < 0 then invalid_arg "Run_ctx.make: mc_samples must be >= 0";
  let pool, owns_pool =
    match pool, domains with
    | Some _, Some _ ->
      invalid_arg "Run_ctx.make: ~domains and ~pool are mutually exclusive"
    | Some p, None ->
      (* Borrowed pool: route its scheduler probes into this context's
         sink (the caller keeps ownership and shutdown duty). *)
      (match telemetry with
      | Some _ -> Pool.set_telemetry p telemetry
      | None -> ());
      (Some p, false)
    | None, Some d -> (Some (Pool.create ~domains:d ?telemetry ()), true)
    | None, None -> (None, false)
  in
  { pool; seed; mc_samples; telemetry; owns_pool }

let shutdown t = if t.owns_pool then Option.iter Pool.shutdown t.pool

let with_ctx ?domains ?pool ?seed ?mc_samples ?telemetry f =
  let t = make ?domains ?pool ?seed ?mc_samples ?telemetry () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let pool t = t.pool
let seed t = t.seed
let mc_samples t = t.mc_samples
let telemetry t = t.telemetry

let pool_of = function None -> None | Some t -> t.pool
let telemetry_of = function None -> None | Some t -> t.telemetry

let resolve ?ctx ?pool () =
  match ctx with
  | Some c -> (
    match c.pool, pool with
    | None, Some _ -> { c with pool; owns_pool = false }
    | _ -> c)
  | None ->
    {
      pool;
      seed = default_seed;
      mc_samples = default_mc_samples;
      telemetry = None;
      owns_pool = false;
    }
