module Telemetry = Nanodec_telemetry.Telemetry
module Fault = Nanodec_fault.Fault

type chunking = Auto | Fixed of int

type mc_method =
  | Plain
  | Antithetic
  | Stratified of int
  | Importance of float

type t = {
  pool : Pool.t option;
  seed : int;
  mc_samples : int;
  telemetry : Telemetry.sink option;
  fault : Fault.t option;
  timeout_s : float option;
  cancel : Pool.Cancel.t option;
  chunking : chunking;
  batch : int option;
  mc_method : mc_method;
  rel_error : float option;
  owns_pool : bool;  (* [make ~domains] spawned it, [shutdown] joins it *)
}

let default_seed = 2009
let default_mc_samples = 4000

(* Shared by [make] and [with_request], so both surfaces reject the new
   Monte-Carlo knobs with identical messages. *)
let check_mc_knobs ~who ~mc_method ~rel_error ~batch =
  (match mc_method with
  | Stratified k when k < 2 ->
    invalid_arg (who ^ ": Stratified strata must be >= 2")
  | Importance s when (not (s > 0.)) || s = infinity ->
    invalid_arg (who ^ ": Importance shift must be positive and finite")
  | Plain | Antithetic | Stratified _ | Importance _ -> ());
  (match rel_error with
  | Some r when (not (r > 0.)) || r > 0.5 ->
    invalid_arg (who ^ ": rel_error must be in (0, 0.5]")
  | Some _ | None -> ());
  match batch with
  | Some b when b < 1 -> invalid_arg (who ^ ": batch must be >= 1")
  | Some _ | None -> ()

let make ?domains ?pool ?(seed = default_seed)
    ?(mc_samples = default_mc_samples) ?telemetry ?fault ?timeout_s ?cancel
    ?(chunking = Auto) ?batch ?(mc_method = Plain) ?rel_error ?max_retries
    ?degrade ?warn () =
  if mc_samples < 0 then invalid_arg "Run_ctx.make: mc_samples must be >= 0";
  (match timeout_s with
  | Some s when s <= 0. ->
    invalid_arg "Run_ctx.make: timeout_s must be positive"
  | Some _ | None -> ());
  (match chunking with
  | Fixed n when n < 1 ->
    invalid_arg "Run_ctx.make: Fixed chunking must be >= 1"
  | Fixed _ | Auto -> ());
  check_mc_knobs ~who:"Run_ctx.make" ~mc_method ~rel_error ~batch;
  (* The environment plan activates here and only here: contexts are the
     chaos boundary.  Direct [Pool] users (tests, benches) stay
     injection-free even when [NANODEC_FAULT_PLAN] is exported. *)
  let fault = match fault with Some _ as f -> f | None -> Fault.of_env () in
  (* Injected faults are telemetry-recorded whenever the run has a
     sink, without the caller wiring the two by hand. *)
  (match fault, telemetry with
  | Some f, Some _ -> Fault.set_telemetry f telemetry
  | _ -> ());
  let pool, owns_pool =
    match pool, domains with
    | Some _, Some _ ->
      invalid_arg "Run_ctx.make: ~domains and ~pool are mutually exclusive"
    | Some p, None ->
      (* Borrowed pool: route its scheduler probes into this context's
         sink (the caller keeps ownership and shutdown duty). *)
      (match telemetry with
      | Some _ -> Pool.set_telemetry p telemetry
      | None -> ());
      (match fault with
      | Some _ -> Pool.set_fault p fault
      | None -> ());
      (Some p, false)
    | None, Some d ->
      ( Some
          (Pool.create ~domains:d ?telemetry ?fault ?max_retries ?degrade
             ?warn ()),
        true )
    | None, None -> (None, false)
  in
  {
    pool;
    seed;
    mc_samples;
    telemetry;
    fault;
    timeout_s;
    cancel;
    chunking;
    batch;
    mc_method;
    rel_error;
    owns_pool;
  }

let shutdown t = if t.owns_pool then Option.iter Pool.shutdown t.pool

let with_ctx ?domains ?pool ?seed ?mc_samples ?telemetry ?fault ?timeout_s
    ?cancel ?chunking ?batch ?mc_method ?rel_error ?max_retries ?degrade ?warn
    f =
  let t =
    make ?domains ?pool ?seed ?mc_samples ?telemetry ?fault ?timeout_s
      ?cancel ?chunking ?batch ?mc_method ?rel_error ?max_retries ?degrade
      ?warn ()
  in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let pool t = t.pool
let seed t = t.seed
let mc_samples t = t.mc_samples
let telemetry t = t.telemetry
let fault t = t.fault
let timeout_s t = t.timeout_s
let cancel t = t.cancel
let chunking t = t.chunking
let batch t = t.batch
let mc_method t = t.mc_method
let rel_error t = t.rel_error

let pool_of = function None -> None | Some t -> t.pool
let telemetry_of = function None -> None | Some t -> t.telemetry
let fault_of = function None -> None | Some t -> t.fault
let chunking_of = function None -> Auto | Some t -> t.chunking
let batch_of = function None -> None | Some t -> t.batch
let mc_method_of = function None -> Plain | Some t -> t.mc_method
let rel_error_of = function None -> None | Some t -> t.rel_error

let map_list t f xs =
  Pool.map_list_opt ?timeout_s:t.timeout_s ?cancel:t.cancel t.pool f xs

let with_request ~base ?seed ?mc_samples ?timeout_s ?fault ?chunking
    ?mc_method ?rel_error ?(degrade = true) ?(warn = true) f =
  let seed = Option.value seed ~default:base.seed in
  let mc_samples = Option.value mc_samples ~default:base.mc_samples in
  let chunking = Option.value chunking ~default:base.chunking in
  let mc_method = Option.value mc_method ~default:base.mc_method in
  let rel_error =
    match rel_error with Some _ as r -> r | None -> base.rel_error
  in
  (* Deadlines inherit like every other knob: a request without its own
     timeout still runs under the base context's safety net. *)
  let timeout_s =
    match timeout_s with Some _ as t -> t | None -> base.timeout_s
  in
  if mc_samples < 0 then
    invalid_arg "Run_ctx.with_request: mc_samples must be >= 0";
  (match timeout_s with
  | Some s when s <= 0. ->
    invalid_arg "Run_ctx.with_request: timeout_s must be positive"
  | Some _ | None -> ());
  (match chunking with
  | Fixed n when n < 1 ->
    invalid_arg "Run_ctx.with_request: Fixed chunking must be >= 1"
  | Fixed _ | Auto -> ());
  check_mc_knobs ~who:"Run_ctx.with_request" ~mc_method ~rel_error
    ~batch:base.batch;
  match fault, degrade with
  | None, true ->
    (* The common shape: borrow the base context's pool and sink
       untouched — nothing is mutated on the shared pool, so any number
       of requests can derive from one base without interfering. *)
    f
      {
        base with
        seed;
        mc_samples;
        timeout_s;
        chunking;
        mc_method;
        rel_error;
        owns_pool = false;
      }
  | _ ->
    (* A request-specific fault plan (or a fail-closed degrade policy)
       must never touch the shared pool: an exhausted retry budget
       poisons a pool permanently, and [Pool.set_fault] has no restore
       discipline.  Such requests get a private pool of the same width,
       joined before the reply; results are bit-for-bit identical by
       the pool's determinism contract. *)
    let domains = match base.pool with Some p -> Pool.domains p | None -> 1 in
    with_ctx ~domains ~seed ~mc_samples ?telemetry:base.telemetry ?fault
      ?timeout_s ~chunking ?batch:base.batch ~mc_method ?rel_error ~degrade
      ~warn f

let resolve ?ctx ?pool () =
  match ctx with
  | Some c -> (
    match c.pool, pool with
    | None, Some _ -> { c with pool; owns_pool = false }
    | _ -> c)
  | None ->
    {
      pool;
      seed = default_seed;
      mc_samples = default_mc_samples;
      telemetry = None;
      fault = None;
      timeout_s = None;
      cancel = None;
      chunking = Auto;
      batch = None;
      mc_method = Plain;
      rel_error = None;
      owns_pool = false;
    }
