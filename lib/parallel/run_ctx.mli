(** The execution context every expensive entry point takes.

    [Run_ctx.t] bundles what used to travel as scattered optional
    arguments — the domain pool, the Monte-Carlo seed and sample count,
    and the telemetry sink — into one value built once (usually from the
    CLI flags) and threaded through sweeps, figures, scaling, ablations
    and Monte-Carlo estimators alike:

    {[
      Run_ctx.with_ctx ~domains:4 ~telemetry:sink (fun ctx ->
          Nanodec.Optimizer.sweep ~ctx ())
    ]}

    The context never influences numeric results except through the
    seed and sample count it explicitly carries: pool size and
    telemetry are observability/wall-clock knobs only, and every
    consumer is bit-for-bit invariant in them. *)

type t

val default_seed : int
(** 2009 — the paper year, the seed used throughout the reproduction. *)

val default_mc_samples : int
(** 4000 — the full-resolution Monte-Carlo workload of the bench. *)

val make :
  ?domains:int ->
  ?pool:Pool.t ->
  ?seed:int ->
  ?mc_samples:int ->
  ?telemetry:Nanodec_telemetry.Telemetry.sink ->
  unit ->
  t
(** Builder-style constructor.  [~domains] spawns a pool owned by the
    context ({!shutdown} joins it); [~pool] borrows an existing pool
    (the caller keeps shutdown duty) — passing both raises
    [Invalid_argument], passing neither leaves the context sequential.
    When both a pool and a sink are given, the sink is attached to the
    pool so scheduler probes land in it.  [seed] defaults to
    {!default_seed}, [mc_samples] to {!default_mc_samples} (raises
    [Invalid_argument] when negative). *)

val with_ctx :
  ?domains:int ->
  ?pool:Pool.t ->
  ?seed:int ->
  ?mc_samples:int ->
  ?telemetry:Nanodec_telemetry.Telemetry.sink ->
  (t -> 'a) ->
  'a
(** [make] + [f] + {!shutdown}, exception-safe. *)

val shutdown : t -> unit
(** Join the pool iff this context spawned it ([make ~domains]). *)

val pool : t -> Pool.t option
val seed : t -> int
val mc_samples : t -> int
val telemetry : t -> Nanodec_telemetry.Telemetry.sink option

val pool_of : t option -> Pool.t option
(** [pool_of ctx] through an optional context — the spelling used by
    [?ctx] consumers. *)

val telemetry_of : t option -> Nanodec_telemetry.Telemetry.sink option

val resolve : ?ctx:t -> ?pool:Pool.t -> unit -> t
(** Back-compatibility shim for entry points that still accept the
    deprecated [?pool] argument next to [?ctx]: the context wins, a
    bare pool is wrapped into a default context, and when the context
    has no pool of its own the bare pool fills the slot. *)
