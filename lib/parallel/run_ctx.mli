(** The execution context every expensive entry point takes.

    [Run_ctx.t] bundles what used to travel as scattered optional
    arguments — the domain pool, the Monte-Carlo seed and sample count,
    the telemetry sink, and (new with the robustness layer) the fault
    engine, job deadline and cancellation token — into one value built
    once (usually from the CLI flags) and threaded through sweeps,
    figures, scaling, ablations and Monte-Carlo estimators alike:

    {[
      Run_ctx.with_ctx ~domains:4 ~telemetry:sink (fun ctx ->
          Nanodec.Optimizer.sweep ~ctx ())
    ]}

    The context never influences numeric results except through the
    seed and sample count it explicitly carries: pool size, telemetry,
    deadlines and fault plans are observability/robustness knobs only,
    and every consumer is bit-for-bit invariant in them for runs that
    complete successfully.

    {2 Chaos boundary}

    {!make} is the single place where the [NANODEC_FAULT_PLAN]
    environment variable activates: an explicit [~fault] argument wins,
    otherwise the environment plan (if any) is parsed and installed.
    Code that builds a bare {!Pool.t} directly never sees the
    environment plan — so the chaos CI job can export a plan and rerun
    the whole test suite while pool-level unit tests stay
    injection-free.  When the context also carries a telemetry sink,
    the engine is attached to it so every injected fault is recorded
    ([fault.fired.<site>], [fault.injected.<action>]). *)

type t

type chunking =
  | Auto  (** let {!Autotune} size chunks and batches per job *)
  | Fixed of int
      (** exactly this many scheduling chunks, claimed one at a time
          (the CLI's [--chunks N]); must be >= 1 *)
(** How the Monte-Carlo estimators cut a job into pool chunks.  A pure
    scheduling policy: estimates are bit-for-bit identical under every
    [chunking], domain count and batch size — the per-sample stream
    discipline guarantees it. *)

(** The Monte-Carlo sampling strategy the context's estimators should
    use.  The datatype lives here (not in [Nanodec_numerics]) because
    the context is the value that travels from the CLI flags and the
    serve protocol down to every estimator; {!Nanodec_numerics}'s
    [Montecarlo.strategy] re-exports it by equation, so the two are the
    same type.  Unlike {!chunking}, the method {e is} part of the
    numeric result: each strategy is a different (equally unbiased)
    estimator with its own draw stream. *)
type mc_method =
  | Plain  (** independent draws — the exact reference estimator *)
  | Antithetic
      (** evaluate each draw and its sign-mirrored twin as one pair *)
  | Stratified of int
      (** stratify the dominant noise axis into this many strata
          (>= 2) *)
  | Importance of float
      (** shift the dominant-region Gaussian toward the failure
          boundary by this fraction of the window (> 0, finite) and
          reweight exactly *)

val default_seed : int
(** 2009 — the paper year, the seed used throughout the reproduction. *)

val default_mc_samples : int
(** 4000 — the full-resolution Monte-Carlo workload of the bench. *)

val make :
  ?domains:int ->
  ?pool:Pool.t ->
  ?seed:int ->
  ?mc_samples:int ->
  ?telemetry:Nanodec_telemetry.Telemetry.sink ->
  ?fault:Nanodec_fault.Fault.t ->
  ?timeout_s:float ->
  ?cancel:Pool.Cancel.t ->
  ?chunking:chunking ->
  ?batch:int ->
  ?mc_method:mc_method ->
  ?rel_error:float ->
  ?max_retries:int ->
  ?degrade:bool ->
  ?warn:bool ->
  unit ->
  t
(** Builder-style constructor.  [~domains] spawns a pool owned by the
    context ({!shutdown} joins it); [~pool] borrows an existing pool
    (the caller keeps shutdown duty) — passing both raises
    [Invalid_argument], passing neither leaves the context sequential.
    When both a pool and a sink are given, the sink is attached to the
    pool so scheduler probes land in it; likewise the fault engine.
    [fault] defaults to the [NANODEC_FAULT_PLAN] environment plan when
    that is set (raising [Nanodec_error.Error (Invalid_input _)] on a
    malformed value).  [timeout_s] (strictly positive) and [cancel] are
    handed to every pool fan-out made through this context.
    [max_retries] and [degrade] configure the spawned pool's
    supervision policy (borrowed pools keep their own settings).
    [chunking] (default [Auto]) selects the estimators' scheduling
    policy and [batch] (>= 1) overrides the per-claim batch size of
    every estimator fan-out; [Fixed n] with [n < 1] or [batch < 1]
    raise [Invalid_argument].  [mc_method] (default {!Plain}) and
    [rel_error] select the estimators' sampling strategy and, when
    [rel_error] is set (must lie in (0, 0.5]), CI-driven adaptive
    stopping — the context carries them exactly as it carries [seed]
    and [mc_samples], and consumers build their [Montecarlo.spec] from
    them.  [seed] defaults to {!default_seed}, [mc_samples] to
    {!default_mc_samples} (raises [Invalid_argument] when negative). *)

val with_ctx :
  ?domains:int ->
  ?pool:Pool.t ->
  ?seed:int ->
  ?mc_samples:int ->
  ?telemetry:Nanodec_telemetry.Telemetry.sink ->
  ?fault:Nanodec_fault.Fault.t ->
  ?timeout_s:float ->
  ?cancel:Pool.Cancel.t ->
  ?chunking:chunking ->
  ?batch:int ->
  ?mc_method:mc_method ->
  ?rel_error:float ->
  ?max_retries:int ->
  ?degrade:bool ->
  ?warn:bool ->
  (t -> 'a) ->
  'a
(** [make] + [f] + {!shutdown}, exception-safe. *)

val shutdown : t -> unit
(** Join the pool iff this context spawned it ([make ~domains]). *)

val pool : t -> Pool.t option
val seed : t -> int
val mc_samples : t -> int
val telemetry : t -> Nanodec_telemetry.Telemetry.sink option
val fault : t -> Nanodec_fault.Fault.t option
val timeout_s : t -> float option
val cancel : t -> Pool.Cancel.t option
val chunking : t -> chunking

val batch : t -> int option
(** Explicit per-claim batch size for estimator fan-outs; [None] leaves
    it to the chunking plan. *)

val mc_method : t -> mc_method
val rel_error : t -> float option

val pool_of : t option -> Pool.t option
(** [pool_of ctx] through an optional context — the spelling used by
    [?ctx] consumers. *)

val telemetry_of : t option -> Nanodec_telemetry.Telemetry.sink option
val fault_of : t option -> Nanodec_fault.Fault.t option

val chunking_of : t option -> chunking
(** [Auto] without a context. *)

val batch_of : t option -> int option

val mc_method_of : t option -> mc_method
(** {!Plain} without a context. *)

val rel_error_of : t option -> float option

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list ctx f xs] maps through the context's pool (or
    sequentially without one), threading the context's deadline and
    cancellation token into the fan-out.  The one-liner the sweep,
    figure, scaling and ablation pipelines use. *)

val with_request :
  base:t ->
  ?seed:int ->
  ?mc_samples:int ->
  ?timeout_s:float ->
  ?fault:Nanodec_fault.Fault.t ->
  ?chunking:chunking ->
  ?mc_method:mc_method ->
  ?rel_error:float ->
  ?degrade:bool ->
  ?warn:bool ->
  (t -> 'a) ->
  'a
(** Per-request context derivation — the serve daemon's workhorse.
    [with_request ~base ?seed ... f] runs [f] under a context that
    overrides the given knobs and inherits everything else (pool,
    telemetry sink, cancellation) from [base].  Two regimes:

    {ul
    {- without a request fault plan and with [degrade] left [true]
       (the default), the derived context {e borrows} the base pool
       without mutating it — any number of requests can derive from one
       base concurrently;}
    {- a request carrying [?fault] or [~degrade:false] gets a {e
       private} pool of the same domain width, joined before
       [with_request] returns: an exhausted retry budget poisons a pool
       permanently, so request-scoped chaos must never touch the shared
       one.  Results are bit-for-bit identical either way by the pool
       determinism contract.}}

    Unlike {!make}, the [NANODEC_FAULT_PLAN] environment boundary is
    {e not} re-read for the borrow path — the base context already
    resolved it; the private-pool path re-enters {!make} and therefore
    honours it, matching what a standalone run of the request would
    see.  Raises [Invalid_argument] on a non-positive [timeout_s],
    negative [mc_samples] or [Fixed n < 1], like {!make}. *)

val resolve : ?ctx:t -> ?pool:Pool.t -> unit -> t
(** Back-compatibility shim for entry points that still accept the
    deprecated [?pool] argument next to [?ctx]: the context wins, a
    bare pool is wrapped into a default context, and when the context
    has no pool of its own the bare pool fills the slot.  Note the
    environment fault plan does {e not} activate here — only {!make}
    reads it. *)
