(** Supervised fixed-size domain pool with batched chunk claiming.

    A pool owns [domains - 1] worker domains (the submitting domain is
    the remaining one — it always participates in its own jobs), fed
    through a single-job work queue.  Jobs are sets of independent,
    index-addressed chunks; results land in caller-owned slots keyed by
    chunk index, so the outcome of a job is a pure function of the chunk
    bodies and {e never} of the domain count, the batch size or the
    scheduling order.  Every parallel entry point in the library builds
    on this contract to stay bit-for-bit deterministic.

    Scheduling: each participating domain claims [batch] consecutive
    chunk indices per atomic fetch-and-add on the job's cursor and runs
    the whole batch before touching any shared state again, so claim
    overhead is O(chunks / batch) atomic adds per job — not a lock
    round trip per chunk.  [batch] is a pure scheduling knob: it moves
    wall-clock time, never results.  {!Autotune} derives chunk and
    batch sizes from a measured per-sample cost model when telemetry is
    available.

    Guarantees:
    {ul
    {- [domains = 1] (no workers) degrades to a plain in-order loop on
       the calling domain — no spawning, no synchronisation;}
    {- an exception raised inside a chunk cancels the job's unclaimed
       chunks, is recorded, and is re-raised at the join point {e after}
       every in-flight chunk has drained — no orphaned domains, and the
       pool stays usable for subsequent jobs;}
    {- when several chunks fail, the one with the lowest chunk index
       wins, matching what the sequential loop would have raised;}
    {- a job submitted while the pool is busy (nested submission from
       inside a chunk, or a concurrent job from another domain) runs
       inline on the submitting domain — same results, no deadlock.}}

    {2 Supervision}

    The pool is the recovery layer of the fault-injection story
    ({!Nanodec_fault.Fault}):

    {ul
    {- {e Deadlines}: [parallel_for ~timeout_s] gives the job a
       deadline, checked cooperatively at chunk boundaries — inside
       the batch loop, so a deadline expiring mid-batch stops the
       batch's remaining chunks too (a running chunk is never
       preempted — OCaml domains cannot be killed).  On expiry the job
       cancels its unclaimed chunks, drains, and the join raises
       [Nanodec_error.Error (Timeout _)].}
    {- {e Cancellation}: a {!Cancel.t} token, checked at the same
       boundaries; a cancelled job raises
       [Nanodec_error.Error (Timeout {seconds = None; _})].}
    {- {e Retry}: a chunk that dies of {!Nanodec_fault.Fault.Injected}
       (a transient injected crash) is retried in place, up to
       [max_retries] times with exponential backoff; each attempt gets
       a fresh deterministic fault decision.  Organic exceptions are
       never retried.}
    {- {e Degradation}: when retries are exhausted the pool is
       considered poisoned: it warns once on stderr, marks itself
       {!degraded}, and re-runs the job sequentially with injection
       suppressed, so the run still completes with bit-identical
       results (chunk bodies must be restartable — all of this
       library's are).  Subsequent jobs on a degraded pool run
       sequentially too.  With [degrade = false] the pool instead
       raises [Nanodec_error.Error (Degraded _)].}}

    Injected crashes therefore never fail a pool-managed computation;
    only timeouts, cancellations, organic exceptions and (with
    [~degrade:false]) the explicit no-recovery policy do.

    A pool can carry a {!Nanodec_telemetry.Telemetry.sink}: the
    scheduler then records per-batch queue-wait and compute-time
    histograms, per-job latency, and counters separating chunks run by
    the submitter from chunks stolen by workers ([pool.chunks.*], still
    chunk-granular), claims ([pool.batches]), fanned-out jobs from
    inline ones, plus the supervision counters [pool.retries],
    [pool.timeouts] and [pool.degraded_jobs].  The probes observe and
    never steer — an instrumented run is bit-for-bit identical to a
    bare one. *)

type t

(** Cooperative cancellation tokens, checked at chunk boundaries. *)
module Cancel : sig
  type t

  val create : unit -> t

  val cancel : t -> unit
  (** Ask every job carrying this token to stop.  Idempotent;
      domain-safe (an atomic flag). *)

  val is_cancelled : t -> bool
end

val parse_domains : string -> int option
(** Parse a [NANODEC_DOMAINS]-style value: [Some n] for a positive
    decimal integer, [None] otherwise.  Exposed for tests. *)

val default_domains : unit -> int
(** The [NANODEC_DOMAINS] environment override when set to a positive
    integer (raises [Invalid_argument] on a malformed value), otherwise
    [Domain.recommended_domain_count ()]. *)

val create :
  ?domains:int ->
  ?telemetry:Nanodec_telemetry.Telemetry.sink ->
  ?fault:Nanodec_fault.Fault.t ->
  ?max_retries:int ->
  ?degrade:bool ->
  ?warn:bool ->
  unit ->
  t
(** [create ~domains ()] spawns [domains - 1] worker domains
    ([domains] defaults to {!default_domains}; clamped to at most 64).
    [telemetry] attaches a sink from the start; [fault] an injection
    engine (evaluated at the [pool.chunk] site, keyed by chunk index).
    [max_retries] (default 2) bounds retries of injected crashes per
    chunk; [degrade] (default [true]) selects sequential fallback over
    failing with [Degraded] when retries are exhausted; [warn]
    (default [true]) announces the first degradation on stderr — chaos
    harnesses that inject faults on purpose pass [~warn:false].
    Raises [Invalid_argument] if [domains < 1]. *)

val domains : t -> int
(** Total domains working a job, including the submitter. *)

val set_telemetry : t -> Nanodec_telemetry.Telemetry.sink option -> unit
(** Attach ([Some]) or detach ([None]) the telemetry sink.  Call
    between jobs, not from inside a chunk body. *)

val telemetry : t -> Nanodec_telemetry.Telemetry.sink option
(** The currently attached sink, if any. *)

val set_fault : t -> Nanodec_fault.Fault.t option -> unit
(** Attach or detach the fault engine.  Call between jobs. *)

val fault : t -> Nanodec_fault.Fault.t option

val degraded : t -> bool
(** Whether the pool has poisoned itself and fallen back to sequential
    execution. *)

val degraded_jobs : t -> int
(** Jobs completed through the sequential degradation path. *)

val retries : t -> int
(** Chunk retry attempts made against injected crashes, across the
    pool's lifetime.  Counted unconditionally, like
    {!inline_submissions}. *)

val inline_submissions : t -> int
(** How many jobs were submitted while the pool was busy and therefore
    ran inline on the submitting domain (nested parallelism).  Counted
    unconditionally — no sink required — so the previously invisible
    inline path is always observable. *)

val shutdown : t -> unit
(** Join every worker domain.  Idempotent.  Using the pool afterwards
    raises [Invalid_argument]. *)

val with_pool :
  ?domains:int ->
  ?telemetry:Nanodec_telemetry.Telemetry.sink ->
  ?fault:Nanodec_fault.Fault.t ->
  ?max_retries:int ->
  ?degrade:bool ->
  ?warn:bool ->
  (t -> 'a) ->
  'a
(** [with_pool f] runs [f] on a fresh pool and shuts it down on exit,
    normal or exceptional. *)

val parallel_for :
  ?timeout_s:float ->
  ?cancel:Cancel.t ->
  ?batch:int ->
  t ->
  chunks:int ->
  (int -> unit) ->
  unit
(** [parallel_for pool ~chunks body] runs [body i] for every
    [i] in [0 .. chunks - 1], with each domain claiming [batch]
    (default 1, must be >= 1) consecutive indices per atomic claim.
    Returns when all chunks have completed (or, under a fault plan,
    have been recovered — see the supervision section).  A job that
    amounts to a single claim (ceil(chunks / batch) = 1) runs inline on
    the submitter, counted under [pool.jobs.sequential].  [batch] never
    affects results, only scheduling.  [timeout_s] must be positive
    when given. *)

val map :
  ?timeout_s:float -> ?cancel:Cancel.t -> ?batch:int -> t -> ('a -> 'b) ->
  'a array -> 'b array
(** [map pool f xs] is [Array.map f xs] with the elements evaluated
    across the pool; result order is the input order. *)

val map_list :
  ?timeout_s:float -> ?cancel:Cancel.t -> ?batch:int -> t -> ('a -> 'b) ->
  'a list -> 'b list
(** [map] over a list, preserving order. *)

val map_list_opt :
  ?timeout_s:float -> ?cancel:Cancel.t -> ?batch:int -> t option ->
  ('a -> 'b) -> 'a list -> 'b list
(** [map_list] through an optional pool; [None] is [List.map] (with the
    same deadline/cancellation checks between elements).  The
    convenience spelling used by the sweep/figure pipelines. *)

val map_reduce :
  ?timeout_s:float ->
  ?cancel:Cancel.t ->
  ?batch:int ->
  t ->
  map:('a -> 'b) ->
  reduce:('b -> 'b -> 'b) ->
  init:'b ->
  'a array ->
  'b
(** [map_reduce pool ~map ~reduce ~init xs] evaluates [map] across the
    pool, then folds the results {e left-to-right in index order} —
    [reduce (... (reduce init y0) ...) yn] — so non-associative or
    non-commutative reductions (floating-point sums included) are
    reproducible for every domain count. *)
