(** Telemetry-calibrated chunk/batch sizing for {!Pool}'s batched
    claiming scheme.

    A {!plan} answers "how should this many samples be cut into pool
    chunks, and how many chunks should a domain claim at a time?"  The
    parameters are {e scheduling-only}: the Monte-Carlo estimators give
    every sample its own split stream and merge per-sample values in
    sample order, so any plan — measured, fallback, or hand-picked —
    produces bit-for-bit the same estimate.  Telemetry may therefore
    steer scheduling without violating the observer contract: values
    never move, only wall-clock time does.

    {2 Cost model}

    When the run carries a sink that has already recorded at least one
    estimate, the measured per-sample cost is

    [seconds(mc.estimate_par span) / max(kernel.samples, mc.samples)]

    and the plan targets ~250 us of work per chunk (the retry and
    deadline granularity) and ~1 ms per atomic claim, clamped so that a
    job still spreads over at least two claims per domain when the
    sample count allows.  Without usable history the deterministic
    fallback applies: [chunks = min samples (max 64 (8 * domains))],
    [batch = max 1 (chunks / (4 * domains))] — a pure function of
    (samples, domains), identical on every machine.

    Every plan satisfies [chunks >= 1] and [batch >= 1] (the proptest
    oracle [autotune never emits a batch of 0] pins this).

    {!record} publishes the decision as [pool.autotune.*] counters so
    bench output can explain the chosen chunking. *)

type plan = {
  chunks : int;  (** pool chunks the sample range is cut into, >= 1 *)
  batch : int;  (** chunks per atomic claim, >= 1 *)
  per_sample_ns : int option;
      (** measured per-sample cost behind the plan; [None] when the
          deterministic fallback was used *)
}

val plan :
  ?telemetry:Nanodec_telemetry.Telemetry.sink ->
  domains:int ->
  samples:int ->
  unit ->
  plan
(** [plan ?telemetry ~domains ~samples ()] sizes a job of [samples]
    independent sample draws for a [domains]-wide pool.  Negative or
    zero [domains]/[samples] are clamped to 1. *)

val record : Nanodec_telemetry.Telemetry.sink option -> plan -> unit
(** Count the plan on the sink: [pool.autotune.jobs], the chosen
    [pool.autotune.chunks] and [pool.autotune.batch] (sums — divide by
    jobs for means), [pool.autotune.measured] or
    [pool.autotune.fallback], and the calibrated
    [pool.autotune.per_sample_ns] when measured.  No-op on [None]. *)
