(** Domain-local workspaces for preallocated hot-loop scratch.

    A workspace maps each domain to its own lazily-initialised instance
    of some mutable scratch value (a buffer, a generator mirror, …).
    {!Pool} workers are long-lived domains, so the instance is built once
    per domain and then reused by every task that domain executes — the
    steady-state cost of {!get} is a domain-local lookup, with no
    allocation and no synchronisation.

    Lifetime rules:
    {ul
    {- an instance belongs to one domain forever; it is never handed to
       another domain, so unsynchronised mutation is safe;}
    {- a task must not keep the instance across a yield point that could
       run another task on the same domain mid-use — in practice: obtain
       the scratch at the top of a draw/chunk body, use it, drop it;}
    {- instances live as long as their domain, so anything cached inside
       must be safe to reuse across unrelated tasks (reset or overwrite
       on entry, as {!Nanodec_crossbar.Kernel} does with its noise
       buffer).}} *)

type 'a t
(** A domain-indexed family of ['a] scratch instances. *)

val create : (unit -> 'a) -> 'a t
(** [create init] declares a workspace; [init] runs once per domain, on
    that domain, the first time it calls {!get}. *)

val get : 'a t -> 'a
(** This domain's instance (created on first use). *)
