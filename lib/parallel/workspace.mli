(** Thread-and-domain-local workspaces for preallocated hot-loop
    scratch.

    A workspace maps each execution context — each (domain, systhread)
    pair — to its own lazily-initialised instance of some mutable
    scratch value (a buffer, a generator mirror, …).  {!Pool} workers
    are long-lived single-threaded domains, so a worker's instance is
    built once and reused by every chunk it runs; the serve daemon's
    worker {e threads}, which all share the main domain, each get their
    own instance too — two threads preempting each other mid-draw can
    never corrupt each other's scratch, which is what keeps concurrent
    inline Monte-Carlo execution bit-deterministic.

    Lifetime rules:
    {ul
    {- an instance belongs to one (domain, thread) forever; it is never
       handed to another context, so unsynchronised mutation is safe;}
    {- a task must not keep the instance across a point that could run
       another task in the same context mid-use — in practice: obtain
       the scratch at the top of a draw/chunk body, use it, drop it;}
    {- instances live as long as their domain, so anything cached inside
       must be safe to reuse across unrelated tasks (reset or overwrite
       on entry, as {!Nanodec_crossbar.Kernel} does with its noise
       buffer).}} *)

type 'a t
(** A context-indexed family of ['a] scratch instances. *)

val create : (unit -> 'a) -> 'a t
(** [create init] declares a workspace; [init] runs once per (domain,
    thread), in that context, the first time it calls {!get}. *)

val get : 'a t -> 'a
(** This context's instance (created on first use).  Cost: one
    uncontended mutexed table lookup. *)
