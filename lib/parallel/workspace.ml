(* Domain-local storage is exactly the right lifetime for kernel scratch:
   pool workers are long-lived domains, so a buffer obtained here is
   allocated once per domain and reused by every chunk that domain runs,
   and two domains can never race on the same buffer. *)

type 'a t = 'a Domain.DLS.key

let create init = Domain.DLS.new_key init
let get key = Domain.DLS.get key
