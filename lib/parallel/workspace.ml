(* Execution-context-local storage for kernel scratch.  Domain-local
   alone is NOT enough: the serve daemon runs Monte-Carlo jobs from
   several worker systhreads of the same domain (a busy pool runs
   concurrent submissions inline on the submitting thread), and
   systhreads of one domain share its DLS.  Two threads preempting each
   other mid-draw on one shared generator mirror or noise plane corrupt
   each other's samples — nondeterministically, because preemption
   lands wherever the tick falls.  So instances are keyed by (domain,
   thread): threads never share an instance, domains never share an
   instance, and the pool's single-threaded worker domains pay one
   uncontended mutexed lookup per [get]. *)

type 'a t = {
  init : unit -> 'a;
  slots : (Mutex.t * (int, 'a) Hashtbl.t) Domain.DLS.key;
      (* per-domain table keyed by thread id; the mutex makes the
         table safe against a resize preempted mid-rebuild *)
}

let create init =
  {
    init;
    slots = Domain.DLS.new_key (fun () -> (Mutex.create (), Hashtbl.create 8));
  }

let get t =
  let mu, tbl = Domain.DLS.get t.slots in
  let id = Thread.id (Thread.self ()) in
  Mutex.lock mu;
  let found = Hashtbl.find_opt tbl id in
  Mutex.unlock mu;
  match found with
  | Some v -> v
  | None ->
    (* Only this thread ever inserts its own id, so building outside
       the lock cannot double-insert. *)
    let v = t.init () in
    Mutex.lock mu;
    Hashtbl.add tbl id v;
    Mutex.unlock mu;
    v
