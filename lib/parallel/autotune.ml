(* Cost-model-driven chunk/batch sizing for the batched scheduler.

   The knobs being derived are pure scheduling parameters: the
   Monte-Carlo estimators give every sample its own generator stream
   and merge per-sample values in sample order, so chunk count and
   batch size can follow the machine (measured timings!) without
   moving a single result bit.  That decoupling is what licenses the
   feedback loop here — telemetry steers scheduling, never values.

   Calibration reads the sink the run is already carrying: total
   seconds under the [mc.estimate_par] span over the samples counted by
   [kernel.samples] (or [mc.samples] when no kernelized estimate has
   run yet) gives a per-sample cost, from which chunks are sized to a
   ~250 us retry/timeout granularity and batches to ~1 ms of work per
   atomic claim.  With no sink, or before the first estimate has been
   recorded, a deterministic fallback in (samples, domains) applies —
   same shape on every machine, so telemetry-off runs schedule
   reproducibly. *)

module Telemetry = Nanodec_telemetry.Telemetry

type plan = {
  chunks : int;
  batch : int;
  per_sample_ns : int option;
}

(* Chunk bodies this small mostly measure claim overhead; batches this
   small mostly measure the atomic.  Both targets are deliberately far
   above the scheduler's own costs and far below any sane deadline. *)
let target_chunk_s = 250e-6
let target_batch_s = 1e-3

let cdiv a b = (a + b - 1) / b
let clamp lo hi x = max lo (min hi x)

(* Measured seconds-per-sample from the sink's history, if it has any:
   mc.estimate_par wall seconds over the samples that ran under it. *)
let measured_cost sink =
  let span_s =
    match List.assoc_opt "mc.estimate_par" (Telemetry.span_totals sink) with
    | Some (_, seconds) -> seconds
    | None -> 0.
  in
  let counted =
    let counters = Telemetry.counters sink in
    let value name = Option.value ~default:0 (List.assoc_opt name counters) in
    match value "kernel.samples" with 0 -> value "mc.samples" | n -> n
  in
  if span_s > 0. && counted > 0 then Some (span_s /. float_of_int counted)
  else None

let fallback ~domains ~samples =
  let chunks = min samples (max 64 (8 * domains)) in
  { chunks; batch = max 1 (chunks / (4 * domains)); per_sample_ns = None }

let plan ?telemetry ~domains ~samples () =
  let domains = max 1 domains in
  let samples = max 1 samples in
  match Option.bind telemetry measured_cost with
  | None -> fallback ~domains ~samples
  | Some cost ->
    let per_chunk = clamp 1 samples (int_of_float (target_chunk_s /. cost)) in
    (* At least two claims' worth of chunks per domain when the sample
       count allows it, so no domain starves on a lopsided finish. *)
    let chunks =
      min samples (max (cdiv samples per_chunk) (2 * domains))
    in
    let chunk_cost = cost *. float_of_int (cdiv samples chunks) in
    let batch =
      clamp 1
        (max 1 (chunks / (2 * domains)))
        (int_of_float (target_batch_s /. chunk_cost))
    in
    { chunks; batch; per_sample_ns = Some (int_of_float (cost *. 1e9)) }

let record telemetry plan =
  match telemetry with
  | None -> ()
  | Some _ ->
    Telemetry.count telemetry "pool.autotune.jobs" 1;
    Telemetry.count telemetry "pool.autotune.chunks" plan.chunks;
    Telemetry.count telemetry "pool.autotune.batch" plan.batch;
    (match plan.per_sample_ns with
    | Some ns ->
      Telemetry.count telemetry "pool.autotune.measured" 1;
      Telemetry.count telemetry "pool.autotune.per_sample_ns" ns
    | None -> Telemetry.count telemetry "pool.autotune.fallback" 1)
