(* A supervised single-job work queue over a fixed set of worker domains.

   Scheduling is an atomic batched claim: a job exposes a [next] cursor
   (an atomic integer) and every participating domain grabs
   [fetch_and_add next batch] chunk indices at a time, runs the whole
   batch outside any lock, and only then takes the mutex once to retire
   the batch and check the join condition.  Claim traffic is therefore
   O(chunks / batch) atomic adds per job instead of one mutex round
   trip per chunk — the difference between the pool paying for itself
   and the pool being the bottleneck on sub-millisecond chunk bodies.

   Memory-model note: a chunk body's writes (into caller-owned result
   slots) happen before that domain's mutex acquisition in the batch
   retirement path, and the submitter only reads the slots after
   observing [finished] under the same mutex — so the fan-in is
   data-race free without per-slot atomics.

   Supervision (deadlines, cancellation tokens, injected-crash retries,
   degradation to sequential) is cooperative: it acts only at chunk
   boundaries (checked inside the batch loop, so a deadline can expire
   mid-batch), because a running domain cannot be preempted.  All of it
   leaves successful results bit-for-bit identical to an unsupervised
   run — recovery re-executes restartable chunk bodies, never reorders
   the fan-in.

   Telemetry is strictly an observer: probes time and count the
   scheduler's decisions but never influence them, so an instrumented
   run computes bit-for-bit the same results as a bare one. *)

module Telemetry = Nanodec_telemetry.Telemetry
module Fault = Nanodec_fault.Fault
module E = Nanodec_error

module Cancel = struct
  type t = bool Atomic.t

  let create () = Atomic.make false
  let cancel t = Atomic.set t true
  let is_cancelled t = Atomic.get t
end

(* Probe handles, created once when a sink is attached so the per-chunk
   hot path never takes the sink mutex. *)
type tele = {
  sink : Telemetry.sink;
  c_jobs : Telemetry.counter;  (* pool.jobs: jobs fanned out to the queue *)
  c_jobs_seq : Telemetry.counter;
      (* pool.jobs.sequential: no-worker or single-task inline loop *)
  c_jobs_inline : Telemetry.counter;
      (* pool.jobs.inline_nested: submissions while the pool was busy *)
  c_chunks_submitter : Telemetry.counter;
  c_chunks_worker : Telemetry.counter;  (* chunks stolen by worker domains *)
  c_batches : Telemetry.counter;  (* pool.batches: claims across all jobs *)
  c_retries : Telemetry.counter;  (* pool.retries: injected-crash retries *)
  c_timeouts : Telemetry.counter;  (* pool.timeouts: deadline/cancel trips *)
  c_degraded : Telemetry.counter;  (* pool.degraded_jobs *)
  h_queue_wait : Telemetry.histogram;  (* submit -> claim, per batch *)
  h_compute : Telemetry.histogram;  (* batch body wall time *)
  h_job : Telemetry.histogram;  (* submit -> join, per fanned-out job *)
}

type job = {
  chunks : int;
  batch : int;  (* chunk indices claimed per atomic fetch-and-add *)
  body : int -> unit;
  submitted : float;  (* sink-relative submit time; 0 with no telemetry *)
  timeout_s : float option;
  deadline : float option;  (* absolute, Unix.gettimeofday base *)
  cancel : Cancel.t option;
  next : int Atomic.t;  (* claim cursor; grows by [batch] per claim *)
  cancelled : bool Atomic.t;
      (* stop claiming new batches; set on first failure and on
         supervision trips — claimed batches still drain *)
  abandon : bool Atomic.t;
      (* additionally skip the remaining bodies of already-claimed
         batches; set only by supervision trips (deadline/token), never
         by organic failures, so lowest-index-failure-wins still sees
         every claimed chunk run *)
  mutable tripped : bool;  (* mutex: the one-time supervision trip *)
  mutable retired : int;  (* mutex: claimed chunk indices accounted for *)
  mutable finished : bool;  (* mutex *)
  mutable error : (int * exn * Printexc.raw_backtrace) option;
      (* failure with the lowest chunk index seen so far; index
         [max_int] marks deadline/cancellation sentinels so any real
         chunk failure wins over them *)
}

type t = {
  n_domains : int;
  mutex : Mutex.t;
  work_available : Condition.t;  (* workers wait here for a job *)
  job_done : Condition.t;  (* the submitter waits here for the join *)
  mutable current : job option;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  mutable tele : tele option;
  mutable fault : Fault.t option;
  max_retries : int;  (* per chunk, against injected crashes *)
  degrade : bool;  (* sequential fallback instead of failing Degraded *)
  warn : bool;  (* announce degradation on stderr (off in chaos harnesses) *)
  mutable degraded : bool;  (* poisoned: all further jobs run inline *)
  mutable warned : bool;  (* the one-time stderr degradation warning *)
  inline_nested : int Atomic.t;
      (* nested/busy submissions run inline; counted even with no sink *)
  retries_n : int Atomic.t;
  degraded_jobs_n : int Atomic.t;
}

let max_domains = 64
let site = "pool.job"

let parse_domains s =
  (* Strictly decimal: [int_of_string_opt] would also accept hex,
     underscores and surrounding junk after a trim. *)
  let decimal = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s in
  if not decimal then None
  else match int_of_string_opt s with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None

let default_domains () =
  match Sys.getenv_opt "NANODEC_DOMAINS" with
  | None -> Domain.recommended_domain_count ()
  | Some s -> (
    match parse_domains s with
    | Some n -> n
    | None ->
      invalid_arg
        (Printf.sprintf
           "NANODEC_DOMAINS=%S: expected a positive decimal integer" s))

let domains t = t.n_domains

let inline_submissions t = Atomic.get t.inline_nested
let retries t = Atomic.get t.retries_n
let degraded t = t.degraded
let degraded_jobs t = Atomic.get t.degraded_jobs_n

let tele_of_sink sink =
  {
    sink;
    c_jobs = Telemetry.counter sink "pool.jobs";
    c_jobs_seq = Telemetry.counter sink "pool.jobs.sequential";
    c_jobs_inline = Telemetry.counter sink "pool.jobs.inline_nested";
    c_chunks_submitter = Telemetry.counter sink "pool.chunks.submitter";
    c_chunks_worker = Telemetry.counter sink "pool.chunks.worker";
    c_batches = Telemetry.counter sink "pool.batches";
    c_retries = Telemetry.counter sink "pool.retries";
    c_timeouts = Telemetry.counter sink "pool.timeouts";
    c_degraded = Telemetry.counter sink "pool.degraded_jobs";
    h_queue_wait = Telemetry.histogram sink "pool.chunk.queue_wait_s";
    h_compute = Telemetry.histogram sink "pool.chunk.compute_s";
    h_job = Telemetry.histogram sink "pool.job_s";
  }

let set_telemetry t sink = t.tele <- Option.map tele_of_sink sink

let telemetry t = Option.map (fun tl -> tl.sink) t.tele

let set_fault t fault = t.fault <- fault
let fault t = t.fault

let timeout_error timeout_s =
  E.Error (E.Timeout { site; seconds = Some timeout_s })

let cancel_error = E.Error (E.Timeout { site; seconds = None })

(* Run one chunk body behind the [pool.chunk] fault site, retrying
   injected crashes in place with exponential backoff.  Every attempt
   re-probes the site (same key, next attempt number), so the engine's
   deterministic stream decides when the fault clears.  Organic
   exceptions are reported immediately: retrying real bugs only hides
   them. *)
let run_chunk_guarded t body i =
  let rec attempt k =
    match
      Fault.hit t.fault ~key:i "pool.chunk";
      body i
    with
    | () -> None
    | exception Fault.Injected _ when k < t.max_retries ->
      Atomic.incr t.retries_n;
      (match t.tele with Some tl -> Telemetry.incr tl.c_retries | None -> ());
      Unix.sleepf (0.001 *. float_of_int (1 lsl k));
      attempt (k + 1)
    | exception e -> Some (e, Printexc.get_raw_backtrace ())
  in
  attempt 0

(* Mark the pool poisoned (warn once) and count one degraded job. *)
let note_degraded t =
  if t.warn && not t.warned then begin
    t.warned <- true;
    Printf.eprintf
      "nanodec: warning: pool poisoned by injected faults; degrading to \
       sequential execution\n%!"
  end;
  t.degraded <- true;
  Atomic.incr t.degraded_jobs_n;
  match t.tele with Some tl -> Telemetry.incr tl.c_degraded | None -> ()

let count_timeout t =
  match t.tele with Some tl -> Telemetry.incr tl.c_timeouts | None -> ()

(* A supervision trip (deadline or token), observed mid-batch by some
   domain: stop new claims AND the remaining bodies of claimed batches
   (they would only burn time past the deadline), record the sentinel
   error.  Taken at most once per job; called without the mutex. *)
let trip t j error =
  Mutex.lock t.mutex;
  if not j.tripped then begin
    j.tripped <- true;
    Atomic.set j.cancelled true;
    Atomic.set j.abandon true;
    count_timeout t;
    (match j.error with
    | Some _ -> ()
    | None -> j.error <- Some (max_int, error, Printexc.get_callstack 0))
  end;
  Mutex.unlock t.mutex

(* Observe the cooperative stop conditions at a chunk boundary, without
   taking the mutex on the happy path. *)
let check_supervision t j =
  if not (Atomic.get j.abandon) then begin
    (match j.cancel with
    | Some c when Cancel.is_cancelled c -> trip t j cancel_error
    | Some _ | None -> ());
    match j.deadline, j.timeout_s with
    | Some d, Some s when Unix.gettimeofday () > d ->
      trip t j (timeout_error s)
    | _ -> ()
  end

(* Claim and run batches of [j] until the cursor is exhausted or the
   job is cancelled.  Called WITHOUT the mutex; takes it only to retire
   each batch.  Every claim with a live base index is retired exactly
   once — even when supervision skips its bodies — so the join
   condition below cannot hang.  [on_worker] distinguishes the steal
   counter from the submitter's own chunks. *)
let rec work_on t ~on_worker j =
  if not (Atomic.get j.cancelled) then begin
    let base = Atomic.fetch_and_add j.next j.batch in
    if base < j.chunks then begin
      let hi = min j.chunks (base + j.batch) in
      let tele = t.tele in
      (match tele with
      | Some tl ->
        let now = Telemetry.now tl.sink in
        Telemetry.observe tl.h_queue_wait (now -. j.submitted);
        Telemetry.incr tl.c_batches;
        Telemetry.add
          (if on_worker then tl.c_chunks_worker else tl.c_chunks_submitter)
          (hi - base)
      | None -> ());
      let t0 =
        match tele with Some tl -> Telemetry.now tl.sink | None -> 0.
      in
      let failure = ref None in
      let i = ref base in
      while !failure = None && !i < hi && not (Atomic.get j.abandon) do
        check_supervision t j;
        if not (Atomic.get j.abandon) then begin
          (match run_chunk_guarded t j.body !i with
          | None -> ()
          | Some (e, bt) -> failure := Some (!i, e, bt));
          incr i
        end
      done;
      (match tele with
      | Some tl ->
        Telemetry.observe tl.h_compute (Telemetry.now tl.sink -. t0)
      | None -> ());
      Mutex.lock t.mutex;
      (match !failure with
      | None -> ()
      | Some (i, e, bt) -> (
        (* An organic failure stops new claims but lets already-claimed
           batches run to completion, exactly like the in-flight chunks
           of the unbatched scheduler — so when several chunks fail,
           the lowest claimed index still wins below. *)
        Atomic.set j.cancelled true;
        match j.error with
        | Some (i0, _, _) when i0 <= i -> ()
        | Some _ | None -> j.error <- Some (i, e, bt)));
      j.retired <- j.retired + (hi - base);
      (* Join condition: every claimed index retired and no more claims
         coming.  [next] is only read here after this domain's own
         fetch-and-add, so the final retirement always sees the full
         claim extent. *)
      let claimed =
        if Atomic.get j.cancelled then min j.chunks (Atomic.get j.next)
        else j.chunks
      in
      if (not j.finished) && j.retired >= claimed then begin
        j.finished <- true;
        Condition.broadcast t.job_done
      end;
      Mutex.unlock t.mutex;
      work_on t ~on_worker j
    end
  end

let worker_loop t =
  Mutex.lock t.mutex;
  let rec loop () =
    if t.stop then Mutex.unlock t.mutex
    else
      match t.current with
      | Some j
        when (not (Atomic.get j.cancelled)) && Atomic.get j.next < j.chunks
        ->
        Mutex.unlock t.mutex;
        work_on t ~on_worker:true j;
        Mutex.lock t.mutex;
        loop ()
      | Some _ | None ->
        Condition.wait t.work_available t.mutex;
        loop ()
  in
  loop ()

let create ?domains ?telemetry ?fault ?(max_retries = 2) ?(degrade = true)
    ?(warn = true) () =
  let requested =
    match domains with Some d -> d | None -> default_domains ()
  in
  if requested < 1 then invalid_arg "Pool.create: domains must be >= 1";
  if max_retries < 0 then
    invalid_arg "Pool.create: max_retries must be >= 0";
  let n = min requested max_domains in
  let t =
    {
      n_domains = n;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      job_done = Condition.create ();
      current = None;
      stop = false;
      workers = [||];
      tele = Option.map tele_of_sink telemetry;
      fault;
      max_retries;
      degrade;
      warn;
      degraded = false;
      warned = false;
      inline_nested = Atomic.make 0;
      retries_n = Atomic.make 0;
      degraded_jobs_n = Atomic.make 0;
    }
  in
  t.workers <- Array.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  if t.stop then Mutex.unlock t.mutex
  else begin
    t.stop <- true;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ?domains ?telemetry ?fault ?max_retries ?degrade ?warn f =
  let t = create ?domains ?telemetry ?fault ?max_retries ?degrade ?warn () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Boundary check of the sequential paths (inline loops, [None] pools):
   same cooperative semantics as the fanned-out claim loop, raised
   directly since there is no join to drain. *)
let check_boundary ?deadline ?timeout_s ?cancel count_trip =
  (match cancel with
  | Some c when Cancel.is_cancelled c ->
    count_trip ();
    raise cancel_error
  | Some _ | None -> ());
  match deadline, timeout_s with
  | Some d, Some s when Unix.gettimeofday () > d ->
    count_trip ();
    raise (timeout_error s)
  | _ -> ()

(* The sequential executor: used for 1-domain pools, single-task and
   nested/busy submissions, degraded pools, and the degradation re-run
   itself ([suppress] then turns injection off).  Retries injected
   crashes like the parallel path; on exhaustion it degrades just that
   chunk (one suppressed re-execution) rather than failing the run —
   unless the pool opted out of degradation. *)
let run_inline ?timeout_s ?cancel ?(suppress = false) t ~chunks body =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s in
  let run_one i =
    check_boundary ?deadline ?timeout_s ?cancel (fun () -> count_timeout t);
    match run_chunk_guarded t body i with
    | None -> ()
    | Some ((Fault.Injected _ as e), _) ->
      if t.degrade then begin
        note_degraded t;
        Fault.without_faults (fun () -> body i)
      end
      else
        E.fail
          (E.Degraded { site = "pool.chunk"; reason = Printexc.to_string e })
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  in
  if suppress then
    Fault.without_faults (fun () ->
        for i = 0 to chunks - 1 do
          check_boundary ?deadline ?timeout_s ?cancel (fun () ->
              count_timeout t);
          body i
        done)
  else
    for i = 0 to chunks - 1 do
      run_one i
    done

let parallel_for ?timeout_s ?cancel ?(batch = 1) t ~chunks body =
  if chunks < 0 then invalid_arg "Pool.parallel_for: negative chunk count";
  if batch < 1 then invalid_arg "Pool.parallel_for: batch must be >= 1";
  (match timeout_s with
  | Some s when s <= 0. ->
    invalid_arg "Pool.parallel_for: timeout_s must be positive"
  | Some _ | None -> ());
  if chunks > 0 then begin
    (* ceil(chunks / batch) claims: a single claim means a single
       domain would do all the work anyway — run it inline and skip
       the fan-out machinery. *)
    let tasks = (chunks + batch - 1) / batch in
    if Array.length t.workers = 0 || tasks = 1 || t.degraded then
      if t.stop then invalid_arg "Pool: used after shutdown"
      else begin
        (match t.tele with Some tl -> Telemetry.incr tl.c_jobs_seq | None -> ());
        run_inline ?timeout_s ?cancel t ~chunks body
      end
    else begin
      Mutex.lock t.mutex;
      if t.stop then begin
        Mutex.unlock t.mutex;
        invalid_arg "Pool: used after shutdown"
      end
      else if t.current <> None then begin
        (* Busy: a chunk body (or another domain) submitted a job.
           Run it inline — identical results, no deadlock. *)
        Mutex.unlock t.mutex;
        Atomic.incr t.inline_nested;
        let inline () = run_inline ?timeout_s ?cancel t ~chunks body in
        match t.tele with
        | Some tl ->
          Telemetry.incr tl.c_jobs_inline;
          Telemetry.with_span (Some tl.sink) "pool.inline" inline
        | None -> inline ()
      end
      else begin
        let tele = t.tele in
        (match tele with Some tl -> Telemetry.incr tl.c_jobs | None -> ());
        let submitted =
          match tele with Some tl -> Telemetry.now tl.sink | None -> 0.
        in
        let j =
          {
            chunks;
            batch;
            body;
            submitted;
            timeout_s;
            deadline =
              Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s;
            cancel;
            next = Atomic.make 0;
            cancelled = Atomic.make false;
            abandon = Atomic.make false;
            tripped = false;
            retired = 0;
            finished = false;
            error = None;
          }
        in
        t.current <- Some j;
        Condition.broadcast t.work_available;
        Mutex.unlock t.mutex;
        work_on t ~on_worker:false j;
        Mutex.lock t.mutex;
        while not j.finished do
          Condition.wait t.job_done t.mutex
        done;
        t.current <- None;
        Mutex.unlock t.mutex;
        (match tele with
        | Some tl ->
          Telemetry.observe tl.h_job (Telemetry.now tl.sink -. submitted)
        | None -> ());
        match j.error with
        | None -> ()
        | Some (_, (Fault.Injected _ as e), _) ->
          if t.degrade then begin
            (* Poisoned: complete the job sequentially with injection
               suppressed.  Chunk bodies are restartable, so the
               re-execution reproduces the uninjected results exactly. *)
            note_degraded t;
            run_inline ?cancel ~suppress:true t ~chunks body
          end
          else
            E.fail
              (E.Degraded
                 { site = "pool.chunk"; reason = Printexc.to_string e })
        | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      end
    end
  end

let map ?timeout_s ?cancel ?batch t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for ?timeout_s ?cancel ?batch t ~chunks:n (fun i ->
        out.(i) <- Some (f xs.(i)));
    Array.map (function Some y -> y | None -> assert false) out
  end

let map_list ?timeout_s ?cancel ?batch t f xs =
  Array.to_list (map ?timeout_s ?cancel ?batch t f (Array.of_list xs))

let map_list_opt ?timeout_s ?cancel ?batch pool f xs =
  match pool with
  | Some t -> map_list ?timeout_s ?cancel ?batch t f xs
  | None ->
    let deadline =
      Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s
    in
    List.map
      (fun x ->
        check_boundary ?deadline ?timeout_s ?cancel (fun () -> ());
        f x)
      xs

let map_reduce ?timeout_s ?cancel ?batch t ~map:f ~reduce ~init xs =
  Array.fold_left reduce init (map ?timeout_s ?cancel ?batch t f xs)
