(* A single-job work queue over a fixed set of worker domains.

   Chunk claiming, in-flight accounting and completion signalling all
   happen under one mutex; chunk bodies run outside it.  Claim traffic
   is a few dozen transitions per job in this code base, so a mutex
   costs nothing measurable and keeps the invariants easy to audit.

   Memory-model note: a chunk body's writes (into caller-owned result
   slots) happen before that domain's mutex acquisition in the
   completion path, and the submitter only reads the slots after
   observing [finished] under the same mutex — so the fan-in is
   data-race free without per-slot atomics. *)

type job = {
  chunks : int;
  body : int -> unit;
  mutable next : int;  (* next unclaimed chunk index *)
  mutable in_flight : int;  (* chunks claimed but not yet completed *)
  mutable cancelled : bool;  (* stop claiming; set on first failure *)
  mutable finished : bool;
  mutable error : (int * exn * Printexc.raw_backtrace) option;
      (* failure with the lowest chunk index seen so far *)
}

type t = {
  n_domains : int;
  mutex : Mutex.t;
  work_available : Condition.t;  (* workers wait here for a job *)
  job_done : Condition.t;  (* the submitter waits here for the join *)
  mutable current : job option;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

let max_domains = 64

let parse_domains s =
  (* Strictly decimal: [int_of_string_opt] would also accept hex,
     underscores and surrounding junk after a trim. *)
  let decimal = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s in
  if not decimal then None
  else match int_of_string_opt s with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None

let default_domains () =
  match Sys.getenv_opt "NANODEC_DOMAINS" with
  | None -> Domain.recommended_domain_count ()
  | Some s -> (
    match parse_domains s with
    | Some n -> n
    | None ->
      invalid_arg
        (Printf.sprintf
           "NANODEC_DOMAINS=%S: expected a positive decimal integer" s))

let domains t = t.n_domains

(* Claim and run chunks of [j] until none are left.  Called with
   [t.mutex] held; returns with it held. *)
let rec work_on t j =
  if (not j.cancelled) && j.next < j.chunks then begin
    let i = j.next in
    j.next <- j.next + 1;
    j.in_flight <- j.in_flight + 1;
    Mutex.unlock t.mutex;
    let failure =
      match j.body i with
      | () -> None
      | exception e -> Some (i, e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock t.mutex;
    (match failure with
    | None -> ()
    | Some ((i, _, _) as f) -> (
      j.cancelled <- true;
      match j.error with
      | Some (i0, _, _) when i0 <= i -> ()
      | Some _ | None -> j.error <- Some f));
    j.in_flight <- j.in_flight - 1;
    if j.in_flight = 0 && (j.cancelled || j.next >= j.chunks) then begin
      j.finished <- true;
      Condition.broadcast t.job_done
    end;
    work_on t j
  end

let worker_loop t =
  Mutex.lock t.mutex;
  let rec loop () =
    if t.stop then Mutex.unlock t.mutex
    else
      match t.current with
      | Some j when (not j.cancelled) && j.next < j.chunks ->
        work_on t j;
        loop ()
      | Some _ | None ->
        Condition.wait t.work_available t.mutex;
        loop ()
  in
  loop ()

let create ?domains () =
  let requested =
    match domains with Some d -> d | None -> default_domains ()
  in
  if requested < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let n = min requested max_domains in
  let t =
    {
      n_domains = n;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      job_done = Condition.create ();
      current = None;
      stop = false;
      workers = [||];
    }
  in
  t.workers <- Array.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  if t.stop then Mutex.unlock t.mutex
  else begin
    t.stop <- true;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let parallel_for t ~chunks body =
  if chunks < 0 then invalid_arg "Pool.parallel_for: negative chunk count";
  if chunks > 0 then begin
    let inline () =
      for i = 0 to chunks - 1 do
        body i
      done
    in
    if Array.length t.workers = 0 || chunks = 1 then
      if t.stop then invalid_arg "Pool: used after shutdown" else inline ()
    else begin
      Mutex.lock t.mutex;
      if t.stop then begin
        Mutex.unlock t.mutex;
        invalid_arg "Pool: used after shutdown"
      end
      else if t.current <> None then begin
        (* Busy: a chunk body (or another domain) submitted a job.
           Run it inline — identical results, no deadlock. *)
        Mutex.unlock t.mutex;
        inline ()
      end
      else begin
        let j =
          {
            chunks;
            body;
            next = 0;
            in_flight = 0;
            cancelled = false;
            finished = false;
            error = None;
          }
        in
        t.current <- Some j;
        Condition.broadcast t.work_available;
        work_on t j;
        while not j.finished do
          Condition.wait t.job_done t.mutex
        done;
        t.current <- None;
        Mutex.unlock t.mutex;
        match j.error with
        | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ()
      end
    end
  end

let map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for t ~chunks:n (fun i -> out.(i) <- Some (f xs.(i)));
    Array.map (function Some y -> y | None -> assert false) out
  end

let map_list t f xs = Array.to_list (map t f (Array.of_list xs))

let map_list_opt pool f xs =
  match pool with Some t -> map_list t f xs | None -> List.map f xs

let map_reduce t ~map:f ~reduce ~init xs =
  Array.fold_left reduce init (map t f xs)
