(* A single-job work queue over a fixed set of worker domains.

   Chunk claiming, in-flight accounting and completion signalling all
   happen under one mutex; chunk bodies run outside it.  Claim traffic
   is a few dozen transitions per job in this code base, so a mutex
   costs nothing measurable and keeps the invariants easy to audit.

   Memory-model note: a chunk body's writes (into caller-owned result
   slots) happen before that domain's mutex acquisition in the
   completion path, and the submitter only reads the slots after
   observing [finished] under the same mutex — so the fan-in is
   data-race free without per-slot atomics.

   Telemetry is strictly an observer: probes time and count the
   scheduler's decisions but never influence them, so an instrumented
   run computes bit-for-bit the same results as a bare one. *)

module Telemetry = Nanodec_telemetry.Telemetry

(* Probe handles, created once when a sink is attached so the per-chunk
   hot path never takes the sink mutex. *)
type tele = {
  sink : Telemetry.sink;
  c_jobs : Telemetry.counter;  (* pool.jobs: jobs fanned out to the queue *)
  c_jobs_seq : Telemetry.counter;
      (* pool.jobs.sequential: no-worker or single-chunk inline loop *)
  c_jobs_inline : Telemetry.counter;
      (* pool.jobs.inline_nested: submissions while the pool was busy *)
  c_chunks_submitter : Telemetry.counter;
  c_chunks_worker : Telemetry.counter;  (* chunks stolen by worker domains *)
  h_queue_wait : Telemetry.histogram;  (* submit -> claim, per chunk *)
  h_compute : Telemetry.histogram;  (* chunk body wall time *)
  h_job : Telemetry.histogram;  (* submit -> join, per fanned-out job *)
}

type job = {
  chunks : int;
  body : int -> unit;
  submitted : float;  (* sink-relative submit time; 0 with no telemetry *)
  mutable next : int;  (* next unclaimed chunk index *)
  mutable in_flight : int;  (* chunks claimed but not yet completed *)
  mutable cancelled : bool;  (* stop claiming; set on first failure *)
  mutable finished : bool;
  mutable error : (int * exn * Printexc.raw_backtrace) option;
      (* failure with the lowest chunk index seen so far *)
}

type t = {
  n_domains : int;
  mutex : Mutex.t;
  work_available : Condition.t;  (* workers wait here for a job *)
  job_done : Condition.t;  (* the submitter waits here for the join *)
  mutable current : job option;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  mutable tele : tele option;
  inline_nested : int Atomic.t;
      (* nested/busy submissions run inline; counted even with no sink *)
}

let max_domains = 64

let parse_domains s =
  (* Strictly decimal: [int_of_string_opt] would also accept hex,
     underscores and surrounding junk after a trim. *)
  let decimal = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s in
  if not decimal then None
  else match int_of_string_opt s with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None

let default_domains () =
  match Sys.getenv_opt "NANODEC_DOMAINS" with
  | None -> Domain.recommended_domain_count ()
  | Some s -> (
    match parse_domains s with
    | Some n -> n
    | None ->
      invalid_arg
        (Printf.sprintf
           "NANODEC_DOMAINS=%S: expected a positive decimal integer" s))

let domains t = t.n_domains

let inline_submissions t = Atomic.get t.inline_nested

let tele_of_sink sink =
  {
    sink;
    c_jobs = Telemetry.counter sink "pool.jobs";
    c_jobs_seq = Telemetry.counter sink "pool.jobs.sequential";
    c_jobs_inline = Telemetry.counter sink "pool.jobs.inline_nested";
    c_chunks_submitter = Telemetry.counter sink "pool.chunks.submitter";
    c_chunks_worker = Telemetry.counter sink "pool.chunks.worker";
    h_queue_wait = Telemetry.histogram sink "pool.chunk.queue_wait_s";
    h_compute = Telemetry.histogram sink "pool.chunk.compute_s";
    h_job = Telemetry.histogram sink "pool.job_s";
  }

let set_telemetry t sink = t.tele <- Option.map tele_of_sink sink

let telemetry t = Option.map (fun tl -> tl.sink) t.tele

(* Claim and run chunks of [j] until none are left.  Called with
   [t.mutex] held; returns with it held.  [on_worker] distinguishes the
   steal counter from the submitter's own chunks. *)
let rec work_on t ~on_worker j =
  if (not j.cancelled) && j.next < j.chunks then begin
    let i = j.next in
    j.next <- j.next + 1;
    j.in_flight <- j.in_flight + 1;
    let tele = t.tele in
    (match tele with
    | Some tl ->
      let now = Telemetry.now tl.sink in
      Telemetry.observe tl.h_queue_wait (now -. j.submitted);
      Telemetry.incr
        (if on_worker then tl.c_chunks_worker else tl.c_chunks_submitter)
    | None -> ());
    Mutex.unlock t.mutex;
    let t0 = match tele with Some tl -> Telemetry.now tl.sink | None -> 0. in
    let failure =
      match j.body i with
      | () -> None
      | exception e -> Some (i, e, Printexc.get_raw_backtrace ())
    in
    (match tele with
    | Some tl -> Telemetry.observe tl.h_compute (Telemetry.now tl.sink -. t0)
    | None -> ());
    Mutex.lock t.mutex;
    (match failure with
    | None -> ()
    | Some ((i, _, _) as f) -> (
      j.cancelled <- true;
      match j.error with
      | Some (i0, _, _) when i0 <= i -> ()
      | Some _ | None -> j.error <- Some f));
    j.in_flight <- j.in_flight - 1;
    if j.in_flight = 0 && (j.cancelled || j.next >= j.chunks) then begin
      j.finished <- true;
      Condition.broadcast t.job_done
    end;
    work_on t ~on_worker j
  end

let worker_loop t =
  Mutex.lock t.mutex;
  let rec loop () =
    if t.stop then Mutex.unlock t.mutex
    else
      match t.current with
      | Some j when (not j.cancelled) && j.next < j.chunks ->
        work_on t ~on_worker:true j;
        loop ()
      | Some _ | None ->
        Condition.wait t.work_available t.mutex;
        loop ()
  in
  loop ()

let create ?domains ?telemetry () =
  let requested =
    match domains with Some d -> d | None -> default_domains ()
  in
  if requested < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let n = min requested max_domains in
  let t =
    {
      n_domains = n;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      job_done = Condition.create ();
      current = None;
      stop = false;
      workers = [||];
      tele = Option.map tele_of_sink telemetry;
      inline_nested = Atomic.make 0;
    }
  in
  t.workers <- Array.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  if t.stop then Mutex.unlock t.mutex
  else begin
    t.stop <- true;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ?domains ?telemetry f =
  let t = create ?domains ?telemetry () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let parallel_for t ~chunks body =
  if chunks < 0 then invalid_arg "Pool.parallel_for: negative chunk count";
  if chunks > 0 then begin
    let inline () =
      for i = 0 to chunks - 1 do
        body i
      done
    in
    if Array.length t.workers = 0 || chunks = 1 then
      if t.stop then invalid_arg "Pool: used after shutdown"
      else begin
        (match t.tele with Some tl -> Telemetry.incr tl.c_jobs_seq | None -> ());
        inline ()
      end
    else begin
      Mutex.lock t.mutex;
      if t.stop then begin
        Mutex.unlock t.mutex;
        invalid_arg "Pool: used after shutdown"
      end
      else if t.current <> None then begin
        (* Busy: a chunk body (or another domain) submitted a job.
           Run it inline — identical results, no deadlock. *)
        Mutex.unlock t.mutex;
        Atomic.incr t.inline_nested;
        match t.tele with
        | Some tl ->
          Telemetry.incr tl.c_jobs_inline;
          Telemetry.with_span (Some tl.sink) "pool.inline" inline
        | None -> inline ()
      end
      else begin
        let tele = t.tele in
        (match tele with Some tl -> Telemetry.incr tl.c_jobs | None -> ());
        let submitted =
          match tele with Some tl -> Telemetry.now tl.sink | None -> 0.
        in
        let j =
          {
            chunks;
            body;
            submitted;
            next = 0;
            in_flight = 0;
            cancelled = false;
            finished = false;
            error = None;
          }
        in
        t.current <- Some j;
        Condition.broadcast t.work_available;
        work_on t ~on_worker:false j;
        while not j.finished do
          Condition.wait t.job_done t.mutex
        done;
        t.current <- None;
        Mutex.unlock t.mutex;
        (match tele with
        | Some tl ->
          Telemetry.observe tl.h_job (Telemetry.now tl.sink -. submitted)
        | None -> ());
        match j.error with
        | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ()
      end
    end
  end

let map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for t ~chunks:n (fun i -> out.(i) <- Some (f xs.(i)));
    Array.map (function Some y -> y | None -> assert false) out
  end

let map_list t f xs = Array.to_list (map t f (Array.of_list xs))

let map_list_opt pool f xs =
  match pool with Some t -> map_list t f xs | None -> List.map f xs

let map_reduce t ~map:f ~reduce ~init xs =
  Array.fold_left reduce init (map t f xs)
