(* A supervised single-job work queue over a fixed set of worker domains.

   Chunk claiming, in-flight accounting and completion signalling all
   happen under one mutex; chunk bodies run outside it.  Claim traffic
   is a few dozen transitions per job in this code base, so a mutex
   costs nothing measurable and keeps the invariants easy to audit.

   Memory-model note: a chunk body's writes (into caller-owned result
   slots) happen before that domain's mutex acquisition in the
   completion path, and the submitter only reads the slots after
   observing [finished] under the same mutex — so the fan-in is
   data-race free without per-slot atomics.

   Supervision (deadlines, cancellation tokens, injected-crash retries,
   degradation to sequential) is cooperative: it acts only at chunk
   boundaries, because a running domain cannot be preempted.  All of it
   leaves successful results bit-for-bit identical to an unsupervised
   run — recovery re-executes restartable chunk bodies, never reorders
   the fan-in.

   Telemetry is strictly an observer: probes time and count the
   scheduler's decisions but never influence them, so an instrumented
   run computes bit-for-bit the same results as a bare one. *)

module Telemetry = Nanodec_telemetry.Telemetry
module Fault = Nanodec_fault.Fault
module E = Nanodec_error

module Cancel = struct
  type t = bool Atomic.t

  let create () = Atomic.make false
  let cancel t = Atomic.set t true
  let is_cancelled t = Atomic.get t
end

(* Probe handles, created once when a sink is attached so the per-chunk
   hot path never takes the sink mutex. *)
type tele = {
  sink : Telemetry.sink;
  c_jobs : Telemetry.counter;  (* pool.jobs: jobs fanned out to the queue *)
  c_jobs_seq : Telemetry.counter;
      (* pool.jobs.sequential: no-worker or single-chunk inline loop *)
  c_jobs_inline : Telemetry.counter;
      (* pool.jobs.inline_nested: submissions while the pool was busy *)
  c_chunks_submitter : Telemetry.counter;
  c_chunks_worker : Telemetry.counter;  (* chunks stolen by worker domains *)
  c_retries : Telemetry.counter;  (* pool.retries: injected-crash retries *)
  c_timeouts : Telemetry.counter;  (* pool.timeouts: deadline/cancel trips *)
  c_degraded : Telemetry.counter;  (* pool.degraded_jobs *)
  h_queue_wait : Telemetry.histogram;  (* submit -> claim, per chunk *)
  h_compute : Telemetry.histogram;  (* chunk body wall time *)
  h_job : Telemetry.histogram;  (* submit -> join, per fanned-out job *)
}

type job = {
  chunks : int;
  body : int -> unit;
  submitted : float;  (* sink-relative submit time; 0 with no telemetry *)
  timeout_s : float option;
  deadline : float option;  (* absolute, Unix.gettimeofday base *)
  cancel : Cancel.t option;
  mutable next : int;  (* next unclaimed chunk index *)
  mutable in_flight : int;  (* chunks claimed but not yet completed *)
  mutable cancelled : bool;  (* stop claiming; set on first failure *)
  mutable finished : bool;
  mutable error : (int * exn * Printexc.raw_backtrace) option;
      (* failure with the lowest chunk index seen so far; index
         [max_int] marks deadline/cancellation sentinels so any real
         chunk failure wins over them *)
}

type t = {
  n_domains : int;
  mutex : Mutex.t;
  work_available : Condition.t;  (* workers wait here for a job *)
  job_done : Condition.t;  (* the submitter waits here for the join *)
  mutable current : job option;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  mutable tele : tele option;
  mutable fault : Fault.t option;
  max_retries : int;  (* per chunk, against injected crashes *)
  degrade : bool;  (* sequential fallback instead of failing Degraded *)
  warn : bool;  (* announce degradation on stderr (off in chaos harnesses) *)
  mutable degraded : bool;  (* poisoned: all further jobs run inline *)
  mutable warned : bool;  (* the one-time stderr degradation warning *)
  inline_nested : int Atomic.t;
      (* nested/busy submissions run inline; counted even with no sink *)
  retries_n : int Atomic.t;
  degraded_jobs_n : int Atomic.t;
}

let max_domains = 64
let site = "pool.job"

let parse_domains s =
  (* Strictly decimal: [int_of_string_opt] would also accept hex,
     underscores and surrounding junk after a trim. *)
  let decimal = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s in
  if not decimal then None
  else match int_of_string_opt s with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None

let default_domains () =
  match Sys.getenv_opt "NANODEC_DOMAINS" with
  | None -> Domain.recommended_domain_count ()
  | Some s -> (
    match parse_domains s with
    | Some n -> n
    | None ->
      invalid_arg
        (Printf.sprintf
           "NANODEC_DOMAINS=%S: expected a positive decimal integer" s))

let domains t = t.n_domains

let inline_submissions t = Atomic.get t.inline_nested
let retries t = Atomic.get t.retries_n
let degraded t = t.degraded
let degraded_jobs t = Atomic.get t.degraded_jobs_n

let tele_of_sink sink =
  {
    sink;
    c_jobs = Telemetry.counter sink "pool.jobs";
    c_jobs_seq = Telemetry.counter sink "pool.jobs.sequential";
    c_jobs_inline = Telemetry.counter sink "pool.jobs.inline_nested";
    c_chunks_submitter = Telemetry.counter sink "pool.chunks.submitter";
    c_chunks_worker = Telemetry.counter sink "pool.chunks.worker";
    c_retries = Telemetry.counter sink "pool.retries";
    c_timeouts = Telemetry.counter sink "pool.timeouts";
    c_degraded = Telemetry.counter sink "pool.degraded_jobs";
    h_queue_wait = Telemetry.histogram sink "pool.chunk.queue_wait_s";
    h_compute = Telemetry.histogram sink "pool.chunk.compute_s";
    h_job = Telemetry.histogram sink "pool.job_s";
  }

let set_telemetry t sink = t.tele <- Option.map tele_of_sink sink

let telemetry t = Option.map (fun tl -> tl.sink) t.tele

let set_fault t fault = t.fault <- fault
let fault t = t.fault

let timeout_error timeout_s =
  E.Error (E.Timeout { site; seconds = Some timeout_s })

let cancel_error = E.Error (E.Timeout { site; seconds = None })

(* Run one chunk body behind the [pool.chunk] fault site, retrying
   injected crashes in place with exponential backoff.  Every attempt
   re-probes the site (same key, next attempt number), so the engine's
   deterministic stream decides when the fault clears.  Organic
   exceptions are reported immediately: retrying real bugs only hides
   them. *)
let run_chunk_guarded t body i =
  let rec attempt k =
    match
      Fault.hit t.fault ~key:i "pool.chunk";
      body i
    with
    | () -> None
    | exception Fault.Injected _ when k < t.max_retries ->
      Atomic.incr t.retries_n;
      (match t.tele with Some tl -> Telemetry.incr tl.c_retries | None -> ());
      Unix.sleepf (0.001 *. float_of_int (1 lsl k));
      attempt (k + 1)
    | exception e -> Some (e, Printexc.get_raw_backtrace ())
  in
  attempt 0

(* Mark the pool poisoned (warn once) and count one degraded job. *)
let note_degraded t =
  if t.warn && not t.warned then begin
    t.warned <- true;
    Printf.eprintf
      "nanodec: warning: pool poisoned by injected faults; degrading to \
       sequential execution\n%!"
  end;
  t.degraded <- true;
  Atomic.incr t.degraded_jobs_n;
  match t.tele with Some tl -> Telemetry.incr tl.c_degraded | None -> ()

let count_timeout t =
  match t.tele with Some tl -> Telemetry.incr tl.c_timeouts | None -> ()

(* With [t.mutex] held: record a supervision trip (deadline or token)
   and, when nothing is running any more, close the job so the
   submitter's wait terminates even if no completion follows. *)
let cancel_job t j error =
  if not j.cancelled then begin
    j.cancelled <- true;
    count_timeout t;
    (match j.error with
    | Some _ -> ()
    | None -> j.error <- Some (max_int, error, Printexc.get_callstack 0));
    if j.in_flight = 0 then begin
      j.finished <- true;
      Condition.broadcast t.job_done
    end
  end

(* Observe the cooperative stop conditions at a chunk boundary.  Called
   with [t.mutex] held. *)
let check_supervision t j =
  if not j.cancelled then begin
    (match j.cancel with
    | Some c when Cancel.is_cancelled c -> cancel_job t j cancel_error
    | Some _ | None -> ());
    match j.deadline, j.timeout_s with
    | Some d, Some s when Unix.gettimeofday () > d ->
      cancel_job t j (timeout_error s)
    | _ -> ()
  end

(* Claim and run chunks of [j] until none are left.  Called with
   [t.mutex] held; returns with it held.  [on_worker] distinguishes the
   steal counter from the submitter's own chunks. *)
let rec work_on t ~on_worker j =
  check_supervision t j;
  if (not j.cancelled) && j.next < j.chunks then begin
    let i = j.next in
    j.next <- j.next + 1;
    j.in_flight <- j.in_flight + 1;
    let tele = t.tele in
    (match tele with
    | Some tl ->
      let now = Telemetry.now tl.sink in
      Telemetry.observe tl.h_queue_wait (now -. j.submitted);
      Telemetry.incr
        (if on_worker then tl.c_chunks_worker else tl.c_chunks_submitter)
    | None -> ());
    Mutex.unlock t.mutex;
    let t0 = match tele with Some tl -> Telemetry.now tl.sink | None -> 0. in
    let failure = run_chunk_guarded t j.body i in
    (match tele with
    | Some tl -> Telemetry.observe tl.h_compute (Telemetry.now tl.sink -. t0)
    | None -> ());
    Mutex.lock t.mutex;
    (match failure with
    | None -> ()
    | Some (e, bt) -> (
      j.cancelled <- true;
      match j.error with
      | Some (i0, _, _) when i0 <= i -> ()
      | Some _ | None -> j.error <- Some (i, e, bt)));
    j.in_flight <- j.in_flight - 1;
    if j.in_flight = 0 && (j.cancelled || j.next >= j.chunks) then begin
      j.finished <- true;
      Condition.broadcast t.job_done
    end;
    work_on t ~on_worker j
  end

let worker_loop t =
  Mutex.lock t.mutex;
  let rec loop () =
    if t.stop then Mutex.unlock t.mutex
    else
      match t.current with
      | Some j when (not j.cancelled) && j.next < j.chunks ->
        work_on t ~on_worker:true j;
        loop ()
      | Some _ | None ->
        Condition.wait t.work_available t.mutex;
        loop ()
  in
  loop ()

let create ?domains ?telemetry ?fault ?(max_retries = 2) ?(degrade = true)
    ?(warn = true) () =
  let requested =
    match domains with Some d -> d | None -> default_domains ()
  in
  if requested < 1 then invalid_arg "Pool.create: domains must be >= 1";
  if max_retries < 0 then
    invalid_arg "Pool.create: max_retries must be >= 0";
  let n = min requested max_domains in
  let t =
    {
      n_domains = n;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      job_done = Condition.create ();
      current = None;
      stop = false;
      workers = [||];
      tele = Option.map tele_of_sink telemetry;
      fault;
      max_retries;
      degrade;
      warn;
      degraded = false;
      warned = false;
      inline_nested = Atomic.make 0;
      retries_n = Atomic.make 0;
      degraded_jobs_n = Atomic.make 0;
    }
  in
  t.workers <- Array.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  if t.stop then Mutex.unlock t.mutex
  else begin
    t.stop <- true;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ?domains ?telemetry ?fault ?max_retries ?degrade ?warn f =
  let t = create ?domains ?telemetry ?fault ?max_retries ?degrade ?warn () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Boundary check of the sequential paths (inline loops, [None] pools):
   same cooperative semantics as the fanned-out claim loop, raised
   directly since there is no join to drain. *)
let check_boundary ?deadline ?timeout_s ?cancel count_trip =
  (match cancel with
  | Some c when Cancel.is_cancelled c ->
    count_trip ();
    raise cancel_error
  | Some _ | None -> ());
  match deadline, timeout_s with
  | Some d, Some s when Unix.gettimeofday () > d ->
    count_trip ();
    raise (timeout_error s)
  | _ -> ()

(* The sequential executor: used for 1-domain pools, single-chunk and
   nested/busy submissions, degraded pools, and the degradation re-run
   itself ([suppress] then turns injection off).  Retries injected
   crashes like the parallel path; on exhaustion it degrades just that
   chunk (one suppressed re-execution) rather than failing the run —
   unless the pool opted out of degradation. *)
let run_inline ?timeout_s ?cancel ?(suppress = false) t ~chunks body =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s in
  let run_one i =
    check_boundary ?deadline ?timeout_s ?cancel (fun () -> count_timeout t);
    match run_chunk_guarded t body i with
    | None -> ()
    | Some ((Fault.Injected _ as e), _) ->
      if t.degrade then begin
        note_degraded t;
        Fault.without_faults (fun () -> body i)
      end
      else
        E.fail
          (E.Degraded { site = "pool.chunk"; reason = Printexc.to_string e })
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  in
  if suppress then
    Fault.without_faults (fun () ->
        for i = 0 to chunks - 1 do
          check_boundary ?deadline ?timeout_s ?cancel (fun () ->
              count_timeout t);
          body i
        done)
  else
    for i = 0 to chunks - 1 do
      run_one i
    done

let parallel_for ?timeout_s ?cancel t ~chunks body =
  if chunks < 0 then invalid_arg "Pool.parallel_for: negative chunk count";
  (match timeout_s with
  | Some s when s <= 0. ->
    invalid_arg "Pool.parallel_for: timeout_s must be positive"
  | Some _ | None -> ());
  if chunks > 0 then begin
    if Array.length t.workers = 0 || chunks = 1 || t.degraded then
      if t.stop then invalid_arg "Pool: used after shutdown"
      else begin
        (match t.tele with Some tl -> Telemetry.incr tl.c_jobs_seq | None -> ());
        run_inline ?timeout_s ?cancel t ~chunks body
      end
    else begin
      Mutex.lock t.mutex;
      if t.stop then begin
        Mutex.unlock t.mutex;
        invalid_arg "Pool: used after shutdown"
      end
      else if t.current <> None then begin
        (* Busy: a chunk body (or another domain) submitted a job.
           Run it inline — identical results, no deadlock. *)
        Mutex.unlock t.mutex;
        Atomic.incr t.inline_nested;
        let inline () = run_inline ?timeout_s ?cancel t ~chunks body in
        match t.tele with
        | Some tl ->
          Telemetry.incr tl.c_jobs_inline;
          Telemetry.with_span (Some tl.sink) "pool.inline" inline
        | None -> inline ()
      end
      else begin
        let tele = t.tele in
        (match tele with Some tl -> Telemetry.incr tl.c_jobs | None -> ());
        let submitted =
          match tele with Some tl -> Telemetry.now tl.sink | None -> 0.
        in
        let j =
          {
            chunks;
            body;
            submitted;
            timeout_s;
            deadline =
              Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s;
            cancel;
            next = 0;
            in_flight = 0;
            cancelled = false;
            finished = false;
            error = None;
          }
        in
        t.current <- Some j;
        Condition.broadcast t.work_available;
        work_on t ~on_worker:false j;
        while not j.finished do
          Condition.wait t.job_done t.mutex
        done;
        t.current <- None;
        Mutex.unlock t.mutex;
        (match tele with
        | Some tl ->
          Telemetry.observe tl.h_job (Telemetry.now tl.sink -. submitted)
        | None -> ());
        match j.error with
        | None -> ()
        | Some (_, (Fault.Injected _ as e), _) ->
          if t.degrade then begin
            (* Poisoned: complete the job sequentially with injection
               suppressed.  Chunk bodies are restartable, so the
               re-execution reproduces the uninjected results exactly. *)
            note_degraded t;
            run_inline ?cancel ~suppress:true t ~chunks body
          end
          else
            E.fail
              (E.Degraded
                 { site = "pool.chunk"; reason = Printexc.to_string e })
        | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      end
    end
  end

let map ?timeout_s ?cancel t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for ?timeout_s ?cancel t ~chunks:n (fun i ->
        out.(i) <- Some (f xs.(i)));
    Array.map (function Some y -> y | None -> assert false) out
  end

let map_list ?timeout_s ?cancel t f xs =
  Array.to_list (map ?timeout_s ?cancel t f (Array.of_list xs))

let map_list_opt ?timeout_s ?cancel pool f xs =
  match pool with
  | Some t -> map_list ?timeout_s ?cancel t f xs
  | None ->
    let deadline =
      Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s
    in
    List.map
      (fun x ->
        check_boundary ?deadline ?timeout_s ?cancel (fun () -> ());
        f x)
      xs

let map_reduce ?timeout_s ?cancel t ~map:f ~reduce ~init xs =
  Array.fold_left reduce init (map ?timeout_s ?cancel t f xs)
