(** CSV export of every reproduction dataset.

    Files are plain RFC-4180-ish CSV (no quoting needed — all fields are
    numbers or code names), one per figure plus the full design-space
    sweep, so results can be replotted outside OCaml. *)

val fig5_csv : unit -> string
(** Columns: [radix,code,length,phi]. *)

val fig6_csv : unit -> string
(** Long format, one row per (code, length, wire, digit):
    [code,length,wire,digit,sqrt_nu]. *)

val fig7_csv : unit -> string
(** Columns: [code,length,crossbar_yield]. *)

val fig8_csv : unit -> string
(** Columns: [code,length,bit_area_nm2]. *)

val sweep_csv : ?spec:Design.spec -> unit -> string
(** Full design-space sweep: one row per design with every report field. *)

val gnuplot_script : [ `Fig5 | `Fig7 | `Fig8 ] -> string
(** A self-contained gnuplot script that renders the figure from its CSV
    (placed in the same directory) to a PNG, in the paper's layout —
    grouped bars for Figs 5 and 8, yield-vs-length series for Fig 7. *)

val write_all : dir:string -> unit
(** Writes [fig5.csv] … [fig8.csv], [sweep.csv] and the gnuplot scripts
    [fig5.gp], [fig7.gp], [fig8.gp] into [dir] (created if missing). *)
