open Nanodec_codes
open Nanodec_numerics
open Nanodec_mspt
open Nanodec_crossbar

type spec = {
  cave : Cave.config;
  raw_bits : int;
}

let default_spec =
  { cave = Cave.default_config; raw_bits = 16 * 1024 * 8 }

let spec ?(base = default_spec) ?radix ?n_wires ~code_type ~code_length () =
  let cave =
    {
      base.cave with
      Cave.code_type;
      code_length;
      radix = Option.value ~default:base.cave.Cave.radix radix;
      n_wires = Option.value ~default:base.cave.Cave.n_wires n_wires;
    }
  in
  { base with cave }

type report = {
  spec : spec;
  omega : int;
  phi : int;
  phi_per_wire : float;
  sigma_norm1 : float;
  average_nu : float;
  max_nu : int;
  pattern_transitions : int;
  cave_yield : float;
  crossbar_yield : float;
  effective_bits : float;
  bit_area : float;
  area : float;
  n_pads : int;
  removed_wires : int;
}

let evaluate spec =
  let array_report =
    Array_sim.evaluate { Array_sim.cave = spec.cave; raw_bits = spec.raw_bits }
  in
  let analysis = array_report.Array_sim.cave_analysis in
  let pattern = analysis.Cave.pattern in
  let nu = analysis.Cave.nu in
  let sigma_t = spec.cave.Cave.sigma_t in
  let layout = analysis.Cave.layout in
  {
    spec;
    omega = analysis.Cave.omega;
    phi = Complexity.total pattern;
    phi_per_wire =
      float_of_int (Complexity.total pattern)
      /. float_of_int (Pattern.n_wires pattern);
    sigma_norm1 = sigma_t *. sigma_t *. float_of_int (Imatrix.sum nu);
    average_nu = Variability.average_nu ~nu pattern;
    max_nu = Imatrix.max_entry nu;
    pattern_transitions = Pattern.total_transitions pattern;
    cave_yield = array_report.Array_sim.cave_yield;
    crossbar_yield = array_report.Array_sim.crossbar_yield;
    effective_bits = array_report.Array_sim.effective_bits;
    bit_area = array_report.Array_sim.bit_area;
    area = array_report.Array_sim.area;
    n_pads = layout.Geometry.n_pads;
    removed_wires = Geometry.n_shared layout + Geometry.n_excess layout;
  }

let pp_report ppf r =
  let c = r.spec.cave in
  Format.fprintf ppf
    "@[<v>design: %s, n=%d, M=%d (Omega=%d), N=%d wires/half-cave@,\
     fabrication: Phi=%d passes (%.2f per wire), %d pattern transitions@,\
     variability: ||Sigma||_1=%.4f V^2, mean nu=%.2f, max nu=%d@,\
     geometry: %d contact groups, %d wires removed@,\
     yield: Y=%.3f, crossbar yield=%.3f, D_EFF=%.0f/%d@,\
     area: %.3e nm^2 total, %.1f nm^2 per bit@]"
    (Codebook.long_name c.Cave.code_type)
    c.Cave.radix c.Cave.code_length r.omega c.Cave.n_wires r.phi
    r.phi_per_wire r.pattern_transitions r.sigma_norm1 r.average_nu r.max_nu
    r.n_pads r.removed_wires r.cave_yield r.crossbar_yield r.effective_bits
    r.spec.raw_bits r.area r.bit_area

let report_header =
  "code  n  M   Omega  Phi  avg_nu  Y      Y^2    bit_area  pads  removed"

let report_row r =
  let c = r.spec.cave in
  Printf.sprintf "%-5s %d  %-3d %-6d %-4d %-7.2f %-6.3f %-6.3f %-9.1f %-5d %d"
    (Codebook.name c.Cave.code_type)
    c.Cave.radix c.Cave.code_length r.omega r.phi r.average_nu r.cave_yield
    r.crossbar_yield r.bit_area r.n_pads r.removed_wires
