open Nanodec_codes
open Nanodec_numerics
open Nanodec_mspt

(* Fig. 5 *)

type fig5_point = {
  radix : int;
  code_type : Codebook.t;
  code_length : int;
  phi : int;
}

let fig5 ?(n_wires = 10) () =
  let point radix code_type =
    let code_length = Codebook.minimal_length ~radix ~min_size:n_wires code_type in
    let pattern = Pattern.of_codebook ~radix ~length:code_length ~n_wires code_type in
    { radix; code_type; code_length; phi = Complexity.total pattern }
  in
  List.concat_map
    (fun radix -> [ point radix Codebook.Tree; point radix Codebook.Gray ])
    [ 2; 3; 4 ]

(* Fig. 6 *)

type fig6_surface = {
  code_type : Codebook.t;
  code_length : int;
  normalized_std : Fmatrix.t;
  mean_nu : float;
  max_std : float;
}

let fig6_surface ~radix ~n_wires code_type code_length =
  let pattern =
    Pattern.of_codebook ~radix ~length:code_length ~n_wires code_type
  in
  let nu = Variability.nu_matrix pattern in
  let normalized_std = Variability.normalized_std_matrix ~nu pattern in
  {
    code_type;
    code_length;
    normalized_std;
    mean_nu = Variability.average_nu ~nu pattern;
    max_std = Fmatrix.max_entry normalized_std;
  }

let fig6 ?(n_wires = 20) () =
  List.concat_map
    (fun ct ->
      [ fig6_surface ~radix:2 ~n_wires ct 8; fig6_surface ~radix:2 ~n_wires ct 10 ])
    [ Codebook.Tree; Codebook.Gray; Codebook.Balanced_gray ]

let fig6_multivalued ?(n_wires = 20) ~radix () =
  let families =
    let base = [ Codebook.Tree; Codebook.Gray ] in
    let length = Codebook.minimal_length ~radix ~min_size:n_wires Codebook.Tree in
    let omega = Codebook.space_size ~radix ~length Codebook.Tree in
    if omega <= 32 then base @ [ Codebook.Balanced_gray ] else base
  in
  List.map
    (fun ct ->
      let length = Codebook.minimal_length ~radix ~min_size:n_wires ct in
      fig6_surface ~radix ~n_wires ct length)
    families

(* Fig. 7 / Fig. 8 *)

type fig7_point = {
  code_type : Codebook.t;
  code_length : int;
  crossbar_yield : float;
}

let evaluate_design ~spec code_type code_length =
  Design.evaluate (Design.spec ~base:spec ~code_type ~code_length ())

let fig7_candidates =
  List.concat
    [
      List.map (fun m -> (Codebook.Tree, m)) [ 6; 8; 10 ];
      List.map (fun m -> (Codebook.Balanced_gray, m)) [ 6; 8; 10 ];
      List.map (fun m -> (Codebook.Hot, m)) [ 4; 6; 8 ];
      List.map (fun m -> (Codebook.Arranged_hot, m)) [ 4; 6; 8 ];
    ]

module Telemetry = Nanodec_telemetry.Telemetry
module Run_ctx = Nanodec_parallel.Run_ctx

(* Every figure generator follows the same shape: resolve pool and sink
   from the execution context, wrap the
   whole figure in a span, fan the points out in candidate order. *)
let figure_points ?ctx name point candidates =
  let ctx = Run_ctx.resolve ?ctx () in
  Telemetry.with_span (Run_ctx.telemetry ctx) name @@ fun () ->
  Run_ctx.map_list ctx point candidates

let fig7 ?ctx ?(spec = Design.default_spec) () =
  let point (code_type, code_length) =
    let r = evaluate_design ~spec code_type code_length in
    { code_type; code_length; crossbar_yield = r.Design.crossbar_yield }
  in
  figure_points ?ctx "figures.fig7" point fig7_candidates

type fig8_point = {
  code_type : Codebook.t;
  code_length : int;
  bit_area : float;
}

let fig8 ?ctx ?(spec = Design.default_spec) () =
  let point (code_type, code_length) =
    let r = evaluate_design ~spec code_type code_length in
    { code_type; code_length; bit_area = r.Design.bit_area }
  in
  let candidates =
    List.concat_map
      (fun ct -> List.map (fun m -> (ct, m)) [ 6; 8; 10 ])
      Codebook.all_types
  in
  figure_points ?ctx "figures.fig8" point candidates

(* Extension: multi-valued designs *)

type multivalued_point = {
  radix : int;
  code_type : Codebook.t;
  code_length : int;
  crossbar_yield : float;
  bit_area : float;
  phi : int;
}

let multivalued_designs ?ctx ?(spec = Design.default_spec) () =
  let point (radix, code_type, code_length) =
    let design =
      Design.spec ~base:spec ~radix ~code_type ~code_length ()
    in
    let r = Design.evaluate design in
    {
      radix;
      code_type;
      code_length;
      crossbar_yield = r.Design.crossbar_yield;
      bit_area = r.Design.bit_area;
      phi = r.Design.phi;
    }
  in
  let n_wires = spec.Design.cave.Nanodec_crossbar.Cave.n_wires in
  let candidates =
    List.concat_map
      (fun radix ->
        let minimal =
          Codebook.minimal_length ~radix ~min_size:n_wires Codebook.Tree
        in
        List.concat_map
          (fun code_length ->
            [ (radix, Codebook.Tree, code_length);
              (radix, Codebook.Gray, code_length) ])
          [ minimal; minimal + 2 ])
      [ 2; 3; 4 ]
  in
  figure_points ?ctx "figures.multivalued" point candidates

(* Headlines *)

type headlines = {
  gray_step_saving_ternary : float;
  tree_multivalued_overhead : float;
  variability_saving : float;
  yield_gain_length_tc : float;
  yield_gain_bgc_vs_tc : float;
  yield_gain_ahc_vs_hc : float;
  area_saving_tc_length : float;
  density_gain_bgc_vs_tc : float;
  area_saving_ahc_vs_hc : float;
  best_bit_area : float * Codebook.t * int;
}

let average_nu_of code_type code_length =
  Variability.average_nu
    (Pattern.of_codebook ~radix:2 ~length:code_length ~n_wires:20 code_type)

let headlines ?(spec = Design.default_spec) () =
  let fig5_points = fig5 () in
  let phi radix ct =
    match
      List.find_opt
        (fun (p : fig5_point) -> p.radix = radix && p.code_type = ct)
        fig5_points
    with
    | Some (p : fig5_point) -> float_of_int p.phi
    | None -> invalid_arg "Figures.headlines: missing fig5 point"
  in
  let design ct m = evaluate_design ~spec ct m in
  let y ct m = (design ct m).Design.crossbar_yield in
  let bit ct m = (design ct m).Design.bit_area in
  let saving from_value to_value = (from_value -. to_value) /. from_value in
  let best_bit_area =
    let candidates =
      List.concat_map
        (fun ct -> List.map (fun m -> (bit ct m, ct, m)) [ 6; 8; 10 ])
        Codebook.all_types
    in
    match List.sort Stdlib.compare candidates with
    | best :: _ -> best
    | [] -> assert false
  in
  {
    gray_step_saving_ternary = saving (phi 3 Codebook.Tree) (phi 3 Codebook.Gray);
    tree_multivalued_overhead =
      (phi 3 Codebook.Tree /. phi 2 Codebook.Tree) -. 1.;
    variability_saving =
      saving (average_nu_of Codebook.Tree 8)
        (average_nu_of Codebook.Balanced_gray 8);
    yield_gain_length_tc = y Codebook.Tree 10 -. y Codebook.Tree 6;
    yield_gain_bgc_vs_tc =
      (y Codebook.Balanced_gray 8 /. y Codebook.Tree 8) -. 1.;
    yield_gain_ahc_vs_hc = (y Codebook.Arranged_hot 8 /. y Codebook.Hot 8) -. 1.;
    area_saving_tc_length = saving (bit Codebook.Tree 6) (bit Codebook.Tree 10);
    density_gain_bgc_vs_tc =
      saving (bit Codebook.Tree 8) (bit Codebook.Balanced_gray 8);
    area_saving_ahc_vs_hc =
      saving (bit Codebook.Hot 6) (bit Codebook.Arranged_hot 6);
    best_bit_area;
  }

let pp_headlines ppf h =
  let pct x = 100. *. x in
  let area, ct, m = h.best_bit_area in
  Format.fprintf ppf
    "@[<v>GC saves %.0f%% fabrication steps vs TC (ternary)      [paper: 17%%]@,\
     ternary TC costs %.0f%% more steps than binary TC    [paper: ~20%%]@,\
     BGC reduces average variability by %.0f%% vs TC (M=8) [paper: 18%%]@,\
     TC yield gains %.0f points from M=6 to M=10          [paper: ~40]@,\
     BGC yields %.0f%% more than TC at M=8                 [paper: 42%%]@,\
     AHC yields %.0f%% more than HC at M=8                 [paper: 19%%]@,\
     TC bit area shrinks %.0f%% from M=6 to M=10           [paper: 51%%]@,\
     BGC is %.0f%% denser than TC at M=8                   [paper: ~30%%]@,\
     AHC bit area is %.0f%% below HC at M=6                [paper: 13%%]@,\
     best bit area: %.0f nm^2 (%s, M=%d)                 [paper: 169 nm^2, BGC, M=10]@]"
    (pct h.gray_step_saving_ternary)
    (pct h.tree_multivalued_overhead)
    (pct h.variability_saving)
    (pct h.yield_gain_length_tc)
    (pct h.yield_gain_bgc_vs_tc)
    (pct h.yield_gain_ahc_vs_hc)
    (pct h.area_saving_tc_length)
    (pct h.density_gain_bgc_vs_tc)
    (pct h.area_saving_ahc_vs_hc)
    area (Codebook.name ct) m
