open Nanodec_codes

let log_src = Logs.Src.create "nanodec.optimizer" ~doc:"Design-space search"

module Log = (val Logs.src_log log_src)

type objective = Max_yield | Min_bit_area | Min_fabrication | Min_variability

type candidate = {
  code_type : Codebook.t;
  code_length : int;
}

let default_candidates =
  List.concat_map
    (fun code_type ->
      List.map (fun code_length -> { code_type; code_length }) [ 4; 6; 8; 10; 12 ])
    Codebook.all_types

let valid ~spec { code_type; code_length } =
  let radix = spec.Design.cave.Nanodec_crossbar.Cave.radix in
  match Codebook.validate_length ~radix ~length:code_length code_type with
  | Ok () -> true
  | Error _ -> false

module Telemetry = Nanodec_telemetry.Telemetry
module Run_ctx = Nanodec_parallel.Run_ctx

let sweep ?ctx ?(spec = Design.default_spec)
    ?(candidates = default_candidates) () =
  let ctx = Run_ctx.resolve ?ctx () in
  let tel = Run_ctx.telemetry ctx in
  let evaluate { code_type; code_length } =
    Telemetry.with_span tel "optimizer.evaluate" @@ fun () ->
    match
      Design.evaluate (Design.spec ~base:spec ~code_type ~code_length ())
    with
    | report -> Ok report
    | exception
        ( Nanodec_codes.Balanced_gray.Search_exhausted
        | Nanodec_codes.Arranged_hot.Search_exhausted ) ->
      (* Exact code-construction searches are bounded; drop candidates
         whose space is out of reach rather than aborting the sweep. *)
      Error { code_type; code_length }
  in
  (* Candidates evaluate across the pool; the outcome list keeps the
     candidate order, so the sweep is domain-count invariant.  Skip
     warnings are logged here, after the join, to keep the chunk bodies
     free of shared logging state. *)
  Telemetry.with_span tel "optimizer.sweep" @@ fun () ->
  let live = List.filter (valid ~spec) candidates in
  Telemetry.count tel "optimizer.candidates" (List.length live);
  Run_ctx.map_list ctx evaluate live
  |> List.filter_map (function
       | Ok report -> Some report
       | Error { code_type; code_length } ->
         Log.warn (fun m ->
             m "skipping %s M=%d: exact construction out of search range"
               (Codebook.name code_type) code_length);
         None)

let score objective (r : Design.report) =
  match objective with
  | Max_yield -> -.r.Design.crossbar_yield
  | Min_bit_area -> r.Design.bit_area
  | Min_fabrication ->
    (* Primary: Φ; secondary: yield (negated, scaled below 1 per unit). *)
    float_of_int r.Design.phi -. (r.Design.crossbar_yield /. 2.)
  | Min_variability ->
    r.Design.sigma_norm1 -. (r.Design.crossbar_yield /. 1000.)

let best ?ctx ?spec ?candidates objective =
  match sweep ?ctx ?spec ?candidates () with
  | [] -> invalid_arg "Optimizer.best: no valid candidate"
  | first :: rest ->
    let winner =
      List.fold_left
        (fun acc r ->
          if score objective r < score objective acc then r else acc)
        first rest
    in
    Log.info (fun m ->
        m "winner: %s M=%d (Y^2=%.3f, %.1f nm^2/bit)"
          (Codebook.name
             winner.Design.spec.Design.cave.Nanodec_crossbar.Cave.code_type)
          winner.Design.spec.Design.cave.Nanodec_crossbar.Cave.code_length
          winner.Design.crossbar_yield winner.Design.bit_area);
    winner

let dominates (a : Design.report) (b : Design.report) =
  a.Design.crossbar_yield >= b.Design.crossbar_yield
  && a.Design.bit_area <= b.Design.bit_area
  && (a.Design.crossbar_yield > b.Design.crossbar_yield
     || a.Design.bit_area < b.Design.bit_area)

let pareto_yield_area reports =
  let non_dominated r = not (List.exists (fun other -> dominates other r) reports) in
  List.sort
    (fun a b -> Float.compare a.Design.bit_area b.Design.bit_area)
    (List.filter non_dominated reports)
