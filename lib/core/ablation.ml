open Nanodec_codes
open Nanodec_crossbar

type point = {
  value : float;
  tree_yield : float;
  bgc_yield : float;
}

type series = {
  parameter : string;
  unit_name : string;
  points : point list;
}

let crossbar_yield cave =
  (Array_sim.evaluate { Array_sim.cave; raw_bits = 16 * 1024 * 8 })
    .Array_sim.crossbar_yield

module Telemetry = Nanodec_telemetry.Telemetry
module Run_ctx = Nanodec_parallel.Run_ctx

let sweep ?ctx ~parameter ~unit_name ~values ~apply () =
  let ctx = Run_ctx.resolve ?ctx () in
  let base = { Cave.default_config with Cave.code_length = 8 } in
  let points =
    Telemetry.with_span (Run_ctx.telemetry ctx) ("ablation." ^ parameter)
    @@ fun () ->
    Run_ctx.map_list ctx
      (fun value ->
        let at code_type =
          crossbar_yield (apply { base with Cave.code_type } value)
        in
        {
          value;
          tree_yield = at Codebook.Tree;
          bgc_yield = at Codebook.Balanced_gray;
        })
      values
  in
  { parameter; unit_name; points }

let sigma_t ?ctx () =
  sweep ?ctx ~parameter:"sigma_T" ~unit_name:"V"
    ~values:[ 0.01; 0.03; 0.05; 0.08; 0.12 ]
    ~apply:(fun c sigma_t -> { c with Cave.sigma_t })
    ()

let sigma_base ?ctx () =
  sweep ?ctx ~parameter:"sigma_0" ~unit_name:"V"
    ~values:[ 0.0; 0.05; 0.10; 0.15; 0.20 ]
    ~apply:(fun c v -> { c with Cave.sigma_base = v })
    ()

let margin ?ctx () =
  sweep ?ctx ~parameter:"window margin" ~unit_name:"x separation"
    ~values:[ 0.20; 0.30; 0.42; 0.50 ]
    ~apply:(fun c margin_fraction -> { c with Cave.margin_fraction })
    ()

let overlay ?ctx () =
  sweep ?ctx ~parameter:"pad overlay" ~unit_name:"nm"
    ~values:[ 0.; 8.; 16.; 24.; 28. ]
    ~apply:(fun c v ->
      { c with Cave.rules = { c.Cave.rules with Geometry.pad_overlap = v } })
    ()

let cave_wires ?ctx () =
  sweep ?ctx ~parameter:"wires per half cave" ~unit_name:"wires"
    ~values:[ 10.; 20.; 30.; 40.; 60. ]
    ~apply:(fun c v -> { c with Cave.n_wires = int_of_float v })
    ()

let all ?ctx () =
  [ sigma_t ?ctx (); sigma_base ?ctx (); margin ?ctx ();
    overlay ?ctx (); cave_wires ?ctx () ]

let conclusion_holds series =
  List.for_all (fun p -> p.bgc_yield >= p.tree_yield -. 1e-9) series.points

let pp ppf series =
  Format.fprintf ppf "@[<v>%s [%s]:@," series.parameter series.unit_name;
  List.iter
    (fun p ->
      Format.fprintf ppf "  %8.3g   TC %5.1f%%   BGC %5.1f%%   (BGC/TC %.2fx)@,"
        p.value (100. *. p.tree_yield) (100. *. p.bgc_yield)
        (if p.tree_yield > 0. then p.bgc_yield /. p.tree_yield else infinity))
    series.points;
  Format.fprintf ppf "  conclusion (BGC >= TC) holds everywhere: %b@]"
    (conclusion_holds series)
