open Nanodec_codes
open Nanodec_numerics

let lines_to_csv header rows =
  String.concat "\n" (header :: rows) ^ "\n"

let fig5_csv () =
  lines_to_csv "radix,code,length,phi"
    (List.map
       (fun (p : Figures.fig5_point) ->
         Printf.sprintf "%d,%s,%d,%d" p.radix
           (Codebook.name p.code_type)
           p.code_length p.phi)
       (Figures.fig5 ()))

let fig6_csv () =
  let rows =
    List.concat_map
      (fun (s : Figures.fig6_surface) ->
        let m = s.normalized_std in
        List.concat
          (List.init (Fmatrix.rows m) (fun i ->
               List.init (Fmatrix.cols m) (fun j ->
                   Printf.sprintf "%s,%d,%d,%d,%.6f"
                     (Codebook.name s.code_type)
                     s.code_length (i + 1) (j + 1) (Fmatrix.get m i j)))))
      (Figures.fig6 ())
  in
  lines_to_csv "code,length,wire,digit,sqrt_nu" rows

let fig7_csv () =
  lines_to_csv "code,length,crossbar_yield"
    (List.map
       (fun (p : Figures.fig7_point) ->
         Printf.sprintf "%s,%d,%.6f"
           (Codebook.name p.code_type)
           p.code_length p.crossbar_yield)
       (Figures.fig7 ()))

let fig8_csv () =
  lines_to_csv "code,length,bit_area_nm2"
    (List.map
       (fun (p : Figures.fig8_point) ->
         Printf.sprintf "%s,%d,%.3f"
           (Codebook.name p.code_type)
           p.code_length p.bit_area)
       (Figures.fig8 ()))

let sweep_csv ?spec () =
  let rows =
    List.map
      (fun (r : Design.report) ->
        let c = r.Design.spec.Design.cave in
        Printf.sprintf "%s,%d,%d,%d,%d,%.6f,%.6f,%.6f,%.3f,%d,%d"
          (Codebook.name c.Nanodec_crossbar.Cave.code_type)
          c.Nanodec_crossbar.Cave.radix c.Nanodec_crossbar.Cave.code_length
          r.Design.omega r.Design.phi r.Design.average_nu r.Design.cave_yield
          r.Design.crossbar_yield r.Design.bit_area r.Design.n_pads
          r.Design.removed_wires)
      (Optimizer.sweep ?spec ())
  in
  lines_to_csv
    "code,radix,length,omega,phi,average_nu,cave_yield,crossbar_yield,bit_area,pads,removed"
    rows

let gnuplot_script figure =
  match figure with
  | `Fig5 ->
    String.concat "\n"
      [
        "# Fig. 5 — fabrication complexity per code and logic type";
        "set terminal pngcairo size 800,500";
        "set output 'fig5.png'";
        "set datafile separator ','";
        "set style data histograms";
        "set style fill solid 0.8 border -1";
        "set ylabel 'fabrication complexity (steps)'";
        "set yrange [15:*]";
        "set key top left";
        "plot 'fig5.csv' using (column(4)):xtic(sprintf('%s n=%d', \\";
        "     stringcolumn(2), column(1))) every ::1 title 'Phi'";
        "";
      ]
  | `Fig7 ->
    String.concat "\n"
      [
        "# Fig. 7 — crossbar yield vs code length";
        "set terminal pngcairo size 800,500";
        "set output 'fig7.png'";
        "set datafile separator ','";
        "set xlabel 'code length M'";
        "set ylabel 'crossbar yield'";
        "set yrange [0:1]";
        "set key top left";
        "plot for [code in 'TC BGC HC AHC'] \\";
        "     '< grep ^'.code.', fig7.csv' using 2:3 \\";
        "     with linespoints title code";
        "";
      ]
  | `Fig8 ->
    String.concat "\n"
      [
        "# Fig. 8 — bit area per code type and length";
        "set terminal pngcairo size 800,500";
        "set output 'fig8.png'";
        "set datafile separator ','";
        "set xlabel 'code length M'";
        "set ylabel 'bit area [nm^2]'";
        "set key top right";
        "plot for [code in 'TC GC BGC HC AHC'] \\";
        "     '< grep ^'.code.', fig8.csv' using 2:3 \\";
        "     with linespoints title code";
        "";
      ]

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_all ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (name, contents) -> write_file (Filename.concat dir name) contents)
    [
      ("fig5.csv", fig5_csv ());
      ("fig6.csv", fig6_csv ());
      ("fig7.csv", fig7_csv ());
      ("fig8.csv", fig8_csv ());
      ("sweep.csv", sweep_csv ());
      ("fig5.gp", gnuplot_script `Fig5);
      ("fig7.gp", gnuplot_script `Fig7);
      ("fig8.gp", gnuplot_script `Fig8);
    ]
