module E = Nanodec_error
module Fault = Nanodec_fault.Fault

let search_exhausted_hint =
  "exact code construction is bounded: balanced-Gray needs a search space \
   (radix^M) of at most 4096 for N=2 and 32 otherwise; arranged-hot needs \
   at most 2048 codewords — pick a smaller code length M (or radix N), or \
   use an unsearched code family"

let classify = function
  | E.Error t -> Some t
  | Nanodec_codes.Balanced_gray.Search_exhausted ->
    Some
      (E.Invalid_input
         {
           what = "balanced-Gray construction: search exhausted";
           hint = Some search_exhausted_hint;
         })
  | Nanodec_codes.Arranged_hot.Search_exhausted ->
    Some
      (E.Invalid_input
         {
           what = "arranged-hot construction: search exhausted";
           hint = Some search_exhausted_hint;
         })
  | Fault.Injected { site; key } ->
    (* An injected crash that escaped with no supervised pool in the
       loop (a fan-out-free site such as [telemetry.flush]). *)
    Some
      (E.Worker_crash
         {
           site;
           detail = Printf.sprintf "injected crash (key %d)" key;
           injected = true;
         })
  | Invalid_argument what | Failure what ->
    Some (E.Invalid_input { what; hint = None })
  | _ -> None

let guard f =
  try f () with
  | E.Error _ as e -> raise e
  | e -> (
    let bt = Printexc.get_raw_backtrace () in
    match classify e with
    | Some t -> raise (E.Error t)
    | None -> Printexc.raise_with_backtrace e bt)
