(** Technology-scaling study: how the decoder conclusions move across
    lithography nodes and memory sizes.

    The paper fixes PL = 32 nm, PN = 10 nm and 16 kB.  A natural question
    for a designer is how the optimal code family and length shift as the
    lithography shrinks (contact pads and mesowires get cheaper relative
    to the sub-litho array) or the memory grows (decoder overhead
    amortises).  Every point re-runs the full design flow. *)

type node = {
  label : string;
  litho_pitch : float;  (** PL, nm *)
  nanowire_pitch : float;  (** PN, nm *)
}

val default_nodes : node list
(** 65/45/32/22-nm-class nodes with proportionally scaled overlay margins
    and a fixed 10 nm nanowire pitch (the spacer process is litho
    independent). *)

type point = {
  node : node;
  raw_bits : int;
  best_code : Nanodec_codes.Codebook.t;
  best_length : int;
  best_bit_area : float;
  crossbar_yield : float;
}

val sweep_nodes :
  ?ctx:Nanodec_parallel.Run_ctx.t ->
  ?raw_bits:int ->
  ?nodes:node list ->
  unit ->
  point list
(** Minimum-bit-area design per node (span [scaling.nodes]).  Nodes
    evaluate across the context's pool; the inner per-node sweep also
    receives the context, so while the grid is fanned out it runs
    inline on the submitting domain (counted by
    {!Nanodec_parallel.Pool.inline_submissions}).  Results are
    identical for every domain count.  The pool rides inside [?ctx]
    ([Run_ctx.make ~pool ()]). *)

val sweep_memory_sizes :
  ?ctx:Nanodec_parallel.Run_ctx.t ->
  ?sizes:int list ->
  unit ->
  point list
(** Minimum-bit-area design per raw density (default 4 kB – 256 kB) on
    the paper's 32 nm node (span [scaling.memory_sizes]). *)

val pp_point : Format.formatter -> point -> unit
