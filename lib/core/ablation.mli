(** Ablation studies: do the paper's conclusions survive moving the
    calibrated parameters?

    Each ablation sweeps one platform parameter and records the crossbar
    yield of the baseline code (TC, M = 8) and the optimized code
    (BGC, M = 8) at every point.  The paper's central qualitative claim —
    the balanced Gray code beats the tree code — should hold across the
    whole sweep; {!conclusion_holds} checks exactly that. *)

type point = {
  value : float;  (** swept parameter value *)
  tree_yield : float;  (** crossbar yield Y² of TC, M = 8 *)
  bgc_yield : float;  (** crossbar yield Y² of BGC, M = 8 *)
}

type series = {
  parameter : string;
  unit_name : string;
  points : point list;
}

val sweep :
  ?ctx:Nanodec_parallel.Run_ctx.t ->
  parameter:string ->
  unit_name:string ->
  values:float list ->
  apply:(Nanodec_crossbar.Cave.config -> float -> Nanodec_crossbar.Cave.config) ->
  unit ->
  series
(** Generic one-parameter ablation on the paper's platform (span
    [ablation.<parameter>]).  The swept values evaluate across the
    context's pool with identical results for every domain count.  The
    pool rides inside [?ctx] ([Run_ctx.make ~pool ()]). *)

val sigma_t :
  ?ctx:Nanodec_parallel.Run_ctx.t ->
  unit ->
  series
(** Per-implant noise, 10–120 mV. *)

val sigma_base :
  ?ctx:Nanodec_parallel.Run_ctx.t ->
  unit ->
  series
(** Intrinsic variability, 0–200 mV. *)

val margin :
  ?ctx:Nanodec_parallel.Run_ctx.t ->
  unit ->
  series
(** Addressability window fraction, 0.2–0.5. *)

val overlay :
  ?ctx:Nanodec_parallel.Run_ctx.t ->
  unit ->
  series
(** Pad overlay margin, 0–28 nm. *)

val cave_wires :
  ?ctx:Nanodec_parallel.Run_ctx.t ->
  unit ->
  series
(** Nanowires per half cave, 10–60. *)

val all :
  ?ctx:Nanodec_parallel.Run_ctx.t ->
  unit ->
  series list
(** Every ablation of the battery, in presentation order. *)

val conclusion_holds : series -> bool
(** BGC yield ≥ TC yield at every swept point. *)

val pp : Format.formatter -> series -> unit
