(** Data generators for every figure of the paper's evaluation
    (Section 6) plus its headline numbers.  The bench harness and the CLI
    print these; EXPERIMENTS.md records them against the paper. *)

open Nanodec_codes
open Nanodec_numerics

(** {1 Fig. 5 — fabrication complexity vs code and logic type} *)

type fig5_point = {
  radix : int;
  code_type : Codebook.t;
  code_length : int;  (** minimal valid M with Ω ≥ N *)
  phi : int;
}

val fig5 : ?n_wires:int -> unit -> fig5_point list
(** Tree and Gray codes for binary, ternary and quaternary logic;
    [n_wires] defaults to the paper's 10. *)

(** {1 Fig. 6 — variability maps} *)

type fig6_surface = {
  code_type : Codebook.t;
  code_length : int;
  normalized_std : Fmatrix.t;  (** √ν per (wire, digit) — the plotted z *)
  mean_nu : float;
  max_std : float;  (** max √ν *)
}

val fig6 : ?n_wires:int -> unit -> fig6_surface list
(** TC, GC and BGC at lengths 8 and 10 over [n_wires] (default 20)
    binary-coded nanowires. *)

val fig6_multivalued : ?n_wires:int -> radix:int -> unit -> fig6_surface list
(** The paper's "similar results were obtained for these codes with a
    higher logic level": variability surfaces for TC and GC at the minimal
    covering length for the given radix, plus BGC where the exact balanced
    search is tractable (space size ≤ 32). *)

(** {1 Fig. 7 — crossbar yield vs code length} *)

type fig7_point = {
  code_type : Codebook.t;
  code_length : int;
  crossbar_yield : float;
}

val fig7_candidates : (Codebook.t * int) list
(** The figure's grid — TC/BGC at M ∈ 6,8,10 and HC/AHC at M ∈ 4,6,8 —
    exposed for the Monte-Carlo bench workload. *)

val fig7 :
  ?ctx:Nanodec_parallel.Run_ctx.t ->
  ?spec:Design.spec ->
  unit ->
  fig7_point list
(** TC/BGC at M ∈ 6,8,10 and HC/AHC at M ∈ 4,6,8, on the paper platform.
    The context's pool fans the points out across its domains (span
    [figures.fig7]); the result is identical for every domain count.
    The pool rides inside [?ctx] ([Run_ctx.make ~pool ()]). *)

(** {1 Fig. 8 — bit area vs code type and length} *)

type fig8_point = {
  code_type : Codebook.t;
  code_length : int;
  bit_area : float;
}

val fig8 :
  ?ctx:Nanodec_parallel.Run_ctx.t ->
  ?spec:Design.spec ->
  unit ->
  fig8_point list
(** All five families at M ∈ 6,8,10 (span [figures.fig8]). *)

(** {1 Extension — multi-valued decoder designs}

    The paper motivates multi-valued logic as a way to shrink the decoder
    ("higher logic level was suggested as a way to reduce the area
    overhead", Section 6.2) but evaluates yield and area for binary codes
    only.  This extension completes the picture: yield and bit area for
    the tree and Gray families at radix 2, 3 and 4. *)

type multivalued_point = {
  radix : int;
  code_type : Codebook.t;
  code_length : int;
  crossbar_yield : float;
  bit_area : float;
  phi : int;
}

val multivalued_designs :
  ?ctx:Nanodec_parallel.Run_ctx.t ->
  ?spec:Design.spec ->
  unit ->
  multivalued_point list
(** TC and GC at every radix in 2..4, at the two smallest valid lengths
    covering the half cave (span [figures.multivalued]). *)

(** {1 Headline numbers} *)

type headlines = {
  gray_step_saving_ternary : float;
      (** fabrication-step saving of GC vs TC, ternary logic (paper: 17 %) *)
  tree_multivalued_overhead : float;
      (** extra steps of ternary TC vs binary TC (paper: ~20 %) *)
  variability_saving : float;
      (** average-variability saving of BGC vs TC at M = 8 (paper: 18 %) *)
  yield_gain_length_tc : float;
      (** crossbar-yield gain of TC M 6→10 (paper: ~40 points) *)
  yield_gain_bgc_vs_tc : float;
      (** relative yield gain of BGC vs TC at M = 8 (paper: 42 %) *)
  yield_gain_ahc_vs_hc : float;
      (** relative yield gain of AHC vs HC at M = 8 (paper: 19 %) *)
  area_saving_tc_length : float;
      (** bit-area saving of TC M 6→10 (paper: 51 %) *)
  density_gain_bgc_vs_tc : float;
      (** bit-area saving of BGC vs TC at M = 8 (paper: ~30 %) *)
  area_saving_ahc_vs_hc : float;
      (** bit-area saving of AHC vs HC at M = 6 (paper: 13 %) *)
  best_bit_area : float * Codebook.t * int;
      (** smallest bit area over all designs (paper: 169 nm², BGC, M=10) *)
}

val headlines : ?spec:Design.spec -> unit -> headlines

val pp_headlines : Format.formatter -> headlines -> unit
