(** Decoder design evaluation — the paper's contribution as one call.

    A design is a choice of code family, logic valence and code length on
    the MSPT crossbar platform.  {!evaluate} runs the full pipeline —
    code generation, pattern matrix, fabrication complexity Φ, variability
    Σ, contact geometry, yield and area — and returns every quantity the
    paper reports. *)

open Nanodec_codes
open Nanodec_crossbar

type spec = {
  cave : Cave.config;
  raw_bits : int;  (** raw crossbar density D_RAW, crosspoints *)
}

val default_spec : spec
(** The paper's simulation platform (Section 6.1): 16 kB raw density,
    PL 32 nm, PN 10 nm, σ_T 50 mV, N = 20 wires per half cave, binary
    balanced Gray code of length 10. *)

val spec :
  ?base:spec ->
  ?radix:int ->
  ?n_wires:int ->
  code_type:Codebook.t ->
  code_length:int ->
  unit ->
  spec
(** Convenience constructor: [base] defaults to {!default_spec}. *)

type report = {
  spec : spec;
  omega : int;  (** code space size *)
  phi : int;  (** fabrication complexity Φ (extra litho/doping passes) *)
  phi_per_wire : float;  (** Φ / N *)
  sigma_norm1 : float;  (** ‖Σ‖₁, volt² *)
  average_nu : float;  (** mean doping-operation count per region *)
  max_nu : int;
  pattern_transitions : int;  (** digit transitions between adjacent wires *)
  cave_yield : float;  (** Y *)
  crossbar_yield : float;  (** Y² *)
  effective_bits : float;  (** D_EFF *)
  bit_area : float;  (** nm² per functional bit *)
  area : float;  (** total crossbar area, nm² *)
  n_pads : int;  (** contact groups per half cave *)
  removed_wires : int;  (** wires lost to shared / duplicated contacts *)
}

val evaluate : spec -> report

val pp_report : Format.formatter -> report -> unit

val report_header : string
(** Column header matching {!report_row}. *)

val report_row : report -> string
(** One-line tabular rendering (for sweeps and CSV-ish output). *)
