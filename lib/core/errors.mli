(** The taxonomy boundary of the high-level pipelines.

    Everything below this layer fails by raising whatever is natural in
    place — [Invalid_argument] for contract violations,
    [Search_exhausted] from the exact code-construction searches,
    {!Nanodec_fault.Fault.Injected} from an unrecovered injected crash,
    [Nanodec_error.Error] from the supervised pool.  {!classify} folds
    all of those into the structured {!Nanodec_error.t} taxonomy, and
    {!guard} is the one-line wrapper the CLI (and any embedding
    application) puts around a whole command so that every failure
    surfaces as exactly one [Nanodec_error.Error] with a stable exit
    code. *)

val search_exhausted_hint : string
(** The feasible-range hint attached to [Search_exhausted] failures:
    which (N, M) the exact balanced-Gray / arranged-hot constructions
    can actually reach. *)

val classify : exn -> Nanodec_error.t option
(** Map an exception to its taxonomy bucket: [Nanodec_error.Error]
    unwraps to its payload; the code constructors' [Search_exhausted]
    becomes [Invalid_input] with {!search_exhausted_hint}; an escaped
    {!Nanodec_fault.Fault.Injected} becomes an (injected)
    [Worker_crash]; [Invalid_argument]/[Failure] become [Invalid_input];
    anything else is [None] (let it crash — a genuine bug should keep
    its backtrace). *)

val guard : (unit -> 'a) -> 'a
(** [guard f] runs [f] and re-raises any classifiable exception as
    [Nanodec_error.Error] (unclassifiable exceptions propagate
    unchanged, backtrace intact). *)
