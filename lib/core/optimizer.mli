(** Decoder design-space exploration.

    Sweeps code families and lengths on a fixed platform and picks the
    design optimising a chosen objective — the workflow behind the paper's
    "optimizing the decoder parameters" claims (40 % yield, 169 nm²/bit). *)

open Nanodec_codes

type objective =
  | Max_yield  (** maximise crossbar yield Y² *)
  | Min_bit_area  (** minimise area per functional bit *)
  | Min_fabrication  (** minimise Φ, ties broken by yield *)
  | Min_variability  (** minimise ‖Σ‖₁, ties broken by yield *)

type candidate = {
  code_type : Codebook.t;
  code_length : int;
}

val default_candidates : candidate list
(** The paper's grid: all five families × M ∈ 4,6,8,10,12 (invalid
    combinations dropped). *)

val sweep :
  ?ctx:Nanodec_parallel.Run_ctx.t ->
  ?spec:Design.spec ->
  ?candidates:candidate list ->
  unit ->
  Design.report list
(** Evaluates every valid candidate on the platform of [spec].  Candidates
    whose exact code construction is out of search range (balanced-Gray or
    arranged-hot spaces beyond the documented limits) are skipped with a
    warning rather than aborting the sweep.  The execution context
    supplies the pool and telemetry (spans [optimizer.sweep] /
    [optimizer.evaluate], counter [optimizer.candidates]); candidates
    evaluate across the pool's domains and the report list (order
    included) is identical for every domain count.  The pool rides
    inside [?ctx] ([Run_ctx.make ~pool ()]). *)

val best :
  ?ctx:Nanodec_parallel.Run_ctx.t ->
  ?spec:Design.spec ->
  ?candidates:candidate list ->
  objective ->
  Design.report
(** The sweep's winner under [objective]. *)

val score : objective -> Design.report -> float
(** Scalar score (lower is better) used by {!best}; exposed for tests. *)

val pareto_yield_area : Design.report list -> Design.report list
(** Designs not dominated in (yield, bit area) — higher yield and lower
    bit area both count as better.  Sorted by increasing bit area. *)
