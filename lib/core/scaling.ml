open Nanodec_codes
open Nanodec_crossbar

type node = {
  label : string;
  litho_pitch : float;
  nanowire_pitch : float;
}

let default_nodes =
  [
    { label = "65nm-class"; litho_pitch = 65.; nanowire_pitch = 10. };
    { label = "45nm-class"; litho_pitch = 45.; nanowire_pitch = 10. };
    { label = "32nm-class (paper)"; litho_pitch = 32.; nanowire_pitch = 10. };
    { label = "22nm-class"; litho_pitch = 22.; nanowire_pitch = 10. };
  ]

type point = {
  node : node;
  raw_bits : int;
  best_code : Codebook.t;
  best_length : int;
  best_bit_area : float;
  crossbar_yield : float;
}

let spec_for node raw_bits =
  let base_rules = Geometry.default_rules in
  (* Overlay alignment scales with the node; pads keep the 1.5 PL rule. *)
  let rules =
    {
      base_rules with
      Geometry.litho_pitch = node.litho_pitch;
      pad_overlap = 0.75 *. node.litho_pitch;
      nanowire_pitch = node.nanowire_pitch;
    }
  in
  {
    Design.cave = { Cave.default_config with Cave.rules };
    raw_bits;
  }

module Telemetry = Nanodec_telemetry.Telemetry
module Run_ctx = Nanodec_parallel.Run_ctx

let best_point ?ctx node raw_bits =
  let spec = spec_for node raw_bits in
  let report = Optimizer.best ?ctx ~spec Optimizer.Min_bit_area in
  let cave = report.Design.spec.Design.cave in
  {
    node;
    raw_bits;
    best_code = cave.Cave.code_type;
    best_length = cave.Cave.code_length;
    best_bit_area = report.Design.bit_area;
    crossbar_yield = report.Design.crossbar_yield;
  }

(* The grid parallelises over nodes/sizes.  The context also flows into
   each grid point's inner [Optimizer.best]: submitted from inside a
   chunk while the pool is busy, those sweeps run inline on the
   submitting domain — same results, and the pool's inline-submission
   counter now makes that path visible. *)
let sweep_grid ?ctx name point items =
  let ctx = Run_ctx.resolve ?ctx () in
  Telemetry.with_span (Run_ctx.telemetry ctx) name @@ fun () ->
  Run_ctx.map_list ctx (point ctx) items

let sweep_nodes ?ctx ?(raw_bits = 16 * 1024 * 8) ?(nodes = default_nodes)
    () =
  sweep_grid ?ctx "scaling.nodes"
    (fun ctx node -> best_point ~ctx node raw_bits)
    nodes

let paper_node = { label = "32nm-class (paper)"; litho_pitch = 32.; nanowire_pitch = 10. }

let sweep_memory_sizes ?ctx ?(sizes = [ 4; 16; 64; 256 ]) () =
  sweep_grid ?ctx "scaling.memory_sizes"
    (fun ctx kb -> best_point ~ctx paper_node (kb * 1024 * 8))
    sizes

let pp_point ppf p =
  Format.fprintf ppf
    "%-20s %8d bits: best %s M=%d -> %.0f nm^2/bit (Y^2=%.2f)" p.node.label
    p.raw_bits
    (Codebook.name p.best_code)
    p.best_length p.best_bit_area p.crossbar_yield
