open Nanodec_codes
open Nanodec_crossbar

type node = {
  label : string;
  litho_pitch : float;
  nanowire_pitch : float;
}

let default_nodes =
  [
    { label = "65nm-class"; litho_pitch = 65.; nanowire_pitch = 10. };
    { label = "45nm-class"; litho_pitch = 45.; nanowire_pitch = 10. };
    { label = "32nm-class (paper)"; litho_pitch = 32.; nanowire_pitch = 10. };
    { label = "22nm-class"; litho_pitch = 22.; nanowire_pitch = 10. };
  ]

type point = {
  node : node;
  raw_bits : int;
  best_code : Codebook.t;
  best_length : int;
  best_bit_area : float;
  crossbar_yield : float;
}

let spec_for node raw_bits =
  let base_rules = Geometry.default_rules in
  (* Overlay alignment scales with the node; pads keep the 1.5 PL rule. *)
  let rules =
    {
      base_rules with
      Geometry.litho_pitch = node.litho_pitch;
      pad_overlap = 0.75 *. node.litho_pitch;
      nanowire_pitch = node.nanowire_pitch;
    }
  in
  {
    Design.cave = { Cave.default_config with Cave.rules };
    raw_bits;
  }

let best_point node raw_bits =
  let spec = spec_for node raw_bits in
  let report = Optimizer.best ~spec Optimizer.Min_bit_area in
  let cave = report.Design.spec.Design.cave in
  {
    node;
    raw_bits;
    best_code = cave.Cave.code_type;
    best_length = cave.Cave.code_length;
    best_bit_area = report.Design.bit_area;
    crossbar_yield = report.Design.crossbar_yield;
  }

(* The grid parallelises over nodes/sizes; each grid point's inner sweep
   stays sequential (a nested submission would run inline anyway). *)
let sweep_nodes ?pool ?(raw_bits = 16 * 1024 * 8) ?(nodes = default_nodes) () =
  Nanodec_parallel.Pool.map_list_opt pool
    (fun node -> best_point node raw_bits)
    nodes

let paper_node = { label = "32nm-class (paper)"; litho_pitch = 32.; nanowire_pitch = 10. }

let sweep_memory_sizes ?pool ?(sizes = [ 4; 16; 64; 256 ]) () =
  Nanodec_parallel.Pool.map_list_opt pool
    (fun kb -> best_point paper_node (kb * 1024 * 8))
    sizes

let pp_point ppf p =
  Format.fprintf ppf
    "%-20s %8d bits: best %s M=%d -> %.0f nm^2/bit (Y^2=%.2f)" p.node.label
    p.raw_bits
    (Codebook.name p.best_code)
    p.best_length p.best_bit_area p.crossbar_yield
