type placement = Centered | Spread of float

type t = {
  radix : int;
  supply_voltage : float;
  placement : placement;
  mosfet : Mosfet.params;
  (* Doping levels are relatively expensive (bisection); computed once. *)
  dopings : float array Lazy.t;
}

let separation_of ~placement ~radix ~supply =
  match placement with
  | Centered -> supply /. float_of_int radix
  | Spread rail -> (1. -. (2. *. rail)) *. supply /. float_of_int (radix - 1)

let vt_of_digit_raw ~placement ~radix ~supply d =
  match placement with
  | Centered -> float_of_int ((2 * d) + 1) /. float_of_int (2 * radix) *. supply
  | Spread rail ->
    (rail *. supply)
    +. (float_of_int d *. separation_of ~placement ~radix ~supply)

(* The evenly spaced 0..V_DD levels sit below the achievable V_T window of
   the raw device model (whose V_T(n_i..) starts higher); shift by the
   model's minimum so every level has a realising doping.  The shift is a
   constant, so monotonicity — all the analysis needs — is untouched. *)
let physical_vt mosfet ~placement ~radix ~supply d =
  let vt_low, _ = Mosfet.doping_range mosfet in
  vt_of_digit_raw ~placement ~radix ~supply d +. vt_low +. (0.05 *. supply)

let make ?(mosfet = Mosfet.default_params) ?(supply_voltage = 1.0)
    ?(placement = Spread 0.1) ~radix () =
  if radix < 2 then invalid_arg "Vt_levels.make: radix must be >= 2";
  if supply_voltage <= 0. then
    invalid_arg "Vt_levels.make: supply voltage must be positive";
  (match placement with
   | Centered -> ()
   | Spread rail ->
     if not (rail >= 0. && rail < 0.5) then
       invalid_arg "Vt_levels.make: rail margin outside [0, 0.5)");
  let dopings =
    lazy
      (Array.init radix (fun d ->
           Mosfet.doping_of_vt mosfet
             ~vt:(physical_vt mosfet ~placement ~radix ~supply:supply_voltage d)))
  in
  { radix; supply_voltage; placement; mosfet; dopings }

let radix t = t.radix
let supply_voltage t = t.supply_voltage

let separation t =
  separation_of ~placement:t.placement ~radix:t.radix ~supply:t.supply_voltage

let check_digit t d =
  if d < 0 || d >= t.radix then
    invalid_arg (Printf.sprintf "Vt_levels: digit %d outside [0, %d)" d t.radix)

let vt_of_digit t d =
  check_digit t d;
  vt_of_digit_raw ~placement:t.placement ~radix:t.radix
    ~supply:t.supply_voltage d

let digit_of_vt t vt =
  (* Nearest level. *)
  let best = ref 0 in
  for d = 1 to t.radix - 1 do
    if Float.abs (vt -. vt_of_digit t d) < Float.abs (vt -. vt_of_digit t !best)
    then best := d
  done;
  !best

let doping_of_digit t d =
  check_digit t d;
  (Lazy.force t.dopings).(d)

let digit_of_doping t doping =
  let dopings = Lazy.force t.dopings in
  let best = ref 0 in
  for d = 1 to t.radix - 1 do
    if Float.abs (log (doping /. dopings.(d)))
       < Float.abs (log (doping /. dopings.(!best)))
    then best := d
  done;
  !best

let address_window t ~margin_fraction =
  if not (margin_fraction > 0. && margin_fraction <= 0.5) then
    invalid_arg "Vt_levels.address_window: margin_fraction outside (0, 0.5]";
  margin_fraction *. separation t

let levels t = Array.init t.radix (vt_of_digit t)
