let electron_charge = 1.602176634e-19
let boltzmann = 1.380649e-23
let room_temperature = 300.
let vacuum_permittivity = 8.8541878128e-12
let silicon_permittivity = 11.7 *. vacuum_permittivity
let oxide_permittivity = 3.9 *. vacuum_permittivity
let intrinsic_carrier_concentration = 1.0e10

let thermal_voltage ~temperature =
  boltzmann *. temperature /. electron_charge

let cm3_to_m3 concentration = concentration *. 1.0e6
