(** Threshold-voltage discretisation for multi-valued addressing.

    The paper distributes the [n] threshold voltages over 0–1 V (its
    maximum supply voltage) and maps each digit [0..n-1] to a voltage level
    (the discrete ordering [g] of Proposition 1) and onward to the unique
    doping concentration realising it (the device function [f] of
    {!Mosfet}); the composition is the bijection [h]. *)

type t

type placement =
  | Centered
      (** levels at {m (2d+1)/(2n)·V_{DD}} — each level centred in its bin,
          separation {m V_{DD}/n} *)
  | Spread of float
      (** [Spread rail_margin]: levels spanning
          {m [rail·V_{DD}, (1-rail)·V_{DD}]} with equal spacing — the
          paper's "V_T distributed within the range 0 to 1 V", separation
          {m (1-2·rail)·V_{DD}/(n-1)} *)

val make :
  ?mosfet:Mosfet.params ->
  ?supply_voltage:float ->
  ?placement:placement ->
  radix:int ->
  unit ->
  t
(** [make ~radix ()] uses [Spread 0.1] placement and the paper's 1 V
    supply by default. *)

val radix : t -> int
val supply_voltage : t -> float

val separation : t -> float
(** Distance between adjacent levels, {m V_{DD}/n}. *)

val vt_of_digit : t -> int -> float
(** The discretisation [g]. *)

val digit_of_vt : t -> float -> int
(** Nearest level — inverse of [g] on its image, total on [0, V_DD]. *)

val doping_of_digit : t -> int -> float
(** The bijection [h = f⁻¹ ∘ g]: doping concentration (cm⁻³) implementing
    a digit's threshold voltage.  Values are memoised. *)

val digit_of_doping : t -> float -> int
(** Inverse of {!doping_of_digit} (nearest level after applying [f]). *)

val address_window : t -> margin_fraction:float -> float
(** Half-width of the addressability window: a region is functional while
    its V_T stays within ±window of nominal.  [margin_fraction] scales the
    level separation (the paper's "small range as specified in [2]"); must
    be in (0, 0.5]. *)

val levels : t -> float array
(** All [radix] nominal threshold voltages, ascending. *)
