(** Long-channel MOS threshold-voltage model (Sze & Ng, ch. 6) — the
    monotonic bijection [f] between threshold voltage and channel doping
    that the paper's Proposition 1 relies on (its reference [14]).

    {m V_T(N_A) = V_{FB} + 2ψ_B + \sqrt{2 ε_{Si} q N_A · 2ψ_B} / C_{ox}}
    with {m ψ_B = (kT/q)·\ln(N_A/n_i)}.  The inverse [doping_of_vt] is
    computed by bisection, which is exact enough (1e-12 relative bracket)
    for every use in this library. *)

type params = {
  oxide_thickness : float;  (** gate oxide thickness, m *)
  flat_band_voltage : float;  (** V_FB, volt *)
  temperature : float;  (** kelvin *)
}

val default_params : params
(** 2 nm oxide, V_FB = −0.8 V (n+ poly gate over p-type body), 300 K —
    places the usable V_T window roughly on the paper's 0–1 V range. *)

val oxide_capacitance : params -> float
(** C_ox = ε_ox / t_ox, in F/m². *)

val bulk_potential : params -> doping:float -> float
(** ψ_B for an acceptor concentration [doping] in cm⁻³ (must exceed n_i). *)

val vt_of_doping : params -> doping:float -> float
(** Threshold voltage for a doping level in cm⁻³; strictly increasing. *)

val doping_of_vt : params -> vt:float -> float
(** Inverse of {!vt_of_doping} by bisection over [1e12, 1e21] cm⁻³; raises
    [Invalid_argument] if [vt] is outside the achievable range. *)

val doping_range : params -> float * float
(** Achievable (min, max) threshold voltages over the bisection bracket. *)
