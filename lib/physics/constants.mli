(** Physical constants (SI units unless noted) used by the threshold
    voltage model. *)

val electron_charge : float
(** q, in coulomb. *)

val boltzmann : float
(** k_B, in J/K. *)

val room_temperature : float
(** 300 K. *)

val vacuum_permittivity : float
(** ε₀, in F/m. *)

val silicon_permittivity : float
(** ε_Si = 11.7 ε₀. *)

val oxide_permittivity : float
(** ε_SiO₂ = 3.9 ε₀. *)

val intrinsic_carrier_concentration : float
(** n_i of silicon at 300 K, in cm⁻³. *)

val thermal_voltage : temperature:float -> float
(** k_B·T / q, in volt. *)

val cm3_to_m3 : float -> float
(** Converts a concentration from cm⁻³ to m⁻³. *)
