type params = {
  oxide_thickness : float;
  flat_band_voltage : float;
  temperature : float;
}

let default_params =
  { oxide_thickness = 2.0e-9; flat_band_voltage = -0.8; temperature = 300. }

let oxide_capacitance p = Constants.oxide_permittivity /. p.oxide_thickness

let bulk_potential p ~doping =
  if doping <= Constants.intrinsic_carrier_concentration then
    invalid_arg "Mosfet.bulk_potential: doping must exceed n_i";
  Constants.thermal_voltage ~temperature:p.temperature
  *. log (doping /. Constants.intrinsic_carrier_concentration)

let vt_of_doping p ~doping =
  let psi_b = bulk_potential p ~doping in
  let depletion_charge =
    sqrt
      (2. *. Constants.silicon_permittivity *. Constants.electron_charge
      *. Constants.cm3_to_m3 doping *. (2. *. psi_b))
  in
  p.flat_band_voltage +. (2. *. psi_b)
  +. (depletion_charge /. oxide_capacitance p)

let bracket_low = 1.0e12
let bracket_high = 1.0e21

let doping_range p =
  (vt_of_doping p ~doping:bracket_low, vt_of_doping p ~doping:bracket_high)

let doping_of_vt p ~vt =
  let vt_low, vt_high = doping_range p in
  if vt < vt_low || vt > vt_high then
    invalid_arg
      (Printf.sprintf
         "Mosfet.doping_of_vt: V_T %.3f outside achievable [%.3f, %.3f]" vt
         vt_low vt_high);
  (* Bisection on log-doping: V_T is strictly increasing in doping. *)
  let rec bisect lo hi remaining =
    if remaining = 0 then sqrt (lo *. hi)
    else
      let mid = sqrt (lo *. hi) in
      if vt_of_doping p ~doping:mid < vt then bisect mid hi (remaining - 1)
      else bisect lo mid (remaining - 1)
  in
  bisect bracket_low bracket_high 200
