include Dense.Make (struct
  type t = float

  let zero = 0.
  let equal = Float.equal
  let pp ppf x = Format.fprintf ppf "%g" x
end)

let norm_l1 m = fold (fun acc x -> acc +. Float.abs x) 0. m
let sum m = fold ( +. ) 0. m
let average m = sum m /. float_of_int (rows m * cols m)
let max_entry m = fold Float.max neg_infinity m
let min_entry m = fold Float.min infinity m
let scale k m = map (fun x -> k *. x) m

let zip_with ~fn f a b =
  if rows a <> rows b || cols a <> cols b then
    invalid_arg (Printf.sprintf "Fmatrix.%s: dimension mismatch" fn);
  init ~rows:(rows a) ~cols:(cols a) (fun i j -> f (get a i j) (get b i j))

let add a b = zip_with ~fn:"add" ( +. ) a b
let sub a b = zip_with ~fn:"sub" ( -. ) a b

let approx_equal ~eps a b =
  rows a = rows b && cols a = cols b
  &&
  let mismatch = ref false in
  iteri (fun i j x -> if Float.abs (x -. get b i j) > eps then mismatch := true) a;
  not !mismatch

let distinct_nonzero ~eps values =
  (* Quadratic scan: rows are short (the M doping regions of a nanowire). *)
  let seen = ref [] in
  let is_new v = List.for_all (fun u -> Float.abs (u -. v) > eps) !seen in
  Array.iter
    (fun v -> if Float.abs v > eps && is_new v then seen := v :: !seen)
    values;
  List.length !seen
