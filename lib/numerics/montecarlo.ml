type estimate = {
  samples : int;
  mean : float;
  std_error : float;
  ci95_low : float;
  ci95_high : float;
}

let z95 = 1.959963984540054

let of_mean_se ~samples ~mean ~std_error =
  {
    samples;
    mean;
    std_error;
    ci95_low = mean -. (z95 *. std_error);
    ci95_high = mean +. (z95 *. std_error);
  }

let estimate rng ~samples f =
  if samples < 2 then invalid_arg "Montecarlo.estimate: need >= 2 samples";
  let draws = Array.init samples (fun _ -> f rng) in
  let mean = Descriptive.mean draws in
  let std_error = Descriptive.std draws /. sqrt (float_of_int samples) in
  of_mean_se ~samples ~mean ~std_error

let estimate_proportion rng ~samples f =
  if samples < 2 then
    invalid_arg "Montecarlo.estimate_proportion: need >= 2 samples";
  let hits = ref 0 in
  for _ = 1 to samples do
    if f rng then incr hits
  done;
  let n = float_of_int samples in
  let p = float_of_int !hits /. n in
  let std_error = sqrt (p *. (1. -. p) /. n) in
  of_mean_se ~samples ~mean:p ~std_error

let within e x = x >= e.ci95_low && x <= e.ci95_high

let pp ppf e =
  Format.fprintf ppf "%.6g ± %.2g (95%% CI [%.6g, %.6g], n=%d)" e.mean
    (z95 *. e.std_error) e.ci95_low e.ci95_high e.samples
