type estimate = {
  samples : int;
  mean : float;
  std_error : float;
  ci95_low : float;
  ci95_high : float;
}

let z95 = 1.959963984540054

let of_mean_se ~samples ~mean ~std_error =
  {
    samples;
    mean;
    std_error;
    ci95_low = mean -. (z95 *. std_error);
    ci95_high = mean +. (z95 *. std_error);
  }

let estimate_proportion rng ~samples f =
  if samples < 2 then
    invalid_arg "Montecarlo.estimate_proportion: need >= 2 samples";
  let hits = ref 0 in
  for _ = 1 to samples do
    if f rng then incr hits
  done;
  let n = float_of_int samples in
  let p = float_of_int !hits /. n in
  let std_error = sqrt (p *. (1. -. p) /. n) in
  of_mean_se ~samples ~mean:p ~std_error

(* --- the unified estimator ---

   One engine runs every (strategy x stopping rule) combination.  The
   determinism contract is unchanged from the chunked estimators it
   replaces: every sample owns its own split stream ([Rng.split_n]) and
   its own result slot, and the slots are folded sequentially in sample
   order once the fan-out joins.  The estimate is therefore a pure
   function of (seed, spec, target): chunk count, batch size, domain
   count and scheduling order can all move freely — including per
   machine, via {!Nanodec_parallel.Autotune} — without touching a
   single result bit.  Chunks are contiguous sample ranges and a chunk
   body is idempotent (slot writes, stream restarted per sample), so
   the pool's retry/degradation recovery reproduces the uninjected run
   exactly.

   Adaptive stopping adds batch-doubling rounds on top: round [r]
   derives its own root via one sequential [Rng.split] of the caller's
   generator, so the streams of round [r] do not depend on how many
   samples earlier rounds ran — and since every round's partial sums
   are themselves bit-identical across schedules, the stop/continue
   decision after each round is too.

   Telemetry wraps the chunk bodies with pure observation (per-chunk
   wall time, sample counters, end-to-end rate) and steers only the
   scheduling plan, never the draw streams or the merge order, so an
   instrumented estimate equals the bare one exactly. *)

module Telemetry = Nanodec_telemetry.Telemetry
module Run_ctx = Nanodec_parallel.Run_ctx
module Autotune = Nanodec_parallel.Autotune
module Workspace = Nanodec_parallel.Workspace
module Pool = Nanodec_parallel.Pool
module Fault = Nanodec_fault.Fault
module E = Nanodec_error

type strategy = Run_ctx.mc_method =
  | Plain
  | Antithetic
  | Stratified of int
  | Importance of float

type stopping =
  | Fixed_samples of int
  | Until_rel_error of {
      rel_error : float;
      min_samples : int;
      max_samples : int;
    }

type spec = { strategy : strategy; stopping : stopping }

let fixed n = Fixed_samples n
let default_min_samples = 256
let default_max_samples = 1 lsl 22

let until_rel_error ?(min_samples = default_min_samples)
    ?(max_samples = default_max_samples) rel_error =
  Until_rel_error { rel_error; min_samples; max_samples }

let spec ?(strategy = Plain) stopping = { strategy; stopping }

let spec_of_ctx ?ctx ~samples () =
  let strategy = Run_ctx.mc_method_of ctx in
  let stopping =
    match Run_ctx.rel_error_of ctx with
    | None -> Fixed_samples samples
    | Some rel_error ->
      (* [samples] becomes the adaptive cap: --mc-samples N --rel-error R
         reads "stop at the CI target, but never draw more than N". *)
      Until_rel_error
        {
          rel_error;
          min_samples = max 2 (min default_min_samples samples);
          max_samples = samples;
        }
  in
  { strategy; stopping }

let strategy_name = function
  | Plain -> "plain"
  | Antithetic -> "antithetic"
  | Stratified k -> Printf.sprintf "stratified:%d" k
  | Importance s -> Printf.sprintf "importance:%g" s

let spec_key s =
  (* Canonical injective serialization: the artifact-cache key
     component of an estimate.  Floats are %h (exact hex) so distinct
     shifts/targets never collide and the key is platform-stable. *)
  let strat =
    match s.strategy with
    | Plain -> "plain"
    | Antithetic -> "anti"
    | Stratified k -> Printf.sprintf "strat:%d" k
    | Importance f -> Printf.sprintf "imp:%h" f
  in
  let stop =
    match s.stopping with
    | Fixed_samples n -> Printf.sprintf "fixed:%d" n
    | Until_rel_error { rel_error; min_samples; max_samples } ->
      Printf.sprintf "rel:%h:%d:%d" rel_error min_samples max_samples
  in
  Printf.sprintf "mc/v1|%s|%s" strat stop

let validate_spec name s =
  (match s.strategy with
  | Plain | Antithetic -> ()
  | Stratified k ->
    if k < 2 then invalid_arg (name ^ ": stratified needs >= 2 strata")
  | Importance f ->
    if (not (f > 0.)) || f = infinity then
      invalid_arg (name ^ ": importance shift must be positive and finite"));
  match s.stopping with
  | Fixed_samples n ->
    if n < 2 then invalid_arg (name ^ ": need >= 2 samples")
  | Until_rel_error { rel_error; min_samples; max_samples } ->
    if (not (rel_error > 0.)) || rel_error > 0.5 then
      invalid_arg (name ^ ": rel_error must be in (0, 0.5]");
    if min_samples < 2 then invalid_arg (name ^ ": min_samples must be >= 2");
    if max_samples < min_samples then
      invalid_arg (name ^ ": max_samples must be >= min_samples")

(* --- targets ---

   A target bundles one integrand with its optional strategy-specific
   evaluators.  Each evaluator reduces one sample to one float whose
   expectation is the plain mean — antithetic returns the pair average,
   importance returns the already-reweighted value — so the engine
   stays strategy-agnostic: only the per-sample evaluation and (for
   stratified) the variance bookkeeping differ. *)

type target = {
  plain : Rng.t -> float;
  anti : (Rng.t -> float) option;
  strat : (strata:int -> stratum:int -> Rng.t -> float) option;
  imp : (shift:float -> Rng.t -> float) option;
}

let target ?antithetic ?stratified ?importance plain =
  { plain; anti = antithetic; strat = stratified; imp = importance }

let unsupported which =
  E.invalid_inputf
    ~hint:
      "build the target with the matching capability (Montecarlo.target \
       ~antithetic/~stratified/~importance, or Kernel.target for the \
       compiled yield path), or use mc-method plain"
    "Monte-Carlo strategy %s is not supported by this target" which

(* [eval ~index g] evaluates the sample with global index [index] on
   its own stream [g].  The index matters only to stratified sampling,
   which allocates strata round-robin — balanced exactly because totals
   are kept multiples of the strata count. *)
let evaluator spec target =
  match spec.strategy with
  | Plain -> fun ~index:_ g -> target.plain g
  | Antithetic -> (
    match target.anti with
    | Some f -> fun ~index:_ g -> f g
    | None -> unsupported "antithetic")
  | Stratified strata -> (
    match target.strat with
    | Some f -> fun ~index g -> f ~strata ~stratum:(index mod strata) g
    | None -> unsupported (strategy_name spec.strategy))
  | Importance shift -> (
    match target.imp with
    | Some f -> fun ~index:_ g -> f ~shift g
    | None -> unsupported (strategy_name spec.strategy))

(* Sample totals are aligned so stratified allocation stays exactly
   balanced (and every stratum keeps >= 2 samples for its variance
   term); other strategies run the requested count unchanged. *)
let align_samples strategy n =
  match strategy with
  | Stratified k ->
    let n = max n (2 * k) in
    (n + k - 1) / k * k
  | Plain | Antithetic | Importance _ -> n

(* --- scheduling scaffolding (unchanged discipline) --- *)

let default_chunks = 64

(* One scratch generator per domain, allocated on first use and re-aimed
   ([Rng.copy_into]) at a fresh split stream for every sample — the hot
   loop allocates nothing per sample. *)
let scratch_rng : Rng.t Workspace.t =
  Workspace.create (fun () -> Rng.create ~seed:0)

(* Balanced contiguous ranges: chunk [i] covers samples
   [lo i, lo (i + 1)), the first [samples mod chunks] chunks one sample
   longer.  [chunks > samples] leaves the excess chunks empty. *)
let chunk_lo ~samples ~chunks i =
  (i * (samples / chunks)) + min i (samples mod chunks)

(* How the job is cut: the context's [Fixed] policy wins, otherwise the
   autotuner sizes the plan.  Only the autotuned path records
   [pool.autotune.*] — fixed plans are the caller's decision, not the
   tuner's.  The context's [batch] overrides the plan's batch either
   way. *)
let resolve_plan ?ctx ~pool ~samples () =
  let tel = Run_ctx.telemetry_of ctx in
  let plan =
    match Run_ctx.chunking_of ctx with
    | Run_ctx.Fixed c -> { Autotune.chunks = c; batch = 1; per_sample_ns = None }
    | Run_ctx.Auto ->
      let domains = match pool with Some p -> Pool.domains p | None -> 1 in
      let plan = Autotune.plan ?telemetry:tel ~domains ~samples () in
      Autotune.record tel plan;
      plan
  in
  match Run_ctx.batch_of ctx with
  | Some b -> { plan with Autotune.batch = b }
  | None -> plan

(* Shared fan-out/observe scaffolding of every estimate round: time
   each chunk into [mc.chunk_s], probe the [mc.sample_batch] fault site
   per chunk, count the samples and record the round's rate.  [body i]
   fills the sample slots of chunk [i] and must be restartable. *)
let run_chunks ?ctx ~pool ~chunks ~batch ~samples body =
  let tel = Run_ctx.telemetry_of ctx in
  let fault = Run_ctx.fault_of ctx in
  let timeout_s = Option.bind ctx Run_ctx.timeout_s in
  let cancel = Option.bind ctx Run_ctx.cancel in
  let body =
    match fault with
    | None -> body
    | Some _ ->
      (* Inside the chunk body, so the pool's retry/degradation
         machinery covers injected batch crashes like its own site. *)
      fun i ->
        Fault.hit fault ~key:i "mc.sample_batch";
        body i
  in
  let body =
    match tel with
    | None -> body
    | Some sink ->
      let h = Telemetry.histogram sink "mc.chunk_s" in
      fun i ->
        let t0 = Telemetry.now sink in
        body i;
        Telemetry.observe h (Telemetry.now sink -. t0)
  in
  Telemetry.with_span tel "mc.estimate_par" @@ fun () ->
  let t0 = match tel with Some s -> Telemetry.now s | None -> 0. in
  (match pool with
  | Some pool -> Pool.parallel_for ?timeout_s ?cancel ~batch pool ~chunks body
  | None ->
    (* Pool-less runs still recover from injected crashes: bounded
       in-place retries, then one suppressed re-execution.  Chunk
       bodies are restartable, so results match the uninjected run. *)
    for i = 0 to chunks - 1 do
      let rec attempt k =
        match body i with
        | () -> ()
        | exception Fault.Injected _ when k < 2 -> attempt (k + 1)
        | exception Fault.Injected _ ->
          Fault.without_faults (fun () -> body i)
      in
      attempt 0
    done);
  match tel with
  | Some sink ->
    Telemetry.count tel "mc.samples" samples;
    let dt = Telemetry.now sink -. t0 in
    if dt > 0. then
      Telemetry.record tel "mc.samples_per_sec" (float_of_int samples /. dt)
  | None -> ()

(* --- merge bookkeeping ---

   One accumulator per run: global (n, sum, sum of squares) plus — for
   stratified sampling only — the same triple per stratum, so the
   standard error can drop the between-strata variance the strategy
   actually removed.  Rounds fold in sample order (in-order merge, part
   of the determinism contract). *)

type acc = {
  strata : int;  (* 1 for non-stratified strategies *)
  mutable n : int;
  mutable sum : float;
  mutable sum_sq : float;
  s_n : int array;
  s_sum : float array;
  s_sum_sq : float array;
}

let make_acc strategy =
  let strata = match strategy with Stratified k -> k | _ -> 1 in
  {
    strata;
    n = 0;
    sum = 0.;
    sum_sq = 0.;
    s_n = Array.make strata 0;
    s_sum = Array.make strata 0.;
    s_sum_sq = Array.make strata 0.;
  }

let merge_round acc ~base values =
  Array.iteri
    (fun s x ->
      acc.n <- acc.n + 1;
      acc.sum <- acc.sum +. x;
      acc.sum_sq <- acc.sum_sq +. (x *. x);
      if acc.strata > 1 then begin
        let k = (base + s) mod acc.strata in
        acc.s_n.(k) <- acc.s_n.(k) + 1;
        acc.s_sum.(k) <- acc.s_sum.(k) +. x;
        acc.s_sum_sq.(k) <- acc.s_sum_sq.(k) +. (x *. x)
      end)
    values

let estimate_of_acc acc =
  let n = float_of_int acc.n in
  let mean = acc.sum /. n in
  let std_error =
    if acc.strata <= 1 then
      let variance =
        Float.max 0. ((acc.sum_sq -. (n *. mean *. mean)) /. (n -. 1.))
      in
      sqrt (variance /. n)
    else begin
      (* Proper stratified SE with equal weights and balanced
         allocation: Var(mean) = (1/K^2) * sum_k var_k / n_k.  The
         naive pooled variance would re-include the between-strata
         spread the stratification removed. *)
      let k = float_of_int acc.strata in
      let v = ref 0. in
      for s = 0 to acc.strata - 1 do
        let nk = float_of_int acc.s_n.(s) in
        let mk = acc.s_sum.(s) /. nk in
        let vark =
          Float.max 0. ((acc.s_sum_sq.(s) -. (nk *. mk *. mk)) /. (nk -. 1.))
        in
        v := !v +. (vark /. nk)
      done;
      sqrt (!v /. (k *. k))
    end
  in
  of_mean_se ~samples:acc.n ~mean ~std_error

let converged ~rel_error acc =
  let e = estimate_of_acc acc in
  z95 *. e.std_error <= rel_error *. Float.abs e.mean

let run ?ctx s rng target =
  validate_spec "Montecarlo.run" s;
  let pool = Run_ctx.pool_of ctx in
  let eval = evaluator s target in
  let acc = make_acc s.strategy in
  let run_round ~base streams round_n =
    let plan = resolve_plan ?ctx ~pool ~samples:round_n () in
    let chunks = plan.Autotune.chunks and batch = plan.Autotune.batch in
    let values = Array.make round_n 0. in
    let body i =
      let g = Workspace.get scratch_rng in
      for
        s = chunk_lo ~samples:round_n ~chunks i
        to chunk_lo ~samples:round_n ~chunks (i + 1) - 1
      do
        (* Re-aim, don't share: a chunk retried after a mid-batch
           injected crash must restart every sample's stream from the
           beginning, or the recovered run would diverge from the
           uninjected one. *)
        Rng.copy_into streams.(s) ~into:g;
        values.(s) <- eval ~index:(base + s) g
      done
    in
    run_chunks ?ctx ~pool ~chunks ~batch ~samples:round_n body;
    merge_round acc ~base values
  in
  (match s.stopping with
  | Fixed_samples n ->
    (* One round, streams split directly off the caller's generator —
       for [Plain] this reproduces the historical estimate_par bits
       exactly (same split_n, same slots, same merge). *)
    let n = align_samples s.strategy n in
    run_round ~base:0 (Rng.split_n rng n) n
  | Until_rel_error { rel_error; min_samples; max_samples } ->
    let min_s = align_samples s.strategy (max 2 min_samples) in
    let max_s = max min_s (align_samples s.strategy max_samples) in
    let total = ref 0 in
    let stop = ref false in
    while not !stop do
      let next =
        if !total = 0 then min_s
        else min max_s (align_samples s.strategy (2 * !total))
      in
      let round_n = next - !total in
      (* Each round's streams derive from one sequential split of the
         root, never from the caller's generator position after a
         variable number of draws — the schedule of rounds is fixed by
         (min, max), so round r's streams are a pure function of the
         seed. *)
      let round_rng = Rng.split rng in
      run_round ~base:!total (Rng.split_n round_rng round_n) round_n;
      total := next;
      if next >= max_s || converged ~rel_error acc then stop := true
    done);
  estimate_of_acc acc

(* --- fused multi-request estimation ---

   [run_many] is the serve batch-fusion entry point: K independent
   (spec, rng, target) requests packed into ONE pool fan-out.  Each
   item keeps exactly the per-item state the solo [run] would build —
   its own [align_samples] total, its own [Rng.split_n] stream family,
   its own evaluator, its own value slots, its own in-order merge — and
   the items are laid out contiguously on a global sample axis only for
   scheduling.  A fused chunk covers a global index range and maps it
   back onto per-item local ranges, so every slot write is the same
   (stream, evaluator, local index) triple the solo run performs:
   item [i]'s estimate is bit-identical to [run ?ctx spec_i rng_i
   target_i].  Chunk bodies restart cleanly (streams re-aimed per
   sample), so pool retry/degradation recovery holds for the fused job
   exactly as for a solo one. *)

let run_many ?ctx items =
  let k = Array.length items in
  if k = 0 then [||]
  else begin
    let pool = Run_ctx.pool_of ctx in
    let len = Array.make k 0 in
    let streams_of = Array.make k [||] in
    let eval_of = Array.make k (fun ~index:_ _ -> 0.) in
    let values_of = Array.make k [||] in
    Array.iteri
      (fun i (s, rng, tgt) ->
        validate_spec "Montecarlo.run_many" s;
        let n =
          match s.stopping with
          | Fixed_samples n -> align_samples s.strategy n
          | Until_rel_error _ ->
            invalid_arg
              "Montecarlo.run_many: adaptive (until_rel_error) items cannot \
               be fused"
        in
        len.(i) <- n;
        streams_of.(i) <- Rng.split_n rng n;
        eval_of.(i) <- evaluator s tgt;
        values_of.(i) <- Array.make n 0.)
      items;
    let offsets = Array.make k 0 in
    let total = ref 0 in
    for i = 0 to k - 1 do
      offsets.(i) <- !total;
      total := !total + len.(i)
    done;
    let total = !total in
    let plan = resolve_plan ?ctx ~pool ~samples:total () in
    let chunks = plan.Autotune.chunks and batch = plan.Autotune.batch in
    let body i =
      let g = Workspace.get scratch_rng in
      let lo = chunk_lo ~samples:total ~chunks i in
      let hi = chunk_lo ~samples:total ~chunks (i + 1) in
      if lo < hi then begin
        let j = ref 0 in
        while offsets.(!j) + len.(!j) <= lo do
          incr j
        done;
        let gs = ref lo in
        while !gs < hi do
          let base = offsets.(!j) in
          let streams = streams_of.(!j)
          and eval = eval_of.(!j)
          and values = values_of.(!j) in
          let stop = min hi (base + len.(!j)) in
          for s = !gs - base to stop - base - 1 do
            (* Same re-aim discipline as [run]: a retried chunk restarts
               every sample's stream from the beginning. *)
            Rng.copy_into streams.(s) ~into:g;
            values.(s) <- eval ~index:s g
          done;
          gs := stop;
          incr j
        done
      end
    in
    run_chunks ?ctx ~pool ~chunks ~batch ~samples:total body;
    Array.mapi
      (fun i (s, _, _) ->
        let acc = make_acc s.strategy in
        merge_round acc ~base:0 values_of.(i);
        estimate_of_acc acc)
      items
  end

(* --- legacy API: one definition site over [run] --- *)

let estimate rng ~samples f =
  if samples < 2 then invalid_arg "Montecarlo.estimate: need >= 2 samples";
  run { strategy = Plain; stopping = Fixed_samples samples } rng (target f)

let estimate_par ?ctx rng ~samples f =
  if samples < 2 then
    invalid_arg "Montecarlo.estimate_par: need >= 2 samples";
  let ctx = Run_ctx.resolve ?ctx () in
  run ~ctx { strategy = Plain; stopping = Fixed_samples samples } rng
    (target f)

let estimate_proportion_par ?ctx rng ~samples f =
  if samples < 2 then
    invalid_arg "Montecarlo.estimate_proportion_par: need >= 2 samples";
  let ctx = Run_ctx.resolve ?ctx () in
  let pool = Run_ctx.pool ctx in
  let plan = resolve_plan ~ctx ~pool ~samples () in
  let chunks = plan.Autotune.chunks and batch = plan.Autotune.batch in
  let streams = Rng.split_n rng samples in
  let hits = Bytes.make samples '\000' in
  let body i =
    let g = Workspace.get scratch_rng in
    for s = chunk_lo ~samples ~chunks i to chunk_lo ~samples ~chunks (i + 1) - 1
    do
      Rng.copy_into streams.(s) ~into:g;
      Bytes.unsafe_set hits s (if f g then '\001' else '\000')
    done
  in
  run_chunks ~ctx ~pool ~chunks ~batch ~samples body;
  let count = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr count) hits;
  let n = float_of_int samples in
  let p = float_of_int !count /. n in
  let std_error = sqrt (p *. (1. -. p) /. n) in
  of_mean_se ~samples ~mean:p ~std_error

let within e x = x >= e.ci95_low && x <= e.ci95_high

let pp ppf e =
  Format.fprintf ppf "%.6g ± %.2g (95%% CI [%.6g, %.6g], n=%d)" e.mean
    (z95 *. e.std_error) e.ci95_low e.ci95_high e.samples
