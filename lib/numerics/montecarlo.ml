type estimate = {
  samples : int;
  mean : float;
  std_error : float;
  ci95_low : float;
  ci95_high : float;
}

let z95 = 1.959963984540054

let of_mean_se ~samples ~mean ~std_error =
  {
    samples;
    mean;
    std_error;
    ci95_low = mean -. (z95 *. std_error);
    ci95_high = mean +. (z95 *. std_error);
  }

let estimate rng ~samples f =
  if samples < 2 then invalid_arg "Montecarlo.estimate: need >= 2 samples";
  let draws = Array.init samples (fun _ -> f rng) in
  let mean = Descriptive.mean draws in
  let std_error = Descriptive.std draws /. sqrt (float_of_int samples) in
  of_mean_se ~samples ~mean ~std_error

let estimate_proportion rng ~samples f =
  if samples < 2 then
    invalid_arg "Montecarlo.estimate_proportion: need >= 2 samples";
  let hits = ref 0 in
  for _ = 1 to samples do
    if f rng then incr hits
  done;
  let n = float_of_int samples in
  let p = float_of_int !hits /. n in
  let std_error = sqrt (p *. (1. -. p) /. n) in
  of_mean_se ~samples ~mean:p ~std_error

(* --- chunked parallel estimators ---

   Every sample owns its own split stream ([Rng.split_n rng samples])
   and its own result slot, and the slots are folded sequentially in
   sample order once the fan-out joins.  The estimate is therefore a
   pure function of (seed, samples, f): chunk count, batch size,
   domain count and scheduling order can all move freely — including
   per machine, via {!Nanodec_parallel.Autotune} — without touching a
   single result bit.  Chunks are just contiguous sample ranges, and a
   chunk body is idempotent (slot writes, stream restarted per sample),
   so the pool's retry/degradation recovery reproduces the uninjected
   run exactly.

   Telemetry wraps the chunk bodies with pure observation (per-chunk
   wall time, sample counters, end-to-end rate) and steers only the
   scheduling plan, never the draw streams or the merge order, so an
   instrumented estimate equals the bare one exactly. *)

module Telemetry = Nanodec_telemetry.Telemetry
module Run_ctx = Nanodec_parallel.Run_ctx
module Autotune = Nanodec_parallel.Autotune
module Workspace = Nanodec_parallel.Workspace
module Pool = Nanodec_parallel.Pool
module Fault = Nanodec_fault.Fault

let default_chunks = 64

(* One scratch generator per domain, allocated on first use and re-aimed
   ([Rng.copy_into]) at a fresh split stream for every sample — the hot
   loop allocates nothing per sample. *)
let scratch_rng : Rng.t Workspace.t =
  Workspace.create (fun () -> Rng.create ~seed:0)

(* Balanced contiguous ranges: chunk [i] covers samples
   [lo i, lo (i + 1)), the first [samples mod chunks] chunks one sample
   longer.  [chunks > samples] leaves the excess chunks empty. *)
let chunk_lo ~samples ~chunks i =
  (i * (samples / chunks)) + min i (samples mod chunks)

(* How the job is cut: an explicit [?chunks] wins (fixed, batch 1),
   then the context's [Fixed] policy, then the autotuner.  Only the
   autotuned path records [pool.autotune.*] — fixed plans are the
   caller's decision, not the tuner's.  An explicit [?batch] overrides
   the plan's batch in every case. *)
let resolve_plan ?ctx ?chunks ?batch ~pool ~samples () =
  let tel = Run_ctx.telemetry_of ctx in
  let fixed c = { Autotune.chunks = c; batch = 1; per_sample_ns = None } in
  let plan =
    match chunks with
    | Some c -> fixed c
    | None -> (
      match Run_ctx.chunking_of ctx with
      | Run_ctx.Fixed c -> fixed c
      | Run_ctx.Auto ->
        let domains =
          match pool with Some p -> Pool.domains p | None -> 1
        in
        let plan = Autotune.plan ?telemetry:tel ~domains ~samples () in
        Autotune.record tel plan;
        plan)
  in
  match batch with Some b -> { plan with Autotune.batch = b } | None -> plan

(* Shared fan-out/observe scaffolding of both estimators: resolve the
   pool from [?ctx]/[?pool], time each chunk into [mc.chunk_s], probe
   the [mc.sample_batch] fault site per chunk, count the samples and
   record the whole-estimate rate.  [body i] fills the sample slots of
   chunk [i] and must be restartable. *)
let run_chunks ?ctx ~pool ~chunks ~batch ~samples body =
  let tel = Run_ctx.telemetry_of ctx in
  let fault = Run_ctx.fault_of ctx in
  let timeout_s = Option.bind ctx Run_ctx.timeout_s in
  let cancel = Option.bind ctx Run_ctx.cancel in
  let body =
    match fault with
    | None -> body
    | Some _ ->
      (* Inside the chunk body, so the pool's retry/degradation
         machinery covers injected batch crashes like its own site. *)
      fun i ->
        Fault.hit fault ~key:i "mc.sample_batch";
        body i
  in
  let body =
    match tel with
    | None -> body
    | Some sink ->
      let h = Telemetry.histogram sink "mc.chunk_s" in
      fun i ->
        let t0 = Telemetry.now sink in
        body i;
        Telemetry.observe h (Telemetry.now sink -. t0)
  in
  Telemetry.with_span tel "mc.estimate_par" @@ fun () ->
  let t0 = match tel with Some s -> Telemetry.now s | None -> 0. in
  (match pool with
  | Some pool -> Pool.parallel_for ?timeout_s ?cancel ~batch pool ~chunks body
  | None ->
    (* Pool-less runs still recover from injected crashes: bounded
       in-place retries, then one suppressed re-execution.  Chunk
       bodies are restartable, so results match the uninjected run. *)
    for i = 0 to chunks - 1 do
      let rec attempt k =
        match body i with
        | () -> ()
        | exception Fault.Injected _ when k < 2 -> attempt (k + 1)
        | exception Fault.Injected _ ->
          Fault.without_faults (fun () -> body i)
      in
      attempt 0
    done);
  match tel with
  | Some sink ->
    Telemetry.count tel "mc.samples" samples;
    let dt = Telemetry.now sink -. t0 in
    if dt > 0. then
      Telemetry.record tel "mc.samples_per_sec" (float_of_int samples /. dt)
  | None -> ()

let validate name ~samples ~chunks ~batch =
  if samples < 2 then invalid_arg (name ^ ": need >= 2 samples");
  (match chunks with
  | Some c when c < 1 -> invalid_arg (name ^ ": need >= 1 chunk")
  | Some _ | None -> ());
  match batch with
  | Some b when b < 1 -> invalid_arg (name ^ ": batch must be >= 1")
  | Some _ | None -> ()

let estimate_par ?ctx ?pool ?chunks ?batch rng ~samples f =
  validate "Montecarlo.estimate_par" ~samples ~chunks ~batch;
  let pool =
    match pool with Some _ -> pool | None -> Run_ctx.pool_of ctx
  in
  let plan = resolve_plan ?ctx ?chunks ?batch ~pool ~samples () in
  let chunks = plan.Autotune.chunks and batch = plan.Autotune.batch in
  let streams = Rng.split_n rng samples in
  let values = Array.make samples 0. in
  let body i =
    let g = Workspace.get scratch_rng in
    for s = chunk_lo ~samples ~chunks i to chunk_lo ~samples ~chunks (i + 1) - 1
    do
      (* Re-aim, don't share: a chunk retried after a mid-batch injected
         crash must restart every sample's stream from the beginning, or
         the recovered run would diverge from the uninjected one. *)
      Rng.copy_into streams.(s) ~into:g;
      values.(s) <- f g
    done
  in
  run_chunks ?ctx ~pool ~chunks ~batch ~samples body;
  let sum = ref 0. and sum_sq = ref 0. in
  Array.iter
    (fun x ->
      sum := !sum +. x;
      sum_sq := !sum_sq +. (x *. x))
    values;
  let n = float_of_int samples in
  let mean = !sum /. n in
  let variance = Float.max 0. ((!sum_sq -. (n *. mean *. mean)) /. (n -. 1.)) in
  of_mean_se ~samples ~mean ~std_error:(sqrt (variance /. n))

let estimate_proportion_par ?ctx ?pool ?chunks ?batch rng ~samples f =
  validate "Montecarlo.estimate_proportion_par" ~samples ~chunks ~batch;
  let pool =
    match pool with Some _ -> pool | None -> Run_ctx.pool_of ctx
  in
  let plan = resolve_plan ?ctx ?chunks ?batch ~pool ~samples () in
  let chunks = plan.Autotune.chunks and batch = plan.Autotune.batch in
  let streams = Rng.split_n rng samples in
  let hits = Bytes.make samples '\000' in
  let body i =
    let g = Workspace.get scratch_rng in
    for s = chunk_lo ~samples ~chunks i to chunk_lo ~samples ~chunks (i + 1) - 1
    do
      Rng.copy_into streams.(s) ~into:g;
      Bytes.unsafe_set hits s (if f g then '\001' else '\000')
    done
  in
  run_chunks ?ctx ~pool ~chunks ~batch ~samples body;
  let count = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr count) hits;
  let n = float_of_int samples in
  let p = float_of_int !count /. n in
  let std_error = sqrt (p *. (1. -. p) /. n) in
  of_mean_se ~samples ~mean:p ~std_error

let within e x = x >= e.ci95_low && x <= e.ci95_high

let pp ppf e =
  Format.fprintf ppf "%.6g ± %.2g (95%% CI [%.6g, %.6g], n=%d)" e.mean
    (z95 *. e.std_error) e.ci95_low e.ci95_high e.samples
