type estimate = {
  samples : int;
  mean : float;
  std_error : float;
  ci95_low : float;
  ci95_high : float;
}

let z95 = 1.959963984540054

let of_mean_se ~samples ~mean ~std_error =
  {
    samples;
    mean;
    std_error;
    ci95_low = mean -. (z95 *. std_error);
    ci95_high = mean +. (z95 *. std_error);
  }

let estimate rng ~samples f =
  if samples < 2 then invalid_arg "Montecarlo.estimate: need >= 2 samples";
  let draws = Array.init samples (fun _ -> f rng) in
  let mean = Descriptive.mean draws in
  let std_error = Descriptive.std draws /. sqrt (float_of_int samples) in
  of_mean_se ~samples ~mean ~std_error

let estimate_proportion rng ~samples f =
  if samples < 2 then
    invalid_arg "Montecarlo.estimate_proportion: need >= 2 samples";
  let hits = ref 0 in
  for _ = 1 to samples do
    if f rng then incr hits
  done;
  let n = float_of_int samples in
  let p = float_of_int !hits /. n in
  let std_error = sqrt (p *. (1. -. p) /. n) in
  of_mean_se ~samples ~mean:p ~std_error

(* --- chunked parallel estimators ---

   The job is cut into a fixed number of chunks (independent of the
   domain count), chunk [i] draws from the [i]-th stream of
   [Rng.split_n], and the partial accumulators merge left-to-right in
   chunk index order.  Every float operation therefore happens in an
   order fixed by [chunks] alone, making the result bit-for-bit
   identical whether the chunks run on 1 domain or 64.

   Telemetry wraps the chunk bodies with pure observation (per-chunk
   wall time, sample counters, end-to-end rate) and never touches the
   draw streams or the merge order, so an instrumented estimate equals
   the bare one exactly. *)

module Telemetry = Nanodec_telemetry.Telemetry
module Run_ctx = Nanodec_parallel.Run_ctx
module Fault = Nanodec_fault.Fault

let default_chunks = 64

let chunk_size ~samples ~chunks i =
  (samples / chunks) + if i < samples mod chunks then 1 else 0

(* Shared fan-out/observe scaffolding of both estimators: resolve the
   pool from [?ctx]/[?pool], time each chunk into [mc.chunk_s], probe
   the [mc.sample_batch] fault site per chunk, count the samples and
   record the whole-estimate rate. *)
let run_chunks ?ctx ?pool ~chunks ~samples partial =
  let pool =
    match pool with Some _ -> pool | None -> Run_ctx.pool_of ctx
  in
  let tel = Run_ctx.telemetry_of ctx in
  let fault = Run_ctx.fault_of ctx in
  let timeout_s = Option.bind ctx Run_ctx.timeout_s in
  let cancel = Option.bind ctx Run_ctx.cancel in
  let partial =
    match fault with
    | None -> partial
    | Some _ ->
      (* Inside the chunk body, so the pool's retry/degradation
         machinery covers injected batch crashes like its own site. *)
      fun i ->
        Fault.hit fault ~key:i "mc.sample_batch";
        partial i
  in
  let partial =
    match tel with
    | None -> partial
    | Some sink ->
      let h = Telemetry.histogram sink "mc.chunk_s" in
      fun i ->
        let t0 = Telemetry.now sink in
        let r = partial i in
        Telemetry.observe h (Telemetry.now sink -. t0);
        r
  in
  let indices = Array.init chunks Fun.id in
  Telemetry.with_span tel "mc.estimate_par" @@ fun () ->
  let t0 = match tel with Some s -> Telemetry.now s | None -> 0. in
  let partials =
    match pool with
    | Some pool ->
      Nanodec_parallel.Pool.map ?timeout_s ?cancel pool partial indices
    | None ->
      (* Pool-less runs still recover from injected crashes: bounded
         in-place retries, then one suppressed re-execution.  Chunk
         bodies are restartable, so results match the uninjected run. *)
      Array.map
        (fun i ->
          let rec attempt k =
            match partial i with
            | r -> r
            | exception Fault.Injected _ when k < 2 -> attempt (k + 1)
            | exception Fault.Injected _ ->
              Fault.without_faults (fun () -> partial i)
          in
          attempt 0)
        indices
  in
  (match tel with
  | Some sink ->
    Telemetry.count tel "mc.samples" samples;
    let dt = Telemetry.now sink -. t0 in
    if dt > 0. then
      Telemetry.record tel "mc.samples_per_sec" (float_of_int samples /. dt)
  | None -> ());
  partials

let estimate_par ?ctx ?pool ?(chunks = default_chunks) rng ~samples f =
  if samples < 2 then invalid_arg "Montecarlo.estimate_par: need >= 2 samples";
  if chunks < 1 then invalid_arg "Montecarlo.estimate_par: need >= 1 chunk";
  let rngs = Rng.split_n rng chunks in
  let partial i =
    (* Copy, don't share: a chunk retried after a mid-batch injected
       crash must restart its draw stream from the beginning, or the
       recovered run would diverge from the uninjected one. *)
    let rng = Rng.copy rngs.(i) in
    let n = chunk_size ~samples ~chunks i in
    let sum = ref 0. and sum_sq = ref 0. in
    for _ = 1 to n do
      let x = f rng in
      sum := !sum +. x;
      sum_sq := !sum_sq +. (x *. x)
    done;
    (n, !sum, !sum_sq)
  in
  let partials = run_chunks ?ctx ?pool ~chunks ~samples partial in
  let count = ref 0 and sum = ref 0. and sum_sq = ref 0. in
  Array.iter
    (fun (n, s, q) ->
      count := !count + n;
      sum := !sum +. s;
      sum_sq := !sum_sq +. q)
    partials;
  let n = float_of_int !count in
  let mean = !sum /. n in
  let variance = Float.max 0. ((!sum_sq -. (n *. mean *. mean)) /. (n -. 1.)) in
  of_mean_se ~samples ~mean ~std_error:(sqrt (variance /. n))

let estimate_proportion_par ?ctx ?pool ?(chunks = default_chunks) rng ~samples
    f =
  if samples < 2 then
    invalid_arg "Montecarlo.estimate_proportion_par: need >= 2 samples";
  if chunks < 1 then
    invalid_arg "Montecarlo.estimate_proportion_par: need >= 1 chunk";
  let rngs = Rng.split_n rng chunks in
  let partial i =
    (* Copy for restartability — see [estimate_par]. *)
    let rng = Rng.copy rngs.(i) in
    let n = chunk_size ~samples ~chunks i in
    let hits = ref 0 in
    for _ = 1 to n do
      if f rng then incr hits
    done;
    !hits
  in
  let partials = run_chunks ?ctx ?pool ~chunks ~samples partial in
  let hits = Array.fold_left ( + ) 0 partials in
  let n = float_of_int samples in
  let p = float_of_int hits /. n in
  let std_error = sqrt (p *. (1. -. p) /. n) in
  of_mean_se ~samples ~mean:p ~std_error

let within e x = x >= e.ci95_low && x <= e.ci95_high

let pp ppf e =
  Format.fprintf ppf "%.6g ± %.2g (95%% CI [%.6g, %.6g], n=%d)" e.mean
    (z95 *. e.std_error) e.ci95_low e.ci95_high e.samples
