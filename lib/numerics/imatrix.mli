(** Dense int matrices (pattern matrix [P] and doping-operation count [ν]
    of the paper). *)

include Dense.S with type elt = int

val sum : t -> int
val max_entry : t -> int
val min_entry : t -> int

val to_fmatrix : t -> Fmatrix.t
val map_to_fmatrix : (int -> float) -> t -> Fmatrix.t
(** [map_to_fmatrix h p] applies an elementwise function — e.g. the
    pattern→doping bijection [h] of Proposition 1. *)
