(** Deterministic, splittable pseudo-random number generation.

    This module is a transparent re-export of {!Nanodec_rng.Rng} — the
    implementation moved below the numerics stack so that the
    fault-injection engine ({!Nanodec_fault.Fault}) can be seeded from
    the same generator discipline without a dependency cycle.  All
    existing [Nanodec_numerics.Rng] call sites keep working, and the
    types are equal: a generator built here can be passed to any
    [Nanodec_rng] consumer and vice versa. *)

include module type of struct
  include Nanodec_rng.Rng
end
