module type ELEMENT = sig
  type t

  val zero : t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module type S = sig
  type elt
  type t

  val make : rows:int -> cols:int -> elt -> t
  val init : rows:int -> cols:int -> (int -> int -> elt) -> t
  val rows : t -> int
  val cols : t -> int
  val get : t -> int -> int -> elt
  val set : t -> int -> int -> elt -> unit
  val row : t -> int -> elt array
  val col : t -> int -> elt array
  val of_arrays : elt array array -> t
  val to_arrays : t -> elt array array
  val copy : t -> t
  val transpose : t -> t
  val map : (elt -> elt) -> t -> t
  val mapi : (int -> int -> elt -> elt) -> t -> t
  val fold : ('a -> elt -> 'a) -> 'a -> t -> 'a
  val iteri : (int -> int -> elt -> unit) -> t -> unit
  val equal : t -> t -> bool
  val count : (elt -> bool) -> t -> int
  val pp : Format.formatter -> t -> unit
end

module Make (E : ELEMENT) = struct
  type elt = E.t
  type t = { rows : int; cols : int; data : elt array }

  let check_dims ~fn rows cols =
    if rows < 1 || cols < 1 then
      invalid_arg (Printf.sprintf "Dense.%s: dimensions must be positive" fn)

  let make ~rows ~cols x =
    check_dims ~fn:"make" rows cols;
    { rows; cols; data = Array.make (rows * cols) x }

  let init ~rows ~cols f =
    check_dims ~fn:"init" rows cols;
    { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

  let rows m = m.rows
  let cols m = m.cols

  let check_index ~fn m i j =
    if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
      invalid_arg
        (Printf.sprintf "Dense.%s: index (%d, %d) outside %dx%d" fn i j m.rows
           m.cols)

  let get m i j =
    check_index ~fn:"get" m i j;
    m.data.((i * m.cols) + j)

  let set m i j x =
    check_index ~fn:"set" m i j;
    m.data.((i * m.cols) + j) <- x

  let row m i =
    check_index ~fn:"row" m i 0;
    Array.sub m.data (i * m.cols) m.cols

  let col m j =
    check_index ~fn:"col" m 0 j;
    Array.init m.rows (fun i -> m.data.((i * m.cols) + j))

  let of_arrays arrays =
    let rows = Array.length arrays in
    if rows = 0 then invalid_arg "Dense.of_arrays: no rows";
    let cols = Array.length arrays.(0) in
    if cols = 0 then invalid_arg "Dense.of_arrays: empty rows";
    Array.iter
      (fun r ->
        if Array.length r <> cols then
          invalid_arg "Dense.of_arrays: ragged rows")
      arrays;
    init ~rows ~cols (fun i j -> arrays.(i).(j))

  let to_arrays m = Array.init m.rows (fun i -> row m i)
  let copy m = { m with data = Array.copy m.data }
  let transpose m = init ~rows:m.cols ~cols:m.rows (fun i j -> get m j i)

  let map f m = { m with data = Array.map f m.data }

  let mapi f m =
    {
      m with
      data = Array.mapi (fun k x -> f (k / m.cols) (k mod m.cols) x) m.data;
    }

  let fold f acc m = Array.fold_left f acc m.data

  let iteri f m =
    Array.iteri (fun k x -> f (k / m.cols) (k mod m.cols) x) m.data

  let equal a b =
    a.rows = b.rows && a.cols = b.cols
    && Array.for_all2 E.equal a.data b.data

  let count p m =
    fold (fun acc x -> if p x then acc + 1 else acc) 0 m

  let pp ppf m =
    Format.fprintf ppf "@[<v>";
    for i = 0 to m.rows - 1 do
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "[";
      for j = 0 to m.cols - 1 do
        if j > 0 then Format.fprintf ppf " ";
        E.pp ppf (get m i j)
      done;
      Format.fprintf ppf "]"
    done;
    Format.fprintf ppf "@]"
end
