type summary = {
  count : int;
  mean : float;
  variance : float;
  std : float;
  min : float;
  max : float;
}

let require_non_empty fn xs =
  if Array.length xs = 0 then
    invalid_arg (Printf.sprintf "Descriptive.%s: empty array" fn)

let mean xs =
  require_non_empty "mean" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  require_non_empty "variance" xs;
  let n = Array.length xs in
  if n = 1 then 0.
  else
    let m = mean xs in
    let sum_sq =
      Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
    in
    sum_sq /. float_of_int (n - 1)

let std xs = sqrt (variance xs)

let min_max xs =
  require_non_empty "min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

let quantile xs p =
  require_non_empty "quantile" xs;
  if not (p >= 0. && p <= 1.) then
    invalid_arg "Descriptive.quantile: p outside [0, 1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else
    let position = p *. float_of_int (n - 1) in
    let below = int_of_float (Float.floor position) in
    let above = Stdlib.min (below + 1) (n - 1) in
    let weight = position -. float_of_int below in
    ((1. -. weight) *. sorted.(below)) +. (weight *. sorted.(above))

let median xs = quantile xs 0.5

let summarize xs =
  require_non_empty "summarize" xs;
  let lo, hi = min_max xs in
  {
    count = Array.length xs;
    mean = mean xs;
    variance = variance xs;
    std = std xs;
    min = lo;
    max = hi;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.6g std=%.6g min=%.6g max=%.6g" s.count
    s.mean s.std s.min s.max

let histogram ~bins xs =
  require_non_empty "histogram" xs;
  if bins < 1 then invalid_arg "Descriptive.histogram: bins must be >= 1";
  let lo, hi = min_max xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1. in
  let counts = Array.make bins 0 in
  let place x =
    let index =
      int_of_float (Float.floor ((x -. lo) /. width))
    in
    let index = Stdlib.max 0 (Stdlib.min (bins - 1) index) in
    counts.(index) <- counts.(index) + 1
  in
  Array.iter place xs;
  Array.mapi
    (fun i c ->
      let bin_lo = lo +. (float_of_int i *. width) in
      (bin_lo, bin_lo +. width, c))
    counts
