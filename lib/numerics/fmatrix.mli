(** Dense float matrices with the entrywise operations used by the
    fabrication-cost analysis (doping matrices [D], [S] and variability
    matrix [Σ] of the paper). *)

include Dense.S with type elt = float

val norm_l1 : t -> float
(** Entrywise 1-norm {m ‖A‖₁ = Σᵢⱼ |aᵢⱼ|} — the decoder-variability cost
    of the paper's Proposition 3. *)

val sum : t -> float
val average : t -> float
val max_entry : t -> float
val min_entry : t -> float
val scale : float -> t -> t
val add : t -> t -> t
val sub : t -> t -> t

val approx_equal : eps:float -> t -> t -> bool
(** Entrywise comparison with absolute tolerance [eps]. *)

val distinct_nonzero : eps:float -> float array -> int
(** Number of distinct (within [eps]) non-zero values in a row — the
    per-step lithography count {m φᵢ} of the paper's Definition 4. *)
