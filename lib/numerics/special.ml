let sqrt2 = sqrt 2.
let sqrt_2pi = sqrt (2. *. Float.pi)

(* Abramowitz & Stegun 7.1.26: |error| <= 1.5e-7 on [0, inf). *)
let erf_as x =
  let a1 = 0.254829592
  and a2 = -0.284496736
  and a3 = 1.421413741
  and a4 = -1.453152027
  and a5 = 1.061405429
  and p = 0.3275911 in
  let t = 1. /. (1. +. (p *. x)) in
  let poly = t *. (a1 +. (t *. (a2 +. (t *. (a3 +. (t *. (a4 +. (t *. a5)))))))) in
  1. -. (poly *. exp (-.x *. x))

let erf x =
  if Float.is_nan x then x
  else if x >= 0. then erf_as x
  else -.erf_as (-.x)

(* For large |x| compute the complement directly: 1 - erf x would lose all
   precision once erf x rounds to 1. *)
let erfc_pos x =
  if x < 0.5 then 1. -. erf_as x
  else
    let a1 = 0.254829592
    and a2 = -0.284496736
    and a3 = 1.421413741
    and a4 = -1.453152027
    and a5 = 1.061405429
    and p = 0.3275911 in
    let t = 1. /. (1. +. (p *. x)) in
    let poly =
      t *. (a1 +. (t *. (a2 +. (t *. (a3 +. (t *. (a4 +. (t *. a5))))))))
    in
    poly *. exp (-.x *. x)

let erfc x = if x >= 0. then erfc_pos x else 2. -. erfc_pos (-.x)

(* Winitzki's approximation followed by Newton refinement.  The seed is
   accurate to ~2e-3; two Newton steps on erf bring it to ~1e-12 over the
   bulk of the domain. *)
let erf_inv y =
  if not (y > -1. && y < 1.) then
    invalid_arg "Special.erf_inv: argument outside (-1, 1)";
  if y = 0. then 0.
  else
    let a = 0.147 in
    let ln1my2 = log (1. -. (y *. y)) in
    let t1 = (2. /. (Float.pi *. a)) +. (ln1my2 /. 2.) in
    let seed =
      Float.copy_sign (sqrt (sqrt ((t1 *. t1) -. (ln1my2 /. a)) -. t1)) y
    in
    let newton x =
      let fx = erf x -. y in
      let dfx = 2. /. sqrt Float.pi *. exp (-.x *. x) in
      x -. (fx /. dfx)
    in
    newton (newton seed)

let check_sigma ~fn sigma =
  if not (sigma > 0.) then
    invalid_arg (Printf.sprintf "Special.%s: sigma must be positive" fn)

let normal_pdf ?(mu = 0.) ?(sigma = 1.) x =
  check_sigma ~fn:"normal_pdf" sigma;
  let z = (x -. mu) /. sigma in
  exp (-0.5 *. z *. z) /. (sigma *. sqrt_2pi)

let normal_cdf ?(mu = 0.) ?(sigma = 1.) x =
  check_sigma ~fn:"normal_cdf" sigma;
  let z = (x -. mu) /. (sigma *. sqrt2) in
  0.5 *. erfc (-.z)

let normal_quantile ?(mu = 0.) ?(sigma = 1.) p =
  check_sigma ~fn:"normal_quantile" sigma;
  if not (p > 0. && p < 1.) then
    invalid_arg "Special.normal_quantile: probability outside (0, 1)";
  mu +. (sigma *. sqrt2 *. erf_inv ((2. *. p) -. 1.))

let normal_interval_probability ~sigma ~half_width =
  check_sigma ~fn:"normal_interval_probability" sigma;
  if half_width <= 0. then 0. else erf (half_width /. (sigma *. sqrt2))

(* Lanczos approximation, g = 7, 9 coefficients. *)
let lanczos_coefficients =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if not (x > 0.) then invalid_arg "Special.log_gamma: argument must be > 0";
  if x < 0.5 then
    (* Reflection: ln Γ(x) = ln(π / sin(πx)) − ln Γ(1 − x). *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else
    let x = x -. 1. in
    let acc = ref lanczos_coefficients.(0) in
    for i = 1 to Array.length lanczos_coefficients - 1 do
      acc := !acc +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2. *. Float.pi))
    +. (((x +. 0.5) *. log t) -. t)
    +. log !acc

let factorial_table =
  let table = Array.make 21 1. in
  for i = 1 to 20 do
    table.(i) <- table.(i - 1) *. float_of_int i
  done;
  table

let log_factorial n =
  if n < 0 then invalid_arg "Special.log_factorial: negative argument";
  if n <= 20 then log factorial_table.(n)
  else log_gamma (float_of_int (n + 1))

let choose n k =
  if k < 0 || k > n then 0.
  else if n <= 20 then
    factorial_table.(n) /. (factorial_table.(k) *. factorial_table.(n - k))
  else
    Float.round (exp (log_factorial n -. log_factorial k -. log_factorial (n - k)))

let multinomial counts =
  List.iter
    (fun k ->
      if k < 0 then invalid_arg "Special.multinomial: negative count")
    counts;
  let total = List.fold_left ( + ) 0 counts in
  let log_result =
    List.fold_left (fun acc k -> acc -. log_factorial k)
      (log_factorial total) counts
  in
  Float.round (exp log_result)
