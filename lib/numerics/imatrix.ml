include Dense.Make (struct
  type t = int

  let zero = 0
  let equal = Int.equal
  let pp = Format.pp_print_int
end)

let sum m = fold ( + ) 0 m
let max_entry m = fold Stdlib.max min_int m
let min_entry m = fold Stdlib.min max_int m

let map_to_fmatrix h m =
  Fmatrix.init ~rows:(rows m) ~cols:(cols m) (fun i j -> h (get m i j))

let to_fmatrix m = map_to_fmatrix float_of_int m
