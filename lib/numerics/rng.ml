(* Re-export of the root generator library.

   [Rng] moved to [lib/rng] (library [nanodec_rng]) so layers below the
   numerics stack — the fault-injection engine in particular — can draw
   from the same deterministic streams without a dependency cycle.
   Every [Nanodec_numerics.Rng] value *is* a [Nanodec_rng.Rng] value;
   the types are equal, not merely isomorphic. *)

include Nanodec_rng.Rng
