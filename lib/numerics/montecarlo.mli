(** Monte-Carlo estimation with confidence intervals.

    One engine, one entry point: {!run} executes a {!spec} — a sampling
    {!strategy} crossed with a {!stopping} rule — against a {!target}.
    The historical {!estimate}/{!estimate_par} survive as thin wrappers
    over [run] with the plain/fixed spec, proven equivalent by the
    proptest oracle suite.

    {2 Determinism contract}

    Every estimate is a {e pure function of (seed, spec, target)}:
    each sample owns its own {!Rng.split_n} stream and its own result
    slot, and the slots fold sequentially in sample order once the
    fan-out joins.  Chunk count, batch size, domain count and
    scheduling order — including per-machine autotuned plans — move
    wall-clock time only, never a result bit.  Adaptive stopping keeps
    the property round by round: round [r]'s streams derive from one
    sequential {!Rng.split} of the caller's generator, so the
    stop/continue decision after each round is itself bit-stable across
    every schedule. *)

type estimate = {
  samples : int;
  mean : float;
  std_error : float;
  ci95_low : float;
  ci95_high : float;
}
(** Sample mean with its standard error and normal-approximation 95 %
    confidence interval.  For stratified runs the standard error is the
    proper stratified one ((1/K{^2}) Σ{_k} var{_k}/n{_k} under the
    balanced equal-weight allocation the engine enforces), not the
    pooled variance — pooling would re-include the between-strata
    spread the strategy removed. *)

val z95 : float
(** 1.959963984540054 — the two-sided 95 % normal quantile behind
    every [ci95] bound and the adaptive stopping test; exposed so
    benches and callers converting variances to samples-to-CI use the
    engine's own constant. *)

(** {1 Specs: strategy × stopping rule} *)

type strategy = Nanodec_parallel.Run_ctx.mc_method =
  | Plain  (** independent draws — the exact reference estimator *)
  | Antithetic
      (** evaluate each draw and its sign-mirrored twin as one pair;
          unbiased always, a variance win only when the integrand has
          an odd component (window yield is even in the noise vector,
          where the pair is a draw-cost optimisation instead) *)
  | Stratified of int
      (** stratify the dominant noise axis into this many strata
          (>= 2); sample totals are aligned up to multiples of the
          stratum count so the allocation stays exactly balanced *)
  | Importance of float
      (** shift the failure-dominating Gaussians toward the failure
          boundary by this fraction of the decision window (> 0,
          finite) and reweight with the exact likelihood ratio *)
(** Re-export (by type equation) of
    {!Nanodec_parallel.Run_ctx.mc_method}: the datatype lives in the
    context so it can travel from the CLI flags and the serve protocol
    down to every estimator without a dependency cycle.  Unlike
    scheduling knobs, the strategy {e is} part of the numeric result:
    each is a different (equally unbiased) estimator with its own draw
    stream. *)

type stopping =
  | Fixed_samples of int  (** exactly this many samples (>= 2) *)
  | Until_rel_error of {
      rel_error : float;  (** target: z95·SE <= rel_error·|mean| *)
      min_samples : int;
      max_samples : int;
    }
      (** CI-driven adaptive stopping by deterministic batch-doubling
          rounds: run [min_samples], then double the running total each
          round (capped at [max_samples]), stopping at the first round
          whose estimate meets the target.  The round schedule depends
          only on (min, max), never on observed values' timing, so the
          result is bit-stable across domains/chunks/batch like every
          other estimate. *)

type spec = { strategy : strategy; stopping : stopping }

val fixed : int -> stopping

val until_rel_error : ?min_samples:int -> ?max_samples:int -> float -> stopping
(** [until_rel_error rel_error] with [min_samples] defaulting to
    {!default_min_samples} and [max_samples] to
    {!default_max_samples}. *)

val spec : ?strategy:strategy -> stopping -> spec
(** [strategy] defaults to {!Plain}. *)

val spec_of_ctx :
  ?ctx:Nanodec_parallel.Run_ctx.t -> samples:int -> unit -> spec
(** The spec a context implies for a [samples]-sized job: the context's
    [mc_method] crossed with [Fixed_samples samples] — or, when the
    context carries a [rel_error], adaptive stopping with [samples] as
    the cap (and [min(256, samples)] as the floor).  This is how the
    CLI's [--mc-method]/[--rel-error] and the serve protocol's
    [method]/[rel_error] fields reach the estimators. *)

val default_min_samples : int
(** 256 *)

val default_max_samples : int
(** 2{^22} *)

val spec_key : spec -> string
(** Canonical injective serialization ["mc/v1|..."] — the spec
    component of serve artifact-cache keys.  Floats render as [%h], so
    distinct specs never collide and keys are platform-stable. *)

val strategy_name : strategy -> string
(** Human-readable tag ([plain], [antithetic], [stratified:K],
    [importance:S]) matching the CLI's [--mc-method] syntax. *)

(** {1 Targets} *)

type target
(** An integrand bundled with its optional strategy-specific
    evaluators.  Each evaluator reduces one sample to one float whose
    {e expectation equals the plain mean} — antithetic returns the pair
    average, importance the already-reweighted value — so the engine
    stays strategy-agnostic.  Running a spec whose strategy the target
    does not implement raises
    [Nanodec_error.Error (Invalid_input _)]. *)

val target :
  ?antithetic:(Rng.t -> float) ->
  ?stratified:(strata:int -> stratum:int -> Rng.t -> float) ->
  ?importance:(shift:float -> Rng.t -> float) ->
  (Rng.t -> float) ->
  target
(** [target plain] supports {!Plain} only; each optional evaluator
    unlocks the matching strategy.  [Nanodec_crossbar.Kernel.target]
    builds the fully-equipped target for the compiled yield path. *)

(** {1 The unified estimator} *)

val run :
  ?ctx:Nanodec_parallel.Run_ctx.t -> spec -> Rng.t -> target -> estimate
(** [run ?ctx spec rng target] — the single entry point every sampling
    configuration goes through.  The context supplies the pool, the
    scheduling policy (chunking/batch — wall-clock only) and the
    telemetry sink (span [mc.estimate_par], per-chunk histogram
    [mc.chunk_s], counter [mc.samples], rate [mc.samples_per_sec]);
    the spec supplies everything numeric.

    [run ?ctx (spec (fixed n)) rng (target f)] is bit-for-bit
    [estimate_par ?ctx rng ~samples:n f].

    Raises [Invalid_argument] on a malformed spec (fewer than 2
    samples, strata < 2, non-positive importance shift, rel_error
    outside (0, 0.5], [max_samples < min_samples]). *)

val run_many :
  ?ctx:Nanodec_parallel.Run_ctx.t ->
  (spec * Rng.t * target) array ->
  estimate array
(** [run_many ?ctx items] — the serve batch-fusion entry point: K
    independent fixed-stopping estimates executed as {e one} pool
    fan-out.  Requests are laid out contiguously on a global sample
    axis for scheduling only; each item keeps its own
    {!Rng.split_n} stream family, evaluator, result slots and in-order
    merge, so [run_many [|(s0,r0,t0); ...|]].(i) is bit-for-bit
    [run ?ctx s_i r_i t_i] — fusion moves wall-clock time, never a
    result bit.  Chunk bodies restart cleanly, so the pool's
    retry/degradation recovery applies to fused jobs unchanged.

    Raises [Invalid_argument] if any item is malformed or uses
    {!Until_rel_error} stopping (adaptive rounds cannot share a
    fan-out). *)

(** {1 Sequential estimators} *)

val estimate : Rng.t -> samples:int -> (Rng.t -> float) -> estimate
(** [estimate rng ~samples f] — {!run} with the plain/fixed spec and no
    context.  [samples] must be at least 2.  Uses the same per-sample
    split-stream discipline as {!estimate_par}, so the two agree
    bit-for-bit on the same seed. *)

val estimate_proportion : Rng.t -> samples:int -> (Rng.t -> bool) -> estimate
(** Bernoulli specialisation: the standard error uses the Wilson-style
    p(1-p)/n variance, never larger than the generic estimator's.
    Single-stream, sequential-only. *)

(** {1 Domain-parallel chunked estimators}

    Thin wrappers over {!run} with [spec = plain/fixed], kept for the
    existing call sites.  Scheduling comes entirely from the context:
    [Run_ctx.Fixed n] pins the chunk count, [Auto] (the default) lets
    {!Nanodec_parallel.Autotune} size chunks and batches from the
    sink's measured per-sample cost, and the context's [batch]
    overrides the plan's batch either way.  All of it moves wall-clock
    time only, never results. *)

val default_chunks : int
(** 64 — the autotuner's fallback chunk floor (see
    {!Nanodec_parallel.Autotune}): comfortably more chunks than any
    realistic pool has domains, so telemetry-off runs still
    load-balance. *)

val estimate_par :
  ?ctx:Nanodec_parallel.Run_ctx.t ->
  Rng.t ->
  samples:int ->
  (Rng.t -> float) ->
  estimate
(** Chunked {!estimate}.  [samples] must be at least 2.  The pool (if
    any) rides inside [?ctx] ([Run_ctx.make ~pool ()]). *)

val estimate_proportion_par :
  ?ctx:Nanodec_parallel.Run_ctx.t ->
  Rng.t ->
  samples:int ->
  (Rng.t -> bool) ->
  estimate
(** Chunked {!estimate_proportion}; the per-sample hits are exact
    booleans, so the count is exact in any order (folded in sample
    order anyway, for uniformity).  The pool rides inside [?ctx]. *)

val within : estimate -> float -> bool
(** [within e x] tests whether [x] lies inside the 95 % interval of [e]. *)

val pp : Format.formatter -> estimate -> unit
