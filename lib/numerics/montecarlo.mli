(** Monte-Carlo estimation with confidence intervals. *)

type estimate = {
  samples : int;
  mean : float;
  std_error : float;
  ci95_low : float;
  ci95_high : float;
}
(** Sample mean with its standard error and normal-approximation 95 %
    confidence interval. *)

val estimate : Rng.t -> samples:int -> (Rng.t -> float) -> estimate
(** [estimate rng ~samples f] averages [samples] evaluations of [f];
    [samples] must be at least 2. *)

val estimate_proportion : Rng.t -> samples:int -> (Rng.t -> bool) -> estimate
(** Bernoulli specialisation: the standard error uses the Wilson-style
    p(1-p)/n variance, never larger than the generic estimator's. *)

(** {1 Domain-parallel chunked estimators}

    [estimate_par] and [estimate_proportion_par] split the job into
    [chunks] fixed chunks (independent of the pool size), give chunk
    [i] the [i]-th stream of {!Rng.split_n}, and merge the partial
    (count, sum, sum-of-squares) accumulators in chunk index order.
    The result is therefore {e bit-for-bit identical} for every domain
    count — including [pool = None], the sequential reference path —
    though it differs from the single-stream {!estimate} of the same
    seed, which consumes the generator differently.

    Both take an optional {!Nanodec_parallel.Run_ctx.t}: the context
    supplies the pool and the telemetry sink (span [mc.estimate_par],
    per-chunk histogram [mc.chunk_s], counter [mc.samples], rate
    [mc.samples_per_sec]).  The explicit [?pool] argument is kept for
    back compatibility and wins over the context's pool when both are
    given. *)

val default_chunks : int
(** 64 — comfortably more chunks than any realistic pool has domains,
    so the fan-out load-balances without changing results. *)

val estimate_par :
  ?ctx:Nanodec_parallel.Run_ctx.t ->
  ?pool:Nanodec_parallel.Pool.t ->
  ?chunks:int ->
  Rng.t ->
  samples:int ->
  (Rng.t -> float) ->
  estimate
(** Chunked {!estimate}.  [samples] must be at least 2 and [chunks]
    ([default_chunks] by default) at least 1; [chunks > samples] leaves
    the excess chunks empty and is valid. *)

val estimate_proportion_par :
  ?ctx:Nanodec_parallel.Run_ctx.t ->
  ?pool:Nanodec_parallel.Pool.t ->
  ?chunks:int ->
  Rng.t ->
  samples:int ->
  (Rng.t -> bool) ->
  estimate
(** Chunked {!estimate_proportion}; the per-chunk hit counts are exact
    integers, so the merge is exact in any order (kept in chunk order
    anyway for uniformity). *)

val within : estimate -> float -> bool
(** [within e x] tests whether [x] lies inside the 95 % interval of [e]. *)

val pp : Format.formatter -> estimate -> unit
