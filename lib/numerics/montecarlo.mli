(** Monte-Carlo estimation with confidence intervals. *)

type estimate = {
  samples : int;
  mean : float;
  std_error : float;
  ci95_low : float;
  ci95_high : float;
}
(** Sample mean with its standard error and normal-approximation 95 %
    confidence interval. *)

val estimate : Rng.t -> samples:int -> (Rng.t -> float) -> estimate
(** [estimate rng ~samples f] averages [samples] evaluations of [f];
    [samples] must be at least 2. *)

val estimate_proportion : Rng.t -> samples:int -> (Rng.t -> bool) -> estimate
(** Bernoulli specialisation: the standard error uses the Wilson-style
    p(1-p)/n variance, never larger than the generic estimator's. *)

val within : estimate -> float -> bool
(** [within e x] tests whether [x] lies inside the 95 % interval of [e]. *)

val pp : Format.formatter -> estimate -> unit
