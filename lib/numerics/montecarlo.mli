(** Monte-Carlo estimation with confidence intervals. *)

type estimate = {
  samples : int;
  mean : float;
  std_error : float;
  ci95_low : float;
  ci95_high : float;
}
(** Sample mean with its standard error and normal-approximation 95 %
    confidence interval. *)

val estimate : Rng.t -> samples:int -> (Rng.t -> float) -> estimate
(** [estimate rng ~samples f] averages [samples] evaluations of [f];
    [samples] must be at least 2. *)

val estimate_proportion : Rng.t -> samples:int -> (Rng.t -> bool) -> estimate
(** Bernoulli specialisation: the standard error uses the Wilson-style
    p(1-p)/n variance, never larger than the generic estimator's. *)

(** {1 Domain-parallel chunked estimators}

    [estimate_par] and [estimate_proportion_par] give {e every sample}
    its own stream of {!Rng.split_n} and its own result slot, then fold
    the slots sequentially in sample order after the fan-out joins.
    The estimate is therefore a pure function of (seed, [samples], [f])
    — {e bit-for-bit identical} for every chunk count, batch size and
    domain count, including [pool = None], the sequential reference
    path — though it differs from the single-stream {!estimate} of the
    same seed, which consumes the generator differently.

    Scheduling: chunks are contiguous sample ranges.  An explicit
    [?chunks] fixes the count (batch 1 unless [?batch] is given); a
    context carrying [Run_ctx.Fixed n] does the same; otherwise
    {!Nanodec_parallel.Autotune} sizes chunks and batches from the
    sink's measured per-sample cost (deterministic fallback without
    one) and records the decision as [pool.autotune.*] counters.  All
    of this moves wall-clock time only, never results.

    Both take an optional {!Nanodec_parallel.Run_ctx.t}: the context
    supplies the pool, the chunking policy and the telemetry sink (span
    [mc.estimate_par], per-chunk histogram [mc.chunk_s], counter
    [mc.samples], rate [mc.samples_per_sec]).  The explicit [?pool]
    argument is kept for back compatibility and wins over the context's
    pool when both are given. *)

val default_chunks : int
(** 64 — the autotuner's fallback chunk floor (see
    {!Nanodec_parallel.Autotune}): comfortably more chunks than any
    realistic pool has domains, so telemetry-off runs still
    load-balance. *)

val estimate_par :
  ?ctx:Nanodec_parallel.Run_ctx.t ->
  ?pool:Nanodec_parallel.Pool.t ->
  ?chunks:int ->
  ?batch:int ->
  Rng.t ->
  samples:int ->
  (Rng.t -> float) ->
  estimate
(** Chunked {!estimate}.  [samples] must be at least 2; [chunks] and
    [batch], when given, at least 1.  [chunks > samples] leaves the
    excess chunks empty and is valid. *)

val estimate_proportion_par :
  ?ctx:Nanodec_parallel.Run_ctx.t ->
  ?pool:Nanodec_parallel.Pool.t ->
  ?chunks:int ->
  ?batch:int ->
  Rng.t ->
  samples:int ->
  (Rng.t -> bool) ->
  estimate
(** Chunked {!estimate_proportion}; the per-sample hits are exact
    booleans, so the count is exact in any order (folded in sample
    order anyway, for uniformity). *)

val within : estimate -> float -> bool
(** [within e x] tests whether [x] lies inside the 95 % interval of [e]. *)

val pp : Format.formatter -> estimate -> unit
