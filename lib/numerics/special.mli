(** Special mathematical functions.

    OCaml's standard library offers no error function, gamma function or
    normal quantile, all of which the yield analysis needs.  The
    implementations below are classical series / rational approximations
    with documented absolute accuracy, adequate for circuit-yield work
    (probabilities are compared against Monte-Carlo noise far above 1e-10). *)

val erf : float -> float
(** [erf x] is the error function {m 2/√π ∫₀ˣ e^{-t²} dt}.
    Absolute error below 1.5e-7 (Abramowitz & Stegun 7.1.26), sign-symmetric. *)

val erfc : float -> float
(** [erfc x = 1 - erf x], computed directly for large [x] to avoid
    cancellation. *)

val erf_inv : float -> float
(** [erf_inv y] is the inverse of {!erf} on (-1, 1), refined by two Newton
    steps; raises [Invalid_argument] outside (-1, 1). *)

val normal_pdf : ?mu:float -> ?sigma:float -> float -> float
(** Density of the normal distribution; [sigma] must be positive. *)

val normal_cdf : ?mu:float -> ?sigma:float -> float -> float
(** Cumulative distribution function of the normal distribution. *)

val normal_quantile : ?mu:float -> ?sigma:float -> float -> float
(** Inverse of {!normal_cdf}; raises [Invalid_argument] outside (0, 1). *)

val normal_interval_probability : sigma:float -> half_width:float -> float
(** [normal_interval_probability ~sigma ~half_width] is
    {m P(|X| < half\_width)} for {m X ~ N(0, σ²)}.  This is the
    addressability test of one doping region: the threshold voltage must
    stay within [±half_width] of its nominal value. *)

val log_gamma : float -> float
(** Natural logarithm of the gamma function for positive arguments
    (Lanczos approximation, relative error below 1e-10). *)

val log_factorial : int -> float
(** [log_factorial n] = ln n!; exact table for small [n], {!log_gamma}
    beyond. *)

val choose : int -> int -> float
(** Binomial coefficient as a float (exact for all values representable
    without rounding). *)

val multinomial : int list -> float
(** [multinomial [k1; ...; km]] is {m (Σki)! / Πki!} — the size of a hot
    code space with digit counts [ki]. *)
