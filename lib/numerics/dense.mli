(** Generic dense row-major matrices, shared by the float and int
    specialisations ({!Fmatrix}, {!Imatrix}). *)

module type ELEMENT = sig
  type t

  val zero : t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module type S = sig
  type elt
  type t

  val make : rows:int -> cols:int -> elt -> t
  (** Constant matrix; dimensions must be positive. *)

  val init : rows:int -> cols:int -> (int -> int -> elt) -> t
  (** [init ~rows ~cols f] has entry [f i j] at row [i], column [j]. *)

  val rows : t -> int
  val cols : t -> int
  val get : t -> int -> int -> elt
  val set : t -> int -> int -> elt -> unit

  val row : t -> int -> elt array
  (** Fresh copy of a row. *)

  val col : t -> int -> elt array

  val of_arrays : elt array array -> t
  (** Rows must be non-empty and of equal length. *)

  val to_arrays : t -> elt array array
  val copy : t -> t
  val transpose : t -> t
  val map : (elt -> elt) -> t -> t
  val mapi : (int -> int -> elt -> elt) -> t -> t
  val fold : ('a -> elt -> 'a) -> 'a -> t -> 'a
  val iteri : (int -> int -> elt -> unit) -> t -> unit
  val equal : t -> t -> bool
  val count : (elt -> bool) -> t -> int
  val pp : Format.formatter -> t -> unit
end

module Make (E : ELEMENT) : S with type elt = E.t
