(** Descriptive statistics over float arrays. *)

type summary = {
  count : int;
  mean : float;
  variance : float;  (** unbiased sample variance (n-1 denominator) *)
  std : float;
  min : float;
  max : float;
}

val mean : float array -> float
(** Arithmetic mean; raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance; 0 for singleton arrays. *)

val std : float array -> float

val min_max : float array -> float * float

val quantile : float array -> float -> float
(** [quantile xs p] with linear interpolation between order statistics;
    [p] in [0, 1].  Does not mutate its argument. *)

val median : float array -> float

val summarize : float array -> summary

val pp_summary : Format.formatter -> summary -> unit

val histogram : bins:int -> float array -> (float * float * int) array
(** [histogram ~bins xs] returns [(lo, hi, count)] per bin over the data
    range; [bins >= 1]. *)
