(** Per-wire defect maps sampled from a cave analysis.

    The analytic model gives each wire a survival probability; a defect
    map is one concrete fabrication outcome — which wires of each layer
    actually work.  Maps are deterministic given the generator, so whole
    memories are reproducible from a seed. *)

open Nanodec_numerics

type wire_state =
  | Working
  | Removed_by_layout  (** shared between pads or in excess of Ω *)
  | Failed_variability  (** threshold voltage drifted out of the window *)

val sample_layer : Rng.t -> Cave.analysis -> wires:int -> wire_state array
(** One outcome for a layer of [wires] nanowires, tiled by half caves
    that repeat the analysed cave's layout and probabilities. *)

val usable_indices : wire_state array -> int array
(** Indices of [Working] wires, ascending. *)

val layer_yield : wire_state array -> float
(** Fraction of [Working] wires. *)

val pp_row : Format.formatter -> wire_state array -> unit
(** Compact map: ['#'] working, ['.'] layout loss, ['x'] variability
    loss. *)
