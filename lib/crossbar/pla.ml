type literal = { input : int; positive : bool }
type product = literal list
type sop = product list

type t = {
  memory : Memory.t;
  inputs : int;
  (* Physical columns: rail_columns.(2i) carries input i, .(2i+1) its
     complement; output_columns.(o) collects output o's terms. *)
  rail_columns : int array;
  output_columns : int array;
  term_rows : int array;
}

type error =
  [ `Not_enough_rows of int * int | `Not_enough_columns of int * int ]

let normalize_product product =
  List.sort_uniq Stdlib.compare
    (List.map (fun l -> (l.input, l.positive)) product)

let check_inputs ~inputs outputs =
  List.iter
    (fun sop ->
      List.iter
        (fun product ->
          List.iter
            (fun l ->
              if l.input < 0 || l.input >= inputs then
                invalid_arg
                  (Printf.sprintf "Pla.program: literal on input %d of %d"
                     l.input inputs))
            product)
        sop)
    outputs

let program memory ~inputs ~outputs =
  if inputs < 0 then invalid_arg "Pla.program: negative input count";
  check_inputs ~inputs outputs;
  (* Shared term list: one row per distinct normalised product. *)
  let table = Hashtbl.create 16 in
  let terms = ref [] in
  let term_index product =
    let key = normalize_product product in
    match Hashtbl.find_opt table key with
    | Some index -> index
    | None ->
      let index = Hashtbl.length table in
      Hashtbl.add table key index;
      terms := key :: !terms;
      index
  in
  let output_terms = List.map (List.map term_index) outputs in
  let term_list = Array.of_list (List.rev !terms) in
  let n_terms = Array.length term_list in
  let n_outputs = List.length outputs in
  let good_rows = Defect_map.usable_indices (Memory.row_states memory) in
  let good_cols = Defect_map.usable_indices (Memory.col_states memory) in
  let cols_needed = (2 * inputs) + n_outputs in
  if Array.length good_rows < n_terms then
    Error (`Not_enough_rows (n_terms, Array.length good_rows))
  else if Array.length good_cols < cols_needed then
    Error (`Not_enough_columns (cols_needed, Array.length good_cols))
  else begin
    let rail_columns = Array.sub good_cols 0 (2 * inputs) in
    let output_columns = Array.sub good_cols (2 * inputs) n_outputs in
    let term_rows = Array.sub good_rows 0 n_terms in
    let connect ~row ~col value =
      match Memory.write memory ~row ~col value with
      | Ok () -> ()
      | Error _ ->
        (* Unreachable: rows and columns come from the working sets. *)
        assert false
    in
    (* Plane 1: term t is the wired NOR of the complements of its
       literals, so connect rail (input, not positive) for each literal. *)
    Array.iteri
      (fun t literals ->
        let row = term_rows.(t) in
        Array.iteri
          (fun _ col -> connect ~row ~col false)
          rail_columns;
        Array.iter (fun col -> connect ~row ~col false) output_columns;
        List.iter
          (fun (input, positive) ->
            let complement_rail = (2 * input) + if positive then 1 else 0 in
            connect ~row ~col:rail_columns.(complement_rail) true)
          literals)
      term_list;
    (* Plane 2: connect each output column to its terms' rows. *)
    List.iteri
      (fun o term_indices ->
        List.iter
          (fun t ->
            connect ~row:term_rows.(t) ~col:output_columns.(o) true)
          term_indices)
      output_terms;
    Ok { memory; inputs; rail_columns; output_columns; term_rows }
  end

let n_terms t = Array.length t.term_rows
let rows_used t = Array.to_list t.term_rows

let connected t ~row ~col =
  match Memory.read t.memory ~row ~col with
  | Ok value -> value
  | Error _ -> assert false

let evaluate t input_values =
  if Array.length input_values <> t.inputs then
    invalid_arg "Pla.evaluate: input arity mismatch";
  let rail_value r = if r mod 2 = 0 then input_values.(r / 2) else not input_values.(r / 2) in
  (* Wired NOR per term: low as soon as any connected rail is high. *)
  let term_values =
    Array.map
      (fun row ->
        let vetoed = ref false in
        Array.iteri
          (fun r col ->
            if connected t ~row ~col && rail_value r then vetoed := true)
          t.rail_columns;
        not !vetoed)
      t.term_rows
  in
  (* Second plane + output inverter: output = OR of connected terms. *)
  Array.map
    (fun col ->
      let any = ref false in
      Array.iteri
        (fun index row ->
          if connected t ~row ~col && term_values.(index) then any := true)
        t.term_rows;
      !any)
    t.output_columns

let truth_table t =
  let combinations = 1 lsl t.inputs in
  List.init combinations (fun bits ->
      let input_values =
        Array.init t.inputs (fun i -> bits land (1 lsl i) <> 0)
      in
      evaluate t input_values)
