type config = {
  cave : Cave.config;
  raw_bits : int;
}

let default_config = { cave = Cave.default_config; raw_bits = 16 * 1024 * 8 }

type report = {
  config : config;
  cave_analysis : Cave.analysis;
  wires_per_layer : int;
  caves_per_layer : int;
  cave_yield : float;
  crossbar_yield : float;
  effective_bits : float;
  side : float;
  area : float;
  bit_area : float;
}

let evaluate config =
  if config.raw_bits < 1 then
    invalid_arg "Array_sim.evaluate: raw_bits must be positive";
  let cave_analysis = Cave.analyze config.cave in
  let wires_per_layer =
    int_of_float (ceil (sqrt (float_of_int config.raw_bits)))
  in
  let wires_per_cave = 2 * config.cave.Cave.n_wires in
  let caves_per_layer =
    (wires_per_layer + wires_per_cave - 1) / wires_per_cave
  in
  let cave_yield = cave_analysis.Cave.yield in
  let crossbar_yield = cave_yield *. cave_yield in
  let effective_bits = float_of_int config.raw_bits *. crossbar_yield in
  let rules = config.cave.Cave.rules in
  (* The last cave may be partial: the array is as wide as the wires it
     actually needs, plus one wall per cave. *)
  let array_width =
    (float_of_int wires_per_layer *. rules.Geometry.nanowire_pitch)
    +. (float_of_int caves_per_layer *. rules.Geometry.cave_wall)
  in
  let side =
    array_width
    +. Geometry.decoder_extent rules ~code_length:config.cave.Cave.code_length
  in
  let area = side *. side in
  let bit_area = if effective_bits > 0. then area /. effective_bits else infinity in
  {
    config;
    cave_analysis;
    wires_per_layer;
    caves_per_layer;
    cave_yield;
    crossbar_yield;
    effective_bits;
    side;
    area;
    bit_area;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>code %s  M=%d  n=%d  N=%d  Omega=%d@,\
     wires/layer %d  caves/layer %d  pads/half-cave %d@,\
     cave yield Y = %.3f  crossbar yield Y^2 = %.3f@,\
     D_EFF = %.0f / %d bits@,\
     side %.0f nm  area %.3e nm^2  bit area %.1f nm^2@]"
    (Nanodec_codes.Codebook.name r.config.cave.Cave.code_type)
    r.config.cave.Cave.code_length r.config.cave.Cave.radix
    r.config.cave.Cave.n_wires r.cave_analysis.Cave.omega r.wires_per_layer
    r.caves_per_layer r.cave_analysis.Cave.layout.Geometry.n_pads
    r.cave_yield r.crossbar_yield r.effective_bits r.config.raw_bits r.side
    r.area r.bit_area
