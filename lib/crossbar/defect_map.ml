open Nanodec_numerics

type wire_state = Working | Removed_by_layout | Failed_variability

let sample_layer rng analysis ~wires =
  if wires < 1 then invalid_arg "Defect_map.sample_layer: wires must be >= 1";
  let n = analysis.Cave.config.Cave.n_wires in
  Array.init wires (fun w ->
      let i = w mod n in
      match analysis.Cave.layout.Geometry.statuses.(i) with
      | Geometry.Shared_between_pads _ | Geometry.Excess_in_pad _ ->
        Removed_by_layout
      | Geometry.Addressable _ ->
        if Rng.float rng < analysis.Cave.wire_probability.(i) then Working
        else Failed_variability)

let usable_indices states =
  let indices = ref [] in
  Array.iteri
    (fun i state ->
      match state with
      | Working -> indices := i :: !indices
      | Removed_by_layout | Failed_variability -> ())
    states;
  Array.of_list (List.rev !indices)

let layer_yield states =
  float_of_int (Array.length (usable_indices states))
  /. float_of_int (Array.length states)

let pp_row ppf states =
  Array.iter
    (fun state ->
      Format.pp_print_char ppf
        (match state with
        | Working -> '#'
        | Removed_by_layout -> '.'
        | Failed_variability -> 'x'))
    states
