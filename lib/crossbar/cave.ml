open Nanodec_codes
open Nanodec_numerics
open Nanodec_physics
open Nanodec_mspt

let log_src = Logs.Src.create "nanodec.cave" ~doc:"Half-cave decoder analysis"

module Log = (val Logs.src_log log_src)

type config = {
  rules : Geometry.rules;
  sigma_t : float;
  sigma_base : float;
  margin_fraction : float;
  supply_voltage : float;
  placement : Vt_levels.placement;
  radix : int;
  code_type : Codebook.t;
  code_length : int;
  n_wires : int;
}

let default_config =
  {
    rules = Geometry.default_rules;
    sigma_t = 0.05;
    sigma_base = 0.10;
    margin_fraction = 0.42;
    supply_voltage = 1.0;
    placement = Vt_levels.Spread 0.1;
    radix = 2;
    code_type = Codebook.Balanced_gray;
    code_length = 10;
    n_wires = 20;
  }

let levels_of_config c =
  Vt_levels.make ~supply_voltage:c.supply_voltage ~placement:c.placement
    ~radix:c.radix ()

type analysis = {
  config : config;
  layout : Geometry.layout;
  pattern : Pattern.t;
  nu : Imatrix.t;
  omega : int;
  wire_probability : float array;
  yield : float;
}

let check_config c =
  if c.sigma_t <= 0. then invalid_arg "Cave: sigma_t must be positive";
  if c.sigma_base < 0. then invalid_arg "Cave: sigma_base must be >= 0";
  if not (c.margin_fraction > 0. && c.margin_fraction <= 0.5) then
    invalid_arg "Cave: margin_fraction outside (0, 0.5]";
  if c.n_wires < 1 then invalid_arg "Cave: n_wires must be positive";
  match Codebook.validate_length ~radix:c.radix ~length:c.code_length c.code_type with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Cave: " ^ msg)

let window c = c.margin_fraction *. Vt_levels.separation (levels_of_config c)

let config_key c =
  (* Canonical, injective serialization of every parameter [analyze]
     reads: the artifact-cache key of the analysis, the compiled kernel
     and every estimate derived from this configuration.  Floats are
     rendered with %h (hex, exact) so distinct values never collide and
     the key is identical on every platform. *)
  let placement =
    match c.placement with
    | Vt_levels.Centered -> "centered"
    | Vt_levels.Spread rail -> Printf.sprintf "spread:%h" rail
  in
  let r = c.rules in
  Printf.sprintf
    "cave/v1|pl=%h|pn=%h|padf=%h|ovl=%h|wall=%h|row=%h|st=%h|s0=%h|mf=%h|vdd=%h|plc=%s|n=%d|%s|M=%d|N=%d"
    r.Geometry.litho_pitch r.Geometry.nanowire_pitch
    r.Geometry.pad_min_width_factor r.Geometry.pad_overlap
    r.Geometry.cave_wall r.Geometry.contact_row_length c.sigma_t
    c.sigma_base c.margin_fraction c.supply_voltage placement c.radix
    (Codebook.name c.code_type) c.code_length c.n_wires

let wire_window_probability ~sigma_t ~sigma_base ~window ~nu_row =
  (* Independent contributions: intrinsic region variability plus one
     sigma_t^2 of variance per doping operation received. *)
  Array.fold_left
    (fun acc nu ->
      let sigma =
        sqrt ((sigma_base *. sigma_base) +. (float_of_int nu *. sigma_t *. sigma_t))
      in
      acc *. Special.normal_interval_probability ~sigma ~half_width:window)
    1. nu_row

let is_usable = function
  | Geometry.Addressable _ -> true
  | Geometry.Shared_between_pads _ | Geometry.Excess_in_pad _ -> false

let analyze ?nu config =
  check_config config;
  let omega =
    Codebook.space_size ~radix:config.radix ~length:config.code_length
      config.code_type
  in
  let layout = Geometry.place config.rules ~omega ~n_wires:config.n_wires in
  let pattern =
    Pattern.of_codebook ~radix:config.radix ~length:config.code_length
      ~n_wires:config.n_wires config.code_type
  in
  (* [?nu] is the precomputed [Variability.nu_matrix pattern] — callers
     holding it (the serve artifact cache) skip the recount; the value
     is identical either way, so this is a pure fast path. *)
  let nu = match nu with Some nu -> nu | None -> Variability.nu_matrix pattern in
  let w = window config in
  let wire_probability =
    Array.init config.n_wires (fun i ->
        if is_usable layout.Geometry.statuses.(i) then
          wire_window_probability ~sigma_t:config.sigma_t
            ~sigma_base:config.sigma_base ~window:w ~nu_row:(Imatrix.row nu i)
        else 0.)
  in
  let yield = Descriptive.mean wire_probability in
  Log.debug (fun m ->
      m "cave %s M=%d: Omega=%d pads=%d removed=%d Y=%.3f"
        (Codebook.name config.code_type)
        config.code_length omega layout.Geometry.n_pads
        (Geometry.n_shared layout + Geometry.n_excess layout)
        yield);
  { config; layout; pattern; nu; omega; wire_probability; yield }

let passes_of_analysis analysis =
  (* The noise model only needs which regions each pass hits, so any
     injective digit → dose table works; small primes keep all pairwise
     differences distinct (no accidental dose merging). *)
  let dose_table = [| 2.; 3.; 7.; 17.; 41.; 83.; 167.; 331. |] in
  let h d =
    if d < Array.length dose_table then dose_table.(d)
    else float_of_int ((d * d * 13) + 5)
  in
  let _, s = Doping.of_pattern ~h analysis.pattern in
  Process.passes_of_step_matrix s

let noise_offsets rng analysis passes =
  let implant_noise =
    Process.sample_vt_noise rng ~sigma_t:analysis.config.sigma_t
      ~n_wires:analysis.config.n_wires
      ~n_regions:analysis.config.code_length passes
  in
  if analysis.config.sigma_base = 0. then implant_noise
  else
    Fmatrix.map
      (fun x -> x +. Rng.gaussian ~sigma:analysis.config.sigma_base rng)
      implant_noise

let mc_window_draw analysis ~passes ~w rng =
  let n = analysis.config.n_wires in
  let noise = noise_offsets rng analysis passes in
  let good = ref 0 in
  for i = 0 to n - 1 do
    if is_usable analysis.layout.Geometry.statuses.(i) then begin
      let wire_ok = ref true in
      for j = 0 to analysis.config.code_length - 1 do
        if Float.abs (Fmatrix.get noise i j) >= w then wire_ok := false
      done;
      if !wire_ok then incr good
    end
  done;
  float_of_int !good /. float_of_int n

let kernel_of_analysis analysis =
  Kernel.compile ~n_wires:analysis.config.n_wires
    ~n_regions:analysis.config.code_length ~sigma_t:analysis.config.sigma_t
    ~sigma_base:analysis.config.sigma_base ~window:(window analysis.config)
    ~usable:(Array.map is_usable analysis.layout.Geometry.statuses)
    (passes_of_analysis analysis)

let mc_yield_window_par ?ctx ?spec ?kernel rng ~samples analysis =
  (* Everything the chunk bodies share — here, the whole compiled pass
     program — is computed before the fan-out; the bodies only read it
     (and mutate their own stream and domain-local scratch).  [?kernel]
     lets a caller holding the compiled program (the serve artifact
     cache) skip the per-call compile; the kernel is pure, so the
     estimate is identical either way. *)
  let ctx = Nanodec_parallel.Run_ctx.resolve ?ctx () in
  let tel = Nanodec_parallel.Run_ctx.telemetry ctx in
  let kernel =
    match kernel with
    | Some k -> k
    | None ->
      Nanodec_telemetry.Telemetry.with_span tel "kernel.compile"
      @@ fun () -> kernel_of_analysis analysis
  in
  (* An explicit spec wins; otherwise the context's mc_method/rel_error
     knobs pick it, with [samples] as the fixed count or adaptive cap. *)
  let spec =
    match spec with
    | Some s -> s
    | None -> Montecarlo.spec_of_ctx ~ctx ~samples ()
  in
  (* Fault site: before the fan-out.  When the estimate runs inside an
     outer pool chunk (the sweep pipelines), an injected crash here is
     recovered by that pool's retry/degradation; standalone callers see
     it classified as a worker crash at the taxonomy boundary. *)
  Nanodec_fault.Fault.hit (Nanodec_parallel.Run_ctx.fault ctx) "cave.window";
  Nanodec_telemetry.Telemetry.with_span tel "cave.mc_yield_window"
  @@ fun () ->
  let e = Montecarlo.run ~ctx spec rng (Kernel.target kernel) in
  (* Counted after the run: adaptive stopping makes the spent sample
     count an output, not an input. *)
  Nanodec_telemetry.Telemetry.count tel "kernel.samples"
    e.Montecarlo.samples;
  e

let mc_yield_window_reference ?ctx rng ~samples analysis =
  let passes = passes_of_analysis analysis in
  let w = window analysis.config in
  Montecarlo.estimate_par ?ctx rng ~samples
    (mc_window_draw analysis ~passes ~w)

let mc_yield_window ?spec rng ~samples analysis =
  let kernel = kernel_of_analysis analysis in
  match spec with
  | None -> Montecarlo.estimate rng ~samples (Kernel.draw kernel)
  | Some spec -> Montecarlo.run spec rng (Kernel.target kernel)

let mc_yield_functional rng ~samples analysis =
  let passes = passes_of_analysis analysis in
  let levels = levels_of_config analysis.config in
  let n = analysis.config.n_wires in
  let pad_of = function
    | Geometry.Addressable k -> Some k
    | Geometry.Shared_between_pads _ | Geometry.Excess_in_pad _ -> None
  in
  let one_draw rng =
    let noise = noise_offsets rng analysis passes in
    let wire_data =
      Array.init n (fun i ->
          (Pattern.word analysis.pattern ~wire:i, Fmatrix.row noise i))
    in
    (* Group wires by owning pad, then test electrical uniqueness. *)
    let groups = Hashtbl.create 16 in
    Array.iteri
      (fun i status ->
        match pad_of status with
        | Some k ->
          let members = Option.value ~default:[] (Hashtbl.find_opt groups k) in
          Hashtbl.replace groups k (i :: members)
        | None -> ())
      analysis.layout.Geometry.statuses;
    let good = ref 0 in
    Hashtbl.iter
      (fun _pad members ->
        let group = List.map (fun i -> wire_data.(i)) members in
        List.iter
          (fun i ->
            let word, _ = wire_data.(i) in
            if Addressing.addressed_with_noise levels ~group ~address:word
                 ~target:word
            then incr good)
          members)
      groups;
    float_of_int !good /. float_of_int n
  in
  Montecarlo.estimate rng ~samples one_draw
