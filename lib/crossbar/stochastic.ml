open Nanodec_numerics

type analysis = {
  omega : int;
  group_size : int;
  p_wire_unique : float;
  expected_unique_wires : float;
  expected_distinct_codes : float;
  p_all_distinct : float;
  deterministic_unique_wires : int;
}

let analyze ~omega ~group_size =
  if omega < 1 || group_size < 1 then
    invalid_arg "Stochastic.analyze: omega and group_size must be positive";
  let om = float_of_int omega
  and g = float_of_int group_size in
  let p_wire_unique = ((om -. 1.) /. om) ** (g -. 1.) in
  let expected_distinct_codes = om *. (1. -. (((om -. 1.) /. om) ** g)) in
  let p_all_distinct =
    if group_size > omega then 0.
    else
      exp
        (Special.log_factorial omega
        -. Special.log_factorial (omega - group_size)
        -. (g *. log om))
  in
  {
    omega;
    group_size;
    p_wire_unique;
    expected_unique_wires = g *. p_wire_unique;
    expected_distinct_codes;
    p_all_distinct;
    deterministic_unique_wires = Stdlib.min group_size omega;
  }

let mc_unique_fraction rng ~samples ~omega ~group_size =
  if omega < 1 || group_size < 1 then
    invalid_arg "Stochastic.mc_unique_fraction: positive arguments required";
  let draws = Array.make group_size 0 in
  let counts = Array.make omega 0 in
  let one_draw rng =
    Array.fill counts 0 omega 0;
    for i = 0 to group_size - 1 do
      let code = Rng.int rng omega in
      draws.(i) <- code;
      counts.(code) <- counts.(code) + 1
    done;
    let unique = ref 0 in
    Array.iter (fun code -> if counts.(code) = 1 then incr unique) draws;
    float_of_int !unique /. float_of_int group_size
  in
  Montecarlo.estimate rng ~samples one_draw

let stochastic_loss ~omega ~group_size =
  let a = analyze ~omega ~group_size in
  1.
  -. (a.expected_unique_wires /. float_of_int a.deterministic_unique_wires)

let pp ppf a =
  Format.fprintf ppf
    "@[<v>stochastic assembly, Omega=%d, group of %d wires:@,\
     P(wire unique) = %.3f -> %.2f usable wires expected@,\
     expected distinct codes present: %.2f@,\
     P(whole group conflict-free) = %.3g@,\
     deterministic MSPT assignment: %d usable wires@]"
    a.omega a.group_size a.p_wire_unique a.expected_unique_wires
    a.expected_distinct_codes a.p_all_distinct a.deterministic_unique_wires
