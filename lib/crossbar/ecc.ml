type decode_result = Clean of int | Corrected of int | Uncorrectable

(* Extended Hamming (8,4).  Bit 0 of the byte is the overall parity; bits
   1..7 are the classical Hamming positions (parity at 1, 2 and 4; data at
   3, 5, 6, 7). *)

let bit value position = (value lsr position) land 1

let encode_nibble d =
  if d < 0 || d > 15 then invalid_arg "Ecc.encode_nibble: nibble outside [0, 15]";
  let d1 = bit d 0
  and d2 = bit d 1
  and d3 = bit d 2
  and d4 = bit d 3 in
  let p1 = d1 lxor d2 lxor d4 in
  let p2 = d1 lxor d3 lxor d4 in
  let p4 = d2 lxor d3 lxor d4 in
  let seven =
    (p1 lsl 1) lor (p2 lsl 2) lor (d1 lsl 3) lor (p4 lsl 4) lor (d2 lsl 5)
    lor (d3 lsl 6) lor (d4 lsl 7)
  in
  let overall =
    p1 lxor p2 lxor p4 lxor d1 lxor d2 lxor d3 lxor d4
  in
  seven lor overall

let nibble_of_codeword codeword =
  bit codeword 3 lor (bit codeword 5 lsl 1) lor (bit codeword 6 lsl 2)
  lor (bit codeword 7 lsl 3)

let decode_byte byte =
  let byte = byte land 0xFF in
  let syndrome = ref 0 in
  for position = 1 to 7 do
    if bit byte position = 1 then syndrome := !syndrome lxor position
  done;
  let parity = ref 0 in
  for position = 0 to 7 do
    parity := !parity lxor bit byte position
  done;
  match (!syndrome, !parity) with
  | 0, 0 -> Clean (nibble_of_codeword byte)
  | 0, 1 ->
    (* The overall parity bit itself flipped; the data is intact. *)
    Corrected (nibble_of_codeword byte)
  | s, 1 -> Corrected (nibble_of_codeword (byte lxor (1 lsl s)))
  | _, _ -> Uncorrectable

let protected_capacity_bytes remap = Remap.capacity_bytes remap / 2

let write_byte remap ~index value =
  for b = 0 to 7 do
    Remap.set_bit remap ((8 * index) + b) (bit value b = 1)
  done

let read_byte remap ~index =
  let value = ref 0 in
  for b = 0 to 7 do
    if Remap.get_bit remap ((8 * index) + b) then value := !value lor (1 lsl b)
  done;
  !value

let store remap payload =
  if String.length payload > protected_capacity_bytes remap then
    invalid_arg "Ecc.store: payload exceeds protected capacity";
  String.iteri
    (fun i ch ->
      let byte = Char.code ch in
      write_byte remap ~index:(2 * i) (encode_nibble (byte land 0xF));
      write_byte remap ~index:((2 * i) + 1) (encode_nibble (byte lsr 4)))
    payload

let load remap ~length =
  if length < 0 || length > protected_capacity_bytes remap then
    invalid_arg "Ecc.load: length exceeds protected capacity";
  let corrected = ref 0
  and uncorrectable = ref 0 in
  let decode index =
    match decode_byte (read_byte remap ~index) with
    | Clean nibble -> nibble
    | Corrected nibble ->
      incr corrected;
      nibble
    | Uncorrectable ->
      incr uncorrectable;
      0
  in
  let data =
    String.init length (fun i ->
        let low = decode (2 * i) in
        let high = decode ((2 * i) + 1) in
        Char.chr (low lor (high lsl 4)))
  in
  (data, !corrected, !uncorrectable)
