(** Functional crossbar memory simulator.

    The paper's evaluation assumes the crossbar operates as a memory:
    molecular switches or phase-change material at the crosspoints store
    one bit each, and a crosspoint is usable only when both its row and
    its column nanowire are addressable through their decoders.  This
    module instantiates a whole memory from one sampled defect outcome and
    exposes raw physical-bit access; {!Remap} builds a dense logical
    address space on top. *)

open Nanodec_numerics

type t

type fault = [ `Defective_row | `Defective_column | `Out_of_range ]

val create : Rng.t -> Array_sim.config -> t
(** Samples a defect map for both layers (independent streams split off
    the given generator) and allocates the crosspoint storage. *)

val n_rows : t -> int
(** Physical nanowires per row layer (= ⌈√D_RAW⌉). *)

val n_cols : t -> int

val row_states : t -> Defect_map.wire_state array
val col_states : t -> Defect_map.wire_state array

val usable_crosspoints : t -> int
(** Working rows × working columns — the realised D_EFF of this sample. *)

val realized_yield : t -> float
(** [usable_crosspoints / (n_rows · n_cols)] — one sample of the paper's
    crossbar yield Y². *)

val write : t -> row:int -> col:int -> bool -> (unit, fault) result
(** Physical write; fails on a defective or out-of-range wire. *)

val read : t -> row:int -> col:int -> (bool, fault) result

val crosspoint_usable : t -> row:int -> col:int -> bool

val mc_realized_yield :
  Rng.t -> samples:int -> Array_sim.config -> Montecarlo.estimate
(** Monte-Carlo estimate of the crossbar yield by sampling whole defect
    maps (both layers): validates the analytic [Y²] of
    {!Array_sim.evaluate} against realised usable-crosspoint fractions. *)
