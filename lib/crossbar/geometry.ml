type rules = {
  litho_pitch : float;
  nanowire_pitch : float;
  pad_min_width_factor : float;
  pad_overlap : float;
  cave_wall : float;
  contact_row_length : float;
}

let default_rules =
  {
    litho_pitch = 32.;
    nanowire_pitch = 10.;
    pad_min_width_factor = 1.5;
    pad_overlap = 24.;
    cave_wall = 16.;
    contact_row_length = 48.;
  }

type wire_status =
  | Addressable of int
  | Shared_between_pads of int * int
  | Excess_in_pad of int

type layout = {
  rules : rules;
  n_wires : int;
  omega : int;
  pad_width : float;
  n_pads : int;
  statuses : wire_status array;
}

let check_rules ~fn rules =
  if rules.litho_pitch <= 0. || rules.nanowire_pitch <= 0. then
    invalid_arg (Printf.sprintf "Geometry.%s: pitches must be positive" fn);
  if rules.pad_overlap < 0. || rules.pad_overlap >= rules.litho_pitch then
    invalid_arg
      (Printf.sprintf "Geometry.%s: overlap must be in [0, PL)" fn)

let wire_position rules i =
  (float_of_int i +. 0.5) *. rules.nanowire_pitch

let pad_width rules ~omega ~n_wires =
  check_rules ~fn:"pad_width" rules;
  if omega < 1 || n_wires < 1 then
    invalid_arg "Geometry.pad_width: omega and n_wires must be positive";
  let nominal =
    float_of_int (Stdlib.min omega n_wires) *. rules.nanowire_pitch
  in
  let lower = rules.pad_min_width_factor *. rules.litho_pitch in
  let upper = float_of_int omega *. rules.nanowire_pitch in
  (* The litho lower bound wins over the Ω upper bound when they conflict:
     a pad cannot be drawn below the minimum feature size, and the wires
     in excess of Ω are discarded instead. *)
  Float.max lower (Float.min nominal upper)

let place rules ~omega ~n_wires =
  check_rules ~fn:"place" rules;
  let width = pad_width rules ~omega ~n_wires in
  let period = width -. rules.pad_overlap in
  let cave_extent = float_of_int n_wires *. rules.nanowire_pitch in
  let n_pads =
    Stdlib.max 1 (int_of_float (ceil ((cave_extent -. width) /. period)) + 1)
  in
  let pad_start k = float_of_int k *. period in
  let pad_covers k x = x >= pad_start k && x <= pad_start k +. width in
  let covering i =
    let x = wire_position rules i in
    List.filter (fun k -> pad_covers k x) (List.init n_pads (fun k -> k))
  in
  let statuses =
    Array.init n_wires (fun i ->
        match covering i with
        | [ k ] -> Addressable k
        | k1 :: k2 :: _ -> Shared_between_pads (k1, k2)
        | [] ->
          (* Cannot happen: the period is smaller than the width, so pads
             overlap and jointly cover the cave. *)
          assert false)
  in
  (* Demote wires beyond the Ω uniquely-coded ones of each pad.  Codes run
     sequentially along the cave, so any window of at most Ω consecutive
     wires holds distinct words; from the (Ω+1)-th wire of a pad onward the
     words repeat and those wires must be discarded. *)
  let per_pad = Array.make n_pads 0 in
  Array.iteri
    (fun i status ->
      match status with
      | Addressable k ->
        per_pad.(k) <- per_pad.(k) + 1;
        if per_pad.(k) > omega then statuses.(i) <- Excess_in_pad k
      | Shared_between_pads _ | Excess_in_pad _ -> ())
    statuses;
  { rules; n_wires; omega; pad_width = width; n_pads; statuses }

let count layout p = Array.fold_left (fun acc s -> if p s then acc + 1 else acc) 0 layout.statuses

let n_addressable layout =
  count layout (function
    | Addressable _ -> true
    | Shared_between_pads _ | Excess_in_pad _ -> false)

let n_shared layout =
  count layout (function
    | Shared_between_pads _ -> true
    | Addressable _ | Excess_in_pad _ -> false)

let n_excess layout =
  count layout (function
    | Excess_in_pad _ -> true
    | Addressable _ | Shared_between_pads _ -> false)

let half_cave_width rules ~n_wires =
  check_rules ~fn:"half_cave_width" rules;
  (float_of_int n_wires *. rules.nanowire_pitch) +. (rules.cave_wall /. 2.)

let decoder_extent rules ~code_length =
  check_rules ~fn:"decoder_extent" rules;
  if code_length < 1 then
    invalid_arg "Geometry.decoder_extent: code_length must be positive";
  (float_of_int code_length *. rules.litho_pitch)
  +. (2. *. rules.contact_row_length)
