(** Electrical addressing semantics of the decoder (paper, Section 2.2,
    Fig. 1.c).

    Every doping region of a nanowire is a transistor gated by a mesowire.
    Applying the voltage pattern of address word [a] puts
    {m V_A(a_j) = V_T(a_j) + Δ/2} on mesowire [j] (half a level separation
    of headroom); transistor [j] of a wire with pattern [p] conducts iff
    its actual threshold is below that, i.e. nominally iff {m p_j ≤ a_j}.
    A wire is {e addressed} by [a] when it conducts and no other wire of
    its contact group does.

    Reflection is what makes this unique for tree-code families: if both
    [p ≤ a] digitwise and (on the complemented half) [p̄ ≤ ā], then
    [p = a].  Hot codes are unique without reflection because all words
    share their digit multiset. *)

open Nanodec_codes
open Nanodec_physics

val applied_voltage : Vt_levels.t -> int -> float
(** Mesowire voltage encoding an address digit. *)

val conducts_nominal : address:Word.t -> Word.t -> bool
(** Noise-free conduction test: the word's digits are all dominated by the
    address digits. *)

val conducts :
  Vt_levels.t -> address:Word.t -> vt_offsets:float array -> Word.t -> bool
(** Conduction with per-region threshold-voltage deviations added to the
    word's nominal levels. *)

val addressed_nominal : group:Word.t list -> address:Word.t -> Word.t option
(** The unique conducting wire of the group under [address], if any. *)

val uniquely_addressable : Word.t list -> bool
(** Whether every word of the group is addressed by its own address —
    the decoder's functional correctness condition.  Holds for reflected
    tree/Gray/balanced-Gray and (un-reflected) hot code groups; fails for
    un-reflected tree codes. *)

val addressed_with_noise :
  Vt_levels.t ->
  group:(Word.t * float array) list ->
  address:Word.t ->
  target:Word.t ->
  bool
(** Monte-Carlo building block: under [address], does exactly the [target]
    wire conduct, given each wire's sampled V_T offsets? *)
