open Nanodec_numerics
open Nanodec_mspt

type t = {
  n : int;
  m : int;
  cells : int;
  sigma_t : float;
  sigma_base : float;
  window : float;
  usable : bool array;
  n_passes : int;
  pass_after : int array;
  pass_off : int array;
  pass_regions : int array;
  targets : int array;
  plane : int array;
      (* identity indices 0..cells-1: the base-fluctuation sweep as a
         target list, so both noise stages run the same fused loop *)
  draws_per_sample : int;
}

(* One scratch per domain, shared by every kernel that domain runs: a
   draw never yields mid-body, so nothing else can touch the buffer
   while it is in use, and the noise plane is refilled from zero at the
   top of each draw.  The buffer grows to the largest kernel seen. *)
type scratch = {
  mutable noise : float array;
  fast : Rng.Fast.t;
}

let workspace : scratch Nanodec_parallel.Workspace.t =
  Nanodec_parallel.Workspace.create (fun () ->
      { noise = [||]; fast = Rng.Fast.create () })

(* Total implant draws of one sample: pass p hits wires 0..after_wire(p)
   in each masked region. *)
let implant_draw_count passes n_regions =
  List.fold_left
    (fun acc p ->
      let hits = ref 0 in
      for j = 0 to n_regions - 1 do
        if p.Process.mask.(j) then incr hits
      done;
      acc + ((p.Process.after_wire + 1) * !hits))
    0 passes

let compile ~n_wires ~n_regions ~sigma_t ~sigma_base ~window ~usable passes =
  if n_wires < 1 || n_regions < 1 then
    invalid_arg "Kernel.compile: bad cave geometry";
  if sigma_t <= 0. then invalid_arg "Kernel.compile: sigma_t must be positive";
  if sigma_base < 0. then invalid_arg "Kernel.compile: sigma_base must be >= 0";
  if not (window > 0.) then invalid_arg "Kernel.compile: window must be positive";
  if Array.length usable <> n_wires then
    invalid_arg "Kernel.compile: usable flags length mismatch";
  List.iter
    (fun p ->
      if p.Process.after_wire < 0 || p.Process.after_wire >= n_wires then
        invalid_arg "Kernel.compile: pass outside cave";
      if Array.length p.Process.mask <> n_regions then
        invalid_arg "Kernel.compile: mask length mismatch")
    passes;
  (* Same ordering as [Process.fold_passes]: fabrication order, i.e. a
     stable sort on after_wire that preserves the input pass order within
     a step.  The draw below replays the reference Gaussian sequence, so
     this order is part of the bit-for-bit contract. *)
  let ordered =
    List.stable_sort
      (fun a b -> Int.compare a.Process.after_wire b.Process.after_wire)
      passes
  in
  let n_passes = List.length ordered in
  let pass_after = Array.make (max n_passes 1) 0 in
  let pass_off = Array.make (n_passes + 1) 0 in
  let regions = ref [] in
  let total = ref 0 in
  List.iteri
    (fun p pass ->
      pass_after.(p) <- pass.Process.after_wire;
      pass_off.(p) <- !total;
      for j = 0 to n_regions - 1 do
        if pass.Process.mask.(j) then begin
          regions := j :: !regions;
          incr total
        end
      done)
    ordered;
  pass_off.(n_passes) <- !total;
  let pass_regions = Array.of_list (List.rev !regions) in
  (* Flatten the whole implant program into one index array: pass p doses
     wires 0..after_wire(p) in its masked regions, so every Gaussian draw
     of a sample maps to one precomputed cell index.  The expansion is
     bounded by (number of passes) × n_wires × n_regions — kilobytes for
     paper-scale caves — and turns the inner loop into a single linear
     sweep. *)
  let targets = Array.make (implant_draw_count ordered n_regions) 0 in
  let pos = ref 0 in
  List.iter
    (fun pass ->
      for wire = 0 to pass.Process.after_wire do
        let base = wire * n_regions in
        for j = 0 to n_regions - 1 do
          if pass.Process.mask.(j) then begin
            targets.(!pos) <- base + j;
            incr pos
          end
        done
      done)
    ordered;
  let cells = n_wires * n_regions in
  {
    n = n_wires;
    m = n_regions;
    cells;
    sigma_t;
    sigma_base;
    window;
    usable = Array.copy usable;
    n_passes;
    pass_after;
    pass_off;
    pass_regions;
    targets;
    plane = (if sigma_base <> 0. then Array.init cells (fun i -> i) else [||]);
    draws_per_sample =
      Array.length targets + (if sigma_base <> 0. then cells else 0);
  }

let draws_per_sample k = k.draws_per_sample
let n_passes k = k.n_passes

let draw k rng =
  let ws = Nanodec_parallel.Workspace.get workspace in
  if Array.length ws.noise < k.cells then ws.noise <- Array.make k.cells 0.;
  let noise = ws.noise in
  let fast = ws.fast in
  Rng.Fast.load fast rng;
  Array.fill noise 0 k.cells 0.;
  (* Implant noise: one sigma_t Gaussian per precompiled target cell, in
     the exact order [Process.sample_vt_noise] walks passes and regions. *)
  Rng.Fast.add_gaussians fast ~sigma:k.sigma_t k.targets noise;
  (* Intrinsic noise: row-major plane sweep, gated exactly like the
     reference ([sigma_base <> 0.], not an epsilon test). *)
  if k.sigma_base <> 0. then
    Rng.Fast.add_gaussians fast ~sigma:k.sigma_base k.plane noise;
  Rng.Fast.store fast rng;
  let good = ref 0 in
  let w = k.window in
  let m = k.m in
  for i = 0 to k.n - 1 do
    if Array.unsafe_get k.usable i then begin
      let base = i * m in
      let ok = ref true in
      let j = ref 0 in
      (* Early exit: the first region outside the window disqualifies
         the wire, no need to scan the rest of its row. *)
      while !ok && !j < m do
        if Float.abs (Array.unsafe_get noise (base + !j)) >= w then ok := false;
        incr j
      done;
      if !ok then incr good
    end
  done;
  float_of_int !good /. float_of_int k.n
