open Nanodec_numerics
open Nanodec_mspt

type t = {
  n : int;
  m : int;
  cells : int;
  sigma_t : float;
  sigma_base : float;
  window : float;
  usable : bool array;
  n_passes : int;
  pass_after : int array;
  pass_off : int array;
  pass_regions : int array;
  targets : int array;
  plane : int array;
      (* identity indices 0..cells-1: the base-fluctuation sweep as a
         target list, so both noise stages run the same fused loop *)
  draws_per_sample : int;
  (* --- variance-reduction tables, all compile-time ---
     Per-cell total noise scale sigma_c = sqrt(nu_c sigma_t^2 +
     sigma_base^2) where nu_c counts the implant doses landing on cell
     c; cells are independent, so each strategy may redraw a cell's
     {e total} from N(0, sigma_c^2) in place of the dose-by-dose sum —
     equal in law, different stream. *)
  cell_sigma : float array;
  inv_sigma2 : float array;  (* 1/sigma_c^2, 0 for noiseless cells *)
  alpha : float array;
      (* importance mixture weight of cell c within its wire's row:
         proportional to the cell's marginal failure probability
         2*Phi(-w/sigma_c), normalized per usable wire (uniform over
         the noisy cells when every p underflows); 0 on non-usable
         wires and noiseless cells *)
  alpha_cdf : float array;  (* running per-row sums of [alpha] *)
  n_usable : int;
  strat_cell : int;
      (* globally dominant cell: max sigma_c over usable wires, the
         axis stratified sampling conditions on; -1 when no usable
         wire has a noisy cell *)
  strat_sigma : float;
}

(* One scratch per domain, shared by every kernel that domain runs: a
   draw never yields mid-body, so nothing else can touch the buffer
   while it is in use, and the noise plane is refilled from zero at the
   top of each draw.  The buffer grows to the largest kernel seen. *)
type scratch = {
  mutable noise : float array;
  fast : Rng.Fast.t;
}

let workspace : scratch Nanodec_parallel.Workspace.t =
  Nanodec_parallel.Workspace.create (fun () ->
      { noise = [||]; fast = Rng.Fast.create () })

(* Total implant draws of one sample: pass p hits wires 0..after_wire(p)
   in each masked region. *)
let implant_draw_count passes n_regions =
  List.fold_left
    (fun acc p ->
      let hits = ref 0 in
      for j = 0 to n_regions - 1 do
        if p.Process.mask.(j) then incr hits
      done;
      acc + ((p.Process.after_wire + 1) * !hits))
    0 passes

let compile ~n_wires ~n_regions ~sigma_t ~sigma_base ~window ~usable passes =
  if n_wires < 1 || n_regions < 1 then
    invalid_arg "Kernel.compile: bad cave geometry";
  if sigma_t <= 0. then invalid_arg "Kernel.compile: sigma_t must be positive";
  if sigma_base < 0. then invalid_arg "Kernel.compile: sigma_base must be >= 0";
  if not (window > 0.) then invalid_arg "Kernel.compile: window must be positive";
  if Array.length usable <> n_wires then
    invalid_arg "Kernel.compile: usable flags length mismatch";
  List.iter
    (fun p ->
      if p.Process.after_wire < 0 || p.Process.after_wire >= n_wires then
        invalid_arg "Kernel.compile: pass outside cave";
      if Array.length p.Process.mask <> n_regions then
        invalid_arg "Kernel.compile: mask length mismatch")
    passes;
  (* Same ordering as [Process.fold_passes]: fabrication order, i.e. a
     stable sort on after_wire that preserves the input pass order within
     a step.  The draw below replays the reference Gaussian sequence, so
     this order is part of the bit-for-bit contract. *)
  let ordered =
    List.stable_sort
      (fun a b -> Int.compare a.Process.after_wire b.Process.after_wire)
      passes
  in
  let n_passes = List.length ordered in
  let pass_after = Array.make (max n_passes 1) 0 in
  let pass_off = Array.make (n_passes + 1) 0 in
  let regions = ref [] in
  let total = ref 0 in
  List.iteri
    (fun p pass ->
      pass_after.(p) <- pass.Process.after_wire;
      pass_off.(p) <- !total;
      for j = 0 to n_regions - 1 do
        if pass.Process.mask.(j) then begin
          regions := j :: !regions;
          incr total
        end
      done)
    ordered;
  pass_off.(n_passes) <- !total;
  let pass_regions = Array.of_list (List.rev !regions) in
  (* Flatten the whole implant program into one index array: pass p doses
     wires 0..after_wire(p) in its masked regions, so every Gaussian draw
     of a sample maps to one precomputed cell index.  The expansion is
     bounded by (number of passes) × n_wires × n_regions — kilobytes for
     paper-scale caves — and turns the inner loop into a single linear
     sweep. *)
  let targets = Array.make (implant_draw_count ordered n_regions) 0 in
  let pos = ref 0 in
  List.iter
    (fun pass ->
      for wire = 0 to pass.Process.after_wire do
        let base = wire * n_regions in
        for j = 0 to n_regions - 1 do
          if pass.Process.mask.(j) then begin
            targets.(!pos) <- base + j;
            incr pos
          end
        done
      done)
    ordered;
  let cells = n_wires * n_regions in
  let cell_sigma = Array.make cells 0. in
  (* nu_c: implant doses per cell, read off the flattened program. *)
  Array.iter
    (fun c -> cell_sigma.(c) <- cell_sigma.(c) +. 1.)
    targets;
  for c = 0 to cells - 1 do
    cell_sigma.(c) <-
      sqrt ((cell_sigma.(c) *. sigma_t *. sigma_t) +. (sigma_base *. sigma_base))
  done;
  let inv_sigma2 =
    Array.map (fun s -> if s > 0. then 1. /. (s *. s) else 0.) cell_sigma
  in
  let alpha = Array.make cells 0. in
  let alpha_cdf = Array.make cells 0. in
  let n_usable = ref 0 in
  let strat_cell = ref (-1) in
  for i = 0 to n_wires - 1 do
    if usable.(i) then begin
      incr n_usable;
      let base = i * n_regions in
      let row_sum = ref 0. in
      let noisy = ref 0 in
      for j = 0 to n_regions - 1 do
        let s = cell_sigma.(base + j) in
        if s > 0. then begin
          incr noisy;
          if
            !strat_cell < 0 || s > cell_sigma.(!strat_cell)
          then strat_cell := base + j;
          let p = 2. *. Special.normal_cdf (-.window /. s) in
          alpha.(base + j) <- p;
          row_sum := !row_sum +. p
        end
      done;
      if !noisy > 0 then begin
        let acc = ref 0. in
        for j = 0 to n_regions - 1 do
          let c = base + j in
          alpha.(c) <-
            (if !row_sum > 0. then alpha.(c) /. !row_sum
             else if cell_sigma.(c) > 0. then 1. /. float_of_int !noisy
             else 0.);
          acc := !acc +. alpha.(c);
          alpha_cdf.(c) <- !acc
        done;
        (* The last noisy cell's cdf is forced to 1 so the selection
           scan can never fall off the row on rounding. *)
        let last = ref (-1) in
        for j = 0 to n_regions - 1 do
          if alpha.(base + j) > 0. then last := base + j
        done;
        if !last >= 0 then alpha_cdf.(!last) <- 1.
      end
    end
  done;
  {
    n = n_wires;
    m = n_regions;
    cells;
    sigma_t;
    sigma_base;
    window;
    usable = Array.copy usable;
    n_passes;
    pass_after;
    pass_off;
    pass_regions;
    targets;
    plane = (if sigma_base <> 0. then Array.init cells (fun i -> i) else [||]);
    draws_per_sample =
      Array.length targets + (if sigma_base <> 0. then cells else 0);
    cell_sigma;
    inv_sigma2;
    alpha;
    alpha_cdf;
    n_usable = !n_usable;
    strat_cell = !strat_cell;
    strat_sigma =
      (if !strat_cell >= 0 then cell_sigma.(!strat_cell) else 0.);
  }

let draws_per_sample k = k.draws_per_sample
let n_passes k = k.n_passes

let scratch_for k =
  let ws = Nanodec_parallel.Workspace.get workspace in
  if Array.length ws.noise < k.cells then ws.noise <- Array.make k.cells 0.;
  ws

let fill_noise k ws =
  Array.fill ws.noise 0 k.cells 0.;
  (* Implant noise: one sigma_t Gaussian per precompiled target cell, in
     the exact order [Process.sample_vt_noise] walks passes and regions. *)
  Rng.Fast.add_gaussians ws.fast ~sigma:k.sigma_t k.targets ws.noise;
  (* Intrinsic noise: row-major plane sweep, gated exactly like the
     reference ([sigma_base <> 0.], not an epsilon test). *)
  if k.sigma_base <> 0. then
    Rng.Fast.add_gaussians ws.fast ~sigma:k.sigma_base k.plane ws.noise

let scan_yield k noise =
  let good = ref 0 in
  let w = k.window in
  let m = k.m in
  for i = 0 to k.n - 1 do
    if Array.unsafe_get k.usable i then begin
      let base = i * m in
      let ok = ref true in
      let j = ref 0 in
      (* Early exit: the first region outside the window disqualifies
         the wire, no need to scan the rest of its row. *)
      while !ok && !j < m do
        if Float.abs (Array.unsafe_get noise (base + !j)) >= w then ok := false;
        incr j
      done;
      if !ok then incr good
    end
  done;
  float_of_int !good /. float_of_int k.n

let draw k rng =
  let ws = scratch_for k in
  Rng.Fast.load ws.fast rng;
  fill_noise k ws;
  Rng.Fast.store ws.fast rng;
  scan_yield k ws.noise

(* The window predicate is even in the noise vector (every comparison
   is on |z|), so an antithetic pair's average is the single draw's
   value exactly — the pair costs one set of Gaussians instead of two.
   Unbiasedness is the plain draw's; the variance reduction on this
   integrand is nil by symmetry, which the strategy oracle checks. *)
let draw_antithetic k rng = draw k rng

let draw_stratified k ~strata ~stratum rng =
  if k.strat_cell < 0 then draw k rng
  else begin
    let ws = scratch_for k in
    Rng.Fast.load ws.fast rng;
    fill_noise k ws;
    (* One extra uniform places the dominant cell inside its stratum;
       the 2^-33 nudge keeps the quantile argument strictly inside
       (0, 1) even at u = 0. *)
    let u = Rng.Fast.float ws.fast in
    Rng.Fast.store ws.fast rng;
    let p =
      (float_of_int stratum +. u +. 0x1p-33) /. float_of_int strata
    in
    (* Replace the dominant cell's dose-by-dose sum with an equal-law
       stratified total: valid because cells are independent, so the
       conditional joint given the stratum factorizes. *)
    ws.noise.(k.strat_cell) <- Special.normal_quantile ~sigma:k.strat_sigma p;
    scan_yield k ws.noise
  end

let draw_importance k ~shift rng =
  let ws = scratch_for k in
  let fast = ws.fast in
  Rng.Fast.load fast rng;
  (* The scratch plane is reused as one wire's row of cell totals
     (m <= cells always). *)
  let noise = ws.noise in
  let mu = shift *. k.window in
  let w = k.window in
  let m = k.m in
  (* Unbiased failure mass: yield = (n_usable - sum_i B_i w_i) / n with
     B_i the wire-failure indicator under the proposal and w_i the
     exact inverse likelihood ratio of the per-wire mixture that
     shifted one alpha-chosen cell by +-mu. *)
  let fail_sum = ref 0. in
  for i = 0 to k.n - 1 do
    if Array.unsafe_get k.usable i then begin
      let base = i * m in
      (* A wire with no noisy cell can never fail: no draws, no term. *)
      if Array.unsafe_get k.alpha_cdf (base + m - 1) > 0. then begin
        let u = Rng.Fast.float fast in
        let sel = ref 0 in
        while u >= Array.unsafe_get k.alpha_cdf (base + !sel) do incr sel done;
        let sign = if Rng.Fast.float fast < 0.5 then 1. else -1. in
        let failed = ref false in
        for j = 0 to m - 1 do
          let c = base + j in
          let s = Array.unsafe_get k.cell_sigma c in
          let z =
            if s > 0. then begin
              let z = s *. Rng.Fast.gaussian_std fast in
              if j = !sel then z +. (sign *. mu) else z
            end
            else 0.
          in
          Array.unsafe_set noise j z;
          if Float.abs z >= w then failed := true
        done;
        if !failed then begin
          (* rho_c(z) = e^{-mu^2/(2 sigma_c^2)} cosh(mu z / sigma_c^2)
             is the symmetric-mixture density ratio of cell c; the
             proposal's ratio is the alpha-mixture of the rho terms.
             The selected cell's own term bounds the sum away from
             zero, so weights never explode. *)
          let r = ref 0. in
          for j = 0 to m - 1 do
            let c = base + j in
            let a = Array.unsafe_get k.alpha c in
            if a > 0. then begin
              let is2 = Array.unsafe_get k.inv_sigma2 c in
              let z = Array.unsafe_get noise j in
              r :=
                !r
                +. a
                   *. exp (-0.5 *. mu *. mu *. is2)
                   *. Float.cosh (mu *. z *. is2)
            end
          done;
          fail_sum := !fail_sum +. (1. /. !r)
        end
      end
    end
  done;
  Rng.Fast.store fast rng;
  (float_of_int k.n_usable -. !fail_sum) /. float_of_int k.n

let target k =
  Montecarlo.target ~antithetic:(draw_antithetic k)
    ~stratified:(fun ~strata ~stratum g -> draw_stratified k ~strata ~stratum g)
    ~importance:(fun ~shift g -> draw_importance k ~shift g)
    (draw k)
