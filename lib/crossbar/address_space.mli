(** The decoder's address book: the deterministic wire ↔ address mapping.

    The paper's second novelty is that the MSPT decoder "assigns a
    deterministic address to every nanowire" — unlike stochastic decoders,
    the controller knows at design time which contact group to activate
    and which voltage pattern to apply for each physical wire.  This
    module materialises that mapping for a whole layer.

    A full address is a (contact group, code word) pair: the group selects
    the subset of wires bridged to the mesowires, and the word — applied
    as voltages per {!Addressing.applied_voltage} — turns on exactly one
    wire of the group. *)

open Nanodec_codes

type address = {
  cave : int;  (** cave index along the layer *)
  half : int;  (** 0 or 1 within the cave *)
  pad : int;  (** contact group within the half cave *)
  word : Word.t;  (** voltage pattern selecting the wire *)
}

type t

val build : Cave.analysis -> wires:int -> t
(** Address book for a layer of [wires] nanowires tiled by the analysed
    half cave (two half caves per cave). *)

val n_wires : t -> int

val address_of_wire : t -> int -> address option
(** [None] for wires removed by the contact layout (shared or in excess);
    raises [Invalid_argument] out of range. *)

val wire_of_address : t -> address -> int option
(** Inverse lookup; [None] if no wire answers to that address. *)

val addressable_wires : t -> int list
(** Wires with an address, ascending. *)

val mesowire_voltages :
  Nanodec_physics.Vt_levels.t -> address -> float array
(** The physical voltages to drive on the M mesowires for this address. *)

val pp_address : Format.formatter -> address -> unit
