(** Stochastic-assembly decoder baseline (paper refs [6] DeHon et al. and
    [8] Hogg et al.).

    Bottom-up nanowire technologies cannot choose which code lands on
    which wire: each wire of a contact group draws one of the Ω code words
    independently at random, and a wire is usable only if no other wire of
    its group drew the same word.  The MSPT decoder of the paper is
    deterministic — every wire gets a distinct word by construction — and
    this module quantifies exactly what that determinism buys. *)

type analysis = {
  omega : int;  (** code space size *)
  group_size : int;  (** wires per contact group *)
  p_wire_unique : float;
      (** probability one wire's word is unique: {m (1-1/Ω)^{g-1}} *)
  expected_unique_wires : float;  (** {m g·(1-1/Ω)^{g-1}} *)
  expected_distinct_codes : float;  (** {m Ω(1-(1-1/Ω)^g)} *)
  p_all_distinct : float;
      (** probability the whole group is conflict-free:
          {m Ω!/((Ω-g)!·Ω^g)} (0 when g > Ω) *)
  deterministic_unique_wires : int;
      (** what MSPT guarantees: {m \min(g, Ω)} *)
}

val analyze : omega:int -> group_size:int -> analysis
(** Closed-form analysis; both arguments must be positive. *)

val mc_unique_fraction :
  Nanodec_numerics.Rng.t ->
  samples:int ->
  omega:int ->
  group_size:int ->
  Nanodec_numerics.Montecarlo.estimate
(** Monte-Carlo estimate of the unique-wire fraction (validates
    [p_wire_unique]). *)

val stochastic_loss : omega:int -> group_size:int -> float
(** Fraction of wires lost to code collisions relative to the
    deterministic assignment:
    {m 1 - g·(1-1/Ω)^{g-1} / \min(g, Ω)}. *)

val pp : Format.formatter -> analysis -> unit
