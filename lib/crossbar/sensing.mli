(** Analog sense-margin model of the decoder read path.

    The window criterion (paper ref [2]) is a digital abstraction; what a
    sense amplifier actually sees is the ratio between the selected wire's
    current and the total sneak current of the unselected wires in its
    contact group.  This module puts a simple long-channel conductance
    model under the decoder: each doping region is a series transistor
    with linear-region conductance {m g = g_m·(V_A − V_T)} above
    threshold and an exponential subthreshold leak below, and a wire's
    conductance is the series combination over its M regions.

    The Monte-Carlo sense yield counts a wire as readable when its
    selected-to-sneak ratio exceeds a threshold — an independent,
    more physical criterion against which the paper's window model is
    validated. *)

open Nanodec_codes
open Nanodec_numerics
open Nanodec_physics

type params = {
  transconductance : float;  (** g_m, S/V — sets the current scale *)
  subthreshold_swing : float;
      (** gate volts per e-fold of subthreshold leak (~30 mV:
          a ~70 mV/decade slope) *)
  min_ratio : float;  (** required selected/sneak current ratio *)
}

val default_params : params
(** g_m = 1 µS/V, 30 mV/e-fold swing, ratio 10. *)

val region_conductance :
  params -> gate_voltage:float -> threshold_voltage:float -> float
(** Conductance of one series transistor; always positive. *)

val wire_conductance :
  params -> Vt_levels.t -> address:Word.t -> vt_offsets:float array ->
  Word.t -> float
(** Series combination over all regions of the wire under the address's
    mesowire voltages. *)

val sense_ratio :
  params -> Vt_levels.t -> group:(Word.t * float array) list ->
  target:Word.t -> float
(** Selected-wire conductance divided by the summed conductance of every
    other wire of the group, under the target's own address.  [infinity]
    when the group has a single wire; raises [Invalid_argument] if the
    target is not in the group. *)

val mc_sense_yield :
  ?params:params -> Rng.t -> samples:int -> Cave.analysis ->
  Montecarlo.estimate
(** Fraction of wires whose sense ratio exceeds [params.min_ratio] under
    sampled fabrication noise — the analog counterpart of
    {!Cave.mc_yield_functional}. *)
