(** Full crossbar array model: yield, effective density and bit area
    (paper, Section 6.1, Figs. 7–8).

    A square crossbar of raw density [raw_bits] crosspoints has
    {m \lceil √{raw\_bits} \rceil} nanowires per layer, organised in caves
    of two half caves of [n_wires] each.  With cave yield [Y] (fraction of
    addressable wires), the fraction of addressable crosspoints — the
    "crossbar yield" of Fig. 7 — is [Y²], and the effective density is
    {m D_{EFF} = D_{RAW}·Y²}.  The layer side adds the decoder overhead
    (mesowires and contact rows) to the cave widths; the bit area of
    Fig. 8 is the total area divided by [D_EFF]. *)

type config = {
  cave : Cave.config;
  raw_bits : int;  (** D_RAW — 16 kB = 131072 crosspoints in the paper *)
}

val default_config : config

type report = {
  config : config;
  cave_analysis : Cave.analysis;
  wires_per_layer : int;
  caves_per_layer : int;
  cave_yield : float;  (** Y *)
  crossbar_yield : float;  (** Y² — fraction of addressable crosspoints *)
  effective_bits : float;  (** D_EFF *)
  side : float;  (** layer side, nm *)
  area : float;  (** crossbar area, nm² *)
  bit_area : float;  (** area per functional bit, nm² *)
}

val evaluate : config -> report

val pp_report : Format.formatter -> report -> unit
