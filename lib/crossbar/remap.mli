(** Defect-aware logical address space over a crossbar {!Memory}.

    A memory controller for a defective crossbar keeps a translation table
    from logical addresses to working (row, column) pairs — the standard
    defect-tolerance scheme for nanowire memories.  Logical bit [k] maps
    to the [k]-th crosspoint of the working-row × working-column grid in
    row-major order, so the logical space is dense and exactly
    {!Memory.usable_crosspoints} bits large. *)

type t

val build : Memory.t -> t
(** Scans the defect map once; O(rows + cols). *)

val memory : t -> Memory.t
val capacity_bits : t -> int
val capacity_bytes : t -> int

val physical_of_logical : t -> int -> int * int
(** [(row, col)] backing a logical bit; raises [Invalid_argument] outside
    [0, capacity_bits). *)

val set_bit : t -> int -> bool -> unit
val get_bit : t -> int -> bool

val store_string : t -> string -> unit
(** Writes the string's bits from logical address 0 (LSB-first per byte);
    raises [Invalid_argument] if it does not fit. *)

val load_string : t -> length:int -> string
(** Reads [length] bytes back from logical address 0. *)
