open Nanodec_codes
open Nanodec_physics

let applied_voltage levels digit =
  Vt_levels.vt_of_digit levels digit +. (Vt_levels.separation levels /. 2.)

let conducts_nominal ~address word = Word.dominates address word

let conducts levels ~address ~vt_offsets word =
  if Array.length vt_offsets <> Word.length word then
    invalid_arg "Addressing.conducts: offsets length mismatch";
  let ok = ref true in
  for j = 0 to Word.length word - 1 do
    let vt = Vt_levels.vt_of_digit levels (Word.get word j) +. vt_offsets.(j) in
    if vt > applied_voltage levels (Word.get address j) then ok := false
  done;
  !ok

let addressed_nominal ~group ~address =
  match List.filter (conducts_nominal ~address) group with
  | [ unique ] -> Some unique
  | [] | _ :: _ :: _ -> None

let uniquely_addressable group =
  List.for_all
    (fun word ->
      match addressed_nominal ~group ~address:word with
      | Some w -> Word.equal w word
      | None -> false)
    group

let addressed_with_noise levels ~group ~address ~target =
  let conducting =
    List.filter
      (fun (word, vt_offsets) -> conducts levels ~address ~vt_offsets word)
      group
  in
  match conducting with
  | [ (unique, _) ] -> Word.equal unique target
  | [] | _ :: _ :: _ -> false
