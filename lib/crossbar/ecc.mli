(** SECDED error-correcting code for crossbar storage.

    The paper's yield model discards wires whose decoder misbehaves, but a
    production nanowire memory would also protect the surviving bits
    against crosspoint faults (the molecular-switch defects the paper
    explicitly leaves unsimulated).  This module provides the standard
    extended Hamming(8,4) code — single-error correction, double-error
    detection per nibble — over the {!Remap} logical address space. *)

type decode_result =
  | Clean of int  (** corrected nibble, no error observed *)
  | Corrected of int  (** one bit flipped and repaired *)
  | Uncorrectable  (** two-bit error detected *)

val encode_nibble : int -> int
(** [encode_nibble d] maps a 4-bit value to its 8-bit extended-Hamming
    codeword; raises [Invalid_argument] outside [0, 15]. *)

val decode_byte : int -> decode_result
(** Inverse of {!encode_nibble} with correction; accepts any 8-bit
    value. *)

val store : Remap.t -> string -> unit
(** Writes a string ECC-protected (2x expansion); raises
    [Invalid_argument] if the encoded form does not fit. *)

val load : Remap.t -> length:int -> string * int * int
(** [load remap ~length] reads back [length] bytes, correcting single-bit
    errors; returns [(data, corrected, uncorrectable)] counts.  Nibbles
    flagged uncorrectable are returned as zero — callers must treat the
    third count as data loss. *)

val protected_capacity_bytes : Remap.t -> int
(** Usable payload bytes under ECC (half the raw remapped capacity). *)
