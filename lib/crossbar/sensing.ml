open Nanodec_codes
open Nanodec_numerics
open Nanodec_physics
open Nanodec_mspt

type params = {
  transconductance : float;
  subthreshold_swing : float;
  min_ratio : float;
}

let default_params =
  { transconductance = 1e-6; subthreshold_swing = 0.03; min_ratio = 10. }

let region_conductance p ~gate_voltage ~threshold_voltage =
  let overdrive = gate_voltage -. threshold_voltage in
  if overdrive > 0. then p.transconductance *. overdrive
  else
    (* Subthreshold: exponential roll-off from the edge-of-conduction
       value g_m * swing. *)
    p.transconductance *. p.subthreshold_swing
    *. exp (overdrive /. p.subthreshold_swing)

let wire_conductance p levels ~address ~vt_offsets word =
  if Array.length vt_offsets <> Word.length word then
    invalid_arg "Sensing.wire_conductance: offsets length mismatch";
  (* Series transistors: resistances add. *)
  let resistance = ref 0. in
  for j = 0 to Word.length word - 1 do
    let gate_voltage =
      Addressing.applied_voltage levels (Word.get address j)
    in
    let threshold_voltage =
      Vt_levels.vt_of_digit levels (Word.get word j) +. vt_offsets.(j)
    in
    resistance :=
      !resistance +. (1. /. region_conductance p ~gate_voltage ~threshold_voltage)
  done;
  1. /. !resistance

let sense_ratio p levels ~group ~target =
  if not (List.exists (fun (w, _) -> Word.equal w target) group) then
    invalid_arg "Sensing.sense_ratio: target not in group";
  let conductance (word, vt_offsets) =
    wire_conductance p levels ~address:target ~vt_offsets word
  in
  let selected = ref 0.
  and sneak = ref 0. in
  List.iter
    (fun (word, offsets) ->
      if Word.equal word target then selected := conductance (word, offsets)
      else sneak := !sneak +. conductance (word, offsets))
    group;
  if !sneak = 0. then infinity else !selected /. !sneak

let mc_sense_yield ?(params = default_params) rng ~samples analysis =
  let config = analysis.Cave.config in
  let levels =
    Vt_levels.make ~supply_voltage:config.Cave.supply_voltage
      ~placement:config.Cave.placement ~radix:config.Cave.radix ()
  in
  let n = config.Cave.n_wires in
  let pattern = analysis.Cave.pattern in
  (* Group wire indices by owning pad once. *)
  let pads = Hashtbl.create 8 in
  Array.iteri
    (fun i status ->
      match status with
      | Geometry.Addressable k ->
        let members = Option.value ~default:[] (Hashtbl.find_opt pads k) in
        Hashtbl.replace pads k (i :: members)
      | Geometry.Shared_between_pads _ | Geometry.Excess_in_pad _ -> ())
    analysis.Cave.layout.Geometry.statuses;
  let dose_table = [| 2.; 3.; 7.; 17.; 41.; 83.; 167.; 331. |] in
  let h d = dose_table.(d mod Array.length dose_table) +. float_of_int d in
  let _, s = Doping.of_pattern ~h pattern in
  let passes = Process.passes_of_step_matrix s in
  let one_draw rng =
    let noise =
      Process.sample_vt_noise rng ~sigma_t:config.Cave.sigma_t
        ~n_wires:n ~n_regions:config.Cave.code_length passes
    in
    let noise =
      if config.Cave.sigma_base = 0. then noise
      else
        Fmatrix.map
          (fun x -> x +. Rng.gaussian ~sigma:config.Cave.sigma_base rng)
          noise
    in
    let readable = ref 0 in
    Hashtbl.iter
      (fun _pad members ->
        let group =
          List.map
            (fun i -> (Pattern.word pattern ~wire:i, Fmatrix.row noise i))
            members
        in
        List.iter
          (fun i ->
            let target = Pattern.word pattern ~wire:i in
            if sense_ratio params levels ~group ~target >= params.min_ratio
            then incr readable)
          members)
      pads;
    float_of_int !readable /. float_of_int n
  in
  Montecarlo.estimate rng ~samples one_draw
