type t = {
  memory : Memory.t;
  good_rows : int array;
  good_cols : int array;
}

let build memory =
  {
    memory;
    good_rows = Defect_map.usable_indices (Memory.row_states memory);
    good_cols = Defect_map.usable_indices (Memory.col_states memory);
  }

let memory t = t.memory

let capacity_bits t = Array.length t.good_rows * Array.length t.good_cols
let capacity_bytes t = capacity_bits t / 8

let physical_of_logical t k =
  if k < 0 || k >= capacity_bits t then
    invalid_arg
      (Printf.sprintf "Remap: logical bit %d outside capacity %d" k
         (capacity_bits t));
  let width = Array.length t.good_cols in
  (t.good_rows.(k / width), t.good_cols.(k mod width))

let set_bit t k value =
  let row, col = physical_of_logical t k in
  match Memory.write t.memory ~row ~col value with
  | Ok () -> ()
  | Error _ ->
    (* Unreachable: the translation table only contains working wires. *)
    assert false

let get_bit t k =
  let row, col = physical_of_logical t k in
  match Memory.read t.memory ~row ~col with
  | Ok value -> value
  | Error _ -> assert false

let store_string t s =
  let bits = 8 * String.length s in
  if bits > capacity_bits t then
    invalid_arg
      (Printf.sprintf "Remap.store_string: %d bits exceed capacity %d" bits
         (capacity_bits t));
  String.iteri
    (fun i ch ->
      let byte = Char.code ch in
      for b = 0 to 7 do
        set_bit t ((8 * i) + b) (byte land (1 lsl b) <> 0)
      done)
    s

let load_string t ~length =
  if length < 0 || 8 * length > capacity_bits t then
    invalid_arg "Remap.load_string: length exceeds capacity";
  String.init length (fun i ->
      let byte = ref 0 in
      for b = 0 to 7 do
        if get_bit t ((8 * i) + b) then byte := !byte lor (1 lsl b)
      done;
      Char.chr !byte)
