(** Compiled Monte-Carlo yield kernels.

    {!Cave.mc_yield_window}'s reference draw allocates an N×M noise
    matrix and re-walks the pass/mask lists for every sample.  A kernel
    pre-compiles all of that, once, into a flat {e pass program}:

    {ul
    {- [targets] — every implant Gaussian of one sample reduced to the
       index of the cell it doses, in exact reference draw order
       (fabrication-ordered passes, wires 0..after_wire, regions
       ascending through the mask);}
    {- packed usable-wire flags and the precomputed σ_T/σ_base terms and
       acceptance window.}}

    {!draw} then executes one sample as a linear sweep over [targets]
    into a preallocated, domain-local scratch plane (obtained through
    {!Nanodec_parallel.Workspace}), using the unboxed {!Rng.Fast} mirror
    of the caller's generator — no per-sample matrix, list or closure
    allocation — and scans each usable wire's row with an early exit at
    the first region outside the window.

    The Gaussian draw order, the [sigma_base <> 0.] gate and the window
    comparison are replicated exactly, so a kernelized estimate is
    bit-for-bit identical to the reference draw under the same generator
    — the property the [kernel ≡ reference] oracle and the determinism
    gates enforce. *)

open Nanodec_numerics

type t
(** A compiled kernel; immutable, safe to share across domains (the
    mutable scratch lives in the domain-local workspace, not here). *)

val compile :
  n_wires:int ->
  n_regions:int ->
  sigma_t:float ->
  sigma_base:float ->
  window:float ->
  usable:bool array ->
  Nanodec_mspt.Process.pass list ->
  t
(** [compile] validates the geometry and flattens the pass program.
    [usable.(i)] tells whether wire [i] counts toward the yield
    (addressable, in {!Cave} terms); the array is copied.  Cost is one
    pass over the program — amortised over every subsequent sample. *)

val draw : t -> Rng.t -> float
(** One Monte-Carlo sample: the fraction of usable wires whose every
    region stays within ±window of nominal under freshly drawn
    fabrication noise.  Advances [rng] exactly as the reference draw
    would (same stream, same number of draws, spare cache included). *)

val draws_per_sample : t -> int
(** Gaussians consumed by each {!draw} — implant targets plus, when
    σ_base is non-zero, one per cell of the N×M plane. *)

val n_passes : t -> int
(** Passes in the compiled program (after per-step dose splitting). *)
