(** Compiled Monte-Carlo yield kernels.

    {!Cave.mc_yield_window}'s reference draw allocates an N×M noise
    matrix and re-walks the pass/mask lists for every sample.  A kernel
    pre-compiles all of that, once, into a flat {e pass program}:

    {ul
    {- [targets] — every implant Gaussian of one sample reduced to the
       index of the cell it doses, in exact reference draw order
       (fabrication-ordered passes, wires 0..after_wire, regions
       ascending through the mask);}
    {- packed usable-wire flags and the precomputed σ_T/σ_base terms and
       acceptance window.}}

    {!draw} then executes one sample as a linear sweep over [targets]
    into a preallocated, domain-local scratch plane (obtained through
    {!Nanodec_parallel.Workspace}), using the unboxed {!Rng.Fast} mirror
    of the caller's generator — no per-sample matrix, list or closure
    allocation — and scans each usable wire's row with an early exit at
    the first region outside the window.

    The Gaussian draw order, the [sigma_base <> 0.] gate and the window
    comparison are replicated exactly, so a kernelized estimate is
    bit-for-bit identical to the reference draw under the same generator
    — the property the [kernel ≡ reference] oracle and the determinism
    gates enforce. *)

open Nanodec_numerics

type t
(** A compiled kernel; immutable, safe to share across domains (the
    mutable scratch lives in the domain-local workspace, not here). *)

val compile :
  n_wires:int ->
  n_regions:int ->
  sigma_t:float ->
  sigma_base:float ->
  window:float ->
  usable:bool array ->
  Nanodec_mspt.Process.pass list ->
  t
(** [compile] validates the geometry and flattens the pass program.
    [usable.(i)] tells whether wire [i] counts toward the yield
    (addressable, in {!Cave} terms); the array is copied.  Cost is one
    pass over the program — amortised over every subsequent sample. *)

val draw : t -> Rng.t -> float
(** One Monte-Carlo sample: the fraction of usable wires whose every
    region stays within ±window of nominal under freshly drawn
    fabrication noise.  Advances [rng] exactly as the reference draw
    would (same stream, same number of draws, spare cache included). *)

val draws_per_sample : t -> int
(** Gaussians consumed by each {!draw} — implant targets plus, when
    σ_base is non-zero, one per cell of the N×M plane. *)

val n_passes : t -> int
(** Passes in the compiled program (after per-step dose splitting). *)

(** {1 Variance-reduced draws}

    Strategy-specific single-sample evaluators, each an {e equally
    unbiased} estimator of the same window yield on its own draw
    stream.  They share {!draw}'s zero-allocation discipline (the same
    domain-local scratch, the same {!Rng.Fast} mirror); their
    per-cell tables — total noise scale σ{_c}² = ν{_c}σ{_T}² +
    σ{_base}², marginal failure probabilities, importance mixture
    weights, the dominant stratification cell — are all precomputed by
    {!compile}.  Callers normally reach them through {!target} rather
    than directly. *)

val draw_antithetic : t -> Rng.t -> float
(** The antithetic pair's average.  The window predicate is even in
    the noise vector, so this equals {!draw}'s value on the same
    stream — the pair is a draw-cost optimisation (one Gaussian set
    for two samples' worth of the pair), not a variance reduction, on
    this integrand. *)

val draw_stratified : t -> strata:int -> stratum:int -> Rng.t -> float
(** {!draw}, except the globally dominant cell's total (the max-σ cell
    on a usable wire) is redrawn from stratum [stratum] of [strata]
    equal-probability strata of its N(0, σ{^2}) law — equal in law
    overall by cell independence.  Falls back to {!draw} when no
    usable wire has a noisy cell. *)

val draw_importance : t -> shift:float -> Rng.t -> float
(** One importance-sampled estimate of the yield: per usable wire, a
    mixture proposal shifts one failure-probability-chosen cell by
    ±[shift]·window and reweights wire failures with the exact inverse
    likelihood ratio.  Weights are self-bounding (the selected cell's
    own mixture term bounds the ratio away from zero), so the
    estimator's variance at high yield is far below the Bernoulli
    variance the plain draw pays. *)

val target : t -> Nanodec_numerics.Montecarlo.target
(** The fully-equipped Monte-Carlo target of this kernel: {!draw} as
    the plain integrand plus all three strategy evaluators — what
    {!Cave.mc_yield_window_par} hands to [Montecarlo.run]. *)
