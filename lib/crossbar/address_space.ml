open Nanodec_codes
open Nanodec_mspt

type address = {
  cave : int;
  half : int;
  pad : int;
  word : Word.t;
}

type t = {
  wires_per_half : int;
  addresses : address option array;
  (* Reverse index keyed by (cave, half, pad, word text). *)
  reverse : (int * int * int * string, int) Hashtbl.t;
}

let build analysis ~wires =
  if wires < 1 then invalid_arg "Address_space.build: wires must be >= 1";
  let config = analysis.Cave.config in
  let n = config.Cave.n_wires in
  let pattern = analysis.Cave.pattern in
  let reverse = Hashtbl.create (2 * wires) in
  let addresses =
    Array.init wires (fun w ->
        let index_in_half = w mod n in
        let half_global = w / n in
        let cave = half_global / 2
        and half = half_global mod 2 in
        match analysis.Cave.layout.Geometry.statuses.(index_in_half) with
        | Geometry.Shared_between_pads _ | Geometry.Excess_in_pad _ -> None
        | Geometry.Addressable pad ->
          let word = Pattern.word pattern ~wire:index_in_half in
          let address = { cave; half; pad; word } in
          Hashtbl.replace reverse (cave, half, pad, Word.to_string word) w;
          Some address)
  in
  { wires_per_half = n; addresses; reverse }

let n_wires t = Array.length t.addresses

let address_of_wire t w =
  if w < 0 || w >= n_wires t then
    invalid_arg "Address_space.address_of_wire: wire out of range";
  t.addresses.(w)

let wire_of_address t address =
  Hashtbl.find_opt t.reverse
    (address.cave, address.half, address.pad, Word.to_string address.word)

let addressable_wires t =
  let acc = ref [] in
  Array.iteri
    (fun w entry -> match entry with Some _ -> acc := w :: !acc | None -> ())
    t.addresses;
  List.rev !acc

let mesowire_voltages levels address =
  Array.init (Word.length address.word) (fun j ->
      Addressing.applied_voltage levels (Word.get address.word j))

let pp_address ppf a =
  Format.fprintf ppf "cave %d / half %d / group %d / %a" a.cave a.half a.pad
    Word.pp a.word
