(** Half-cave decoder analysis: code assignment, variability and yield
    (paper, Section 6.1).

    The [n_wires] nanowires of a half cave are patterned sequentially with
    the chosen code family's word sequence; contact pads are placed by
    {!Geometry.place}.  A wire contributes to the yield when

    {ul
    {- it is owned by exactly one pad and within that pad's Ω unique
       codes, and}
    {- every one of its doping regions keeps its threshold voltage within
       ±window of nominal, each region's V_T being Gaussian with variance
       {m σ_T²·ν_i^j} from the fabrication model.}}

    The analytic yield is the mean wire success probability; the
    Monte-Carlo estimators re-sample fabrication noise, either with the
    same window criterion (validates the closed form) or with the full
    electrical uniqueness semantics of {!Addressing}. *)

open Nanodec_codes
open Nanodec_numerics

type config = {
  rules : Geometry.rules;
  sigma_t : float;  (** per-implant V_T standard deviation, volt *)
  sigma_base : float;
      (** intrinsic per-region V_T standard deviation (random dopant
          fluctuation, line-edge roughness), volt *)
  margin_fraction : float;
      (** addressability window as a fraction of the level separation *)
  supply_voltage : float;
  placement : Nanodec_physics.Vt_levels.placement;
  radix : int;
  code_type : Codebook.t;
  code_length : int;  (** M — doping regions per wire *)
  n_wires : int;  (** N — wires per half cave *)
}

val default_config : config
(** The paper's platform: PL 32 nm, PN 10 nm, σ_T 50 mV, 1 V supply,
    binary balanced Gray code of length 10, N = 20 — plus the calibrated
    parameters of EXPERIMENTS.md (window fraction 0.42, σ_0 100 mV). *)

type analysis = {
  config : config;
  layout : Geometry.layout;
  pattern : Nanodec_mspt.Pattern.t;
  nu : Imatrix.t;
  omega : int;
  wire_probability : float array;
      (** per-wire addressability probability; 0 for removed wires *)
  yield : float;  (** cave yield Y — mean of [wire_probability] *)
}

val analyze : ?nu:Imatrix.t -> config -> analysis
(** [?nu] is the precomputed {!Nanodec_mspt.Variability.nu_matrix} of
    the config's pattern (keyed by
    {!Nanodec_mspt.Pattern.cache_key} in the serve artifact cache);
    passing it skips the recount, the result is identical either way. *)

val config_key : config -> string
(** Canonical, injective serialization of every parameter {!analyze}
    reads ("cave/v1|..."): the content-address of the analysis, the
    compiled kernel and every Monte-Carlo estimate derived from this
    configuration.  Floats render as exact hex ([%h]), so distinct
    configurations never collide and the key is platform-stable. *)

val wire_window_probability :
  sigma_t:float -> sigma_base:float -> window:float -> nu_row:int array -> float
(** {m Π_j \mathrm{erf}\big(w / √{2(σ_0² + ν_j σ_T²)}\big)} — success
    probability of one wire given its doping-operation counts. *)

val kernel_of_analysis : analysis -> Kernel.t
(** Compile the analysis' pass program, usable-wire flags, σ terms and
    window into a {!Kernel.t}.  Pure and reusable: compile once, then
    share the kernel across any number of estimates and domains. *)

val mc_yield_window :
  ?spec:Montecarlo.spec -> Rng.t -> samples:int -> analysis ->
  Montecarlo.estimate
(** Monte-Carlo re-estimate of the analytic yield by sampling fabrication
    noise through the process simulator and applying the window test.
    Runs on the compiled {!Kernel}.  Without [?spec], the plain
    single-stream sequential estimator; with one, [Montecarlo.run] on
    the kernel's full {!Kernel.target} ([samples] is then ignored in
    favour of the spec's stopping rule). *)

val mc_yield_functional :
  Rng.t -> samples:int -> analysis -> Montecarlo.estimate
(** Monte-Carlo yield under the full electrical semantics: a wire counts
    when it is the unique conductor of its pad under its own address. *)

val mc_yield_window_par :
  ?ctx:Nanodec_parallel.Run_ctx.t ->
  ?spec:Montecarlo.spec ->
  ?kernel:Kernel.t ->
  Rng.t ->
  samples:int ->
  analysis ->
  Montecarlo.estimate
(** Chunked window-yield estimate on {!Montecarlo.run}, running the
    compiled {!Kernel}: the result is bit-for-bit identical for every
    chunking, batch size and domain count (including [pool = None])
    {e and} — on the plain strategy — to {!mc_yield_window_reference}
    of the same arguments, though it differs from the single-stream
    {!mc_yield_window} of the same seed.  All shared state (the
    compiled pass program) is computed once before the fan-out, never
    per chunk; chunk bodies only read it, drawing into domain-local
    workspace scratch.

    The sampling configuration resolves in order: an explicit [?spec]
    wins; otherwise the context's [mc_method]/[rel_error] knobs build
    one through {!Montecarlo.spec_of_ctx} with [samples] as the fixed
    count (or the adaptive cap).  [?ctx] also supplies pool, chunking
    policy and telemetry (spans [kernel.compile] and
    [cave.mc_yield_window], counter [kernel.samples] — counted {e
    after} the run, since adaptive stopping makes the spent count an
    output).  [?kernel] supplies a pre-compiled {!kernel_of_analysis}
    of the same analysis (the serve artifact cache holds one), skipping
    the per-call compile; the estimate is identical either way.  The
    pool rides inside [?ctx] ([Run_ctx.make ~pool ()]). *)

val mc_yield_window_reference :
  ?ctx:Nanodec_parallel.Run_ctx.t ->
  Rng.t ->
  samples:int ->
  analysis ->
  Montecarlo.estimate
(** The pre-kernel allocating implementation of
    {!mc_yield_window_par} — a fresh N×M noise matrix and pass-list walk
    per sample.  Kept as the executable specification: the
    [kernel ≡ reference] oracle and the kernel bench gate compare
    against it, and it is the baseline of `BENCH_kernels.json`. *)
