(** Half-cave contact geometry (paper, Sections 2.2 and 6.1).

    Nanowires sit at sub-lithographic pitch [PN] inside a cave; ohmic
    contact pads (one per contact group) are lithographically defined, so
    their width is at least [1.5·PL] (the paper's layout rule) and at most
    the width of Ω nanowires (more would put two wires on one address).
    Pads are staggered in two rows and overlap transversally by an overlay
    margin; a wire under two pads is "addressable by two adjacent contact
    groups" (DeHon's effect, paper ref [6]) and must be discarded, as must
    any wire beyond the Ω uniquely-coded ones of its pad. *)

type rules = {
  litho_pitch : float;  (** PL, nm — 32 in the paper *)
  nanowire_pitch : float;  (** PN, nm — 10 in the paper *)
  pad_min_width_factor : float;  (** minimum pad width in PL units — 1.5 *)
  pad_overlap : float;  (** transversal overlay margin between adjacent pads, nm *)
  cave_wall : float;  (** transversal overhead per cave (walls), nm *)
  contact_row_length : float;
      (** longitudinal extent of one staggered contact row, nm *)
}

val default_rules : rules
(** The paper's platform: PL = 32, PN = 10, factor 1.5; overlay margin,
    wall and contact-row defaults are the calibration of EXPERIMENTS.md. *)

type wire_status =
  | Addressable of int  (** pad index owning the wire *)
  | Shared_between_pads of int * int
      (** wire under the overlap of two pads — removed *)
  | Excess_in_pad of int
      (** pad already holds Ω uniquely-coded wires — removed *)

type layout = {
  rules : rules;
  n_wires : int;
  omega : int;
  pad_width : float;
  n_pads : int;
  statuses : wire_status array;
}

val wire_position : rules -> int -> float
(** Transversal centre of wire [i]: {m (i + ½)·PN}. *)

val pad_width : rules -> omega:int -> n_wires:int -> float
(** {m \mathrm{clamp}(\min(Ω,N)·PN,\; 1.5·PL,\; Ω·PN)} — as wide as
    possible (fewest contact groups) within the layout rules. *)

val place : rules -> omega:int -> n_wires:int -> layout
(** Tiles the half cave with staggered pads (consecutive pads overlap by
    [pad_overlap]) and classifies every wire. *)

val n_addressable : layout -> int
val n_shared : layout -> int
val n_excess : layout -> int

val half_cave_width : rules -> n_wires:int -> float
(** Transversal width of a half cave including its wall share. *)

val decoder_extent : rules -> code_length:int -> float
(** Longitudinal overhead per layer: [code_length] mesowires at litho
    pitch plus two staggered contact rows. *)
