(** Programmable logic on a defective crossbar (NOR–NOR PLA).

    Crossbars are not only memories: the paper's references [5] and [10]
    use them as programmable logic planes.  The natural gate of a diode /
    FET crossbar is the wired NOR: a plane wire pulls low as soon as any
    connected input is high.  Two cascaded NOR planes compute any
    sum-of-products, and this module programs one onto the working wires
    of a sampled {!Memory} — defect-aware placement included.

    Plane 1 (the "AND" plane after De Morgan): term [t] = NOR of the
    {e complemented} literals absent from the product — realised by
    connecting, for each product, the literals that would veto it.
    Plane 2: output [o] = NOR of the terms {e not} in its sum, then one
    final inversion.  The module handles the bookkeeping; users supply
    plain sums of products. *)

type literal = {
  input : int;  (** input variable index *)
  positive : bool;  (** true = the variable itself, false = its negation *)
}

type product = literal list
(** Conjunction of literals; the empty product is the constant true. *)

type sop = product list
(** Disjunction of products; the empty sum is the constant false. *)

type t

type error =
  [ `Not_enough_rows of int * int  (** needed, available *)
  | `Not_enough_columns of int * int ]

val program :
  Memory.t -> inputs:int -> outputs:sop list -> (t, error) result
(** Places the input columns (two per variable: true and complemented
    rails) and one row per distinct product on working wires of the
    memory, storing the connection map in the crosspoints.  All outputs
    share the product rows (standard PLA term sharing). *)

val n_terms : t -> int
(** Distinct product terms after sharing. *)

val rows_used : t -> int list
(** Physical row wires hosting the terms. *)

val evaluate : t -> bool array -> bool array
(** [evaluate pla inputs] computes every output; raises
    [Invalid_argument] on an input-arity mismatch. *)

val truth_table : t -> bool array list
(** All 2^inputs output vectors, inputs in binary counting order (LSB =
    input 0).  Only sensible for small input counts. *)
