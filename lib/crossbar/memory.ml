open Nanodec_numerics

type t = {
  rows : Defect_map.wire_state array;
  cols : Defect_map.wire_state array;
  storage : Bytes.t;
}

type fault = [ `Defective_row | `Defective_column | `Out_of_range ]

let create rng config =
  let analysis = Cave.analyze config.Array_sim.cave in
  let wires =
    int_of_float (ceil (sqrt (float_of_int config.Array_sim.raw_bits)))
  in
  let rows = Defect_map.sample_layer (Rng.split rng) analysis ~wires in
  let cols = Defect_map.sample_layer (Rng.split rng) analysis ~wires in
  let bits = wires * wires in
  { rows; cols; storage = Bytes.make ((bits + 7) / 8) '\000' }

let n_rows t = Array.length t.rows
let n_cols t = Array.length t.cols
let row_states t = t.rows
let col_states t = t.cols

let working states =
  Array.length (Defect_map.usable_indices states)

let usable_crosspoints t = working t.rows * working t.cols

let realized_yield t =
  float_of_int (usable_crosspoints t)
  /. float_of_int (n_rows t * n_cols t)

let check t ~row ~col : (unit, fault) result =
  if row < 0 || row >= n_rows t || col < 0 || col >= n_cols t then
    Error `Out_of_range
  else
    match (t.rows.(row), t.cols.(col)) with
    | Defect_map.Working, Defect_map.Working -> Ok ()
    | (Defect_map.Removed_by_layout | Defect_map.Failed_variability), _ ->
      Error `Defective_row
    | Defect_map.Working,
      (Defect_map.Removed_by_layout | Defect_map.Failed_variability) ->
      Error `Defective_column

let bit_index t ~row ~col = (row * n_cols t) + col

let write t ~row ~col value =
  match check t ~row ~col with
  | Error _ as e -> e
  | Ok () ->
    let index = bit_index t ~row ~col in
    let byte = Bytes.get_uint8 t.storage (index / 8) in
    let mask = 1 lsl (index mod 8) in
    let byte = if value then byte lor mask else byte land lnot mask in
    Bytes.set_uint8 t.storage (index / 8) byte;
    Ok ()

let read t ~row ~col =
  match check t ~row ~col with
  | Error _ as e -> e
  | Ok () ->
    let index = bit_index t ~row ~col in
    let byte = Bytes.get_uint8 t.storage (index / 8) in
    Ok (byte land (1 lsl (index mod 8)) <> 0)

let crosspoint_usable t ~row ~col = Result.is_ok (check t ~row ~col)

let mc_realized_yield rng ~samples config =
  Montecarlo.estimate rng ~samples (fun rng ->
      realized_yield (create rng config))
