module Rng = Nanodec_rng.Rng
module Telemetry = Nanodec_telemetry.Telemetry

type action = Crash | Delay of float | Stall of float

type rule = {
  site : string;
  action : action;
  prob : float;
  max_fires : int option;
  only_key : int option;
  after : int;
}

type plan = { seed : int; rules : rule list }

exception Injected of { site : string; key : int }

let () =
  Printexc.register_printer (function
    | Injected { site; key } ->
      Some (Printf.sprintf "Fault.Injected(site %s, key %d)" site key)
    | _ -> None)

let known_sites =
  [ "pool.chunk"; "mc.sample_batch"; "cave.window"; "telemetry.flush";
    "serve.dispatch"; "serve.snapshot"; "serve.batch" ]

let default_seed = 2009
let env_var = "NANODEC_FAULT_PLAN"

(* --- plan spec --- *)

let grammar_hint =
  "plan is seed=INT and/or SITE:ACTION[:p=F][:max=N][:key=N][:after=N] \
   entries joined by ';' — actions: crash, delay=DUR, stall=DUR (DUR like \
   2ms or 0.5s); sites: " ^ String.concat ", " known_sites

let parse_duration s =
  let num scale text =
    match float_of_string_opt text with
    | Some f when f >= 0. -> Ok (f *. scale)
    | Some _ | None -> Error (Printf.sprintf "bad duration %S" s)
  in
  match
    if Filename.check_suffix s "ms" then
      Some (1e-3, Filename.chop_suffix s "ms")
    else if Filename.check_suffix s "s" then
      Some (1., Filename.chop_suffix s "s")
    else None
  with
  | Some (scale, text) -> num scale text
  | None -> Error (Printf.sprintf "duration %S needs an ms or s suffix" s)

let parse_action s =
  match String.index_opt s '=' with
  | None when s = "crash" -> Ok Crash
  | None -> Error (Printf.sprintf "unknown action %S" s)
  | Some i -> (
    let name = String.sub s 0 i in
    let arg = String.sub s (i + 1) (String.length s - i - 1) in
    match name with
    | "delay" -> Result.map (fun d -> Delay d) (parse_duration arg)
    | "stall" -> Result.map (fun d -> Stall d) (parse_duration arg)
    | _ -> Error (Printf.sprintf "unknown action %S" name))

let parse_opt rule s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "malformed option %S (want name=value)" s)
  | Some i -> (
    let name = String.sub s 0 i in
    let arg = String.sub s (i + 1) (String.length s - i - 1) in
    let int_arg k =
      match int_of_string_opt arg with
      | Some n when n >= 0 -> Ok (k n)
      | Some _ | None -> Error (Printf.sprintf "bad integer in %S" s)
    in
    match name with
    | "p" -> (
      match float_of_string_opt arg with
      | Some p when p >= 0. && p <= 1. -> Ok { rule with prob = p }
      | Some _ | None ->
        Error (Printf.sprintf "probability in %S must be in [0, 1]" s))
    | "max" -> int_arg (fun n -> { rule with max_fires = Some n })
    | "key" -> int_arg (fun n -> { rule with only_key = Some n })
    | "after" -> int_arg (fun n -> { rule with after = n })
    | _ -> Error (Printf.sprintf "unknown option %S" name))

let parse_rule s =
  match String.split_on_char ':' s with
  | site :: action :: opts when List.mem site known_sites ->
    Result.bind (parse_action action) (fun action ->
        List.fold_left
          (fun acc opt -> Result.bind acc (fun r -> parse_opt r opt))
          (Ok
             {
               site;
               action;
               prob = 1.;
               max_fires = None;
               only_key = None;
               after = 0;
             })
          opts)
  | site :: _ :: _ ->
    Error
      (Printf.sprintf "unknown site %S (valid: %s)" site
         (String.concat ", " known_sites))
  | _ -> Error (Printf.sprintf "malformed rule %S (want site:action...)" s)

let parse s =
  let entries =
    List.filter
      (fun e -> String.trim e <> "")
      (String.split_on_char ';' s)
  in
  List.fold_left
    (fun acc entry ->
      Result.bind acc (fun plan ->
          let entry = String.trim entry in
          match String.index_opt entry ':' with
          | None -> (
            match String.split_on_char '=' entry with
            | [ "seed"; v ] -> (
              match int_of_string_opt v with
              | Some seed when seed >= 0 -> Ok { plan with seed }
              | Some _ | None ->
                Error (Printf.sprintf "bad seed in %S" entry))
            | _ ->
              Error
                (Printf.sprintf "malformed entry %S (want seed=N or a rule)"
                   entry))
          | Some _ ->
            Result.map
              (fun rule -> { plan with rules = plan.rules @ [ rule ] })
              (parse_rule entry)))
    (Ok { seed = default_seed; rules = [] })
    entries

let parse_exn s =
  match parse s with
  | Ok plan -> plan
  | Error msg ->
    Nanodec_error.fail
      (Nanodec_error.Invalid_input
         {
           what = Printf.sprintf "fault plan %S: %s" s msg;
           hint = Some grammar_hint;
         })

let duration_to_string d =
  if Float.is_integer (d *. 1e3) && d < 1. then
    Printf.sprintf "%gms" (d *. 1e3)
  else Printf.sprintf "%gs" d

let action_to_string = function
  | Crash -> "crash"
  | Delay d -> "delay=" ^ duration_to_string d
  | Stall d -> "stall=" ^ duration_to_string d

let rule_to_string r =
  String.concat ""
    [
      r.site;
      ":";
      action_to_string r.action;
      (if r.prob = 1. then "" else Printf.sprintf ":p=%g" r.prob);
      (match r.max_fires with
      | None -> ""
      | Some n -> Printf.sprintf ":max=%d" n);
      (match r.only_key with
      | None -> ""
      | Some k -> Printf.sprintf ":key=%d" k);
      (if r.after = 0 then "" else Printf.sprintf ":after=%d" r.after);
    ]

let plan_to_string p =
  String.concat ";"
    (Printf.sprintf "seed=%d" p.seed :: List.map rule_to_string p.rules)

(* --- engine --- *)

type rule_state = {
  rule : rule;
  rule_seed : int;  (* mix of the plan seed and the rule's position *)
  mutable fires : int;
  mutable evals : int;  (* eligible (key-matching) evaluations so far *)
  attempts : (int, int) Hashtbl.t;  (* key -> evaluations of that key *)
}

type t = {
  p : plan;
  mutex : Mutex.t;
  by_site : (string, rule_state list) Hashtbl.t;
  site_seq : (string, int ref) Hashtbl.t;  (* default-key sequence *)
  fired_by_site : (string, int ref) Hashtbl.t;
  mutable sink : Telemetry.sink option;
}

let create p =
  let by_site = Hashtbl.create 8 in
  List.iteri
    (fun i rule ->
      let st =
        {
          rule;
          rule_seed = Rng.mix_seed p.seed i;
          fires = 0;
          evals = 0;
          attempts = Hashtbl.create 64;
        }
      in
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt by_site rule.site)
      in
      Hashtbl.replace by_site rule.site (prev @ [ st ]))
    p.rules;
  {
    p;
    mutex = Mutex.create ();
    by_site;
    site_seq = Hashtbl.create 8;
    fired_by_site = Hashtbl.create 8;
    sink = None;
  }

let inert () = create { seed = default_seed; rules = [] }

let of_env () =
  match Sys.getenv_opt env_var with
  | None -> None
  | Some s when String.trim s = "" -> None
  | Some s -> Some (create (parse_exn s))

let plan t = t.p

let set_telemetry t sink = t.sink <- sink

(* Per-domain suppression flag: the degraded sequential pass runs with
   injection off so a poisoned run can still complete. *)
let suppression_key = Domain.DLS.new_key (fun () -> false)
let suppressed () = Domain.DLS.get suppression_key

let without_faults f =
  let prev = Domain.DLS.get suppression_key in
  Domain.DLS.set suppression_key true;
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set suppression_key prev)
    f

let bump tbl site =
  let cell =
    match Hashtbl.find_opt tbl site with
    | Some c -> c
    | None ->
      let c = ref 0 in
      Hashtbl.add tbl site c;
      c
  in
  incr cell;
  !cell

(* Decide, under the engine mutex, which actions fire for this
   evaluation.  The draw is a pure function of (plan seed, rule index,
   key, per-key attempt number), so decisions do not depend on domain
   scheduling: a chunk retried on another domain sees the same stream. *)
let decide t ~key site =
  Mutex.lock t.mutex;
  let states =
    match Hashtbl.find_opt t.by_site site with Some l -> l | None -> []
  in
  let key =
    match key with
    | Some k -> k
    | None -> if states = [] then 0 else bump t.site_seq site
  in
  let fired_now =
    List.filter_map
      (fun st ->
        let r = st.rule in
        let key_ok =
          match r.only_key with None -> true | Some k -> k = key
        in
        if not key_ok then None
        else begin
          let attempt =
            Option.value ~default:0 (Hashtbl.find_opt st.attempts key)
          in
          Hashtbl.replace st.attempts key (attempt + 1);
          let eval = st.evals in
          st.evals <- eval + 1;
          let budget_ok =
            match r.max_fires with None -> true | Some m -> st.fires < m
          in
          if eval < r.after || not budget_ok then None
          else
            let u =
              Rng.float
                (Rng.of_seed (Rng.mix_seed (Rng.mix_seed st.rule_seed key) attempt))
            in
            if u < r.prob then begin
              st.fires <- st.fires + 1;
              ignore (bump t.fired_by_site site);
              Some r.action
            end
            else None
        end)
      states
  in
  let sink = t.sink in
  Mutex.unlock t.mutex;
  (match sink with
  | Some s ->
    List.iter
      (fun action ->
        Telemetry.count (Some s) ("fault.fired." ^ site) 1;
        Telemetry.count (Some s)
          (match action with
          | Crash -> "fault.injected.crash"
          | Delay _ -> "fault.injected.delay"
          | Stall _ -> "fault.injected.stall")
          1)
      fired_now
  | None -> ());
  (key, fired_now)

let hit t ?key site =
  match t with
  | None -> ()
  | Some t ->
    if not (suppressed ()) then begin
      let key, actions = decide t ~key site in
      (* Sleeps first, so a rule list mixing a stall and a crash stalls
         the worker before killing it — the worst case. *)
      List.iter
        (function Delay d | Stall d -> Unix.sleepf d | Crash -> ())
        actions;
      if List.exists (function Crash -> true | _ -> false) actions then
        raise (Injected { site; key })
    end

let fired t =
  Mutex.lock t.mutex;
  let l =
    Hashtbl.fold (fun site n acc -> (site, !n) :: acc) t.fired_by_site []
  in
  Mutex.unlock t.mutex;
  List.sort compare l

let total_fired t = List.fold_left (fun acc (_, n) -> acc + n) 0 (fired t)
