(** Deterministic fault injection.

    The engine plants failures at named {e sites} — fixed points in the
    runtime where a probe asks "should this evaluation fail?":

    {ul
    {- [pool.chunk] — before a pool chunk body runs (keyed by chunk
       index);}
    {- [mc.sample_batch] — before a Monte-Carlo chunk draws its batch
       (keyed by chunk index);}
    {- [cave.window] — before a cave window-yield estimate fans out;}
    {- [telemetry.flush] — before a telemetry sink is exported;}
    {- [serve.dispatch] — before a daemon worker executes a request
       (keyed by the request's arrival sequence number);}
    {- [serve.snapshot] — before the daemon writes an artifact-cache
       snapshot (keyed by the snapshot ordinal);}
    {- [serve.batch] — before the daemon executes a fused request
       batch (keyed by the batch ordinal); a crash falls the batch
       back to per-request execution, bytes unchanged.}}

    A {e plan} is a seed plus a list of rules, written in a compact
    spec accepted by {!parse} and by the [NANODEC_FAULT_PLAN]
    environment variable / the CLI's [--fault-plan]:

    {v
    plan  ::= entry (';' entry)*
    entry ::= 'seed=' INT | rule
    rule  ::= site ':' action (':' opt)*
    action::= 'crash' | 'delay=' DUR | 'stall=' DUR
    opt   ::= 'p=' FLOAT | 'max=' INT | 'key=' INT | 'after=' INT
    DUR   ::= FLOAT ('ms' | 's')
    v}

    Example: ["seed=7;pool.chunk:crash:p=0.05:max=3;mc.sample_batch:delay=2ms:p=0.1"]
    crashes each pool chunk with probability 5 % (at most 3 times
    overall) and delays a tenth of the Monte-Carlo batches by 2 ms.

    {2 Determinism}

    Whether a rule fires on a given evaluation depends only on the plan
    seed, the rule, the caller-supplied key and how many times that key
    has been evaluated before — {e never} on wall-clock time, domain
    scheduling or the domain count.  Two runs with the same plan inject
    the same faults; a retried chunk (same key, next attempt) gets a
    fresh, equally deterministic decision, which is what lets bounded
    retries clear transient injected crashes.

    {2 Overhead}

    Probes are free when no engine is installed: {!hit} on [None] is a
    single branch.  Enabled probes take the engine mutex, so the engine
    is meant for chaos testing, not steady-state production overhead. *)

type action =
  | Crash  (** raise {!Injected} at the site *)
  | Delay of float  (** sleep this many seconds, then continue *)
  | Stall of float
      (** sleep this many seconds, simulating a stuck worker; identical
          mechanics to [Delay] but counted separately so stall
          experiments are distinguishable in telemetry *)

type rule = {
  site : string;
  action : action;
  prob : float;  (** fire probability per eligible evaluation; default 1 *)
  max_fires : int option;  (** total fire budget for the rule *)
  only_key : int option;  (** restrict to one evaluation key *)
  after : int;  (** skip the first [after] eligible evaluations *)
}

type plan = { seed : int; rules : rule list }

exception Injected of { site : string; key : int }
(** The exception a [crash] action raises.  The supervised pool treats
    it as transient (retry, then degrade); everything else should let it
    propagate to the taxonomy boundary. *)

val known_sites : string list
(** The valid [site] names; {!parse} rejects anything else. *)

val default_seed : int
(** 2009, as everywhere in the reproduction. *)

val env_var : string
(** ["NANODEC_FAULT_PLAN"]. *)

val parse : string -> (plan, string) result
(** Parse the spec grammar above.  The empty string parses to an empty
    plan (no rules). *)

val parse_exn : string -> plan
(** {!parse}, raising [Nanodec_error.Error (Invalid_input _)] with the
    grammar as hint on malformed input. *)

val plan_to_string : plan -> string
(** Render a plan back into the spec grammar ([parse] round-trips). *)

type t
(** A live engine: a plan plus its deterministic decision state. *)

val create : plan -> t

val inert : unit -> t
(** An engine with no rules — compiled-in, enabled, but never firing.
    The probe-cost baseline used by the bench overhead gate and the
    proptest transparency oracle. *)

val of_env : unit -> t option
(** [Some] engine when {!env_var} is set and non-empty; raises
    [Nanodec_error.Error (Invalid_input _)] on a malformed value. *)

val plan : t -> plan

val set_telemetry : t -> Nanodec_telemetry.Telemetry.sink option -> unit
(** Record every fired fault in the sink: counters
    [fault.injected.crash|delay|stall] and [fault.fired.<site>]. *)

val hit : t option -> ?key:int -> string -> unit
(** [hit engine ~key site] evaluates every rule bound to [site] for
    evaluation key [key] (defaulting to a per-site sequence number) and
    performs the fired actions: sleeps for delays/stalls, raises
    {!Injected} for crashes.  [hit None] is a no-op; so is any hit
    inside {!without_faults}. *)

val without_faults : (unit -> 'a) -> 'a
(** Run [f] with injection suppressed on the calling domain — the
    degraded-execution escape hatch: a sequential fallback pass runs
    under [without_faults] so a poisoned run can still complete. *)

val suppressed : unit -> bool
(** Whether the calling domain is currently inside {!without_faults}. *)

val fired : t -> (string * int) list
(** Fired-fault counts per site, sorted by site name. *)

val total_fired : t -> int
