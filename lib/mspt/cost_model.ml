type params = {
  spacer_minutes : float;
  pass_minutes : float;
  recipe_minutes : float;
  hour_cost : float;
}

let default_params =
  {
    spacer_minutes = 30.;
    pass_minutes = 45.;
    recipe_minutes = 20.;
    hour_cost = 500.;
  }

type estimate = {
  n_spacers : int;
  n_passes : int;
  n_recipes : int;
  total_minutes : float;
  total_cost : float;
}

let of_pattern ?(params = default_params) ~h pattern =
  let _, s = Doping.of_pattern ~h pattern in
  let passes = Process.passes_of_step_matrix s in
  let n_spacers = Pattern.n_wires pattern in
  let n_passes = List.length passes in
  let n_recipes = Process.distinct_doses passes in
  let total_minutes =
    (float_of_int n_spacers *. params.spacer_minutes)
    +. (float_of_int n_passes *. params.pass_minutes)
    +. (float_of_int n_recipes *. params.recipe_minutes)
  in
  {
    n_spacers;
    n_passes;
    n_recipes;
    total_minutes;
    total_cost = total_minutes /. 60. *. params.hour_cost;
  }

let compare_patterns ?params ~h reference candidate =
  let t1 = (of_pattern ?params ~h reference).total_minutes in
  let t2 = (of_pattern ?params ~h candidate).total_minutes in
  (t1 -. t2) /. t1

let pp ppf e =
  Format.fprintf ppf
    "%d spacers, %d litho/doping passes, %d implant recipes -> %.0f min \
     (%.0f cost units)"
    e.n_spacers e.n_passes e.n_recipes e.total_minutes e.total_cost
