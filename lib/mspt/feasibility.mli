(** Physical feasibility of a doping plan (paper, Section 3.3).

    Propositions 1–2 guarantee a step matrix exists for any pattern
    {e algebraically}; a fab additionally bounds every single implant dose
    (beam current × time limits) and the total compensation a region can
    absorb before crystal damage dominates.  This module checks a step
    matrix against those limits and reports every violation, so a designer
    can tell whether a pattern is manufacturable before committing masks. *)

open Nanodec_numerics

type limits = {
  max_step_dose : float;
      (** largest |dose| allowed in one lithography/doping pass *)
  max_total_implanted : float;
      (** largest Σ|dose| a single region may accumulate *)
}

val default_limits : limits
(** 1e19 cm⁻³ per pass, 3e19 cm⁻³ accumulated — generous bounds for the
    doping ranges the V_T window 0–1 V implies. *)

type violation =
  | Step_dose_exceeded of { wire : int; region : int; dose : float }
  | Accumulation_exceeded of { wire : int; region : int; total : float }

val check : ?limits:limits -> Fmatrix.t -> (unit, violation list) result
(** [check s] validates a step matrix; the violation list is exhaustive
    (not first-failure), ordered by wire then region. *)

val total_implanted : Fmatrix.t -> Fmatrix.t
(** Σ over steps of |dose| reaching each region — the compensation load
    matrix (wire [i] accumulates the doses of steps [i..N-1]). *)

val pp_violation : Format.formatter -> violation -> unit
