(** Final and step doping matrices (paper, Definitions 2–3 and
    Propositions 1–2).

    The final doping matrix [D] applies the bijection [h] elementwise to
    the pattern matrix.  The step doping matrix [S] holds the additional
    dose deposited by the lithography/doping procedure that follows the
    definition of each nanowire; because a dose applied after defining
    nanowire [i] also reaches nanowires [0..i-1],

    {m D_i^j = Σ_{k ≥ i} S_k^j}, i.e. {m S_i = D_i − D_{i+1}} and
    {m S_{N-1} = D_{N-1}}. *)

open Nanodec_numerics

val final_matrix : h:(int -> float) -> Pattern.t -> Fmatrix.t
(** [final_matrix ~h p] is [D]; [h] is typically
    {!Nanodec_physics.Vt_levels.doping_of_digit} or a table like the
    paper's worked example. *)

val step_matrix : Fmatrix.t -> Fmatrix.t
(** [S] from [D] by backward differences. *)

val final_of_step : Fmatrix.t -> Fmatrix.t
(** Inverse: suffix sums recover [D] from [S] (Proposition 2). *)

val of_pattern : h:(int -> float) -> Pattern.t -> Fmatrix.t * Fmatrix.t
(** Both matrices, [D, S], in one call. *)

val paper_example_h : int -> float
(** The worked example's mapping: digits 0, 1, 2 → doping 2, 4, 9
    (in 10¹⁸ cm⁻³ — returned in those units to match the paper). *)
