open Nanodec_numerics

let final_matrix ~h p = Imatrix.map_to_fmatrix h (Pattern.to_matrix p)

let step_matrix d =
  let n = Fmatrix.rows d in
  Fmatrix.init ~rows:n ~cols:(Fmatrix.cols d) (fun i j ->
      if i = n - 1 then Fmatrix.get d i j
      else Fmatrix.get d i j -. Fmatrix.get d (i + 1) j)

let final_of_step s =
  let n = Fmatrix.rows s in
  let d = Fmatrix.make ~rows:n ~cols:(Fmatrix.cols s) 0. in
  (* Suffix sums: D_i = S_i + D_{i+1}. *)
  for i = n - 1 downto 0 do
    for j = 0 to Fmatrix.cols s - 1 do
      let below = if i = n - 1 then 0. else Fmatrix.get d (i + 1) j in
      Fmatrix.set d i j (Fmatrix.get s i j +. below)
    done
  done;
  d

let of_pattern ~h p =
  let d = final_matrix ~h p in
  (d, step_matrix d)

let paper_example_h = function
  | 0 -> 2.
  | 1 -> 4.
  | 2 -> 9.
  | d -> invalid_arg (Printf.sprintf "Doping.paper_example_h: digit %d" d)
