(** Fabrication-process simulator for the decoder-aware MSPT flow
    (paper, Section 3.2, Fig. 4).

    The enhanced flow interleaves spacer definition with lithography/doping
    passes: after nanowire [i] is defined, its step's doses are implanted —
    reaching every already-defined nanowire [0..i].  A step using [φ_i]
    distinct doses is realised as [φ_i] lithography passes, each with a
    mask selecting the regions receiving that dose.

    The simulator executes the pass list on a virtual half cave and returns
    the accumulated doping, closing the loop
    {e pattern → step matrix → passes → wafer → final doping}, optionally
    with per-implant threshold-voltage noise for Monte-Carlo studies. *)

open Nanodec_numerics

type pass = {
  after_wire : int;  (** the pass runs after this nanowire is defined *)
  dose : float;  (** implant dose (same unit as the doping matrix) *)
  mask : bool array;  (** regions receiving the dose (length M) *)
}

val passes_of_step_matrix : ?eps:float -> Fmatrix.t -> pass list
(** One pass per distinct non-zero dose of each step row, in fabrication
    order; the list length is exactly Φ. *)

val distinct_doses : ?eps:float -> pass list -> int
(** Number of distinct dose values across the whole flow — the number of
    implanter recipes the fab must qualify (every pass reuses one). *)

val run : n_wires:int -> n_regions:int -> pass list -> Fmatrix.t
(** Executes the passes: each adds its dose to the masked regions of all
    nanowires defined so far ([0..after_wire]).  Returns the final doping
    matrix — equal to the [D] the passes were derived from
    (integration-tested). *)

val hit_counts : n_wires:int -> n_regions:int -> pass list -> Imatrix.t
(** Number of implants received by each region — equals
    {!Variability.nu_matrix} when the passes come from the pattern's step
    matrix. *)

val sample_vt_noise :
  Rng.t -> sigma_t:float -> n_wires:int -> n_regions:int -> pass list ->
  Fmatrix.t
(** Draws one fabrication outcome: every implant hitting a region adds an
    independent N(0, σ_T²) offset to that region's threshold voltage;
    the returned matrix holds the accumulated V_T deviations. *)
