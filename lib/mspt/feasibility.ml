open Nanodec_numerics

type limits = {
  max_step_dose : float;
  max_total_implanted : float;
}

let default_limits = { max_step_dose = 1e19; max_total_implanted = 3e19 }

type violation =
  | Step_dose_exceeded of { wire : int; region : int; dose : float }
  | Accumulation_exceeded of { wire : int; region : int; total : float }

let total_implanted s =
  let n = Fmatrix.rows s in
  let acc = Fmatrix.make ~rows:n ~cols:(Fmatrix.cols s) 0. in
  (* Wire i receives the doses of steps i..N-1: suffix sums of |S|. *)
  for i = n - 1 downto 0 do
    for j = 0 to Fmatrix.cols s - 1 do
      let below = if i = n - 1 then 0. else Fmatrix.get acc (i + 1) j in
      Fmatrix.set acc i j (below +. Float.abs (Fmatrix.get s i j))
    done
  done;
  acc

let check ?(limits = default_limits) s =
  let violations = ref [] in
  let note v = violations := v :: !violations in
  let totals = total_implanted s in
  for wire = Fmatrix.rows s - 1 downto 0 do
    for region = Fmatrix.cols s - 1 downto 0 do
      let total = Fmatrix.get totals wire region in
      if total > limits.max_total_implanted then
        note (Accumulation_exceeded { wire; region; total });
      let dose = Fmatrix.get s wire region in
      if Float.abs dose > limits.max_step_dose then
        note (Step_dose_exceeded { wire; region; dose })
    done
  done;
  match !violations with [] -> Ok () | vs -> Error vs

let pp_violation ppf = function
  | Step_dose_exceeded { wire; region; dose } ->
    Format.fprintf ppf "step dose %.3g at wire %d region %d exceeds limit"
      dose wire region
  | Accumulation_exceeded { wire; region; total } ->
    Format.fprintf ppf
      "accumulated implantation %.3g at wire %d region %d exceeds limit"
      total wire region
