open Nanodec_numerics
open Nanodec_codes

let phi_per_step_of_doses ?(eps = 1e-9) s =
  Array.init (Fmatrix.rows s) (fun i ->
      Fmatrix.distinct_nonzero ~eps (Fmatrix.row s i))

let total_of_doses ?eps s =
  Array.fold_left ( + ) 0 (phi_per_step_of_doses ?eps s)

let distinct_pairs pairs =
  List.length (List.sort_uniq Stdlib.compare pairs)

let phi_per_step p =
  let n = Pattern.n_wires p in
  Array.init n (fun i ->
      if i = n - 1 then
        (* Last nanowire: S_{N-1} = D_{N-1}; one dose per distinct digit. *)
        let counts = Word.counts (Pattern.word p ~wire:i) in
        Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 counts
      else
        distinct_pairs
          (Word.changed_pairs (Pattern.word p ~wire:i)
             (Pattern.word p ~wire:(i + 1))))

let total p = Array.fold_left ( + ) 0 (phi_per_step p)
