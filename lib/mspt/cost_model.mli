(** Fabrication time and cost model.

    The paper argues for the Gray code in units of lithography/doping
    steps; a fab thinks in hours and wafers.  This model turns a process
    flow into time and money: every spacer definition pair costs a
    deposition + etch, every lithography/doping pass costs an
    align + expose + implant, and every {e distinct} dose requires an
    implanter recipe qualification.  Defaults are deliberately
    round-number academic-fab figures — the point is the relative cost of
    code choices, which is parameter-robust. *)

type params = {
  spacer_minutes : float;  (** deposition + etch per spacer *)
  pass_minutes : float;  (** align + expose + implant per litho pass *)
  recipe_minutes : float;  (** implanter setup per distinct dose *)
  hour_cost : float;  (** fab hour price, arbitrary currency *)
}

val default_params : params
(** 30 min/spacer, 45 min/pass, 20 min/recipe, 500/hour. *)

type estimate = {
  n_spacers : int;
  n_passes : int;  (** = Φ *)
  n_recipes : int;  (** distinct doses *)
  total_minutes : float;
  total_cost : float;
}

val of_pattern : ?params:params -> h:(int -> float) -> Pattern.t -> estimate
(** Cost of fabricating a half cave with the given pattern (the paper's
    additional steps plus the baseline spacer definitions). *)

val compare_patterns :
  ?params:params -> h:(int -> float) -> Pattern.t -> Pattern.t -> float
(** Relative time saving of the second pattern over the first,
    {m (t_1 - t_2)/t_1} — e.g. tree vs Gray encodings of the same wires. *)

val pp : Format.formatter -> estimate -> unit
