(** Pattern matrix [P] (paper, Definition 1).

    The pattern matrix of a half cave stacks the code words of its [N]
    nanowires: row [i] is the threshold-voltage pattern of nanowire [i]
    (digit [j] = discretised V_T of doping region [j]).  Nanowire 0 is the
    one defined {e first} by the multi-spacer process — it therefore
    receives every subsequent doping step. *)

open Nanodec_codes
open Nanodec_numerics

type t

val of_words : Word.t list -> t
(** Rows in fabrication order.  All words must share radix and length;
    raises [Invalid_argument] otherwise or on an empty list. *)

val of_matrix : radix:int -> Imatrix.t -> t
(** Validates every entry against [radix]. *)

val of_codebook :
  radix:int -> length:int -> n_wires:int -> Codebook.t -> t
(** Pattern of [n_wires] nanowires encoded with the given family's
    canonical sequence (cycling past the space size). *)

val n_wires : t -> int
(** N — rows. *)

val n_regions : t -> int
(** M — columns (doping regions per nanowire). *)

val radix : t -> int
val digit : t -> wire:int -> region:int -> int
val word : t -> wire:int -> Word.t
val words : t -> Word.t list
val to_matrix : t -> Imatrix.t

val transitions_between_rows : t -> int array
(** Entry [i] = Hamming distance between rows [i] and [i+1]
    (length [N-1]) — the quantity the Gray code minimises. *)

val total_transitions : t -> int

val pp : Format.formatter -> t -> unit

val cache_key : t -> string
(** Canonical, injective content key of the pattern — dimensions, radix
    and every digit row-major — used by the serve artifact cache to key
    the derived ν matrix.  Stable across processes ("pattern/v1|..."). *)
