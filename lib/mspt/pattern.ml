open Nanodec_codes
open Nanodec_numerics

type t = { radix : int; rows : Word.t array }

let of_words = function
  | [] -> invalid_arg "Pattern.of_words: empty pattern"
  | first :: _ as words ->
    let radix = Word.radix first
    and length = Word.length first in
    List.iter
      (fun w ->
        if Word.radix w <> radix || Word.length w <> length then
          invalid_arg "Pattern.of_words: heterogeneous words")
      words;
    { radix; rows = Array.of_list words }

let of_matrix ~radix m =
  of_words
    (List.init (Imatrix.rows m) (fun i -> Word.make ~radix (Imatrix.row m i)))

let of_codebook ~radix ~length ~n_wires code_type =
  if n_wires < 1 then invalid_arg "Pattern.of_codebook: n_wires must be >= 1";
  of_words (Codebook.sequence ~radix ~length ~count:n_wires code_type)

let n_wires p = Array.length p.rows
let n_regions p = Word.length p.rows.(0)
let radix p = p.radix

let word p ~wire =
  if wire < 0 || wire >= Array.length p.rows then
    invalid_arg "Pattern.word: wire index out of range";
  p.rows.(wire)

let digit p ~wire ~region = Word.get (word p ~wire) region
let words p = Array.to_list p.rows

let to_matrix p =
  Imatrix.init ~rows:(n_wires p) ~cols:(n_regions p) (fun i j ->
      Word.get p.rows.(i) j)

let transitions_between_rows p =
  Array.init
    (n_wires p - 1)
    (fun i -> Word.hamming_distance p.rows.(i) p.rows.(i + 1))

let total_transitions p =
  Array.fold_left ( + ) 0 (transitions_between_rows p)

let pp ppf p =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i w ->
      if i > 0 then Format.fprintf ppf "@,";
      Word.pp ppf w)
    p.rows;
  Format.fprintf ppf "@]"

let cache_key p =
  (* Content-addressed: every digit of the matrix, row-major, so two
     patterns share a key iff they are the same pattern.  Digits are
     single integers < radix, so a digit dump plus the dimensions is
     injective. *)
  let b = Buffer.create (16 + (n_wires p * (n_regions p + 1))) in
  Buffer.add_string b
    (Printf.sprintf "pattern/v1|n=%d|%dx%d|" p.radix (n_wires p)
       (n_regions p));
  Array.iter
    (fun w ->
      for j = 0 to Word.length w - 1 do
        Buffer.add_string b (string_of_int (Word.get w j));
        Buffer.add_char b ','
      done;
      Buffer.add_char b ';')
    p.rows;
  Buffer.contents b
