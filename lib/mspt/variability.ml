open Nanodec_numerics

let nu_matrix p =
  let n = Pattern.n_wires p
  and m = Pattern.n_regions p in
  let nu = Imatrix.make ~rows:n ~cols:m 0 in
  (* Build bottom-up: ν_{N-1} = 1 everywhere (the last step doses every
     region), and ν_i = ν_{i+1} + [digit changed between rows i, i+1]. *)
  for j = 0 to m - 1 do
    Imatrix.set nu (n - 1) j 1
  done;
  for i = n - 2 downto 0 do
    for j = 0 to m - 1 do
      let changed =
        if Pattern.digit p ~wire:i ~region:j
           <> Pattern.digit p ~wire:(i + 1) ~region:j
        then 1
        else 0
      in
      Imatrix.set nu i j (Imatrix.get nu (i + 1) j + changed)
    done
  done;
  nu

(* Each derived statistic accepts the operation-count matrix precomputed
   ([?nu]) so callers that already hold it — [Cave.analyze] stores it in
   the analysis, [Design.evaluate] and the figure surfaces reuse that —
   do not pay an O(N·M) pattern walk per statistic. *)
let nu_of ?nu p = match nu with Some nu -> nu | None -> nu_matrix p

let sigma_matrix ?nu ~sigma_t p =
  if sigma_t <= 0. then
    invalid_arg "Variability.sigma_matrix: sigma_t must be positive";
  Imatrix.map_to_fmatrix
    (fun nu -> sigma_t *. sigma_t *. float_of_int nu)
    (nu_of ?nu p)

let sigma_norm1 ?nu ~sigma_t p = Fmatrix.norm_l1 (sigma_matrix ?nu ~sigma_t p)

let average_nu ?nu p =
  let nu = nu_of ?nu p in
  float_of_int (Imatrix.sum nu)
  /. float_of_int (Imatrix.rows nu * Imatrix.cols nu)

let normalized_std_matrix ?nu p =
  Imatrix.map_to_fmatrix (fun nu -> sqrt (float_of_int nu)) (nu_of ?nu p)

let region_std ?nu ~sigma_t p ~wire ~region =
  if sigma_t <= 0. then
    invalid_arg "Variability.region_std: sigma_t must be positive";
  let nu = nu_of ?nu p in
  sigma_t *. sqrt (float_of_int (Imatrix.get nu wire region))
