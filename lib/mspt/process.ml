open Nanodec_numerics

type pass = {
  after_wire : int;
  dose : float;
  mask : bool array;
}

let passes_of_step_matrix ?(eps = 1e-9) s =
  let n_regions = Fmatrix.cols s in
  let passes = ref [] in
  for i = Fmatrix.rows s - 1 downto 0 do
    let row = Fmatrix.row s i in
    (* One pass per distinct non-zero dose of this step. *)
    let doses = ref [] in
    Array.iter
      (fun v ->
        if Float.abs v > eps
           && List.for_all (fun u -> Float.abs (u -. v) > eps) !doses
        then doses := v :: !doses)
      row;
    List.iter
      (fun dose ->
        let mask =
          Array.init n_regions (fun j -> Float.abs (row.(j) -. dose) <= eps)
        in
        passes := { after_wire = i; dose; mask } :: !passes)
      (List.rev !doses)
  done;
  !passes

let distinct_doses ?(eps = 1e-9) passes =
  let distinct = ref [] in
  List.iter
    (fun pass ->
      if List.for_all (fun d -> Float.abs (d -. pass.dose) > eps) !distinct
      then distinct := pass.dose :: !distinct)
    passes;
  List.length !distinct

let check_geometry ~fn ~n_wires ~n_regions passes =
  if n_wires < 1 || n_regions < 1 then
    invalid_arg (Printf.sprintf "Process.%s: bad cave geometry" fn);
  List.iter
    (fun pass ->
      if pass.after_wire < 0 || pass.after_wire >= n_wires then
        invalid_arg (Printf.sprintf "Process.%s: pass outside cave" fn);
      if Array.length pass.mask <> n_regions then
        invalid_arg (Printf.sprintf "Process.%s: mask length mismatch" fn))
    passes

let fold_passes ~n_regions ~apply passes init =
  (* Passes run in fabrication order (increasing after_wire); the dose
     reaches every nanowire defined so far, i.e. wires 0..after_wire. *)
  let ordered =
    List.stable_sort (fun a b -> Int.compare a.after_wire b.after_wire) passes
  in
  List.iter
    (fun pass ->
      for wire = 0 to pass.after_wire do
        for region = 0 to n_regions - 1 do
          if pass.mask.(region) then apply init pass ~wire ~region
        done
      done)
    ordered;
  init

let run ~n_wires ~n_regions passes =
  check_geometry ~fn:"run" ~n_wires ~n_regions passes;
  let apply wafer pass ~wire ~region =
    Fmatrix.set wafer wire region (Fmatrix.get wafer wire region +. pass.dose)
  in
  fold_passes ~n_regions ~apply passes
    (Fmatrix.make ~rows:n_wires ~cols:n_regions 0.)

let hit_counts ~n_wires ~n_regions passes =
  check_geometry ~fn:"hit_counts" ~n_wires ~n_regions passes;
  let apply counts _pass ~wire ~region =
    Imatrix.set counts wire region (Imatrix.get counts wire region + 1)
  in
  fold_passes ~n_regions ~apply passes
    (Imatrix.make ~rows:n_wires ~cols:n_regions 0)

let sample_vt_noise rng ~sigma_t ~n_wires ~n_regions passes =
  check_geometry ~fn:"sample_vt_noise" ~n_wires ~n_regions passes;
  if sigma_t <= 0. then
    invalid_arg "Process.sample_vt_noise: sigma_t must be positive";
  let apply noise _pass ~wire ~region =
    Fmatrix.set noise wire region
      (Fmatrix.get noise wire region +. Rng.gaussian ~sigma:sigma_t rng)
  in
  fold_passes ~n_regions ~apply passes
    (Fmatrix.make ~rows:n_wires ~cols:n_regions 0.)
