open Nanodec_numerics

type pass = {
  after_wire : int;
  dose : float;
  mask : bool array;
}

(* Distinct values of [values] up to [eps], by one sort instead of the
   quadratic kept-list scan: sort (value, position) pairs, then cut a
   cluster wherever a value sits more than [eps] above the smallest
   value of the current cluster.  Each cluster is represented by its
   first-occurrence element, and clusters are returned in
   first-occurrence order — for well-separated doses (every dose table
   we generate uses gaps ≫ eps) this is exactly the set and order the
   old scan produced.  [keep_zero] controls whether values within [eps]
   of zero participate (step rows drop them, dose counting keeps them). *)
let distinct_up_to_eps ?(keep_zero = false) ~eps values =
  let cand = ref [] in
  Array.iteri
    (fun j v -> if keep_zero || Float.abs v > eps then cand := (v, j) :: !cand)
    values;
  let a = Array.of_list !cand in
  Array.sort
    (fun (u, i) (v, j) ->
      let c = Float.compare u v in
      if c <> 0 then c else Int.compare i j)
    a;
  let reps = ref [] in
  let k = ref 0 in
  let n = Array.length a in
  while !k < n do
    let anchor, _ = a.(!k) in
    (* First-occurrence representative of the cluster anchored at
       [anchor]. *)
    let best_v = ref anchor and best_j = ref (snd a.(!k)) in
    incr k;
    while !k < n && fst a.(!k) -. anchor <= eps do
      let v, j = a.(!k) in
      if j < !best_j then begin
        best_j := j;
        best_v := v
      end;
      incr k
    done;
    reps := (!best_v, !best_j) :: !reps
  done;
  (* Back to first-occurrence order. *)
  let reps = List.sort (fun (_, i) (_, j) -> Int.compare i j) !reps in
  List.map fst reps

let passes_of_step_matrix ?(eps = 1e-9) s =
  let n_regions = Fmatrix.cols s in
  let passes = ref [] in
  for i = Fmatrix.rows s - 1 downto 0 do
    let row = Fmatrix.row s i in
    (* One pass per distinct non-zero dose of this step; prepending each
       row's doses in first-occurrence order is part of the observable
       pass order (and hence of the MC draw order) — keep it. *)
    List.iter
      (fun dose ->
        let mask =
          Array.init n_regions (fun j -> Float.abs (row.(j) -. dose) <= eps)
        in
        passes := { after_wire = i; dose; mask } :: !passes)
      (distinct_up_to_eps ~eps row)
  done;
  !passes

let distinct_doses ?(eps = 1e-9) passes =
  let doses = Array.of_list (List.map (fun p -> p.dose) passes) in
  List.length (distinct_up_to_eps ~keep_zero:true ~eps doses)

let check_geometry ~fn ~n_wires ~n_regions passes =
  if n_wires < 1 || n_regions < 1 then
    invalid_arg (Printf.sprintf "Process.%s: bad cave geometry" fn);
  List.iter
    (fun pass ->
      if pass.after_wire < 0 || pass.after_wire >= n_wires then
        invalid_arg (Printf.sprintf "Process.%s: pass outside cave" fn);
      if Array.length pass.mask <> n_regions then
        invalid_arg (Printf.sprintf "Process.%s: mask length mismatch" fn))
    passes

let fold_passes ~n_regions ~apply passes init =
  (* Passes run in fabrication order (increasing after_wire); the dose
     reaches every nanowire defined so far, i.e. wires 0..after_wire. *)
  let ordered =
    List.stable_sort (fun a b -> Int.compare a.after_wire b.after_wire) passes
  in
  List.iter
    (fun pass ->
      for wire = 0 to pass.after_wire do
        for region = 0 to n_regions - 1 do
          if pass.mask.(region) then apply init pass ~wire ~region
        done
      done)
    ordered;
  init

let run ~n_wires ~n_regions passes =
  check_geometry ~fn:"run" ~n_wires ~n_regions passes;
  let apply wafer pass ~wire ~region =
    Fmatrix.set wafer wire region (Fmatrix.get wafer wire region +. pass.dose)
  in
  fold_passes ~n_regions ~apply passes
    (Fmatrix.make ~rows:n_wires ~cols:n_regions 0.)

let hit_counts ~n_wires ~n_regions passes =
  check_geometry ~fn:"hit_counts" ~n_wires ~n_regions passes;
  let apply counts _pass ~wire ~region =
    Imatrix.set counts wire region (Imatrix.get counts wire region + 1)
  in
  fold_passes ~n_regions ~apply passes
    (Imatrix.make ~rows:n_wires ~cols:n_regions 0)

let sample_vt_noise rng ~sigma_t ~n_wires ~n_regions passes =
  check_geometry ~fn:"sample_vt_noise" ~n_wires ~n_regions passes;
  if sigma_t <= 0. then
    invalid_arg "Process.sample_vt_noise: sigma_t must be positive";
  let apply noise _pass ~wire ~region =
    Fmatrix.set noise wire region
      (Fmatrix.get noise wire region +. Rng.gaussian ~sigma:sigma_t rng)
  in
  fold_passes ~n_regions ~apply passes
    (Fmatrix.make ~rows:n_wires ~cols:n_regions 0.)
