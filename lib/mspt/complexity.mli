(** Fabrication complexity Φ (paper, Definition 4 and Proposition 5).

    Each fabrication step [i] needs one lithography/doping pass per
    distinct non-zero dose in row [i] of the step matrix [S]; the
    technology complexity is the total {m Φ = Σ φ_i}.

    Two computations are provided: the literal one on dose values (with a
    tolerance, since doses are floats) and an exact combinatorial one
    straight from the pattern matrix — because [h] is injective, the dose
    {m h(P_i^j) − h(P_{i+1}^j)} is determined by the ordered digit pair,
    so [φ_i] equals the number of distinct changed pairs.  Tests assert
    the two agree on generic (injective, "incommensurable") mappings. *)

open Nanodec_numerics

val phi_per_step_of_doses : ?eps:float -> Fmatrix.t -> int array
(** [φ_i] for every row of a step matrix [S].  Default [eps] 1e-9. *)

val total_of_doses : ?eps:float -> Fmatrix.t -> int
(** Φ from dose values. *)

val phi_per_step : Pattern.t -> int array
(** Exact [φ_i] from the pattern matrix: distinct ordered changed pairs
    between rows [i] and [i+1]; for the last row, distinct digit values
    (every region of the last nanowire receives its full dose). *)

val total : Pattern.t -> int
(** Exact Φ — the quantity plotted in the paper's Fig. 5. *)
