(** Decoder variability Σ (paper, Definition 5 and Proposition 4).

    Region [(i, j)] is hit once by every fabrication step [k ≥ i] whose
    dose at region [j] is non-zero; each hit adds an independent variance
    [σ_T²] to the region's threshold voltage, so

    {m ν_i^j = Σ_{k ≥ i} (1 − δ(S_k^j))} and {m Σ_i^j = σ_T² · ν_i^j}.

    [ν] is computed exactly from the pattern matrix: [S_k^j ≠ 0] iff the
    digit at region [j] changes between rows [k] and [k+1] (or [k = N-1],
    where the full dose is always deposited). *)

open Nanodec_numerics

val nu_matrix : Pattern.t -> Imatrix.t
(** Doping-operation counts [ν]; every entry is at least 1. *)

(** Every derived statistic below accepts [?nu], the precomputed
    {!nu_matrix} of the same pattern: callers that already hold it (a
    {!Nanodec_crossbar.Cave.analysis} stores it) skip the O(N·M) pattern
    walk.  Passing a matrix that does not belong to [p] is unchecked. *)

val sigma_matrix : ?nu:Imatrix.t -> sigma_t:float -> Pattern.t -> Fmatrix.t
(** [Σ = σ_T² · ν] (entries are variances, volt²). *)

val sigma_norm1 : ?nu:Imatrix.t -> sigma_t:float -> Pattern.t -> float
(** [‖Σ‖₁], the decoder-variability cost of Proposition 3. *)

val average_nu : ?nu:Imatrix.t -> Pattern.t -> float
(** [‖Σ‖₁ / (N·M·σ_T²)] — the paper's "average variability" in units of
    σ_T² (used for the −18 % headline). *)

val normalized_std_matrix : ?nu:Imatrix.t -> Pattern.t -> Fmatrix.t
(** [√ν] per region — exactly what the paper's Fig. 6 plots
    ("square root of elements of Σ normalised to σ_T"). *)

val region_std :
  ?nu:Imatrix.t -> sigma_t:float -> Pattern.t -> wire:int -> region:int -> float
(** Standard deviation of one region's threshold voltage,
    [σ_T·√ν_i^j]. *)
