type t = {
  mutable state : int64;
  (* PCG stream selector; must be odd.  Mutable only for [copy_into]'s
     zero-allocation scratch reuse; nothing else ever writes it. *)
  mutable increment : int64;
  (* Cached second Gaussian from the polar method. *)
  mutable spare : float option;
}

(* SplitMix64 — used only to expand the user seed into well-mixed initial
   state and stream words. *)
let splitmix64 seed =
  let z = Int64.add seed 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let pcg_multiplier = 6364136223846793005L

let make ~state ~stream =
  let increment = Int64.logor (Int64.shift_left stream 1) 1L in
  let rng = { state = 0L; increment; spare = None } in
  rng.state <- Int64.add state increment;
  rng

let of_int64 seed =
  make ~state:(splitmix64 seed) ~stream:(splitmix64 (Int64.lognot seed))

let create ~seed = of_int64 (Int64.of_int seed)
let of_seed seed = create ~seed

let mix_seed a b =
  let z =
    Int64.add (Int64.of_int a)
      (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (b + 1)))
  in
  (* Mask to 62 bits so the result survives an int_of_string round trip on
     any platform and stays non-negative. *)
  Int64.to_int (Int64.logand (splitmix64 z) 0x3FFFFFFFFFFFFFFFL)

let advance rng =
  rng.state <- Int64.add (Int64.mul rng.state pcg_multiplier) rng.increment

(* PCG-XSH-RR output function. *)
let output state =
  let xorshifted =
    Int64.to_int
      (Int64.logand
         (Int64.shift_right_logical
            (Int64.logxor (Int64.shift_right_logical state 18) state)
            27)
         0xFFFFFFFFL)
  in
  let rot = Int64.to_int (Int64.shift_right_logical state 59) in
  let rotated = (xorshifted lsr rot) lor (xorshifted lsl (32 - rot)) in
  rotated land 0xFFFFFFFF

let uint32 rng =
  let s = rng.state in
  advance rng;
  output s

let split rng =
  let state_word =
    Int64.logor (Int64.of_int (uint32 rng)) (Int64.shift_left (Int64.of_int (uint32 rng)) 32)
  in
  let stream_word =
    Int64.logor (Int64.of_int (uint32 rng)) (Int64.shift_left (Int64.of_int (uint32 rng)) 32)
  in
  make ~state:(splitmix64 state_word) ~stream:(splitmix64 stream_word)

let split_n rng n =
  if n < 0 then invalid_arg "Rng.split_n: negative count";
  Array.init n (fun _ -> split rng)

let copy rng = { rng with state = rng.state }

(* Overwrite [into] with [src]'s full state (stream selector and polar
   spare included): the scratch-reuse form of [copy] for per-sample hot
   loops, where a fresh record per sample would be pure garbage.  [src]
   is not touched. *)
let copy_into src ~into =
  into.state <- src.state;
  into.increment <- src.increment;
  into.spare <- src.spare

let two_pow_32 = 1 lsl 32

let int rng bound =
  if bound < 1 || bound > two_pow_32 then
    invalid_arg "Rng.int: bound must be in [1, 2^32]";
  if bound land (bound - 1) = 0 then uint32 rng land (bound - 1)
  else
    (* Rejection sampling over the largest multiple of [bound] below 2^32
       keeps the draw exactly uniform. *)
    let limit = two_pow_32 - (two_pow_32 mod bound) in
    let rec draw () =
      let x = uint32 rng in
      if x < limit then x mod bound else draw ()
    in
    draw ()

let float rng = float_of_int (uint32 rng) *. 0x1p-32

let float_range rng ~min ~max =
  if not (min < max) then invalid_arg "Rng.float_range: empty range";
  min +. ((max -. min) *. float rng)

let bool rng = uint32 rng land 1 = 1

let rec polar_pair rng =
  let u = (2. *. float rng) -. 1. in
  let v = (2. *. float rng) -. 1. in
  let s = (u *. u) +. (v *. v) in
  if s >= 1. || s = 0. then polar_pair rng
  else
    let factor = sqrt (-2. *. log s /. s) in
    (u *. factor, v *. factor)

let gaussian ?(mu = 0.) ?(sigma = 1.) rng =
  let z =
    match rng.spare with
    | Some z ->
      rng.spare <- None;
      z
    | None ->
      let z1, z2 = polar_pair rng in
      rng.spare <- Some z2;
      z1
  in
  mu +. (sigma *. z)

(* Hot-loop mirror of the generator.  The public [t] keeps its friendly
   representation (boxed int64 fields, [float option] spare) because every
   existing consumer — and the bit-for-bit determinism contract — depends
   on it; the mirror trades that for an unboxed Bigarray state word and a
   flat float spare so a tight numeric loop pays no per-draw boxing.  The
   output stream is the same PCG-XSH-RR / Marsaglia polar sequence,
   bit-for-bit: [load] then any number of draws then [store] leaves the
   source generator exactly where the equivalent [gaussian] calls would
   have. *)
module Fast = struct
  type rng = t

  type t = {
    st : (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t;
    (* st.{0} = PCG state, st.{1} = stream increment (odd). *)
    spare : float array;
    (* Length 1: the polar method's cached second variate, unboxed. *)
    mutable has_spare : bool;
  }

  let create () =
    {
      st = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout 2;
      spare = [| 0. |];
      has_spare = false;
    }

  let load fast (rng : rng) =
    Bigarray.Array1.unsafe_set fast.st 0 rng.state;
    Bigarray.Array1.unsafe_set fast.st 1 rng.increment;
    match rng.spare with
    | Some z ->
      fast.spare.(0) <- z;
      fast.has_spare <- true
    | None -> fast.has_spare <- false

  let store fast (rng : rng) =
    rng.state <- Bigarray.Array1.unsafe_get fast.st 0;
    rng.spare <- (if fast.has_spare then Some fast.spare.(0) else None)

  (* Same step/output as [uint32], written against the Bigarray state so
     the int64 arithmetic stays unboxed without flambda. *)
  let[@inline] uint32 fast =
    let s = Bigarray.Array1.unsafe_get fast.st 0 in
    Bigarray.Array1.unsafe_set fast.st 0
      (Int64.add (Int64.mul s pcg_multiplier)
         (Bigarray.Array1.unsafe_get fast.st 1));
    let xorshifted =
      Int64.to_int
        (Int64.logand
           (Int64.shift_right_logical
              (Int64.logxor (Int64.shift_right_logical s 18) s)
              27)
           0xFFFFFFFFL)
    in
    let rot = Int64.to_int (Int64.shift_right_logical s 59) in
    let rotated = (xorshifted lsr rot) lor (xorshifted lsl (32 - rot)) in
    rotated land 0xFFFFFFFF

  let[@inline] float fast = float_of_int (uint32 fast) *. 0x1p-32

  let gaussian_std fast =
    if fast.has_spare then begin
      fast.has_spare <- false;
      Array.unsafe_get fast.spare 0
    end
    else
      let rec loop () =
        let u = (2. *. float fast) -. 1. in
        let v = (2. *. float fast) -. 1. in
        let s = (u *. u) +. (v *. v) in
        if s >= 1. || s = 0. then loop ()
        else begin
          let factor = sqrt (-2. *. log s /. s) in
          Array.unsafe_set fast.spare 0 (v *. factor);
          fast.has_spare <- true;
          u *. factor
        end
      in
      loop ()

  (* The bulk form of [gaussian_std]: equivalent to
       for t = 0 to n - 1 do
         noise.(targets.(t)) <- noise.(targets.(t))
                                +. sigma *. gaussian_std fast
       done
     but with the polar pair loop written out here so the PCG step
     inlines into it and the spare flag is only touched at the run's
     boundaries — the stream consumed is identical bit for bit. *)
  let add_gaussians fast ~sigma targets noise =
    let n = Array.length targets in
    let t = ref 0 in
    if n > 0 && fast.has_spare then begin
      fast.has_spare <- false;
      let idx = Array.unsafe_get targets 0 in
      Array.unsafe_set noise idx
        (Array.unsafe_get noise idx
        +. (sigma *. Array.unsafe_get fast.spare 0));
      t := 1
    end;
    while !t < n do
      let u = (2. *. float fast) -. 1. in
      let v = (2. *. float fast) -. 1. in
      let s = (u *. u) +. (v *. v) in
      if s < 1. && s <> 0. then begin
        let factor = sqrt (-2. *. log s /. s) in
        let idx = Array.unsafe_get targets !t in
        Array.unsafe_set noise idx
          (Array.unsafe_get noise idx +. (sigma *. (u *. factor)));
        incr t;
        if !t < n then begin
          let idx = Array.unsafe_get targets !t in
          Array.unsafe_set noise idx
            (Array.unsafe_get noise idx +. (sigma *. (v *. factor)));
          incr t
        end
        else begin
          (* Odd run: cache the raw second variate exactly as
             [gaussian_std] would. *)
          Array.unsafe_set fast.spare 0 (v *. factor);
          fast.has_spare <- true
        end
      end
    done
end

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle_list rng xs =
  let a = Array.of_list xs in
  shuffle rng a;
  Array.to_list a

let pick rng a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int rng (Array.length a))
