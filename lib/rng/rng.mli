(** Deterministic, splittable pseudo-random number generation.

    Every stochastic experiment in the library takes an explicit generator,
    so simulations are reproducible from a single integer seed and
    independent sub-experiments can be given statistically independent
    streams via {!split}.  The core generator is PCG32 (O'Neill 2014)
    seeded through SplitMix64, both implemented here from the published
    reference algorithms. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator deterministically from [seed]. *)

val of_seed : int -> t
(** Positional alias of {!create}, convenient for [List.map]-style
    plumbing in the property-test harness. *)

val of_int64 : int64 -> t
(** Seed from a full 64-bit word (the [int] path truncates on 32-bit
    platforms). *)

val mix_seed : int -> int -> int
(** [mix_seed master i] derives the [i]-th child seed of [master]
    (SplitMix64 finaliser), masked to 62 bits so it is non-negative and
    round-trips through [string_of_int]/[int_of_string].  Used by
    proptest to give every test case an independent, reportable seed. *)

val split : t -> t
(** [split rng] derives a fresh generator whose stream is independent of
    the parent's subsequent output (distinct PCG stream selector). *)

val split_n : t -> int -> t array
(** [split_n rng n] is [n] successive {!split}s. *)

val copy : t -> t
(** Snapshot of the current state; the copy evolves independently. *)

val copy_into : t -> into:t -> unit
(** [copy_into src ~into] overwrites [into] with [src]'s full state —
    stream selector and cached polar spare included — so [into] then
    draws exactly what {!copy}[ src] would, without allocating a record.
    [src] is untouched.  The per-sample restart primitive of the
    scheduler's hot loop: one scratch generator per domain, re-aimed at
    a new stream for every sample. *)

val uint32 : t -> int
(** Next raw 32-bit draw in [0, 2^32). *)

val int : t -> int -> int
(** [int rng bound] draws uniformly from [0, bound); unbiased (rejection
    sampling); [bound] must be in [1, 2^32]. *)

val float : t -> float
(** Uniform draw in [0, 1) with 32 bits of randomness. *)

val float_range : t -> min:float -> max:float -> float
(** Uniform draw in [min, max). *)

val bool : t -> bool

val gaussian : ?mu:float -> ?sigma:float -> t -> float
(** Normal draw via the Marsaglia polar method. *)

(** Unboxed hot-loop mirror of a generator.

    The public {!t} keeps its boxed representation because every consumer
    and the determinism contract depend on it; [Fast] is a scratch state
    with an unboxed int64 word and a flat float spare, for inner loops
    that draw thousands of Gaussians per sample.  Mirror discipline:
    {!Fast.load} the source generator, draw, then {!Fast.store} back —
    the source is left exactly where the equivalent {!gaussian} calls
    would have left it, and the values drawn in between are bit-for-bit
    the same stream. *)
module Fast : sig
  type rng := t

  type t
  (** Mutable mirror state; reusable across [load]/[store] cycles. *)

  val create : unit -> t

  val load : t -> rng -> unit
  (** Copy the source generator's state (including any cached polar
      spare) into the mirror. *)

  val store : t -> rng -> unit
  (** Write the mirror's state back to the source generator. *)

  val float : t -> float
  (** Same stream as {!Rng.float}. *)

  val gaussian_std : t -> float
  (** Standard normal draw; [sigma *. gaussian_std fast] is bit-identical
      to [Rng.gaussian ~sigma] on the same state (the spare caches the
      raw variate in both implementations). *)

  val add_gaussians :
    t -> sigma:float -> int array -> float array -> unit
  (** [add_gaussians fast ~sigma targets noise] adds
      [sigma *. gaussian_std fast] to [noise.(targets.(t))] for each
      [t] in order, consuming exactly the stream the per-call form
      would, but with the polar pair loop fused in so no call or spare
      check remains per draw.  Indices must be within [noise]; they are
      not checked. *)
end

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list
(** Functional shuffle (copies through an array). *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array; raises [Invalid_argument] on an
    empty array. *)
