(** Blocking line-protocol client for the serve daemon.

    One connection, blocking I/O, one response line per request line —
    the counterpart the CLI's [nanodec client] command, the tests and
    the bench closed loop all use.  Responses come back in request
    order (the daemon executes serially), so pipelining [request]
    calls from one connection is safe. *)

type t

val connect : ?attempts:int -> Server.address -> t
(** Connect, retrying a refused/missing socket [attempts] times
    (default 40) at 50 ms intervals — the daemon may still be binding
    when a test or bench races it up.  Raises
    [Nanodec_error.Error (Invalid_input _)] once the attempts are
    exhausted. *)

val request : t -> string -> string
(** Send one line (the newline is appended) and block for the response
    line.  Raises [Nanodec_error.Error (Internal _)] if the daemon
    closes the connection first. *)

val request_json : t -> Json.t -> Json.t
(** {!request} through the JSON writer/parser. *)

val close : t -> unit

val with_connection : ?attempts:int -> Server.address -> (t -> 'a) -> 'a
(** [connect] + [f] + [close], exception-safe. *)
