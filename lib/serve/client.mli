(** Line-protocol client for the serve daemon.

    One connection, one response line per request line — the
    counterpart of the CLI's [nanodec client] command, the tests and
    the bench closed loop.  Responses come back in request order (the
    daemon writes each connection's responses in arrival order however
    it schedules them), so pipelining {!request} calls from one
    connection is safe.

    With [?timeout_s] set, a wedged daemon cannot hang the client:
    connect retries stop at the deadline and a response that does not
    complete within it raises [Nanodec_error.Error (Timeout _)] —
    exit code {!Nanodec_error.exit_timeout} through the CLI.  The
    deadline covers the whole response, so a daemon dribbling bytes
    forever times out too.  Without it, reads block indefinitely (the
    pre-hardening behaviour). *)

type t

val connect : ?attempts:int -> ?timeout_s:float -> Server.address -> t
(** Connect, retrying a refused/missing socket [attempts] times
    (default 40) at 50 ms intervals — the daemon may still be binding
    when a test or bench races it up.  Raises
    [Nanodec_error.Error (Invalid_input _)] once the attempts are
    exhausted, [Error (Timeout _)] when [timeout_s] expires first. *)

val request : t -> string -> string
(** Send one line (the newline is appended) and block for the response
    line.  Raises [Nanodec_error.Error (Internal _)] if the daemon
    closes the connection first, [Error (Timeout _)] if the
    connection's [timeout_s] elapses before the response line is
    complete. *)

val request_json : t -> Json.t -> Json.t
(** {!request} through the JSON writer/parser. *)

val close : t -> unit

val with_connection :
  ?attempts:int -> ?timeout_s:float -> Server.address -> (t -> 'a) -> 'a
(** [connect] + [f] + [close], exception-safe. *)
