(** Minimal JSON: a value type, a hardened recursive-descent parser and
    a single-line writer.

    The repo deliberately carries no JSON dependency (the telemetry
    exporter hand-writes its documents); the serve protocol needs the
    other direction too, so this module is the one place JSON is read.
    The parser is written for a network boundary: it never raises on
    malformed input (it returns [Error] with a position-carrying
    message), bounds nesting depth so adversarial [[[[…] input cannot
    blow the stack, rejects trailing garbage, and accepts only what RFC
    8259 grammar allows — in particular [NaN]/[Infinity] literals are
    parse errors, so non-finite numbers cannot enter the protocol
    except as out-of-range field {e values}, which the protocol layer
    validates. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val max_depth : int
(** 64 — nesting beyond this is a parse error, not a stack overflow. *)

val parse : string -> (t, string) result
(** Parse one complete JSON document.  Error messages name the byte
    offset and what was expected — they end up verbatim in the
    protocol's [invalid-input] hint. *)

val to_string : t -> string
(** Canonical single-line rendering: no spaces after separators,
    strings escaped per RFC 8259 (control characters as [\u00XX]),
    floats as the shortest representation that round-trips ([%.17g]
    fallback), object fields in the order given.  Never contains a
    newline, so a rendered value is always one protocol line. *)

(** {1 Accessors} — total, [option]-returning *)

val member : string -> t -> t option
(** Object field lookup; [None] on missing field or non-object. *)

val to_int_opt : t -> int option
(** [Int n] and integral [Float]s within [int] range. *)

val to_float_opt : t -> float option
val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
