type 'v node = {
  key : string;
  value : 'v;
  cost_s : float;
  mutable prev : 'v node option;  (* towards most recently used *)
  mutable next : 'v node option;  (* towards least recently used *)
}

type 'v t = {
  enabled : bool;
  capacity : int;
  table : (string, 'v node) Hashtbl.t;
  mutable mru : 'v node option;
  mutable lru : 'v node option;
  mutable entries : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable build_s : float;
  mutable saved_s : float;
  mutex : Mutex.t;
}

type stats = {
  capacity : int;
  entries : int;
  hits : int;
  misses : int;
  evictions : int;
  build_s : float;
  saved_s : float;
}

let create ?(enabled = true) ~capacity () =
  if capacity < 1 then
    invalid_arg "Artifact_cache.create: capacity must be >= 1";
  {
    enabled;
    capacity;
    table = Hashtbl.create (min capacity 64);
    mru = None;
    lru = None;
    entries = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    build_s = 0.;
    saved_s = 0.;
    mutex = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* --- recency list (callers hold the mutex) --- *)

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.mru <- node.next);
  (match node.next with
  | Some nx -> nx.prev <- node.prev
  | None -> t.lru <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.mru;
  node.prev <- None;
  (match t.mru with Some m -> m.prev <- Some node | None -> ());
  t.mru <- Some node;
  if t.lru = None then t.lru <- Some node

let evict_lru t =
  match t.lru with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key;
    t.entries <- t.entries - 1;
    t.evictions <- t.evictions + 1

let insert t ~key ~cost_s value =
  (match Hashtbl.find_opt t.table key with
  | Some old ->
    (* A racing builder stored first; replace so the caller's value is
       the one future hits see (both are equal — builders are pure). *)
    unlink t old;
    Hashtbl.remove t.table key;
    t.entries <- t.entries - 1
  | None -> ());
  let node = { key; value; cost_s; prev = None; next = None } in
  Hashtbl.replace t.table key node;
  push_front t node;
  t.entries <- t.entries + 1;
  while t.entries > t.capacity do
    evict_lru t
  done

let lookup t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    t.hits <- t.hits + 1;
    t.saved_s <- t.saved_s +. node.cost_s;
    unlink t node;
    push_front t node;
    Some node.value
  | None ->
    t.misses <- t.misses + 1;
    None

(* --- public API --- *)

let find_or_build t ~key build =
  let cached =
    if not t.enabled then begin
      locked t (fun () -> t.misses <- t.misses + 1);
      None
    end
    else locked t (fun () -> lookup t key)
  in
  match cached with
  | Some v -> (v, true)
  | None ->
    let t0 = Unix.gettimeofday () in
    let v = build () in
    let cost_s = Unix.gettimeofday () -. t0 in
    if t.enabled then
      locked t (fun () ->
          t.build_s <- t.build_s +. cost_s;
          insert t ~key ~cost_s v)
    else locked t (fun () -> t.build_s <- t.build_s +. cost_s);
    (v, false)

let find_opt t key =
  if not t.enabled then begin
    locked t (fun () -> t.misses <- t.misses + 1);
    None
  end
  else locked t (fun () -> lookup t key)

let mem t key = locked t (fun () -> Hashtbl.mem t.table key)
let length t = locked t (fun () -> t.entries)

let keys t =
  locked t (fun () ->
      let rec walk acc = function
        | None -> List.rev acc
        | Some node -> walk (node.key :: acc) node.next
      in
      walk [] t.mru)

let stats t =
  locked t (fun () ->
      {
        capacity = t.capacity;
        entries = t.entries;
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        build_s = t.build_s;
        saved_s = t.saved_s;
      })

let dump t =
  locked t (fun () ->
      let rec walk acc = function
        | None -> acc
        | Some node ->
          walk ((node.key, node.cost_s, node.value) :: acc) node.next
      in
      (* Walking MRU→LRU while consing reverses the order, so the
         result is LRU-first: replaying it through {!restore} in list
         order rebuilds the exact recency chain. *)
      walk [] t.mru)

let restore t entries =
  if t.enabled then
    locked t (fun () ->
        List.iter
          (fun (key, cost_s, value) -> insert t ~key ~cost_s value)
          entries)

let digest key = Digest.to_hex (Digest.string key)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.mru <- None;
      t.lru <- None;
      t.entries <- 0)
