(** The daemon's typed artifact layer over {!Artifact_cache}.

    One LRU cache holds every artifact kind behind a closed variant, so
    capacity is a single budget across kinds and the capacity-1
    eviction oracle exercises cross-kind eviction too.  Each accessor
    derives its canonical key from the cache-keyed constructors of the
    owning library ({!Nanodec_crossbar.Cave.config_key},
    {!Nanodec_mspt.Pattern.cache_key},
    {!Nanodec_codes.Codebook.cache_key}) and returns the artifact plus
    a hit flag — the [cached] bit of the protocol's responses.

    Every builder is a pure function of its key (Monte-Carlo estimates
    included: the per-sample stream discipline makes them a pure
    function of (config, seed, samples)), so a hit is bit-for-bit
    identical to a rebuild — the invariant the [cache_hit ≡ cache_miss]
    oracle enforces over arbitrary request sequences. *)

open Nanodec_codes
open Nanodec_numerics
open Nanodec_crossbar
open Nanodec

(** The artifact kinds the daemon amortizes. *)
type value =
  | Words of Word.t list  (** a code family's word sequence *)
  | Nu of Imatrix.t  (** ν matrix of a pattern *)
  | Analysis of Cave.analysis
  | Kernel of Kernel.t  (** compiled Monte-Carlo pass program *)
  | Report of Design.report  (** full closed-form design report *)
  | Estimate of Montecarlo.estimate
      (** MC window-yield estimate of (config, seed, samples) *)
  | Sweep of Design.report list
      (** the full candidate grid of one platform spec *)

type t = value Artifact_cache.t

val snapshot_schema : string
(** The {!Snapshot} schema tag for caches of {!value} entries — bumped
    whenever the artifact shapes change, so stale snapshot files load
    as cold caches rather than as misinterpreted bytes.  Every [value]
    constructor holds pure data (arrays, floats, lists — no closures),
    which is what makes the marshalled snapshot well-defined. *)

val create : ?enabled:bool -> capacity:int -> unit -> t

val words :
  t -> radix:int -> length:int -> count:int -> Codebook.t -> Word.t list * bool

val nu : t -> Nanodec_mspt.Pattern.t -> Imatrix.t * bool

val analysis : t -> Cave.config -> Cave.analysis * bool
(** Builds through the {!nu} cache ([Cave.analyze ?nu]). *)

val kernel : t -> Cave.config -> Kernel.t * bool
(** Builds through the {!analysis} cache
    ([Cave.kernel_of_analysis]). *)

val report : t -> Design.spec -> Design.report * bool

val estimate_key : seed:int -> samples:int -> Cave.config -> string
(** The canonical cache key of a plain fixed-count estimate — exposed
    so the batch-fusion layer can group and overlay requests by the
    exact identity the cache uses. *)

val estimate_spec_key :
  seed:int -> spec:Montecarlo.spec -> Cave.config -> string
(** The canonical cache key of a spec'd estimate (injective
    {!Montecarlo.spec_key} component, disjoint from the plain keys). *)

val estimate_with :
  t ->
  key:string ->
  build:(unit -> Montecarlo.estimate) ->
  Montecarlo.estimate * bool
(** One cache round at [key]: return the cached estimate, or install
    [build ()].  The batch fuser passes the fused-run result as
    [build], so hit/miss accounting — and the [cached] flag of every
    response — stays identical to serial unbatched execution. *)

val estimate :
  t ->
  ctx:Nanodec_parallel.Run_ctx.t ->
  seed:int ->
  samples:int ->
  Cave.config ->
  Montecarlo.estimate * bool
(** [Cave.mc_yield_window_par] through the {!analysis} and {!kernel}
    caches; the estimate itself is cached keyed by
    (config, seed, samples) — legitimate because the chunked estimator
    is bit-for-bit invariant in pool, chunking and domain count. *)

val estimate_spec :
  t ->
  ctx:Nanodec_parallel.Run_ctx.t ->
  seed:int ->
  spec:Montecarlo.spec ->
  Cave.config ->
  Montecarlo.estimate * bool
(** {!estimate} for requests that picked a sampling strategy or an
    adaptive stopping rule: keyed by (config, seed,
    {!Montecarlo.spec_key}) — every strategy/stopping combination is a
    distinct, equally deterministic estimate, and the injective spec
    serialization keeps the key space disjoint from the legacy plain
    keys. *)

val sweep : t -> Design.spec -> Design.report list * bool
(** [Optimizer.sweep] of the default candidate grid on the spec's
    platform (sequential — rows are cheap closed forms; the cache, not
    the pool, is the serve path's amortizer here). *)
