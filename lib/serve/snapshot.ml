(* Crash-safe artifact-cache snapshots.

   On-disk layout (all integers little-endian u32):

     magic line        "nanodec-snapshot v1\n"
     schema line       caller schema + "|ocaml-" + Sys.ocaml_version + "\n"
     u32  count        number of records
     record*count      u32 key_len | key | u32 val_len | val | u32 crc
     (end of file — trailing bytes are corruption)

   [val] is [Marshal.to_string (cost_s, value)]; [crc] is CRC-32
   (reflected, polynomial 0xEDB88320) over the concatenated key and
   val bytes.  The CRC is verified BEFORE the bytes reach [Marshal] —
   unmarshalling corrupt input can crash the runtime, so nothing
   untrusted is ever handed to it.  The schema line pins both the
   caller's value-type version and the OCaml runtime version (Marshal
   formats are runtime-specific); any mismatch degrades to a cold
   cache like any other corruption. *)

let magic = "nanodec-snapshot v1\n"

(* A record must fit in memory many times over; anything claiming a
   gigabyte-scale length is a torn or hostile file, not a cache. *)
let max_len = 1 lsl 30

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_update crc s =
  let table = Lazy.force crc_table in
  let crc = ref crc in
  String.iter
    (fun ch ->
      crc := (!crc lsr 8) lxor table.((!crc lxor Char.code ch) land 0xff))
    s;
  !crc

let crc32_pair a b =
  lnot (crc32_update (crc32_update 0xFFFFFFFF a) b) land 0xFFFFFFFF

let full_schema schema = schema ^ "|ocaml-" ^ Sys.ocaml_version

(* --- save --- *)

let add_u32 buf n = Buffer.add_int32_le buf (Int32.of_int n)

let write_file path data =
  (* Atomic publish: the complete snapshot is written and fsynced
     under a temporary name, then renamed over [path] in one step — a
     crash at any point leaves either the old snapshot or the new one,
     never a torn mix.  The temporary lives in the same directory so
     the rename cannot cross filesystems. *)
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let fd =
    Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let bytes = Bytes.unsafe_of_string data in
      let len = Bytes.length bytes in
      let written = ref 0 in
      while !written < len do
        written :=
          !written + Unix.write fd bytes !written (len - !written)
      done;
      Unix.fsync fd);
  Unix.rename tmp path

let save ~path ~schema entries =
  try
    let buf = Buffer.create 4096 in
    Buffer.add_string buf magic;
    Buffer.add_string buf (full_schema schema);
    Buffer.add_char buf '\n';
    add_u32 buf (List.length entries);
    List.iter
      (fun (key, cost_s, value) ->
        let payload = Marshal.to_string (cost_s, value) [] in
        add_u32 buf (String.length key);
        Buffer.add_string buf key;
        add_u32 buf (String.length payload);
        Buffer.add_string buf payload;
        add_u32 buf (crc32_pair key payload))
      entries;
    write_file path (Buffer.contents buf);
    Ok ()
  with
  | Unix.Unix_error (err, fn, arg) ->
    Error
      (Printf.sprintf "%s: %s %s failed: %s" path fn arg
         (Unix.error_message err))
  | Sys_error msg -> Error msg

(* --- load --- *)

exception Corrupt of string

let corruptf fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

let u32 data pos =
  Int32.to_int (String.get_int32_le data pos) land 0xFFFFFFFF

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

let parse ~schema data =
  let len = String.length data in
  let pos = ref 0 in
  let need n what =
    if n > len - !pos then
      corruptf "truncated: %s needs %d bytes, %d left" what n (len - !pos)
  in
  let take_u32 what =
    need 4 what;
    let n = u32 data !pos in
    pos := !pos + 4;
    n
  in
  let take_str n what =
    need n what;
    let s = String.sub data !pos n in
    pos := !pos + n;
    s
  in
  let magic_len = String.length magic in
  need magic_len "magic";
  if String.sub data 0 magic_len <> magic then corruptf "bad magic";
  pos := magic_len;
  let schema_end =
    match String.index_from_opt data !pos '\n' with
    | Some i when i - !pos <= 4096 -> i
    | Some _ | None -> corruptf "missing schema line"
  in
  let found = String.sub data !pos (schema_end - !pos) in
  let expected = full_schema schema in
  if found <> expected then
    corruptf "schema mismatch: snapshot %S, expected %S" found expected;
  pos := schema_end + 1;
  let count = take_u32 "record count" in
  if count > max_len then corruptf "absurd record count %d" count;
  let entries = ref [] in
  for i = 0 to count - 1 do
    let what = Printf.sprintf "record %d/%d" (i + 1) count in
    let key_len = take_u32 what in
    if key_len > max_len then corruptf "%s: absurd key length" what;
    let key = take_str key_len what in
    let val_len = take_u32 what in
    if val_len > max_len then corruptf "%s: absurd value length" what;
    let payload = take_str val_len what in
    let crc = take_u32 what in
    if crc <> crc32_pair key payload then
      corruptf "%s: CRC mismatch (%s)" what key;
    (* The CRC passed, so these are the exact bytes [save] produced
       and unmarshalling is safe. *)
    let cost_s, value = Marshal.from_string payload 0 in
    entries := (key, cost_s, value) :: !entries
  done;
  if !pos <> len then
    corruptf "%d trailing bytes after last record" (len - !pos);
  List.rev !entries

let load ~path ~schema =
  if not (Sys.file_exists path) then Ok []
  else
    match parse ~schema (read_file path) with
    | entries -> Ok entries
    | exception Corrupt msg -> Error (path ^ ": " ^ msg)
    | exception Sys_error msg -> Error msg
    | exception Failure msg ->
      (* Marshal.from_string on a short buffer. *)
      Error (path ^ ": " ^ msg)
