open Nanodec_codes
open Nanodec_numerics
open Nanodec_crossbar
open Nanodec
module E = Nanodec_error
module Run_ctx = Nanodec_parallel.Run_ctx
module Fault = Nanodec_fault.Fault

(* A live view of the server's dispatch queue and snapshot clock,
   installed by the concurrent server so the [stats] and [shutdown]
   verbs can report scheduling state.  [None] (direct [handle_line]
   callers: tests, a hypothetical inline runner) reports zeros. *)
type batch_view = {
  window_s : float;
  max_batch : int;
  buffered : int;
  batches : int;
  fused_requests : int;
  flush_window : int;
  flush_full : int;
  flush_drain : int;
  size_p50 : int;
  size_max : int;
}

type scheduler = {
  max_inflight : int;
  max_queue : int;
  inflight : int;
  queued : int;
  shed : int;
  snapshot_age_s : float option;
  batch : batch_view option;
}

type state = {
  artifacts : Artifacts.t;
  base : Run_ctx.t;
  (* Requests execute on worker threads, so the counters and the
     stopping latch are atomics rather than plain mutable fields. *)
  requests : int Atomic.t;
  errors : int Atomic.t;
  stopping : bool Atomic.t;
  mutable scheduler_probe : (unit -> scheduler) option;
}

let make_state ?(cache_enabled = true) ?(cache_capacity = 256) ~base () =
  {
    artifacts = Artifacts.create ~enabled:cache_enabled ~capacity:cache_capacity ();
    base;
    requests = Atomic.make 0;
    errors = Atomic.make 0;
    stopping = Atomic.make false;
    scheduler_probe = None;
  }

let artifacts state = state.artifacts
let base state = state.base
let requests state = Atomic.get state.requests
let errors state = Atomic.get state.errors
let stopping state = Atomic.get state.stopping
let set_scheduler_probe state probe = state.scheduler_probe <- probe

let scheduler_view state =
  match state.scheduler_probe with
  | Some probe -> probe ()
  | None ->
    {
      max_inflight = 1;
      max_queue = 0;
      inflight = 1;
      queued = 0;
      shed = 0;
      snapshot_age_s = None;
      batch = None;
    }

let known_verbs =
  [ "ping"; "evaluate"; "yield"; "sweep"; "codes"; "check"; "stats"; "shutdown" ]

(* --- request field access ---

   Every accessor is total and fails as [Invalid_input] naming the
   field, so the fuzz battery's bad values (floats where ints belong,
   negative seeds, zero sample counts) all map to the same JSON error
   kind the CLI maps them to on exit code 2. *)

let obj_field json name = Json.member name json

let int_field json name =
  match obj_field json name with
  | None | Some Json.Null -> None
  | Some v -> (
    match Json.to_int_opt v with
    | Some i -> Some i
    | None ->
      E.invalid_inputf ~hint:(Printf.sprintf "got %s" (Json.to_string v))
        "field %S must be an integer" name)

let float_field json name =
  match obj_field json name with
  | None | Some Json.Null -> None
  | Some v -> (
    match Json.to_float_opt v with
    | Some f -> Some f
    | None ->
      E.invalid_inputf ~hint:(Printf.sprintf "got %s" (Json.to_string v))
        "field %S must be a number" name)

let string_field json name =
  match obj_field json name with
  | None | Some Json.Null -> None
  | Some v -> (
    match Json.to_string_opt v with
    | Some s -> Some s
    | None ->
      E.invalid_inputf ~hint:(Printf.sprintf "got %s" (Json.to_string v))
        "field %S must be a string" name)

let bool_field json name =
  match obj_field json name with
  | None | Some Json.Null -> None
  | Some v -> (
    match Json.to_bool_opt v with
    | Some b -> Some b
    | None ->
      E.invalid_inputf ~hint:(Printf.sprintf "got %s" (Json.to_string v))
        "field %S must be a boolean" name)

(* --- the execution knobs of one request --- *)

type exec = {
  seed : int option;
  mc_samples : int option;
  timeout_s : float option;
  fault : Fault.t option;
  no_degrade : bool;
  chunking : Run_ctx.chunking option;
  mc_method : Run_ctx.mc_method option;
  rel_error : float option;
}

let no_exec =
  {
    seed = None;
    mc_samples = None;
    timeout_s = None;
    fault = None;
    no_degrade = false;
    chunking = None;
    mc_method = None;
    rel_error = None;
  }

let exec_of_json json =
  match obj_field json "exec" with
  | None | Some Json.Null -> no_exec
  | Some (Json.Obj _ as e) ->
    let seed = int_field e "seed" in
    Option.iter (E.check_seed ~what:"seed") seed;
    let mc_samples = int_field e "mc_samples" in
    Option.iter (E.check_mc_samples ~what:"mc_samples") mc_samples;
    let timeout_s = float_field e "timeout" in
    Option.iter (E.check_timeout_s ~what:"timeout") timeout_s;
    let fault =
      match string_field e "fault_plan" with
      | None -> None
      | Some spec -> Some (Fault.create (Fault.parse_exn spec))
    in
    let no_degrade = Option.value (bool_field e "no_degrade") ~default:false in
    let chunking =
      match obj_field e "chunks" with
      | None | Some Json.Null -> None
      | Some (Json.Int n) ->
        Some
          (match E.parse_chunks ~what:"chunks" (string_of_int n) with
          | `Auto -> Run_ctx.Auto
          | `Fixed n -> Run_ctx.Fixed n)
      | Some (Json.String s) ->
        Some
          (match E.parse_chunks ~what:"chunks" s with
          | `Auto -> Run_ctx.Auto
          | `Fixed n -> Run_ctx.Fixed n)
      | Some v ->
        E.invalid_inputf ~hint:(Printf.sprintf "got %s" (Json.to_string v))
          "field \"chunks\" must be 'auto' or a positive integer"
    in
    (* Same grammar and bounds as the CLI's --mc-method/--rel-error,
       through the same shared validators, so both surfaces reject bad
       values identically. *)
    let mc_method =
      match string_field e "method" with
      | None -> None
      | Some s ->
        Some
          (match E.parse_mc_method ~what:"method" s with
          | `Plain -> Run_ctx.Plain
          | `Antithetic -> Run_ctx.Antithetic
          | `Stratified k -> Run_ctx.Stratified k
          | `Importance f -> Run_ctx.Importance f)
    in
    let rel_error = float_field e "rel_error" in
    Option.iter (E.check_rel_error ~what:"rel_error") rel_error;
    {
      seed;
      mc_samples;
      timeout_s;
      fault;
      no_degrade;
      chunking;
      mc_method;
      rel_error;
    }
  | Some v ->
    E.invalid_inputf ~hint:(Printf.sprintf "got %s" (Json.to_string v))
      "field \"exec\" must be an object"

(* A request that injects faults, forbids degradation or carries a
   deadline must actually execute: serving its pooled work from the
   result cache would skip the very failure semantics it asked for. *)
let bypasses_result_cache exec =
  exec.fault <> None || exec.no_degrade || exec.timeout_s <> None

let with_request_ctx state exec f =
  Run_ctx.with_request ~base:state.base ?seed:exec.seed
    ?mc_samples:exec.mc_samples ?timeout_s:exec.timeout_s ?fault:exec.fault
    ?chunking:exec.chunking ?mc_method:exec.mc_method ?rel_error:exec.rel_error
    ~degrade:(not exec.no_degrade) ~warn:false f

(* --- design parameters --- *)

let code_type_field json =
  match string_field json "code" with
  | None -> Codebook.Balanced_gray
  | Some s -> (
    match Codebook.of_name s with
    | Some ct -> ct
    | None ->
      E.invalid_inputf ~hint:"known families: TC, GC, BGC, HC, AHC"
        "unknown code type %S" s)

let params_of_json json =
  match obj_field json "params" with
  | None | Some Json.Null -> Json.Obj []
  | Some (Json.Obj _ as p) -> p
  | Some v ->
    E.invalid_inputf ~hint:(Printf.sprintf "got %s" (Json.to_string v))
      "field \"params\" must be an object"

let spec_of_params params =
  let code_type = code_type_field params in
  let code_length = Option.value (int_field params "length") ~default:10 in
  E.check_int_range ~what:"length" ~min:1 ~max:64 code_length;
  let radix = Option.value (int_field params "radix") ~default:2 in
  E.check_int_range ~what:"radix" ~min:2 ~max:16 radix;
  let n_wires = Option.value (int_field params "wires") ~default:20 in
  E.check_int_range ~what:"wires" ~min:1 ~max:10_000 n_wires;
  let raw_bits =
    Option.value (int_field params "raw_bits") ~default:(16 * 1024 * 8)
  in
  E.check_int_range ~what:"raw_bits" ~min:1 ~max:1_000_000_000 raw_bits;
  (match Codebook.validate_length ~radix ~length:code_length code_type with
  | Ok () -> ()
  | Error msg -> E.fail (E.Invalid_input { what = msg; hint = None }));
  let base = { Design.default_spec with Design.raw_bits } in
  Design.spec ~base ~radix ~n_wires ~code_type ~code_length ()

(* --- batch fusion classification ---

   A request is fusable when its MC work is a pure fixed-count estimate
   the batch layer can precompute: an MC-bearing verb ([yield], or
   [evaluate] with [mc_samples]), no cache bypass (fault plan,
   no_degrade, deadline — those must execute their own failure
   semantics), and no adaptive stopping anywhere (request or base
   context — adaptive rounds cannot share a fan-out).  The plan records
   the request's estimate identity exactly as [run_estimate] will
   derive it, so the fused result lands on the very cache key the
   request's own execution looks up.  Total: any parse or validation
   failure classifies as not-fusable and the request takes the single
   path, which reproduces the error response bytes unchanged. *)

type fuse_plan = {
  fuse_key : string;  (* the estimate's artifact-cache key *)
  fuse_seed : int;
  fuse_samples : int;
  fuse_spec : Montecarlo.spec;  (* always fixed stopping *)
  fuse_config : Cave.config;
}

exception Not_fusable

let classify_fusable state line =
  match Json.parse line with
  | Error _ -> None
  | Ok (Json.Obj _ as json) -> (
    match
      let exec = exec_of_json json in
      let samples =
        match (string_field json "verb", exec.mc_samples) with
        | Some "yield", s -> Option.value s ~default:1000
        | Some "evaluate", Some s -> s
        | _ -> raise Not_fusable
      in
      if bypasses_result_cache exec then raise Not_fusable;
      if exec.rel_error <> None || Run_ctx.rel_error state.base <> None then
        raise Not_fusable;
      let config = (spec_of_params (params_of_json json)).Design.cave in
      let seed = Option.value exec.seed ~default:(Run_ctx.seed state.base) in
      (* The effective strategy mirrors [Run_ctx.with_request]: the
         request's [method] wins, otherwise the base context's. *)
      let strategy =
        match exec.mc_method with
        | Some m -> m
        | None -> Run_ctx.mc_method state.base
      in
      let mspec =
        { Montecarlo.strategy; stopping = Montecarlo.Fixed_samples samples }
      in
      let key =
        (* Same split as [request_spec]: only requests that opted into a
           method get the spec-keyed estimate; the rest keep the legacy
           plain key (where the base strategy still steers the build,
           exactly as [Artifacts.estimate] runs it). *)
        if exec.mc_method = None then
          Artifacts.estimate_key ~seed ~samples config
        else Artifacts.estimate_spec_key ~seed ~spec:mspec config
      in
      {
        fuse_key = key;
        fuse_seed = seed;
        fuse_samples = samples;
        fuse_spec = mspec;
        fuse_config = config;
      }
    with
    | plan -> Some plan
    | exception _ -> None)
  | Ok _ -> None

(* Fused results ride to [run_estimate] as a key-indexed overlay: a hit
   is installed through the cache's own [find_or_build] accounting, so
   hit/miss counters and [cached] flags match serial execution. *)
type overlay = (string, Montecarlo.estimate) Hashtbl.t

(* --- response rendering ---

   Responses carry no wall-clock, pid or host fields: a response is a
   pure function of the request, which is what makes the CI smoke
   goldens and the concurrent-soak byte-equality test possible. *)

(* [?spec] appends the sampling-method tag only when the request opted
   into one, so legacy requests keep byte-identical responses (the CI
   smoke goldens). *)
let estimate_json ~seed ?spec (e : Montecarlo.estimate) =
  Json.Obj
    ([
       ("mean", Json.Float e.Montecarlo.mean);
       ("std_error", Json.Float e.Montecarlo.std_error);
       ("ci95_low", Json.Float e.Montecarlo.ci95_low);
       ("ci95_high", Json.Float e.Montecarlo.ci95_high);
       ("samples", Json.Int e.Montecarlo.samples);
       ("seed", Json.Int seed);
     ]
    @
    match spec with
    | None -> []
    | Some s ->
      [ ("method", Json.String (Montecarlo.strategy_name s.Montecarlo.strategy)) ])

let report_json (r : Design.report) =
  let spec = r.Design.spec in
  let cave = spec.Design.cave in
  Json.Obj
    [
      ("code", Json.String (Codebook.name cave.Cave.code_type));
      ("radix", Json.Int cave.Cave.radix);
      ("length", Json.Int cave.Cave.code_length);
      ("wires", Json.Int cave.Cave.n_wires);
      ("raw_bits", Json.Int spec.Design.raw_bits);
      ("omega", Json.Int r.Design.omega);
      ("phi", Json.Int r.Design.phi);
      ("phi_per_wire", Json.Float r.Design.phi_per_wire);
      ("sigma_norm1", Json.Float r.Design.sigma_norm1);
      ("average_nu", Json.Float r.Design.average_nu);
      ("max_nu", Json.Int r.Design.max_nu);
      ("pattern_transitions", Json.Int r.Design.pattern_transitions);
      ("cave_yield", Json.Float r.Design.cave_yield);
      ("crossbar_yield", Json.Float r.Design.crossbar_yield);
      ("effective_bits", Json.Float r.Design.effective_bits);
      ("bit_area", Json.Float r.Design.bit_area);
      ("area", Json.Float r.Design.area);
      ("n_pads", Json.Int r.Design.n_pads);
      ("removed_wires", Json.Int r.Design.removed_wires);
    ]

let ok_response ~id ~verb ~cached result =
  Json.Obj
    [
      ("id", id);
      ("status", Json.String "ok");
      ("verb", Json.String verb);
      ("cached", Json.Bool cached);
      ("result", result);
    ]

let error_response ~id err =
  Json.Obj
    [
      ("id", id);
      ("status", Json.String "error");
      ("kind", Json.String (E.label err));
      ("exit_code", Json.Int (E.exit_code err));
      ( "message",
        Json.String
          (match err with
          | E.Invalid_input { what; _ } -> what
          | E.Timeout { site; seconds } -> (
            match seconds with
            | Some s -> Printf.sprintf "%s timed out after %gs" site s
            | None -> Printf.sprintf "%s was cancelled" site)
          | E.Worker_crash { site; detail; injected } ->
            Printf.sprintf "%s crashed%s: %s" site
              (if injected then " (injected)" else "")
              detail
          | E.Degraded { site; reason } ->
            Printf.sprintf "%s refused to degrade: %s" site reason
          | E.Overloaded { site; pending; limit } ->
            Printf.sprintf "%s shed the request: %d pending (limit %d)"
              site pending limit
          | E.Internal { detail } -> detail) );
      ( "hint",
        match err with
        | E.Invalid_input { hint = Some h; _ } -> Json.String h
        | _ -> Json.Null );
    ]

(* --- verbs --- *)

(* The request's sampling spec, built from the derived context exactly
   as a standalone CLI run would build it.  [Some spec] also flags the
   response to carry the method tag — only for requests that opted in,
   keeping legacy responses golden-stable. *)
let request_spec exec ~ctx ~samples =
  if exec.mc_method = None && exec.rel_error = None then None
  else Some (Montecarlo.spec_of_ctx ~ctx ~samples ())

let run_estimate ?overlay state ~exec ~ctx ~samples config =
  let seed = Run_ctx.seed ctx in
  let spec = request_spec exec ~ctx ~samples in
  if bypasses_result_cache exec then (
    let analysis, _ = Artifacts.analysis state.artifacts config in
    let kernel, _ = Artifacts.kernel state.artifacts config in
    ( Cave.mc_yield_window_par ~ctx ?spec ~kernel (Rng.create ~seed) ~samples
        analysis,
      false ))
  else
    let fused =
      match overlay with
      | None -> None
      | Some tbl ->
        let key =
          match spec with
          | None -> Artifacts.estimate_key ~seed ~samples config
          | Some spec -> Artifacts.estimate_spec_key ~seed ~spec config
        in
        Option.map (fun e -> (key, e)) (Hashtbl.find_opt tbl key)
    in
    match fused with
    | Some (key, e) ->
      (* The fused run already produced this request's bits; one cache
         round installs them with serial hit/miss accounting. *)
      Artifacts.estimate_with state.artifacts ~key ~build:(fun () -> e)
    | None -> (
      match spec with
      | None -> Artifacts.estimate state.artifacts ~ctx ~seed ~samples config
      | Some spec ->
        Artifacts.estimate_spec state.artifacts ~ctx ~seed ~spec config)

let run_evaluate ?overlay state ~exec params =
  let spec = spec_of_params params in
  let report, report_hit = Artifacts.report state.artifacts spec in
  match exec.mc_samples with
  | None -> (report_json report, report_hit)
  | Some samples ->
    with_request_ctx state exec @@ fun ctx ->
    let seed = Run_ctx.seed ctx in
    let config = spec.Design.cave in
    let estimate, est_hit =
      run_estimate ?overlay state ~exec ~ctx ~samples config
    in
    ( (match report_json report with
      | Json.Obj fields ->
        Json.Obj
          (fields
          @ [
              ( "mc",
                estimate_json ~seed
                  ?spec:(request_spec exec ~ctx ~samples)
                  estimate );
            ])
      | other -> other),
      report_hit && est_hit )

let run_yield ?overlay state ~exec params =
  let spec = spec_of_params params in
  let samples = Option.value exec.mc_samples ~default:1000 in
  with_request_ctx state exec @@ fun ctx ->
  let seed = Run_ctx.seed ctx in
  let config = spec.Design.cave in
  let analysis, _ = Artifacts.analysis state.artifacts config in
  let estimate, est_hit =
    run_estimate ?overlay state ~exec ~ctx ~samples config
  in
  ( Json.Obj
      [
        ("analytic_yield", Json.Float analysis.Cave.yield);
        ( "mc",
          estimate_json ~seed ?spec:(request_spec exec ~ctx ~samples) estimate
        );
      ],
    est_hit )

let sweep_row_json (r : Design.report) =
  let cave = r.Design.spec.Design.cave in
  Json.Obj
    [
      ("code", Json.String (Codebook.name cave.Cave.code_type));
      ("radix", Json.Int cave.Cave.radix);
      ("length", Json.Int cave.Cave.code_length);
      ("phi", Json.Int r.Design.phi);
      ("crossbar_yield", Json.Float r.Design.crossbar_yield);
      ("effective_bits", Json.Float r.Design.effective_bits);
      ("bit_area", Json.Float r.Design.bit_area);
    ]

let run_sweep state params =
  let code_type = code_type_field params in
  let code_length = Option.value (int_field params "length") ~default:10 in
  let spec =
    spec_of_params
      (Json.Obj
         [
           ("code", Json.String (Codebook.name code_type));
           ("length", Json.Int code_length);
           ( "radix",
             Json.Int (Option.value (int_field params "radix") ~default:2) );
           ( "wires",
             Json.Int (Option.value (int_field params "wires") ~default:20) );
           ( "raw_bits",
             Json.Int
               (Option.value (int_field params "raw_bits")
                  ~default:(16 * 1024 * 8)) );
         ])
  in
  let reports, hit = Artifacts.sweep state.artifacts spec in
  (Json.Obj [ ("rows", Json.List (List.map sweep_row_json reports)) ], hit)

let run_codes state params =
  let code_type = code_type_field params in
  let code_length = Option.value (int_field params "length") ~default:10 in
  E.check_int_range ~what:"length" ~min:1 ~max:64 code_length;
  let radix = Option.value (int_field params "radix") ~default:2 in
  E.check_int_range ~what:"radix" ~min:2 ~max:16 radix;
  let count = Option.value (int_field params "count") ~default:16 in
  E.check_int_range ~what:"count" ~min:1 ~max:1_000_000 count;
  (match Codebook.validate_length ~radix ~length:code_length code_type with
  | Ok () -> ()
  | Error msg -> E.fail (E.Invalid_input { what = msg; hint = None }));
  let words, hit =
    Artifacts.words state.artifacts ~radix ~length:code_length ~count code_type
  in
  ( Json.Obj
      [
        ("code", Json.String (Codebook.name code_type));
        ( "omega",
          Json.Int (Codebook.space_size ~radix ~length:code_length code_type) );
        ( "words",
          Json.List (List.map (fun w -> Json.String (Word.to_string w)) words)
        );
      ],
    hit )

let run_check params =
  let open Nanodec_proptest in
  let seed = int_field params "seed" in
  Option.iter (E.check_seed ~what:"seed") seed;
  let count = Option.value (int_field params "count") ~default:25 in
  E.check_int_range ~what:"count" ~min:1 ~max:10_000 count;
  let reports = Property.run_suite ?seed ~count Oracles.all in
  let failures =
    List.filter_map
      (fun r ->
        match r.Property.outcome with
        | Property.Pass _ -> None
        | Property.Fail f ->
          Some
            (Json.Obj
               [
                 ("name", Json.String (Property.name r.Property.property));
                 ("seed", Json.Int f.Property.seed);
                 ("case_index", Json.Int f.Property.case_index);
                 ("counterexample", Json.String f.Property.counterexample);
                 ( "message",
                   match f.Property.message with
                   | Some m -> Json.String m
                   | None -> Json.Null );
               ])
        )
      reports
  in
  Json.Obj
    [
      ("seed", Json.Int (Property.effective_seed seed));
      ("count", Json.Int count);
      ("properties", Json.Int (List.length reports));
      ("failed", Json.Int (List.length failures));
      ("failures", Json.List failures);
    ]

let run_stats state =
  let s = Artifact_cache.stats state.artifacts in
  let sched = scheduler_view state in
  Json.Obj
    [
      ("requests", Json.Int (Atomic.get state.requests));
      ("errors", Json.Int (Atomic.get state.errors));
      ( "serve",
        Json.Obj
          [
            ("max_inflight", Json.Int sched.max_inflight);
            ("max_queue", Json.Int sched.max_queue);
            ("inflight", Json.Int sched.inflight);
            ("queued", Json.Int sched.queued);
            ("shed", Json.Int sched.shed);
            ( "snapshot_age_s",
              match sched.snapshot_age_s with
              | Some a -> Json.Float a
              | None -> Json.Null );
            ( "batch",
              match sched.batch with
              | None -> Json.Null
              | Some b ->
                Json.Obj
                  [
                    ("window_ms", Json.Float (b.window_s *. 1000.));
                    ("max_batch", Json.Int b.max_batch);
                    ("buffered", Json.Int b.buffered);
                    ("batches", Json.Int b.batches);
                    ("fused_requests", Json.Int b.fused_requests);
                    ("flush_window", Json.Int b.flush_window);
                    ("flush_full", Json.Int b.flush_full);
                    ("flush_drain", Json.Int b.flush_drain);
                    ("size_p50", Json.Int b.size_p50);
                    ("size_max", Json.Int b.size_max);
                  ] );
          ] );
      ( "cache",
        Json.Obj
          [
            ("capacity", Json.Int s.Artifact_cache.capacity);
            ("entries", Json.Int s.Artifact_cache.entries);
            ("hits", Json.Int s.Artifact_cache.hits);
            ("misses", Json.Int s.Artifact_cache.misses);
            ("evictions", Json.Int s.Artifact_cache.evictions);
            ("build_s", Json.Float s.Artifact_cache.build_s);
            ("saved_s", Json.Float s.Artifact_cache.saved_s);
          ] );
      ( "keys",
        Json.List
          (List.map
             (fun k -> Json.String (Artifact_cache.digest k))
             (Artifact_cache.keys state.artifacts)) );
    ]

(* --- dispatch --- *)

let dispatch ?overlay state ~id json =
  let verb =
    match string_field json "verb" with
    | Some v -> v
    | None ->
      E.invalid_inputf
        ~hint:("known verbs: " ^ String.concat ", " known_verbs)
        "request has no \"verb\" field"
  in
  let exec = exec_of_json json in
  let params = params_of_json json in
  let result, cached =
    match verb with
    | "ping" -> (Json.Obj [ ("pong", Json.Bool true) ], false)
    | "evaluate" -> run_evaluate ?overlay state ~exec params
    | "yield" -> run_yield ?overlay state ~exec params
    | "sweep" -> run_sweep state params
    | "codes" -> run_codes state params
    | "check" -> (run_check params, false)
    | "stats" -> (run_stats state, false)
    | "shutdown" ->
      Atomic.set state.stopping true;
      (* What the drain will have to finish: every other in-flight
         request plus everything still queued (this request is the
         [- 1]).  [shed] is the admission-control reject count so far —
         the split between served-before-stopping and refused load. *)
      let sched = scheduler_view state in
      ( Json.Obj
          [
            ("stopping", Json.Bool true);
            ( "draining",
              Json.Int (max 0 (sched.inflight - 1) + sched.queued) );
            ("shed", Json.Int sched.shed);
          ],
        false )
    | v ->
      E.invalid_inputf
        ~hint:("known verbs: " ^ String.concat ", " known_verbs)
        "unknown verb %S" v
  in
  ok_response ~id ~verb ~cached result

let error_line err = Json.to_string (error_response ~id:Json.Null err)

let handle_line ?overlay state line =
  Atomic.incr state.requests;
  let id, response =
    match Json.parse line with
    | Error msg ->
      ( Json.Null,
        Error
          (E.Invalid_input { what = "malformed JSON request"; hint = Some msg })
      )
    | Ok (Json.Obj _ as json) -> (
      let id = Option.value (Json.member "id" json) ~default:Json.Null in
      match dispatch ?overlay state ~id json with
      | response -> (id, Ok response)
      | exception exn -> (
        match Errors.classify exn with
        | Some err -> (id, Error err)
        | None ->
          (* A genuine bug — but a daemon must answer, not die.  The
             detail keeps the exception text so the bug is findable. *)
          (id, Error (E.internal (Printexc.to_string exn)))))
    | Ok v ->
      ( Json.Null,
        Error
          (E.Invalid_input
             {
               what = "request must be a JSON object";
               hint = Some (Printf.sprintf "got %s" (Json.to_string v));
             }) )
  in
  match response with
  | Ok r -> Json.to_string r
  | Error err ->
    Atomic.incr state.errors;
    Json.to_string (error_response ~id err)
