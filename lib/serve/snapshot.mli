(** Crash-safe, corruption-tolerant artifact-cache snapshots.

    The daemon's warm state — {!Artifact_cache.dump} output — written
    as a checksummed, length-prefixed record file and published
    atomically (write to a temporary, fsync, rename), so a [kill -9]
    at any instant leaves either the previous complete snapshot or the
    new one on disk, never a torn mix.

    The loader trusts nothing: every record carries a CRC-32 that is
    verified {e before} its bytes reach [Marshal] (unmarshalling
    corrupt input can crash the runtime), lengths are bounds-checked,
    and the header pins both the caller's [schema] string and the
    OCaml runtime version.  {e Any} violation — truncation, bit flips,
    zero fill, trailing garbage, a schema from another build — makes
    {!load} return [Error] with a description; the caller logs a
    warning and starts cold.  A snapshot can cost at worst a warning,
    never a crash loop.

    ['v] is whatever the cache stores; it must be marshal-safe (pure
    data, no closures — {!Artifacts.value} qualifies).  Bump [schema]
    whenever the value type changes shape. *)

val save :
  path:string ->
  schema:string ->
  (string * float * 'v) list ->
  (unit, string) result
(** [save ~path ~schema entries] atomically replaces [path] with a
    snapshot of [entries] ([(key, build-cost seconds, value)], in
    {!Artifact_cache.dump} order).  [Error] carries the failed
    syscall's description (disk full, permission, …); the previous
    snapshot, if any, is left intact. *)

val load :
  path:string ->
  schema:string ->
  ((string * float * 'v) list, string) result
(** [load ~path ~schema] returns the entries in {!save} order, ready
    for {!Artifact_cache.restore}.  A missing file is [Ok []] (a cold
    start, not an error); every corrupt or mismatched file is [Error]
    with the reason.  Never raises. *)
