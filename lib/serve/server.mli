(** The daemon's socket loop: accept, frame lines, dispatch, survive.

    One [select] loop multiplexes any number of client connections
    over a Unix-domain or loopback TCP socket and owns all socket
    state; complete request lines are dispatched onto a bounded queue
    served by [max_inflight] worker threads.  Concurrent execution is
    invisible on the wire: each connection's responses are written
    back in arrival order (later completions wait for earlier ones),
    so every response stream is byte-identical to the serial daemon's
    — the contract behind the CI smoke goldens and the concurrent-soak
    determinism test.

    {2 Admission control}

    At most [max_inflight + max_queue] requests are outstanding
    (executing or queued).  Beyond that the daemon sheds
    deterministically: the excess request is answered immediately with
    a structured [Overloaded] error ({!Nanodec_error.exit_overloaded})
    and counted in the [serve.shed] telemetry counter; accepted
    requests record the post-admission depth in the
    [serve.queue_depth] histogram.  Because the bound counts
    submissions minus completions, the shed decision never depends on
    how quickly a worker thread happens to be scheduled.

    {2 Batch fusion}

    With [batch_window_s > 0], fusable MC-bearing requests
    ({!Protocol.classify_fusable}) whose estimate key is cold coalesce
    in a bounded window instead of dispatching one-by-one: the window
    flushes when it expires, when [max_batch] requests have buffered,
    or eagerly the moment its members are the only outstanding work
    (so a serial client never pays the window as latency).  A flushed
    batch of two or more ships as one fused job — one shared
    {!Nanodec_numerics.Montecarlo.run_many} mega-run over the batch's
    distinct cold estimates ({!Batcher.prepare}), then per-request
    execution against the precomputed overlay.  Fusion is pure
    scheduling: response bytes, cache accounting and arrival-order
    writing are identical to the unbatched daemon.  Telemetry:
    [serve.batch.size] histogram, [serve.batch.fused] and
    [serve.batch.flush.{window,full,drain}] counters; an injected
    [serve.batch] crash (keyed by the fused-batch ordinal) falls the
    batch back to per-request execution and counts
    [serve.batch.fallbacks].

    {2 Robustness}

    {ul
    {- a line longer than [max_line_bytes] is answered with an
       [invalid-input] error and the connection resynchronises at the
       next newline;}
    {- client disconnects, [EPIPE]/[ECONNRESET] and half-written
       responses only ever close that one connection — requests it
       already submitted still execute, their responses are discarded;}
    {- with [idle_timeout_s] set, a connection that has been silent
       past the deadline — or drip-feeding a single incomplete line
       past it (slowloris) — is closed, but never while it is owed a
       response;}
    {- a [shutdown] request or SIGTERM triggers a graceful drain:
       no new connects, no new reads, every dispatched or queued
       request finishes and flushes, a final cache snapshot is
       written, the workers are joined;}
    {- an injected [serve.dispatch] crash is answered as a classified
       error response; an injected [serve.snapshot] crash skips that
       snapshot cycle with a warning — neither kills the daemon.}}

    {2 Crash-safe cache persistence}

    With [cache_file] set, the artifact cache is restored from the
    snapshot at startup (any corrupt, truncated or mismatched file is
    ignored with a warning — a cold cache, never a crash loop) and
    re-snapshotted every [snapshot_interval_s] seconds whenever its
    contents changed, plus once on graceful drain.  Snapshots are
    checksummed and published atomically ({!Snapshot}), so [kill -9]
    at any instant leaves a loadable file and warm-cache hits survive
    the restart byte-identically.

    When the protocol state's base context carries a telemetry sink,
    every request records its latency in the [serve.request_s]
    histogram and bumps [serve.requests]. *)

type address =
  [ `Unix of string  (** filesystem path of a Unix-domain socket *)
  | `Tcp of int  (** loopback TCP port; 0 lets the kernel pick *) ]

type t

val default_max_line_bytes : int
(** 1 MiB. *)

val default_max_inflight : int
(** 4 worker threads. *)

val default_max_queue : int
(** 64 queued requests beyond the workers. *)

val create :
  ?backlog:int ->
  ?max_line_bytes:int ->
  ?max_inflight:int ->
  ?max_queue:int ->
  ?batch_window_s:float ->
  ?max_batch:int ->
  ?idle_timeout_s:float ->
  ?cache_file:string ->
  ?snapshot_interval_s:float ->
  state:Protocol.state ->
  address ->
  t
(** Bind and listen (unlinking a pre-existing Unix socket path), load
    the [cache_file] snapshot if one is given, install the scheduler
    probe into [state] and start the worker threads.  TCP binds
    loopback only.  [batch_window_s] defaults to 0 (batch fusion off —
    the CLI defaults it on at 2 ms); [max_batch] to 32 (must be >= 2).
    [idle_timeout_s] defaults to off; [snapshot_interval_s] to 5 s
    (meaningful only with [cache_file]).  Raises
    [Nanodec_error.Error (Invalid_input _)] when the address cannot be
    bound or a knob is out of range. *)

val address : t -> address
(** The bound address — for [`Tcp 0], the port the kernel picked. *)

val serve : t -> unit
(** Run the loop until a [shutdown] request or SIGTERM completes the
    graceful drain.  The socket is closed (and a Unix path unlinked)
    on return. *)

val close : t -> unit
(** Close the listening socket and every connection without draining.
    Safe to call from another thread to abort {!serve}. *)
