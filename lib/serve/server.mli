(** The daemon's socket loop: accept, frame lines, answer, never die.

    One single-threaded [select] loop multiplexes any number of client
    connections over a Unix-domain or loopback TCP socket.  Complete
    request lines are executed {e serially}, in arrival order, through
    {!Protocol.handle_line} — concurrency is interleaved connections,
    not interleaved execution, which keeps every response a pure
    function of its request (the concurrent-soak determinism test's
    contract).  Socket-level hazards are handled at this layer:

    {ul
    {- a line longer than [max_line_bytes] is answered with an
       [invalid-input] error and the connection resynchronises at the
       next newline — the daemon neither buffers the flood nor drops
       the client;}
    {- client disconnects, [EPIPE]/[ECONNRESET] and half-written
       responses only ever close that one connection;}
    {- a [shutdown] request stops the accept loop, drains the complete
       lines already buffered on every connection (answering each),
       flushes pending responses and returns — no request that fully
       arrived before the shutdown response is dropped.}}

    When the protocol state's base context carries a telemetry sink,
    every request records its latency in the [serve.request_s]
    histogram and bumps [serve.requests] — the source of the bench's
    p50/p99. *)

type address =
  [ `Unix of string  (** filesystem path of a Unix-domain socket *)
  | `Tcp of int  (** loopback TCP port; 0 lets the kernel pick *) ]

type t

val default_max_line_bytes : int
(** 1 MiB. *)

val create :
  ?backlog:int -> ?max_line_bytes:int -> state:Protocol.state -> address -> t
(** Bind and listen (unlinking a pre-existing Unix socket path).  TCP
    binds loopback only.  Raises [Nanodec_error.Error (Invalid_input _)]
    when the address cannot be bound. *)

val address : t -> address
(** The bound address — for [`Tcp 0], the port the kernel picked. *)

val serve : t -> unit
(** Run the loop until a [shutdown] request completes the drain.
    Idempotent with {!close}: the socket is closed (and a Unix path
    unlinked) on return. *)

val close : t -> unit
(** Close the listening socket and every connection without draining.
    Safe to call from another thread to abort {!serve}. *)
