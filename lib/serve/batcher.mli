(** Cross-request batch fusion for the daemon: coalesce the Monte-Carlo
    work of concurrent requests into shared kernel mega-batches.

    The server buffers fusable requests ({!Protocol.classify_fusable})
    for a bounded window and flushes them as one fused job; {!prepare}
    then computes every distinct cold estimate of the batch through a
    single {!Nanodec_numerics.Montecarlo.run_many} fan-out and returns a
    {!Protocol.overlay} for the per-request executions that follow.
    Fusion is pure scheduling: each request keeps its own seeded stream
    family, so per-request results — and response bytes — are identical
    to unbatched execution.

    The buffer operations ([add]/[take]/[length]/[deadline]/[view]) are
    {e not} thread-safe on their own: the server calls them under its
    scheduler mutex.  {!prepare} runs on a worker thread without that
    mutex and touches only thread-safe state. *)

type reason = [ `Window | `Full | `Drain ]
(** Why a flush happened: the window deadline expired (also used for
    the eager flush when nothing else is outstanding), the buffer
    reached [max_batch], or shutdown drain forced it out. *)

type 'a t

val create : window_s:float -> max_batch:int -> 'a t
(** [window_s] must be > 0 (a zero window means batching is off — the
    server simply never constructs a batcher); [max_batch >= 2]. *)

val length : 'a t -> int
val max_batch : 'a t -> int

val deadline : 'a t -> float option
(** Absolute time the current window expires; [None] when empty. *)

val add : 'a t -> 'a -> now:float -> unit
(** Buffer one request; the first request of a window arms the
    deadline at [now + window_s]. *)

val take : 'a t -> reason:reason -> 'a list * int
(** Drain the buffer in arrival order and record flush statistics.
    Returns the requests and the fused-batch ordinal — the
    [serve.batch] fault key.  The ordinal advances only for real
    fusions (size >= 2); single-request flushes take the unfused path
    and must not shift the fault schedule of the batches around them. *)

val view : 'a t -> Protocol.batch_view
(** Cumulative statistics for the [stats] verb and [bench --serve]. *)

val prepare :
  state:Protocol.state ->
  ordinal:int ->
  Protocol.fuse_plan list ->
  Protocol.overlay option
(** Execute the fused Monte-Carlo work of one flushed batch: one
    [serve.batch] fault decision keyed by [ordinal], then every
    distinct cold key's estimate via one [Montecarlo.run_many] over the
    shared kernels (same artifact-cache rounds, same keyless
    [cave.window] probe and [kernel.samples] accounting as the solo
    builder).  [Some overlay] on success — possibly empty when every
    key turned out warm.  [None] when anything raises (an injected
    [serve.batch] crash included): the batch falls back to per-request
    execution, bytes unchanged; counted as [serve.batch.fallbacks]. *)
