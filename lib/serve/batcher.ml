(* Cross-request batch fusion: the coalescing layer between [Protocol]
   and the pool.

   The server holds fusable MC-bearing requests in a bounded window and
   flushes them as one fused job; [prepare] then runs every distinct
   cold estimate of the batch through ONE [Montecarlo.run_many] pool
   fan-out — one kernel fetch per distinct design, one autotune plan,
   one chunk-claimed mega-job — and hands the results back as a
   key-indexed overlay.  Each request still executes through
   [Protocol.handle_line] afterwards, so response rendering, cache
   accounting and error semantics are exactly the unbatched path's;
   fusion moves wall-clock time, never bytes.

   Synchronization: the buffer ([add]/[take]/[length]/[deadline]/
   [view]) is deliberately lock-free — the server calls it under its
   own scheduler mutex, from the select loop and the stats probe only.
   [prepare] runs on a worker thread and touches only thread-safe
   state (the artifact cache, the base context's pool). *)

open Nanodec_numerics
module Run_ctx = Nanodec_parallel.Run_ctx
module Telemetry = Nanodec_telemetry.Telemetry
module Fault = Nanodec_fault.Fault
module Kernel = Nanodec_crossbar.Kernel

type reason = [ `Window | `Full | `Drain ]

type stats = {
  mutable batches : int;  (* fused (size >= 2) executions *)
  mutable fused_requests : int;
  mutable flush_window : int;
  mutable flush_full : int;
  mutable flush_drain : int;
  mutable flushes : int;
  size_counts : int array;  (* flushed-batch size histogram, index = size *)
  mutable size_max : int;
}

type 'a t = {
  window_s : float;
  max_batch : int;
  mutable buf : 'a list;  (* newest first; [take] restores arrival order *)
  mutable len : int;
  mutable deadline : float option;  (* set when the first request buffers *)
  mutable ordinal : int;  (* serve.batch fault key: fused-batch index *)
  stats : stats;
}

let create ~window_s ~max_batch =
  if not (window_s > 0.) then
    invalid_arg "Batcher.create: window_s must be > 0";
  if max_batch < 2 then invalid_arg "Batcher.create: max_batch must be >= 2";
  {
    window_s;
    max_batch;
    buf = [];
    len = 0;
    deadline = None;
    ordinal = 0;
    stats =
      {
        batches = 0;
        fused_requests = 0;
        flush_window = 0;
        flush_full = 0;
        flush_drain = 0;
        flushes = 0;
        size_counts = Array.make (max_batch + 1) 0;
        size_max = 0;
      };
  }

let length t = t.len
let max_batch t = t.max_batch
let deadline t = t.deadline

let add t x ~now =
  if t.len = 0 then t.deadline <- Some (now +. t.window_s);
  t.buf <- x :: t.buf;
  t.len <- t.len + 1

(* Drain the buffer in arrival order.  The fused-batch ordinal (the
   [serve.batch] fault key) advances only for real fusions (size >= 2):
   single-request flushes take the unfused path and must not shift the
   deterministic fault schedule of the batches around them. *)
let take t ~reason =
  let reqs = List.rev t.buf in
  let n = t.len in
  t.buf <- [];
  t.len <- 0;
  t.deadline <- None;
  let s = t.stats in
  if n > 0 then begin
    (match reason with
    | `Window -> s.flush_window <- s.flush_window + 1
    | `Full -> s.flush_full <- s.flush_full + 1
    | `Drain -> s.flush_drain <- s.flush_drain + 1);
    s.flushes <- s.flushes + 1;
    if n <= t.max_batch then s.size_counts.(n) <- s.size_counts.(n) + 1;
    if n > s.size_max then s.size_max <- n;
    if n >= 2 then begin
      s.batches <- s.batches + 1;
      s.fused_requests <- s.fused_requests + n
    end
  end;
  let ordinal = t.ordinal in
  if n >= 2 then t.ordinal <- ordinal + 1;
  (reqs, ordinal)

let size_p50 t =
  if t.stats.flushes = 0 then 0
  else begin
    let need = (t.stats.flushes + 1) / 2 in
    let cum = ref 0 in
    let res = ref t.stats.size_max in
    (try
       for s = 1 to Array.length t.stats.size_counts - 1 do
         cum := !cum + t.stats.size_counts.(s);
         if !cum >= need then begin
           res := s;
           raise Exit
         end
       done
     with Exit -> ());
    !res
  end

let view t =
  {
    Protocol.window_s = t.window_s;
    max_batch = t.max_batch;
    buffered = t.len;
    batches = t.stats.batches;
    fused_requests = t.stats.fused_requests;
    flush_window = t.stats.flush_window;
    flush_full = t.stats.flush_full;
    flush_drain = t.stats.flush_drain;
    size_p50 = size_p50 t;
    size_max = t.stats.size_max;
  }

(* --- fused execution --- *)

let prepare ~state ~ordinal plans =
  let base = Protocol.base state in
  let fault = Run_ctx.fault base in
  let tel = Run_ctx.telemetry base in
  let cache = Protocol.artifacts state in
  match
    (* The whole fused batch is one fault-injection decision, keyed by
       the batch ordinal — a deterministic schedule for chaos tests. *)
    Fault.hit fault ~key:ordinal "serve.batch";
    (* Distinct cold keys, in arrival order; duplicates and warm keys
       answer from the cache inside their own request execution. *)
    let seen = Hashtbl.create 8 in
    let todo =
      List.filter
        (fun p ->
          (not (Hashtbl.mem seen p.Protocol.fuse_key))
          && (not (Artifact_cache.mem cache p.Protocol.fuse_key))
          &&
          (Hashtbl.add seen p.Protocol.fuse_key ();
           true))
        plans
    in
    let items =
      List.map
        (fun p ->
          (* Same cache rounds the solo builder makes, and the same
             keyless [cave.window] probe per estimate, so an active
             fault plan paces the fused path like the unbatched one. *)
          let _a, _ = Artifacts.analysis cache p.Protocol.fuse_config in
          let k, _ = Artifacts.kernel cache p.Protocol.fuse_config in
          Fault.hit fault "cave.window";
          ( p.Protocol.fuse_spec,
            Rng.create ~seed:p.Protocol.fuse_seed,
            Kernel.target k ))
        todo
    in
    let estimates = Montecarlo.run_many ~ctx:base (Array.of_list items) in
    let overlay : Protocol.overlay = Hashtbl.create (max 1 (List.length todo)) in
    List.iteri
      (fun i p ->
        Telemetry.count tel "kernel.samples" estimates.(i).Montecarlo.samples;
        Hashtbl.replace overlay p.Protocol.fuse_key estimates.(i))
      todo;
    overlay
  with
  | overlay -> Some overlay
  | exception _ ->
    (* Anything — an injected serve.batch/cave.window crash, a surprise
       from the fused run — falls the batch back to per-request
       execution: every request re-derives its own result (or its own
       classified error) exactly as if it had never been fused. *)
    Telemetry.count tel "serve.batch.fallbacks" 1;
    None
