module E = Nanodec_error
module Telemetry = Nanodec_telemetry.Telemetry
module Run_ctx = Nanodec_parallel.Run_ctx

type address = [ `Unix of string | `Tcp of int ]

let default_max_line_bytes = 1024 * 1024

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;  (* bytes of the current incomplete line *)
  mutable out : string;  (* pending response bytes *)
  mutable sent : int;
  mutable discarding : bool;  (* inside an oversized line, until '\n' *)
  mutable closing : bool;  (* close once [out] drains *)
}

type t = {
  state : Protocol.state;
  listen_fd : Unix.file_descr;
  bound : address;
  unlink_on_close : string option;
  max_line_bytes : int;
  mutable conns : conn list;
  mutable open_ : bool;
}

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

let create ?(backlog = 16) ?(max_line_bytes = default_max_line_bytes) ~state
    address =
  let fd, bound, unlink_on_close =
    match address with
    | `Unix path ->
      (match (Unix.stat path).Unix.st_kind with
      | Unix.S_SOCK -> (try Unix.unlink path with Unix.Unix_error _ -> ())
      | _ ->
        E.invalid_inputf ~hint:"refusing to unlink a non-socket file"
          "socket path %S already exists" path
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.bind fd (Unix.ADDR_UNIX path)
       with Unix.Unix_error (err, _, _) ->
         close_fd fd;
         E.invalid_inputf "cannot bind Unix socket %S: %s" path
           (Unix.error_message err));
      (fd, `Unix path, Some path)
    | `Tcp port ->
      if port < 0 || port > 65535 then
        E.invalid_inputf "TCP port must be in [0, 65535] (got %d)" port;
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
      (try Unix.bind fd addr
       with Unix.Unix_error (err, _, _) ->
         close_fd fd;
         E.invalid_inputf "cannot bind 127.0.0.1:%d: %s" port
           (Unix.error_message err));
      let bound_port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | Unix.ADDR_UNIX _ -> port
      in
      (fd, `Tcp bound_port, None)
  in
  Unix.listen fd backlog;
  Unix.set_nonblock fd;
  {
    state;
    listen_fd = fd;
    bound;
    unlink_on_close;
    max_line_bytes;
    conns = [];
    open_ = true;
  }

let address t = t.bound

let drop_conn t conn =
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  close_fd conn.fd

let close t =
  if t.open_ then begin
    t.open_ <- false;
    close_fd t.listen_fd;
    List.iter (fun c -> close_fd c.fd) t.conns;
    t.conns <- [];
    Option.iter
      (fun path -> try Unix.unlink path with Unix.Unix_error _ -> ())
      t.unlink_on_close
  end

(* --- request execution --- *)

let enqueue conn response =
  conn.out <- conn.out ^ response ^ "\n"

let answer t conn line =
  let sink = Run_ctx.telemetry (Protocol.base t.state) in
  let t0 = Unix.gettimeofday () in
  let response = Protocol.handle_line t.state line in
  Telemetry.record sink "serve.request_s" (Unix.gettimeofday () -. t0);
  Telemetry.count sink "serve.requests" 1;
  enqueue conn response

let oversized t conn =
  enqueue conn
    (Protocol.error_line
       (E.Invalid_input
          {
            what =
              Printf.sprintf "request line exceeds %d bytes" t.max_line_bytes;
            hint = Some "one JSON object per line";
          }))

(* Split freshly read bytes into complete lines (executing each) and
   stash the incomplete tail back into [conn.inbuf], honouring the
   oversized-line resync state. *)
let feed t conn data =
  let n = String.length data in
  let pos = ref 0 in
  while !pos < n do
    match String.index_from_opt data !pos '\n' with
    | Some nl ->
      if conn.discarding then begin
        (* Tail of an already-answered oversized line: swallow it and
           resynchronise. *)
        conn.discarding <- false;
        Buffer.clear conn.inbuf
      end
      else begin
        Buffer.add_substring conn.inbuf data !pos (nl - !pos);
        let line = Buffer.contents conn.inbuf in
        Buffer.clear conn.inbuf;
        if String.length line > t.max_line_bytes then oversized t conn
        else if String.trim line <> "" then answer t conn line
      end;
      pos := nl + 1
    | None ->
      if not conn.discarding then begin
        Buffer.add_substring conn.inbuf data !pos (n - !pos);
        if Buffer.length conn.inbuf > t.max_line_bytes then begin
          oversized t conn;
          conn.discarding <- true;
          Buffer.clear conn.inbuf
        end
      end;
      pos := n
  done

let read_chunk = 65536

let handle_readable t conn =
  let bytes = Bytes.create read_chunk in
  match Unix.read conn.fd bytes 0 read_chunk with
  | 0 ->
    (* EOF: an incomplete trailing line is dropped by design (the
       client never finished sending it). *)
    if conn.out = "" then drop_conn t conn else conn.closing <- true
  | n -> feed t conn (Bytes.sub_string bytes 0 n)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ -> drop_conn t conn

let handle_writable t conn =
  let pending = String.length conn.out - conn.sent in
  if pending > 0 then
    match
      Unix.write_substring conn.fd conn.out conn.sent pending
    with
    | n ->
      conn.sent <- conn.sent + n;
      if conn.sent = String.length conn.out then begin
        conn.out <- "";
        conn.sent <- 0;
        if conn.closing then drop_conn t conn
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error _ -> drop_conn t conn

let handle_accept t =
  match Unix.accept t.listen_fd with
  | fd, _ ->
    Unix.set_nonblock fd;
    t.conns <-
      {
        fd;
        inbuf = Buffer.create 256;
        out = "";
        sent = 0;
        discarding = false;
        closing = false;
      }
      :: t.conns
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ -> ()

(* After a shutdown request: no new connections, no new reads — just
   flush every pending response, then close.  Complete lines that had
   already been read were answered before we got here ([feed] executes
   eagerly), so nothing fully received is dropped. *)
let drain t =
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec flush () =
    let pending =
      List.filter (fun c -> String.length c.out > c.sent) t.conns
    in
    if pending <> [] && Unix.gettimeofday () < deadline then begin
      match Unix.select [] (List.map (fun c -> c.fd) pending) [] 0.5 with
      | _, w, _ ->
        List.iter
          (fun fd ->
            match List.find_opt (fun c -> c.fd = fd) t.conns with
            | Some conn -> handle_writable t conn
            | None -> ())
          w;
        flush ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush ()
    end
  in
  flush ();
  close t

let serve t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let rec loop () =
    if not t.open_ then ()
    else if Protocol.stopping t.state then drain t
    else begin
      let reads = t.listen_fd :: List.map (fun c -> c.fd) t.conns in
      let writes =
        List.filter_map
          (fun c -> if String.length c.out > c.sent then Some c.fd else None)
          t.conns
      in
      match Unix.select reads writes [] 1.0 with
      | r, w, _ ->
        if List.mem t.listen_fd r then handle_accept t;
        List.iter
          (fun fd ->
            if fd <> t.listen_fd then
              match List.find_opt (fun c -> c.fd = fd) t.conns with
              | Some conn -> handle_readable t conn
              | None -> ())
          r;
        List.iter
          (fun fd ->
            match List.find_opt (fun c -> c.fd = fd) t.conns with
            | Some conn -> handle_writable t conn
            | None -> ())
          w;
        loop ()
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> loop ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) ->
        (* [close] raced us from another thread. *)
        ()
    end
  in
  loop ()
