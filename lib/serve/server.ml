module E = Nanodec_error
module Telemetry = Nanodec_telemetry.Telemetry
module Run_ctx = Nanodec_parallel.Run_ctx
module Fault = Nanodec_fault.Fault
module Errors = Nanodec.Errors

type address = [ `Unix of string | `Tcp of int ]

let default_max_line_bytes = 1024 * 1024
let default_max_inflight = 4
let default_max_queue = 64

type conn = {
  id : int;  (* completions address connections by id, not fd *)
  fd : Unix.file_descr;
  inbuf : Buffer.t;  (* bytes of the current incomplete line *)
  mutable out : string;  (* pending response bytes *)
  mutable sent : int;
  mutable discarding : bool;  (* inside an oversized line, until '\n' *)
  mutable closing : bool;  (* EOF seen: close once everything is answered *)
  mutable next_seq : int;  (* arrival index of the next submitted line *)
  mutable next_write : int;  (* arrival index the output is waiting for *)
  pending : (int, string) Hashtbl.t;
      (* responses that finished ahead of an earlier request — held
         until the arrival-order prefix is contiguous, which is what
         keeps concurrent execution invisible on the wire *)
  mutable last_activity : float;
  mutable line_started : float option;
      (* when the current incomplete line began — the slow-read guard *)
}

(* One admitted request, with everything its execution needs: the
   response routing identity (conn, seq), the dispatch fault key, and —
   when it buffered through the batch window — its fusable identity. *)
type pending = {
  conn_id : int;
  seq : int;
  line : string;
  key : int;  (* serve.dispatch fault key *)
  plan : Protocol.fuse_plan option;
}

type job =
  | Single of pending
  | Fused of { ordinal : int; reqs : pending list }

let job_size = function
  | Single _ -> 1
  | Fused { reqs; _ } -> List.length reqs

(* The dispatch scheduler: worker threads pull jobs from a bounded
   queue; the select loop is the only producer and the only consumer
   of [completions].  [outstanding] counts queued + in-flight jobs —
   admission control sheds at [max_inflight + max_queue] so the
   decision depends only on submissions and completions, never on how
   quickly a worker happens to pop the queue. *)
type sched = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  jobs : job Queue.t;
  mutable inflight : int;
  mutable outstanding : int;
  mutable shed : int;
  mutable stop : bool;
  mutable completions : (int * int * string) list;  (* (conn id, seq, line) *)
  mutable workers : Thread.t list;
}

type t = {
  state : Protocol.state;
  listen_fd : Unix.file_descr;
  bound : address;
  unlink_on_close : string option;
  max_line_bytes : int;
  max_inflight : int;
  max_queue : int;
  batcher : pending Batcher.t option;  (* Some iff batch_window_s > 0 *)
  idle_timeout_s : float option;
  cache_file : string option;
  snapshot_interval_s : float;
  sched : sched;
  wake_r : Unix.file_descr;  (* self-pipe: workers wake the select loop *)
  wake_w : Unix.file_descr;
  mutable conns : conn list;
  mutable open_ : bool;
  mutable next_conn_id : int;
  mutable next_key : int;  (* serve.dispatch fault key: global arrival index *)
  mutable term_requested : bool;
  mutable last_snapshot_check : float;
  mutable last_snapshot_mark : int;  (* cache (misses+evictions) at last write *)
  mutable snapshot_time : float option;
  mutable snapshot_ordinal : int;  (* serve.snapshot fault key *)
}

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()
let sink t = Run_ctx.telemetry (Protocol.base t.state)
let fault t = Run_ctx.fault (Protocol.base t.state)

let warn fmt =
  Format.kasprintf (fun msg -> Format.eprintf "nanodec serve: %s@." msg) fmt

(* --- crash-safe cache persistence --- *)

let load_snapshot ~state path =
  match Snapshot.load ~path ~schema:Artifacts.snapshot_schema with
  | Ok [] -> ()
  | Ok entries ->
    Artifact_cache.restore (Protocol.artifacts state) entries;
    warn "restored %d cached artifacts from %s" (List.length entries) path
  | Error msg ->
    (* Corruption costs the warm cache, never the daemon. *)
    warn "ignoring corrupt snapshot (starting cold): %s" msg

let cache_mark t =
  let s = Artifact_cache.stats (Protocol.artifacts t.state) in
  (* Any insert into an enabled cache is a miss, and contents only
     change through inserts and the evictions they cause — so this
     pair moves exactly when the cache does. *)
  s.Artifact_cache.misses + s.Artifact_cache.evictions

let write_snapshot t path ~now =
  let ordinal = t.snapshot_ordinal in
  t.snapshot_ordinal <- ordinal + 1;
  let mark = cache_mark t in
  match
    Fault.hit (fault t) ~key:ordinal "serve.snapshot";
    Snapshot.save ~path ~schema:Artifacts.snapshot_schema
      (Artifact_cache.dump (Protocol.artifacts t.state))
  with
  | Ok () ->
    t.last_snapshot_mark <- mark;
    t.snapshot_time <- Some now;
    Telemetry.count (sink t) "serve.snapshots" 1
  | Error msg -> warn "snapshot failed (will retry): %s" msg
  | exception exn ->
    (* An injected serve.snapshot crash (or any other surprise): skip
       this cycle; the previous on-disk snapshot stays intact. *)
    warn "snapshot skipped: %s" (Printexc.to_string exn)

let maybe_snapshot t ~now ~force =
  match t.cache_file with
  | None -> ()
  | Some path ->
    if force || now -. t.last_snapshot_check >= t.snapshot_interval_s then begin
      t.last_snapshot_check <- now;
      if cache_mark t <> t.last_snapshot_mark then write_snapshot t path ~now
    end

(* --- scheduler --- *)

let wake t =
  try ignore (Unix.write_substring t.wake_w "!" 0 1)
  with Unix.Unix_error _ -> ()
(* EAGAIN: a wake byte is already pending, which is all we need;
   EBADF/EPIPE: [close] raced us, the loop is gone anyway. *)

let execute_line ?overlay t ~key ~line =
  let t0 = Unix.gettimeofday () in
  let response =
    match
      Fault.hit (fault t) ~key "serve.dispatch";
      Protocol.handle_line ?overlay t.state line
    with
    | response -> response
    | exception exn -> (
      (* [handle_line] is total, so only the dispatch probe lands
         here — render it like any classified failure and keep
         serving. *)
      match Errors.classify exn with
      | Some err -> Protocol.error_line err
      | None -> Protocol.error_line (E.internal (Printexc.to_string exn)))
  in
  Telemetry.record (sink t) "serve.request_s" (Unix.gettimeofday () -. t0);
  Telemetry.count (sink t) "serve.requests" 1;
  response

(* Publish one finished request: settle the scheduler accounting and
   hand the response to the select loop.  Fused batches publish
   per-request as each member finishes, so early responses flush
   without waiting for the whole batch. *)
let finish t req response =
  Mutex.lock t.sched.mutex;
  t.sched.inflight <- t.sched.inflight - 1;
  t.sched.outstanding <- t.sched.outstanding - 1;
  t.sched.completions <- (req.conn_id, req.seq, response) :: t.sched.completions;
  Mutex.unlock t.sched.mutex;
  wake t

let worker_loop t =
  let rec loop () =
    Mutex.lock t.sched.mutex;
    while Queue.is_empty t.sched.jobs && not t.sched.stop do
      Condition.wait t.sched.nonempty t.sched.mutex
    done;
    if Queue.is_empty t.sched.jobs then Mutex.unlock t.sched.mutex
    else begin
      let job = Queue.pop t.sched.jobs in
      t.sched.inflight <- t.sched.inflight + job_size job;
      Mutex.unlock t.sched.mutex;
      (match job with
      | Single req -> finish t req (execute_line t ~key:req.key ~line:req.line)
      | Fused { ordinal; reqs } ->
        (* One shared mega-run for the batch's cold estimates, then
           each request executes (and errors, and counts) exactly as
           it would alone — the overlay only pre-fills the cache
           lookups its execution was going to make. *)
        let plans = List.filter_map (fun r -> r.plan) reqs in
        let overlay = Batcher.prepare ~state:t.state ~ordinal plans in
        List.iter
          (fun r ->
            finish t r (execute_line ?overlay t ~key:r.key ~line:r.line))
          reqs);
      loop ()
    end
  in
  loop ()

let start_workers t =
  t.sched.workers <-
    List.init t.max_inflight (fun _ -> Thread.create worker_loop t)

let stop_workers t ~join =
  Mutex.lock t.sched.mutex;
  t.sched.stop <- true;
  Condition.broadcast t.sched.nonempty;
  Mutex.unlock t.sched.mutex;
  if join then begin
    List.iter Thread.join t.sched.workers;
    t.sched.workers <- []
  end

(* Queue a flushed batch for a worker.  Call with the scheduler mutex
   held.  A single-request flush takes the exact unfused path; a real
   fusion (>= 2) ships as one job whose prepare step runs the shared
   mega-batch. *)
let flush_batch_locked t b ~reason =
  match Batcher.take b ~reason with
  | [], _ -> ()
  | reqs, ordinal ->
    let n = List.length reqs in
    (match sink t with
    | Some s ->
      Telemetry.observe (Telemetry.histogram s "serve.batch.size")
        (float_of_int n)
    | None -> ());
    Telemetry.count (sink t)
      (match reason with
      | `Window -> "serve.batch.flush.window"
      | `Full -> "serve.batch.flush.full"
      | `Drain -> "serve.batch.flush.drain")
      1;
    (match reqs with
    | [ req ] -> Queue.push (Single req) t.sched.jobs
    | reqs ->
      Telemetry.count (sink t) "serve.batch.fused" n;
      Queue.push (Fused { ordinal; reqs }) t.sched.jobs);
    Condition.signal t.sched.nonempty

let scheduler_view t () =
  Mutex.lock t.sched.mutex;
  let inflight = t.sched.inflight in
  let queued = Queue.fold (fun acc j -> acc + job_size j) 0 t.sched.jobs in
  let shed = t.sched.shed in
  let batch = Option.map Batcher.view t.batcher in
  Mutex.unlock t.sched.mutex;
  {
    Protocol.max_inflight = t.max_inflight;
    max_queue = t.max_queue;
    inflight;
    queued;
    shed;
    snapshot_age_s =
      Option.map (fun ts -> Unix.gettimeofday () -. ts) t.snapshot_time;
    batch;
  }

(* --- lifecycle --- *)

let create ?(backlog = 16) ?(max_line_bytes = default_max_line_bytes)
    ?(max_inflight = default_max_inflight) ?(max_queue = default_max_queue)
    ?(batch_window_s = 0.) ?(max_batch = 32) ?idle_timeout_s ?cache_file
    ?(snapshot_interval_s = 5.0) ~state address =
  if max_inflight < 1 then
    E.invalid_inputf "max-inflight must be >= 1 (got %d)" max_inflight;
  if max_queue < 1 then
    E.invalid_inputf "max-queue must be >= 1 (got %d)" max_queue;
  if not (batch_window_s >= 0. && batch_window_s < infinity) then
    E.invalid_inputf "batch-window must be a finite time >= 0 (got %g)"
      batch_window_s;
  if max_batch < 2 then
    E.invalid_inputf "max-batch must be >= 2 (got %d)" max_batch;
  Option.iter (E.check_timeout_s ~what:"idle-timeout") idle_timeout_s;
  E.check_timeout_s ~what:"snapshot-interval" snapshot_interval_s;
  Option.iter (load_snapshot ~state) cache_file;
  let fd, bound, unlink_on_close =
    match address with
    | `Unix path ->
      (match (Unix.stat path).Unix.st_kind with
      | Unix.S_SOCK -> (try Unix.unlink path with Unix.Unix_error _ -> ())
      | _ ->
        E.invalid_inputf ~hint:"refusing to unlink a non-socket file"
          "socket path %S already exists" path
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.bind fd (Unix.ADDR_UNIX path)
       with Unix.Unix_error (err, _, _) ->
         close_fd fd;
         E.invalid_inputf "cannot bind Unix socket %S: %s" path
           (Unix.error_message err));
      (fd, `Unix path, Some path)
    | `Tcp port ->
      if port < 0 || port > 65535 then
        E.invalid_inputf "TCP port must be in [0, 65535] (got %d)" port;
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
      (try Unix.bind fd addr
       with Unix.Unix_error (err, _, _) ->
         close_fd fd;
         E.invalid_inputf "cannot bind 127.0.0.1:%d: %s" port
           (Unix.error_message err));
      let bound_port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | Unix.ADDR_UNIX _ -> port
      in
      (fd, `Tcp bound_port, None)
  in
  Unix.listen fd backlog;
  Unix.set_nonblock fd;
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      state;
      listen_fd = fd;
      bound;
      unlink_on_close;
      max_line_bytes;
      max_inflight;
      max_queue;
      batcher =
        (if batch_window_s > 0. then
           Some (Batcher.create ~window_s:batch_window_s ~max_batch)
         else None);
      idle_timeout_s;
      cache_file;
      snapshot_interval_s;
      sched =
        {
          mutex = Mutex.create ();
          nonempty = Condition.create ();
          jobs = Queue.create ();
          inflight = 0;
          outstanding = 0;
          shed = 0;
          stop = false;
          completions = [];
          workers = [];
        };
      wake_r;
      wake_w;
      conns = [];
      open_ = true;
      next_conn_id = 0;
      next_key = 0;
      term_requested = false;
      last_snapshot_check = Unix.gettimeofday ();
      last_snapshot_mark = 0;
      snapshot_time = None;
      snapshot_ordinal = 0;
    }
  in
  Protocol.set_scheduler_probe state (Some (scheduler_view t));
  start_workers t;
  t

let address t = t.bound

let drop_conn t conn =
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  close_fd conn.fd

let close t =
  if t.open_ then begin
    t.open_ <- false;
    stop_workers t ~join:false;
    close_fd t.listen_fd;
    List.iter (fun c -> close_fd c.fd) t.conns;
    t.conns <- [];
    close_fd t.wake_r;
    close_fd t.wake_w;
    Option.iter
      (fun path -> try Unix.unlink path with Unix.Unix_error _ -> ())
      t.unlink_on_close
  end

(* --- response ordering --- *)

(* Append every response whose arrival-order predecessors are already
   out; later completions wait in [conn.pending]. *)
let flush_ready conn =
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt conn.pending conn.next_write with
    | Some response ->
      Hashtbl.remove conn.pending conn.next_write;
      conn.next_write <- conn.next_write + 1;
      conn.out <- conn.out ^ response ^ "\n"
    | None -> continue := false
  done

let complete t conn_id seq response =
  match List.find_opt (fun c -> c.id = conn_id) t.conns with
  | Some conn ->
    Hashtbl.replace conn.pending seq response;
    flush_ready conn
  | None -> ()  (* the client left before its answer was ready *)

let drain_completions t =
  Mutex.lock t.sched.mutex;
  let completions = t.sched.completions in
  t.sched.completions <- [];
  Mutex.unlock t.sched.mutex;
  (* Arrival order is restored by the per-connection sequence numbers,
     so the list order (newest first) does not matter. *)
  List.iter (fun (conn_id, seq, r) -> complete t conn_id seq r) completions

let drain_wake t =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read t.wake_r buf 0 256 with 0 -> () | _ -> go ()
  in
  try go ()
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
    ()

(* --- admission --- *)

let submit t conn line =
  let seq = conn.next_seq in
  conn.next_seq <- seq + 1;
  let key = t.next_key in
  t.next_key <- key + 1;
  (* Fusability is decided outside the scheduler mutex (it parses the
     line).  Requests whose estimate key is already warm skip the
     window entirely: buffering them would trade a cache hit's latency
     for nothing. *)
  let plan =
    match t.batcher with
    | None -> None
    | Some _ -> (
      match Protocol.classify_fusable t.state line with
      | Some p
        when not (Artifact_cache.mem (Protocol.artifacts t.state) p.Protocol.fuse_key)
        -> Some p
      | _ -> None)
  in
  let capacity = t.max_inflight + t.max_queue in
  Mutex.lock t.sched.mutex;
  let outstanding = t.sched.outstanding in
  if outstanding >= capacity then begin
    t.sched.shed <- t.sched.shed + 1;
    Mutex.unlock t.sched.mutex;
    Telemetry.count (sink t) "serve.shed" 1;
    complete t conn.id seq
      (Protocol.error_line
         (E.Overloaded
            { site = "serve.dispatch"; pending = outstanding; limit = capacity }))
  end
  else begin
    t.sched.outstanding <- outstanding + 1;
    let req = { conn_id = conn.id; seq; line; key; plan } in
    (match (t.batcher, plan) with
    | Some b, Some _ ->
      Batcher.add b req ~now:(Unix.gettimeofday ());
      if Batcher.length b >= Batcher.max_batch b then
        flush_batch_locked t b ~reason:`Full
      else if t.sched.outstanding = Batcher.length b then
        (* Nothing else queued or running: holding the window would be
           pure added latency (the serial-client case), so flush now —
           accounted as a window flush. *)
        flush_batch_locked t b ~reason:`Window
    | _ ->
      Queue.push (Single req) t.sched.jobs;
      Condition.signal t.sched.nonempty);
    Mutex.unlock t.sched.mutex;
    Telemetry.record (sink t) "serve.queue_depth" (float_of_int (outstanding + 1))
  end

let oversized t conn =
  (* Answered locally (never dispatched), but through the same
     sequence numbering so it lands in arrival order. *)
  let seq = conn.next_seq in
  conn.next_seq <- seq + 1;
  complete t conn.id seq
    (Protocol.error_line
       (E.Invalid_input
          {
            what =
              Printf.sprintf "request line exceeds %d bytes" t.max_line_bytes;
            hint = Some "one JSON object per line";
          }))

(* Split freshly read bytes into complete lines (dispatching each) and
   stash the incomplete tail back into [conn.inbuf], honouring the
   oversized-line resync state. *)
let feed t conn data =
  let n = String.length data in
  let pos = ref 0 in
  while !pos < n do
    match String.index_from_opt data !pos '\n' with
    | Some nl ->
      if conn.discarding then begin
        (* Tail of an already-answered oversized line: swallow it and
           resynchronise. *)
        conn.discarding <- false;
        Buffer.clear conn.inbuf
      end
      else begin
        Buffer.add_substring conn.inbuf data !pos (nl - !pos);
        let line = Buffer.contents conn.inbuf in
        Buffer.clear conn.inbuf;
        if String.length line > t.max_line_bytes then oversized t conn
        else if String.trim line <> "" then submit t conn line
      end;
      conn.line_started <- None;
      pos := nl + 1
    | None ->
      if not conn.discarding then begin
        if Buffer.length conn.inbuf = 0 && !pos < n then
          conn.line_started <- Some (Unix.gettimeofday ());
        Buffer.add_substring conn.inbuf data !pos (n - !pos);
        if Buffer.length conn.inbuf > t.max_line_bytes then begin
          oversized t conn;
          conn.discarding <- true;
          Buffer.clear conn.inbuf
        end
      end;
      pos := n
  done

(* --- socket events --- *)

let read_chunk = 65536

(* Everything submitted has been answered and flushed. *)
let settled conn =
  conn.next_write = conn.next_seq && conn.out = "" && conn.sent = 0

let handle_readable t conn =
  let bytes = Bytes.create read_chunk in
  match Unix.read conn.fd bytes 0 read_chunk with
  | 0 ->
    (* EOF: an incomplete trailing line is dropped by design (the
       client never finished sending it), but everything already
       dispatched is still answered before the close. *)
    if settled conn then drop_conn t conn else conn.closing <- true
  | n ->
    conn.last_activity <- Unix.gettimeofday ();
    feed t conn (Bytes.sub_string bytes 0 n)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ -> drop_conn t conn

let handle_writable t conn =
  let pending = String.length conn.out - conn.sent in
  if pending > 0 then
    match Unix.write_substring conn.fd conn.out conn.sent pending with
    | n ->
      conn.sent <- conn.sent + n;
      if conn.sent = String.length conn.out then begin
        conn.out <- "";
        conn.sent <- 0;
        if conn.closing && settled conn then drop_conn t conn
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error _ -> drop_conn t conn

let handle_accept t =
  match Unix.accept t.listen_fd with
  | fd, _ ->
    Unix.set_nonblock fd;
    let id = t.next_conn_id in
    t.next_conn_id <- id + 1;
    t.conns <-
      {
        id;
        fd;
        inbuf = Buffer.create 256;
        out = "";
        sent = 0;
        discarding = false;
        closing = false;
        next_seq = 0;
        next_write = 0;
        pending = Hashtbl.create 8;
        last_activity = Unix.gettimeofday ();
        line_started = None;
      }
      :: t.conns
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ -> ()

(* Idle deadline + slowloris guard: a connection with no outstanding
   work that has been silent past the deadline — or that has been
   drip-feeding one incomplete line past it, however chatty the drip —
   is closed.  Connections still owed a response are never reaped. *)
let check_idle t ~now =
  match t.idle_timeout_s with
  | None -> ()
  | Some idle ->
    let victims =
      List.filter
        (fun c ->
          settled c
          && (now -. c.last_activity > idle
             ||
             match c.line_started with
             | Some started -> now -. started > idle
             | None -> false))
        t.conns
    in
    List.iter (fun c -> drop_conn t c) victims

(* --- drain & main loop --- *)

(* Graceful exit (shutdown verb or SIGTERM): no new connections, no
   new reads — every request already dispatched or queued is finished
   and its response flushed, the cache is snapshotted, the workers are
   joined.  Complete lines that were read before the stop are all
   answered; only unread bytes are abandoned. *)
let drain t =
  (* Buffered requests are owed responses like any other: force them
     out before settling. *)
  (match t.batcher with
  | Some b ->
    Mutex.lock t.sched.mutex;
    flush_batch_locked t b ~reason:`Drain;
    Mutex.unlock t.sched.mutex
  | None -> ());
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec settle () =
    drain_completions t;
    let waiting = List.exists (fun c -> c.next_write < c.next_seq) t.conns in
    let unflushed =
      List.filter (fun c -> String.length c.out > c.sent) t.conns
    in
    if (waiting || unflushed <> []) && Unix.gettimeofday () < deadline then begin
      match
        Unix.select [ t.wake_r ] (List.map (fun c -> c.fd) unflushed) [] 0.5
      with
      | r, w, _ ->
        if r <> [] then drain_wake t;
        List.iter
          (fun fd ->
            match List.find_opt (fun c -> c.fd = fd) t.conns with
            | Some conn -> handle_writable t conn
            | None -> ())
          w;
        settle ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> settle ()
    end
  in
  settle ();
  maybe_snapshot t ~now:(Unix.gettimeofday ()) ~force:true;
  stop_workers t ~join:true;
  close t

let serve t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (try
     Sys.set_signal Sys.sigterm
       (Sys.Signal_handle (fun _ -> t.term_requested <- true))
   with Invalid_argument _ -> ());
  let rec loop () =
    if not t.open_ then ()
    else begin
      drain_completions t;
      if Protocol.stopping t.state || t.term_requested then drain t
      else begin
        let now = Unix.gettimeofday () in
        check_idle t ~now;
        maybe_snapshot t ~now ~force:false;
        (* Batch-window bookkeeping: flush an expired window, or one
           whose members are the only outstanding work (completions
           emptied everything around it — waiting on adds nothing). *)
        let timeout =
          match t.batcher with
          | None -> 1.0
          | Some b ->
            Mutex.lock t.sched.mutex;
            (match Batcher.deadline b with
            | Some dl
              when now >= dl || t.sched.outstanding = Batcher.length b ->
              flush_batch_locked t b ~reason:`Window
            | _ -> ());
            let timeout =
              match Batcher.deadline b with
              | None -> 1.0
              | Some dl -> Float.max 0.001 (Float.min 1.0 (dl -. now))
            in
            Mutex.unlock t.sched.mutex;
            timeout
        in
        let reads =
          t.listen_fd :: t.wake_r :: List.map (fun c -> c.fd) t.conns
        in
        let writes =
          List.filter_map
            (fun c -> if String.length c.out > c.sent then Some c.fd else None)
            t.conns
        in
        match Unix.select reads writes [] timeout with
        | r, w, _ ->
          if List.mem t.wake_r r then begin
            drain_wake t;
            drain_completions t
          end;
          if List.mem t.listen_fd r then handle_accept t;
          List.iter
            (fun fd ->
              if fd <> t.listen_fd && fd <> t.wake_r then
                match List.find_opt (fun c -> c.fd = fd) t.conns with
                | Some conn -> handle_readable t conn
                | None -> ())
            r;
          List.iter
            (fun fd ->
              match List.find_opt (fun c -> c.fd = fd) t.conns with
              | Some conn -> handle_writable t conn
              | None -> ())
            w;
          loop ()
        | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) ->
          loop ()
        | exception Unix.Unix_error (Unix.EBADF, _, _) ->
          (* [close] raced us from another thread. *)
          ()
      end
    end
  in
  loop ()
