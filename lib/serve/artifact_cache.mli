(** Content-addressed LRU cache for expensive pure artifacts.

    The serve daemon's amortization layer: compiled kernels, code
    constructions, ν matrices, whole design reports and Monte-Carlo
    estimates are all pure functions of their canonical parameter keys
    ({!Nanodec_crossbar.Cave.config_key} and friends), so a cache entry
    is observationally identical to rebuilding — the hard invariant the
    [cache_hit ≡ cache_miss] oracle enforces bit-for-bit.

    Keys are the canonical parameter strings themselves, never a lossy
    hash: injectivity of the keying functions (the second oracle) is
    what makes a hit provably safe, and an MD5 of the key is kept only
    as a display handle ({!digest}).

    O(1) lookup and insertion (hash table + intrusive doubly-linked
    recency list), least-recently-{e used} eviction, and per-entry
    build-cost accounting: every entry remembers what it cost to build,
    {!stats} reports both the seconds spent building misses and the
    seconds hits would otherwise have re-spent ([saved_s]) — the
    daemon's amortization telemetry.  All operations take one mutex;
    the structure is safe to share across threads and domains. *)

type 'v t

type stats = {
  capacity : int;
  entries : int;
  hits : int;
  misses : int;
  evictions : int;
  build_s : float;  (** total seconds spent building entries (misses) *)
  saved_s : float;
      (** sum over hits of the entry's recorded build cost — the time
          the cache has saved so far *)
}

val create : ?enabled:bool -> capacity:int -> unit -> 'v t
(** [capacity] is the maximum entry count; at least 1 (a capacity-1
    cache is the eviction-heavy degenerate case the oracles exercise).
    [enabled = false] builds a pass-through cache: {!find_or_build}
    always builds, stores nothing, and counts every call as a miss —
    the cold path with identical accounting, used by the
    [cache_hit ≡ cache_miss] oracle and [serve --no-cache].
    Raises [Invalid_argument] when [capacity < 1]. *)

val find_or_build : 'v t -> key:string -> (unit -> 'v) -> 'v * bool
(** [find_or_build t ~key build] returns the cached value for [key]
    (marking it most recently used) or runs [build], stores the result
    with its measured build time, evicts the least recently used entry
    if over capacity, and returns it.  The boolean is [true] on a hit.
    [build]'s exceptions propagate; nothing is stored on failure.  The
    mutex is {e not} held while [build] runs — builders may take
    seconds; two threads racing the same cold key both build (last
    store wins), which is benign because builders are pure. *)

val find_opt : 'v t -> string -> 'v option
(** Lookup without building; counts as a hit/miss and refreshes
    recency like {!find_or_build}. *)

val mem : 'v t -> string -> bool
(** Pure membership probe: no counter moves, no recency refresh. *)

val length : 'v t -> int

val keys : 'v t -> string list
(** Most recently used first — the eviction order reversed.  For tests
    and the [stats] verb. *)

val stats : 'v t -> stats

val dump : 'v t -> (string * float * 'v) list
(** Every entry as [(key, build-cost seconds, value)], least recently
    used first, so replaying the list through {!restore} in order
    reproduces the recency chain exactly.  The snapshot writer's view
    of the cache; counters are not included (a restarted daemon starts
    its accounting fresh). *)

val restore : 'v t -> (string * float * 'v) list -> unit
(** Insert entries verbatim (preserving their recorded build costs)
    without touching the hit/miss/build counters — warming a cache from
    a snapshot is not a workload.  Entries are inserted in list order,
    each becoming most recently used in turn; over-capacity inserts
    evict as usual, so restoring a dump into a smaller cache keeps the
    most recently used tail.  No-op on a disabled cache. *)

val digest : string -> string
(** MD5 hex of a key — the short display handle used in logs and the
    [stats] verb; never used for addressing. *)

val clear : 'v t -> unit
(** Drop every entry (counters keep their totals; [evictions] does not
    count cleared entries). *)
