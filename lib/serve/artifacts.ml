open Nanodec_codes
open Nanodec_numerics
open Nanodec_crossbar
open Nanodec
module E = Nanodec_error

type value =
  | Words of Word.t list
  | Nu of Imatrix.t
  | Analysis of Cave.analysis
  | Kernel of Kernel.t
  | Report of Design.report
  | Estimate of Montecarlo.estimate
  | Sweep of Design.report list

type t = value Artifact_cache.t

(* Bump the version whenever [value] (or anything reachable from it)
   changes shape: the snapshot loader refuses mismatched schemas, so a
   stale on-disk cache degrades to a cold start instead of feeding
   [Marshal] bytes of the wrong type. *)
let snapshot_schema = "nanodec-artifacts-v1"

let create ?enabled ~capacity () = Artifact_cache.create ?enabled ~capacity ()

(* Key prefixes keep the kinds disjoint, so a key can only ever map to
   one variant; a mismatch is an internal invariant violation, never a
   user error. *)
let unwrap_error ~key ~wanted =
  E.fail
    (E.internal
       (Printf.sprintf "artifact cache kind mismatch for %s (wanted %s)" key
          wanted))

let words cache ~radix ~length ~count ct =
  let key =
    Printf.sprintf "%s|k=%d" (Codebook.cache_key ~radix ~length ct) count
  in
  match
    Artifact_cache.find_or_build cache ~key (fun () ->
        Words (Codebook.sequence ~radix ~length ~count ct))
  with
  | Words ws, hit -> (ws, hit)
  | _ -> unwrap_error ~key ~wanted:"words"

let nu cache pattern =
  let key = "nu|" ^ Nanodec_mspt.Pattern.cache_key pattern in
  match
    Artifact_cache.find_or_build cache ~key (fun () ->
        Nu (Nanodec_mspt.Variability.nu_matrix pattern))
  with
  | Nu m, hit -> (m, hit)
  | _ -> unwrap_error ~key ~wanted:"nu"

let analysis cache config =
  let key = "analysis|" ^ Cave.config_key config in
  match
    Artifact_cache.find_or_build cache ~key (fun () ->
        let pattern =
          Nanodec_mspt.Pattern.of_codebook ~radix:config.Cave.radix
            ~length:config.Cave.code_length ~n_wires:config.Cave.n_wires
            config.Cave.code_type
        in
        let nu, _ = nu cache pattern in
        Analysis (Cave.analyze ~nu config))
  with
  | Analysis a, hit -> (a, hit)
  | _ -> unwrap_error ~key ~wanted:"analysis"

let kernel cache config =
  let key = "kernel|" ^ Cave.config_key config in
  match
    Artifact_cache.find_or_build cache ~key (fun () ->
        let a, _ = analysis cache config in
        Kernel (Cave.kernel_of_analysis a))
  with
  | Kernel k, hit -> (k, hit)
  | _ -> unwrap_error ~key ~wanted:"kernel"

let report cache spec =
  let key =
    Printf.sprintf "report|raw=%d|%s" spec.Design.raw_bits
      (Cave.config_key spec.Design.cave)
  in
  match
    Artifact_cache.find_or_build cache ~key (fun () ->
        Report (Design.evaluate spec))
  with
  | Report r, hit -> (r, hit)
  | _ -> unwrap_error ~key ~wanted:"report"

let estimate_key ~seed ~samples config =
  Printf.sprintf "estimate|seed=%d|samples=%d|%s" seed samples
    (Cave.config_key config)

(* The spec key replaces the plain [samples=] component: strategy and
   stopping rule are part of the estimate's identity, and the
   serialization is injective, so distinct specs never collide — with
   each other or with the legacy plain keys. *)
let estimate_spec_key ~seed ~spec config =
  Printf.sprintf "estimate|seed=%d|%s|%s" seed
    (Montecarlo.spec_key spec)
    (Cave.config_key config)

(* One cache round for a precomputed (or about-to-be-computed) estimate:
   [find_or_build] keeps the hit/miss accounting — and therefore the
   [cached] flags of batched responses — exactly what serial unbatched
   execution would produce. *)
let estimate_with cache ~key ~build =
  match
    Artifact_cache.find_or_build cache ~key (fun () -> Estimate (build ()))
  with
  | Estimate e, hit -> (e, hit)
  | _ -> unwrap_error ~key ~wanted:"estimate"

let estimate cache ~ctx ~seed ~samples config =
  estimate_with cache ~key:(estimate_key ~seed ~samples config)
    ~build:(fun () ->
      let a, _ = analysis cache config in
      let k, _ = kernel cache config in
      Cave.mc_yield_window_par ~ctx ~kernel:k (Rng.create ~seed) ~samples a)

let estimate_spec cache ~ctx ~seed ~spec config =
  let samples =
    match spec.Montecarlo.stopping with
    | Montecarlo.Fixed_samples n -> n
    | Montecarlo.Until_rel_error { max_samples; _ } -> max_samples
  in
  estimate_with cache ~key:(estimate_spec_key ~seed ~spec config)
    ~build:(fun () ->
      let a, _ = analysis cache config in
      let k, _ = kernel cache config in
      Cave.mc_yield_window_par ~ctx ~spec ~kernel:k
        (Rng.create ~seed)
        ~samples a)

let sweep cache spec =
  let key =
    Printf.sprintf "sweep|raw=%d|%s" spec.Design.raw_bits
      (Cave.config_key spec.Design.cave)
  in
  match
    Artifact_cache.find_or_build cache ~key (fun () ->
        Sweep (Optimizer.sweep ~spec ()))
  with
  | Sweep rows, hit -> (rows, hit)
  | _ -> unwrap_error ~key ~wanted:"sweep"
