type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let max_depth = 64

(* --- parser --- *)

exception Parse_error of string

let fail_at pos fmt =
  Printf.ksprintf (fun msg ->
      raise (Parse_error (Printf.sprintf "%s at byte %d" msg pos)))
    fmt

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail_at !pos "expected '%c', found '%c'" c got
    | None -> fail_at !pos "expected '%c', found end of input" c
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail_at !pos "unrecognised literal (expected %s)" word
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail_at !pos "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail_at !pos "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'; advance ()
             | '\\' -> Buffer.add_char b '\\'; advance ()
             | '/' -> Buffer.add_char b '/'; advance ()
             | 'b' -> Buffer.add_char b '\b'; advance ()
             | 'f' -> Buffer.add_char b '\012'; advance ()
             | 'n' -> Buffer.add_char b '\n'; advance ()
             | 'r' -> Buffer.add_char b '\r'; advance ()
             | 't' -> Buffer.add_char b '\t'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail_at !pos "truncated \\u escape";
               let code =
                 try int_of_string ("0x" ^ String.sub s !pos 4)
                 with _ -> fail_at !pos "malformed \\u escape"
               in
               pos := !pos + 4;
               (* Encode the BMP code point as UTF-8; surrogate pairs
                  are passed through as two 3-byte sequences — good
                  enough for a protocol whose field names are ASCII. *)
               if code < 0x80 then Buffer.add_char b (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char b
                   (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
               end
             | c -> fail_at !pos "invalid escape '\\%c'" c);
          loop ()
        | c when Char.code c < 0x20 ->
          fail_at !pos "unescaped control character in string"
        | c ->
          Buffer.add_char b c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let consume p =
      while !pos < n && p s.[!pos] do
        advance ()
      done
    in
    if peek () = Some '-' then advance ();
    let digits_start = !pos in
    consume (function '0' .. '9' -> true | _ -> false);
    if !pos = digits_start then fail_at !pos "malformed number";
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      let frac_start = !pos in
      consume (function '0' .. '9' -> true | _ -> false);
      if !pos = frac_start then fail_at !pos "malformed number (empty fraction)"
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      let exp_start = !pos in
      consume (function '0' .. '9' -> true | _ -> false);
      if !pos = exp_start then fail_at !pos "malformed number (empty exponent)"
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail_at start "malformed number %S" text
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        (* Integer literal beyond int range: keep it as a float rather
           than failing — the protocol's range checks reject it with a
           better message than the parser could. *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail_at start "malformed number %S" text)
  in
  let rec parse_value depth =
    if depth > max_depth then fail_at !pos "nesting deeper than %d" max_depth;
    skip_ws ();
    match peek () with
    | None -> fail_at !pos "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ()
          | Some '}' -> advance ()
          | Some c -> fail_at !pos "expected ',' or '}', found '%c'" c
          | None -> fail_at !pos "unterminated object"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value (depth + 1) in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements ()
          | Some ']' -> advance ()
          | Some c -> fail_at !pos "expected ',' or ']', found '%c'" c
          | None -> fail_at !pos "unterminated array"
        in
        elements ();
        List (List.rev !items)
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail_at !pos "unexpected character '%c'" c
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos < n then fail_at !pos "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- writer --- *)

let escape_into b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_to_string f =
  (* Shortest decimal that round-trips; %.17g as the exact fallback.
     Non-finite floats cannot be parsed back, so they render as null —
     the protocol layer never emits them. *)
  if Float.is_nan f || f = infinity || f = neg_infinity then "null"
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_to_string f)
    | String s -> escape_into b s
    | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          go v)
        items;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_into b k;
          Buffer.add_char b ':';
          go v)
        fields;
      Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f <= 2. ** 53. ->
    Some (int_of_float f)
  | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
