module E = Nanodec_error

type t = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes read past the last returned line *)
  timeout_s : float option;
}

let sockaddr_of = function
  | `Unix path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | `Tcp port -> (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))

let describe = function
  | `Unix path -> Printf.sprintf "unix socket %S" path
  | `Tcp port -> Printf.sprintf "127.0.0.1:%d" port

let connect ?(attempts = 40) ?timeout_s address =
  Option.iter (E.check_timeout_s ~what:"timeout") timeout_s;
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s in
  let domain, addr = sockaddr_of address in
  let rec attempt left =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> { fd; buf = Buffer.create 256; timeout_s }
    | exception
        Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN), _, _)
      when left > 1 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (match deadline with
      | Some dl when Unix.gettimeofday () +. 0.05 >= dl ->
        E.fail (E.Timeout { site = "client.connect"; seconds = timeout_s })
      | Some _ | None -> ());
      Unix.sleepf 0.05;
      attempt (left - 1)
    | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      E.invalid_inputf ~hint:"is the daemon running?" "cannot connect to %s: %s"
        (describe address) (Unix.error_message err)
  in
  attempt (max 1 attempts)

let write_all fd s =
  let len = String.length s in
  let sent = ref 0 in
  while !sent < len do
    sent := !sent + Unix.write_substring fd s !sent (len - !sent)
  done

(* Pop the first buffered line, keeping the tail (pipelined responses
   arrive together). *)
let take_line t =
  let s = Buffer.contents t.buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    Buffer.clear t.buf;
    Buffer.add_substring t.buf s (i + 1) (String.length s - i - 1);
    Some (String.sub s 0 i)

let read_chunk = 65536

let request t line =
  write_all t.fd line;
  write_all t.fd "\n";
  (* One deadline for the whole response, not per read: a daemon
     dribbling bytes forever is exactly the wedge this guards. *)
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) t.timeout_s in
  let timed_out () =
    E.fail (E.Timeout { site = "client.read"; seconds = t.timeout_s })
  in
  let bytes = Bytes.create read_chunk in
  let rec next () =
    match take_line t with
    | Some l -> l
    | None ->
      (match deadline with
      | None -> ()
      | Some dl -> (
        let remaining = dl -. Unix.gettimeofday () in
        if remaining <= 0. then timed_out ();
        match Unix.select [ t.fd ] [] [] remaining with
        | [], _, _ -> timed_out ()
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()));
      (match Unix.read t.fd bytes 0 read_chunk with
      | 0 ->
        E.fail (E.internal "daemon closed the connection before responding")
      | n -> Buffer.add_subbytes t.buf bytes 0 n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      next ()
  in
  next ()

let request_json t json =
  match Json.parse (request t (Json.to_string json)) with
  | Ok v -> v
  | Error msg ->
    E.fail (E.internal (Printf.sprintf "unparsable response from daemon: %s" msg))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection ?attempts ?timeout_s address f =
  let t = connect ?attempts ?timeout_s address in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
