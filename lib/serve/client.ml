module E = Nanodec_error

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let sockaddr_of = function
  | `Unix path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | `Tcp port -> (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))

let describe = function
  | `Unix path -> Printf.sprintf "unix socket %S" path
  | `Tcp port -> Printf.sprintf "127.0.0.1:%d" port

let connect ?(attempts = 40) address =
  let domain, addr = sockaddr_of address in
  let rec attempt left =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () ->
      { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
    | exception
        Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN), _, _)
      when left > 1 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.05;
      attempt (left - 1)
    | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      E.invalid_inputf ~hint:"is the daemon running?" "cannot connect to %s: %s"
        (describe address) (Unix.error_message err)
  in
  attempt (max 1 attempts)

let request t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc;
  match input_line t.ic with
  | line -> line
  | exception End_of_file ->
    E.fail (E.internal "daemon closed the connection before responding")

let request_json t json =
  match Json.parse (request t (Json.to_string json)) with
  | Ok v -> v
  | Error msg ->
    E.fail (E.internal (Printf.sprintf "unparsable response from daemon: %s" msg))

let close t =
  (* Closing the channels closes the shared fd; ignore double-closes. *)
  (try close_out_noerr t.oc with _ -> ());
  (try close_in_noerr t.ic with _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection ?attempts address f =
  let t = connect ?attempts address in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
