(** The daemon's wire protocol: newline-delimited JSON requests in,
    newline-delimited JSON responses out.

    A request is one JSON object per line:

    {v
    {"id":1,"verb":"evaluate",
     "params":{"code":"BGC","length":10,"radix":2,"wires":20,
               "raw_bits":131072},
     "exec":{"seed":7,"mc_samples":1000,"timeout":5.0,
             "fault_plan":"seed=1;pool.chunk:crash:p=1",
             "no_degrade":true,"chunks":"auto"}}
    v}

    and the response is one JSON object per line, either

    {v {"id":1,"status":"ok","verb":"evaluate","cached":false,"result":{...}} v}

    or the error shape that mirrors the CLI's exit codes
    ({!Nanodec_error.exit_code}) as machine-readable fields:

    {v {"id":1,"status":"error","kind":"invalid-input","exit_code":2,
        "message":"...","hint":...} v}

    {!handle_line} never raises and never kills the connection: malformed
    JSON, unknown verbs, out-of-range numerics and classifiable runtime
    failures ({!Nanodec.Errors.classify}) all render as error responses;
    even unclassifiable exceptions render as [internal] rather than
    crashing the daemon.  Responses carry no wall-clock or host fields,
    so equal requests produce byte-equal responses — the property the
    CI smoke goldens and the concurrent-soak determinism test rely on.

    Execution knobs in ["exec"] are validated by the same
    {!Nanodec_error} validators as the CLI flags and applied through
    {!Nanodec_parallel.Run_ctx.with_request}: plain requests borrow the
    daemon's shared pool, while requests carrying a fault plan,
    [no_degrade] or a timeout run on a private request-scoped pool (and
    bypass the result caches, so injected faults and deadlines actually
    execute). *)

type state
(** One daemon's protocol state: the artifact cache, the shared base
    context and the request/error counters of the [stats] verb.  The
    counters and the stopping latch are atomic — {!handle_line} is safe
    to call from concurrent worker threads (responses stay pure
    functions of their requests; only the [stats] counters observe the
    interleaving). *)

(** A live view of the batch-fusion layer, nested in {!scheduler} when
    the server runs with a coalescing window ([--batch-window-ms] > 0).
    All counters are cumulative since boot. *)
type batch_view = {
  window_s : float;  (** the coalescing window, seconds *)
  max_batch : int;  (** flush threshold: requests per fused batch *)
  buffered : int;  (** fusable requests currently held in the window *)
  batches : int;  (** fused batches executed (size >= 2) *)
  fused_requests : int;  (** requests that rode in fused batches *)
  flush_window : int;  (** flushes triggered by the window deadline *)
  flush_full : int;  (** flushes triggered by [max_batch] *)
  flush_drain : int;  (** flushes forced by shutdown drain *)
  size_p50 : int;  (** median flushed batch size (0 before any flush) *)
  size_max : int;  (** largest flushed batch size *)
}

(** A live view of the server's dispatch scheduler, reported by the
    [stats] verb and (as drained-vs-shed counts) by [shutdown]. *)
type scheduler = {
  max_inflight : int;  (** worker-thread count *)
  max_queue : int;  (** admission bound beyond the workers *)
  inflight : int;  (** requests executing right now *)
  queued : int;  (** requests waiting for a worker *)
  shed : int;  (** requests refused with [Overloaded] so far *)
  snapshot_age_s : float option;
      (** seconds since the last successful cache snapshot; [None]
          when persistence is off or nothing was written yet *)
  batch : batch_view option;
      (** the batch-fusion layer's state; [None] when batching is off
          (or for direct [handle_line] callers) *)
}

val make_state :
  ?cache_enabled:bool ->
  ?cache_capacity:int ->
  base:Nanodec_parallel.Run_ctx.t ->
  unit ->
  state
(** [cache_capacity] defaults to 256 entries; [cache_enabled:false] is
    [serve --no-cache] (every request executes cold). *)

val artifacts : state -> Artifacts.t

val base : state -> Nanodec_parallel.Run_ctx.t
(** The shared base context requests derive from — the server reads
    its telemetry sink for the [serve.request_s] histogram. *)

val requests : state -> int
(** Lines processed so far (including malformed ones). *)

val errors : state -> int
(** Lines answered with an error response. *)

val stopping : state -> bool
(** Set once a [shutdown] request has been answered; the server loop
    drains and exits when it sees this. *)

val set_scheduler_probe : state -> (unit -> scheduler) option -> unit
(** Install the server's scheduler view (called once, before any
    worker runs).  Without a probe the [stats]/[shutdown] scheduling
    fields report the serial picture: one in-flight request (the one
    being answered), nothing queued, nothing shed. *)

val known_verbs : string list
(** ping, evaluate, yield, sweep, codes, check, stats, shutdown. *)

(** {2 Batch fusion} *)

type fuse_plan = {
  fuse_key : string;
      (** the artifact-cache key this request's estimate will occupy *)
  fuse_seed : int;
  fuse_samples : int;
  fuse_spec : Nanodec_numerics.Montecarlo.spec;
      (** the exact (strategy × fixed-stopping) spec the request's own
          execution would run *)
  fuse_config : Nanodec_crossbar.Cave.config;
}
(** The fusable identity of one request: everything the batch layer
    needs to precompute its Monte-Carlo estimate as part of a fused
    mega-job and overlay the result onto the very key the request's own
    execution looks up. *)

val classify_fusable : state -> string -> fuse_plan option
(** [classify_fusable state line] decides whether the request line's MC
    work can ride a fused batch: an MC-bearing verb ([yield], or
    [evaluate] with [mc_samples]), no cache bypass (fault plan /
    [no_degrade] / timeout), no adaptive stopping (request or base
    context).  Total — any parse or validation failure returns [None]
    and the request takes the unfused path, reproducing its error
    response bytes unchanged.  Classification never executes MC work. *)

type overlay = (string, Nanodec_numerics.Montecarlo.estimate) Hashtbl.t
(** Fused results keyed by {!fuse_plan.fuse_key}, handed back to
    {!handle_line}: a request whose estimate key is in the overlay
    installs the precomputed bits through the artifact cache's own
    [find_or_build] accounting, so hit/miss counters and the [cached]
    response flag are exactly what serial unbatched execution
    produces. *)

val handle_line : ?overlay:overlay -> state -> string -> string
(** [handle_line state line] executes one request line and returns the
    response line (newline not included).  Total: never raises.
    [?overlay] supplies fused batch results — pure overlay, never
    steering: with or without it the response bytes are identical. *)

val error_line : Nanodec_error.t -> string
(** Render a connection-level error (no request to take an ["id"]
    from) in the same error shape {!handle_line} uses — the server's
    oversized-line response goes through this. *)
